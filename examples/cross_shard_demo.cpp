// Cross-shard transactions and custom TBVM contracts.
//
// Part 1 runs a 4-replica cluster at increasing cross-shard ratios and
// shows the EOV/OE split: cross-shard payments bypass preplay (rule P1)
// and execute deterministically after consensus, while conflicting
// single-shard transactions defer or convert (rules P4/P6).
//
// Part 2 registers a *custom* TBVM bytecode contract — an escrow that
// releases funds only when a flag key is set — and runs it through the CE,
// demonstrating that user-defined contracts with data-dependent access
// patterns work end to end.
//
//   ./examples/cross_shard_demo
#include <cstdio>

#include "ce/concurrency_controller.h"
#include "ce/sim_executor_pool.h"
#include "contract/tbvm.h"
#include "core/cluster.h"

using namespace thunderbolt;

int main() {
  std::printf("--- Part 1: cross-shard ratio sweep (4 replicas) ---\n");
  std::printf("%8s %12s %12s %12s %12s\n", "cross%", "tput(tps)", "single",
              "cross", "converted");
  for (double pct : {0.0, 0.1, 0.5, 1.0}) {
    core::ThunderboltConfig cfg;
    cfg.n = 4;
    cfg.batch_size = 200;
    workload::WorkloadOptions wc;
    wc.num_records = 1000;
    wc.cross_shard_ratio = pct;
    core::Cluster cluster(cfg, "smallbank", wc);
    core::ClusterResult r = cluster.Run(Seconds(4));
    std::printf("%8.0f %12.0f %12llu %12llu %12llu\n", pct * 100,
                r.throughput_tps, (unsigned long long)r.committed_single,
                (unsigned long long)r.committed_cross,
                (unsigned long long)r.conversions);
  }

  std::printf("\n--- Part 2: custom TBVM escrow contract ---\n");
  // escrow_release(account): if [account/flag] != 0, move [account/escrow]
  // into [account/checking] and clear the escrow. The write set depends on
  // the flag read at runtime.
  contract::TbProgram escrow;
  escrow.suffixes = {"flag", "escrow", "checking"};
  escrow.code = {
      {contract::TbOp::kMakeKey, 0, 0, 0},   // k0 = a/flag
      {contract::TbOp::kRead, 0, 0, 0},      // r0 = flag
      {contract::TbOp::kJz, 0, 0, 0, 11},    // flag == 0 -> emit 0, halt
      {contract::TbOp::kMakeKey, 1, 0, 1},   // k1 = a/escrow
      {contract::TbOp::kMakeKey, 2, 0, 2},   // k2 = a/checking
      {contract::TbOp::kRead, 1, 1, 0},      // r1 = escrow
      {contract::TbOp::kRead, 2, 2, 0},      // r2 = checking
      {contract::TbOp::kAdd, 3, 1, 2},       // r3 = escrow + checking
      {contract::TbOp::kWrite, 2, 3, 0},     // checking = r3
      {contract::TbOp::kLoadImm, 4, 0, 0, 0},
      {contract::TbOp::kWrite, 1, 4, 0},     // escrow = 0
      {contract::TbOp::kEmit, 0, 0, 0},      // emits flag (0 if declined)
      {contract::TbOp::kHalt, 0, 0, 0},
  };

  auto registry = contract::Registry::CreateDefault();
  registry->Register("demo.escrow_release",
                     std::make_unique<contract::TbvmContract>(escrow));

  storage::MemKVStore store;
  store.Put("alice/flag", 1);  // Alice's escrow is releasable.
  store.Put("alice/escrow", 500);
  store.Put("alice/checking", 100);
  store.Put("bob/flag", 0);  // Bob's is not.
  store.Put("bob/escrow", 300);
  store.Put("bob/checking", 50);

  std::vector<txn::Transaction> batch(2);
  batch[0].id = 1;
  batch[0].contract = "demo.escrow_release";
  batch[0].accounts = {"alice"};
  batch[1].id = 2;
  batch[1].contract = "demo.escrow_release";
  batch[1].accounts = {"bob"};

  ce::ConcurrencyController cc(&store, 2);
  ce::SimExecutorPool pool(2, ce::ExecutionCostModel{});
  auto r = pool.Run(cc, *registry, batch);
  if (!r.ok()) {
    std::fprintf(stderr, "escrow batch failed: %s\n",
                 r.status().ToString().c_str());
    return 1;
  }
  store.Write(r->final_writes);
  std::printf("alice: released=%lld checking=%lld escrow=%lld\n",
              (long long)r->records[0].emitted[0],
              (long long)store.GetOrDefault("alice/checking", 0),
              (long long)store.GetOrDefault("alice/escrow", 0));
  std::printf("bob:   released=%lld checking=%lld escrow=%lld\n",
              (long long)r->records[1].emitted[0],
              (long long)store.GetOrDefault("bob/checking", 0),
              (long long)store.GetOrDefault("bob/escrow", 0));
  std::printf("note: alice's run wrote 2 keys, bob's wrote none — the "
              "write sets were decided by the flag read at runtime\n");
  return 0;
}
