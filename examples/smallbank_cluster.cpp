// A complete sharded deployment: 8 replicas (= 8 shards) processing the
// SmallBank workload with 10% cross-shard payments over a simulated LAN.
// Demonstrates the full EOV + OE pipeline: preplay, DAG consensus,
// parallel validation, and deterministic cross-shard execution.
//
//   ./examples/smallbank_cluster
#include <cstdio>

#include "core/cluster.h"

using namespace thunderbolt;

int main() {
  core::ThunderboltConfig cfg;
  cfg.n = 8;
  cfg.batch_size = 300;
  cfg.num_executors = 8;
  cfg.num_validators = 8;

  workload::SmallBankConfig wc;
  wc.num_accounts = 2000;
  wc.theta = 0.85;
  wc.read_ratio = 0.5;
  wc.cross_shard_ratio = 0.10;

  core::Cluster cluster(cfg, wc);
  std::printf("running 8-replica Thunderbolt cluster for 5 virtual "
              "seconds...\n");
  core::ClusterResult r = cluster.Run(Seconds(5));

  std::printf("\n=== results ===\n");
  std::printf("committed single-shard txs : %llu\n",
              (unsigned long long)r.committed_single);
  std::printf("committed cross-shard txs  : %llu\n",
              (unsigned long long)r.committed_cross);
  std::printf("throughput                 : %.0f tps\n", r.throughput_tps);
  std::printf("mean / p50 / p99 latency   : %.3f / %.3f / %.3f s\n",
              r.avg_latency_s, r.p50_latency_s, r.p99_latency_s);
  std::printf("preplay re-executions      : %llu\n",
              (unsigned long long)r.preplay_aborts);
  std::printf("invalid blocks             : %llu\n",
              (unsigned long long)r.invalid_blocks);
  std::printf("skip blocks                : %llu\n",
              (unsigned long long)r.skip_blocks);
  std::printf("single->cross conversions  : %llu\n",
              (unsigned long long)r.conversions);

  // Safety check available to any deployment: the SendPayment/GetBalance
  // mix conserves the total balance across all accounts.
  storage::Value expected = static_cast<storage::Value>(wc.num_accounts) *
                            (wc.initial_checking + wc.initial_savings);
  storage::Value actual =
      cluster.workload().TotalBalance(cluster.canonical_state());
  std::printf("balance conservation       : %s (%lld / %lld)\n",
              actual == expected ? "OK" : "VIOLATED", (long long)actual,
              (long long)expected);
  return actual == expected ? 0 : 1;
}
