// A complete sharded deployment: 8 replicas (= 8 shards) processing the
// SmallBank workload with 10% cross-shard payments over a simulated LAN.
// Demonstrates the full EOV + OE pipeline: preplay, DAG consensus,
// parallel validation, and deterministic cross-shard execution.
//
//   ./examples/smallbank_cluster
#include <cstdio>

#include "core/cluster.h"

using namespace thunderbolt;

int main() {
  core::ThunderboltConfig cfg;
  cfg.n = 8;
  cfg.batch_size = 300;
  cfg.num_executors = 8;
  cfg.num_validators = 8;

  // Any registered workload runs sharded; swap the name/params to taste
  // (e.g. "ycsb", "theta=0.9,cross_shard_ratio=0.1").
  core::Cluster cluster(
      cfg, "smallbank",
      "num_accounts=2000,theta=0.85,read_ratio=0.5,cross_shard_ratio=0.1");
  std::printf("running 8-replica Thunderbolt cluster for 5 virtual "
              "seconds...\n");
  core::ClusterResult r = cluster.Run(Seconds(5));

  std::printf("\n=== results ===\n");
  std::printf("committed single-shard txs : %llu\n",
              (unsigned long long)r.committed_single);
  std::printf("committed cross-shard txs  : %llu\n",
              (unsigned long long)r.committed_cross);
  std::printf("throughput                 : %.0f tps\n", r.throughput_tps);
  std::printf("mean / p50 / p99 latency   : %.3f / %.3f / %.3f s\n",
              r.avg_latency_s, r.p50_latency_s, r.p99_latency_s);
  std::printf("preplay re-executions      : %llu\n",
              (unsigned long long)r.preplay_aborts);
  std::printf("invalid blocks             : %llu\n",
              (unsigned long long)r.invalid_blocks);
  std::printf("skip blocks                : %llu\n",
              (unsigned long long)r.skip_blocks);
  std::printf("single->cross conversions  : %llu\n",
              (unsigned long long)r.conversions);

  // Safety check available to any deployment: the workload's consistency
  // invariant over the committed state (balance conservation for the
  // SendPayment/GetBalance mix).
  Status invariant = cluster.CheckInvariant();
  std::printf("workload invariant         : %s\n",
              invariant.ok() ? "OK" : invariant.ToString().c_str());
  return invariant.ok() ? 0 : 1;
}
