// Non-blocking reconfiguration in action (paper section 6).
//
// Phase 1: periodic rotation — K' = 12 forces frequent Shift blocks; the
//          DAG switches epochs and shard ownership rotates round-robin
//          while commits keep flowing.
// Phase 2: censorship response — a replica crashes (equivalently, censors
//          its shard); after K rounds of silence the honest replicas emit
//          Shift blocks and rotate the victim's shard to a live replica.
//
//   ./examples/reconfiguration_demo
#include <cstdio>

#include "core/cluster.h"

using namespace thunderbolt;

namespace {

void Report(const char* phase, const core::ClusterResult& r,
            const core::Cluster& cluster) {
  std::printf("\n=== %s ===\n", phase);
  std::printf("committed txs        : %llu\n",
              (unsigned long long)(r.committed_single + r.committed_cross));
  std::printf("throughput           : %.0f tps\n", r.throughput_tps);
  std::printf("reconfigurations     : %llu\n",
              (unsigned long long)r.reconfigurations);
  std::printf("shift blocks         : %llu\n",
              (unsigned long long)r.shift_blocks);
  std::printf("current epoch        : %llu\n",
              (unsigned long long)cluster.node(0).epoch());
  std::printf("replica 0 owns shard : %u\n", cluster.node(0).owned_shard());
}

}  // namespace

int main() {
  {
    std::printf("--- Phase 1: periodic rotation (K' = 12) ---\n");
    core::ThunderboltConfig cfg;
    cfg.n = 4;
    cfg.batch_size = 100;
    cfg.reconfig_period_k_prime = 12;
    core::Cluster cluster(cfg, "smallbank", "num_accounts=800");
    core::ClusterResult r = cluster.Run(Seconds(8));
    Report("periodic rotation", r, cluster);
    if (r.reconfigurations == 0) {
      std::printf("expected at least one reconfiguration!\n");
      return 1;
    }
  }

  {
    std::printf("\n--- Phase 2: censorship response (K = 6) ---\n");
    core::ThunderboltConfig cfg;
    cfg.n = 4;
    cfg.batch_size = 100;
    cfg.silence_rounds_k = 6;
    core::Cluster cluster(cfg, "smallbank", "num_accounts=800");
    // Replica 2 goes silent early on: its shard stalls until the honest
    // majority rotates it away.
    cluster.CrashReplicaAt(2, Millis(500));
    core::ClusterResult r = cluster.Run(Seconds(8));
    Report("after censorship attack", r, cluster);
    std::printf("note: the DAG never paused; Shift blocks rode ordinary "
                "rounds (non-blocking reconfiguration)\n");
    if (r.reconfigurations == 0) {
      std::printf("expected a silence-triggered reconfiguration!\n");
      return 1;
    }
  }
  return 0;
}
