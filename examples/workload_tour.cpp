// workload_tour: walks every workload registered in WorkloadRegistry
// first through the Thunderbolt CE in isolation, then through a sharded
// 4-replica cluster, printing throughput and the invariant verdict. The
// smallest demonstration of the pluggable workload framework: nothing
// here names a concrete workload — new registrations show up
// automatically, in all legs. The final leg re-runs one cluster with
// lifecycle tracing enabled and summarizes the captured events (the
// smallest demonstration of ThunderboltConfig::obs).
#include <cstdio>

#include "ce/concurrency_controller.h"
#include "ce/sim_executor_pool.h"
#include "contract/contract.h"
#include "core/cluster.h"
#include "obs/obs.h"
#include "workload/workload.h"

int main() {
  using namespace thunderbolt;

  workload::WorkloadOptions options;
  options.num_records = 500;
  options.seed = 7;
  options.num_warehouses = 1;
  options.customers_per_district = 10;
  options.num_items = 50;
  constexpr uint32_t kBatchSize = 150;

  auto registry = contract::Registry::CreateDefault();
  ce::SimExecutorPool pool(8, ce::ExecutionCostModel{});

  std::printf("%-12s %12s %12s %12s  %s\n", "workload", "txns", "tput(tps)",
              "re-execs", "invariant");
  for (const std::string& name :
       workload::WorkloadRegistry::Global().Names()) {
    auto w = workload::WorkloadRegistry::Global().Create(name, options);
    storage::MemKVStore store;
    w->InitStore(&store);
    SimTime total_time = 0;
    uint64_t total_aborts = 0, total_txns = 0;
    for (int batch_idx = 0; batch_idx < 3; ++batch_idx) {
      auto batch = w->MakeBatch(kBatchSize);
      ce::ConcurrencyController cc(&store, kBatchSize);
      auto r = pool.Run(cc, *registry, batch);
      if (!r.ok()) {
        std::fprintf(stderr, "%s failed: %s\n", name.c_str(),
                     r.status().ToString().c_str());
        return 1;
      }
      Status applied = store.Write(r->final_writes);
      if (!applied.ok()) {
        std::fprintf(stderr, "%s write-back failed: %s\n", name.c_str(),
                     applied.ToString().c_str());
        return 1;
      }
      total_time += r->duration;
      total_aborts += r->total_aborts;
      total_txns += kBatchSize;
    }
    Status invariant = w->CheckInvariant(store);
    std::printf("%-12s %12llu %12.0f %12llu  %s\n", name.c_str(),
                static_cast<unsigned long long>(total_txns),
                static_cast<double>(total_txns) / ToSeconds(total_time),
                static_cast<unsigned long long>(total_aborts),
                invariant.ok() ? "ok" : invariant.ToString().c_str());
    if (!invariant.ok()) return 1;
  }
  std::printf("\nAll workloads executed through the CE.\n");

  // Leg 2: the same registry names on a sharded 4-replica cluster (one
  // shard per replica, 10% deliberate cross-shard traffic).
  std::printf("\n%-12s %12s %12s %12s  %s\n", "workload", "single", "cross",
              "tput(tps)", "invariant");
  for (const std::string& name :
       workload::WorkloadRegistry::Global().Names()) {
    core::ThunderboltConfig cfg;
    cfg.n = 4;
    cfg.batch_size = 50;
    cfg.proposal_prep_cost = Millis(5);
    workload::WorkloadOptions cluster_options = options;
    cluster_options.cross_shard_ratio = 0.1;
    core::Cluster cluster(cfg, name, cluster_options);
    core::ClusterResult r = cluster.Run(Seconds(2));
    Status invariant = cluster.CheckInvariant();
    std::printf("%-12s %12llu %12llu %12.0f  %s\n", name.c_str(),
                static_cast<unsigned long long>(r.committed_single),
                static_cast<unsigned long long>(r.committed_cross),
                r.throughput_tps,
                invariant.ok() ? "ok" : invariant.ToString().c_str());
    if (!invariant.ok()) return 1;
    if (r.committed_single + r.committed_cross == 0) {
      std::fprintf(stderr, "%s committed nothing on the cluster\n",
                   name.c_str());
      return 1;
    }
  }
  std::printf("\nAll workloads ran sharded on the cluster.\n");

  // Leg 3: the same cluster with tracing on. Every committed single-shard
  // transaction leaves a lifecycle span in the ring; the export is the
  // Chrome trace-event JSON the benches write via --trace-out.
  {
    core::ThunderboltConfig cfg;
    cfg.n = 4;
    cfg.batch_size = 50;
    cfg.proposal_prep_cost = Millis(5);
    cfg.obs.trace = true;
    workload::WorkloadOptions cluster_options = options;
    cluster_options.cross_shard_ratio = 0.1;
    core::Cluster cluster(cfg, "smallbank", cluster_options);
    core::ClusterResult r = cluster.Run(Seconds(2));
    const obs::RingTracer* ring = cluster.obs().ring();
    if (ring == nullptr) {
      std::fprintf(stderr, "tracing was enabled but no ring exists\n");
      return 1;
    }
    uint64_t spans = 0, restarts = 0, commits = 0;
    for (const obs::TraceEvent& e : ring->Snapshot()) {
      spans += e.kind == obs::EventKind::kTxnSpan ? 1 : 0;
      restarts += e.kind == obs::EventKind::kTxnRestart ? 1 : 0;
      commits += e.kind == obs::EventKind::kTxnCommit ? 1 : 0;
    }
    std::printf(
        "\nTraced smallbank cluster: %llu events (%llu txn spans, %llu "
        "commits, %llu restarts), %llu committed single-shard\n",
        static_cast<unsigned long long>(ring->total_recorded()),
        static_cast<unsigned long long>(spans),
        static_cast<unsigned long long>(commits),
        static_cast<unsigned long long>(restarts),
        static_cast<unsigned long long>(r.committed_single));
    if (spans < r.committed_single) {
      std::fprintf(stderr,
                   "expected at least one span per committed transaction\n");
      return 1;
    }
    const std::string trace_json = ring->ToChromeJson();
    std::printf("Chrome trace export: %zu bytes (write it with a bench's "
                "--trace-out and load at ui.perfetto.dev)\n",
                trace_json.size());
  }
  return 0;
}
