// Quickstart: the Concurrent Executor in isolation.
//
// Builds a contract registry, executes a small SmallBank batch through the
// CC with 4 virtual executors (discovering read/write sets at runtime),
// validates the preplay results like a Thunderbolt replica would, and
// applies them to storage.
//
//   ./examples/quickstart
#include <cstdio>

#include "ce/concurrency_controller.h"
#include "ce/sim_executor_pool.h"
#include "contract/contract.h"
#include "contract/smallbank.h"
#include "core/validator.h"
#include "storage/kv_store.h"
#include "txn/transaction.h"

using namespace thunderbolt;

int main() {
  // 1. Storage with two accounts.
  storage::MemKVStore store;
  store.Put(txn::CheckingKey("alice"), 100);
  store.Put(txn::SavingsKey("alice"), 50);
  store.Put(txn::CheckingKey("bob"), 30);
  store.Put(txn::SavingsKey("bob"), 0);

  // 2. The default registry: native SmallBank + TBVM-compiled SmallBank.
  auto registry = contract::Registry::CreateDefault();

  // 3. A batch of transactions. Note the read/write sets are unknown here:
  //    whether send_payment writes anything depends on balances at
  //    execution time.
  std::vector<txn::Transaction> batch;
  auto add = [&](std::string contract, std::vector<std::string> accounts,
                 std::vector<storage::Value> params) {
    txn::Transaction tx;
    tx.id = batch.size() + 1;
    tx.contract = std::move(contract);
    tx.accounts = std::move(accounts);
    tx.params = std::move(params);
    batch.push_back(std::move(tx));
  };
  add(contract::kSendPayment, {"alice", "bob"}, {40});
  add(contract::kGetBalance, {"bob"}, {});
  add(contract::kDepositChecking, {"bob"}, {25});
  add(contract::kSendPayment, {"bob", "alice"}, {1000});  // Will decline.
  add("tbvm.get_balance", {"alice"}, {});  // Bytecode VM contract.

  // 4. Preplay through the Concurrent Executor.
  ce::ConcurrencyController cc(&store, batch.size());
  ce::SimExecutorPool pool(4, ce::ExecutionCostModel{});
  auto result = pool.Run(cc, *registry, batch);
  if (!result.ok()) {
    std::fprintf(stderr, "preplay failed: %s\n",
                 result.status().ToString().c_str());
    return 1;
  }

  std::printf("scheduled order (nondeterministic, fixed by CC commits):\n");
  for (ce::TxnSlot slot : result->order) {
    const ce::TxnRecord& rec = result->records[slot];
    std::printf("  txn %llu %-28s reads=%zu writes=%zu results=[",
                static_cast<unsigned long long>(batch[slot].id),
                batch[slot].contract.c_str(), rec.rw_set.reads.size(),
                rec.rw_set.writes.size());
    for (storage::Value v : rec.emitted) std::printf("%lld ", (long long)v);
    std::printf("]\n");
  }
  std::printf("virtual makespan: %.1f us, re-executions: %llu\n",
              static_cast<double>(result->duration),
              static_cast<unsigned long long>(result->total_aborts));

  // 5. Validate like a replica would (paper section 4), then apply.
  std::vector<core::PreplayedTxn> preplayed;
  for (ce::TxnSlot slot : result->order) {
    core::PreplayedTxn p;
    p.tx = batch[slot];
    p.rw_set = result->records[slot].rw_set;
    p.emitted = result->records[slot].emitted;
    preplayed.push_back(std::move(p));
  }
  core::ValidationResult vr =
      core::ValidatePreplay(*registry, preplayed, store);
  std::printf("validation: %s\n", vr.valid ? "VALID" : "INVALID");
  if (vr.valid) store.Write(vr.writes);

  std::printf("final balances: alice checking=%lld, bob checking=%lld\n",
              (long long)store.GetOrDefault(txn::CheckingKey("alice"), 0),
              (long long)store.GetOrDefault(txn::CheckingKey("bob"), 0));
  return 0;
}
