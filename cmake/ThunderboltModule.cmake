# Helpers that keep the per-module target definitions in src/, tests/ and
# bench/ down to one call each.

# thunderbolt_add_module(<name> SOURCES <src>... [DEPS <module>...])
#
# Defines static library thunderbolt_<name> (alias thunderbolt::<name>)
# whose public include root is src/, so sources keep their canonical
# `#include "module/header.h"` form. DEPS name sibling modules and are
# linked PUBLIC so dependency edges propagate to test and bench binaries.
function(thunderbolt_add_module name)
  cmake_parse_arguments(ARG "" "" "SOURCES;DEPS" ${ARGN})
  set(target thunderbolt_${name})
  add_library(${target} STATIC ${ARG_SOURCES})
  add_library(thunderbolt::${name} ALIAS ${target})
  target_include_directories(${target} PUBLIC ${PROJECT_SOURCE_DIR}/src)
  target_link_libraries(${target} PRIVATE thunderbolt::build_flags)
  foreach(dep IN LISTS ARG_DEPS)
    target_link_libraries(${target} PUBLIC thunderbolt::${dep})
  endforeach()
endfunction()

# thunderbolt_add_test(<name> SOURCES <src>... DEPS <module>...
#                      [LABELS <label>...])
#
# Defines a GoogleTest binary, links the named modules plus the shared
# tests/testutil helper library, and registers every TEST() in it with
# CTest via gtest_discover_tests. LABELS (default: unit) become CTest
# labels, so `ctest -L property` runs just the property suites.
function(thunderbolt_add_test name)
  cmake_parse_arguments(ARG "" "" "SOURCES;DEPS;LABELS" ${ARGN})
  if(NOT ARG_LABELS)
    set(ARG_LABELS unit)
  endif()
  add_executable(${name} ${ARG_SOURCES})
  target_link_libraries(${name} PRIVATE
    thunderbolt::testutil
    thunderbolt::build_flags
    GTest::gtest_main)
  foreach(dep IN LISTS ARG_DEPS)
    target_link_libraries(${name} PRIVATE thunderbolt::${dep})
  endforeach()
  # Note: gtest_discover_tests forwards PROPERTIES through a -D define,
  # which flattens list values — so each test gets exactly ONE label.
  gtest_discover_tests(${name}
    PROPERTIES LABELS "${ARG_LABELS}"
    DISCOVERY_TIMEOUT 60)
endfunction()

# thunderbolt_add_program(<name> SOURCES <src>... DEPS <module>...)
#
# A plain executable (benchmark or example) linked against the named
# modules. Bench sources include "bench/bench_util.h" relative to the
# repo root, so that directory is added too.
function(thunderbolt_add_program name)
  cmake_parse_arguments(ARG "" "" "SOURCES;DEPS" ${ARGN})
  add_executable(${name} ${ARG_SOURCES})
  target_include_directories(${name} PRIVATE ${PROJECT_SOURCE_DIR})
  target_link_libraries(${name} PRIVATE thunderbolt::build_flags)
  foreach(dep IN LISTS ARG_DEPS)
    target_link_libraries(${name} PRIVATE thunderbolt::${dep})
  endforeach()
endfunction()
