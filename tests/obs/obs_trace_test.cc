// RingTracer behavior (bounded wraparound, drop accounting) and the Chrome
// trace-event JSON export: every event serializes, spans become "X" records
// with a duration, instants become "i", and the whole document stays
// structurally well-formed (the CI smoke leg additionally runs it through
// `python3 -m json.tool`).
#include "obs/trace.h"

#include <string>
#include <vector>

#include <gtest/gtest.h>

namespace thunderbolt::obs {
namespace {

TraceEvent MakeEvent(uint64_t ts, EventKind kind = EventKind::kTxnCommit) {
  TraceEvent e;
  e.kind = kind;
  e.ts_us = ts;
  e.txn = ts;
  return e;
}

/// Structural JSON check: quote-aware brace/bracket balance plus no
/// dangling comma before a closer. Not a full parser, but catches the
/// classic emission bugs (trailing comma, unterminated string, unbalanced
/// nesting) without a JSON dependency.
bool LooksLikeWellFormedJson(const std::string& s) {
  std::vector<char> stack;
  bool in_string = false;
  char prev_significant = '\0';
  for (size_t i = 0; i < s.size(); ++i) {
    char c = s[i];
    if (in_string) {
      if (c == '\\') {
        ++i;  // Skip the escaped character.
      } else if (c == '"') {
        in_string = false;
        prev_significant = '"';
      }
      continue;
    }
    switch (c) {
      case '"': in_string = true; break;
      case '{': stack.push_back('}'); break;
      case '[': stack.push_back(']'); break;
      case '}':
      case ']':
        if (stack.empty() || stack.back() != c) return false;
        if (prev_significant == ',') return false;  // Trailing comma.
        stack.pop_back();
        break;
      default: break;
    }
    if (c != ' ' && c != '\n' && c != '\t' && c != '\r') {
      prev_significant = c;
    }
  }
  return !in_string && stack.empty();
}

TEST(TraceEnumsTest, NamesAndSpanKinds) {
  EXPECT_STREQ(AbortReasonName(AbortReason::kValidationFailure),
               "validation_failure");
  EXPECT_STREQ(AbortReasonName(AbortReason::kReadWriteConflict),
               "read_write_conflict");
  EXPECT_TRUE(IsSpanKind(EventKind::kTxnSpan));
  EXPECT_TRUE(IsSpanKind(EventKind::kBatchSpan));
  EXPECT_TRUE(IsSpanKind(EventKind::kValidateSpan));
  EXPECT_FALSE(IsSpanKind(EventKind::kTxnCommit));
  EXPECT_FALSE(IsSpanKind(EventKind::kCrash));
}

TEST(NullTracerTest, DisabledAndStateless) {
  Tracer* null_tracer = NullTracerInstance();
  ASSERT_NE(null_tracer, nullptr);
  EXPECT_FALSE(null_tracer->enabled());
  // Process-wide singleton: every call returns the same sink.
  EXPECT_EQ(NullTracerInstance(), null_tracer);
  null_tracer->Record(MakeEvent(1));  // No-op, must not crash.
}

TEST(RingTracerTest, RecordsUpToCapacity) {
  RingTracer tracer(4);
  EXPECT_TRUE(tracer.enabled());
  EXPECT_EQ(tracer.capacity(), 4u);
  for (uint64_t i = 1; i <= 3; ++i) tracer.Record(MakeEvent(i));
  EXPECT_EQ(tracer.size(), 3u);
  EXPECT_EQ(tracer.total_recorded(), 3u);
  EXPECT_EQ(tracer.dropped(), 0u);
  std::vector<TraceEvent> events = tracer.Snapshot();
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events.front().ts_us, 1u);  // Oldest first.
  EXPECT_EQ(events.back().ts_us, 3u);
}

TEST(RingTracerTest, WraparoundKeepsMostRecent) {
  RingTracer tracer(4);
  for (uint64_t i = 1; i <= 10; ++i) tracer.Record(MakeEvent(i));
  EXPECT_EQ(tracer.size(), 4u);
  EXPECT_EQ(tracer.total_recorded(), 10u);
  EXPECT_EQ(tracer.dropped(), 6u);
  std::vector<TraceEvent> events = tracer.Snapshot();
  ASSERT_EQ(events.size(), 4u);
  // The last `capacity` events, oldest-to-newest.
  for (size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(events[i].ts_us, 7u + i);
  }
}

TEST(RingTracerTest, ClearResets) {
  RingTracer tracer(4);
  tracer.Record(MakeEvent(1));
  tracer.Clear();
  EXPECT_EQ(tracer.size(), 0u);
  EXPECT_TRUE(tracer.Snapshot().empty());
}

TEST(ChromeJsonTest, SpanAndInstantEvents) {
  TraceEvent span;
  span.kind = EventKind::kTxnSpan;
  span.pid = 2;
  span.tid = 5;
  span.ts_us = 100;
  span.dur_us = 40;
  span.txn = 77;
  const std::string span_json = EventToChromeJson(span);
  EXPECT_NE(span_json.find("\"ph\":\"X\""), std::string::npos) << span_json;
  EXPECT_NE(span_json.find("\"dur\":40"), std::string::npos);
  EXPECT_NE(span_json.find("\"pid\":2"), std::string::npos);
  EXPECT_NE(span_json.find("\"tid\":5"), std::string::npos);
  EXPECT_TRUE(LooksLikeWellFormedJson(span_json));

  TraceEvent restart;
  restart.kind = EventKind::kTxnRestart;
  restart.reason = AbortReason::kCascadeInvalidation;
  restart.ts_us = 10;
  const std::string instant_json = EventToChromeJson(restart);
  EXPECT_NE(instant_json.find("\"ph\":\"i\""), std::string::npos)
      << instant_json;
  EXPECT_NE(instant_json.find("cascade_invalidation"), std::string::npos);
  EXPECT_TRUE(LooksLikeWellFormedJson(instant_json));
}

TEST(ChromeJsonTest, FullExportWellFormed) {
  RingTracer tracer(8);
  // One of every kind, wrapping the ring once on top.
  for (uint8_t k = 0; k <= static_cast<uint8_t>(EventKind::kCrash); ++k) {
    TraceEvent e = MakeEvent(k + 1, static_cast<EventKind>(k));
    e.reason = k == static_cast<uint8_t>(EventKind::kTxnRestart)
                   ? AbortReason::kReadWriteConflict
                   : AbortReason::kNone;
    e.dur_us = 5;
    tracer.Record(e);
  }
  const std::string json = tracer.ToChromeJson();
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_TRUE(LooksLikeWellFormedJson(json)) << json;

  // An empty ring still exports a loadable document.
  RingTracer empty(4);
  EXPECT_TRUE(LooksLikeWellFormedJson(empty.ToChromeJson()));
}

// The export header must make a wrapped capture visibly partial: the
// ring's drop accounting travels in "otherData" so a consumer (or the CI
// artifact reader) can tell "all events" from "the most recent N".
TEST(ChromeJsonTest, HeaderCarriesDropAccounting) {
  RingTracer tracer(4);
  for (uint64_t i = 1; i <= 10; ++i) tracer.Record(MakeEvent(i));
  const std::string json = tracer.ToChromeJson();
  EXPECT_NE(json.find("\"recorded_events\":10"), std::string::npos) << json;
  EXPECT_NE(json.find("\"dropped_events\":6"), std::string::npos) << json;
  EXPECT_TRUE(LooksLikeWellFormedJson(json));

  RingTracer fresh(4);
  fresh.Record(MakeEvent(1));
  const std::string no_drops = fresh.ToChromeJson();
  EXPECT_NE(no_drops.find("\"recorded_events\":1"), std::string::npos);
  EXPECT_NE(no_drops.find("\"dropped_events\":0"), std::string::npos);
}

// Causality fields are opt-in: an event without a trace_id exports exactly
// the pre-causality record, so historical traces stay byte-identical.
TEST(ChromeJsonTest, CausalityFieldsOnlyWithTraceId) {
  TraceEvent plain = MakeEvent(10, EventKind::kTxnSpan);
  EXPECT_EQ(EventToChromeJson(plain).find("trace_id"), std::string::npos);

  TraceEvent linked = plain;
  linked.trace_id = 42;
  linked.span_id = 2;
  linked.parent_id = 1;
  const std::string json = EventToChromeJson(linked);
  EXPECT_NE(json.find("\"trace_id\":42"), std::string::npos) << json;
  EXPECT_NE(json.find("\"span_id\":2"), std::string::npos);
  EXPECT_NE(json.find("\"parent_id\":1"), std::string::npos);
  EXPECT_TRUE(LooksLikeWellFormedJson(json));
}

TEST(FlowJsonTest, PhasesMapToChromeFlowRecords) {
  TraceEvent e;
  e.kind = EventKind::kCrossHoldSpan;
  e.pid = 3;
  e.ts_us = 500;
  e.dur_us = 20;
  e.trace_id = 77;
  e.span_id = 1;

  EXPECT_EQ(FlowToChromeJson(e), "");  // kNone: no extra record.

  e.flow = FlowPhase::kStart;
  const std::string start = FlowToChromeJson(e);
  EXPECT_NE(start.find("\"ph\":\"s\""), std::string::npos) << start;
  EXPECT_NE(start.find("\"id\":77"), std::string::npos);
  EXPECT_NE(start.find("\"cat\":\"flow\""), std::string::npos);
  EXPECT_EQ(start.find("\"bp\""), std::string::npos);
  EXPECT_TRUE(LooksLikeWellFormedJson(start));

  e.flow = FlowPhase::kStep;
  EXPECT_NE(FlowToChromeJson(e).find("\"ph\":\"t\""), std::string::npos);

  // The terminator binds to the enclosing slice so the arrow head lands
  // on the span, not on the next event on the track.
  e.flow = FlowPhase::kEnd;
  const std::string end = FlowToChromeJson(e);
  EXPECT_NE(end.find("\"ph\":\"f\""), std::string::npos) << end;
  EXPECT_NE(end.find("\"bp\":\"e\""), std::string::npos);
}

// A flow-tagged span exports two records: the "X" slice and its companion
// flow record, both inside one well-formed document.
TEST(FlowJsonTest, FullExportInterleavesFlowRecords) {
  RingTracer tracer(8);
  for (uint32_t shard = 0; shard < 2; ++shard) {
    TraceEvent e;
    e.kind = EventKind::kCrossHoldSpan;
    e.pid = shard;
    e.ts_us = 100;
    e.dur_us = 30;
    e.txn = 9;
    e.trace_id = 9;
    e.span_id = shard + 1;
    e.parent_id = shard == 0 ? 0 : 1;
    e.flow = shard == 0 ? FlowPhase::kStart : FlowPhase::kEnd;
    tracer.Record(e);
  }
  const std::string json = tracer.ToChromeJson();
  EXPECT_TRUE(LooksLikeWellFormedJson(json)) << json;
  EXPECT_NE(json.find("\"ph\":\"s\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"f\""), std::string::npos);
  // Both flow records share the transaction's trace id.
  size_t flows = 0;
  for (size_t pos = json.find("\"cat\":\"flow\""); pos != std::string::npos;
       pos = json.find("\"cat\":\"flow\"", pos + 1)) {
    ++flows;
  }
  EXPECT_EQ(flows, 2u);
}

TEST(ChromeJsonTest, DeterministicForSameEvents) {
  auto fill = [](RingTracer* t) {
    for (uint64_t i = 0; i < 6; ++i) {
      t->Record(MakeEvent(i, i % 2 == 0 ? EventKind::kTxnSpan
                                        : EventKind::kTxnCommit));
    }
  };
  RingTracer a(4), b(4);
  fill(&a);
  fill(&b);
  EXPECT_EQ(a.ToChromeJson(), b.ToChromeJson());
}

}  // namespace
}  // namespace thunderbolt::obs
