// MetricsRegistry semantics: stable references, non-creating lookups,
// deterministic JSON snapshots — plus the Histogram const-query contract
// the registry relies on (Percentile/Min/Max never reorder samples_).
#include "obs/metrics.h"

#include <string>

#include <gtest/gtest.h>

#include "common/histogram.h"

namespace thunderbolt::obs {
namespace {

TEST(MetricsRegistryTest, GetCounterReturnsStableReference) {
  MetricsRegistry registry;
  Counter& c = registry.GetCounter("pool.restarts");
  c.Inc();
  c.Inc(4);
  // Same name resolves to the same object; the value accumulated.
  EXPECT_EQ(&registry.GetCounter("pool.restarts"), &c);
  EXPECT_EQ(registry.GetCounter("pool.restarts").value(), 5u);
  // A different name is a different metric.
  EXPECT_NE(&registry.GetCounter("pool.batches"), &c);
  EXPECT_EQ(registry.GetCounter("pool.batches").value(), 0u);
}

TEST(MetricsRegistryTest, GaugeSetAndAdd) {
  MetricsRegistry registry;
  Gauge& g = registry.GetGauge("store.live_keys");
  g.Set(10.0);
  g.Add(2.5);
  EXPECT_DOUBLE_EQ(registry.GetGauge("store.live_keys").value(), 12.5);
  g.Set(-1.0);  // Last write wins.
  EXPECT_DOUBLE_EQ(g.value(), -1.0);
}

TEST(MetricsRegistryTest, HistogramObserveMergeSnapshot) {
  MetricsRegistry registry;
  HistogramMetric& h = registry.GetHistogram("latency_us");
  h.Observe(1.0);
  h.Observe(3.0);
  Histogram local;
  local.Add(2.0);
  h.Merge(local);
  Histogram snap = h.Snapshot();
  EXPECT_EQ(snap.Count(), 3u);
  EXPECT_DOUBLE_EQ(snap.Mean(), 2.0);
  EXPECT_DOUBLE_EQ(snap.Median(), 2.0);
}

TEST(MetricsRegistryTest, FindDoesNotCreate) {
  MetricsRegistry registry;
  EXPECT_EQ(registry.FindCounter("never.registered"), nullptr);
  EXPECT_EQ(registry.FindGauge("never.registered"), nullptr);
  EXPECT_EQ(registry.FindHistogram("never.registered"), nullptr);
  // The probe must not have materialized an entry in the snapshot.
  EXPECT_EQ(registry.ToJson().find("never.registered"), std::string::npos);

  Counter& c = registry.GetCounter("real");
  c.Inc(7);
  const Counter* found = registry.FindCounter("real");
  ASSERT_NE(found, nullptr);
  EXPECT_EQ(found, &c);
  EXPECT_EQ(found->value(), 7u);
}

TEST(MetricsRegistryTest, ToJsonIsDeterministicAndSorted) {
  auto populate = [](MetricsRegistry* r) {
    r->GetCounter("b.second").Inc(2);
    r->GetCounter("a.first").Inc(1);
    r->GetGauge("z.gauge").Set(1.5);
    r->GetHistogram("m.hist").Observe(10.0);
  };
  MetricsRegistry r1, r2;
  populate(&r1);
  populate(&r2);
  const std::string json = r1.ToJson();
  // Same contents -> same bytes, regardless of registration order effects.
  EXPECT_EQ(json, r2.ToJson());
  // Keys appear in sorted order within each section.
  EXPECT_LT(json.find("a.first"), json.find("b.second"));
  EXPECT_NE(json.find("z.gauge"), std::string::npos);
  EXPECT_NE(json.find("m.hist"), std::string::npos);
  EXPECT_NE(json.find("counters"), std::string::npos);
}

// Empty histograms must not fabricate statistics: a registered-but-never-
// observed histogram snapshots as {"count": 0} alone, since 0.0
// percentiles would be indistinguishable from a genuinely instant run.
TEST(MetricsRegistryTest, EmptyHistogramOmitsPercentiles) {
  MetricsRegistry registry;
  registry.GetHistogram("cluster.commit_latency_us");
  const std::string json = registry.ToJson();
  EXPECT_NE(json.find("\"cluster.commit_latency_us\": {\"count\": 0}"),
            std::string::npos)
      << json;
  EXPECT_EQ(json.find("mean"), std::string::npos) << json;
  EXPECT_EQ(json.find("p50"), std::string::npos) << json;

  // One observation restores the full stats block.
  registry.GetHistogram("cluster.commit_latency_us").Observe(2.0);
  const std::string with_sample = registry.ToJson();
  EXPECT_NE(with_sample.find("\"count\": 1"), std::string::npos);
  EXPECT_NE(with_sample.find("\"p50\""), std::string::npos);
  EXPECT_NE(with_sample.find("\"mean\""), std::string::npos);
}

TEST(LabeledMetricsTest, LabeledNameSortsKeysAndAcceptsIntegers) {
  // Keys sort, values keep their spelling; integral label values are
  // stringified so call sites can pass a shard id directly.
  EXPECT_EQ(LabeledName("cluster.shard.commits", {{"shard", 3}}),
            "cluster.shard.commits{shard=3}");
  EXPECT_EQ(LabeledName("m", {{"zone", "us"}, {"shard", 1}}),
            "m{shard=1,zone=us}");
  EXPECT_EQ(LabeledName("m", {{"shard", 1}, {"zone", "us"}}),
            LabeledName("m", {{"zone", "us"}, {"shard", 1}}));
  // No labels degenerates to the bare name.
  EXPECT_EQ(LabeledName("m", {}), "m");
}

TEST(LabeledMetricsTest, LabelSetsResolveToDistinctStableEntries) {
  MetricsRegistry registry;
  Counter& shard0 = registry.GetCounter("cluster.shard.commits", {{"shard", 0}});
  Counter& shard1 = registry.GetCounter("cluster.shard.commits", {{"shard", 1}});
  EXPECT_NE(&shard0, &shard1);
  // Same labels in any order -> the same entry.
  EXPECT_EQ(&registry.GetCounter("m", {{"a", 1}, {"b", 2}}),
            &registry.GetCounter("m", {{"b", 2}, {"a", 1}}));
  // The unlabeled name is its own metric, unrelated to the labeled ones.
  Counter& bare = registry.GetCounter("cluster.shard.commits");
  EXPECT_NE(&bare, &shard0);

  shard0.Inc(4);
  shard1.Inc(9);
  const Counter* found =
      registry.FindCounter("cluster.shard.commits", {{"shard", 1}});
  ASSERT_NE(found, nullptr);
  EXPECT_EQ(found->value(), 9u);
  EXPECT_EQ(registry.FindCounter("cluster.shard.commits", {{"shard", 7}}),
            nullptr);

  // Labeled gauges and histograms ride the same encoding.
  registry.GetGauge("pool.depth", {{"shard", 2}}).Set(5.0);
  ASSERT_NE(registry.FindGauge("pool.depth", {{"shard", 2}}), nullptr);
  registry.GetHistogram("lat_us", {{"shard", 2}}).Observe(1.0);
  ASSERT_NE(registry.FindHistogram("lat_us", {{"shard", 2}}), nullptr);

  // The encoded names serialize (sorted) into the snapshot, so labeled
  // series survive a --metrics-out round trip.
  const std::string json = registry.ToJson();
  EXPECT_NE(json.find("cluster.shard.commits{shard=0}"), std::string::npos)
      << json;
  EXPECT_NE(json.find("cluster.shard.commits{shard=1}"), std::string::npos);
  EXPECT_LT(json.find("cluster.shard.commits{shard=0}"),
            json.find("cluster.shard.commits{shard=1}"));
}

// The registry snapshots histograms through const references; these
// queries must be genuinely const: they sort a cache, never samples_.
TEST(HistogramConstQueryTest, QueriesDoNotReorderSamples) {
  Histogram h;
  h.Add(3.0);
  h.Add(1.0);
  h.Add(2.0);
  const Histogram& view = h;
  EXPECT_DOUBLE_EQ(view.Min(), 1.0);
  EXPECT_DOUBLE_EQ(view.Max(), 3.0);
  EXPECT_DOUBLE_EQ(view.Median(), 2.0);
  EXPECT_DOUBLE_EQ(view.Percentile(100.0), 3.0);
  // Insertion order survives every query above.
  ASSERT_EQ(view.samples().size(), 3u);
  EXPECT_DOUBLE_EQ(view.samples()[0], 3.0);
  EXPECT_DOUBLE_EQ(view.samples()[1], 1.0);
  EXPECT_DOUBLE_EQ(view.samples()[2], 2.0);
  // The cache invalidates on mutation: new samples show up in queries.
  h.Add(0.5);
  EXPECT_DOUBLE_EQ(view.Min(), 0.5);
  EXPECT_DOUBLE_EQ(view.samples().back(), 0.5);
}

}  // namespace
}  // namespace thunderbolt::obs
