// TimeSeriesRecorder window semantics (the invariant the CI schema script
// re-checks on every artifact: per-window counter deltas sum to the run
// totals), HealthMonitor watermark checks riding those windows, and the
// LatencyBreakdown / MergeIntoRegistry plumbing the per-phase latency
// decomposition uses.
#include <cstdint>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "obs/health.h"
#include "obs/latency.h"
#include "obs/metrics.h"
#include "obs/obs.h"
#include "obs/timeseries.h"
#include "obs/trace.h"

namespace thunderbolt::obs {
namespace {

TEST(TimeSeriesRecorderTest, ClosesWindowsAtBoundaries) {
  MetricsRegistry registry;
  TimeSeriesRecorder recorder(&registry, /*window_us=*/100);
  Counter& commits = registry.GetCounter("cluster.commits_single");

  commits.Inc(3);
  recorder.Advance(100);  // Closes [0, 100) with delta 3.
  commits.Inc(5);
  recorder.Advance(200);  // Closes [100, 200) with delta 5.

  std::vector<TimeSeriesWindow> windows = recorder.Snapshot();
  ASSERT_EQ(windows.size(), 2u);
  EXPECT_EQ(windows[0].start_us, 0u);
  EXPECT_EQ(windows[0].end_us, 100u);
  EXPECT_EQ(windows[0].Delta("cluster.commits_single"), 3u);
  EXPECT_EQ(windows[1].start_us, 100u);
  EXPECT_EQ(windows[1].end_us, 200u);
  EXPECT_EQ(windows[1].Delta("cluster.commits_single"), 5u);
  EXPECT_EQ(recorder.CounterTotal("cluster.commits_single"), 8u);
}

TEST(TimeSeriesRecorderTest, MultiWindowGapAttributesDeltaToLastWindow) {
  MetricsRegistry registry;
  TimeSeriesRecorder recorder(&registry, /*window_us=*/100);
  Counter& c = registry.GetCounter("c");

  c.Inc(7);
  recorder.Advance(350);  // Three whole windows close at once.
  std::vector<TimeSeriesWindow> windows = recorder.Snapshot();
  ASSERT_EQ(windows.size(), 3u);
  // Earlier gap windows close empty; the whole delta lands in the last
  // window this Advance closed (documented coarse-sampling behavior).
  EXPECT_EQ(windows[0].Delta("c"), 0u);
  EXPECT_EQ(windows[1].Delta("c"), 0u);
  EXPECT_EQ(windows[2].Delta("c"), 7u);
  EXPECT_EQ(recorder.CounterTotal("c"), 7u);
}

TEST(TimeSeriesRecorderTest, FlushClosesTrailingPartialWindow) {
  MetricsRegistry registry;
  TimeSeriesRecorder recorder(&registry, /*window_us=*/100);
  Counter& c = registry.GetCounter("c");

  c.Inc(2);
  recorder.Advance(100);
  c.Inc(4);
  recorder.Advance(140);  // Mid-window: nothing closes yet.
  EXPECT_EQ(recorder.window_count(), 1u);

  recorder.Flush();  // Partial window [100, 140] closes with the delta.
  std::vector<TimeSeriesWindow> windows = recorder.Snapshot();
  ASSERT_EQ(windows.size(), 2u);
  EXPECT_EQ(windows[1].start_us, 100u);
  EXPECT_EQ(windows[1].end_us, 140u);
  EXPECT_EQ(windows[1].Delta("c"), 4u);
  // The invariant the CI schema script enforces: window deltas sum to the
  // counter's final total.
  EXPECT_EQ(recorder.CounterTotal("c"), registry.GetCounter("c").value());

  // A second Flush with nothing new is a no-op.
  recorder.Flush();
  EXPECT_EQ(recorder.window_count(), 2u);
}

TEST(TimeSeriesRecorderTest, AdvanceIsMonotonic) {
  MetricsRegistry registry;
  TimeSeriesRecorder recorder(&registry, /*window_us=*/100);
  registry.GetCounter("c").Inc();
  recorder.Advance(200);
  recorder.Advance(50);  // In the past: must not close or reorder anything.
  EXPECT_EQ(recorder.window_count(), 2u);
  EXPECT_EQ(recorder.Snapshot().back().end_us, 200u);
}

TEST(TimeSeriesRecorderTest, WindowsCarryGaugesAndHistogramStats) {
  MetricsRegistry registry;
  TimeSeriesRecorder recorder(&registry, /*window_us=*/100);
  registry.GetGauge("pool.sim.queue_depth").Set(12.0);
  HistogramMetric& h = registry.GetHistogram("phase.execute_us");
  h.Observe(10.0);
  h.Observe(30.0);
  recorder.Advance(100);

  std::vector<TimeSeriesWindow> windows = recorder.Snapshot();
  ASSERT_EQ(windows.size(), 1u);
  ASSERT_EQ(windows[0].gauges.count("pool.sim.queue_depth"), 1u);
  EXPECT_DOUBLE_EQ(windows[0].gauges.at("pool.sim.queue_depth"), 12.0);
  ASSERT_EQ(windows[0].histograms.count("phase.execute_us"), 1u);
  const TimeSeriesWindow::HistStats& stats =
      windows[0].histograms.at("phase.execute_us");
  EXPECT_EQ(stats.count, 2u);
  EXPECT_DOUBLE_EQ(stats.mean, 20.0);
  EXPECT_DOUBLE_EQ(stats.max, 30.0);
}

TEST(TimeSeriesRecorderTest, JsonIsDeterministicAndSchemaShaped) {
  auto run = [] {
    MetricsRegistry registry;
    TimeSeriesRecorder recorder(&registry, /*window_us=*/100);
    registry.GetCounter("b.second").Inc(2);
    registry.GetCounter("a.first").Inc(1);
    recorder.Advance(100);
    registry.GetCounter("a.first").Inc(3);
    recorder.Advance(230);
    recorder.Flush();
    return recorder.ToJson();
  };
  const std::string json = run();
  EXPECT_EQ(json, run());  // Same inputs -> same bytes.
  // The shape check_timeseries.py validates: window_us, windows with
  // explicit spans, and a flat totals map.
  EXPECT_NE(json.find("\"window_us\": 100"), std::string::npos) << json;
  EXPECT_NE(json.find("\"windows\""), std::string::npos);
  EXPECT_NE(json.find("\"start_us\": 0"), std::string::npos);
  EXPECT_NE(json.find("\"totals\""), std::string::npos);
  EXPECT_NE(json.find("\"a.first\": 4"), std::string::npos) << json;
  // Zero deltas are omitted from windows, not invented.
  EXPECT_NE(json.find("\"b.second\": 2"), std::string::npos);
}

// --- HealthMonitor ---------------------------------------------------------

TimeSeriesWindow MakeWindow(uint64_t index, uint64_t commits, uint64_t aborts,
                            double queue_depth) {
  TimeSeriesWindow w;
  w.start_us = index * 100;
  w.end_us = (index + 1) * 100;
  if (commits > 0) w.counter_deltas["cluster.commits_single"] = commits;
  if (aborts > 0) w.counter_deltas["pool.sim.restarts"] = aborts;
  w.gauges["pool.sim.queue_depth"] = queue_depth;
  return w;
}

TEST(HealthMonitorTest, CommitStallFiresOncePerRun) {
  MetricsRegistry metrics;
  RingTracer tracer(16);
  HealthMonitor monitor(&metrics, &tracer);

  monitor.OnWindow(MakeWindow(0, /*commits=*/5, 0, 1.0));
  EXPECT_EQ(monitor.alerts(), 0u);
  // Two consecutive zero-commit windows trip the default watermark; a
  // longer stall does not re-fire until progress resumes.
  monitor.OnWindow(MakeWindow(1, 0, 0, 1.0));
  monitor.OnWindow(MakeWindow(2, 0, 0, 1.0));
  monitor.OnWindow(MakeWindow(3, 0, 0, 1.0));
  EXPECT_EQ(monitor.alerts(), 1u);
  EXPECT_EQ(metrics.GetCounter("health.alerts").value(), 1u);
  EXPECT_DOUBLE_EQ(metrics.GetGauge("health.commit_stalled").value(), 1.0);

  // Progress clears the stall gauge; a fresh stall fires a fresh alert.
  monitor.OnWindow(MakeWindow(4, 5, 0, 1.0));
  EXPECT_DOUBLE_EQ(metrics.GetGauge("health.commit_stalled").value(), 0.0);
  monitor.OnWindow(MakeWindow(5, 0, 0, 1.0));
  monitor.OnWindow(MakeWindow(6, 0, 0, 1.0));
  EXPECT_EQ(monitor.alerts(), 2u);

  // Every alert left a kHealth instant in the trace.
  size_t health_events = 0;
  for (const TraceEvent& e : tracer.Snapshot()) {
    if (e.kind == EventKind::kHealth) ++health_events;
  }
  EXPECT_EQ(health_events, 2u);
}

TEST(HealthMonitorTest, AbortRateSpikeAndGauge) {
  MetricsRegistry metrics;
  HealthMonitor monitor(&metrics, nullptr);
  monitor.OnWindow(MakeWindow(0, /*commits=*/9, /*aborts=*/1, 1.0));
  EXPECT_EQ(monitor.alerts(), 0u);
  EXPECT_DOUBLE_EQ(metrics.GetGauge("health.abort_rate").value(), 0.1);
  monitor.OnWindow(MakeWindow(1, /*commits=*/2, /*aborts=*/8, 1.0));
  EXPECT_EQ(monitor.alerts(), 1u);
  EXPECT_DOUBLE_EQ(metrics.GetGauge("health.abort_rate").value(), 0.8);
}

TEST(HealthMonitorTest, QueueGrowthAgainstTrailingAverage) {
  MetricsRegistry metrics;
  HealthMonitor monitor(&metrics, nullptr);
  // Build a trailing average of 2.0 over two windows, then jump past the
  // 2x growth watermark.
  monitor.OnWindow(MakeWindow(0, 5, 0, /*queue_depth=*/2.0));
  monitor.OnWindow(MakeWindow(1, 5, 0, /*queue_depth=*/2.0));
  EXPECT_EQ(monitor.alerts(), 0u);
  monitor.OnWindow(MakeWindow(2, 5, 0, /*queue_depth=*/10.0));
  EXPECT_EQ(monitor.alerts(), 1u);
  EXPECT_GT(metrics.GetGauge("health.queue_depth_trend").value(), 2.0);
}

TEST(ObservabilityBundleTest, SampleWindowDrivesRecorderAndHealth) {
  ObsOptions options;
  options.trace = true;
  options.timeseries = true;
  options.timeseries_window_us = 100;
  Observability obs(options);
  ASSERT_NE(obs.timeseries(), nullptr);
  ASSERT_NE(obs.health(), nullptr);

  // Three empty windows: the default stall watermark (2 windows) fires
  // through the bundle's SampleWindow -> HealthMonitor plumbing.
  obs.SampleWindow(100);
  obs.SampleWindow(200);
  obs.SampleWindow(300);
  EXPECT_EQ(obs.timeseries()->window_count(), 3u);
  EXPECT_EQ(obs.health()->alerts(), 1u);

  // SyncTraceStats mirrors the ring accounting into counters.
  TraceEvent e;
  e.kind = EventKind::kTxnCommit;
  obs.tracer()->Record(e);
  obs.SyncTraceStats();
  EXPECT_EQ(obs.metrics().GetCounter("trace.recorded_events").value(), 2u);
  EXPECT_EQ(obs.metrics().GetCounter("trace.dropped_events").value(), 0u);
}

// --- LatencyBreakdown ------------------------------------------------------

TEST(LatencyBreakdownTest, PhaseNamesAndMerge) {
  EXPECT_STREQ(PhaseName(Phase::kQueueWait), "queue_wait");
  EXPECT_STREQ(PhaseName(Phase::kCrossShardHold), "cross_shard_hold");
  EXPECT_STREQ(PhaseName(Phase::kRestartBackoff), "restart_backoff");

  LatencyBreakdown a, b;
  a[Phase::kExecute].Add(10.0);
  b[Phase::kExecute].Add(30.0);
  b[Phase::kValidate].Add(5.0);
  a.Merge(b);
  EXPECT_EQ(a[Phase::kExecute].Count(), 2u);
  EXPECT_DOUBLE_EQ(a[Phase::kExecute].Mean(), 20.0);
  EXPECT_EQ(a.TotalCount(), 3u);
  a.Clear();
  EXPECT_EQ(a.TotalCount(), 0u);
}

TEST(LatencyBreakdownTest, ToJsonListsEveryPhase) {
  LatencyBreakdown b;
  b[Phase::kCommitApply].Add(100.0);
  const std::string json = b.ToJson();
  // Every phase appears, empty ones as bare counts (the registry's
  // empty-histogram rule), populated ones with stats.
  for (size_t p = 0; p < kNumPhases; ++p) {
    EXPECT_NE(json.find(PhaseName(static_cast<Phase>(p))), std::string::npos)
        << json;
  }
  EXPECT_NE(json.find("\"commit_apply\": {\"count\": 1"), std::string::npos)
      << json;
  EXPECT_NE(json.find("\"queue_wait\": {\"count\": 0}"), std::string::npos)
      << json;
  // Deterministic bytes for equal contents.
  LatencyBreakdown c;
  c[Phase::kCommitApply].Add(100.0);
  EXPECT_EQ(json, c.ToJson());
}

TEST(LatencyBreakdownTest, MergeIntoRegistryUsesPhaseNames) {
  MetricsRegistry metrics;
  LatencyBreakdown b;
  b[Phase::kQueueWait].Add(7.0);
  b[Phase::kExecute].Add(3.0);
  MergeIntoRegistry(metrics, b);
  const HistogramMetric* queue = metrics.FindHistogram("phase.queue_wait_us");
  ASSERT_NE(queue, nullptr);
  EXPECT_EQ(queue->Snapshot().Count(), 1u);
  EXPECT_DOUBLE_EQ(queue->Snapshot().Mean(), 7.0);
  // Empty phases are not materialized as zero-count registry entries.
  EXPECT_EQ(metrics.FindHistogram("phase.validate_us"), nullptr);
}

}  // namespace
}  // namespace thunderbolt::obs
