// End-to-end observability: a traced sim-pool batch run and a traced
// cluster run must produce the spans/metrics the obs ISSUE promises —
// one lifecycle span per committed transaction, abort-reason breakdowns
// under contention, and cluster-level commit-path events.
#include <cstdint>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "baselines/occ_engine.h"
#include "ce/concurrency_controller.h"
#include "ce/executor_pool.h"
#include "contract/contract.h"
#include "core/cluster.h"
#include "obs/obs.h"
#include "storage/kv_store.h"
#include "workload/smallbank_workload.h"

namespace thunderbolt {
namespace {

size_t CountKind(const std::vector<obs::TraceEvent>& events,
                 obs::EventKind kind) {
  size_t n = 0;
  for (const obs::TraceEvent& e : events) {
    if (e.kind == kind) ++n;
  }
  return n;
}

/// One high-contention SmallBank batch through the sim pool with `engine`.
std::vector<obs::TraceEvent> RunTracedBatch(obs::Observability* obs,
                                            bool use_occ,
                                            uint32_t batch_size) {
  workload::SmallBankConfig wc;
  wc.num_accounts = 40;  // Tiny account pool -> heavy conflicts.
  wc.theta = 0.95;
  wc.seed = 7;
  workload::SmallBankWorkload w(wc);
  storage::MemKVStore store;
  w.InitStore(&store);
  auto registry = contract::Registry::CreateDefault();
  auto batch = w.MakeBatch(batch_size);

  std::unique_ptr<ce::ExecutorPool> pool =
      ce::CreateExecutorPool("sim", 8, ce::ExecutionCostModel{});
  pool->SetObs(ce::PoolObsContext{obs->tracer(), &obs->metrics(), 0});
  std::unique_ptr<ce::BatchEngine> engine;
  if (use_occ) {
    engine = std::make_unique<baselines::OccEngine>(&store, batch_size);
  } else {
    engine = std::make_unique<ce::ConcurrencyController>(&store, batch_size);
  }
  auto r = pool->Run(*engine, *registry, batch);
  EXPECT_TRUE(r.ok());
  EXPECT_EQ(r->order.size(), batch_size);  // Every txn committed.
  return obs->ring()->Snapshot();
}

TEST(ObsPoolIntegrationTest, OneSpanPerCommittedTxnAndAbortReasons) {
  obs::ObsOptions options;
  options.trace = true;
  obs::Observability obs(options);
  const uint32_t batch_size = 200;
  std::vector<obs::TraceEvent> events =
      RunTracedBatch(&obs, /*use_occ=*/true, batch_size);

  // Exactly one lifecycle span and one commit instant per transaction,
  // plus one batch span.
  EXPECT_EQ(CountKind(events, obs::EventKind::kTxnSpan), batch_size);
  EXPECT_EQ(CountKind(events, obs::EventKind::kTxnCommit), batch_size);
  EXPECT_EQ(CountKind(events, obs::EventKind::kBatchSpan), 1u);

  // OCC at theta=0.95 on 40 accounts must restart transactions, and every
  // restart event names its cause.
  const size_t restarts = CountKind(events, obs::EventKind::kTxnRestart);
  EXPECT_GT(restarts, 0u);
  for (const obs::TraceEvent& e : events) {
    if (e.kind == obs::EventKind::kTxnRestart) {
      EXPECT_EQ(e.reason, obs::AbortReason::kValidationFailure);
    }
  }

  // The same breakdown lands in the metrics registry.
  const obs::Counter* reason_counter =
      obs.metrics().FindCounter("pool.sim.restart_reason.validation_failure");
  ASSERT_NE(reason_counter, nullptr);
  EXPECT_EQ(reason_counter->value(), restarts);
  const obs::Counter* txns = obs.metrics().FindCounter("pool.sim.txns");
  ASSERT_NE(txns, nullptr);
  EXPECT_EQ(txns->value(), batch_size);
  const obs::HistogramMetric* latency =
      obs.metrics().FindHistogram("pool.sim.commit_latency_us");
  ASSERT_NE(latency, nullptr);
  EXPECT_EQ(latency->Snapshot().Count(), batch_size);
}

TEST(ObsPoolIntegrationTest, CcBreaksAbortsDownByConflictKind) {
  obs::ObsOptions options;
  options.trace = true;
  obs::Observability obs(options);
  std::vector<obs::TraceEvent> events =
      RunTracedBatch(&obs, /*use_occ=*/false, 200);
  // The CC reports kReadWriteConflict / kCascadeInvalidation, never OCC's
  // validation failure.
  for (const obs::TraceEvent& e : events) {
    if (e.kind == obs::EventKind::kTxnRestart) {
      EXPECT_TRUE(e.reason == obs::AbortReason::kReadWriteConflict ||
                  e.reason == obs::AbortReason::kCascadeInvalidation)
          << static_cast<int>(e.reason);
    }
  }
  EXPECT_EQ(obs.metrics().FindCounter(
                "pool.sim.restart_reason.validation_failure"),
            nullptr);
}

TEST(ObsClusterIntegrationTest, TracedClusterEmitsCommitPathEvents) {
  core::ThunderboltConfig cfg;
  cfg.n = 4;
  cfg.batch_size = 100;
  cfg.seed = 21;
  cfg.obs.trace = true;
  cfg.obs.trace_capacity = 1u << 18;  // Large enough: no wraparound below.
  workload::WorkloadOptions wo;
  wo.num_records = 300;
  wo.theta = 0.9;
  wo.read_ratio = 0.5;
  wo.cross_shard_ratio = 0.1;
  wo.seed = 22;
  core::Cluster cluster(cfg, "smallbank", wo);
  core::ClusterResult r = cluster.Run(Seconds(2));
  ASSERT_GT(r.committed_single, 0u);
  ASSERT_GT(r.committed_cross, 0u);

  ASSERT_NE(cluster.obs().ring(), nullptr);
  EXPECT_EQ(cluster.obs().ring()->dropped(), 0u);
  std::vector<obs::TraceEvent> events = cluster.obs().ring()->Snapshot();

  // Every committed single-shard transaction was preplayed under a traced
  // pool before its block committed, so the ring holds at least one
  // lifecycle span per committed single-shard transaction.
  EXPECT_GE(CountKind(events, obs::EventKind::kTxnSpan), r.committed_single);
  // The observer records the commit path: validation replays and
  // cross-shard execution spans.
  EXPECT_GT(CountKind(events, obs::EventKind::kValidateSpan), 0u);
  EXPECT_GT(CountKind(events, obs::EventKind::kCrossShardSpan), 0u);

  // ClusterResult's abort-reason breakdown matches the trace's restart
  // events (the sim pool records one kTxnRestart per counted abort). The
  // breakdown spans every replica's pool, so it at least covers the
  // observer-only preplay_aborts counter.
  uint64_t reason_total = 0;
  for (uint64_t count : r.abort_reasons) reason_total += count;
  EXPECT_GT(reason_total, 0u);
  EXPECT_GE(reason_total, r.preplay_aborts);
  EXPECT_EQ(CountKind(events, obs::EventKind::kTxnRestart), reason_total);

  // p999 is wired and ordered with the other percentiles.
  EXPECT_GE(r.p999_latency_s, r.p99_latency_s);

  // Cluster-level counters were surfaced into the registry.
  const obs::Counter* committed =
      cluster.obs().metrics().FindCounter("cluster.committed_single");
  ASSERT_NE(committed, nullptr);
  EXPECT_EQ(committed->value(), r.committed_single);
  const obs::Counter* gets =
      cluster.obs().metrics().FindCounter("store.gets");
  ASSERT_NE(gets, nullptr);
  EXPECT_GT(gets->value(), 0u);
}

// The time-series / causality / phase-decomposition tentpole, end to end:
// a traced cluster run with windowed sampling must attribute every commit
// to exactly one window (deltas sum to the run totals), link a cross-shard
// transaction's hold spans across shards through flow events, break the
// totals down per shard via labeled counters, and populate both the pool-
// side and consensus-side phases of ClusterResult::phase_latency.
TEST(ObsClusterIntegrationTest, TimeSeriesWindowsSumToRunTotals) {
  core::ThunderboltConfig cfg;
  cfg.n = 4;
  cfg.batch_size = 100;
  cfg.seed = 31;
  cfg.obs.trace = true;
  cfg.obs.trace_capacity = 1u << 18;
  cfg.obs.timeseries = true;
  cfg.obs.timeseries_window_us = 100000;  // 100ms windows over a 2s run.
  workload::WorkloadOptions wo;
  wo.num_records = 300;
  wo.theta = 0.9;
  wo.read_ratio = 0.5;
  wo.cross_shard_ratio = 0.1;
  wo.seed = 32;
  core::Cluster cluster(cfg, "smallbank", wo);
  core::ClusterResult r = cluster.Run(Seconds(2));
  ASSERT_GT(r.committed_single, 0u);
  ASSERT_GT(r.committed_cross, 0u);

  // Close the trailing partial window; the per-window cluster.commits_*
  // deltas must then sum exactly to the run's completion-time totals —
  // the invariant scripts/check_timeseries.py re-checks on CI artifacts.
  cluster.obs().FlushTimeSeries();
  obs::TimeSeriesRecorder* ts = cluster.obs().timeseries();
  ASSERT_NE(ts, nullptr);
  EXPECT_GE(ts->window_count(), 10u);
  EXPECT_EQ(ts->CounterTotal("cluster.commits_single"), r.committed_single);
  EXPECT_EQ(ts->CounterTotal("cluster.commits_cross"), r.committed_cross);
  // Commits spread across windows: a throughput-over-time series, not one
  // end-of-run lump.
  size_t windows_with_commits = 0;
  for (const obs::TimeSeriesWindow& w : ts->Snapshot()) {
    if (w.Delta("cluster.commits_single") > 0) ++windows_with_commits;
  }
  EXPECT_GT(windows_with_commits, 1u);

  // The labeled per-shard counters partition the same totals.
  uint64_t shard_single = 0;
  uint64_t shard_cross = 0;
  for (uint32_t shard = 0; shard < cfg.n; ++shard) {
    const obs::Counter* single = cluster.obs().metrics().FindCounter(
        "cluster.shard.commits", {{"shard", shard}});
    if (single != nullptr) shard_single += single->value();
    const obs::Counter* cross = cluster.obs().metrics().FindCounter(
        "cluster.shard.commits_cross", {{"shard", shard}});
    if (cross != nullptr) shard_cross += cross->value();
  }
  EXPECT_EQ(shard_single, r.committed_single);
  EXPECT_EQ(shard_cross, r.committed_cross);

  // Cross-shard causality: at least one transaction's hold spans appear on
  // two or more shards (pids) under one trace id, linked by a flow chain
  // that starts and ends.
  ASSERT_NE(cluster.obs().ring(), nullptr);
  std::map<uint64_t, std::set<uint32_t>> shards_by_trace;
  size_t flow_starts = 0;
  size_t flow_ends = 0;
  for (const obs::TraceEvent& e : cluster.obs().ring()->Snapshot()) {
    if (e.kind != obs::EventKind::kCrossHoldSpan) continue;
    EXPECT_NE(e.trace_id, 0u);
    if (e.flow == obs::FlowPhase::kNone) continue;
    shards_by_trace[e.trace_id].insert(e.pid);
    if (e.flow == obs::FlowPhase::kStart) ++flow_starts;
    if (e.flow == obs::FlowPhase::kEnd) ++flow_ends;
  }
  bool linked_across_shards = false;
  for (const auto& [trace_id, shards] : shards_by_trace) {
    if (shards.size() >= 2) linked_across_shards = true;
  }
  EXPECT_TRUE(linked_across_shards);
  EXPECT_GT(flow_starts, 0u);
  EXPECT_EQ(flow_starts, flow_ends);  // Every chain terminates.

  // Per-phase latency decomposition: the pools filled the preplay-side
  // phases, the observer's commit path the consensus-side ones.
  EXPECT_GT(r.phase_latency[obs::Phase::kQueueWait].Count(), 0u);
  EXPECT_GT(r.phase_latency[obs::Phase::kExecute].Count(), 0u);
  EXPECT_GT(r.phase_latency[obs::Phase::kValidate].Count(), 0u);
  EXPECT_GT(r.phase_latency[obs::Phase::kCommitApply].Count(), 0u);
  EXPECT_GT(r.phase_latency[obs::Phase::kCrossShardHold].Count(), 0u);
}

TEST(ObsClusterIntegrationTest, TracingOffByDefaultAndNullSafe) {
  core::ThunderboltConfig cfg;
  cfg.n = 4;
  cfg.batch_size = 100;
  cfg.seed = 23;
  workload::WorkloadOptions wo;
  wo.num_records = 300;
  wo.seed = 24;
  core::Cluster cluster(cfg, "smallbank", wo);
  core::ClusterResult r = cluster.Run(Seconds(1));
  EXPECT_GT(r.committed_single, 0u);
  // No ring is allocated; the tracer is the shared no-op sink.
  EXPECT_EQ(cluster.obs().ring(), nullptr);
  EXPECT_FALSE(cluster.obs().tracer()->enabled());
  // Metrics still work without tracing.
  EXPECT_NE(cluster.obs().metrics().FindCounter("cluster.committed_single"),
            nullptr);
}

}  // namespace
}  // namespace thunderbolt
