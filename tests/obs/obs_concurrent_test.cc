// Concurrent-recording stress for the obs sinks (the TSan CI leg runs
// this suite via the `thread` label): many real threads hammer one
// RingTracer and one MetricsRegistry while readers snapshot/export, and
// every event and increment must be accounted for.
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "obs/metrics.h"
#include "obs/timeseries.h"
#include "obs/trace.h"

namespace thunderbolt::obs {
namespace {

TEST(ObsConcurrentTest, ConcurrentRecordAccountsForEveryEvent) {
  constexpr int kThreads = 8;
  constexpr uint64_t kPerThread = 5000;
  RingTracer tracer(1 << 10);  // Much smaller than the load: forces wraps.

  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&tracer, t]() {
      for (uint64_t i = 0; i < kPerThread; ++i) {
        TraceEvent e;
        e.kind = i % 3 == 0 ? EventKind::kTxnSpan : EventKind::kTxnRestart;
        e.reason = e.kind == EventKind::kTxnRestart
                       ? AbortReason::kReadWriteConflict
                       : AbortReason::kNone;
        e.tid = static_cast<uint32_t>(t);
        e.ts_us = i;
        tracer.Record(e);
      }
    });
  }
  // Concurrent readers: snapshots and exports must stay internally
  // consistent while writers are active.
  std::thread reader([&tracer]() {
    for (int i = 0; i < 50; ++i) {
      std::vector<TraceEvent> snap = tracer.Snapshot();
      EXPECT_LE(snap.size(), tracer.capacity());
      std::string json = tracer.ToChromeJson();
      EXPECT_FALSE(json.empty());
    }
  });
  for (std::thread& w : workers) w.join();
  reader.join();

  EXPECT_EQ(tracer.total_recorded(), kThreads * kPerThread);
  EXPECT_EQ(tracer.size(), tracer.capacity());
  EXPECT_EQ(tracer.dropped(), kThreads * kPerThread - tracer.capacity());
}

TEST(ObsConcurrentTest, ConcurrentMetricsUpdatesSum) {
  constexpr int kThreads = 8;
  constexpr uint64_t kPerThread = 20000;
  MetricsRegistry registry;

  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&registry, t]() {
      // Resolve-once-then-touch-the-atomic is the documented idiom, but
      // re-resolving from other threads must also be safe.
      Counter& mine = registry.GetCounter("shared.counter");
      Histogram local;
      for (uint64_t i = 0; i < kPerThread; ++i) {
        mine.Inc();
        registry.GetGauge("gauge." + std::to_string(t)).Add(1.0);
        local.Add(static_cast<double>(i));
      }
      registry.GetHistogram("shared.hist").Merge(local);
    });
  }
  std::thread reader([&registry]() {
    for (int i = 0; i < 50; ++i) {
      EXPECT_FALSE(registry.ToJson().empty());
    }
  });
  for (std::thread& w : workers) w.join();
  reader.join();

  EXPECT_EQ(registry.GetCounter("shared.counter").value(),
            kThreads * kPerThread);
  EXPECT_EQ(registry.GetHistogram("shared.hist").Snapshot().Count(),
            kThreads * kPerThread);
  for (int t = 0; t < kThreads; ++t) {
    EXPECT_DOUBLE_EQ(registry.GetGauge("gauge." + std::to_string(t)).value(),
                     static_cast<double>(kPerThread));
  }
}

// Labeled metrics resolve through the registry map under its mutex; many
// threads racing Get on the same and different label sets must converge
// on one entry per set with nothing lost.
TEST(ObsConcurrentTest, ConcurrentLabeledCounterResolution) {
  constexpr int kThreads = 8;
  constexpr uint64_t kPerThread = 10000;
  constexpr int kShards = 4;
  MetricsRegistry registry;

  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&registry, t]() {
      for (uint64_t i = 0; i < kPerThread; ++i) {
        const int shard = static_cast<int>((t + i) % kShards);
        registry.GetCounter("cluster.shard.commits", {{"shard", shard}})
            .Inc();
      }
    });
  }
  std::thread reader([&registry]() {
    for (int i = 0; i < 50; ++i) {
      EXPECT_FALSE(registry.ToJson().empty());
    }
  });
  for (std::thread& w : workers) w.join();
  reader.join();

  uint64_t total = 0;
  for (int shard = 0; shard < kShards; ++shard) {
    const Counter* c =
        registry.FindCounter("cluster.shard.commits", {{"shard", shard}});
    ASSERT_NE(c, nullptr);
    // Each thread hits every shard kPerThread / kShards times.
    EXPECT_EQ(c->value(), kThreads * kPerThread / kShards);
    total += c->value();
  }
  EXPECT_EQ(total, kThreads * kPerThread);
}

// TimeSeriesRecorder under the thread pool: one sampler advancing a
// wall-ish clock while workers hammer counters. Every increment must land
// in exactly one window — after a final Flush the per-window deltas sum
// to the counters' totals no matter how the samples interleaved.
TEST(ObsConcurrentTest, ConcurrentAdvanceAccountsForEveryIncrement) {
  constexpr int kThreads = 6;
  constexpr uint64_t kPerThread = 20000;
  MetricsRegistry registry;
  TimeSeriesRecorder recorder(&registry, /*window_us=*/50);

  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&registry, t]() {
      Counter& mine =
          registry.GetCounter("worker.ops", {{"lane", t}});
      for (uint64_t i = 0; i < kPerThread; ++i) {
        mine.Inc();
        registry.GetCounter("shared.ops").Inc();
      }
    });
  }
  std::thread sampler([&recorder]() {
    for (uint64_t now = 50; now <= 5000; now += 50) {
      recorder.Advance(now);
    }
  });
  std::thread reader([&recorder]() {
    for (int i = 0; i < 20; ++i) {
      std::vector<TimeSeriesWindow> snap = recorder.Snapshot();
      EXPECT_FALSE(recorder.ToJson().empty());
      (void)snap;
    }
  });
  for (std::thread& w : workers) w.join();
  sampler.join();
  reader.join();

  recorder.Flush();  // Close the trailing window holding the stragglers.
  EXPECT_EQ(recorder.CounterTotal("shared.ops"), kThreads * kPerThread);
  for (int t = 0; t < kThreads; ++t) {
    EXPECT_EQ(recorder.CounterTotal(LabeledName("worker.ops", {{"lane", t}})),
              kPerThread);
  }
}

}  // namespace
}  // namespace thunderbolt::obs
