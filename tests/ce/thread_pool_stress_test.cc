// High-contention stress for ThreadExecutorPool: every (workload, engine,
// thread-count) cell must commit every transaction, preserve the
// workload's invariant, and — because the configs keep committed effects
// commutative (see workload/cross_engine_agreement_test.cc) — reach the
// exact final fingerprint the deterministic sim pool computes.
//
// This is the suite the TSan CI leg leans on (`ctest -L thread`): real
// worker threads hammer the engines' cross-slot shared state (CC latch,
// OCC verifier, 2PL lock table) under a zipfian hot set, so any missing
// synchronization shows up as a data-race report or a fingerprint split.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <tuple>
#include <vector>

#include "baselines/engine_registration.h"
#include "ce/executor_pool.h"
#include "contract/contract.h"
#include "storage/kv_store.h"
#include "testutil/testutil.h"
#include "workload/workload.h"

namespace thunderbolt::ce {
namespace {

constexpr uint32_t kBatchSize = 200;
constexpr uint32_t kBatches = 2;

workload::WorkloadOptions StressOptions(const std::string& workload_name,
                                        uint64_t seed) {
  workload::WorkloadOptions options;
  options.seed = seed;
  options.num_records = 300;  // Small zipfian population -> hot keys.
  options.theta = 0.85;
  if (workload_name == "ycsb") {
    options.read_ratio = 0.5;   // Commutative mix: reads + RMW increments.
    options.update_ratio = 0.0;
  }
  return options;
}

/// Runs kBatches batches through `engine_name` on the named pool and
/// returns the final store fingerprint (0 on failure, after EXPECTs).
uint64_t RunCell(const std::string& workload_name,
                 const std::string& engine_name, const std::string& pool_name,
                 uint32_t executors, uint64_t seed) {
  auto w = workload::WorkloadRegistry::Global().Create(
      workload_name, StressOptions(workload_name, seed));
  EXPECT_NE(w, nullptr);
  storage::MemKVStore store;
  w->InitStore(&store);
  auto registry = contract::Registry::CreateDefault();
  auto pool = CreateExecutorPool(pool_name, executors, ExecutionCostModel{});
  EXPECT_NE(pool, nullptr);
  for (uint32_t b = 0; b < kBatches; ++b) {
    auto batch = w->MakeBatch(kBatchSize);
    std::unique_ptr<BatchEngine> engine =
        baselines::RegisterBaselineEngines().Create(engine_name, &store,
                                                    kBatchSize);
    EXPECT_NE(engine, nullptr) << engine_name;
    if (engine == nullptr) return 0;
    auto r = pool->Run(*engine, *registry, batch);
    EXPECT_TRUE(r.ok()) << engine_name << "/" << pool_name << " x"
                        << executors << ": " << r.status().ToString();
    if (!r.ok()) return 0;
    EXPECT_EQ(r->order.size(), kBatchSize);
    // Every slot commits exactly once.
    std::vector<bool> seen(kBatchSize, false);
    for (TxnSlot s : r->order) {
      EXPECT_LT(s, kBatchSize);
      EXPECT_FALSE(seen[s]);
      seen[s] = true;
    }
    EXPECT_GE(r->commit_latency_us.Count(), kBatchSize);
    EXPECT_TRUE(store.Write(r->final_writes).ok());
  }
  Status invariant = w->CheckInvariant(store);
  EXPECT_TRUE(invariant.ok())
      << workload_name << " under " << engine_name << "/" << pool_name
      << ": " << invariant.ToString();
  return store.ContentFingerprint();
}

/// (workload, engine, thread count).
using StressParam = std::tuple<std::string, std::string, uint32_t>;

class ThreadPoolStressTest : public ::testing::TestWithParam<StressParam> {};

TEST_P(ThreadPoolStressTest, CommitsAllAndAgreesWithSim) {
  const auto& [workload_name, engine_name, threads] = GetParam();
  const uint64_t seed = 41;
  const uint64_t sim_fp = RunCell(workload_name, engine_name, "sim",
                                  /*executors=*/8, seed);
  const uint64_t thread_fp =
      RunCell(workload_name, engine_name, "thread", threads, seed);
  EXPECT_EQ(thread_fp, sim_fp)
      << workload_name << "/" << engine_name << " with " << threads
      << " threads diverged from the sim pool";
}

std::vector<StressParam> StressMatrix() {
  std::vector<StressParam> params;
  for (const char* workload : {"smallbank", "ycsb"}) {
    for (const char* engine : {"ce", "occ", "2pl"}) {
      for (uint32_t threads : {2u, 4u, 8u}) {
        params.emplace_back(workload, engine, threads);
      }
    }
  }
  return params;
}

INSTANTIATE_TEST_SUITE_P(
    AllEngines, ThreadPoolStressTest, ::testing::ValuesIn(StressMatrix()),
    [](const auto& info) {
      const std::string& workload = std::get<0>(info.param);
      const std::string engine =
          std::get<1>(info.param) == "2pl" ? "tpl" : std::get<1>(info.param);
      return workload + "_" + engine + "_t" +
             std::to_string(std::get<2>(info.param));
    });

}  // namespace
}  // namespace thunderbolt::ce
