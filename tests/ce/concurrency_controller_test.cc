// Unit tests for the CC dependency graph, covering the paper's worked
// examples: Figure 9 (graph construction), Figure 10 (cycle fallback and
// cascading aborts) and the nondeterministic ordering rules of section 8.
#include "ce/concurrency_controller.h"

#include <gtest/gtest.h>

#include "storage/kv_store.h"
#include "testutil/testutil.h"

namespace thunderbolt::ce {
namespace {

class CcTest : public ::testing::Test {
 protected:
  // "D" starts at 3, the Table 1 initial value.
  storage::MemKVStore store_ =
      testutil::MakeStore({{"A", 0}, {"B", 0}, {"C", 0}, {"D", 3}});
};

TEST_F(CcTest, SingleTxnReadsRoot) {
  ConcurrencyController cc(&store_, 1);
  uint32_t inc = cc.Begin(0);
  auto v = cc.Read(0, inc, "D");
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, 3);
  EXPECT_TRUE(cc.Finish(0, inc).ok());
  EXPECT_TRUE(cc.AllCommitted());
  EXPECT_EQ(cc.SerializationOrder(), (std::vector<TxnSlot>{0}));
}

TEST_F(CcTest, ReadYourOwnWrite) {
  ConcurrencyController cc(&store_, 1);
  uint32_t inc = cc.Begin(0);
  ASSERT_TRUE(cc.Write(0, inc, "A", 7).ok());
  auto v = cc.Read(0, inc, "A");
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, 7);
  EXPECT_TRUE(cc.Finish(0, inc).ok());
}

TEST_F(CcTest, ReadUncommittedValueFromOtherTxn) {
  // Table 1, time 2: T2 reads D's value written by the uncommitted T1.
  ConcurrencyController cc(&store_, 2);
  uint32_t i0 = cc.Begin(0);
  uint32_t i1 = cc.Begin(1);
  ASSERT_TRUE(cc.Write(0, i0, "D", 5).ok());
  auto v = cc.Read(1, i1, "D");
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, 5);
  EXPECT_TRUE(cc.HasEdge(0, 1));  // Value flow orders T0 before T1.
}

TEST_F(CcTest, ReaderWaitsForSourceCommit) {
  ConcurrencyController cc(&store_, 2);
  uint32_t i0 = cc.Begin(0);
  uint32_t i1 = cc.Begin(1);
  ASSERT_TRUE(cc.Write(0, i0, "D", 5).ok());
  ASSERT_TRUE(cc.Read(1, i1, "D").ok());
  // T1 finishes first but cannot commit until its source T0 commits.
  ASSERT_TRUE(cc.Finish(1, i1).ok());
  EXPECT_EQ(cc.committed_count(), 0u);
  ASSERT_TRUE(cc.Finish(0, i0).ok());
  EXPECT_TRUE(cc.AllCommitted());
  EXPECT_EQ(cc.SerializationOrder(), (std::vector<TxnSlot>{0, 1}));
}

TEST_F(CcTest, RewriteCascadesAbortToReaders) {
  // Table 1 time 5 / Figure 10b: T0 rewrites D after T1 consumed the old
  // value; T1 is cascade-aborted, T0 survives.
  ConcurrencyController cc(&store_, 2);
  bool aborted[2] = {false, false};
  cc.SetAbortCallback([&](TxnSlot s, obs::AbortReason) { aborted[s] = true; });
  uint32_t i0 = cc.Begin(0);
  uint32_t i1 = cc.Begin(1);
  ASSERT_TRUE(cc.Write(0, i0, "D", 4).ok());
  ASSERT_TRUE(cc.Read(1, i1, "D").ok());
  ASSERT_TRUE(cc.Write(0, i0, "D", 5).ok());  // Rewrite.
  EXPECT_TRUE(aborted[1]);
  EXPECT_FALSE(aborted[0]);
  EXPECT_EQ(cc.total_aborts(), 1u);
  // T1's old incarnation is rejected.
  EXPECT_TRUE(cc.Read(1, i1, "D").status().IsAborted());
  // T1 re-executes and reads the new value.
  uint32_t i1b = cc.Begin(1);
  auto v = cc.Read(1, i1b, "D");
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, 5);
  ASSERT_TRUE(cc.Finish(0, i0).ok());
  ASSERT_TRUE(cc.Finish(1, i1b).ok());
  EXPECT_TRUE(cc.AllCommitted());
}

TEST_F(CcTest, WriteAfterReadOrdersReaderFirst) {
  // Figure 9a: a new writer orders existing readers before itself, so the
  // readers keep their values.
  ConcurrencyController cc(&store_, 2);
  uint32_t i0 = cc.Begin(0);
  uint32_t i1 = cc.Begin(1);
  auto v = cc.Read(0, i0, "A");  // Reads root (0).
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, 0);
  ASSERT_TRUE(cc.Write(1, i1, "A", 9).ok());
  EXPECT_TRUE(cc.HasEdge(0, 1));  // Reader before writer.
  ASSERT_TRUE(cc.Finish(0, i0).ok());
  ASSERT_TRUE(cc.Finish(1, i1).ok());
  EXPECT_EQ(cc.SerializationOrder(), (std::vector<TxnSlot>{0, 1}));
}

TEST_F(CcTest, ReadPrefersLatestWriter) {
  // Figure 9b: T3 reads A from the most recent writer; other writers are
  // ordered before the source.
  ConcurrencyController cc(&store_, 3);
  uint32_t i0 = cc.Begin(0);
  uint32_t i1 = cc.Begin(1);
  uint32_t i2 = cc.Begin(2);
  ASSERT_TRUE(cc.Write(0, i0, "A", 1).ok());
  ASSERT_TRUE(cc.Write(1, i1, "A", 2).ok());
  auto v = cc.Read(2, i2, "A");
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, 2);               // Latest writer's value.
  EXPECT_TRUE(cc.HasEdge(1, 2));  // Source before reader.
  // The older writer must be ordered before the source.
  EXPECT_TRUE(cc.HasEdge(0, 1));
  EXPECT_TRUE(cc.GraphIsAcyclic());
}

TEST_F(CcTest, CycleFallbackReadsAncestor) {
  // Figure 10a: T0 reads B, but B's latest writer T1 already depends on
  // T0; the read falls back to the root and T1 stays alive.
  ConcurrencyController cc(&store_, 2);
  bool aborted[2] = {false, false};
  cc.SetAbortCallback([&](TxnSlot s, obs::AbortReason) { aborted[s] = true; });
  uint32_t i0 = cc.Begin(0);
  uint32_t i1 = cc.Begin(1);
  // Build T0 -> T1 dependency via key A.
  ASSERT_TRUE(cc.Write(0, i0, "A", 1).ok());
  auto va = cc.Read(1, i1, "A");
  ASSERT_TRUE(va.ok());
  // T1 writes B.
  ASSERT_TRUE(cc.Write(1, i1, "B", 3).ok());
  // T0 reads B: reading from T1 would create a cycle; falls back to root.
  auto vb = cc.Read(0, i0, "B");
  ASSERT_TRUE(vb.ok());
  EXPECT_EQ(*vb, 0);  // Root value, not T1's 3.
  EXPECT_FALSE(aborted[0]);
  EXPECT_FALSE(aborted[1]);
  EXPECT_TRUE(cc.GraphIsAcyclic());
  ASSERT_TRUE(cc.Finish(0, i0).ok());
  ASSERT_TRUE(cc.Finish(1, i1).ok());
  EXPECT_TRUE(cc.AllCommitted());
  EXPECT_EQ(cc.SerializationOrder(), (std::vector<TxnSlot>{0, 1}));
}

TEST_F(CcTest, LostUpdateConflictAborts) {
  // Two read-modify-writes of the same key cannot both keep their reads:
  // the second writer cascades an abort.
  ConcurrencyController cc(&store_, 2);
  bool aborted[2] = {false, false};
  cc.SetAbortCallback([&](TxnSlot s, obs::AbortReason) { aborted[s] = true; });
  uint32_t i0 = cc.Begin(0);
  uint32_t i1 = cc.Begin(1);
  ASSERT_TRUE(cc.Read(0, i0, "C").ok());
  ASSERT_TRUE(cc.Read(1, i1, "C").ok());
  ASSERT_TRUE(cc.Write(0, i0, "C", 10).ok());
  Status s = cc.Write(1, i1, "C", 20);
  // Exactly one of the two must have been aborted (which one is an
  // implementation choice; the survivor keeps running).
  EXPECT_TRUE(aborted[0] || aborted[1] || s.IsAborted());
  EXPECT_EQ(cc.total_aborts(), 1u);
  EXPECT_TRUE(cc.GraphIsAcyclic());
}

TEST_F(CcTest, WriteWriteOrderFixedByCommit) {
  // Blind writers of the same key are unordered until commit; commit order
  // becomes the serialization order (Write-Complete).
  ConcurrencyController cc(&store_, 2);
  uint32_t i0 = cc.Begin(0);
  uint32_t i1 = cc.Begin(1);
  ASSERT_TRUE(cc.Write(0, i0, "A", 1).ok());
  ASSERT_TRUE(cc.Write(1, i1, "A", 2).ok());
  EXPECT_FALSE(cc.HasEdge(0, 1));
  EXPECT_FALSE(cc.HasEdge(1, 0));
  ASSERT_TRUE(cc.Finish(1, i1).ok());  // T1 commits first.
  ASSERT_TRUE(cc.Finish(0, i0).ok());
  EXPECT_TRUE(cc.AllCommitted());
  EXPECT_EQ(cc.SerializationOrder(), (std::vector<TxnSlot>{1, 0}));
  // Final value follows the commit order: T0 is last.
  storage::WriteBatch batch = cc.FinalWrites();
  ASSERT_EQ(batch.size(), 1u);
  EXPECT_EQ(batch.entries()[0].value, 1);
}

TEST_F(CcTest, ExtractRecordHoldsFirstReadLastWrite) {
  ConcurrencyController cc(&store_, 1);
  uint32_t inc = cc.Begin(0);
  ASSERT_TRUE(cc.Read(0, inc, "D").ok());    // First read: 3.
  ASSERT_TRUE(cc.Write(0, inc, "D", 4).ok());
  ASSERT_TRUE(cc.Write(0, inc, "D", 8).ok());  // Last write: 8.
  cc.Emit(0, inc, 123);
  ASSERT_TRUE(cc.Finish(0, inc).ok());
  TxnRecord rec = cc.ExtractRecord(0);
  ASSERT_EQ(rec.rw_set.reads.size(), 1u);
  EXPECT_EQ(rec.rw_set.reads[0].value, 3);
  ASSERT_EQ(rec.rw_set.writes.size(), 1u);
  EXPECT_EQ(rec.rw_set.writes[0].value, 8);
  ASSERT_EQ(rec.emitted.size(), 1u);
  EXPECT_EQ(rec.emitted[0], 123);
  EXPECT_EQ(rec.order, 0);
}

TEST_F(CcTest, StaleIncarnationOpsRejected) {
  ConcurrencyController cc(&store_, 2);
  cc.SetAbortCallback([](TxnSlot, obs::AbortReason) {});
  uint32_t i0 = cc.Begin(0);
  uint32_t i1 = cc.Begin(1);
  ASSERT_TRUE(cc.Write(0, i0, "D", 4).ok());
  ASSERT_TRUE(cc.Read(1, i1, "D").ok());
  ASSERT_TRUE(cc.Write(0, i0, "D", 5).ok());  // Aborts T1.
  // All of T1's stale-incarnation operations fail.
  EXPECT_TRUE(cc.Read(1, i1, "X").status().IsAborted());
  EXPECT_TRUE(cc.Write(1, i1, "X", 1).IsAborted());
  EXPECT_TRUE(cc.Finish(1, i1).IsAborted());
}

}  // namespace
}  // namespace thunderbolt::ce
