// Edge-case coverage for the concurrency controller: committed-prefix
// ordering, rewrite self-abort cascades, emit/finish on stale
// incarnations, root fallbacks with committed writers, and FinalWrites
// aggregation.
#include <gtest/gtest.h>

#include "ce/concurrency_controller.h"
#include "storage/kv_store.h"
#include "testutil/testutil.h"

namespace thunderbolt::ce {
namespace {

class CcEdgeTest : public ::testing::Test {
 protected:
  storage::MemKVStore store_ =
      testutil::MakeStore({{"A", 1}, {"B", 2}, {"C", 3}});
};

TEST_F(CcEdgeTest, ReaderAfterCommittedWriterSeesItsValue) {
  ConcurrencyController cc(&store_, 2);
  uint32_t i0 = cc.Begin(0);
  ASSERT_TRUE(cc.Write(0, i0, "A", 10).ok());
  ASSERT_TRUE(cc.Finish(0, i0).ok());
  ASSERT_EQ(cc.committed_count(), 1u);
  // A later reader must read the committed writer's value, not the root.
  uint32_t i1 = cc.Begin(1);
  auto v = cc.Read(1, i1, "A");
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, 10);
  ASSERT_TRUE(cc.Finish(1, i1).ok());
  EXPECT_EQ(cc.SerializationOrder(), (std::vector<TxnSlot>{0, 1}));
}

TEST_F(CcEdgeTest, NothingOrderedBeforeCommittedPrefix) {
  // Two committed writers of A fix its history; a fresh reader of A plus
  // writer of B must serialize after them without cycles.
  ConcurrencyController cc(&store_, 3);
  uint32_t i0 = cc.Begin(0);
  ASSERT_TRUE(cc.Write(0, i0, "A", 10).ok());
  ASSERT_TRUE(cc.Finish(0, i0).ok());
  uint32_t i1 = cc.Begin(1);
  ASSERT_TRUE(cc.Write(1, i1, "A", 20).ok());
  ASSERT_TRUE(cc.Finish(1, i1).ok());
  uint32_t i2 = cc.Begin(2);
  auto v = cc.Read(2, i2, "A");
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, 20);  // Latest committed value.
  ASSERT_TRUE(cc.Write(2, i2, "B", 7).ok());
  ASSERT_TRUE(cc.Finish(2, i2).ok());
  EXPECT_TRUE(cc.AllCommitted());
  EXPECT_TRUE(cc.GraphIsAcyclic());
  // Final value of A follows commit order: slot 1's write.
  storage::WriteBatch batch = cc.FinalWrites();
  bool found_a = false;
  for (const auto& e : batch.entries()) {
    if (e.key == "A") {
      EXPECT_EQ(e.value, 20);
      found_a = true;
    }
  }
  EXPECT_TRUE(found_a);
}

TEST_F(CcEdgeTest, RewriteCascadeCanReachActingTxn) {
  // T0 writes A; T1 reads A (from T0) and writes B; T0 reads B (from T1!
  // via fallback it reads root... construct instead:) T1 writes B, T0
  // reads B from T1, then T1 rewrites B: the cascade hits T0, and T0's
  // own pending state must be handled safely.
  ConcurrencyController cc(&store_, 2);
  int aborts = 0;
  cc.SetAbortCallback([&](TxnSlot, obs::AbortReason) { ++aborts; });
  uint32_t i0 = cc.Begin(0);
  uint32_t i1 = cc.Begin(1);
  ASSERT_TRUE(cc.Write(1, i1, "B", 5).ok());
  auto v = cc.Read(0, i0, "B");
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, 5);
  // T1 rewrites B: T0 (which consumed 5) must abort; T1 survives.
  ASSERT_TRUE(cc.Write(1, i1, "B", 6).ok());
  EXPECT_EQ(aborts, 1);
  EXPECT_TRUE(cc.Read(0, i0, "B").status().IsAborted());
  uint32_t i0b = cc.Begin(0);
  auto v2 = cc.Read(0, i0b, "B");
  ASSERT_TRUE(v2.ok());
  EXPECT_EQ(*v2, 6);
  ASSERT_TRUE(cc.Finish(1, i1).ok());
  ASSERT_TRUE(cc.Finish(0, i0b).ok());
  EXPECT_TRUE(cc.AllCommitted());
}

TEST_F(CcEdgeTest, EmitOnStaleIncarnationDropped) {
  ConcurrencyController cc(&store_, 2);
  cc.SetAbortCallback([](TxnSlot, obs::AbortReason) {});
  uint32_t i0 = cc.Begin(0);
  uint32_t i1 = cc.Begin(1);
  ASSERT_TRUE(cc.Write(0, i0, "A", 9).ok());
  ASSERT_TRUE(cc.Read(1, i1, "A").ok());
  ASSERT_TRUE(cc.Write(0, i0, "A", 11).ok());  // Aborts slot 1.
  cc.Emit(1, i1, 42);                          // Stale: must be dropped.
  uint32_t i1b = cc.Begin(1);
  cc.Emit(1, i1b, 43);
  ASSERT_TRUE(cc.Finish(0, i0).ok());
  ASSERT_TRUE(cc.Finish(1, i1b).ok());
  TxnRecord rec = cc.ExtractRecord(1);
  ASSERT_EQ(rec.emitted.size(), 1u);
  EXPECT_EQ(rec.emitted[0], 43);
  EXPECT_EQ(rec.re_executions, 1u);
}

TEST_F(CcEdgeTest, DoubleFinishRejected) {
  ConcurrencyController cc(&store_, 1);
  uint32_t i0 = cc.Begin(0);
  ASSERT_TRUE(cc.Read(0, i0, "A").ok());
  ASSERT_TRUE(cc.Finish(0, i0).ok());
  EXPECT_TRUE(cc.Finish(0, i0).IsAborted());
  EXPECT_EQ(cc.committed_count(), 1u);
}

TEST_F(CcEdgeTest, ReadOnlyBatchCommitsInFinishOrder) {
  ConcurrencyController cc(&store_, 3);
  uint32_t inc[3];
  for (TxnSlot s = 0; s < 3; ++s) inc[s] = cc.Begin(s);
  for (TxnSlot s = 0; s < 3; ++s) {
    ASSERT_TRUE(cc.Read(s, inc[s], "A").ok());
  }
  ASSERT_TRUE(cc.Finish(2, inc[2]).ok());
  ASSERT_TRUE(cc.Finish(0, inc[0]).ok());
  ASSERT_TRUE(cc.Finish(1, inc[1]).ok());
  EXPECT_EQ(cc.SerializationOrder(), (std::vector<TxnSlot>{2, 0, 1}));
  EXPECT_EQ(cc.total_aborts(), 0u);
  EXPECT_TRUE(cc.FinalWrites().empty());
}

TEST_F(CcEdgeTest, FinalWritesTakeLastCommittedValuePerKey) {
  ConcurrencyController cc(&store_, 3);
  uint32_t i0 = cc.Begin(0);
  uint32_t i1 = cc.Begin(1);
  uint32_t i2 = cc.Begin(2);
  ASSERT_TRUE(cc.Write(0, i0, "A", 1).ok());
  ASSERT_TRUE(cc.Write(1, i1, "B", 2).ok());
  ASSERT_TRUE(cc.Write(2, i2, "A", 3).ok());
  ASSERT_TRUE(cc.Finish(0, i0).ok());
  ASSERT_TRUE(cc.Finish(2, i2).ok());
  ASSERT_TRUE(cc.Finish(1, i1).ok());
  storage::WriteBatch batch = cc.FinalWrites();
  ASSERT_EQ(batch.size(), 2u);
  // Sorted by key; A's final value is the later committed writer's (3).
  EXPECT_EQ(batch.entries()[0].key, "A");
  EXPECT_EQ(batch.entries()[0].value, 3);
  EXPECT_EQ(batch.entries()[1].key, "B");
  EXPECT_EQ(batch.entries()[1].value, 2);
}

}  // namespace
}  // namespace thunderbolt::ce
