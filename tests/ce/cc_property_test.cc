// Property tests for the CC's serializability theorem (paper section 10):
// for randomized high-contention SmallBank batches executed through the
// simulated executor pool, re-executing the batch *serially* in the CC's
// scheduled order must reproduce (a) every transaction's emitted results
// (Read-Complete) and (b) the exact final state (Write-Complete).
#include <gtest/gtest.h>

#include "baselines/serial_executor.h"
#include "ce/concurrency_controller.h"
#include "ce/sim_executor_pool.h"
#include "contract/contract.h"
#include "testutil/testutil.h"
#include "workload/smallbank_workload.h"

namespace thunderbolt::ce {
namespace {

struct PropertyParam {
  uint64_t seed;
  uint64_t accounts;
  double theta;
  double read_ratio;
  uint32_t batch;
  uint32_t executors;
};

class CcSerializabilityTest : public ::testing::TestWithParam<PropertyParam> {
};

TEST_P(CcSerializabilityTest, ScheduledOrderIsSerialOrder) {
  const PropertyParam p = GetParam();
  workload::SmallBankConfig wc =
      testutil::SmallBankTestConfig(p.accounts, p.seed, p.read_ratio, p.theta);
  workload::SmallBankWorkload workload(wc);

  storage::MemKVStore store;
  workload.InitStore(&store);
  storage::MemKVStore serial_store = store.Clone();

  std::vector<txn::Transaction> batch = workload.MakeBatch(p.batch);
  auto registry = contract::Registry::CreateDefault();

  ConcurrencyController cc(&store, static_cast<uint32_t>(batch.size()));
  SimExecutorPool pool(p.executors, ExecutionCostModel{});
  auto result = pool.Run(cc, *registry, batch);
  ASSERT_TRUE(result.ok()) << result.status().ToString();

  // The dependency graph must be acyclic after full commit.
  EXPECT_TRUE(cc.GraphIsAcyclic());

  // Apply the CC's final writes.
  ASSERT_TRUE(store.Write(result->final_writes).ok());

  // Serial re-execution in the scheduled order.
  std::vector<txn::Transaction> serial_batch;
  serial_batch.reserve(batch.size());
  for (TxnSlot slot : result->order) serial_batch.push_back(batch[slot]);
  baselines::SerialExecutionResult serial = baselines::ExecuteSerial(
      *registry, serial_batch, &serial_store, Micros(1));

  // (a) Read-Complete: every transaction emits identical results.
  for (size_t i = 0; i < result->order.size(); ++i) {
    TxnSlot slot = result->order[i];
    EXPECT_EQ(result->records[slot].emitted, serial.records[i].emitted)
        << "txn " << batch[slot].id << " (" << batch[slot].contract
        << ") diverged at order position " << i;
  }

  // (b) Write-Complete: the final states are identical.
  EXPECT_EQ(store.ContentFingerprint(), serial_store.ContentFingerprint());

  // SmallBank invariant: SendPayment conserves total balance.
  EXPECT_EQ(workload.TotalBalance(store),
            static_cast<storage::Value>(
                p.accounts * (wc.initial_checking + wc.initial_savings)));
}

INSTANTIATE_TEST_SUITE_P(
    ContentionSweep, CcSerializabilityTest,
    ::testing::Values(
        // Low contention, read-heavy.
        PropertyParam{1, 1000, 0.5, 0.8, 200, 4},
        // Paper's default contention.
        PropertyParam{2, 1000, 0.85, 0.5, 300, 8},
        PropertyParam{3, 1000, 0.85, 0.5, 500, 16},
        // Update-only (Pr = 0), high contention.
        PropertyParam{4, 500, 0.85, 0.0, 300, 8},
        // Extreme contention: tiny hot set.
        PropertyParam{5, 20, 0.9, 0.2, 200, 8},
        PropertyParam{6, 10, 0.9, 0.0, 100, 16},
        // Single executor degenerates to serial execution.
        PropertyParam{7, 100, 0.85, 0.5, 200, 1},
        // Many executors vs small batch.
        PropertyParam{8, 50, 0.85, 0.3, 64, 32},
        // More seeds over the default setup.
        PropertyParam{9, 1000, 0.85, 0.5, 400, 12},
        PropertyParam{10, 200, 0.95, 0.5, 300, 8},
        PropertyParam{11, 2000, 0.75, 0.1, 300, 8},
        PropertyParam{12, 30, 0.99, 0.5, 150, 6}));

}  // namespace
}  // namespace thunderbolt::ce
