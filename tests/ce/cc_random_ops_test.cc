// CC torture test: a synthetic contract whose operation sequence is
// *value-dependent* — every read changes which key it touches next and
// whether it writes — executed in randomized batches at brutal contention
// (very few keys). Verifies, for every seed:
//   1. the pool terminates (no livelock),
//   2. the dependency graph ends acyclic,
//   3. serial replay in the scheduled order reproduces every emitted
//      value and the exact final state (serializability, paper section 10),
//   4. the schedule survives replica-side validation (first-read checks).
#include <gtest/gtest.h>

#include <memory>

#include "ce/concurrency_controller.h"
#include "ce/sim_executor_pool.h"
#include "contract/contract.h"
#include "core/validator.h"
#include "testutil/testutil.h"

namespace thunderbolt::ce {
namespace {

using contract::ContractContext;
using storage::Value;

/// Deterministic mixer.
uint64_t Mix(uint64_t x) {
  x ^= x >> 33;
  x *= 0xff51afd7ed558ccdULL;
  x ^= x >> 33;
  return x;
}

/// Performs `rounds` operations over `num_keys` keys. The key and kind of
/// each operation depend on the previous read values, so the access set is
/// unknowable without executing — and differs between incarnations that
/// observe different values.
class RandomOpsContract final : public contract::Contract {
 public:
  RandomOpsContract(uint32_t num_keys, uint32_t rounds)
      : num_keys_(num_keys), rounds_(rounds) {}

  Status Execute(const txn::Transaction& tx,
                 ContractContext& ctx) const override {
    uint64_t state = Mix(static_cast<uint64_t>(tx.params.at(0)) + 0x9e37);
    Value acc = 0;
    for (uint32_t i = 0; i < rounds_; ++i) {
      state = Mix(state + static_cast<uint64_t>(acc) * 31 + i);
      std::string key = "k" + std::to_string(state % num_keys_);
      // Accumulator mixing is hash-like and intentionally wraps; do it in
      // uint64_t so the wraparound is well-defined.
      if ((state >> 8) % 3 == 0) {
        // Write a value derived from everything read so far.
        THUNDERBOLT_RETURN_NOT_OK(ctx.Write(
            key, static_cast<Value>(static_cast<uint64_t>(acc) * 7 + i + 1)));
      } else {
        THUNDERBOLT_ASSIGN_OR_RETURN(Value v, ctx.Read(key));
        acc = static_cast<Value>(static_cast<uint64_t>(acc) * 13 +
                                 static_cast<uint64_t>(v));
      }
    }
    ctx.EmitResult(acc);
    return Status::OK();
  }

 private:
  uint32_t num_keys_;
  uint32_t rounds_;
};

/// Serial reference context.
class SerialCtx final : public ContractContext {
 public:
  explicit SerialCtx(storage::MemKVStore* store) : store_(store) {}
  Result<Value> Read(const storage::Key& key) override {
    auto it = writes_.find(key);
    if (it != writes_.end()) return it->second;
    return store_->GetOrDefault(key, 0);
  }
  Status Write(const storage::Key& key, Value value) override {
    writes_[key] = value;
    return Status::OK();
  }
  void EmitResult(Value value) override { emitted.push_back(value); }
  void Commit() {
    for (auto& [k, v] : writes_) store_->Put(k, v);
  }
  std::vector<Value> emitted;

 private:
  storage::MemKVStore* store_;
  std::map<storage::Key, Value> writes_;
};

struct Param {
  uint64_t seed;
  uint32_t num_keys;
  uint32_t ops_per_txn;
  uint32_t batch;
  uint32_t executors;
};

class CcRandomOps : public ::testing::TestWithParam<Param> {};

TEST_P(CcRandomOps, SerializableUnderTorture) {
  const Param p = GetParam();
  auto registry = std::make_shared<contract::Registry>();
  registry->Register("torture.randops", std::make_unique<RandomOpsContract>(
                                            p.num_keys, p.ops_per_txn));

  std::vector<std::pair<std::string, Value>> init;
  for (uint32_t k = 0; k < p.num_keys; ++k) {
    init.emplace_back("k" + std::to_string(k), static_cast<Value>(k * 11));
  }
  storage::MemKVStore store = testutil::MakeStore(init);
  storage::MemKVStore serial_store = store.Clone();

  std::vector<txn::Transaction> batch(p.batch);
  for (uint32_t i = 0; i < p.batch; ++i) {
    batch[i].id = i + 1;
    batch[i].contract = "torture.randops";
    batch[i].params = {static_cast<Value>(Mix(p.seed * 1000 + i))};
  }

  ConcurrencyController cc(&store, p.batch);
  SimExecutorPool pool(p.executors, ExecutionCostModel{});
  auto r = pool.Run(cc, *registry, batch);
  ASSERT_TRUE(r.ok()) << r.status().ToString();  // (1) termination.
  EXPECT_TRUE(cc.GraphIsAcyclic());               // (2) acyclic.

  // (3) serializability against the scheduled order.
  ASSERT_TRUE(store.Write(r->final_writes).ok());
  for (TxnSlot slot : r->order) {
    SerialCtx ctx(&serial_store);
    ASSERT_TRUE(registry->Execute(batch[slot], ctx).ok());
    ctx.Commit();
    EXPECT_EQ(r->records[slot].emitted, ctx.emitted)
        << "txn " << batch[slot].id << " diverged (seed " << p.seed << ")";
  }
  EXPECT_EQ(store.ContentFingerprint(), serial_store.ContentFingerprint());

  // (4) replica-side validation.
  std::vector<core::PreplayedTxn> preplayed;
  for (TxnSlot slot : r->order) {
    core::PreplayedTxn pt;
    pt.tx = batch[slot];
    pt.rw_set = r->records[slot].rw_set;
    pt.emitted = r->records[slot].emitted;
    preplayed.push_back(std::move(pt));
  }
  storage::MemKVStore base = testutil::MakeStore(init);
  core::ValidationResult vr =
      core::ValidatePreplay(*registry, preplayed, base);
  EXPECT_TRUE(vr.valid) << vr.failure << " (seed " << p.seed << ")";
  if (!vr.valid) fprintf(stderr, "FAILURE: %s\n", vr.failure.c_str());
}

std::vector<Param> MakeParams() {
  std::vector<Param> params;
  // Brutal contention: 4-16 keys shared by 30-120 transactions.
  for (uint64_t seed = 1; seed <= 12; ++seed) {
    params.push_back(Param{seed, 4 + static_cast<uint32_t>(seed % 5) * 3,
                           5 + static_cast<uint32_t>(seed % 4), 30, 8});
  }
  params.push_back(Param{50, 4, 8, 120, 16});
  params.push_back(Param{51, 6, 10, 60, 4});
  params.push_back(Param{52, 16, 6, 120, 32});
  params.push_back(Param{53, 8, 12, 80, 8});
  return params;
}

INSTANTIATE_TEST_SUITE_P(Torture, CcRandomOps,
                         ::testing::ValuesIn(MakeParams()));

}  // namespace
}  // namespace thunderbolt::ce
