// Regression property: every schedule the CE produces must survive
// replica-side validation — the declared first-read of every transaction
// must equal the value produced by the latest preceding writer in the
// scheduled order. This is strictly stronger than the emitted-results
// check in cc_property_test.cc (it caught the fragile-transitive-path bug
// where ordering constraints relied on edges through later-aborted
// transactions).
#include <gtest/gtest.h>

#include "ce/concurrency_controller.h"
#include "ce/sim_executor_pool.h"
#include "contract/contract.h"
#include "core/validator.h"
#include "testutil/testutil.h"
#include "workload/smallbank_workload.h"

namespace thunderbolt::ce {
namespace {

struct Param {
  uint64_t seed;
  uint32_t batch;
  uint32_t executors;
  double theta;
  double read_ratio;
};

class CcValidationProperty : public ::testing::TestWithParam<Param> {};

TEST_P(CcValidationProperty, ScheduleSurvivesValidation) {
  const Param p = GetParam();
  workload::SmallBankConfig wc = testutil::SmallBankTestConfig(
      /*num_accounts=*/1000, p.seed, p.read_ratio, p.theta);
  wc.num_shards = 8;
  workload::SmallBankWorkload w(wc);
  storage::MemKVStore base;
  w.InitStore(&base);
  auto batch = w.MakeShardBatch(p.seed % 8, p.batch);
  auto registry = contract::Registry::CreateDefault();

  ConcurrencyController cc(&base, p.batch);
  SimExecutorPool pool(p.executors, ExecutionCostModel{});
  auto r = pool.Run(cc, *registry, batch);
  ASSERT_TRUE(r.ok()) << r.status().ToString();

  std::vector<core::PreplayedTxn> preplayed;
  for (TxnSlot slot : r->order) {
    core::PreplayedTxn pt;
    pt.tx = batch[slot];
    pt.rw_set = r->records[slot].rw_set;
    pt.emitted = r->records[slot].emitted;
    preplayed.push_back(std::move(pt));
  }
  core::ValidationResult vr =
      core::ValidatePreplay(*registry, preplayed, base);
  EXPECT_TRUE(vr.valid) << "seed " << p.seed << ": " << vr.failure;
}

std::vector<Param> MakeParams() {
  std::vector<Param> params;
  for (uint64_t seed = 1; seed <= 40; ++seed) {
    params.push_back(Param{seed, 300, 16, 0.85, 0.5});
  }
  // Extra contention corners.
  params.push_back(Param{100, 500, 16, 0.95, 0.0});
  params.push_back(Param{101, 500, 8, 0.95, 0.5});
  params.push_back(Param{102, 200, 32, 0.99, 0.2});
  params.push_back(Param{103, 500, 4, 0.75, 0.9});
  return params;
}

INSTANTIATE_TEST_SUITE_P(SeedSweep, CcValidationProperty,
                         ::testing::ValuesIn(MakeParams()));

}  // namespace
}  // namespace thunderbolt::ce
