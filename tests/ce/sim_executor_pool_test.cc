#include "ce/sim_executor_pool.h"

#include <gtest/gtest.h>

#include "ce/concurrency_controller.h"
#include "contract/contract.h"
#include "contract/kv.h"
#include "testutil/testutil.h"
#include "workload/smallbank_workload.h"

namespace thunderbolt::ce {
namespace {

class PoolTest : public ::testing::Test {
 protected:
  PoolTest() : registry_(contract::Registry::CreateDefault()) {}

  std::vector<txn::Transaction> MakeBatch(size_t n, uint64_t seed,
                                          double read_ratio = 0.5) {
    return testutil::MakeSmallBankBatch(
        &store_, n, testutil::SmallBankTestConfig(100, seed, read_ratio));
  }

  storage::MemKVStore store_;
  std::shared_ptr<contract::Registry> registry_;
};

TEST_F(PoolTest, EmptyBatch) {
  ConcurrencyController cc(&store_, 0);
  SimExecutorPool pool(4, ExecutionCostModel{});
  auto r = pool.Run(cc, *registry_, {});
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->records.size(), 0u);
  EXPECT_EQ(r->duration, 0u);
}

TEST_F(PoolTest, ZeroExecutorsRejected) {
  ConcurrencyController cc(&store_, 1);
  SimExecutorPool pool(0, ExecutionCostModel{});
  auto batch = MakeBatch(1, 11);
  EXPECT_TRUE(pool.Run(cc, *registry_, batch).status().IsInvalidArgument());
}

TEST_F(PoolTest, AllTransactionsCommit) {
  auto batch = MakeBatch(200, 12);
  ConcurrencyController cc(&store_, 200);
  SimExecutorPool pool(8, ExecutionCostModel{});
  auto r = pool.Run(cc, *registry_, batch);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->order.size(), 200u);
  EXPECT_EQ(r->records.size(), 200u);
  // Every slot appears exactly once in the order.
  std::vector<bool> seen(200, false);
  for (TxnSlot s : r->order) {
    EXPECT_FALSE(seen[s]);
    seen[s] = true;
  }
  EXPECT_GT(r->duration, 0u);
  EXPECT_EQ(r->commit_latency_us.Count(), 200u);
}

TEST_F(PoolTest, MoreExecutorsShortenMakespan) {
  auto batch = MakeBatch(300, 13, /*read_ratio=*/0.9);  // Low conflict.
  SimTime d1, d8;
  {
    storage::MemKVStore store = store_.Clone();
    ConcurrencyController cc(&store, 300);
    SimExecutorPool pool(1, ExecutionCostModel{});
    auto r = pool.Run(cc, *registry_, batch);
    ASSERT_TRUE(r.ok());
    d1 = r->duration;
  }
  {
    storage::MemKVStore store = store_.Clone();
    ConcurrencyController cc(&store, 300);
    SimExecutorPool pool(8, ExecutionCostModel{});
    auto r = pool.Run(cc, *registry_, batch);
    ASSERT_TRUE(r.ok());
    d8 = r->duration;
  }
  // 8 executors should be markedly faster on a low-conflict batch.
  EXPECT_LT(d8 * 3, d1);
}

TEST_F(PoolTest, StartTimeOffsetsClock) {
  auto batch = MakeBatch(50, 14);
  ConcurrencyController cc(&store_, 50);
  SimExecutorPool pool(4, ExecutionCostModel{});
  auto r = pool.Run(cc, *registry_, batch, /*start_time=*/Seconds(5));
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->start_time, Seconds(5));
  EXPECT_GT(r->duration, 0u);
  EXPECT_LT(r->duration, Seconds(1));  // Duration excludes the offset.
}

TEST_F(PoolTest, DeterministicAcrossRuns) {
  auto batch = MakeBatch(250, 15);
  SimTime durations[2];
  uint64_t aborts[2];
  for (int i = 0; i < 2; ++i) {
    storage::MemKVStore store = store_.Clone();
    ConcurrencyController cc(&store, 250);
    SimExecutorPool pool(8, ExecutionCostModel{});
    auto r = pool.Run(cc, *registry_, batch);
    ASSERT_TRUE(r.ok());
    durations[i] = r->duration;
    aborts[i] = r->total_aborts;
  }
  EXPECT_EQ(durations[0], durations[1]);
  EXPECT_EQ(aborts[0], aborts[1]);
}

// Engine stub whose slot 0 aborts at every Finish, forever. A real engine
// never does this, but a buggy one (or a pathological contract) can; the
// pool's per-transaction restart bound must fail the batch at
// kMaxRestartsPerTxn * n consecutive restarts instead of spinning on
// toward the much larger global kMaxRestartFactor * n backstop.
class AlwaysAbortSlotZeroEngine final : public BatchEngine {
 public:
  explicit AlwaysAbortSlotZeroEngine(uint32_t n)
      : n_(n), committed_(n, false) {}

  void SetAbortCallback(AbortCallback cb) override { cb_ = std::move(cb); }
  uint32_t Begin(TxnSlot) override { return 0; }
  Result<Value> Read(TxnSlot, uint32_t, const Key&) override {
    return Value{0};
  }
  Status Write(TxnSlot, uint32_t, const Key&, Value) override {
    return Status::OK();
  }
  void Emit(TxnSlot, uint32_t, Value) override {}
  Status Finish(TxnSlot slot, uint32_t) override {
    if (slot == 0) {
      ++total_aborts_;
      if (cb_) cb_(0, obs::AbortReason::kValidationFailure);
      return Status::Aborted("stub: permanent abort");
    }
    if (!committed_[slot]) {
      committed_[slot] = true;
      ++committed_count_;
      order_.push_back(slot);
    }
    return Status::OK();
  }
  bool AllCommitted() const override { return committed_count_ == n_; }
  uint32_t committed_count() const override { return committed_count_; }
  uint64_t total_aborts() const override { return total_aborts_; }
  const std::vector<TxnSlot>& SerializationOrder() const override {
    return order_;
  }
  TxnRecord ExtractRecord(TxnSlot) const override { return TxnRecord{}; }
  storage::WriteBatch FinalWrites() const override { return {}; }

 private:
  const uint32_t n_;
  AbortCallback cb_;
  std::vector<bool> committed_;
  uint32_t committed_count_ = 0;
  uint64_t total_aborts_ = 0;
  std::vector<TxnSlot> order_;
};

TEST_F(PoolTest, PerSlotLivelockBoundTripsBeforeGlobalCap) {
  const uint32_t n = 4;
  std::vector<txn::Transaction> batch(n);
  for (uint32_t i = 0; i < n; ++i) {
    batch[i].id = i;
    batch[i].contract = contract::kKvUpdate;
    batch[i].accounts = {"r" + std::to_string(i)};
    batch[i].params = {static_cast<Value>(i)};
  }
  AlwaysAbortSlotZeroEngine engine(n);
  SimExecutorPool pool(2, ExecutionCostModel{});
  auto r = pool.Run(engine, *registry_, batch);
  ASSERT_EQ(r.status().code(), StatusCode::kInternal)
      << r.status().ToString();
  EXPECT_GT(engine.total_aborts(), kMaxRestartsPerTxn * n);
  EXPECT_LT(engine.total_aborts(), kMaxRestartFactor * n / 2);
}

TEST_F(PoolTest, ReportsReExecutions) {
  // Update-only on a tiny hot set forces conflicts.
  auto batch = testutil::MakeSmallBankBatch(
      &store_, 100,
      testutil::SmallBankTestConfig(/*num_accounts=*/4, /*seed=*/16,
                                    /*read_ratio=*/0.0, /*theta=*/0.9));
  ConcurrencyController cc(&store_, 100);
  SimExecutorPool pool(8, ExecutionCostModel{});
  auto r = pool.Run(cc, *registry_, batch);
  ASSERT_TRUE(r.ok());
  EXPECT_GT(r->total_aborts, 0u);
}

}  // namespace
}  // namespace thunderbolt::ce
