// Step-by-step reproduction of the paper's Table 1: transactions T1, T2,
// T3 accessing key D, including the cascading abort at time 5, the stale
// operation at time 9, and the final execution order {T1, T3, T2}.
#include <gtest/gtest.h>

#include "ce/concurrency_controller.h"
#include "storage/kv_store.h"
#include "testutil/testutil.h"

namespace thunderbolt::ce {
namespace {

TEST(CcTable1Test, FullScenario) {
  // Time 0: initial DB D = 3.
  storage::MemKVStore store = testutil::MakeStore({{"D", 3}});

  // Slots: 0 = T1, 1 = T2, 2 = T3 (paper numbering minus one).
  ConcurrencyController cc(&store, 3);
  std::vector<TxnSlot> abort_events;
  cc.SetAbortCallback(
      [&](TxnSlot s, obs::AbortReason) { abort_events.push_back(s); });

  uint32_t t1 = cc.Begin(0);
  uint32_t t2 = cc.Begin(1);
  uint32_t t3 = cc.Begin(2);

  // Time 1: T1 writes D = 3.
  ASSERT_TRUE(cc.Write(0, t1, "D", 3).ok());

  // Time 2: T2 reads D from T1 (D = 3), creating T1 -> T2.
  auto r2 = cc.Read(1, t2, "D");
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ(*r2, 3);
  EXPECT_TRUE(cc.HasEdge(0, 1));

  // Time 3: T3 reads D from T1 (D = 3), creating T1 -> T3.
  auto r3 = cc.Read(2, t3, "D");
  ASSERT_TRUE(r3.ok());
  EXPECT_EQ(*r3, 3);
  EXPECT_TRUE(cc.HasEdge(0, 2));

  // Time 4: T3 tries to commit; it must wait for T1.
  ASSERT_TRUE(cc.Finish(2, t3).ok());
  EXPECT_EQ(cc.committed_count(), 0u);

  // Time 5: T1 writes D = 5 again -> aborts T2 and T3 (cascading).
  ASSERT_TRUE(cc.Write(0, t1, "D", 5).ok());
  EXPECT_EQ(cc.total_aborts(), 2u);
  EXPECT_EQ(abort_events.size(), 2u);

  // Time 6: T3 re-executes and reads D = 5 from T1.
  uint32_t t3b = cc.Begin(2);
  auto r3b = cc.Read(2, t3b, "D");
  ASSERT_TRUE(r3b.ok());
  EXPECT_EQ(*r3b, 5);
  EXPECT_TRUE(cc.HasEdge(0, 2));

  // Time 7: T1 commits.
  ASSERT_TRUE(cc.Finish(0, t1).ok());
  EXPECT_EQ(cc.committed_count(), 1u);

  // Time 8: T3 commits (its dependency is now committed).
  ASSERT_TRUE(cc.Finish(2, t3b).ok());
  EXPECT_EQ(cc.committed_count(), 2u);

  // Time 9: T2's stale write (old incarnation) is invalid.
  EXPECT_TRUE(cc.Write(1, t2, "D", 3).IsAborted());

  // Time 10-11: T2 re-executes: reads D = 5 from T1, writes D = 2.
  uint32_t t2b = cc.Begin(1);
  auto r2b = cc.Read(1, t2b, "D");
  ASSERT_TRUE(r2b.ok());
  EXPECT_EQ(*r2b, 5);
  ASSERT_TRUE(cc.Write(1, t2b, "D", 2).ok());

  // Time 12: T2 commits. Execution order is {T1, T3, T2}.
  ASSERT_TRUE(cc.Finish(1, t2b).ok());
  EXPECT_TRUE(cc.AllCommitted());
  EXPECT_EQ(cc.SerializationOrder(), (std::vector<TxnSlot>{0, 2, 1}));

  // Final value of D follows the last writer in the order: T2's 2.
  storage::WriteBatch batch = cc.FinalWrites();
  ASSERT_EQ(batch.size(), 1u);
  EXPECT_EQ(batch.entries()[0].key, "D");
  EXPECT_EQ(batch.entries()[0].value, 2);
}

}  // namespace
}  // namespace thunderbolt::ce
