// ThreadExecutorPool: real-thread execution must uphold the same Run
// contract as the sim pool — every transaction commits exactly once, the
// livelock bounds hold, unsupported engines are refused — and, on batches
// with commutative committed effects, drive the store to the *same* final
// fingerprint as the sim pool (the threaded-vs-sim agreement leg).
#include "ce/thread_executor_pool.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "baselines/engine_registration.h"
#include "ce/concurrency_controller.h"
#include "ce/executor_pool.h"
#include "ce/sim_executor_pool.h"
#include "contract/contract.h"
#include "contract/kv.h"
#include "testutil/testutil.h"
#include "workload/workload.h"

namespace thunderbolt::ce {
namespace {

/// Minimal engine stub keeping the default SupportsConcurrentExecutors()
/// == false: used to pin the refusal path for multi-worker thread pools.
/// Also usable single-threaded: commits every slot at Finish except the
/// ones listed in `always_abort`, which re-queue forever (livelock probe).
class StubEngine final : public BatchEngine {
 public:
  StubEngine(uint32_t n, std::vector<TxnSlot> always_abort = {})
      : n_(n), always_abort_(std::move(always_abort)), committed_(n, false) {}

  void SetAbortCallback(AbortCallback cb) override { cb_ = std::move(cb); }
  uint32_t Begin(TxnSlot) override { return 0; }
  Result<Value> Read(TxnSlot, uint32_t, const Key&) override {
    return Value{0};
  }
  Status Write(TxnSlot, uint32_t, const Key&, Value) override {
    return Status::OK();
  }
  void Emit(TxnSlot, uint32_t, Value) override {}
  Status Finish(TxnSlot slot, uint32_t) override {
    for (TxnSlot bad : always_abort_) {
      if (slot == bad) {
        ++total_aborts_;
        if (cb_) cb_(slot, obs::AbortReason::kValidationFailure);
        return Status::Aborted("stub: permanent abort");
      }
    }
    if (!committed_[slot]) {
      committed_[slot] = true;
      ++committed_count_;
      order_.push_back(slot);
    }
    return Status::OK();
  }
  bool AllCommitted() const override { return committed_count_ == n_; }
  uint32_t committed_count() const override { return committed_count_; }
  uint64_t total_aborts() const override { return total_aborts_; }
  const std::vector<TxnSlot>& SerializationOrder() const override {
    return order_;
  }
  TxnRecord ExtractRecord(TxnSlot) const override { return TxnRecord{}; }
  storage::WriteBatch FinalWrites() const override { return {}; }

 private:
  const uint32_t n_;
  const std::vector<TxnSlot> always_abort_;
  AbortCallback cb_;
  std::vector<bool> committed_;
  uint32_t committed_count_ = 0;
  uint64_t total_aborts_ = 0;
  std::vector<TxnSlot> order_;
};

/// `count` kv.update transactions over a tiny record set — enough to drive
/// the stub engine, which ignores the actual keys anyway.
std::vector<txn::Transaction> MakeKvBatch(size_t count) {
  std::vector<txn::Transaction> batch(count);
  for (size_t i = 0; i < count; ++i) {
    batch[i].id = i;
    batch[i].contract = contract::kKvUpdate;
    batch[i].accounts = {"r" + std::to_string(i % 3)};
    batch[i].params = {static_cast<Value>(i)};
  }
  return batch;
}

class ThreadPoolTest : public ::testing::Test {
 protected:
  ThreadPoolTest() : registry_(contract::Registry::CreateDefault()) {}

  std::vector<txn::Transaction> MakeBatch(size_t n, uint64_t seed,
                                          double read_ratio = 0.5) {
    return testutil::MakeSmallBankBatch(
        &store_, n, testutil::SmallBankTestConfig(100, seed, read_ratio));
  }

  storage::MemKVStore store_;
  std::shared_ptr<contract::Registry> registry_;
};

TEST_F(ThreadPoolTest, EmptyBatch) {
  ConcurrencyController cc(&store_, 0);
  ThreadExecutorPool pool(4, ExecutionCostModel{});
  auto r = pool.Run(cc, *registry_, {});
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->records.size(), 0u);
  EXPECT_EQ(r->duration, 0u);
}

TEST_F(ThreadPoolTest, ZeroExecutorsRejected) {
  ConcurrencyController cc(&store_, 1);
  ThreadExecutorPool pool(0, ExecutionCostModel{});
  auto batch = MakeBatch(1, 21);
  EXPECT_TRUE(pool.Run(cc, *registry_, batch).status().IsInvalidArgument());
}

TEST_F(ThreadPoolTest, FactoryKnowsBothPools) {
  EXPECT_NE(CreateExecutorPool("sim", 2, ExecutionCostModel{}), nullptr);
  auto pool = CreateExecutorPool("thread", 2, ExecutionCostModel{});
  ASSERT_NE(pool, nullptr);
  EXPECT_EQ(pool->name(), "thread");
  EXPECT_EQ(pool->num_executors(), 2u);
  EXPECT_EQ(CreateExecutorPool("bogus", 2, ExecutionCostModel{}), nullptr);
  EXPECT_EQ(ExecutorPoolNames(),
            (std::vector<std::string>{"sim", "thread"}));
}

TEST_F(ThreadPoolTest, RefusesUnsupportedEngineWithMultipleWorkers) {
  auto batch = MakeKvBatch(4);
  StubEngine stub(4);
  ThreadExecutorPool pool(4, ExecutionCostModel{});
  auto r = pool.Run(stub, *registry_, batch);
  EXPECT_TRUE(r.status().IsInvalidArgument()) << r.status().ToString();
}

TEST_F(ThreadPoolTest, SingleWorkerRunsUnsupportedEngine) {
  auto batch = MakeKvBatch(6);
  StubEngine stub(6);
  ThreadExecutorPool pool(1, ExecutionCostModel{});
  auto r = pool.Run(stub, *registry_, batch);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->order.size(), 6u);
}

TEST_F(ThreadPoolTest, AllTransactionsCommit) {
  auto batch = MakeBatch(200, 22);
  ConcurrencyController cc(&store_, 200);
  ThreadExecutorPool pool(4, ExecutionCostModel{});
  auto r = pool.Run(cc, *registry_, batch);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->order.size(), 200u);
  EXPECT_EQ(r->records.size(), 200u);
  std::vector<bool> seen(200, false);
  for (TxnSlot s : r->order) {
    EXPECT_FALSE(seen[s]);
    seen[s] = true;
  }
  EXPECT_GT(r->duration, 0u);
  // Cascade re-finishes may record a latency sample more than once per
  // slot, so the histogram holds at least one sample per transaction.
  EXPECT_GE(r->commit_latency_us.Count(), 200u);
}

TEST_F(ThreadPoolTest, PoolReusableAcrossBatches) {
  ThreadExecutorPool pool(4, ExecutionCostModel{});
  for (uint64_t seed : {23u, 24u, 25u}) {
    storage::MemKVStore store = store_.Clone();
    auto batch = MakeBatch(100, seed);
    ConcurrencyController cc(&store, 100);
    auto r = pool.Run(cc, *registry_, batch);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    EXPECT_EQ(r->order.size(), 100u);
  }
}

TEST_F(ThreadPoolTest, HighContentionStillCommitsEverything) {
  // Update-only on 4 hot accounts: maximal write-write conflict pressure.
  auto batch = testutil::MakeSmallBankBatch(
      &store_, 120,
      testutil::SmallBankTestConfig(/*num_accounts=*/4, /*seed=*/26,
                                    /*read_ratio=*/0.0, /*theta=*/0.9));
  ConcurrencyController cc(&store_, 120);
  ThreadExecutorPool pool(8, ExecutionCostModel{});
  auto r = pool.Run(cc, *registry_, batch);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->order.size(), 120u);
}

TEST_F(ThreadPoolTest, PerSlotLivelockBoundTripsBeforeGlobalCap) {
  const uint32_t n = 4;
  auto batch = MakeKvBatch(n);
  StubEngine stub(n, /*always_abort=*/{0});
  // Negligible backoff so the bounded restart storm stays fast.
  ExecutionCostModel costs;
  costs.restart_cost = Micros(1);
  costs.restart_backoff_cap = 0;
  ThreadExecutorPool pool(1, costs);
  auto r = pool.Run(stub, *registry_, batch);
  ASSERT_EQ(r.status().code(), StatusCode::kInternal)
      << r.status().ToString();
  // The per-transaction bound (64 * n) must fire long before the global
  // backstop (1000 * n) would.
  EXPECT_GT(stub.total_aborts(), kMaxRestartsPerTxn * n);
  EXPECT_LT(stub.total_aborts(), kMaxRestartFactor * n / 2);
}

// --- threaded-vs-sim agreement -------------------------------------------
// Mirrors workload/cross_engine_agreement_test.cc: batches with commutative
// committed effects admit exactly one final state per seed, so the thread
// pool must land on the sim pool's fingerprint for every engine.

constexpr uint32_t kAgreementBatch = 150;
constexpr uint32_t kAgreementBatches = 2;

workload::WorkloadOptions AgreementOptions(const std::string& workload_name,
                                           uint64_t seed) {
  workload::WorkloadOptions options;
  options.seed = seed;
  options.num_records = 300;
  options.theta = 0.85;
  if (workload_name == "ycsb") {
    options.read_ratio = 0.5;   // Reads + commuting RMW increments,
    options.update_ratio = 0.0; // no blind last-writer-wins updates.
  }
  return options;
}

uint64_t RunWithPool(const std::string& workload_name,
                     const std::string& engine_name,
                     const std::string& pool_name, uint32_t executors,
                     uint64_t seed) {
  auto w = workload::WorkloadRegistry::Global().Create(
      workload_name, AgreementOptions(workload_name, seed));
  EXPECT_NE(w, nullptr);
  storage::MemKVStore store;
  w->InitStore(&store);
  auto registry = contract::Registry::CreateDefault();
  auto pool = CreateExecutorPool(pool_name, executors, ExecutionCostModel{});
  EXPECT_NE(pool, nullptr);
  for (uint32_t b = 0; b < kAgreementBatches; ++b) {
    auto batch = w->MakeBatch(kAgreementBatch);
    std::unique_ptr<BatchEngine> engine =
        baselines::RegisterBaselineEngines().Create(engine_name, &store,
                                                    kAgreementBatch);
    EXPECT_NE(engine, nullptr) << engine_name;
    if (engine == nullptr) return 0;
    auto r = pool->Run(*engine, *registry, batch);
    EXPECT_TRUE(r.ok()) << engine_name << "/" << pool_name << ": "
                        << r.status().ToString();
    if (!r.ok()) return 0;
    EXPECT_TRUE(store.Write(r->final_writes).ok());
  }
  Status invariant = w->CheckInvariant(store);
  EXPECT_TRUE(invariant.ok())
      << workload_name << " under " << engine_name << "/" << pool_name
      << ": " << invariant.ToString();
  return store.ContentFingerprint();
}

TEST(ThreadVsSimAgreementTest, IdenticalFingerprintsPerSeed) {
  for (const char* workload_name : {"smallbank", "ycsb"}) {
    for (const char* engine_name : {"ce", "occ", "2pl"}) {
      for (uint64_t seed : {31u, 32u}) {
        const uint64_t sim_fp =
            RunWithPool(workload_name, engine_name, "sim", 8, seed);
        const uint64_t thread_fp =
            RunWithPool(workload_name, engine_name, "thread", 4, seed);
        EXPECT_EQ(thread_fp, sim_fp)
            << workload_name << "/" << engine_name
            << " diverged from sim at seed " << seed;
      }
    }
  }
}

}  // namespace
}  // namespace thunderbolt::ce
