#include "txn/transaction.h"

#include <gtest/gtest.h>

namespace thunderbolt::txn {
namespace {

Transaction MakeTx(std::vector<std::string> accounts) {
  Transaction tx;
  tx.id = 1;
  tx.contract = "smallbank.send_payment";
  tx.accounts = std::move(accounts);
  tx.params = {5};
  return tx;
}

TEST(ShardMapperTest, KeysOfOneAccountColocate) {
  ShardMapper mapper(16);
  for (int i = 0; i < 100; ++i) {
    std::string account = "acct" + std::to_string(i);
    ShardId s = mapper.ShardOfAccount(account);
    EXPECT_EQ(mapper.ShardOfKey(CheckingKey(account)), s);
    EXPECT_EQ(mapper.ShardOfKey(SavingsKey(account)), s);
    EXPECT_LT(s, 16u);
  }
}

TEST(ShardMapperTest, SingleVsCrossShard) {
  ShardMapper mapper(8);
  // Find two accounts in the same shard and two in different shards.
  std::string base = "acct0";
  ShardId s0 = mapper.ShardOfAccount(base);
  std::string same, diff;
  for (int i = 1; i < 1000 && (same.empty() || diff.empty()); ++i) {
    std::string a = "acct" + std::to_string(i);
    if (mapper.ShardOfAccount(a) == s0 && same.empty()) same = a;
    if (mapper.ShardOfAccount(a) != s0 && diff.empty()) diff = a;
  }
  ASSERT_FALSE(same.empty());
  ASSERT_FALSE(diff.empty());
  EXPECT_TRUE(mapper.IsSingleShard(MakeTx({base, same})));
  EXPECT_FALSE(mapper.IsSingleShard(MakeTx({base, diff})));
  EXPECT_EQ(mapper.ShardsOf(MakeTx({base, diff})).size(), 2u);
}

TEST(ShardMapperTest, CountDistinctShardsAgreesWithShardsOf) {
  ShardMapper mapper(8);
  // Transactions of every account-list shape the workloads emit, plus a
  // wide one past the inline fast-path buffer.
  std::vector<std::vector<std::string>> shapes = {
      {},
      {"acct1"},
      {"acct1", "acct1"},
      {"acct1", "acct2"},
      {"w1", "w1.d2", "w1.d2.c3"},
  };
  std::vector<std::string> wide;
  for (int i = 0; i < 20; ++i) wide.push_back("acct" + std::to_string(i));
  shapes.push_back(wide);
  for (const auto& accounts : shapes) {
    Transaction tx = MakeTx(accounts);
    EXPECT_EQ(mapper.CountDistinctShards(tx), mapper.ShardsOf(tx).size());
    EXPECT_EQ(mapper.IsSingleShard(tx),
              mapper.CountDistinctShards(tx) <= 1);
  }
}

TEST(ShardMapperTest, DelegatesToInstalledPolicy) {
  // A directory policy pinning two accounts to opposite shards must drive
  // the mapper's classification, overriding what the hash fallback says.
  auto policy = std::make_shared<placement::DirectoryPlacement>(4);
  policy->Assign("acctA", 0);
  policy->Assign("acctB", 3);
  ShardMapper mapper{
      std::static_pointer_cast<const placement::PlacementPolicy>(policy)};
  EXPECT_EQ(mapper.num_shards(), 4u);
  EXPECT_EQ(mapper.ShardOfAccount("acctA"), 0u);
  EXPECT_EQ(mapper.ShardOfKey("acctB/checking"), 3u);
  EXPECT_FALSE(mapper.IsSingleShard(MakeTx({"acctA", "acctB"})));
  EXPECT_EQ(mapper.ShardsOf(MakeTx({"acctA", "acctB"})),
            (std::vector<ShardId>{0, 3}));
  // Mutating the shared policy is visible through the mapper (the hot-key
  // migration contract).
  policy->Assign("acctB", 0);
  EXPECT_TRUE(mapper.IsSingleShard(MakeTx({"acctA", "acctB"})));
}

TEST(ShardMapperTest, ShardsAreReasonablyBalanced) {
  ShardMapper mapper(4);
  std::vector<int> counts(4, 0);
  for (int i = 0; i < 4000; ++i) {
    ++counts[mapper.ShardOfAccount("acct" + std::to_string(i))];
  }
  for (int c : counts) {
    EXPECT_GT(c, 800);
    EXPECT_LT(c, 1200);
  }
}

TEST(TransactionTest, DigestSensitivity) {
  Transaction a = MakeTx({"x", "y"});
  Transaction b = a;
  EXPECT_EQ(a.Digest(), b.Digest());
  b.params[0] = 6;
  EXPECT_NE(a.Digest(), b.Digest());
  b = a;
  b.id = 2;
  EXPECT_NE(a.Digest(), b.Digest());
  b = a;
  b.accounts[1] = "z";
  EXPECT_NE(a.Digest(), b.Digest());
}

TEST(ReadWriteSetTest, ConflictDetection) {
  ReadWriteSet a, b;
  a.reads.push_back({OpType::kRead, "k1", 0});
  b.writes.push_back({OpType::kWrite, "k1", 5});
  EXPECT_TRUE(a.ConflictsWith(b));
  EXPECT_TRUE(b.ConflictsWith(a));

  ReadWriteSet c, d;
  c.reads.push_back({OpType::kRead, "k1", 0});
  d.reads.push_back({OpType::kRead, "k1", 0});
  EXPECT_FALSE(c.ConflictsWith(d));  // Read-read is no conflict.

  ReadWriteSet e, f;
  e.writes.push_back({OpType::kWrite, "k2", 1});
  f.writes.push_back({OpType::kWrite, "k2", 2});
  EXPECT_TRUE(e.ConflictsWith(f));  // Write-write conflicts.

  ReadWriteSet g, h;
  g.writes.push_back({OpType::kWrite, "k3", 1});
  h.reads.push_back({OpType::kRead, "k4", 0});
  EXPECT_FALSE(g.ConflictsWith(h));  // Disjoint keys.
}

TEST(ReadWriteSetTest, WrittenKeysDeduplicated) {
  ReadWriteSet s;
  s.writes.push_back({OpType::kWrite, "b", 1});
  s.writes.push_back({OpType::kWrite, "a", 2});
  s.writes.push_back({OpType::kWrite, "b", 3});
  EXPECT_EQ(s.WrittenKeys(), (std::vector<storage::Key>{"a", "b"}));
}

}  // namespace
}  // namespace thunderbolt::txn
