#include "crypto/signature.h"

#include <gtest/gtest.h>

namespace thunderbolt::crypto {
namespace {

class SignatureTest : public ::testing::Test {
 protected:
  SignatureTest() : dir_(KeyDirectory::Create(4, 99)) {}
  KeyDirectory dir_;
};

TEST_F(SignatureTest, SignVerifyRoundTrip) {
  Hash256 digest = Sha256::Digest("message");
  Signature sig = dir_.key(1).Sign(digest);
  EXPECT_EQ(sig.signer, 1u);
  EXPECT_TRUE(dir_.Verify(digest, sig));
}

TEST_F(SignatureTest, WrongMessageFails) {
  Signature sig = dir_.key(1).Sign(Sha256::Digest("message"));
  EXPECT_FALSE(dir_.Verify(Sha256::Digest("other"), sig));
}

TEST_F(SignatureTest, ForgedSignerFails) {
  Hash256 digest = Sha256::Digest("message");
  Signature sig = dir_.key(1).Sign(digest);
  sig.signer = 2;  // Claim another identity.
  EXPECT_FALSE(dir_.Verify(digest, sig));
}

TEST_F(SignatureTest, TamperedMacFails) {
  Hash256 digest = Sha256::Digest("message");
  Signature sig = dir_.key(0).Sign(digest);
  sig.mac.bytes[0] ^= 1;
  EXPECT_FALSE(dir_.Verify(digest, sig));
}

TEST_F(SignatureTest, UnknownSignerFails) {
  Hash256 digest = Sha256::Digest("message");
  Signature sig = dir_.key(0).Sign(digest);
  sig.signer = 42;
  EXPECT_FALSE(dir_.Verify(digest, sig));
}

TEST_F(SignatureTest, KeysAreDeterministicPerSeed) {
  KeyDirectory again = KeyDirectory::Create(4, 99);
  KeyDirectory other = KeyDirectory::Create(4, 100);
  EXPECT_EQ(dir_.key(2).secret(), again.key(2).secret());
  EXPECT_NE(dir_.key(2).secret(), other.key(2).secret());
}

class QuorumTest : public ::testing::Test {
 protected:
  QuorumTest() : dir_(KeyDirectory::Create(4, 7)) {
    digest_ = Sha256::Digest("block");
  }

  QuorumCert MakeCert(std::vector<ReplicaId> signers) {
    QuorumCert qc;
    qc.digest = digest_;
    for (ReplicaId id : signers) {
      qc.signatures.push_back(dir_.key(id).Sign(digest_));
    }
    return qc;
  }

  KeyDirectory dir_;
  Hash256 digest_;
};

TEST_F(QuorumTest, ValidQuorum) {
  // n=4 -> f=1 -> 2f+1 = 3.
  EXPECT_TRUE(MakeCert({0, 1, 2}).Validate(dir_, 4).ok());
  EXPECT_TRUE(MakeCert({0, 1, 2, 3}).Validate(dir_, 4).ok());
}

TEST_F(QuorumTest, TooFewSignatures) {
  EXPECT_TRUE(MakeCert({0, 1}).Validate(dir_, 4).IsCorruption());
}

TEST_F(QuorumTest, DuplicateSignerRejected) {
  QuorumCert qc = MakeCert({0, 1});
  qc.signatures.push_back(dir_.key(1).Sign(digest_));
  EXPECT_TRUE(qc.Validate(dir_, 4).IsCorruption());
}

TEST_F(QuorumTest, BadSignatureRejected) {
  QuorumCert qc = MakeCert({0, 1, 2});
  qc.signatures[1].mac.bytes[5] ^= 0xff;
  EXPECT_TRUE(qc.Validate(dir_, 4).IsCorruption());
}

TEST_F(QuorumTest, ContainsChecksSigners) {
  QuorumCert qc = MakeCert({0, 2, 3});
  EXPECT_TRUE(qc.Contains(0));
  EXPECT_FALSE(qc.Contains(1));
}

TEST(QuorumMathTest, Thresholds) {
  EXPECT_EQ(MaxFaults(4), 1u);
  EXPECT_EQ(QuorumSize(4), 3u);
  EXPECT_EQ(WeakQuorumSize(4), 2u);
  EXPECT_EQ(MaxFaults(16), 5u);
  EXPECT_EQ(QuorumSize(16), 11u);
  EXPECT_EQ(MaxFaults(64), 21u);
  EXPECT_EQ(QuorumSize(64), 43u);
  EXPECT_EQ(WeakQuorumSize(64), 22u);
}

}  // namespace
}  // namespace thunderbolt::crypto
