// Shared helpers for the Thunderbolt test suites: seeded-RNG fixtures,
// preloaded KV store factories and SmallBank workload builders. Everything
// here is deterministic — helpers take explicit seeds so a failing test
// reproduces from its own source alone.
#ifndef THUNDERBOLT_TESTS_TESTUTIL_TESTUTIL_H_
#define THUNDERBOLT_TESTS_TESTUTIL_TESTUTIL_H_

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "storage/kv_store.h"
#include "txn/transaction.h"
#include "workload/smallbank_workload.h"

namespace thunderbolt::testutil {

/// Seed used by fixtures that don't care about the specific stream.
inline constexpr uint64_t kDefaultSeed = 0x7e57c0deULL;

/// Fixture with a deterministic RNG, re-seeded identically for every test
/// so sampled values never depend on test execution order.
class SeededTest : public ::testing::Test {
 protected:
  SeededTest() : rng_(kDefaultSeed) {}

  /// Independent stream for tests that need more than one generator.
  Rng MakeRng(uint64_t seed) const { return Rng(seed); }

  Rng rng_;
};

/// Fresh in-memory store preloaded with the given key/value pairs.
storage::MemKVStore MakeStore(
    std::vector<std::pair<std::string, storage::Value>> entries = {});

/// SmallBank config sized for tests (small account population, fixed
/// seed). Default ratios match the paper's mix (theta 0.85, Pr 0.5).
workload::SmallBankConfig SmallBankTestConfig(uint64_t num_accounts,
                                              uint64_t seed,
                                              double read_ratio = 0.5,
                                              double theta = 0.85);

/// Registry-facing twin of SmallBankTestConfig: WorkloadOptions sized for
/// tests, for any workload constructed by name (e.g. via core::Cluster).
/// The defaults mirror SmallBankTestConfig so `Cluster(cfg, "smallbank",
/// WorkloadTestOptions(n, seed))` generates the exact same transaction
/// stream the SmallBankConfig-based API used to.
workload::WorkloadOptions WorkloadTestOptions(uint64_t num_records,
                                              uint64_t seed,
                                              double read_ratio = 0.5,
                                              double theta = 0.85);

/// Workload over `SmallBankTestConfig`. When `store` is non-null its
/// account balances are initialized first.
workload::SmallBankWorkload MakeSmallBank(storage::MemKVStore* store,
                                          uint64_t num_accounts,
                                          uint64_t seed,
                                          double read_ratio = 0.5,
                                          double theta = 0.85);

/// One-shot batch builder: seeds `store` with `config`'s accounts and
/// returns `count` transactions from its mix. Takes the full config (built
/// via `SmallBankTestConfig`) rather than loose scalars so call sites can't
/// silently transpose account/batch counts.
std::vector<txn::Transaction> MakeSmallBankBatch(
    storage::MemKVStore* store, size_t count,
    const workload::SmallBankConfig& config);

}  // namespace thunderbolt::testutil

#endif  // THUNDERBOLT_TESTS_TESTUTIL_TESTUTIL_H_
