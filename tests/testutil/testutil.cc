#include "testutil/testutil.h"

namespace thunderbolt::testutil {

storage::MemKVStore MakeStore(
    std::vector<std::pair<std::string, storage::Value>> entries) {
  storage::MemKVStore store;
  for (const auto& [key, value] : entries) {
    store.Put(key, value);
  }
  return store;
}

workload::SmallBankConfig SmallBankTestConfig(uint64_t num_accounts,
                                              uint64_t seed,
                                              double read_ratio,
                                              double theta) {
  workload::SmallBankConfig config;
  config.num_accounts = num_accounts;
  config.seed = seed;
  config.read_ratio = read_ratio;
  config.theta = theta;
  return config;
}

workload::WorkloadOptions WorkloadTestOptions(uint64_t num_records,
                                              uint64_t seed,
                                              double read_ratio,
                                              double theta) {
  workload::WorkloadOptions options;
  options.num_records = num_records;
  options.seed = seed;
  options.read_ratio = read_ratio;
  options.theta = theta;
  return options;
}

workload::SmallBankWorkload MakeSmallBank(storage::MemKVStore* store,
                                          uint64_t num_accounts,
                                          uint64_t seed,
                                          double read_ratio,
                                          double theta) {
  workload::SmallBankWorkload w(
      SmallBankTestConfig(num_accounts, seed, read_ratio, theta));
  if (store != nullptr) w.InitStore(store);
  return w;
}

std::vector<txn::Transaction> MakeSmallBankBatch(
    storage::MemKVStore* store, size_t count,
    const workload::SmallBankConfig& config) {
  workload::SmallBankWorkload w(config);
  if (store != nullptr) w.InitStore(store);
  return w.MakeBatch(count);
}

}  // namespace thunderbolt::testutil
