// The helpers the other 28 suites lean on deserve their own coverage:
// a silently broken factory would surface as confusing failures elsewhere.
#include "testutil/testutil.h"

#include <gtest/gtest.h>

namespace thunderbolt::testutil {
namespace {

TEST(MakeStoreTest, PreloadsEntriesWithVersions) {
  storage::MemKVStore store = MakeStore({{"a", 1}, {"b", -2}});
  EXPECT_EQ(store.size(), 2u);
  auto a = store.Get("a");
  ASSERT_TRUE(a.ok());
  EXPECT_EQ(a->value, 1);
  EXPECT_GT(a->version, 0u);  // Preload counts as a committed write.
  EXPECT_EQ(store.GetOrDefault("b", 0), -2);
  EXPECT_EQ(store.GetOrDefault("missing", 7), 7);
}

TEST(MakeStoreTest, EmptyByDefault) {
  EXPECT_EQ(MakeStore().size(), 0u);
}

TEST(SmallBankBuilderTest, ConfigCarriesArguments) {
  workload::SmallBankConfig wc =
      SmallBankTestConfig(123, /*seed=*/9, /*read_ratio=*/0.25,
                          /*theta=*/0.7);
  EXPECT_EQ(wc.num_accounts, 123u);
  EXPECT_EQ(wc.seed, 9u);
  EXPECT_DOUBLE_EQ(wc.read_ratio, 0.25);
  EXPECT_DOUBLE_EQ(wc.theta, 0.7);
}

TEST(SmallBankBuilderTest, MakeSmallBankSeedsStore) {
  storage::MemKVStore store;
  workload::SmallBankWorkload w = MakeSmallBank(&store, 10, /*seed=*/1);
  EXPECT_EQ(store.size(), 20u);  // checking + savings per account.
  EXPECT_EQ(w.TotalBalance(store),
            10 * (w.config().initial_checking + w.config().initial_savings));
}

TEST(SmallBankBuilderTest, BatchesAreDeterministicPerSeed) {
  storage::MemKVStore s1, s2;
  workload::SmallBankConfig wc = SmallBankTestConfig(100, /*seed=*/5);
  auto b1 = MakeSmallBankBatch(&s1, 50, wc);
  auto b2 = MakeSmallBankBatch(&s2, 50, wc);
  ASSERT_EQ(b1.size(), b2.size());
  for (size_t i = 0; i < b1.size(); ++i) {
    EXPECT_EQ(b1[i].Digest(), b2[i].Digest());
  }
  EXPECT_EQ(s1.ContentFingerprint(), s2.ContentFingerprint());
}

class SeededFixtureTest : public SeededTest {};

TEST_F(SeededFixtureTest, RngStreamIsReproducible) {
  // rng_ is re-seeded identically for every test; an independent stream
  // from the same seed must match it draw for draw.
  Rng fresh = MakeRng(kDefaultSeed);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(rng_.Next(), fresh.Next());
  }
}

}  // namespace
}  // namespace thunderbolt::testutil
