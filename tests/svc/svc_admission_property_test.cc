// Property tests for the service front end's admission accounting.
//
// The conservation law: every arrival the front end generates is accounted
// for exactly once —
//
//   offered == rejected + shed + dequeued + (in queue at drain time)
//
// with offered == admitted + rejected as the door-level split. This must
// hold for every policy, under any interleaving of AdvanceTo and Dequeue
// calls, at any load. A second property pins the shed-oldest liveness
// contract: under steady feasible load (dequeue capacity >= arrival rate)
// the policy never evicts, so no transaction starves.
#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "common/types.h"
#include "svc/service.h"
#include "txn/transaction.h"

namespace thunderbolt::svc {
namespace {

/// Synthetic source: unique ids, no contract resolution needed.
ServiceFrontEnd::TxnSource CountingSource(uint64_t* next_id) {
  return [next_id](ShardId shard) {
    txn::Transaction tx;
    tx.id = (*next_id)++;
    tx.accounts = {"acct/" + std::to_string(shard)};
    return tx;
  };
}

struct Drained {
  uint64_t dequeued_now = 0;
};

/// Pops everything left in the queues at `now` (max large enough to empty
/// each shard in one call). Codel may shed stale entries here too — that
/// still lands in the shed counter, keeping the law exact.
Drained DrainAll(ServiceFrontEnd& fe, SimTime now) {
  Drained d;
  for (ShardId s = 0; s < fe.num_shards(); ++s) {
    d.dequeued_now += fe.Dequeue(s, now, fe.config().queue_depth + 1).size();
  }
  return d;
}

TEST(SvcAdmissionPropertyTest, ConservationAcrossSeedsAndPolicies) {
  for (const std::string& policy :
       {std::string("drop-tail"), std::string("shed-oldest"),
        std::string("codel")}) {
    for (uint64_t seed = 1; seed <= 100; ++seed) {
      Rng rng(seed * 977 + 13);
      ServiceConfig config;
      config.enabled = true;
      config.admission = policy;
      // Random shapes: shard counts, tight-to-roomy queues, under- to
      // overload rates, occasional token-bucket limiting.
      const uint32_t num_shards = 1 + static_cast<uint32_t>(rng.NextBounded(4));
      config.queue_depth = 4 + static_cast<uint32_t>(rng.NextBounded(60));
      config.rate_tps = 500 + rng.NextDouble() * 20000;
      config.codel_target = Millis(5 + rng.NextBounded(100));
      if (rng.NextBounded(4) == 0) {
        config.limiter_rate_tps = 200 + rng.NextDouble() * 5000;
      }
      uint64_t next_id = 0;
      ServiceFrontEnd fe(config, num_shards, seed, CountingSource(&next_id),
                         /*metrics=*/nullptr);

      // Random interleaving of time advances and partial dequeues.
      SimTime now = 0;
      uint64_t dequeued_seen = 0;
      for (int step = 0; step < 200; ++step) {
        now += 1 + rng.NextBounded(20000);  // Up to 20 ms per step.
        fe.AdvanceTo(now);
        if (rng.NextBounded(3) != 0) {
          const ShardId shard =
              static_cast<ShardId>(rng.NextBounded(num_shards));
          const size_t max = 1 + rng.NextBounded(32);
          dequeued_seen += fe.Dequeue(shard, now, max).size();
        }
      }
      uint64_t in_queue = fe.total_queue_depth();
      const ServiceFrontEnd::Counters c = fe.counters();

      ASSERT_EQ(c.offered, next_id)
          << policy << " seed " << seed
          << ": every offered arrival draws exactly one source txn";
      ASSERT_EQ(c.offered, c.admitted + c.rejected)
          << policy << " seed " << seed << ": door-level split";
      ASSERT_EQ(c.admitted, c.shed + c.dequeued + in_queue)
          << policy << " seed " << seed << ": post-admission conservation";
      ASSERT_EQ(c.dequeued, dequeued_seen)
          << policy << " seed " << seed
          << ": dequeued counter matches handed-out transactions";

      // Drain and re-check: the law must close exactly once the queues
      // are empty (in-flight term drops to zero).
      DrainAll(fe, now + Seconds(10));
      const ServiceFrontEnd::Counters end = fe.counters();
      ASSERT_EQ(fe.total_queue_depth(), 0u);
      ASSERT_EQ(end.admitted, end.shed + end.dequeued)
          << policy << " seed " << seed << ": closed conservation at drain";
      // drop-tail never drops after admission; its shed stays zero.
      if (policy == "drop-tail") {
        ASSERT_EQ(end.shed, 0u) << "seed " << seed;
      }
    }
  }
}

TEST(SvcAdmissionPropertyTest, ShedOldestNeverStarvesUnderFeasibleLoad) {
  for (uint64_t seed = 1; seed <= 100; ++seed) {
    ServiceConfig config;
    config.enabled = true;
    config.admission = "shed-oldest";
    config.queue_depth = 64;
    config.rate_tps = 2000;  // Aggregate over all shards.
    const uint32_t num_shards = 2;
    uint64_t next_id = 0;
    ServiceFrontEnd fe(config, num_shards, seed, CountingSource(&next_id),
                       /*metrics=*/nullptr);

    // Service loop: every 10 ms, drain up to 40 per shard — 8000 tps of
    // capacity against 2000 tps offered, i.e. steadily feasible.
    const SimTime kPeriod = Millis(10);
    SimTime now = 0;
    uint64_t dequeued = 0;
    SimTime max_wait = 0;
    for (int cycle = 0; cycle < 500; ++cycle) {
      now += kPeriod;
      fe.AdvanceTo(now);
      for (ShardId s = 0; s < num_shards; ++s) {
        for (const txn::Transaction& tx : fe.Dequeue(s, now, 40)) {
          ++dequeued;
          max_wait = std::max(max_wait, now - tx.submit_time);
        }
      }
    }
    const ServiceFrontEnd::Counters c = fe.counters();
    // Liveness: feasible load never fills the queue, so shed-oldest never
    // evicts — every admitted transaction is eventually served.
    ASSERT_EQ(c.shed, 0u) << "seed " << seed;
    ASSERT_EQ(c.rejected, 0u) << "seed " << seed;
    ASSERT_EQ(c.admitted, c.dequeued + fe.total_queue_depth())
        << "seed " << seed;
    ASSERT_GT(dequeued, 0u) << "seed " << seed;
    // No transaction waited longer than one full service period: the FIFO
    // order is preserved (nothing is starved by younger arrivals).
    ASSERT_LE(max_wait, kPeriod) << "seed " << seed;
  }
}

/// Byte-level determinism of the schedule itself: the same seed must admit
/// the same transactions at the same times regardless of how callers slice
/// AdvanceTo — the property the cluster's arrival pump relies on.
TEST(SvcAdmissionPropertyTest, ScheduleIndependentOfTimeSlicing) {
  for (const std::string& arrival :
       {std::string("poisson"), std::string("burst")}) {
    ServiceConfig config;
    config.enabled = true;
    config.arrival = arrival;
    config.rate_tps = 5000;
    config.queue_depth = 1u << 16;  // No drops: compare full schedules.

    auto run = [&](SimTime slice) {
      uint64_t next_id = 0;
      ServiceFrontEnd fe(config, /*num_shards=*/3, /*seed=*/42,
                         CountingSource(&next_id), nullptr);
      for (SimTime now = slice; now <= Seconds(1); now += slice) {
        fe.AdvanceTo(now);
      }
      fe.AdvanceTo(Seconds(1));
      std::vector<uint64_t> ids;
      for (ShardId s = 0; s < 3; ++s) {
        for (const txn::Transaction& tx : fe.Dequeue(s, Seconds(1), 1u << 16)) {
          ids.push_back(tx.id);
          ids.push_back(tx.submit_time);
        }
      }
      return ids;
    };
    ASSERT_EQ(run(Micros(100)), run(Millis(50)))
        << arrival << ": admission schedule depends on AdvanceTo slicing";
  }
}

}  // namespace
}  // namespace thunderbolt::svc
