#include <gtest/gtest.h>

#include "contract/tbvm.h"

namespace thunderbolt::contract {
namespace {

TEST(TbvmDisasmTest, InstructionForms) {
  std::vector<std::string> suffixes = {"checking", "savings"};
  EXPECT_EQ(Disassemble(TbInstr{TbOp::kLoadImm, 2, 0, 0, 42}, suffixes),
            "loadimm r2, 42");
  EXPECT_EQ(Disassemble(TbInstr{TbOp::kLoadParam, 1, 0, 0, 3}, suffixes),
            "loadparam r1, param[3]");
  EXPECT_EQ(Disassemble(TbInstr{TbOp::kAdd, 1, 2, 3}, suffixes),
            "add r1, r2, r3");
  EXPECT_EQ(Disassemble(TbInstr{TbOp::kMakeKey, 0, 1, 1}, suffixes),
            "makekey k0, account[1], \"savings\"");
  EXPECT_EQ(Disassemble(TbInstr{TbOp::kRead, 4, 2, 0}, suffixes),
            "read r4, [k2]");
  EXPECT_EQ(Disassemble(TbInstr{TbOp::kWrite, 1, 5, 0}, suffixes),
            "write [k1], r5");
  EXPECT_EQ(Disassemble(TbInstr{TbOp::kJlt, 0, 1, 0, 9}, suffixes),
            "jlt r0, r1, 9");
  EXPECT_EQ(Disassemble(TbInstr{TbOp::kHalt, 0, 0, 0}, suffixes), "halt");
}

TEST(TbvmDisasmTest, OutOfRangeSuffixIsMarked) {
  EXPECT_EQ(Disassemble(TbInstr{TbOp::kMakeKey, 0, 0, 7}, {}),
            "makekey k0, account[0], <suffix 7>");
}

TEST(TbvmDisasmTest, WholeProgramNumbersLines) {
  TbProgram p;
  p.suffixes = {"x"};
  p.code = {
      {TbOp::kLoadImm, 0, 0, 0, 1},
      {TbOp::kEmit, 0, 0, 0},
      {TbOp::kHalt, 0, 0, 0},
  };
  EXPECT_EQ(Disassemble(p), "0: loadimm r0, 1\n1: emit r0\n2: halt\n");
}

TEST(TbvmDisasmTest, SmallBankProgramsDisassembleCleanly) {
  auto registry = Registry::CreateDefault();
  for (const char* name : {"tbvm.get_balance", "tbvm.send_payment",
                           "tbvm.write_check", "tbvm.amalgamate"}) {
    const auto* contract =
        dynamic_cast<const TbvmContract*>(registry->Lookup(name));
    ASSERT_NE(contract, nullptr) << name;
    std::string disasm = Disassemble(contract->program());
    EXPECT_NE(disasm.find("halt"), std::string::npos) << name;
    EXPECT_EQ(disasm.find("<bad op>"), std::string::npos) << name;
    EXPECT_EQ(disasm.find("<suffix"), std::string::npos) << name;
  }
}

}  // namespace
}  // namespace thunderbolt::contract
