#include "contract/smallbank.h"

#include <gtest/gtest.h>

#include "contract/contract.h"
#include "storage/kv_store.h"
#include "testutil/testutil.h"
#include "txn/transaction.h"

namespace thunderbolt::contract {
namespace {

using storage::Key;
using storage::Value;

/// Direct store-backed context for contract unit tests.
class TestContext final : public ContractContext {
 public:
  explicit TestContext(storage::MemKVStore* store) : store_(store) {}

  Result<Value> Read(const Key& key) override {
    return store_->GetOrDefault(key, 0);
  }
  Status Write(const Key& key, Value value) override {
    return store_->Put(key, value);
  }
  void EmitResult(Value value) override { results.push_back(value); }

  std::vector<Value> results;

 private:
  storage::MemKVStore* store_;
};

class SmallBankTest : public ::testing::Test {
 protected:
  SmallBankTest()
      : store_(testutil::MakeStore({{txn::CheckingKey("alice"), 100},
                                    {txn::SavingsKey("alice"), 50},
                                    {txn::CheckingKey("bob"), 10},
                                    {txn::SavingsKey("bob"), 5}})),
        registry_(Registry::CreateDefault()) {}

  std::vector<Value> Run(const std::string& contract,
                         std::vector<std::string> accounts,
                         std::vector<Value> params = {}) {
    txn::Transaction tx;
    tx.id = 1;
    tx.contract = contract;
    tx.accounts = std::move(accounts);
    tx.params = std::move(params);
    TestContext ctx(&store_);
    Status s = registry_->Execute(tx, ctx);
    EXPECT_TRUE(s.ok()) << s.ToString();
    return ctx.results;
  }

  Value Checking(const std::string& a) {
    return store_.GetOrDefault(txn::CheckingKey(a), 0);
  }
  Value Savings(const std::string& a) {
    return store_.GetOrDefault(txn::SavingsKey(a), 0);
  }

  storage::MemKVStore store_;
  std::shared_ptr<Registry> registry_;
};

TEST_F(SmallBankTest, GetBalanceSumsBoth) {
  auto r = Run(kGetBalance, {"alice"});
  ASSERT_EQ(r.size(), 1u);
  EXPECT_EQ(r[0], 150);
}

TEST_F(SmallBankTest, GetBalanceUnknownAccountIsZero) {
  auto r = Run(kGetBalance, {"nobody"});
  ASSERT_EQ(r.size(), 1u);
  EXPECT_EQ(r[0], 0);
}

TEST_F(SmallBankTest, DepositChecking) {
  Run(kDepositChecking, {"bob"}, {25});
  EXPECT_EQ(Checking("bob"), 35);
}

TEST_F(SmallBankTest, TransactSavingsPositive) {
  auto r = Run(kTransactSavings, {"alice"}, {30});
  EXPECT_EQ(r[0], 1);
  EXPECT_EQ(Savings("alice"), 80);
}

TEST_F(SmallBankTest, TransactSavingsDeclinedWhenNegative) {
  auto r = Run(kTransactSavings, {"alice"}, {-60});
  EXPECT_EQ(r[0], 0);
  EXPECT_EQ(Savings("alice"), 50);  // Unchanged.
}

TEST_F(SmallBankTest, TransactSavingsWithdrawWithinFunds) {
  auto r = Run(kTransactSavings, {"alice"}, {-50});
  EXPECT_EQ(r[0], 1);
  EXPECT_EQ(Savings("alice"), 0);
}

TEST_F(SmallBankTest, WriteCheckNoPenalty) {
  Run(kWriteCheck, {"alice"}, {120});  // total 150 >= 120.
  EXPECT_EQ(Checking("alice"), -20);
}

TEST_F(SmallBankTest, WriteCheckOverdraftPenalty) {
  Run(kWriteCheck, {"bob"}, {20});  // total 15 < 20 -> debit 21.
  EXPECT_EQ(Checking("bob"), -11);
}

TEST_F(SmallBankTest, SendPaymentMovesFunds) {
  auto r = Run(kSendPayment, {"alice", "bob"}, {40});
  EXPECT_EQ(r[0], 1);
  EXPECT_EQ(Checking("alice"), 60);
  EXPECT_EQ(Checking("bob"), 50);
}

TEST_F(SmallBankTest, SendPaymentDeclinedOnInsufficientFunds) {
  auto r = Run(kSendPayment, {"bob", "alice"}, {999});
  EXPECT_EQ(r[0], 0);
  EXPECT_EQ(Checking("bob"), 10);
  EXPECT_EQ(Checking("alice"), 100);
}

TEST_F(SmallBankTest, AmalgamateMovesEverything) {
  auto r = Run(kAmalgamate, {"alice", "bob"});
  EXPECT_EQ(r[0], 160);  // 10 + 100 + 50.
  EXPECT_EQ(Checking("alice"), 0);
  EXPECT_EQ(Savings("alice"), 0);
  EXPECT_EQ(Checking("bob"), 160);
  EXPECT_EQ(Savings("bob"), 5);
}

TEST_F(SmallBankTest, MissingArgsRejected) {
  txn::Transaction tx;
  tx.contract = kSendPayment;
  tx.accounts = {"alice"};  // Needs two.
  tx.params = {1};
  TestContext ctx(&store_);
  EXPECT_TRUE(registry_->Execute(tx, ctx).IsInvalidArgument());
}

TEST_F(SmallBankTest, UnknownContractIsNotFound) {
  txn::Transaction tx;
  tx.contract = "no.such.contract";
  TestContext ctx(&store_);
  EXPECT_TRUE(registry_->Execute(tx, ctx).IsNotFound());
}

}  // namespace
}  // namespace thunderbolt::contract
