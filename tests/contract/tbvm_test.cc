#include "contract/tbvm.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "contract/contract.h"
#include "contract/smallbank.h"
#include "storage/kv_store.h"
#include "testutil/testutil.h"
#include "txn/transaction.h"

namespace thunderbolt::contract {
namespace {

using storage::Key;
using storage::Value;

class VmContext final : public ContractContext {
 public:
  explicit VmContext(storage::MemKVStore* store) : store_(store) {}
  Result<Value> Read(const Key& key) override {
    reads.push_back(key);
    return store_->GetOrDefault(key, 0);
  }
  Status Write(const Key& key, Value value) override {
    writes.push_back(key);
    return store_->Put(key, value);
  }
  void EmitResult(Value value) override { results.push_back(value); }

  std::vector<Key> reads, writes;
  std::vector<Value> results;

 private:
  storage::MemKVStore* store_;
};

txn::Transaction Tx(std::vector<std::string> accounts,
                    std::vector<Value> params = {}) {
  txn::Transaction tx;
  tx.id = 1;
  tx.accounts = std::move(accounts);
  tx.params = std::move(params);
  return tx;
}

TEST(TbvmTest, ArithmeticAndEmit) {
  TbProgram p;
  p.code = {
      {TbOp::kLoadImm, 0, 0, 0, 6},
      {TbOp::kLoadImm, 1, 0, 0, 7},
      {TbOp::kMul, 2, 0, 1},
      {TbOp::kEmit, 2, 0, 0},
      {TbOp::kHalt, 0, 0, 0},
  };
  storage::MemKVStore store;
  VmContext ctx(&store);
  ASSERT_TRUE(RunTbProgram(p, Tx({}), ctx).ok());
  ASSERT_EQ(ctx.results.size(), 1u);
  EXPECT_EQ(ctx.results[0], 42);
}

TEST(TbvmTest, ConditionalBranching) {
  // Emits 1 if param0 < param1 else 0.
  TbProgram p;
  p.code = {
      {TbOp::kLoadParam, 0, 0, 0, 0},
      {TbOp::kLoadParam, 1, 0, 0, 1},
      {TbOp::kJlt, 0, 1, 0, 5},
      {TbOp::kLoadImm, 2, 0, 0, 0},
      {TbOp::kJmp, 0, 0, 0, 6},
      {TbOp::kLoadImm, 2, 0, 0, 1},
      {TbOp::kEmit, 2, 0, 0},
      {TbOp::kHalt, 0, 0, 0},
  };
  storage::MemKVStore store;
  {
    VmContext ctx(&store);
    ASSERT_TRUE(RunTbProgram(p, Tx({}, {3, 9}), ctx).ok());
    EXPECT_EQ(ctx.results[0], 1);
  }
  {
    VmContext ctx(&store);
    ASSERT_TRUE(RunTbProgram(p, Tx({}, {9, 3}), ctx).ok());
    EXPECT_EQ(ctx.results[0], 0);
  }
}

TEST(TbvmTest, DataDependentAccessPattern) {
  // Reads a counter and only writes when it is non-zero: the write set
  // depends on runtime state, the property Thunderbolt's CE relies on.
  TbProgram p;
  p.suffixes = {"counter", "log"};
  p.code = {
      {TbOp::kMakeKey, 0, 0, 0},      // k0 = a/counter
      {TbOp::kRead, 0, 0, 0},         // r0 = [k0]
      {TbOp::kJz, 0, 0, 0, 5},        // skip write when zero
      {TbOp::kMakeKey, 1, 0, 1},      // k1 = a/log
      {TbOp::kWrite, 1, 0, 0},        // [k1] = r0
      {TbOp::kHalt, 0, 0, 0},
  };
  storage::MemKVStore store;
  {
    VmContext ctx(&store);
    ASSERT_TRUE(RunTbProgram(p, Tx({"a"}), ctx).ok());
    EXPECT_TRUE(ctx.writes.empty());
  }
  store.Put("a/counter", 5);
  {
    VmContext ctx(&store);
    ASSERT_TRUE(RunTbProgram(p, Tx({"a"}), ctx).ok());
    ASSERT_EQ(ctx.writes.size(), 1u);
    EXPECT_EQ(store.GetOrDefault("a/log", 0), 5);
  }
}

TEST(TbvmTest, StepBudgetStopsInfiniteLoop) {
  TbProgram p;
  p.step_budget = 1000;
  p.code = {{TbOp::kJmp, 0, 0, 0, 0}};  // while(true);
  storage::MemKVStore store;
  VmContext ctx(&store);
  Status s = RunTbProgram(p, Tx({}), ctx);
  EXPECT_EQ(s.code(), StatusCode::kOutOfRange);
}

TEST(TbvmTest, DivisionByZeroFails) {
  TbProgram p;
  p.code = {
      {TbOp::kLoadImm, 0, 0, 0, 1},
      {TbOp::kLoadImm, 1, 0, 0, 0},
      {TbOp::kDiv, 2, 0, 1},
  };
  storage::MemKVStore store;
  VmContext ctx(&store);
  EXPECT_TRUE(RunTbProgram(p, Tx({}), ctx).IsInvalidArgument());
}

TEST(TbvmTest, MalformedProgramsRejected) {
  storage::MemKVStore store;
  {
    TbProgram p;  // Param index out of range.
    p.code = {{TbOp::kLoadParam, 0, 0, 0, 3}};
    VmContext ctx(&store);
    EXPECT_TRUE(RunTbProgram(p, Tx({}, {}), ctx).IsInvalidArgument());
  }
  {
    TbProgram p;  // Read from unset key register.
    p.code = {{TbOp::kRead, 0, 2, 0}};
    VmContext ctx(&store);
    EXPECT_TRUE(RunTbProgram(p, Tx({}), ctx).IsInvalidArgument());
  }
  {
    TbProgram p;  // Jump out of range.
    p.code = {{TbOp::kJmp, 0, 0, 0, 99}};
    VmContext ctx(&store);
    EXPECT_TRUE(RunTbProgram(p, Tx({}), ctx).IsInvalidArgument());
  }
  {
    TbProgram p;  // kFail.
    p.code = {{TbOp::kFail, 0, 0, 0}};
    VmContext ctx(&store);
    EXPECT_TRUE(RunTbProgram(p, Tx({}), ctx).IsInvalidArgument());
  }
}

// The TBVM-compiled SmallBank must behave identically to the native C++
// contracts on randomized inputs.
TEST(TbvmSmallBankTest, EquivalentToNativeContracts) {
  auto registry = Registry::CreateDefault();
  const std::pair<const char*, const char*> pairs[] = {
      {"smallbank.get_balance", "tbvm.get_balance"},
      {"smallbank.deposit_checking", "tbvm.deposit_checking"},
      {"smallbank.transact_savings", "tbvm.transact_savings"},
      {"smallbank.write_check", "tbvm.write_check"},
      {"smallbank.send_payment", "tbvm.send_payment"},
      {"smallbank.amalgamate", "tbvm.amalgamate"},
  };

  Rng rng(2024);
  for (int iter = 0; iter < 200; ++iter) {
    std::vector<std::pair<std::string, Value>> init;
    for (int a = 0; a < 4; ++a) {
      std::string account = "a" + std::to_string(a);
      init.emplace_back(txn::CheckingKey(account),
                        static_cast<Value>(rng.NextBounded(200)) - 50);
      init.emplace_back(txn::SavingsKey(account),
                        static_cast<Value>(rng.NextBounded(200)) - 50);
    }
    storage::MemKVStore native_store = testutil::MakeStore(init);
    storage::MemKVStore vm_store = testutil::MakeStore(init);
    auto& [native_name, vm_name] = pairs[iter % 6];
    std::string a = "a" + std::to_string(rng.NextBounded(4));
    std::string b = "a" + std::to_string(rng.NextBounded(4));
    Value amount = static_cast<Value>(rng.NextBounded(150)) - 25;

    txn::Transaction tx = Tx({a, b}, {amount});
    tx.contract = native_name;
    VmContext native_ctx(&native_store);
    Status ns = registry->Execute(tx, native_ctx);

    tx.contract = vm_name;
    VmContext vm_ctx(&vm_store);
    Status vs = registry->Execute(tx, vm_ctx);

    ASSERT_EQ(ns.ok(), vs.ok()) << native_name << " iter " << iter;
    EXPECT_EQ(native_ctx.results, vm_ctx.results)
        << native_name << " iter " << iter;
    EXPECT_EQ(native_store.ContentFingerprint(),
              vm_store.ContentFingerprint())
        << native_name << " iter " << iter;
  }
}

}  // namespace
}  // namespace thunderbolt::contract
