// Unit tests for the TPC-C-lite TBVM programs: Payment's YTD flows and
// bad-credit branch, NewOrder's order-id counter, stock decrement and
// restock rule, and the value-dependent probe read.
#include "contract/tpcc_lite.h"

#include <gtest/gtest.h>

#include "contract/contract.h"
#include "storage/kv_store.h"
#include "testutil/testutil.h"
#include "txn/transaction.h"

namespace thunderbolt::contract {
namespace {

/// Direct-to-store context recording reads and emitted results.
class StoreContext final : public ContractContext {
 public:
  explicit StoreContext(storage::MemKVStore* store) : store_(store) {}

  Result<Value> Read(const Key& key) override {
    reads.push_back(key);
    return store_->GetOrDefault(key, 0);
  }

  Status Write(const Key& key, Value value) override {
    return store_->Put(key, value);
  }

  void EmitResult(Value value) override { emitted.push_back(value); }

  std::vector<Key> reads;
  std::vector<Value> emitted;

 private:
  storage::MemKVStore* store_;
};

class TpccLiteTest : public ::testing::Test {
 protected:
  TpccLiteTest() : registry_(Registry::CreateDefault()), ctx_(&store_) {}

  Status Run(const txn::Transaction& tx) {
    return registry_->Execute(tx, ctx_);
  }

  Value At(const std::string& key) { return store_.GetOrDefault(key, 0); }

  storage::MemKVStore store_;
  std::shared_ptr<Registry> registry_;
  StoreContext ctx_;
};

txn::Transaction PaymentTx(std::string warehouse, std::string district,
                           std::string customer, Value amount) {
  txn::Transaction tx;
  tx.id = 1;
  tx.contract = kTpccPayment;
  tx.accounts = {std::move(warehouse), std::move(district),
                 std::move(customer)};
  tx.params = {amount};
  return tx;
}

txn::Transaction NewOrderTx(std::string district,
                            std::vector<std::string> items,
                            std::vector<Value> quantities) {
  txn::Transaction tx;
  tx.id = 2;
  tx.contract = kTpccNewOrder;
  tx.accounts.push_back(std::move(district));
  for (auto& item : items) tx.accounts.push_back(std::move(item));
  tx.params = std::move(quantities);
  return tx;
}

TEST_F(TpccLiteTest, PaymentFlowsIntoAllThreeYtds) {
  store_.Put("c1/balance", 1000);
  ASSERT_TRUE(Run(PaymentTx("w1", "d1", "c1", 70)).ok());
  EXPECT_EQ(At("w1/ytd"), 70);
  EXPECT_EQ(At("d1/ytd"), 70);
  EXPECT_EQ(At("c1/balance"), 930);
  EXPECT_EQ(At("c1/ytd_payment"), 70);
  EXPECT_EQ(At("c1/payment_cnt"), 1);
  EXPECT_EQ(ctx_.emitted, (std::vector<Value>{930}));
}

TEST_F(TpccLiteTest, PaymentGoodCreditSkipsPenalty) {
  ASSERT_TRUE(Run(PaymentTx("w1", "d1", "c1", 10)).ok());
  EXPECT_EQ(At("c1/penalty"), 0);
  // The penalty key is never even read on the good-credit path.
  for (const Key& key : ctx_.reads) {
    EXPECT_NE(key, "c1/penalty");
  }
}

TEST_F(TpccLiteTest, PaymentBadCreditTakesPenaltyBranch) {
  store_.Put("c1/credit", 1);
  ASSERT_TRUE(Run(PaymentTx("w1", "d1", "c1", 10)).ok());
  EXPECT_EQ(At("c1/penalty"), 1);
  ASSERT_TRUE(Run(PaymentTx("w1", "d1", "c1", 10)).ok());
  EXPECT_EQ(At("c1/penalty"), 2);
}

TEST_F(TpccLiteTest, PaymentNonPositiveAmountDeclines) {
  ASSERT_TRUE(Run(PaymentTx("w1", "d1", "c1", 0)).ok());
  EXPECT_EQ(At("w1/ytd"), 0);
  EXPECT_EQ(ctx_.emitted, (std::vector<Value>{0}));
}

TEST_F(TpccLiteTest, NewOrderAdvancesOrderIdAndDeductsStock) {
  store_.Put("d1/next_oid", 1);
  store_.Put("i1/stock", 100);
  store_.Put("i2/stock", 100);
  store_.Put("i3/stock", 100);
  ASSERT_TRUE(Run(NewOrderTx("d1", {"i1", "i2", "i3"}, {5, 3, 2})).ok());
  EXPECT_EQ(At("d1/next_oid"), 2);
  EXPECT_EQ(At("d1/order_cnt"), 1);
  EXPECT_EQ(At("d1/order_ytd"), 10);
  EXPECT_EQ(At("i1/stock"), 95);
  EXPECT_EQ(At("i2/stock"), 97);
  EXPECT_EQ(At("i3/stock"), 98);
  EXPECT_EQ(ctx_.emitted, (std::vector<Value>{10}));
}

TEST_F(TpccLiteTest, NewOrderRestocksBelowThreshold) {
  store_.Put("d1/next_oid", 1);
  // stock < qty + margin triggers the +91 refill before deduction.
  store_.Put("i1/stock", 12);
  store_.Put("i2/stock", 100);
  store_.Put("i3/stock", 100);
  ASSERT_TRUE(Run(NewOrderTx("d1", {"i1", "i2", "i3"}, {5, 1, 1})).ok());
  EXPECT_EQ(At("i1/stock"), 12 + kTpccRestockAmount - 5);
  EXPECT_EQ(At("i2/stock"), 99);
}

TEST_F(TpccLiteTest, NewOrderProbesValueDependentKey) {
  // next_oid = 6, 4 accounts -> the probe reads accounts[6 % 4]/stock =
  // i2/stock. The read set depends on a value read in the same
  // transaction, which no engine can know up front.
  store_.Put("d1/next_oid", 6);
  store_.Put("i1/stock", 100);
  store_.Put("i2/stock", 100);
  store_.Put("i3/stock", 100);
  ASSERT_TRUE(Run(NewOrderTx("d1", {"i1", "i2", "i3"}, {1, 1, 1})).ok());
  ASSERT_FALSE(ctx_.reads.empty());
  EXPECT_EQ(ctx_.reads.back(), "i2/stock");
}

TEST_F(TpccLiteTest, ProgramsDisassemble) {
  // The assembler produces well-formed jumps: disassembly shouldn't show
  // any <bad op> and the programs must be non-trivial.
  EXPECT_GT(AssembleTpccPayment().code.size(), 20u);
  EXPECT_GT(AssembleTpccNewOrder().code.size(), 30u);
  EXPECT_EQ(Disassemble(AssembleTpccPayment()).find("<bad"),
            std::string::npos);
  EXPECT_EQ(Disassemble(AssembleTpccNewOrder()).find("<bad"),
            std::string::npos);
}

}  // namespace
}  // namespace thunderbolt::contract
