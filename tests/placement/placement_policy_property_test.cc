// Property battery over every policy registered in
// placement::PlacementRegistry::Global(): placement must be total (every
// account maps to a shard below num_shards), stable (same account, same
// answer across calls), and replica-deterministic (two policies built from
// the same configuration agree on every account and report equal
// fingerprints). The directory policy additionally round-trips through
// Serialize/Deserialize, before and after a hot-key rebalance.
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "placement/placement.h"
#include "testutil/testutil.h"

namespace thunderbolt::placement {
namespace {

/// Account names in every style the built-in workloads emit, plus some
/// hostile extras (empty-ish, punctuated, long).
std::vector<std::string> SampleAccounts(Rng& rng, size_t count) {
  std::vector<std::string> accounts;
  accounts.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    switch (rng.NextBounded(6)) {
      case 0:
        accounts.push_back("acct" + std::to_string(rng.NextBounded(100000)));
        break;
      case 1:
        accounts.push_back("user" + std::to_string(rng.NextBounded(100000)));
        break;
      case 2:
        accounts.push_back("w" + std::to_string(rng.NextBounded(16)) + ".d" +
                           std::to_string(rng.NextBounded(10)) + ".c" +
                           std::to_string(rng.NextBounded(100)));
        break;
      case 3:
        accounts.push_back("item" + std::to_string(rng.NextBounded(1000)));
        break;
      case 4:
        accounts.push_back("w" + std::to_string(rng.NextBounded(16)));
        break;
      default:
        accounts.push_back(std::string(1 + rng.NextBounded(40), 'z') +
                           std::to_string(rng.NextBounded(1000)));
        break;
    }
  }
  return accounts;
}

/// A TPC-C-style hint so the locality policy exercises real group folding.
std::string WarehouseHint(const std::string& account) {
  if (account.empty() || account[0] != 'w') return account;
  size_t dot = account.find('.');
  if (dot == std::string::npos) return account;
  return account.substr(0, dot);
}

PlacementOptions OptionsFor(uint32_t num_shards) {
  PlacementOptions options;
  options.num_shards = num_shards;
  options.hint = WarehouseHint;
  return options;
}

class PlacementPolicyPropertyTest : public testutil::SeededTest {};

TEST_F(PlacementPolicyPropertyTest, RegistryHasAllBuiltins) {
  auto& registry = PlacementRegistry::Global();
  for (const char* name : {"hash", "range", "directory", "locality"}) {
    EXPECT_TRUE(registry.Contains(name)) << name;
  }
  EXPECT_EQ(registry.Names().size(), 4u);
  EXPECT_EQ(registry.Create("no-such-policy", OptionsFor(4)), nullptr);
}

TEST_F(PlacementPolicyPropertyTest, TotalStableAndReplicaDeterministic) {
  std::vector<std::string> accounts = SampleAccounts(rng_, 5000);
  for (const std::string& name : PlacementRegistry::Global().Names()) {
    for (uint32_t num_shards : {1u, 2u, 4u, 8u}) {
      // Two "replicas" built from identical configuration.
      auto a = PlacementRegistry::Global().Create(name, OptionsFor(num_shards));
      auto b = PlacementRegistry::Global().Create(name, OptionsFor(num_shards));
      ASSERT_NE(a, nullptr) << name;
      ASSERT_NE(b, nullptr) << name;
      EXPECT_EQ(a->name(), name);
      EXPECT_EQ(a->num_shards(), num_shards) << name;
      EXPECT_EQ(a->Fingerprint(), b->Fingerprint())
          << name << " shards=" << num_shards;
      for (const std::string& account : accounts) {
        ShardId s = a->ShardOfAccount(account);
        EXPECT_LT(s, num_shards) << name << " account=" << account;
        // Stable across calls, and equal across replicas.
        EXPECT_EQ(a->ShardOfAccount(account), s) << name;
        EXPECT_EQ(b->ShardOfAccount(account), s)
            << name << " account=" << account;
      }
    }
  }
}

TEST_F(PlacementPolicyPropertyTest, FingerprintSeparatesConfigurations) {
  for (const std::string& name : PlacementRegistry::Global().Names()) {
    auto two = PlacementRegistry::Global().Create(name, OptionsFor(2));
    auto four = PlacementRegistry::Global().Create(name, OptionsFor(4));
    EXPECT_NE(two->Fingerprint(), four->Fingerprint()) << name;
  }
}

TEST_F(PlacementPolicyPropertyTest, HashPolicyMatchesHistoricalMapping) {
  // The "hash" policy must stay byte-identical to the original
  // Sha256(account) % num_shards so determinism baselines carry over.
  HashPlacement policy(16);
  for (int i = 0; i < 1000; ++i) {
    std::string account = "acct" + std::to_string(i);
    EXPECT_EQ(policy.ShardOfAccount(account),
              static_cast<ShardId>(Sha256::Digest(account).Prefix64() % 16));
  }
}

TEST_F(PlacementPolicyPropertyTest, RangeRespectsConfiguredSplits) {
  PlacementOptions options;
  options.num_shards = 3;
  options.params = "splits=g;p";
  auto policy = PlacementRegistry::Global().Create("range", options);
  ASSERT_NE(policy, nullptr);
  EXPECT_EQ(policy->ShardOfAccount("acct1"), 0u);
  EXPECT_EQ(policy->ShardOfAccount("fff"), 0u);
  EXPECT_EQ(policy->ShardOfAccount("g"), 1u);
  EXPECT_EQ(policy->ShardOfAccount("item9"), 1u);
  EXPECT_EQ(policy->ShardOfAccount("p"), 2u);
  EXPECT_EQ(policy->ShardOfAccount("w3.d5"), 2u);
}

TEST_F(PlacementPolicyPropertyTest, LocalityCoLocatesHintGroups) {
  LocalityPlacement policy(8, WarehouseHint);
  for (uint32_t w = 0; w < 16; ++w) {
    std::string warehouse = "w" + std::to_string(w);
    ShardId home = policy.ShardOfAccount(warehouse);
    for (uint32_t d = 0; d < 4; ++d) {
      std::string district = warehouse + ".d" + std::to_string(d);
      EXPECT_EQ(policy.ShardOfAccount(district), home);
      EXPECT_EQ(policy.ShardOfAccount(district + ".c7"), home);
    }
  }
  // Without a hint, locality degenerates to hash.
  LocalityPlacement plain(8, nullptr);
  HashPlacement hash(8);
  for (int i = 0; i < 200; ++i) {
    std::string account = "user" + std::to_string(i);
    EXPECT_EQ(plain.ShardOfAccount(account), hash.ShardOfAccount(account));
  }
}

TEST_F(PlacementPolicyPropertyTest, DirectoryRoundTripsSerialization) {
  DirectoryPlacement policy(8, /*top_k=*/4);
  std::vector<std::string> accounts = SampleAccounts(rng_, 200);
  for (size_t i = 0; i < accounts.size(); ++i) {
    policy.Assign(accounts[i], static_cast<ShardId>(i % 8));
  }

  auto restored = DirectoryPlacement::Deserialize(policy.Serialize());
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  EXPECT_EQ((*restored)->Fingerprint(), policy.Fingerprint());
  EXPECT_EQ((*restored)->directory_size(), policy.directory_size());
  EXPECT_EQ((*restored)->top_k(), policy.top_k());
  for (const std::string& account : SampleAccounts(rng_, 2000)) {
    EXPECT_EQ((*restored)->ShardOfAccount(account),
              policy.ShardOfAccount(account))
        << account;
  }

  EXPECT_FALSE(DirectoryPlacement::Deserialize("").ok());
  EXPECT_FALSE(DirectoryPlacement::Deserialize("bogus header\n").ok());
  EXPECT_FALSE(
      DirectoryPlacement::Deserialize("directory 4 2\nacct1:9\n").ok());
}

TEST_F(PlacementPolicyPropertyTest, DirectoryRebalanceIsDeterministic) {
  // Identical access stats applied to identically configured replicas must
  // produce identical migrations and identical post-migration mappings.
  AccessTracker stats;
  std::vector<std::string> accounts = SampleAccounts(rng_, 64);
  for (int round = 0; round < 500; ++round) {
    const std::string& account = accounts[rng_.NextBounded(accounts.size())];
    stats.RecordRemoteAccess(account,
                             static_cast<ShardId>(rng_.NextBounded(4)));
  }
  DirectoryPlacement a(4, /*top_k=*/6);
  DirectoryPlacement b(4, /*top_k=*/6);
  std::vector<MigrationEvent> ea = a.Rebalance(stats);
  std::vector<MigrationEvent> eb = b.Rebalance(stats);
  ASSERT_EQ(ea.size(), eb.size());
  ASSERT_GT(ea.size(), 0u);
  EXPECT_LE(ea.size(), 6u);
  for (size_t i = 0; i < ea.size(); ++i) {
    EXPECT_EQ(ea[i].account, eb[i].account);
    EXPECT_EQ(ea[i].from, eb[i].from);
    EXPECT_EQ(ea[i].to, eb[i].to);
    EXPECT_NE(ea[i].from, ea[i].to);
    EXPECT_GT(ea[i].remote_accesses, 0u);
    // The account now lives where the migration said it went.
    EXPECT_EQ(a.ShardOfAccount(ea[i].account), ea[i].to);
  }
  EXPECT_EQ(a.Fingerprint(), b.Fingerprint());

  // Migration state survives the serialization round-trip too.
  auto restored = DirectoryPlacement::Deserialize(a.Serialize());
  ASSERT_TRUE(restored.ok());
  EXPECT_EQ((*restored)->Fingerprint(), a.Fingerprint());
}

TEST_F(PlacementPolicyPropertyTest, RebalanceMovesHotKeysTowardAccessors) {
  DirectoryPlacement policy(4, /*top_k=*/2);
  AccessTracker stats;
  // "hot" is hammered by shard 2; "warm" by shard 1; "cool" barely at all.
  const ShardId hot_home = policy.ShardOfAccount("hot");
  for (int i = 0; i < 100; ++i) stats.RecordRemoteAccess("hot", 2);
  for (int i = 0; i < 50; ++i) stats.RecordRemoteAccess("warm", 1);
  stats.RecordRemoteAccess("cool", 3);
  EXPECT_EQ(stats.total_remote_accesses(), 151u);

  std::vector<MigrationEvent> events = policy.Rebalance(stats);
  // top_k=2 considers only the two hottest accounts; "cool" is never
  // touched even though it too was remote-accessed.
  ASSERT_LE(events.size(), 2u);
  bool hot_moved = false;
  for (const MigrationEvent& e : events) {
    EXPECT_NE(e.account, "cool");
    if (e.account == "hot") {
      hot_moved = true;
      EXPECT_EQ(e.from, hot_home);
      EXPECT_EQ(e.to, 2u);
      EXPECT_EQ(e.remote_accesses, 100u);
    }
  }
  // "hot" migrates unless it already lived on shard 2.
  EXPECT_EQ(hot_moved, hot_home != 2u);
  EXPECT_EQ(policy.ShardOfAccount("hot"), 2u);
}

TEST_F(PlacementPolicyPropertyTest, DirectoryDictionaryStaysBounded) {
  // Long runs churn the hot set: the dictionary must never exceed
  // max_entries, however many epochs of migrations (or manual assigns)
  // pile up — the least-recently-migrated pins fall back to hash.
  constexpr uint32_t kMaxEntries = 32;
  DirectoryPlacement policy(4, /*top_k=*/8, kMaxEntries);
  EXPECT_EQ(policy.max_entries(), kMaxEntries);

  uint64_t total_migrations = 0;
  for (int epoch = 0; epoch < 50; ++epoch) {
    AccessTracker stats;
    // A fresh hot set every epoch, hammered from a rotating shard.
    for (int a = 0; a < 8; ++a) {
      std::string account =
          "epoch" + std::to_string(epoch) + ".hot" + std::to_string(a);
      for (int hit = 0; hit < 10; ++hit) {
        stats.RecordRemoteAccess(account,
                                 static_cast<ShardId>((epoch + a) % 4));
      }
    }
    std::vector<MigrationEvent> events = policy.Rebalance(stats);
    total_migrations += events.size();
    EXPECT_LE(policy.directory_size(), kMaxEntries)
        << "epoch " << epoch << " overflowed the dictionary";
    for (const MigrationEvent& e : events) {
      EXPECT_LT(e.to, 4u);
    }
  }
  // The churn really exercised the bound (not a vacuous pass).
  EXPECT_GT(total_migrations, kMaxEntries);
  EXPECT_EQ(policy.directory_size(), kMaxEntries);

  // Assign floods respect the same bound.
  DirectoryPlacement assigned(4, /*top_k=*/8, kMaxEntries);
  for (int i = 0; i < 500; ++i) {
    assigned.Assign("acct" + std::to_string(i),
                    static_cast<ShardId>(i % 4));
  }
  EXPECT_EQ(assigned.directory_size(), kMaxEntries);
  // The survivors are exactly the most recently assigned pins.
  for (int i = 500 - kMaxEntries; i < 500; ++i) {
    EXPECT_EQ(assigned.ShardOfAccount("acct" + std::to_string(i)),
              static_cast<ShardId>(i % 4));
  }
}

TEST_F(PlacementPolicyPropertyTest, DirectoryEvictionSurvivesSerialization) {
  // The serialized form carries migration-recency order, so original and
  // restored replicas evict the same victim next.
  constexpr uint32_t kMaxEntries = 8;
  DirectoryPlacement policy(4, /*top_k=*/2, kMaxEntries);
  for (int i = 0; i < 8; ++i) {
    policy.Assign("pin" + std::to_string(i), static_cast<ShardId>(i % 4));
  }
  auto restored = DirectoryPlacement::Deserialize(policy.Serialize());
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  EXPECT_EQ((*restored)->max_entries(), kMaxEntries);
  EXPECT_EQ((*restored)->Fingerprint(), policy.Fingerprint());

  // One more pin overflows both; they must evict identically.
  policy.Assign("straw", 1);
  (*restored)->Assign("straw", 1);
  EXPECT_EQ(policy.directory_size(), kMaxEntries);
  EXPECT_EQ((*restored)->directory_size(), kMaxEntries);
  EXPECT_EQ((*restored)->Fingerprint(), policy.Fingerprint());

  // Legacy two-field headers still parse, defaulting the bound.
  auto legacy = DirectoryPlacement::Deserialize("directory 4 2\nacct1:3\n");
  ASSERT_TRUE(legacy.ok()) << legacy.status().ToString();
  EXPECT_EQ((*legacy)->max_entries(), DirectoryPlacement::kDefaultMaxEntries);
  EXPECT_EQ((*legacy)->ShardOfAccount("acct1"), 3u);

  // A serialization carrying more pins than its own bound (hand-edited or
  // produced under a larger bound) is trimmed oldest-first on load, so
  // the invariant holds from the first lookup.
  auto trimmed =
      DirectoryPlacement::Deserialize("directory 4 2 2\na:0\nb:1\nc:2\n");
  ASSERT_TRUE(trimmed.ok()) << trimmed.status().ToString();
  EXPECT_EQ((*trimmed)->directory_size(), 2u);
  EXPECT_EQ((*trimmed)->ShardOfAccount("b"), 1u);
  EXPECT_EQ((*trimmed)->ShardOfAccount("c"), 2u);
}

TEST_F(PlacementPolicyPropertyTest, GenerationTracksMutations) {
  // txn::ShardMapper's memo cache keys on generation(): it must move on
  // every mapping change and stay put on lookups.
  DirectoryPlacement policy(4);
  const uint64_t initial = policy.generation();
  policy.ShardOfAccount("acct1");
  EXPECT_EQ(policy.generation(), initial);
  policy.Assign("acct1", 2);
  EXPECT_GT(policy.generation(), initial);

  AccessTracker stats;
  for (int i = 0; i < 10; ++i) stats.RecordRemoteAccess("hotkey", 3);
  const uint64_t before = policy.generation();
  std::vector<MigrationEvent> events = policy.Rebalance(stats);
  if (!events.empty()) {
    EXPECT_GT(policy.generation(), before);
  }
}

}  // namespace
}  // namespace thunderbolt::placement
