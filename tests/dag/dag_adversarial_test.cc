// Adversarial-input tests for DagCore: equivocation, forged certificates,
// malformed blocks, stale epochs, and message replay. The DAG must ignore
// all of them without compromising safety or liveness.
#include <gtest/gtest.h>

#include "common/simulator.h"
#include "dag/dag_core.h"

namespace thunderbolt::dag {
namespace {

struct TestContent final : public BlockContent {
  explicit TestContent(uint64_t v) : value(v) {}
  uint64_t value;
  Hash256 ContentDigest() const override {
    Sha256 h;
    h.UpdateInt(value);
    return h.Finalize();
  }
};

class AdversarialTest : public ::testing::Test {
 protected:
  static constexpr uint32_t kN = 4;

  AdversarialTest()
      : net_(&sim_, kN, net::LatencyModel::Lan(), 7),
        keys_(crypto::KeyDirectory::Create(kN, 7)) {
    for (ReplicaId id = 0; id < kN; ++id) {
      DagConfig cfg;
      cfg.n = kN;
      cfg.id = id;
      cores_.push_back(std::make_unique<DagCore>(cfg, &keys_, &net_));
      DagCore* core = cores_.back().get();
      core->SetRoundReadyCallback([core, id](Round r) {
        core->Propose(r, std::make_shared<TestContent>(id * 100 + r));
      });
      core->SetCommitCallback([this, id](const CommittedSubDag& sub) {
        commits_[id] += sub.blocks.size();
      });
      net_.RegisterHandler(id, [core](ReplicaId from,
                                      const net::PayloadPtr& p) {
        core->OnMessage(from, p);
      });
    }
  }

  void StartAll() {
    for (auto& c : cores_) c->Start();
  }

  BlockPtr MakeForgedBlock(ReplicaId proposer, Round round, uint64_t tag) {
    auto block = std::make_shared<Block>();
    block->epoch = 0;
    block->round = round;
    block->proposer = proposer;
    block->content = std::make_shared<TestContent>(tag);
    return block;
  }

  sim::Simulator sim_;
  net::SimNetwork net_;
  crypto::KeyDirectory keys_;
  std::vector<std::unique_ptr<DagCore>> cores_;
  std::map<ReplicaId, uint64_t> commits_;
};

TEST_F(AdversarialTest, EquivocationOnlyFirstBlockAccepted) {
  StartAll();
  sim_.RunUntil(Millis(50));  // Round 1 proposals land.
  BlockPtr stored = cores_[1]->GetBlock(1, 0);
  ASSERT_TRUE(stored != nullptr);

  // Replica 0 equivocates: a second, different round-1 block.
  auto msg = std::make_shared<BlockProposalMsg>();
  msg->block = MakeForgedBlock(0, 1, 9999);
  net_.Send(0, 1, msg);
  sim_.RunUntil(Millis(100));

  // Replica 1 still holds the original block for (round 1, proposer 0).
  BlockPtr after = cores_[1]->GetBlock(1, 0);
  ASSERT_TRUE(after != nullptr);
  EXPECT_EQ(after->Digest(), stored->Digest());
}

TEST_F(AdversarialTest, RelayedProposalFromWrongSenderIgnored) {
  StartAll();
  sim_.RunUntil(Millis(50));
  // Replica 2 relays a forged block claiming to be from replica 3 for a
  // future round; the receiver must ignore proposals not sent by their
  // proposer.
  auto msg = std::make_shared<BlockProposalMsg>();
  msg->block = MakeForgedBlock(3, 5, 1234);
  net_.Send(2, 1, msg);
  sim_.RunUntil(Millis(100));
  BlockPtr stored = cores_[1]->GetBlock(5, 3);
  if (stored) {
    // If round 5 legitimately arrived by now it must not be the forgery.
    EXPECT_NE(stored->content ? dynamic_cast<const TestContent*>(
                                    stored->content.get())
                                    ->value
                              : 0,
              1234u);
  }
}

TEST_F(AdversarialTest, ForgedCertificateRejected) {
  StartAll();
  sim_.RunUntil(Millis(50));
  // A certificate with bogus signatures for a forged block.
  BlockPtr forged = MakeForgedBlock(2, 1, 777);
  Certificate cert;
  cert.epoch = 0;
  cert.round = 1;
  cert.proposer = 2;
  cert.block_digest = forged->Digest();
  cert.qc.digest = forged->Digest();
  for (ReplicaId s = 0; s < 3; ++s) {
    crypto::Signature sig = keys_.key(s).Sign(forged->Digest());
    sig.mac.bytes[0] ^= 0x5a;  // Corrupt.
    cert.qc.signatures.push_back(sig);
  }
  auto msg = std::make_shared<CertificateMsg>();
  msg->certificate = cert;
  net_.Send(2, 1, msg);
  sim_.RunUntil(Millis(100));
  // Replica 1 has a certificate for (1, 2) from the honest run, but it
  // must certify the honest block, not the forged one.
  BlockPtr honest = cores_[1]->GetBlock(1, 2);
  ASSERT_TRUE(honest != nullptr);
  EXPECT_NE(honest->Digest(), forged->Digest());
}

TEST_F(AdversarialTest, WrongEpochMessagesIgnored) {
  StartAll();
  sim_.RunUntil(Millis(50));
  auto block = std::make_shared<Block>();
  block->epoch = 5;  // Far future epoch (not epoch+1: dropped, not queued).
  block->round = 1;
  block->proposer = 2;
  block->content = std::make_shared<TestContent>(1);
  auto msg = std::make_shared<BlockProposalMsg>();
  msg->block = block;
  net_.Send(2, 1, msg);
  sim_.RunUntil(Millis(100));
  EXPECT_EQ(cores_[1]->epoch(), 0u);
  // Liveness unaffected.
  sim_.RunUntil(Seconds(1));
  EXPECT_GT(cores_[1]->last_committed_leader_round(), 0u);
}

TEST_F(AdversarialTest, DuplicateMessagesAreIdempotent) {
  StartAll();
  sim_.RunUntil(Millis(200));
  uint64_t commits_before = commits_[1];
  // Re-deliver replica 0's round-1 proposal several times.
  BlockPtr block = cores_[1]->GetBlock(1, 0);
  ASSERT_TRUE(block != nullptr);
  for (int i = 0; i < 5; ++i) {
    auto msg = std::make_shared<BlockProposalMsg>();
    msg->block = block;
    net_.Send(0, 1, msg);
  }
  sim_.RunUntil(Millis(300));
  // No double-commits: commit counts only ever grow by new sub-DAGs.
  sim_.RunUntil(Seconds(1));
  EXPECT_GE(commits_[1], commits_before);
  // And all replicas still agree.
  EXPECT_GT(cores_[1]->last_committed_leader_round(), 0u);
}

TEST_F(AdversarialTest, LivenessUnderAllAttacksCombined) {
  StartAll();
  for (int wave = 0; wave < 5; ++wave) {
    sim_.RunUntil(Millis(100 * (wave + 1)));
    auto msg = std::make_shared<BlockProposalMsg>();
    msg->block = MakeForgedBlock(3, wave + 1, 4242 + wave);
    net_.Send(2, 0, msg);  // Forgeries at the observer.
  }
  sim_.RunUntil(Seconds(2));
  for (ReplicaId id = 0; id < kN; ++id) {
    EXPECT_GT(cores_[id]->last_committed_leader_round(), 4u)
        << "replica " << id;
  }
}

}  // namespace
}  // namespace thunderbolt::dag
