// Integration tests for the Tusk DAG: certification, round advancement,
// the leader commit rule (Figure 2), cross-replica commit consistency, and
// block synchronization under censorship.
#include "dag/dag_core.h"

#include <gtest/gtest.h>

#include <map>

#include "common/simulator.h"

namespace thunderbolt::dag {
namespace {

/// Minimal payload: an integer tag.
struct TestContent final : public BlockContent {
  explicit TestContent(uint64_t v) : value(v) {}
  uint64_t value;
  Hash256 ContentDigest() const override {
    Sha256 h;
    h.UpdateInt(value);
    return h.Finalize();
  }
};

/// Harness running n DagCores over a simulated network, auto-proposing a
/// tagged block whenever a round becomes ready.
class DagHarness {
 public:
  explicit DagHarness(uint32_t n, uint64_t seed = 5)
      : n_(n),
        net_(&sim_, n, net::LatencyModel::Lan(), seed),
        keys_(crypto::KeyDirectory::Create(n, seed)) {
    for (ReplicaId id = 0; id < n; ++id) {
      DagConfig cfg;
      cfg.n = n;
      cfg.id = id;
      cores_.push_back(std::make_unique<DagCore>(cfg, &keys_, &net_));
      DagCore* core = cores_.back().get();
      core->SetRoundReadyCallback([this, id, core](Round r) {
        if (!auto_propose_[id]) return;
        core->Propose(r, std::make_shared<TestContent>(id * 1000 + r));
      });
      core->SetCommitCallback([this, id](const CommittedSubDag& sub) {
        for (const BlockPtr& b : sub.blocks) {
          commit_log_[id].emplace_back(b->round, b->proposer);
        }
        leader_commits_[id].push_back(sub.leader_round);
      });
      net_.RegisterHandler(id, [core](ReplicaId from,
                                      const net::PayloadPtr& p) {
        core->OnMessage(from, p);
      });
      auto_propose_.push_back(true);
    }
  }

  void StartAll() {
    for (auto& core : cores_) core->Start();
  }

  uint32_t n_;
  sim::Simulator sim_;
  net::SimNetwork net_;
  crypto::KeyDirectory keys_;
  std::vector<std::unique_ptr<DagCore>> cores_;
  std::vector<bool> auto_propose_;
  std::map<ReplicaId, std::vector<std::pair<Round, ReplicaId>>> commit_log_;
  std::map<ReplicaId, std::vector<Round>> leader_commits_;
};

TEST(DagCoreTest, LeaderRoundRobinOnOddRounds) {
  DagHarness h(4);
  DagCore& core = *h.cores_[0];
  EXPECT_EQ(core.LeaderOf(1), 0u);
  EXPECT_EQ(core.LeaderOf(3), 1u);
  EXPECT_EQ(core.LeaderOf(5), 2u);
  EXPECT_EQ(core.LeaderOf(7), 3u);
  EXPECT_EQ(core.LeaderOf(9), 0u);
  EXPECT_EQ(core.LeaderOf(2), DagCore::kNoLeader);
  EXPECT_EQ(core.LeaderOf(4), DagCore::kNoLeader);
}

TEST(DagCoreTest, RoundsAdvanceAndCommit) {
  DagHarness h(4);
  h.StartAll();
  h.sim_.RunUntil(Seconds(2));
  // All replicas should have advanced well past round 10.
  for (auto& core : h.cores_) {
    EXPECT_GT(core->highest_proposed_round(), 10u);
    EXPECT_GT(core->last_committed_leader_round(), 5u);
    EXPECT_GT(core->committed_block_count(), 20u);
  }
}

TEST(DagCoreTest, CommitSequencesIdenticalAcrossReplicas) {
  DagHarness h(4);
  h.StartAll();
  h.sim_.RunUntil(Seconds(2));
  // Compare the common prefix of every replica's commit log.
  size_t min_len = ~size_t{0};
  for (auto& [id, log] : h.commit_log_) min_len = std::min(min_len, log.size());
  ASSERT_GT(min_len, 10u);
  for (ReplicaId id = 1; id < 4; ++id) {
    for (size_t i = 0; i < min_len; ++i) {
      EXPECT_EQ(h.commit_log_[0][i], h.commit_log_[id][i])
          << "replica " << id << " diverged at commit " << i;
    }
  }
}

TEST(DagCoreTest, LeaderCommitsInIncreasingOrder) {
  DagHarness h(4);
  h.StartAll();
  h.sim_.RunUntil(Seconds(2));
  for (auto& [id, leaders] : h.leader_commits_) {
    for (size_t i = 1; i < leaders.size(); ++i) {
      EXPECT_LT(leaders[i - 1], leaders[i]) << "replica " << id;
    }
    // Leaders are odd rounds.
    for (Round r : leaders) EXPECT_EQ(r % 2, 1u);
  }
}

TEST(DagCoreTest, ProgressWithOneCrashedReplica) {
  DagHarness h(4);
  h.auto_propose_[3] = false;  // Replica 3 never proposes.
  h.net_.Crash(3);
  h.StartAll();
  h.sim_.RunUntil(Seconds(3));
  for (ReplicaId id = 0; id < 3; ++id) {
    EXPECT_GT(h.cores_[id]->highest_proposed_round(), 8u) << "replica " << id;
    EXPECT_GT(h.leader_commits_[id].size(), 2u) << "replica " << id;
  }
  // The crashed replica's leader rounds (7, 15, ...) are skipped, yet later
  // leaders commit.
  for (Round r : h.leader_commits_[0]) {
    EXPECT_NE(h.cores_[0]->LeaderOf(r), 3u);
  }
}

TEST(DagCoreTest, CensoredReplicaSyncsBlocksViaRequest) {
  DagHarness h(4);
  // Replica 1 censors replica 0: its proposals never reach 0 directly.
  h.net_.SetLink(1, 0, false);
  h.StartAll();
  h.sim_.RunUntil(Seconds(3));
  // Replica 0 must still commit the same sequence (fetching replica 1's
  // blocks from peers), though possibly lagging.
  size_t min_len =
      std::min(h.commit_log_[0].size(), h.commit_log_[2].size());
  ASSERT_GT(min_len, 5u);
  for (size_t i = 0; i < min_len; ++i) {
    EXPECT_EQ(h.commit_log_[0][i], h.commit_log_[2][i]);
  }
  // Replica 1's blocks do appear in replica 0's committed history.
  bool saw_replica1 = false;
  for (size_t i = 0; i < min_len; ++i) {
    if (h.commit_log_[0][i].second == 1) saw_replica1 = true;
  }
  EXPECT_TRUE(saw_replica1);
}

TEST(DagCoreTest, ProposeValidation) {
  DagHarness h(4);
  h.auto_propose_[0] = false;
  h.StartAll();
  DagCore& core = *h.cores_[0];
  // Round 2 is not ready yet.
  EXPECT_FALSE(core.Propose(2, std::make_shared<TestContent>(1)).ok());
  EXPECT_TRUE(core.Propose(1, std::make_shared<TestContent>(1)).ok());
  // Double-proposing the same round fails.
  EXPECT_FALSE(core.Propose(1, std::make_shared<TestContent>(2)).ok());
}

TEST(DagCoreTest, EpochResetStartsFreshDag) {
  DagHarness h(4);
  h.StartAll();
  h.sim_.RunUntil(Seconds(1));
  ASSERT_GT(h.cores_[0]->highest_proposed_round(), 2u);
  for (auto& core : h.cores_) core->ResetForNewEpoch(1);
  for (auto& core : h.cores_) {
    EXPECT_EQ(core->epoch(), 1u);
    // Auto-propose fires for round 1 of the new DAG immediately.
    EXPECT_LE(core->highest_proposed_round(), 1u);
    EXPECT_EQ(core->last_committed_leader_round(), 0u);
  }
  size_t commits_before = h.commit_log_[0].size();
  h.sim_.RunUntil(h.sim_.Now() + Seconds(2));
  // The new DAG makes progress.
  EXPECT_GT(h.commit_log_[0].size(), commits_before + 5);
}

TEST(BlockTest, DigestCoversAllFields) {
  auto make = [](EpochId epoch, Round round, ReplicaId proposer,
                 uint64_t tag) {
    Block b;
    b.epoch = epoch;
    b.round = round;
    b.proposer = proposer;
    b.content = std::make_shared<TestContent>(tag);
    return b;
  };
  Hash256 d1 = make(1, 2, 3, 9).Digest();
  EXPECT_EQ(make(1, 2, 3, 9).Digest(), d1);       // Deterministic.
  EXPECT_NE(make(1, 3, 3, 9).Digest(), d1);       // Round.
  EXPECT_NE(make(2, 2, 3, 9).Digest(), d1);       // Epoch.
  EXPECT_NE(make(1, 2, 0, 9).Digest(), d1);       // Proposer.
  EXPECT_NE(make(1, 2, 3, 10).Digest(), d1);      // Content.
}

TEST(BlockTest, CopyDropsDigestCache) {
  Block a;
  a.round = 2;
  a.content = std::make_shared<TestContent>(9);
  Hash256 d1 = a.Digest();  // Populates a's cache.
  Block b = a;              // Copy must not inherit the cache.
  b.round = 3;
  EXPECT_NE(b.Digest(), d1);
  Block c;
  c = a;
  c.proposer = 7;
  EXPECT_NE(c.Digest(), d1);
}

}  // namespace
}  // namespace thunderbolt::dag
