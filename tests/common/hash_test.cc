#include "common/hash.h"

#include <gtest/gtest.h>

#include <string>

namespace thunderbolt {
namespace {

// FIPS 180-4 known-answer tests.
TEST(Sha256Test, EmptyString) {
  EXPECT_EQ(Sha256::Digest("").ToHex(),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
}

TEST(Sha256Test, Abc) {
  EXPECT_EQ(Sha256::Digest("abc").ToHex(),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

TEST(Sha256Test, TwoBlockMessage) {
  EXPECT_EQ(
      Sha256::Digest(
          "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq")
          .ToHex(),
      "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha256Test, MillionAs) {
  std::string input(1000000, 'a');
  EXPECT_EQ(Sha256::Digest(input).ToHex(),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0");
}

TEST(Sha256Test, IncrementalMatchesOneShot) {
  std::string data =
      "the quick brown fox jumps over the lazy dog multiple times";
  Sha256 h;
  for (char c : data) h.Update(&c, 1);
  EXPECT_EQ(h.Finalize(), Sha256::Digest(data));
}

TEST(Sha256Test, BoundaryLengths) {
  // Exercise the padding logic around the 55/56/64-byte boundaries.
  for (size_t len : {55u, 56u, 57u, 63u, 64u, 65u, 119u, 120u, 128u}) {
    std::string data(len, 'x');
    Sha256 h;
    h.Update(data.substr(0, len / 2));
    h.Update(data.substr(len / 2));
    EXPECT_EQ(h.Finalize(), Sha256::Digest(data)) << "len=" << len;
  }
}

TEST(Hash256Test, HexRoundTrip) {
  Hash256 d = Sha256::Digest("round trip");
  EXPECT_EQ(Hash256::FromHex(d.ToHex()), d);
}

TEST(Hash256Test, ShortHexIsPrefix) {
  Hash256 d = Sha256::Digest("prefix");
  EXPECT_EQ(d.ToHex().substr(0, 8), d.ToShortHex());
}

TEST(Hash256Test, ZeroDetection) {
  Hash256 zero{};
  EXPECT_TRUE(zero.IsZero());
  EXPECT_FALSE(Sha256::Digest("x").IsZero());
}

TEST(Hash256Test, Prefix64Differs) {
  EXPECT_NE(Sha256::Digest("a").Prefix64(), Sha256::Digest("b").Prefix64());
}

TEST(Hash256Test, UpdateIntLittleEndian) {
  Sha256 a;
  a.UpdateInt<uint32_t>(0x01020304);
  uint8_t bytes[4] = {0x04, 0x03, 0x02, 0x01};
  Sha256 b;
  b.Update(bytes, 4);
  EXPECT_EQ(a.Finalize(), b.Finalize());
}

}  // namespace
}  // namespace thunderbolt
