#include "common/status.h"

#include <gtest/gtest.h>

#include <sstream>

#include "common/result.h"

namespace thunderbolt {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesMessage) {
  Status s = Status::NotFound("missing key");
  EXPECT_FALSE(s.ok());
  EXPECT_TRUE(s.IsNotFound());
  EXPECT_EQ(s.ToString(), "NotFound: missing key");
}

TEST(StatusTest, CodePredicates) {
  EXPECT_TRUE(Status::Aborted("x").IsAborted());
  EXPECT_TRUE(Status::Conflict("x").IsConflict());
  EXPECT_TRUE(Status::Corruption("x").IsCorruption());
  EXPECT_TRUE(Status::TimedOut("x").IsTimedOut());
  EXPECT_TRUE(Status::Unavailable("x").IsUnavailable());
  EXPECT_TRUE(Status::InvalidArgument("x").IsInvalidArgument());
  EXPECT_FALSE(Status::OK().IsAborted());
}

TEST(StatusTest, EqualityByCode) {
  EXPECT_EQ(Status::Aborted("a"), Status::Aborted("b"));
  EXPECT_FALSE(Status::Aborted("a") == Status::Conflict("a"));
}

TEST(StatusTest, StreamOutput) {
  std::ostringstream os;
  os << Status::Internal("boom");
  EXPECT_EQ(os.str(), "Internal: boom");
}

TEST(StatusTest, ReturnNotOkMacro) {
  auto fails = []() -> Status {
    THUNDERBOLT_RETURN_NOT_OK(Status::TimedOut("late"));
    return Status::OK();
  };
  EXPECT_TRUE(fails().IsTimedOut());

  auto passes = []() -> Status {
    THUNDERBOLT_RETURN_NOT_OK(Status::OK());
    return Status::Internal("reached");
  };
  EXPECT_EQ(passes().code(), StatusCode::kInternal);
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::NotFound("gone");
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsNotFound());
  EXPECT_EQ(r.value_or(-1), -1);
}

TEST(ResultTest, MoveOnlyValue) {
  Result<std::unique_ptr<int>> r = std::make_unique<int>(7);
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> v = std::move(r).value();
  EXPECT_EQ(*v, 7);
}

TEST(ResultTest, AssignOrReturnMacro) {
  auto inner = [](bool fail) -> Result<int> {
    if (fail) return Status::OutOfRange("nope");
    return 10;
  };
  auto outer = [&](bool fail) -> Result<int> {
    THUNDERBOLT_ASSIGN_OR_RETURN(int v, inner(fail));
    return v * 2;
  };
  EXPECT_EQ(*outer(false), 20);
  EXPECT_EQ(outer(true).status().code(), StatusCode::kOutOfRange);
}

}  // namespace
}  // namespace thunderbolt
