#include "common/simulator.h"

#include <gtest/gtest.h>

#include <vector>

namespace thunderbolt::sim {
namespace {

TEST(SimulatorTest, RunsEventsInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.ScheduleAt(30, [&] { order.push_back(3); });
  sim.ScheduleAt(10, [&] { order.push_back(1); });
  sim.ScheduleAt(20, [&] { order.push_back(2); });
  sim.RunAll();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.Now(), 30u);
}

TEST(SimulatorTest, SameTimeIsFifo) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    sim.ScheduleAt(100, [&order, i] { order.push_back(i); });
  }
  sim.RunAll();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(SimulatorTest, ScheduleAfterUsesNow) {
  Simulator sim;
  SimTime fired_at = 0;
  sim.ScheduleAt(50, [&] {
    sim.ScheduleAfter(25, [&] { fired_at = sim.Now(); });
  });
  sim.RunAll();
  EXPECT_EQ(fired_at, 75u);
}

TEST(SimulatorTest, PastEventsClampToNow) {
  Simulator sim;
  sim.ScheduleAt(100, [] {});
  sim.RunAll();
  bool ran = false;
  sim.ScheduleAt(10, [&] {
    ran = true;
    EXPECT_EQ(sim.Now(), 100u);
  });
  sim.RunAll();
  EXPECT_TRUE(ran);
}

TEST(SimulatorTest, CancelPreventsExecution) {
  Simulator sim;
  bool ran = false;
  EventId id = sim.ScheduleAt(10, [&] { ran = true; });
  EXPECT_TRUE(sim.Cancel(id));
  EXPECT_FALSE(sim.Cancel(id));  // Double-cancel reports false.
  sim.RunAll();
  EXPECT_FALSE(ran);
}

TEST(SimulatorTest, RunUntilStopsAtDeadline) {
  Simulator sim;
  std::vector<SimTime> fired;
  for (SimTime t : {10, 20, 30, 40}) {
    sim.ScheduleAt(t, [&fired, &sim] { fired.push_back(sim.Now()); });
  }
  uint64_t executed = sim.RunUntil(25);
  EXPECT_EQ(executed, 2u);
  EXPECT_EQ(sim.Now(), 25u);
  EXPECT_EQ(fired, (std::vector<SimTime>{10, 20}));
  sim.RunUntil(100);
  EXPECT_EQ(fired.size(), 4u);
}

TEST(SimulatorTest, EventsScheduledDuringRunExecute) {
  Simulator sim;
  int depth = 0;
  std::function<void()> recurse = [&] {
    if (++depth < 10) sim.ScheduleAfter(5, recurse);
  };
  sim.ScheduleAt(0, recurse);
  sim.RunAll();
  EXPECT_EQ(depth, 10);
  EXPECT_EQ(sim.Now(), 45u);
}

TEST(SimulatorTest, MaxEventsGuard) {
  Simulator sim;
  std::function<void()> forever = [&] { sim.ScheduleAfter(1, forever); };
  sim.ScheduleAt(0, forever);
  uint64_t executed = sim.RunAll(1000);
  EXPECT_EQ(executed, 1000u);
}

TEST(SimulatorTest, IdleAndPendingCounts) {
  Simulator sim;
  EXPECT_TRUE(sim.Idle());
  sim.ScheduleAt(5, [] {});
  EXPECT_FALSE(sim.Idle());
  EXPECT_EQ(sim.pending_events(), 1u);
  sim.RunAll();
  EXPECT_TRUE(sim.Idle());
  EXPECT_EQ(sim.executed_events(), 1u);
}

}  // namespace
}  // namespace thunderbolt::sim
