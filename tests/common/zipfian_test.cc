#include "common/zipfian.h"

#include <gtest/gtest.h>

#include <vector>

#include "common/histogram.h"
#include "common/rng.h"
#include "testutil/testutil.h"

namespace thunderbolt {
namespace {

using ZipfianTest = testutil::SeededTest;
using RngTest = testutil::SeededTest;

TEST_F(ZipfianTest, ValuesInRange) {
  ZipfianGenerator zipf(100, 0.85);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(zipf.Next(rng_), 100u);
  }
}

TEST_F(ZipfianTest, SkewConcentratesOnHotKeys) {
  ZipfianGenerator zipf(1000, 0.85);
  std::vector<uint64_t> counts(1000, 0);
  const int kSamples = 100000;
  for (int i = 0; i < kSamples; ++i) ++counts[zipf.Next(rng_)];
  // Rank 0 must be the hottest and carry a few percent of all draws.
  uint64_t max_count = *std::max_element(counts.begin(), counts.end());
  EXPECT_EQ(counts[0], max_count);
  EXPECT_GT(counts[0], kSamples / 50);  // > 2%.
  // The top 10% of keys should receive the majority of accesses.
  uint64_t head = 0;
  for (int i = 0; i < 100; ++i) head += counts[i];
  EXPECT_GT(head, static_cast<uint64_t>(kSamples) / 2);
}

TEST_F(ZipfianTest, ThetaZeroIsRoughlyUniform) {
  ZipfianGenerator zipf(10, 0.0);
  std::vector<uint64_t> counts(10, 0);
  const int kSamples = 100000;
  for (int i = 0; i < kSamples; ++i) ++counts[zipf.Next(rng_)];
  for (uint64_t c : counts) {
    EXPECT_NEAR(static_cast<double>(c), kSamples / 10.0, kSamples * 0.02);
  }
}

TEST_F(ZipfianTest, HigherThetaMoreSkew) {
  // Identical streams so the two generators see the same draws.
  Rng rng1 = MakeRng(4), rng2 = MakeRng(4);
  ZipfianGenerator low(1000, 0.5), high(1000, 0.95);
  uint64_t low_head = 0, high_head = 0;
  for (int i = 0; i < 50000; ++i) {
    if (low.Next(rng1) == 0) ++low_head;
    if (high.Next(rng2) == 0) ++high_head;
  }
  EXPECT_GT(high_head, low_head * 2);
}

TEST_F(RngTest, DeterministicAcrossSeeds) {
  Rng a = MakeRng(99), b = MakeRng(99), c = MakeRng(100);
  EXPECT_EQ(a.Next(), b.Next());
  EXPECT_NE(a.Next(), c.Next());
}

TEST_F(RngTest, BoundedAndRange) {
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng_.NextBounded(7), 7u);
    uint64_t v = rng_.NextRange(10, 20);
    EXPECT_GE(v, 10u);
    EXPECT_LE(v, 20u);
  }
}

TEST_F(RngTest, NextDoubleInUnitInterval) {
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    double d = rng_.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
    sum += d;
  }
  EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

TEST_F(RngTest, ExponentialMean) {
  double sum = 0;
  for (int i = 0; i < 20000; ++i) sum += rng_.NextExponential(100.0);
  EXPECT_NEAR(sum / 20000, 100.0, 5.0);
}

TEST(HistogramTest, Percentiles) {
  Histogram h;
  for (int i = 1; i <= 100; ++i) h.Add(i);
  EXPECT_EQ(h.Count(), 100u);
  EXPECT_DOUBLE_EQ(h.Mean(), 50.5);
  EXPECT_NEAR(h.Median(), 50.5, 0.6);
  EXPECT_NEAR(h.Percentile(99), 99.01, 0.1);
  EXPECT_EQ(h.Min(), 1);
  EXPECT_EQ(h.Max(), 100);
}

TEST(HistogramTest, EmptyIsZero) {
  Histogram h;
  EXPECT_EQ(h.Mean(), 0.0);
  EXPECT_EQ(h.Percentile(50), 0.0);
}

}  // namespace
}  // namespace thunderbolt
