// Cross-engine agreement: for every registered workload, all four engines
// (serial, OCC, 2PL-No-Wait, Thunderbolt CE) must drive the store to the
// *same* final state and preserve the workload's invariant.
//
// Engines are free to pick different serialization orders, so agreement
// configs keep the committed effects commutative: SmallBank seeds balances
// far above the largest transfer (no declined sends), YCSB runs the
// read+RMW mix (no blind last-writer-wins updates), and TPC-C-lite's
// programs are increment-only with stock seeded above the restock
// threshold. Under those conditions every serializable order produces one
// final state — so any fingerprint divergence is an engine bug, not an
// ordering artifact.
#include <gtest/gtest.h>

#include <cctype>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "baselines/engine_registration.h"
#include "baselines/serial_executor.h"
#include "ce/engine_registry.h"
#include "ce/sim_executor_pool.h"
#include "contract/contract.h"
#include "testutil/testutil.h"
#include "workload/workload.h"

namespace thunderbolt::workload {
namespace {

constexpr uint32_t kBatchSize = 200;
constexpr uint32_t kBatches = 3;
const char* const kConcurrentEngines[] = {"occ", "2pl", "ce"};

WorkloadOptions AgreementOptions(const std::string& workload_name,
                                 uint64_t seed) {
  WorkloadOptions options;
  options.seed = seed;
  options.num_records = 300;  // Small population -> real contention.
  options.theta = 0.85;
  if (workload_name == "ycsb") {
    // Commutative mix: reads + RMW increments, no blind updates.
    options.read_ratio = 0.5;
    options.update_ratio = 0.0;
  }
  if (workload_name == "tpcc_lite") {
    options.num_warehouses = 2;
    options.districts_per_warehouse = 3;
    options.customers_per_district = 10;
    options.num_items = 40;
  }
  return options;
}

/// Runs kBatches batches (regenerated identically per engine from the
/// seed) through `engine_name` on the named storage backend and returns
/// the final fingerprint.
uint64_t RunEngine(const std::string& workload_name,
                   const std::string& engine_name,
                   const std::string& store_name, uint64_t seed) {
  auto w = WorkloadRegistry::Global().Create(
      workload_name, AgreementOptions(workload_name, seed));
  EXPECT_NE(w, nullptr);
  std::unique_ptr<storage::KVStore> store =
      storage::StoreRegistry::Global().Create(store_name);
  EXPECT_NE(store, nullptr);
  w->InitStore(store.get());
  auto registry = contract::Registry::CreateDefault();
  ce::SimExecutorPool pool(8, ce::ExecutionCostModel{});
  for (uint32_t b = 0; b < kBatches; ++b) {
    auto batch = w->MakeBatch(kBatchSize);
    if (engine_name == "serial") {
      baselines::ExecuteSerial(*registry, batch, store.get(), Micros(1));
      continue;
    }
    std::unique_ptr<ce::BatchEngine> engine =
        baselines::RegisterBaselineEngines().Create(engine_name, store.get(),
                                                    kBatchSize);
    EXPECT_NE(engine, nullptr) << engine_name;
    if (engine == nullptr) break;
    auto r = pool.Run(*engine, *registry, batch);
    EXPECT_TRUE(r.ok()) << engine_name << ": " << r.status().ToString();
    if (!r.ok()) break;
    EXPECT_TRUE(store->Write(r->final_writes).ok());
  }
  Status invariant = w->CheckInvariant(*store);
  EXPECT_TRUE(invariant.ok())
      << workload_name << " under " << engine_name << " on " << store_name
      << ": " << invariant.ToString();
  return store->ContentFingerprint();
}

/// (workload name, store backend name).
using AgreementParam = std::pair<std::string, std::string>;

class CrossEngineAgreementTest
    : public ::testing::TestWithParam<AgreementParam> {};

TEST_P(CrossEngineAgreementTest, AllEnginesReachSameState) {
  const auto& [workload_name, store_name] = GetParam();
  ASSERT_TRUE(WorkloadRegistry::Global().Contains(workload_name));
  for (uint64_t seed : {91u, 92u}) {
    uint64_t serial_fp = RunEngine(workload_name, "serial", store_name, seed);
    for (const char* engine_name : kConcurrentEngines) {
      uint64_t fp = RunEngine(workload_name, engine_name, store_name, seed);
      EXPECT_EQ(fp, serial_fp)
          << workload_name << ": " << engine_name
          << " diverged from serial at seed " << seed << " on "
          << store_name;
    }
  }
}

// Same seed + same engine twice -> byte-identical final state (the
// determinism leg: generators and engines introduce no hidden entropy).
TEST_P(CrossEngineAgreementTest, FixedSeedReproducesExactly) {
  const auto& [workload_name, store_name] = GetParam();
  for (const char* engine_name : {"serial", "ce"}) {
    uint64_t first = RunEngine(workload_name, engine_name, store_name, 93);
    uint64_t second = RunEngine(workload_name, engine_name, store_name, 93);
    EXPECT_EQ(first, second)
        << workload_name << " under " << engine_name << " on " << store_name;
  }
}

// The store backend sits below serializability: mem and cow runs of the
// same (workload, engine, seed) must agree on the final fingerprint.
TEST_P(CrossEngineAgreementTest, StoreBackendsAgree) {
  const auto& [workload_name, store_name] = GetParam();
  if (store_name != "mem") GTEST_SKIP() << "mem leg covers the pairing";
  for (const char* engine_name : {"serial", "ce"}) {
    uint64_t mem_fp = RunEngine(workload_name, engine_name, "mem", 94);
    uint64_t cow_fp = RunEngine(workload_name, engine_name, "cow", 94);
    EXPECT_EQ(mem_fp, cow_fp)
        << workload_name << " under " << engine_name;
  }
}

/// Every *registered* workload is covered automatically on the historical
/// "mem" backend, the persistent "cow" backend, and the durable "wal"
/// stack (group-committed log over a block-cached sorted inner): a new
/// workload registration must ship an AgreementOptions config with
/// commutative committed effects (or extend it) to keep this suite
/// meaningful.
std::vector<AgreementParam> AgreementMatrix() {
  std::vector<AgreementParam> params;
  for (const std::string& workload : WorkloadRegistry::Global().Names()) {
    params.emplace_back(workload, "mem");
    params.emplace_back(workload, "cow");
    params.emplace_back(
        workload, "wal:group_commit=4,inner=cached:capacity=128,inner=sorted");
  }
  return params;
}

INSTANTIATE_TEST_SUITE_P(
    AllWorkloads, CrossEngineAgreementTest,
    ::testing::ValuesIn(AgreementMatrix()), [](const auto& info) {
      // Store specs carry ':', '=' and ',' — flatten to valid test names.
      std::string name = info.param.first + "_" + info.param.second;
      for (char& c : name) {
        if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
      }
      return name;
    });

}  // namespace
}  // namespace thunderbolt::workload
