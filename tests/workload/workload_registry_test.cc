// Workload framework tests: registry lookup/factory behavior, the
// SmallBank refactor onto the Workload interface, and TPC-C-lite
// generation + invariants.
#include "workload/workload.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "contract/tpcc_lite.h"
#include "testutil/testutil.h"
#include "workload/smallbank_workload.h"
#include "workload/tpcc_workload.h"

namespace thunderbolt::workload {
namespace {

TEST(WorkloadRegistryTest, GlobalHasBuiltins) {
  WorkloadRegistry& registry = WorkloadRegistry::Global();
  EXPECT_TRUE(registry.Contains("smallbank"));
  EXPECT_TRUE(registry.Contains("ycsb"));
  EXPECT_TRUE(registry.Contains("tpcc_lite"));
  EXPECT_FALSE(registry.Contains("nonexistent"));
  std::vector<std::string> names = registry.Names();
  EXPECT_TRUE(std::is_sorted(names.begin(), names.end()));
  EXPECT_GE(names.size(), 3u);
}

TEST(WorkloadRegistryTest, CreateUnknownReturnsNull) {
  EXPECT_EQ(WorkloadRegistry::Global().Create("nonexistent", {}), nullptr);
}

TEST(WorkloadRegistryTest, FactoriesProduceNamedWorkloads) {
  WorkloadOptions options;
  options.num_records = 100;
  for (const std::string& name : WorkloadRegistry::Global().Names()) {
    auto w = WorkloadRegistry::Global().Create(name, options);
    ASSERT_NE(w, nullptr) << name;
    EXPECT_EQ(w->name(), name);
    // Every built-in seeds a store whose fresh state satisfies its own
    // invariant and generates transactions with resolvable contracts.
    storage::MemKVStore store;
    w->InitStore(&store);
    EXPECT_GT(store.size(), 0u) << name;
    EXPECT_TRUE(w->CheckInvariant(store).ok()) << name;
    auto batch = w->MakeBatch(10);
    ASSERT_EQ(batch.size(), 10u);
    auto contracts = contract::Registry::CreateDefault();
    for (const txn::Transaction& tx : batch) {
      EXPECT_NE(contracts->Lookup(tx.contract), nullptr)
          << name << " emitted unknown contract " << tx.contract;
      EXPECT_FALSE(tx.accounts.empty());
    }
  }
}

TEST(WorkloadRegistryTest, LocalRegistrationOverridesNothingGlobal) {
  WorkloadRegistry local;
  local.Register("custom", [](const WorkloadOptions& options) {
    return std::unique_ptr<Workload>(
        new SmallBankWorkload(SmallBankConfig::FromOptions(options)));
  });
  EXPECT_TRUE(local.Contains("custom"));
  EXPECT_FALSE(WorkloadRegistry::Global().Contains("custom"));
  auto w = local.Create("custom", {});
  ASSERT_NE(w, nullptr);
  EXPECT_EQ(w->name(), "smallbank");
}

TEST(WorkloadRegistryTest, SmallBankConfigFromOptions) {
  WorkloadOptions options;
  options.num_records = 1234;
  options.theta = 0.9;
  options.read_ratio = 0.25;
  options.num_shards = 4;
  options.seed = 99;
  SmallBankConfig config = SmallBankConfig::FromOptions(options);
  EXPECT_EQ(config.num_accounts, 1234u);
  EXPECT_EQ(config.theta, 0.9);
  EXPECT_EQ(config.read_ratio, 0.25);
  EXPECT_EQ(config.num_shards, 4u);
  EXPECT_EQ(config.seed, 99u);
}

TEST(WorkloadRegistryTest, SmallBankInvariantDetectsLostMoney) {
  storage::MemKVStore store;
  SmallBankWorkload w =
      testutil::MakeSmallBank(&store, /*num_accounts=*/20, /*seed=*/80);
  ASSERT_TRUE(w.CheckInvariant(store).ok());
  store.Put(txn::CheckingKey(SmallBankWorkload::AccountName(0)), 0);
  EXPECT_FALSE(w.CheckInvariant(store).ok());
}

// --- TPC-C-lite generation -------------------------------------------------

WorkloadOptions TinyTpcc(uint64_t seed) {
  WorkloadOptions options;
  options.seed = seed;
  options.num_warehouses = 2;
  options.districts_per_warehouse = 3;
  options.customers_per_district = 5;
  options.num_items = 20;
  return options;
}

TEST(TpccLiteWorkloadTest, MixProducesBothTransactionTypes) {
  TpccLiteWorkload w(TinyTpcc(81));
  int payments = 0, neworders = 0;
  for (int i = 0; i < 2000; ++i) {
    txn::Transaction tx = w.Next();
    if (tx.contract == contract::kTpccPayment) {
      ++payments;
      ASSERT_EQ(tx.accounts.size(), 3u);
    } else {
      ASSERT_EQ(tx.contract, contract::kTpccNewOrder);
      ++neworders;
      ASSERT_EQ(tx.accounts.size(), 1u + contract::kTpccOrderItems);
      // Items are distinct.
      for (size_t a = 2; a < tx.accounts.size(); ++a) {
        EXPECT_NE(tx.accounts[a], tx.accounts[a - 1]);
      }
    }
  }
  EXPECT_NEAR(payments, 1000, 150);
  EXPECT_NEAR(neworders, 1000, 150);
}

TEST(TpccLiteWorkloadTest, PaymentAccountsAreConsistentHierarchy) {
  TpccLiteWorkload w(TinyTpcc(82));
  for (int i = 0; i < 500; ++i) {
    txn::Transaction tx = w.Next();
    if (tx.contract != contract::kTpccPayment) continue;
    // "w<w>", "w<w>.d<d>", "w<w>.d<d>.c<c>" share prefixes.
    EXPECT_EQ(tx.accounts[1].rfind(tx.accounts[0] + ".", 0), 0u);
    EXPECT_EQ(tx.accounts[2].rfind(tx.accounts[1] + ".", 0), 0u);
  }
}

TEST(TpccLiteWorkloadTest, FixedSeedIsDeterministic) {
  TpccLiteWorkload a(TinyTpcc(83));
  TpccLiteWorkload b(TinyTpcc(83));
  for (int i = 0; i < 200; ++i) {
    EXPECT_EQ(a.Next().Digest(), b.Next().Digest()) << "diverged at " << i;
  }
}

TEST(TpccLiteWorkloadTest, TinyItemPoolIsClampedToOrderSize) {
  // num_items below kTpccOrderItems would starve the distinct-item picker;
  // the workload clamps it so generation always terminates.
  WorkloadOptions options = TinyTpcc(86);
  options.num_items = 1;
  TpccLiteWorkload w(options);
  for (int i = 0; i < 50; ++i) {
    txn::Transaction tx = w.Next();
    if (tx.contract == contract::kTpccNewOrder) {
      EXPECT_EQ(tx.accounts.size(), 1u + contract::kTpccOrderItems);
    }
  }
}

TEST(TpccLiteWorkloadTest, InvariantCatchesYtdMismatch) {
  TpccLiteWorkload w(TinyTpcc(84));
  storage::MemKVStore store;
  w.InitStore(&store);
  ASSERT_TRUE(w.CheckInvariant(store).ok());
  store.Put("w0/ytd", 5);  // Money appeared from nowhere.
  EXPECT_FALSE(w.CheckInvariant(store).ok());
}

TEST(TpccLiteWorkloadTest, InvariantCatchesOrderCountMismatch) {
  TpccLiteWorkload w(TinyTpcc(85));
  storage::MemKVStore store;
  w.InitStore(&store);
  store.Put("w0.d0/next_oid", TpccLiteWorkload::kInitialOrderId + 3);
  EXPECT_FALSE(w.CheckInvariant(store).ok());
  store.Put("w0.d0/order_cnt", 3);
  EXPECT_TRUE(w.CheckInvariant(store).ok());
}


// --- Param-string parsing --------------------------------------------------

TEST(WorkloadParamsTest, AppliesKnownKeys) {
  WorkloadOptions options;
  ASSERT_TRUE(ApplyWorkloadParams(
                  "num_records=2500,theta=0.9,read_ratio=0.25,"
                  "cross_shard_ratio=0.1,seed=7,distribution=hotspot,"
                  "update_ratio=0.75,num_warehouses=3,payment_ratio=0.6",
                  &options)
                  .ok());
  EXPECT_EQ(options.num_records, 2500u);
  EXPECT_EQ(options.theta, 0.9);
  EXPECT_EQ(options.read_ratio, 0.25);
  EXPECT_EQ(options.cross_shard_ratio, 0.1);
  EXPECT_EQ(options.seed, 7u);
  EXPECT_EQ(options.distribution, "hotspot");
  EXPECT_EQ(options.update_ratio, 0.75);
  EXPECT_EQ(options.num_warehouses, 3u);
  EXPECT_EQ(options.payment_ratio, 0.6);
}

TEST(WorkloadParamsTest, NumAccountsIsAnAliasForNumRecords) {
  WorkloadOptions options;
  ASSERT_TRUE(ApplyWorkloadParams("num_accounts=123", &options).ok());
  EXPECT_EQ(options.num_records, 123u);
}

TEST(WorkloadParamsTest, EmptySpecIsANoOp) {
  WorkloadOptions options;
  WorkloadOptions defaults;
  ASSERT_TRUE(ApplyWorkloadParams("", &options).ok());
  EXPECT_EQ(options.num_records, defaults.num_records);
  EXPECT_EQ(options.theta, defaults.theta);
}

TEST(WorkloadParamsTest, RejectsUnknownKeysAndMalformedSpecs) {
  WorkloadOptions options;
  EXPECT_FALSE(ApplyWorkloadParams("bogus_key=1", &options).ok());
  EXPECT_FALSE(ApplyWorkloadParams("theta", &options).ok());
  EXPECT_FALSE(ApplyWorkloadParams("theta=", &options).ok());
  EXPECT_FALSE(ApplyWorkloadParams("=0.5", &options).ok());
  EXPECT_FALSE(ApplyWorkloadParams("theta=abc", &options).ok());
  EXPECT_FALSE(ApplyWorkloadParams("num_records=12x", &options).ok());
}

TEST(WorkloadParamsTest, RejectsSignedAndOverflowingIntegers) {
  WorkloadOptions options;
  // strtoull would silently wrap "-1" to 2^64-1; a typo must not turn
  // into an absurd population size.
  EXPECT_FALSE(ApplyWorkloadParams("num_records=-1", &options).ok());
  EXPECT_FALSE(ApplyWorkloadParams("num_records=+5", &options).ok());
  EXPECT_FALSE(
      ApplyWorkloadParams("num_records=99999999999999999999999", &options)
          .ok());
  // 32-bit fields reject values that would truncate.
  EXPECT_FALSE(ApplyWorkloadParams("num_shards=4294967296", &options).ok());
  EXPECT_FALSE(ApplyWorkloadParams("num_shards=-1", &options).ok());
  EXPECT_TRUE(ApplyWorkloadParams("num_shards=4294967295", &options).ok());
  EXPECT_EQ(options.num_shards, 4294967295u);
}

TEST(WorkloadParamsTest, RejectsUnknownDistributions) {
  WorkloadOptions options;
  // YcsbWorkload silently maps unknown names to zipfian, so the parser
  // must catch the typo instead.
  EXPECT_FALSE(ApplyWorkloadParams("distribution=unifrom", &options).ok());
  for (const char* d : {"uniform", "zipfian", "hotspot"}) {
    ASSERT_TRUE(
        ApplyWorkloadParams(std::string("distribution=") + d, &options).ok());
    EXPECT_EQ(options.distribution, d);
  }
}

// --- Remote payments (cross-shard TPC-C-lite) ------------------------------

TEST(TpccLiteWorkloadTest, RemotePaymentsSpanShards) {
  WorkloadOptions options = TinyTpcc(90);
  options.num_shards = 2;
  options.cross_shard_ratio = 1.0;
  options.payment_ratio = 1.0;
  TpccLiteWorkload w(options);
  int remote = 0;
  for (int i = 0; i < 400; ++i) {
    ShardId shard = static_cast<ShardId>(i % 2);
    txn::Transaction tx = w.NextForShard(shard);
    ASSERT_EQ(tx.contract, contract::kTpccPayment);
    EXPECT_EQ(w.HomeShard(tx), shard);
    // Customer account belongs to a district of the *other* shard.
    if (tx.accounts[2].rfind(tx.accounts[1] + ".", 0) != 0) {
      ++remote;
      std::string customer_district =
          tx.accounts[2].substr(0, tx.accounts[2].rfind('.'));
      EXPECT_NE(w.mapper().ShardOfAccount(customer_district), shard);
    }
  }
  EXPECT_GT(remote, 300);
}

TEST(TpccLiteWorkloadTest, RemotePaymentInvariantBalancesGlobally) {
  // A remote payment credits warehouse+district at home and ytd_payment at
  // the remote customer: the per-warehouse customer breakdown breaks, the
  // global one must not.
  WorkloadOptions remote_options = TinyTpcc(91);
  remote_options.num_shards = 2;
  remote_options.cross_shard_ratio = 0.5;
  TpccLiteWorkload w(remote_options);
  storage::MemKVStore store;
  w.InitStore(&store);
  store.Put("w0/ytd", 5);
  store.Put("w0.d0/ytd", 5);
  store.Put("w1.d0.c0/ytd_payment", 5);
  EXPECT_TRUE(w.CheckInvariant(store).ok());
  // Strict mode (no remote payments configured) still rejects the same
  // state: the money left warehouse 0's customers.
  TpccLiteWorkload strict(TinyTpcc(91));
  EXPECT_FALSE(strict.CheckInvariant(store).ok());
  // And the global customer check still catches outright corruption even
  // when each warehouse/district pair balances.
  store.Put("w1/ytd", 3);
  store.Put("w1.d0/ytd", 3);
  EXPECT_FALSE(w.CheckInvariant(store).ok());
}

}  // namespace
}  // namespace thunderbolt::workload
