// Property: shard-homed generation is actually shard-homed. For every
// registered workload, every transaction drawn via NextForShard(s) must
// report HomeShard == s — across shard counts {1, 2, 4, 8}, with and
// without deliberate cross-shard traffic (cross-shard transactions keep
// their anchor account in the requested shard). The cluster's proposers
// rely on this: a shard proposer only pulls from its own shard, and a
// mis-homed transaction would silently shift load between replicas.
#include <gtest/gtest.h>

#include <string>

#include "testutil/testutil.h"
#include "workload/workload.h"

namespace thunderbolt::workload {
namespace {

class NextForShardPropertyTest
    : public ::testing::TestWithParam<std::string> {};

void CheckHoming(const std::string& workload_name, double cross_ratio) {
  for (uint32_t num_shards : {1u, 2u, 4u, 8u}) {
    WorkloadOptions options = testutil::WorkloadTestOptions(
        /*num_records=*/1000, /*seed=*/0xbeef + num_shards);
    options.num_shards = num_shards;
    options.cross_shard_ratio = cross_ratio;
    // Enough districts that every shard owns at least one under the hash
    // partition (4 x 10 = 40 districts over at most 8 shards).
    options.num_warehouses = 4;
    options.customers_per_district = 5;
    options.num_items = 50;
    auto w = WorkloadRegistry::Global().Create(workload_name, options);
    ASSERT_NE(w, nullptr) << workload_name;

    constexpr uint64_t kDraws = 10000;
    for (uint64_t i = 0; i < kDraws; ++i) {
      ShardId shard = static_cast<ShardId>(i % num_shards);
      txn::Transaction tx = w->NextForShard(shard);
      ASSERT_FALSE(tx.accounts.empty())
          << workload_name << " draw " << i << " has no accounts";
      ASSERT_EQ(w->HomeShard(tx), shard)
          << workload_name << " shards=" << num_shards
          << " cross_ratio=" << cross_ratio << " draw " << i << " contract "
          << tx.contract << " anchored at account " << tx.accounts[0];
    }
  }
}

TEST_P(NextForShardPropertyTest, SingleShardMixIsHomed) {
  CheckHoming(GetParam(), /*cross_ratio=*/0.0);
}

TEST_P(NextForShardPropertyTest, CrossShardMixKeepsAnchorHomed) {
  CheckHoming(GetParam(), /*cross_ratio=*/0.3);
}

// The advertised cross-shard fraction matches reality: with multiple
// shards, roughly cross_shard_ratio of shard-homed draws span shards, and
// with a single shard none do.
TEST_P(NextForShardPropertyTest, CrossShardFractionIsHonored) {
  WorkloadOptions options =
      testutil::WorkloadTestOptions(/*num_records=*/1000, /*seed=*/0xf00d);
  options.num_shards = 4;
  options.cross_shard_ratio = 0.3;
  options.num_warehouses = 4;
  options.customers_per_district = 5;
  options.num_items = 50;
  auto w = WorkloadRegistry::Global().Create(GetParam(), options);
  ASSERT_NE(w, nullptr);
  EXPECT_DOUBLE_EQ(w->CrossShardFraction(), 0.3);

  options.num_shards = 1;
  auto single = WorkloadRegistry::Global().Create(GetParam(), options);
  EXPECT_DOUBLE_EQ(single->CrossShardFraction(), 0.0);

  // Count multi-shard transactions over a large sample. TPC-C-lite
  // transactions are incidentally cross-shard (warehouse/customer/item
  // accounts hash independently of the district anchor), so the
  // deliberate fraction is only a lower bound there; for the others the
  // count concentrates around the configured ratio.
  constexpr uint64_t kDraws = 10000;
  uint64_t cross = 0;
  for (uint64_t i = 0; i < kDraws; ++i) {
    if (!w->mapper().IsSingleShard(w->NextForShard(i % 4))) ++cross;
  }
  double observed = static_cast<double>(cross) / kDraws;
  EXPECT_GT(observed, 0.25);
  if (GetParam() != "tpcc_lite") {
    EXPECT_LT(observed, 0.35);
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllWorkloads, NextForShardPropertyTest,
    ::testing::ValuesIn(WorkloadRegistry::Global().Names()),
    [](const auto& info) { return info.param; });

}  // namespace
}  // namespace thunderbolt::workload
