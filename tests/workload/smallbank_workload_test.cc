#include "workload/smallbank_workload.h"

#include <gtest/gtest.h>

#include "contract/smallbank.h"
#include "testutil/testutil.h"

namespace thunderbolt::workload {
namespace {

TEST(SmallBankWorkloadTest, InitStoreSeedsAllAccounts) {
  storage::MemKVStore store;
  SmallBankWorkload w = testutil::MakeSmallBank(&store, 50, /*seed=*/60);
  EXPECT_EQ(store.size(), 100u);  // checking + savings per account.
  EXPECT_EQ(w.TotalBalance(store),
            50 * (w.config().initial_checking + w.config().initial_savings));
}

TEST(SmallBankWorkloadTest, ReadRatioRespected) {
  SmallBankConfig wc =
      testutil::SmallBankTestConfig(1000, /*seed=*/61, /*read_ratio=*/0.7);
  SmallBankWorkload w(wc);
  int reads = 0;
  const int kN = 10000;
  for (int i = 0; i < kN; ++i) {
    if (w.Next().contract == contract::kGetBalance) ++reads;
  }
  EXPECT_NEAR(reads, kN * 0.7, kN * 0.03);
}

TEST(SmallBankWorkloadTest, UpdateOnlyWhenPrZero) {
  SmallBankConfig wc;
  wc.read_ratio = 0.0;
  wc.seed = 62;
  SmallBankWorkload w(wc);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(w.Next().contract, contract::kSendPayment);
  }
}

TEST(SmallBankWorkloadTest, TxnIdsAreUnique) {
  SmallBankConfig wc;
  wc.seed = 63;
  SmallBankWorkload w(wc);
  std::set<TxnId> ids;
  for (int i = 0; i < 1000; ++i) {
    EXPECT_TRUE(ids.insert(w.Next().id).second);
  }
}

TEST(SmallBankWorkloadTest, ShardBatchesStayInShard) {
  SmallBankConfig wc;
  wc.num_accounts = 1000;
  wc.num_shards = 8;
  wc.cross_shard_ratio = 0.0;
  wc.seed = 64;
  SmallBankWorkload w(wc);
  for (ShardId s = 0; s < 8; ++s) {
    auto batch = w.MakeShardBatch(s, 50);
    for (const auto& tx : batch) {
      auto shards = w.mapper().ShardsOf(tx);
      ASSERT_EQ(shards.size(), 1u);
      EXPECT_EQ(shards[0], s);
    }
  }
}

TEST(SmallBankWorkloadTest, CrossShardRatioRespected) {
  SmallBankConfig wc;
  wc.num_accounts = 2000;
  wc.num_shards = 8;
  wc.cross_shard_ratio = 0.3;
  wc.seed = 65;
  SmallBankWorkload w(wc);
  int cross = 0;
  const int kN = 5000;
  for (int i = 0; i < kN; ++i) {
    auto tx = w.NextForShard(i % 8);
    if (!w.mapper().IsSingleShard(tx)) ++cross;
  }
  EXPECT_NEAR(cross, kN * 0.3, kN * 0.03);
}

TEST(SmallBankWorkloadTest, CrossShardTxsTouchHomeShard) {
  SmallBankConfig wc;
  wc.num_accounts = 2000;
  wc.num_shards = 4;
  wc.cross_shard_ratio = 1.0;
  wc.seed = 66;
  SmallBankWorkload w(wc);
  for (int i = 0; i < 200; ++i) {
    ShardId home = i % 4;
    auto tx = w.NextForShard(home);
    auto shards = w.mapper().ShardsOf(tx);
    EXPECT_EQ(shards.size(), 2u);
    EXPECT_TRUE(std::find(shards.begin(), shards.end(), home) !=
                shards.end());
  }
}

TEST(SmallBankWorkloadTest, ZipfSkewShowsInAccountFrequencies) {
  // read_ratio 1.0: GetBalance only, one account per txn.
  SmallBankConfig wc =
      testutil::SmallBankTestConfig(1000, /*seed=*/67, /*read_ratio=*/1.0);
  SmallBankWorkload w(wc);
  std::map<std::string, int> freq;
  for (int i = 0; i < 20000; ++i) ++freq[w.Next().accounts[0]];
  // acct0 (rank 0) is the hottest.
  int max_freq = 0;
  std::string hottest;
  for (auto& [account, count] : freq) {
    if (count > max_freq) {
      max_freq = count;
      hottest = account;
    }
  }
  EXPECT_EQ(hottest, "acct0");
  EXPECT_GT(max_freq, 400);  // > 2% of draws on rank 0.
}

TEST(SmallBankWorkloadTest, DeterministicPerSeed) {
  SmallBankConfig wc;
  wc.seed = 68;
  SmallBankWorkload a(wc), b(wc);
  for (int i = 0; i < 100; ++i) {
    auto ta = a.Next();
    auto tb = b.Next();
    EXPECT_EQ(ta.Digest(), tb.Digest());
  }
}

}  // namespace
}  // namespace thunderbolt::workload
