// YCSB-KV workload generator tests: mix ratios, key distributions,
// determinism under a fixed seed, cross-shard transfers, and the store
// invariant.
#include "workload/ycsb_workload.h"

#include <gtest/gtest.h>

#include <map>

#include "baselines/serial_executor.h"
#include "contract/kv.h"
#include "testutil/testutil.h"

namespace thunderbolt::workload {
namespace {

WorkloadOptions SmallOptions(uint64_t seed, const std::string& distribution) {
  WorkloadOptions options;
  options.num_records = 500;
  options.seed = seed;
  options.distribution = distribution;
  return options;
}

TEST(YcsbWorkloadTest, InitStoreSeedsEveryRecord) {
  WorkloadOptions options = SmallOptions(70, "zipfian");
  YcsbWorkload w(options);
  storage::MemKVStore store;
  w.InitStore(&store);
  EXPECT_EQ(store.size(), options.num_records);
  EXPECT_EQ(store.GetOrDefault(contract::KvValueKey("user0"), -1),
            YcsbWorkload::kInitialValue);
  EXPECT_TRUE(w.CheckInvariant(store).ok());
}

TEST(YcsbWorkloadTest, MixRespectsRatios) {
  WorkloadOptions options = SmallOptions(71, "uniform");
  options.read_ratio = 0.6;
  options.update_ratio = 0.5;  // Of the remaining 40%: half updates.
  YcsbWorkload w(options);
  std::map<std::string, int> counts;
  const int kN = 20000;
  for (int i = 0; i < kN; ++i) ++counts[w.Next().contract];
  EXPECT_NEAR(counts[contract::kKvRead], kN * 0.6, kN * 0.03);
  EXPECT_NEAR(counts[contract::kKvUpdate], kN * 0.2, kN * 0.03);
  EXPECT_NEAR(counts[contract::kKvRmw], kN * 0.2, kN * 0.03);
}

TEST(YcsbWorkloadTest, ZipfianSkewsTowardHotRecords) {
  WorkloadOptions options = SmallOptions(72, "zipfian");
  options.theta = 0.9;
  YcsbWorkload w(options);
  int hot = 0;
  const int kN = 10000;
  for (int i = 0; i < kN; ++i) {
    // Ranks 0..9 of 500 records are "user0".."user9" (5 chars).
    txn::Transaction tx = w.Next();
    if (tx.accounts[0].size() <= 5) ++hot;
  }
  // Under theta=0.9 the top-10 ranks draw far more than the uniform 2%.
  EXPECT_GT(hot, kN / 10);
}

TEST(YcsbWorkloadTest, HotspotConcentratesOnHotSet) {
  WorkloadOptions options = SmallOptions(73, "hotspot");
  options.hotspot_op_fraction = 0.9;
  options.hotspot_set_fraction = 0.02;  // 10 of 500 records.
  YcsbWorkload w(options);
  int hot = 0;
  const int kN = 10000;
  for (int i = 0; i < kN; ++i) {
    if (w.Next().accounts[0].size() <= 5) ++hot;  // "user0".."user9"
  }
  // ~90% directed at the hot set (+ ~2% of the uniform remainder).
  EXPECT_GT(hot, kN * 8 / 10);
}

TEST(YcsbWorkloadTest, UniformSpreadsAcrossRecords) {
  WorkloadOptions options = SmallOptions(74, "uniform");
  YcsbWorkload w(options);
  int hot = 0;
  const int kN = 10000;
  for (int i = 0; i < kN; ++i) {
    if (w.Next().accounts[0].size() <= 5) ++hot;
  }
  // 10/500 records = 2% expected.
  EXPECT_LT(hot, kN / 10);
}

TEST(YcsbWorkloadTest, FixedSeedIsDeterministic) {
  YcsbWorkload a(SmallOptions(75, "zipfian"));
  YcsbWorkload b(SmallOptions(75, "zipfian"));
  for (int i = 0; i < 200; ++i) {
    txn::Transaction ta = a.Next();
    txn::Transaction tb = b.Next();
    EXPECT_EQ(ta.Digest(), tb.Digest()) << "diverged at " << i;
  }
}

TEST(YcsbWorkloadTest, ShardBatchesStayHome) {
  WorkloadOptions options = SmallOptions(76, "zipfian");
  options.num_shards = 4;
  YcsbWorkload w(options);
  for (ShardId s = 0; s < 4; ++s) {
    for (const txn::Transaction& tx : w.MakeShardBatch(s, 50)) {
      EXPECT_EQ(w.mapper().ShardOfAccount(tx.accounts[0]), s);
    }
  }
}

TEST(YcsbWorkloadTest, InvariantCatchesMissingAndNegativeRecords) {
  WorkloadOptions options = SmallOptions(77, "uniform");
  options.num_records = 10;
  YcsbWorkload w(options);
  storage::MemKVStore store;
  w.InitStore(&store);
  ASSERT_TRUE(w.CheckInvariant(store).ok());
  store.Put(contract::KvValueKey("user3"), -1);
  EXPECT_FALSE(w.CheckInvariant(store).ok());
}


TEST(YcsbWorkloadTest, CrossShardRatioEmitsTransfers) {
  WorkloadOptions options = SmallOptions(75, "zipfian");
  options.num_shards = 4;
  options.cross_shard_ratio = 0.4;
  YcsbWorkload w(options);
  int transfers = 0, singles = 0;
  for (int i = 0; i < 4000; ++i) {
    txn::Transaction tx = w.NextForShard(static_cast<ShardId>(i % 4));
    if (tx.contract == contract::kKvTransfer) {
      ++transfers;
      ASSERT_EQ(tx.accounts.size(), 2u);
      // Genuinely cross-shard: source homed here, destination elsewhere.
      EXPECT_NE(w.mapper().ShardOfAccount(tx.accounts[0]),
                w.mapper().ShardOfAccount(tx.accounts[1]));
      EXPECT_EQ(w.mapper().ShardOfAccount(tx.accounts[0]),
                static_cast<ShardId>(i % 4));
    } else {
      ++singles;
    }
  }
  EXPECT_NEAR(transfers, 1600, 150);
  EXPECT_GT(singles, 0);
}

TEST(YcsbWorkloadTest, TransfersPreserveInvariantAndClampAtZero) {
  WorkloadOptions options = SmallOptions(76, "zipfian");
  options.num_records = 50;
  options.num_shards = 4;
  options.cross_shard_ratio = 1.0;
  options.read_ratio = 0;
  YcsbWorkload w(options);
  storage::MemKVStore store;
  w.InitStore(&store);
  auto registry = contract::Registry::CreateDefault();
  std::vector<txn::Transaction> txs;
  for (int i = 0; i < 2000; ++i) {
    txs.push_back(w.NextForShard(static_cast<ShardId>(i % 4)));
  }
  baselines::ExecuteSerial(*registry, txs, &store, Micros(1));
  // Transfers move value between records but never create, destroy, or
  // overdraw it.
  storage::Value total = 0;
  for (uint64_t i = 0; i < options.num_records; ++i) {
    total += store.GetOrDefault(
        contract::KvValueKey(YcsbWorkload::RecordName(i)), 0);
  }
  EXPECT_EQ(total, static_cast<storage::Value>(options.num_records) *
                       YcsbWorkload::kInitialValue);
  EXPECT_TRUE(w.CheckInvariant(store).ok());
}

TEST(YcsbWorkloadTest, SelfTransferIsANoOp) {
  // Degenerate configurations (empty shard buckets falling back to
  // record 0 on both sides) can emit a transfer from a record to itself;
  // it must not mint money.
  auto registry = contract::Registry::CreateDefault();
  storage::MemKVStore store;
  store.Put(contract::KvValueKey("user0"), 100);
  txn::Transaction tx;
  tx.id = 1;
  tx.contract = contract::kKvTransfer;
  tx.accounts = {"user0", "user0"};
  tx.params = {5};
  baselines::ExecuteSerial(*registry, {tx}, &store, Micros(1));
  EXPECT_EQ(store.GetOrDefault(contract::KvValueKey("user0"), -1), 100);
}

TEST(YcsbWorkloadTest, ZeroCrossRatioKeepsSingleRecordStream) {
  // The cross-shard dice roll is gated on a positive ratio: multi-shard
  // configurations without cross traffic draw the same stream as before
  // the feature existed (cluster determinism depends on this).
  WorkloadOptions options = SmallOptions(77, "zipfian");
  options.num_shards = 4;
  YcsbWorkload w(options);
  for (int i = 0; i < 500; ++i) {
    EXPECT_EQ(w.NextForShard(static_cast<ShardId>(i % 4)).accounts.size(),
              1u);
  }
}

}  // namespace
}  // namespace thunderbolt::workload
