// Tests for the OCC and 2PL-No-Wait baseline engines, including the
// cross-engine property that every engine produces a serializable outcome
// on the same randomized batches.
#include <gtest/gtest.h>

#include "baselines/occ_engine.h"
#include "baselines/serial_executor.h"
#include "baselines/tpl_nowait_engine.h"
#include "ce/concurrency_controller.h"
#include "ce/sim_executor_pool.h"
#include "contract/contract.h"
#include "testutil/testutil.h"
#include "workload/smallbank_workload.h"

namespace thunderbolt::baselines {
namespace {

using ce::TxnSlot;

class OccEngineTest : public ::testing::Test {
 protected:
  OccEngineTest() : engine_(&store_, 2) {
    store_.Put("k", 10);
    engine_.SetAbortCallback(
        [this](TxnSlot s, obs::AbortReason) { aborted_.push_back(s); });
  }
  storage::MemKVStore store_;
  OccEngine engine_;
  std::vector<TxnSlot> aborted_;
};

TEST_F(OccEngineTest, CleanCommit) {
  uint32_t inc = engine_.Begin(0);
  auto v = engine_.Read(0, inc, "k");
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, 10);
  ASSERT_TRUE(engine_.Write(0, inc, "k", 11).ok());
  ASSERT_TRUE(engine_.Finish(0, inc).ok());
  EXPECT_EQ(engine_.committed_count(), 1u);
  auto batch = engine_.FinalWrites();
  ASSERT_EQ(batch.size(), 1u);
  EXPECT_EQ(batch.entries()[0].value, 11);
}

TEST_F(OccEngineTest, ValidationFailureOnStaleRead) {
  uint32_t i0 = engine_.Begin(0);
  uint32_t i1 = engine_.Begin(1);
  ASSERT_TRUE(engine_.Read(0, i0, "k").ok());   // Reads version 1.
  ASSERT_TRUE(engine_.Read(1, i1, "k").ok());
  ASSERT_TRUE(engine_.Write(1, i1, "k", 20).ok());
  ASSERT_TRUE(engine_.Finish(1, i1).ok());      // Bumps k's version.
  ASSERT_TRUE(engine_.Write(0, i0, "k", 30).ok());
  EXPECT_TRUE(engine_.Finish(0, i0).IsAborted());  // Stale read.
  EXPECT_EQ(aborted_, (std::vector<TxnSlot>{0}));
  EXPECT_EQ(engine_.total_aborts(), 1u);
  // Re-execution succeeds.
  uint32_t i0b = engine_.Begin(0);
  auto v = engine_.Read(0, i0b, "k");
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, 20);
  ASSERT_TRUE(engine_.Write(0, i0b, "k", 30).ok());
  ASSERT_TRUE(engine_.Finish(0, i0b).ok());
  EXPECT_TRUE(engine_.AllCommitted());
}

TEST_F(OccEngineTest, ReadOnlyNeverAborts) {
  uint32_t i0 = engine_.Begin(0);
  uint32_t i1 = engine_.Begin(1);
  ASSERT_TRUE(engine_.Read(0, i0, "k").ok());
  ASSERT_TRUE(engine_.Write(1, i1, "other", 1).ok());
  ASSERT_TRUE(engine_.Finish(1, i1).ok());
  EXPECT_TRUE(engine_.Finish(0, i0).ok());  // Disjoint keys: no conflict.
}

class TplEngineTest : public ::testing::Test {
 protected:
  TplEngineTest() : engine_(&store_, 3) {
    store_.Put("k", 10);
    engine_.SetAbortCallback(
        [this](TxnSlot s, obs::AbortReason) { aborted_.push_back(s); });
  }
  storage::MemKVStore store_;
  TplNoWaitEngine engine_;
  std::vector<TxnSlot> aborted_;
};

TEST_F(TplEngineTest, SharedReadersCoexist) {
  uint32_t i0 = engine_.Begin(0);
  uint32_t i1 = engine_.Begin(1);
  EXPECT_TRUE(engine_.Read(0, i0, "k").ok());
  EXPECT_TRUE(engine_.Read(1, i1, "k").ok());
  EXPECT_TRUE(aborted_.empty());
  EXPECT_EQ(engine_.LockedKeyCount(), 1u);
}

TEST_F(TplEngineTest, WriterBlocksReaderNoWait) {
  uint32_t i0 = engine_.Begin(0);
  uint32_t i1 = engine_.Begin(1);
  ASSERT_TRUE(engine_.Write(0, i0, "k", 1).ok());
  EXPECT_TRUE(engine_.Read(1, i1, "k").status().IsAborted());
  EXPECT_EQ(aborted_, (std::vector<TxnSlot>{1}));
}

TEST_F(TplEngineTest, UpgradeConflictAborts) {
  uint32_t i0 = engine_.Begin(0);
  uint32_t i1 = engine_.Begin(1);
  ASSERT_TRUE(engine_.Read(0, i0, "k").ok());
  ASSERT_TRUE(engine_.Read(1, i1, "k").ok());
  // Upgrading with another shared holder fails (no-wait).
  EXPECT_TRUE(engine_.Write(0, i0, "k", 5).IsAborted());
}

TEST_F(TplEngineTest, SelfUpgradeAllowed) {
  uint32_t i0 = engine_.Begin(0);
  ASSERT_TRUE(engine_.Read(0, i0, "k").ok());
  EXPECT_TRUE(engine_.Write(0, i0, "k", 5).ok());  // Sole reader upgrades.
  ASSERT_TRUE(engine_.Finish(0, i0).ok());
  EXPECT_EQ(engine_.LockedKeyCount(), 0u);  // Locks released on commit.
}

TEST_F(TplEngineTest, AbortReleasesLocks) {
  uint32_t i0 = engine_.Begin(0);
  uint32_t i1 = engine_.Begin(1);
  ASSERT_TRUE(engine_.Write(0, i0, "k", 1).ok());
  ASSERT_TRUE(engine_.Read(1, i1, "k").status().IsAborted());
  // Victim's locks are gone; a third transaction can write freely after
  // transaction 0 finishes.
  ASSERT_TRUE(engine_.Finish(0, i0).ok());
  uint32_t i2 = engine_.Begin(2);
  EXPECT_TRUE(engine_.Write(2, i2, "k", 7).ok());
}

// --- Cross-engine serializability property --------------------------------

struct EngineParam {
  enum Kind { kCc, kOcc, kTpl } kind;
  uint64_t seed;
  double theta;
  double read_ratio;
};

class EngineEquivalenceTest : public ::testing::TestWithParam<EngineParam> {};

TEST_P(EngineEquivalenceTest, OutcomeIsSerializable) {
  const EngineParam p = GetParam();
  storage::MemKVStore store;
  workload::SmallBankWorkload w = testutil::MakeSmallBank(
      &store, /*num_accounts=*/200, p.seed, p.read_ratio, p.theta);
  storage::MemKVStore serial_store = store.Clone();
  auto batch = w.MakeBatch(300);
  auto registry = contract::Registry::CreateDefault();

  std::unique_ptr<ce::BatchEngine> engine;
  switch (p.kind) {
    case EngineParam::kCc:
      engine = std::make_unique<ce::ConcurrencyController>(&store, 300);
      break;
    case EngineParam::kOcc:
      engine = std::make_unique<OccEngine>(&store, 300);
      break;
    case EngineParam::kTpl:
      engine = std::make_unique<TplNoWaitEngine>(&store, 300);
      break;
  }
  ce::SimExecutorPool pool(8, ce::ExecutionCostModel{});
  auto result = pool.Run(*engine, *registry, batch);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_TRUE(store.Write(result->final_writes).ok());

  // Serial replay in the engine's serialization order must reproduce the
  // same emitted results and final state.
  std::vector<txn::Transaction> ordered;
  for (TxnSlot slot : result->order) ordered.push_back(batch[slot]);
  SerialExecutionResult serial =
      ExecuteSerial(*registry, ordered, &serial_store, Micros(1));
  for (size_t i = 0; i < result->order.size(); ++i) {
    TxnSlot slot = result->order[i];
    ASSERT_EQ(result->records[slot].emitted, serial.records[i].emitted)
        << "engine " << static_cast<int>(p.kind) << " txn position " << i;
  }
  EXPECT_EQ(store.ContentFingerprint(), serial_store.ContentFingerprint());
}

INSTANTIATE_TEST_SUITE_P(
    AllEngines, EngineEquivalenceTest,
    ::testing::Values(
        EngineParam{EngineParam::kCc, 21, 0.85, 0.5},
        EngineParam{EngineParam::kOcc, 22, 0.85, 0.5},
        EngineParam{EngineParam::kTpl, 23, 0.85, 0.5},
        EngineParam{EngineParam::kCc, 24, 0.95, 0.0},
        EngineParam{EngineParam::kOcc, 25, 0.95, 0.0},
        EngineParam{EngineParam::kTpl, 26, 0.95, 0.0},
        EngineParam{EngineParam::kOcc, 27, 0.5, 0.9},
        EngineParam{EngineParam::kTpl, 28, 0.5, 0.9}));

// CE should abort less than OCC, which should abort less than 2PL-No-Wait
// on high-contention update-heavy workloads (the paper's Figure 11 claim).
TEST(AbortRateOrderingTest, CcLowestAborts) {
  storage::MemKVStore base;
  auto batch = testutil::MakeSmallBankBatch(
      &base, 500,
      testutil::SmallBankTestConfig(/*num_accounts=*/1000, /*seed=*/31,
                                    /*read_ratio=*/0.0));
  auto registry = contract::Registry::CreateDefault();

  uint64_t aborts[3];
  for (int kind = 0; kind < 3; ++kind) {
    storage::MemKVStore store = base.Clone();
    std::unique_ptr<ce::BatchEngine> engine;
    if (kind == 0) {
      engine = std::make_unique<ce::ConcurrencyController>(&store, 500);
    } else if (kind == 1) {
      engine = std::make_unique<OccEngine>(&store, 500);
    } else {
      engine = std::make_unique<TplNoWaitEngine>(&store, 500);
    }
    ce::SimExecutorPool pool(16, ce::ExecutionCostModel{});
    auto r = pool.Run(*engine, *registry, batch);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    aborts[kind] = r->total_aborts;
  }
  EXPECT_LE(aborts[0], aborts[1]);  // CC <= OCC.
  EXPECT_LT(aborts[1], aborts[2]);  // OCC < 2PL-No-Wait.
}

}  // namespace
}  // namespace thunderbolt::baselines
