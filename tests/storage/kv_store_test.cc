#include "storage/kv_store.h"

#include <gtest/gtest.h>

namespace thunderbolt::storage {
namespace {

TEST(MemKVStoreTest, GetMissingIsNotFound) {
  MemKVStore store;
  EXPECT_TRUE(store.Get("nope").status().IsNotFound());
  EXPECT_EQ(store.GetOrDefault("nope", 7), 7);
}

TEST(MemKVStoreTest, PutBumpsVersion) {
  MemKVStore store;
  ASSERT_TRUE(store.Put("k", 1).ok());
  auto v1 = store.Get("k");
  ASSERT_TRUE(v1.ok());
  EXPECT_EQ(v1->value, 1);
  EXPECT_EQ(v1->version, 1u);
  ASSERT_TRUE(store.Put("k", 2).ok());
  auto v2 = store.Get("k");
  EXPECT_EQ(v2->value, 2);
  EXPECT_EQ(v2->version, 2u);
}

TEST(MemKVStoreTest, WriteBatchAtomicallyApplies) {
  MemKVStore store;
  WriteBatch batch;
  batch.Put("a", 1);
  batch.Put("b", 2);
  batch.Put("a", 3);  // Later entry wins.
  ASSERT_TRUE(store.Write(batch).ok());
  EXPECT_EQ(store.GetOrDefault("a", 0), 3);
  EXPECT_EQ(store.GetOrDefault("b", 0), 2);
  EXPECT_EQ(store.size(), 2u);
  // "a" was written twice within the batch: version 2.
  EXPECT_EQ(store.Get("a")->version, 2u);
}

TEST(MemKVStoreTest, CloneIsIndependent) {
  MemKVStore store;
  store.Put("x", 10);
  MemKVStore copy = store.Clone();
  copy.Put("x", 20);
  EXPECT_EQ(store.GetOrDefault("x", 0), 10);
  EXPECT_EQ(copy.GetOrDefault("x", 0), 20);
}

TEST(MemKVStoreTest, FingerprintDetectsDivergence) {
  MemKVStore a, b;
  a.Put("k1", 1);
  a.Put("k2", 2);
  b.Put("k2", 2);
  b.Put("k1", 1);
  // Insertion order must not matter.
  EXPECT_EQ(a.ContentFingerprint(), b.ContentFingerprint());
  b.Put("k1", 9);
  EXPECT_NE(a.ContentFingerprint(), b.ContentFingerprint());
}

TEST(MemKVStoreTest, CloneCarriesVersionsAndFingerprint) {
  MemKVStore store;
  store.Put("x", 1);
  store.Put("x", 2);  // version 2
  store.Put("y", 7);
  MemKVStore copy = store.Clone();
  EXPECT_EQ(copy.size(), store.size());
  EXPECT_EQ(copy.ContentFingerprint(), store.ContentFingerprint());
  auto vv = copy.Get("x");
  ASSERT_TRUE(vv.ok());
  EXPECT_EQ(vv->value, 2);
  EXPECT_EQ(vv->version, 2u);
}

TEST(MemKVStoreTest, ReserveDoesNotChangeContent) {
  MemKVStore store;
  store.Put("a", 1);
  uint64_t before = store.ContentFingerprint();
  store.Reserve(10000);
  EXPECT_EQ(store.ContentFingerprint(), before);
  EXPECT_EQ(store.size(), 1u);
}

TEST(MemKVStoreTest, BatchWithDuplicateKeysBumpsVersionPerEntry) {
  MemKVStore store;
  WriteBatch batch;
  batch.Put("k", 1);
  batch.Put("k", 2);  // Last write wins; both bump the version.
  ASSERT_TRUE(store.Write(batch).ok());
  auto vv = store.Get("k");
  ASSERT_TRUE(vv.ok());
  EXPECT_EQ(vv->value, 2);
  EXPECT_EQ(vv->version, 2u);
}

TEST(MemKVStoreTest, BatchMixesFreshAndLiveKeys) {
  MemKVStore store;
  store.Put("live", 1);
  WriteBatch batch;
  batch.Put("live", 2);
  batch.Put("fresh", 3);
  ASSERT_TRUE(store.Write(batch).ok());
  EXPECT_EQ(store.size(), 2u);
  EXPECT_EQ(store.GetOrDefault("live", 0), 2);
  EXPECT_EQ(store.Get("live")->version, 2u);
  EXPECT_EQ(store.Get("fresh")->version, 1u);
}

TEST(MemKVStoreTest, EmptyBatchIsNoop) {
  MemKVStore store;
  WriteBatch batch;
  EXPECT_TRUE(batch.empty());
  ASSERT_TRUE(store.Write(batch).ok());
  EXPECT_EQ(store.size(), 0u);
}

TEST(WriteBatchTest, ClearResets) {
  WriteBatch batch;
  batch.Put("a", 1);
  EXPECT_EQ(batch.size(), 1u);
  batch.Clear();
  EXPECT_TRUE(batch.empty());
}


TEST(MemKVStoreTest, DeleteRemovesKeyAndVersionState) {
  MemKVStore store;
  ASSERT_TRUE(store.Put("k", 1).ok());
  ASSERT_TRUE(store.Put("k", 2).ok());
  ASSERT_TRUE(store.Delete("k").ok());
  EXPECT_TRUE(store.Get("k").status().IsNotFound());
  EXPECT_EQ(store.size(), 0u);
  // Deleting an absent key is a no-op; re-creation restarts at version 1.
  ASSERT_TRUE(store.Delete("k").ok());
  ASSERT_TRUE(store.Put("k", 3).ok());
  EXPECT_EQ(store.Get("k")->version, 1u);
}

TEST(MemKVStoreTest, BatchDeleteAppliesInOrder) {
  MemKVStore store;
  store.Put("a", 1);
  WriteBatch batch;
  batch.Delete("a");
  batch.Put("a", 2);   // Later entry wins: key re-created at version 1.
  batch.Put("b", 3);
  batch.Delete("c");   // Absent key: no-op.
  ASSERT_TRUE(store.Write(batch).ok());
  EXPECT_EQ(store.Get("a")->value, 2);
  EXPECT_EQ(store.Get("a")->version, 1u);
  EXPECT_EQ(store.Get("b")->value, 3);
  EXPECT_EQ(store.size(), 2u);
}

TEST(MemKVStoreTest, ScanSortsOnDemand) {
  MemKVStore store;
  store.Put("b", 2);
  store.Put("a", 1);
  store.Put("c", 3);
  std::vector<ScanEntry> all = store.Scan("", "");
  ASSERT_EQ(all.size(), 3u);
  EXPECT_EQ(all[0].key, "a");
  EXPECT_EQ(all[1].key, "b");
  EXPECT_EQ(all[2].key, "c");
  std::vector<ScanEntry> window = store.Scan("a", "c");
  ASSERT_EQ(window.size(), 2u);
  EXPECT_EQ(window[0].key, "a");
  EXPECT_EQ(window[1].key, "b");
  EXPECT_EQ(store.Scan("", "", 1).size(), 1u);
}

TEST(MemKVStoreTest, SnapshotIgnoresLaterWrites) {
  MemKVStore store;
  store.Put("k", 1);
  std::shared_ptr<const StoreSnapshot> snap = store.Snapshot();
  store.Put("k", 2);
  store.Put("fresh", 9);
  EXPECT_EQ(snap->GetOrDefault("k", -1), 1);
  EXPECT_FALSE(snap->Get("fresh").ok());
  EXPECT_EQ(snap->size(), 1u);
  EXPECT_EQ(store.GetOrDefault("k", -1), 2);
}

TEST(MemKVStoreTest, ForkMatchesCloneSemantics) {
  MemKVStore store;
  store.Put("k", 1);
  std::unique_ptr<KVStore> fork = store.Fork();
  MemKVStore clone = store.Clone();
  EXPECT_EQ(fork->ContentFingerprint(), clone.ContentFingerprint());
  fork->Put("k", 2);
  EXPECT_EQ(store.GetOrDefault("k", -1), 1);
}

TEST(StoreRegistryTest, GlobalKnowsAllBuiltins) {
  StoreRegistry& registry = StoreRegistry::Global();
  EXPECT_EQ(registry.Names(), (std::vector<std::string>{
                                  "cached", "cow", "mem", "sorted", "wal"}));
  for (const std::string& name : registry.Names()) {
    std::unique_ptr<KVStore> store = registry.Create(name);
    ASSERT_NE(store, nullptr);
    EXPECT_EQ(store->name(), name);
    EXPECT_EQ(store->size(), 0u);
  }
  EXPECT_EQ(registry.Create("leveldb"), nullptr);
  EXPECT_FALSE(registry.Contains("leveldb"));
}

TEST(StoreRegistryTest, SpecSyntaxResolvesBaseNameAndParams) {
  StoreRegistry& registry = StoreRegistry::Global();
  // Contains validates the base name only; params are the factory's job.
  EXPECT_TRUE(registry.Contains("cached:capacity=16,inner=sorted"));
  EXPECT_TRUE(registry.Contains("wal:group_commit=4,inner=mem"));
  EXPECT_FALSE(registry.Contains("rocksdb:path=/tmp/x"));

  std::unique_ptr<KVStore> store =
      registry.Create("cached:capacity=16,inner=sorted");
  ASSERT_NE(store, nullptr);
  EXPECT_EQ(store->name(), "cached");

  // Unknown params are a configuration error, not silently ignored.
  EXPECT_EQ(registry.Create("cached:capactiy=16"), nullptr);
  EXPECT_EQ(registry.Create("wal:fsycn=1"), nullptr);
}

TEST(StoreRegistryTest, ParseStoreParamsSplitsPairsAndNestsInner) {
  auto params = ParseStoreParams("capacity=16,inner=wal:group_commit=2");
  ASSERT_EQ(params.size(), 2u);
  EXPECT_EQ(params[0].first, "capacity");
  EXPECT_EQ(params[0].second, "16");
  // `inner` swallows the rest of the string: nested specs carry their own
  // commas and must reach the inner factory intact.
  EXPECT_EQ(params[1].first, "inner");
  EXPECT_EQ(params[1].second, "wal:group_commit=2");

  EXPECT_TRUE(ParseStoreParams("").empty());
  // A bare key (no '=') surfaces with an empty value so factories can
  // reject it by name instead of silently dropping it.
  auto bare = ParseStoreParams("fsync");
  ASSERT_EQ(bare.size(), 1u);
  EXPECT_EQ(bare[0].first, "fsync");
  EXPECT_EQ(bare[0].second, "");
}

TEST(CachedKVStoreTest, CountsHitsAndMissesAndEvicts) {
  std::unique_ptr<KVStore> store =
      StoreRegistry::Global().Create("cached:capacity=2,inner=mem");
  ASSERT_NE(store, nullptr);
  ASSERT_TRUE(store->Put("a", 1).ok());
  ASSERT_TRUE(store->Put("b", 2).ok());
  ASSERT_TRUE(store->Put("c", 3).ok());

  // Cold cache: first reads miss, repeats hit.
  EXPECT_EQ(store->GetOrDefault("a", 0), 1);
  EXPECT_EQ(store->GetOrDefault("a", 0), 1);
  EXPECT_EQ(store->GetOrDefault("b", 0), 2);
  StoreStats stats = store->Stats();
  EXPECT_EQ(stats.backend, "cached");
  EXPECT_EQ(stats.gets, 3u);
  EXPECT_EQ(stats.cache_hits, 1u);
  EXPECT_EQ(stats.cache_misses, 2u);

  // Capacity 2: touching "c" evicts the least-recently-used "a".
  EXPECT_EQ(store->GetOrDefault("c", 0), 3);
  EXPECT_EQ(store->GetOrDefault("a", 0), 1);  // Miss again: was evicted.
  stats = store->Stats();
  EXPECT_EQ(stats.cache_misses, 4u);

  // Writes invalidate: the next read refetches from the inner store.
  ASSERT_TRUE(store->Put("a", 10).ok());
  EXPECT_EQ(store->GetOrDefault("a", 0), 10);
  stats = store->Stats();
  EXPECT_EQ(stats.cache_misses, 5u);
  EXPECT_EQ(stats.live_keys, 3u);
}

TEST(CachedKVStoreTest, NegativeLookupsAreNotCached) {
  std::unique_ptr<KVStore> store =
      StoreRegistry::Global().Create("cached:capacity=4,inner=sorted");
  ASSERT_NE(store, nullptr);
  EXPECT_TRUE(store->Get("ghost").status().IsNotFound());
  EXPECT_TRUE(store->Get("ghost").status().IsNotFound());
  const StoreStats stats = store->Stats();
  // Both lookups miss: absence is never cached, so a later Put is visible
  // immediately without an invalidation path for phantom keys.
  EXPECT_EQ(stats.cache_misses, 2u);
  EXPECT_EQ(stats.cache_hits, 0u);
  ASSERT_TRUE(store->Put("ghost", 1).ok());
  EXPECT_EQ(store->GetOrDefault("ghost", 0), 1);
}

TEST(KVStoreTest, FlushIsANoopByDefault) {
  MemKVStore store;
  EXPECT_TRUE(store.Flush().ok());
  std::unique_ptr<KVStore> cached =
      StoreRegistry::Global().Create("cached:capacity=4,inner=cow");
  ASSERT_NE(cached, nullptr);
  EXPECT_TRUE(cached->Flush().ok());
}

TEST(KVStoreTest, RestoreEntryInstallsExactVersionOnEveryBuiltin) {
  for (const char* name : {"mem", "sorted", "cow", "cached:capacity=4"}) {
    std::unique_ptr<KVStore> store = StoreRegistry::Global().Create(name);
    ASSERT_NE(store, nullptr) << name;
    ASSERT_TRUE(store->RestoreEntry("k", VersionedValue{42, 17}).ok()) << name;
    auto got = store->Get("k");
    ASSERT_TRUE(got.ok()) << name;
    EXPECT_EQ(got->value, 42) << name;
    EXPECT_EQ(got->version, 17u) << name;
    // The next Put resumes the normal bump from the restored version.
    ASSERT_TRUE(store->Put("k", 43).ok()) << name;
    EXPECT_EQ(store->Get("k")->version, 18u) << name;
  }
}

TEST(StoreRegistryTest, ExpectedKeysHintIsHonored) {
  // The hint must not change observable content (Reserve is semantics-free).
  StoreOptions options;
  options.expected_keys = 1024;
  std::unique_ptr<KVStore> store = StoreRegistry::Global().Create("mem",
                                                                  options);
  ASSERT_NE(store, nullptr);
  EXPECT_EQ(store->size(), 0u);
  store->Put("k", 1);
  EXPECT_EQ(store->GetOrDefault("k", 0), 1);
}

}  // namespace
}  // namespace thunderbolt::storage
