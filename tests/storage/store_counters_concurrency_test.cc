// Pins the StoreCounters::ToStats() tearing contract (kv_store.h): a
// snapshot taken while writers run sees each counter individually torn-free
// and monotone, but NOT a consistent cross-counter cut. Cross-counter
// identities (cache_hits + cache_misses == gets) only hold at quiescence.
//
// Runs under TSan (label: thread) — relaxed atomics on every counter mean
// the races here are benign by construction, and this test is the proof.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "storage/cached_kv_store.h"
#include "storage/kv_store.h"

namespace thunderbolt::storage {
namespace {

constexpr int kReaders = 4;
constexpr int kOpsPerReader = 5000;

std::unique_ptr<KVStore> MakeCachedStore() {
  std::unique_ptr<KVStore> store =
      StoreRegistry::Global().Create("cached:capacity=8,inner=mem");
  for (int i = 0; i < 32; ++i) {
    store->Put("key" + std::to_string(i), i);
  }
  return store;
}

TEST(StoreCountersConcurrencyTest, SnapshotsAreMonotonePerCounter) {
  std::unique_ptr<KVStore> store = MakeCachedStore();
  const StoreStats base = store->Stats();

  std::vector<std::thread> readers;
  readers.reserve(kReaders);
  for (int t = 0; t < kReaders; ++t) {
    readers.emplace_back([&store, t] {
      // Const-path traffic only: Get/GetOrDefault are the operations the
      // contract allows concurrently with Stats().
      const KVStore& view = *store;
      for (int i = 0; i < kOpsPerReader; ++i) {
        const std::string key = "key" + std::to_string((t * 7 + i) % 48);
        if (i % 2 == 0) {
          (void)view.Get(key);
        } else {
          (void)view.GetOrDefault(key, 0);
        }
      }
    });
  }

  // The poller is the test: every mid-run snapshot must be per-counter
  // monotone relative to the previous one. No cross-counter assertion is
  // made here — that identity is deliberately NOT guaranteed mid-run.
  StoreStats prev = base;
  uint64_t polls = 0;
  while (true) {
    const StoreStats s = store->Stats();
    EXPECT_GE(s.gets, prev.gets);
    EXPECT_GE(s.cache_hits, prev.cache_hits);
    EXPECT_GE(s.cache_misses, prev.cache_misses);
    // A torn 64-bit load would show up as a wild value far above the
    // total traffic ever issued; bound every counter by it.
    const uint64_t max_gets =
        base.gets + uint64_t{kReaders} * kOpsPerReader;
    EXPECT_LE(s.gets, max_gets);
    EXPECT_LE(s.cache_hits + s.cache_misses, max_gets);
    prev = s;
    ++polls;
    if (polls % 64 == 0) std::this_thread::yield();
    // Stop polling once all reader work is observably complete.
    if (s.gets == max_gets) break;
  }

  for (auto& r : readers) r.join();

  // Quiescence: now, and only now, the cross-counter identities hold.
  const StoreStats final_stats = store->Stats();
  EXPECT_EQ(final_stats.gets,
            base.gets + uint64_t{kReaders} * kOpsPerReader);
  EXPECT_EQ(final_stats.cache_hits + final_stats.cache_misses,
            final_stats.gets);
  EXPECT_GT(final_stats.cache_hits, 0u);
  EXPECT_GT(final_stats.cache_misses, 0u);
}

TEST(StoreCountersConcurrencyTest, ConcurrentReadersAgreeWithSerialBaseline) {
  // The same traffic applied serially and concurrently must land on the
  // same totals: relaxed counter increments lose nothing, they only
  // reorder. (Per-thread key streams are disjoint from cache-eviction
  // interference only in total counts, which is what's asserted.)
  std::unique_ptr<KVStore> concurrent = MakeCachedStore();
  const StoreStats base = concurrent->Stats();
  std::vector<std::thread> readers;
  for (int t = 0; t < kReaders; ++t) {
    readers.emplace_back([&concurrent, t] {
      for (int i = 0; i < kOpsPerReader; ++i) {
        (void)concurrent->GetOrDefault(
            "key" + std::to_string((t * 7 + i) % 48), 0);
      }
    });
  }
  for (auto& r : readers) r.join();
  const StoreStats stats = concurrent->Stats();
  EXPECT_EQ(stats.gets, base.gets + uint64_t{kReaders} * kOpsPerReader);
  EXPECT_EQ(stats.cache_hits + stats.cache_misses, stats.gets);
}

}  // namespace
}  // namespace thunderbolt::storage
