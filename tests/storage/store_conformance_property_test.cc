// Store-conformance battery: every backend registered in
// storage::StoreRegistry must implement the same observable contract —
// get/put/delete round-trips against a reference model, snapshot isolation
// from later batches, ordered scans, per-key version monotonicity, fork
// independence, and content-fingerprint agreement across backends. A new
// backend gets the whole battery for free by registering.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "storage/kv_store.h"
#include "testutil/testutil.h"

namespace thunderbolt::storage {
namespace {

std::string KeyName(uint64_t i) { return "key" + std::to_string(i % 200); }

/// Applies a deterministic op mix to `store` and a std::map reference
/// model in lockstep; returns the model.
std::map<Key, VersionedValue> DriveRandomOps(KVStore* store, Rng* rng,
                                             int ops) {
  std::map<Key, VersionedValue> model;
  auto model_put = [&model](const Key& key, Value value) {
    VersionedValue& vv = model[key];
    vv.value = value;
    ++vv.version;
  };
  for (int i = 0; i < ops; ++i) {
    const uint64_t pick = rng->NextBounded(100);
    if (pick < 50) {
      Key key = KeyName(rng->NextBounded(1000));
      Value value = static_cast<Value>(rng->NextBounded(1000000));
      EXPECT_TRUE(store->Put(key, value).ok()) << store->name();
      model_put(key, value);
    } else if (pick < 65) {
      Key key = KeyName(rng->NextBounded(1000));
      EXPECT_TRUE(store->Delete(key).ok()) << store->name();
      model.erase(key);
    } else {
      // Batch with a put/delete mix, including duplicate keys.
      WriteBatch batch;
      const uint64_t entries = 1 + rng->NextBounded(8);
      for (uint64_t e = 0; e < entries; ++e) {
        Key key = KeyName(rng->NextBounded(1000));
        if (rng->NextBounded(4) == 0) {
          batch.Delete(key);
          model.erase(key);
        } else {
          Value value = static_cast<Value>(rng->NextBounded(1000000));
          batch.Put(key, value);
          model_put(key, value);
        }
      }
      EXPECT_TRUE(store->Write(batch).ok()) << store->name();
    }
  }
  return model;
}

void ExpectMatchesModel(const ReadView& view,
                        const std::map<Key, VersionedValue>& model,
                        const std::string& context) {
  EXPECT_EQ(view.size(), model.size()) << context;
  for (const auto& [key, vv] : model) {
    auto got = view.Get(key);
    ASSERT_TRUE(got.ok()) << context << ": lost " << key;
    EXPECT_EQ(got->value, vv.value) << context << ": " << key;
    EXPECT_EQ(got->version, vv.version) << context << ": " << key;
    EXPECT_EQ(view.GetOrDefault(key, -1), vv.value) << context << ": " << key;
  }
  EXPECT_FALSE(view.Get("never-written").ok()) << context;
  EXPECT_EQ(view.GetOrDefault("never-written", 42), 42) << context;
}

class StoreConformanceTest : public ::testing::TestWithParam<std::string> {
 protected:
  std::unique_ptr<KVStore> MakeStore() const {
    std::unique_ptr<KVStore> store =
        StoreRegistry::Global().Create(GetParam());
    EXPECT_NE(store, nullptr);
    EXPECT_EQ(store->name(), GetParam());
    return store;
  }
};

TEST_P(StoreConformanceTest, RandomOpsMatchReferenceModel) {
  auto store = MakeStore();
  Rng rng(testutil::kDefaultSeed);
  std::map<Key, VersionedValue> model = DriveRandomOps(store.get(), &rng,
                                                       /*ops=*/3000);
  ExpectMatchesModel(*store, model, GetParam());
}

TEST_P(StoreConformanceTest, VersionsStartAtOneAndGrowMonotonically) {
  auto store = MakeStore();
  ASSERT_TRUE(store->Put("a", 1).ok());
  EXPECT_EQ(store->Get("a")->version, 1u);
  ASSERT_TRUE(store->Put("a", 2).ok());
  EXPECT_EQ(store->Get("a")->version, 2u);

  // Batch entries bump once per entry, duplicates included.
  WriteBatch batch;
  batch.Put("a", 3);
  batch.Put("a", 4);
  ASSERT_TRUE(store->Write(batch).ok());
  EXPECT_EQ(store->Get("a")->value, 4);
  EXPECT_EQ(store->Get("a")->version, 4u);

  // Delete erases version state; re-creation restarts at 1.
  ASSERT_TRUE(store->Delete("a").ok());
  EXPECT_FALSE(store->Get("a").ok());
  ASSERT_TRUE(store->Put("a", 5).ok());
  EXPECT_EQ(store->Get("a")->version, 1u);
}

// Pins last-op-wins for same-key put+delete mixes inside one batch, in
// both orders — the ordering bug class a replaying backend (wal) can
// introduce if it reorders or coalesces batch entries.
TEST_P(StoreConformanceTest, SameKeyBatchOrderingIsLastOpWins) {
  {
    // {put k, delete k}: the delete lands last — key gone, version state
    // erased.
    auto store = MakeStore();
    WriteBatch batch;
    batch.Put("k", 7);
    batch.Delete("k");
    ASSERT_TRUE(store->Write(batch).ok()) << store->name();
    EXPECT_FALSE(store->Get("k").ok()) << store->name();
    EXPECT_EQ(store->GetOrDefault("k", -1), -1) << store->name();
    EXPECT_EQ(store->size(), 0u) << store->name();
    // Version state was erased by the in-batch delete: re-creation
    // restarts at 1.
    ASSERT_TRUE(store->Put("k", 9).ok());
    EXPECT_EQ(store->Get("k")->version, 1u) << store->name();
  }
  {
    // {delete k, put k}: the put lands last and sees post-delete version
    // state, so the key exists at version 1 even though it was live (at
    // version 2) before the batch.
    auto store = MakeStore();
    ASSERT_TRUE(store->Put("k", 1).ok());
    ASSERT_TRUE(store->Put("k", 2).ok());
    WriteBatch batch;
    batch.Delete("k");
    batch.Put("k", 5);
    ASSERT_TRUE(store->Write(batch).ok()) << store->name();
    auto got = store->Get("k");
    ASSERT_TRUE(got.ok()) << store->name();
    EXPECT_EQ(got->value, 5) << store->name();
    EXPECT_EQ(got->version, 1u) << store->name();
  }
}

// RestoreEntry is the checkpoint/recovery write path: it must install the
// exact value AND version (no bump), on live and fresh keys alike.
TEST_P(StoreConformanceTest, RestoreEntryInstallsExactVersions) {
  auto store = MakeStore();
  ASSERT_TRUE(store->RestoreEntry("fresh", {41, 17}).ok()) << store->name();
  auto got = store->Get("fresh");
  ASSERT_TRUE(got.ok()) << store->name();
  EXPECT_EQ(got->value, 41);
  EXPECT_EQ(got->version, 17u);

  // Overwrites a live key in place, version included (downgrades too —
  // recovery rewinds to the checkpointed version).
  ASSERT_TRUE(store->Put("live", 1).ok());
  ASSERT_TRUE(store->Put("live", 2).ok());
  ASSERT_TRUE(store->RestoreEntry("live", {100, 1}).ok()) << store->name();
  got = store->Get("live");
  ASSERT_TRUE(got.ok()) << store->name();
  EXPECT_EQ(got->value, 100);
  EXPECT_EQ(got->version, 1u);

  // Post-restore mutations resume normal semantics from the restored
  // version.
  ASSERT_TRUE(store->Put("live", 3).ok());
  EXPECT_EQ(store->Get("live")->version, 2u);
  EXPECT_EQ(store->size(), 2u);
}

TEST_P(StoreConformanceTest, SnapshotIsolatedFromLaterWrites) {
  auto store = MakeStore();
  Rng rng(7);
  std::map<Key, VersionedValue> before =
      DriveRandomOps(store.get(), &rng, 500);
  std::shared_ptr<const StoreSnapshot> snap = store->Snapshot();

  // Batches and point writes after the snapshot must not show through —
  // including deletes of keys the snapshot holds.
  WriteBatch batch;
  for (const auto& [key, vv] : before) {
    batch.Put(key, vv.value + 1000);
  }
  ASSERT_TRUE(store->Write(batch).ok());
  DriveRandomOps(store.get(), &rng, 500);

  ExpectMatchesModel(*snap, before, GetParam() + "/snapshot");
  std::vector<ScanEntry> scan = snap->Scan("", "");
  ASSERT_EQ(scan.size(), before.size());
  auto expect = before.begin();
  for (const ScanEntry& entry : scan) {
    EXPECT_EQ(entry.key, expect->first);
    EXPECT_EQ(entry.value.value, expect->second.value);
    ++expect;
  }
}

TEST_P(StoreConformanceTest, ScanIsOrderedBoundedAndLimited) {
  auto store = MakeStore();
  Rng rng(13);
  std::map<Key, VersionedValue> model = DriveRandomOps(store.get(), &rng,
                                                       1500);
  ASSERT_FALSE(model.empty());

  // Full scan = the model, in key order.
  std::vector<ScanEntry> all = store->Scan("", "");
  ASSERT_EQ(all.size(), model.size());
  auto it = model.begin();
  for (const ScanEntry& entry : all) {
    EXPECT_EQ(entry.key, it->first);
    EXPECT_EQ(entry.value.value, it->second.value);
    EXPECT_EQ(entry.value.version, it->second.version);
    ++it;
  }

  // Half-open [begin, end) window.
  const Key begin = "key1", end = "key5";
  std::vector<ScanEntry> window = store->Scan(begin, end);
  size_t expected = 0;
  for (const auto& [key, vv] : model) {
    if (key >= begin && key < end) ++expected;
  }
  EXPECT_EQ(window.size(), expected);
  for (const ScanEntry& entry : window) {
    EXPECT_GE(entry.key, begin);
    EXPECT_LT(entry.key, end);
  }

  // Limit returns the first entries of the same ordering.
  std::vector<ScanEntry> limited = store->Scan("", "", 5);
  ASSERT_EQ(limited.size(), std::min<size_t>(5, model.size()));
  for (size_t i = 0; i < limited.size(); ++i) {
    EXPECT_EQ(limited[i].key, all[i].key);
  }
}

TEST_P(StoreConformanceTest, ForkIsIndependentOfOriginal) {
  auto store = MakeStore();
  Rng rng(29);
  std::map<Key, VersionedValue> model = DriveRandomOps(store.get(), &rng,
                                                       800);
  std::unique_ptr<KVStore> fork = store->Fork();
  const uint64_t fp = store->ContentFingerprint();
  EXPECT_EQ(fork->ContentFingerprint(), fp);

  // Mutations on either side stay invisible to the other.
  ASSERT_TRUE(fork->Put("fork-only", 1).ok());
  ASSERT_TRUE(store->Delete(model.begin()->first).ok());
  EXPECT_FALSE(store->Get("fork-only").ok());
  EXPECT_TRUE(fork->Get(model.begin()->first).ok());
  EXPECT_NE(fork->ContentFingerprint(), store->ContentFingerprint());
}

TEST_P(StoreConformanceTest, StatsCountOperations) {
  auto store = MakeStore();
  ASSERT_TRUE(store->Put("a", 1).ok());
  ASSERT_TRUE(store->Delete("a").ok());
  WriteBatch batch;
  batch.Put("b", 2);
  batch.Delete("c");
  ASSERT_TRUE(store->Write(batch).ok());
  store->GetOrDefault("b", 0);
  store->Scan("", "");
  store->Snapshot();
  store->Fork();
  StoreStats stats = store->Stats();
  EXPECT_EQ(stats.backend, GetParam());
  EXPECT_EQ(stats.live_keys, 1u);
  EXPECT_EQ(stats.puts, 2u);
  EXPECT_EQ(stats.deletes, 2u);
  EXPECT_EQ(stats.batches, 1u);
  EXPECT_GE(stats.gets, 1u);
  EXPECT_EQ(stats.scans, 1u);
  EXPECT_EQ(stats.snapshots, 1u);
  EXPECT_EQ(stats.forks, 1u);
}

INSTANTIATE_TEST_SUITE_P(
    AllBackends, StoreConformanceTest,
    ::testing::ValuesIn(StoreRegistry::Global().Names()),
    [](const auto& info) { return std::string(info.param); });

// The same deterministic op history must land every backend on the same
// content fingerprint and the same scan — so engines may swap backends
// without moving the replica-agreement goalposts.
TEST(StoreCrossBackendAgreement, IdenticalHistoryIdenticalContent) {
  std::vector<std::unique_ptr<KVStore>> stores;
  for (const std::string& name : StoreRegistry::Global().Names()) {
    stores.push_back(StoreRegistry::Global().Create(name));
  }
  ASSERT_GE(stores.size(), 3u);
  std::vector<std::map<Key, VersionedValue>> models;
  for (auto& store : stores) {
    Rng rng(testutil::kDefaultSeed);  // Identical stream per backend.
    models.push_back(DriveRandomOps(store.get(), &rng, 2000));
  }
  for (size_t i = 1; i < stores.size(); ++i) {
    EXPECT_EQ(models[i], models[0]);
    EXPECT_EQ(stores[i]->ContentFingerprint(),
              stores[0]->ContentFingerprint())
        << stores[i]->name() << " diverged from " << stores[0]->name();
    std::vector<ScanEntry> a = stores[0]->Scan("", "");
    std::vector<ScanEntry> b = stores[i]->Scan("", "");
    ASSERT_EQ(a.size(), b.size());
    for (size_t e = 0; e < a.size(); ++e) {
      EXPECT_EQ(a[e].key, b[e].key);
      EXPECT_EQ(a[e].value.value, b[e].value.value);
      EXPECT_EQ(a[e].value.version, b[e].value.version);
    }
  }
}

}  // namespace
}  // namespace thunderbolt::storage
