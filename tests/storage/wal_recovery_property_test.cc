// Kill-at-random-offset recovery battery for the "wal" backend.
//
// The durability contract under test (wal_kv_store.h): after a crash that
// leaves the log truncated or torn at ANY byte offset, recovery must land
// the store on the state produced by some prefix of the applied mutation
// sequence — never a corrupted or interleaved state — and must never
// abort. 100 seeds randomize the op history, the wrapper configuration
// (inner backend, group_commit, checkpoint cadence) and the kill offset.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "storage/kv_store.h"
#include "storage/wal_kv_store.h"
#include "testutil/testutil.h"

namespace thunderbolt::storage {
namespace {

namespace fs = std::filesystem;

/// One recorded mutation, replayable onto any KVStore.
struct Mutation {
  WriteBatch batch;
};

std::string KeyName(uint64_t i) { return "acct" + std::to_string(i % 40); }

Mutation RandomMutation(Rng* rng) {
  Mutation m;
  const uint64_t entries = 1 + rng->NextBounded(4);
  for (uint64_t e = 0; e < entries; ++e) {
    Key key = KeyName(rng->NextBounded(200));
    if (rng->NextBounded(4) == 0) {
      m.batch.Delete(key);
    } else {
      m.batch.Put(key, static_cast<Value>(rng->NextBounded(1000000)));
    }
  }
  return m;
}

void Apply(KVStore* store, const Mutation& m) {
  ASSERT_TRUE(store->Write(m.batch).ok());
}

/// State after applying mutations[0, count) to a fresh store: the
/// reference for prefix equality, versions included.
std::unique_ptr<KVStore> ReplayPrefix(const std::vector<Mutation>& mutations,
                                      size_t count) {
  std::unique_ptr<KVStore> store = StoreRegistry::Global().Create("sorted");
  for (size_t i = 0; i < count; ++i) Apply(store.get(), mutations[i]);
  return store;
}

void ExpectSameContent(const KVStore& got, const KVStore& want,
                       const std::string& context) {
  EXPECT_EQ(got.ContentFingerprint(), want.ContentFingerprint()) << context;
  std::vector<ScanEntry> a = got.Scan("", "");
  std::vector<ScanEntry> b = want.Scan("", "");
  ASSERT_EQ(a.size(), b.size()) << context;
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].key, b[i].key) << context;
    EXPECT_EQ(a[i].value.value, b[i].value.value) << context << a[i].key;
    EXPECT_EQ(a[i].value.version, b[i].value.version) << context << a[i].key;
  }
}

std::string FreshDir(const std::string& tag) {
  fs::path dir = fs::path(::testing::TempDir()) / ("wal-recovery-" + tag);
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir.string();
}

size_t FileSize(const std::string& path) {
  std::error_code ec;
  const auto size = fs::file_size(path, ec);
  return ec ? 0 : static_cast<size_t>(size);
}

void TruncateFile(const std::string& path, size_t size) {
  fs::resize_file(path, size);
}

/// Creates a wal store over `dir` with a seed-randomized configuration.
std::unique_ptr<KVStore> OpenWal(const std::string& dir, Rng* rng) {
  static const char* kInners[] = {"mem", "sorted", "cow"};
  const size_t group_commit = 1 + rng->NextBounded(8);
  // checkpoint_every=0 disables checkpoints in a third of the runs so the
  // pure log-replay path stays covered.
  const size_t checkpoint_every =
      rng->NextBounded(3) == 0 ? 0 : 5 + rng->NextBounded(40);
  const std::string spec =
      "wal:dir=" + dir + ",group_commit=" + std::to_string(group_commit) +
      ",checkpoint_every=" + std::to_string(checkpoint_every) +
      ",inner=" + kInners[rng->NextBounded(3)];
  std::unique_ptr<KVStore> store = StoreRegistry::Global().Create(spec);
  EXPECT_NE(store, nullptr) << spec;
  return store;
}

/// Reopens `dir` (any inner works — content is backend-agnostic) and
/// asserts the recovered state equals the reference state after some
/// prefix of `mutations`. Returns the matching prefix length.
size_t ExpectRecoversToPrefix(const std::string& dir,
                              const std::vector<Mutation>& mutations,
                              size_t min_prefix, const std::string& context) {
  std::unique_ptr<KVStore> recovered =
      StoreRegistry::Global().Create("wal:dir=" + dir + ",inner=sorted");
  if (recovered == nullptr) {
    ADD_FAILURE() << context << ": reopen failed";
    return 0;
  }

  // Match the fingerprint against every prefix state, longest first:
  // adjacent prefixes can legitimately coincide (a deleted-absent-key
  // no-op), and the durability bound below is about the newest state
  // recovery can account for. Any match deep-compares equal by
  // construction.
  const uint64_t got_fp = recovered->ContentFingerprint();
  for (size_t k = mutations.size() + 1; k-- > 0;) {
    std::unique_ptr<KVStore> want = ReplayPrefix(mutations, k);
    if (want->ContentFingerprint() == got_fp) {
      EXPECT_GE(k, min_prefix)
          << context << ": recovered to a prefix older than the last "
          << "durability barrier";
      ExpectSameContent(*recovered, *want, context + "/prefix");
      return k;
    }
  }
  ADD_FAILURE() << context
                << ": recovered state matches no committed prefix, fp="
                << got_fp;
  return 0;
}

TEST(WalRecoveryPropertyTest, KillAtRandomOffsetRecoversACommittedPrefix) {
  for (uint64_t seed = 0; seed < 100; ++seed) {
    Rng rng(testutil::kDefaultSeed + seed);
    const std::string dir = FreshDir("kill" + std::to_string(seed));
    std::vector<Mutation> mutations;
    const size_t ops = 20 + rng.NextBounded(60);
    {
      std::unique_ptr<KVStore> store = OpenWal(dir, &rng);
      for (size_t i = 0; i < ops; ++i) {
        mutations.push_back(RandomMutation(&rng));
        Apply(store.get(), mutations.back());
      }
      // Destructor flush = the final group-commit barrier before the
      // "crash".
    }
    const std::string log = dir + "/" + WalKVStore::kLogFileName;
    const size_t log_size = FileSize(log);
    // Kill at a random offset: everything past it is lost, exactly as a
    // torn write at that boundary would leave the file.
    TruncateFile(log, rng.NextBounded(log_size + 1));
    ExpectRecoversToPrefix(dir, mutations, /*min_prefix=*/0,
                           "seed=" + std::to_string(seed));
    fs::remove_all(dir);
  }
}

TEST(WalRecoveryPropertyTest, CleanShutdownRecoversEverythingAfterFlush) {
  for (uint64_t seed = 0; seed < 20; ++seed) {
    Rng rng(testutil::kDefaultSeed ^ (seed * 0x9e3779b9ULL));
    const std::string dir = FreshDir("clean" + std::to_string(seed));
    std::vector<Mutation> mutations;
    const size_t ops = 10 + rng.NextBounded(40);
    {
      std::unique_ptr<KVStore> store = OpenWal(dir, &rng);
      for (size_t i = 0; i < ops; ++i) {
        mutations.push_back(RandomMutation(&rng));
        Apply(store.get(), mutations.back());
      }
      ASSERT_TRUE(store->Flush().ok());
    }
    // No truncation: the full history must come back, not just a prefix.
    const size_t k = ExpectRecoversToPrefix(
        dir, mutations, /*min_prefix=*/mutations.size(),
        "clean seed=" + std::to_string(seed));
    EXPECT_EQ(k, mutations.size());
    fs::remove_all(dir);
  }
}

TEST(WalRecoveryPropertyTest, GarbageTailNeverAbortsRecovery) {
  for (uint64_t seed = 0; seed < 20; ++seed) {
    Rng rng(testutil::kDefaultSeed + 1000 + seed);
    const std::string dir = FreshDir("garbage" + std::to_string(seed));
    std::vector<Mutation> mutations;
    {
      std::unique_ptr<KVStore> store = OpenWal(dir, &rng);
      for (size_t i = 0; i < 30; ++i) {
        mutations.push_back(RandomMutation(&rng));
        Apply(store.get(), mutations.back());
      }
      ASSERT_TRUE(store->Flush().ok());
    }
    // Torn-write debris: random bytes appended past the valid frames.
    const std::string log = dir + "/" + WalKVStore::kLogFileName;
    std::FILE* f = std::fopen(log.c_str(), "ab");
    ASSERT_NE(f, nullptr);
    const size_t garbage = 1 + rng.NextBounded(64);
    for (size_t i = 0; i < garbage; ++i) {
      std::fputc(static_cast<int>(rng.NextBounded(256)), f);
    }
    std::fclose(f);
    const size_t k = ExpectRecoversToPrefix(
        dir, mutations, /*min_prefix=*/mutations.size(),
        "garbage seed=" + std::to_string(seed));
    EXPECT_EQ(k, mutations.size());
    fs::remove_all(dir);
  }
}

TEST(WalRecoveryPropertyTest, CheckpointPlusLogSuffixReplay) {
  // Deterministic leg pinning the checkpoint interaction: a checkpoint
  // mid-history, more mutations after it, then a kill that truncates the
  // whole log — recovery must land at least on the checkpoint state.
  Rng rng(testutil::kDefaultSeed);
  const std::string dir = FreshDir("ckpt");
  std::vector<Mutation> mutations;
  constexpr size_t kBeforeCheckpoint = 25;
  {
    std::unique_ptr<KVStore> store = StoreRegistry::Global().Create(
        "wal:dir=" + dir + ",group_commit=4,checkpoint_every=0,inner=sorted");
    ASSERT_NE(store, nullptr);
    auto* wal = static_cast<WalKVStore*>(store.get());
    for (size_t i = 0; i < kBeforeCheckpoint; ++i) {
      mutations.push_back(RandomMutation(&rng));
      Apply(store.get(), mutations.back());
    }
    ASSERT_TRUE(wal->Checkpoint().ok());
    for (size_t i = 0; i < 15; ++i) {
      mutations.push_back(RandomMutation(&rng));
      Apply(store.get(), mutations.back());
    }
  }
  // Wipe the post-checkpoint log entirely: recovery = checkpoint alone.
  TruncateFile(dir + "/" + WalKVStore::kLogFileName, 0);
  const size_t k = ExpectRecoversToPrefix(dir, mutations,
                                          /*min_prefix=*/kBeforeCheckpoint,
                                          "checkpoint");
  EXPECT_EQ(k, kBeforeCheckpoint);
  fs::remove_all(dir);
}

TEST(WalRecoveryPropertyTest, RecoveryCountersAndRepeatedReopen) {
  Rng rng(testutil::kDefaultSeed);
  const std::string dir = FreshDir("counters");
  std::vector<Mutation> mutations;
  {
    std::unique_ptr<KVStore> store = StoreRegistry::Global().Create(
        "wal:dir=" + dir + ",group_commit=1,checkpoint_every=0,inner=mem");
    ASSERT_NE(store, nullptr);
    for (size_t i = 0; i < 10; ++i) {
      mutations.push_back(RandomMutation(&rng));
      Apply(store.get(), mutations.back());
    }
    const StoreStats stats = store->Stats();
    EXPECT_EQ(stats.wal_appends, 10u);
    EXPECT_EQ(stats.wal_syncs, 10u);  // group_commit=1: barrier per frame.
    EXPECT_EQ(stats.wal_recovered_records, 0u);
  }
  uint64_t fp = 0;
  for (int reopen = 0; reopen < 3; ++reopen) {
    std::unique_ptr<KVStore> store = StoreRegistry::Global().Create(
        "wal:dir=" + dir + ",inner=sorted");
    ASSERT_NE(store, nullptr);
    const StoreStats stats = store->Stats();
    EXPECT_EQ(stats.wal_recovered_records, 10u) << "reopen " << reopen;
    if (reopen == 0) {
      fp = store->ContentFingerprint();
    } else {
      // Recovery is idempotent: reopening without new writes never
      // changes the state.
      EXPECT_EQ(store->ContentFingerprint(), fp) << "reopen " << reopen;
    }
  }
  fs::remove_all(dir);
}

}  // namespace
}  // namespace thunderbolt::storage
