#include "net/network.h"

#include <gtest/gtest.h>

#include "common/simulator.h"
#include "testutil/testutil.h"

namespace thunderbolt::net {
namespace {

struct TestMsg final : public Payload {
  explicit TestMsg(int v, uint64_t size = 256) : value(v), size_(size) {}
  int value;
  uint64_t SizeBytes() const override { return size_; }

 private:
  uint64_t size_;
};

class NetworkTest : public ::testing::Test {
 protected:
  NetworkTest() : net_(&sim_, 4, LatencyModel::Lan(), 1) {}

  void Register(ReplicaId id) {
    net_.RegisterHandler(id, [this, id](ReplicaId from,
                                        const PayloadPtr& payload) {
      auto* msg = dynamic_cast<const TestMsg*>(payload.get());
      received[id].emplace_back(from, msg ? msg->value : -1);
    });
  }

  sim::Simulator sim_;
  SimNetwork net_;
  std::map<ReplicaId, std::vector<std::pair<ReplicaId, int>>> received;
};

TEST_F(NetworkTest, PointToPointDelivery) {
  Register(1);
  net_.Send(0, 1, std::make_shared<TestMsg>(42));
  sim_.RunAll();
  ASSERT_EQ(received[1].size(), 1u);
  EXPECT_EQ(received[1][0], std::make_pair(ReplicaId{0}, 42));
  EXPECT_GE(sim_.Now(), Micros(200));  // At least the base latency.
}

TEST_F(NetworkTest, BroadcastIncludesSelf) {
  for (ReplicaId id = 0; id < 4; ++id) Register(id);
  net_.Broadcast(2, std::make_shared<TestMsg>(7));
  sim_.RunAll();
  for (ReplicaId id = 0; id < 4; ++id) {
    ASSERT_EQ(received[id].size(), 1u) << "replica " << id;
    EXPECT_EQ(received[id][0].second, 7);
  }
  EXPECT_EQ(net_.messages_delivered(), 4u);
}

TEST_F(NetworkTest, LoopbackIsFast) {
  Register(0);
  net_.Send(0, 0, std::make_shared<TestMsg>(1));
  sim_.RunAll();
  EXPECT_EQ(sim_.Now(), Micros(5));
}

TEST_F(NetworkTest, CrashedReplicaDropsBothDirections) {
  Register(0);
  Register(1);
  net_.Crash(1);
  net_.Send(0, 1, std::make_shared<TestMsg>(1));  // To crashed.
  net_.Send(1, 0, std::make_shared<TestMsg>(2));  // From crashed.
  sim_.RunAll();
  EXPECT_TRUE(received[0].empty());
  EXPECT_TRUE(received[1].empty());
  EXPECT_EQ(net_.messages_dropped(), 2u);
  net_.Restart(1);
  net_.Send(0, 1, std::make_shared<TestMsg>(3));
  sim_.RunAll();
  EXPECT_EQ(received[1].size(), 1u);
}

TEST_F(NetworkTest, CrashWhileInFlightDrops) {
  Register(1);
  net_.Send(0, 1, std::make_shared<TestMsg>(9));
  net_.Crash(1);  // Before delivery event fires.
  sim_.RunAll();
  EXPECT_TRUE(received[1].empty());
}

TEST_F(NetworkTest, LinkCutIsDirectional) {
  Register(0);
  Register(1);
  net_.SetLink(0, 1, false);
  net_.Send(0, 1, std::make_shared<TestMsg>(1));
  net_.Send(1, 0, std::make_shared<TestMsg>(2));
  sim_.RunAll();
  EXPECT_TRUE(received[1].empty());
  ASSERT_EQ(received[0].size(), 1u);
}

TEST_F(NetworkTest, BandwidthSerializesLargeSends) {
  Register(1);
  Register(2);
  // Two 30 KB messages: the second waits for the first on the sender NIC.
  net_.Send(0, 1, std::make_shared<TestMsg>(1, 30000));
  net_.Send(0, 2, std::make_shared<TestMsg>(2, 30000));
  sim_.RunAll();
  // tx_time = 30000 / 300 B/us = 100 us each; second delivery >= 200 us
  // of NIC time plus propagation.
  EXPECT_GE(sim_.Now(), Micros(400));
}

TEST_F(NetworkTest, WanSlowerThanLan) {
  sim::Simulator sim2;
  SimNetwork wan(&sim2, 2, LatencyModel::Wan(), 1);
  SimTime lan_arrival = 0, wan_arrival = 0;
  net_.RegisterHandler(1, [&](ReplicaId, const PayloadPtr&) {
    lan_arrival = sim_.Now();
  });
  wan.RegisterHandler(1, [&](ReplicaId, const PayloadPtr&) {
    wan_arrival = sim2.Now();
  });
  net_.Send(0, 1, std::make_shared<TestMsg>(1));
  wan.Send(0, 1, std::make_shared<TestMsg>(1));
  sim_.RunAll();
  sim2.RunAll();
  EXPECT_GT(wan_arrival, lan_arrival * 50);
}

using LatencyModelTest = testutil::SeededTest;

TEST_F(LatencyModelTest, SampleBounds) {
  LatencyModel lan = LatencyModel::Lan();
  for (int i = 0; i < 1000; ++i) {
    SimTime d = lan.SamplePropagation(rng_);
    EXPECT_GE(d, lan.base);
    EXPECT_LE(d, lan.base + 10 * lan.jitter_mean);
  }
}

}  // namespace
}  // namespace thunderbolt::net
