// Adversarial scenario: a replica crashes mid-run (its shard's proposer
// goes silent and its network drops) while the rest of the cluster keeps
// committing. Whatever mix of preplayed, converted, deferred and
// cross-shard work results, the canonical committed state must still
// satisfy the workload's consistency invariant — for every registered
// workload, in both crash-response modes (with and without
// silence-triggered reconfiguration).
#include <gtest/gtest.h>

#include <string>

#include "core/cluster.h"
#include "testutil/testutil.h"

namespace thunderbolt::core {
namespace {

class ClusterCrashInvariantTest
    : public ::testing::TestWithParam<std::string> {};

workload::WorkloadOptions CrashWorkloadOptions() {
  workload::WorkloadOptions wc =
      testutil::WorkloadTestOptions(/*num_records=*/400, /*seed=*/32);
  wc.cross_shard_ratio = 0.2;
  wc.num_warehouses = 2;
  wc.customers_per_district = 20;
  wc.num_items = 50;
  return wc;
}

TEST_P(ClusterCrashInvariantTest, InvariantSurvivesCrashedReplica) {
  ThunderboltConfig cfg;
  cfg.n = 4;
  cfg.batch_size = 50;
  cfg.num_executors = 4;
  cfg.num_validators = 4;
  cfg.proposal_prep_cost = Millis(5);
  cfg.seed = 31;

  Cluster cluster(cfg, GetParam(), CrashWorkloadOptions());
  cluster.CrashReplicaAt(2, Millis(1500));
  ClusterResult r = cluster.Run(Seconds(5));

  // The cluster survived the crash: commits continued, nothing invalid
  // slipped through, and the committed state is consistent.
  EXPECT_GT(r.committed_single + r.committed_cross, 0u);
  Status invariant = cluster.CheckInvariant();
  EXPECT_TRUE(invariant.ok()) << invariant.ToString();
}

TEST_P(ClusterCrashInvariantTest, InvariantSurvivesCrashWithRotation) {
  // Same crash, but silence detection rotates the victim's shard to a
  // live replica (non-blocking reconfiguration under failure).
  ThunderboltConfig cfg;
  cfg.n = 4;
  cfg.batch_size = 50;
  cfg.num_executors = 4;
  cfg.num_validators = 4;
  cfg.proposal_prep_cost = Millis(5);
  cfg.silence_rounds_k = 6;
  cfg.seed = 33;

  Cluster cluster(cfg, GetParam(), CrashWorkloadOptions());
  cluster.CrashReplicaAt(2, Millis(1000));
  ClusterResult r = cluster.Run(Seconds(6));

  EXPECT_GE(r.reconfigurations, 1u);
  EXPECT_GT(r.committed_single + r.committed_cross, 0u);
  Status invariant = cluster.CheckInvariant();
  EXPECT_TRUE(invariant.ok()) << invariant.ToString();
}

INSTANTIATE_TEST_SUITE_P(
    AllWorkloads, ClusterCrashInvariantTest,
    ::testing::ValuesIn(workload::WorkloadRegistry::Global().Names()),
    [](const auto& info) { return info.param; });

}  // namespace
}  // namespace thunderbolt::core
