#include "core/payload.h"

#include <gtest/gtest.h>

namespace thunderbolt::core {
namespace {

ThunderboltPayload MakePayload() {
  ThunderboltPayload p;
  p.kind = PayloadKind::kNormal;
  p.shard = 3;
  PreplayedTxn t;
  t.tx.id = 7;
  t.tx.contract = "smallbank.send_payment";
  t.tx.accounts = {"a", "b"};
  t.tx.params = {5};
  t.rw_set.reads.push_back({txn::OpType::kRead, "a/checking", 100});
  t.rw_set.writes.push_back({txn::OpType::kWrite, "a/checking", 95});
  t.emitted = {1};
  p.preplayed.push_back(t);
  txn::Transaction cross;
  cross.id = 8;
  cross.contract = "smallbank.send_payment";
  cross.accounts = {"c", "d"};
  cross.params = {2};
  p.cross_shard.push_back(cross);
  return p;
}

TEST(PayloadTest, DigestIsDeterministic) {
  EXPECT_EQ(MakePayload().ContentDigest(), MakePayload().ContentDigest());
}

TEST(PayloadTest, DigestCoversKind) {
  ThunderboltPayload a = MakePayload();
  ThunderboltPayload b = MakePayload();
  b.kind = PayloadKind::kSkip;
  EXPECT_NE(a.ContentDigest(), b.ContentDigest());
}

TEST(PayloadTest, DigestCoversShard) {
  ThunderboltPayload a = MakePayload();
  ThunderboltPayload b = MakePayload();
  b.shard = 4;
  EXPECT_NE(a.ContentDigest(), b.ContentDigest());
}

TEST(PayloadTest, DigestCoversDeclaredReads) {
  ThunderboltPayload a = MakePayload();
  ThunderboltPayload b = MakePayload();
  b.preplayed[0].rw_set.reads[0].value += 1;  // Tampered read value.
  EXPECT_NE(a.ContentDigest(), b.ContentDigest());
}

TEST(PayloadTest, DigestCoversDeclaredWrites) {
  ThunderboltPayload a = MakePayload();
  ThunderboltPayload b = MakePayload();
  b.preplayed[0].rw_set.writes[0].value += 1;
  EXPECT_NE(a.ContentDigest(), b.ContentDigest());
}

TEST(PayloadTest, DigestCoversEmittedResults) {
  ThunderboltPayload a = MakePayload();
  ThunderboltPayload b = MakePayload();
  b.preplayed[0].emitted[0] = 0;
  EXPECT_NE(a.ContentDigest(), b.ContentDigest());
}

TEST(PayloadTest, DigestCoversCrossSection) {
  ThunderboltPayload a = MakePayload();
  ThunderboltPayload b = MakePayload();
  b.cross_shard[0].params[0] += 1;
  EXPECT_NE(a.ContentDigest(), b.ContentDigest());
}

TEST(PayloadTest, DigestCoversScheduleOrder) {
  ThunderboltPayload a = MakePayload();
  PreplayedTxn second = a.preplayed[0];
  second.tx.id = 9;
  a.preplayed.push_back(second);
  ThunderboltPayload b = a;
  std::swap(b.preplayed[0], b.preplayed[1]);
  // Copies share no digest cache; order matters.
  EXPECT_NE(a.ContentDigest(), b.ContentDigest());
}

TEST(PayloadTest, SizeGrowsWithContent) {
  ThunderboltPayload empty;
  ThunderboltPayload loaded = MakePayload();
  EXPECT_GT(loaded.SizeBytes(), empty.SizeBytes());
  ThunderboltPayload bigger = MakePayload();
  for (int i = 0; i < 100; ++i) {
    bigger.cross_shard.push_back(bigger.cross_shard[0]);
  }
  EXPECT_GT(bigger.SizeBytes(), loaded.SizeBytes() + 100 * 100);
}

}  // namespace
}  // namespace thunderbolt::core
