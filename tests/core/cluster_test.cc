// End-to-end integration tests for the simulated Thunderbolt cluster:
// liveness, state convergence, balance conservation, the Tusk and
// Thunderbolt-OCC modes, cross-shard handling, failures, and non-blocking
// reconfiguration.
#include "core/cluster.h"

#include <gtest/gtest.h>

#include "testutil/testutil.h"

namespace thunderbolt::core {
namespace {

ThunderboltConfig SmallConfig(uint32_t n = 4) {
  ThunderboltConfig cfg;
  cfg.n = n;
  cfg.batch_size = 50;
  cfg.num_executors = 4;
  cfg.num_validators = 4;
  cfg.proposal_prep_cost = Millis(5);
  cfg.leader_timeout = Millis(200);
  cfg.seed = 11;
  return cfg;
}

workload::WorkloadOptions SmallWorkload() {
  return testutil::WorkloadTestOptions(/*num_records=*/400, /*seed=*/12);
}

TEST(ClusterTest, CommitsSingleShardTransactions) {
  Cluster cluster(SmallConfig(), "smallbank", SmallWorkload());
  ClusterResult r = cluster.Run(Seconds(5));
  EXPECT_GT(r.committed_single, 500u);
  EXPECT_EQ(r.invalid_blocks, 0u);
  EXPECT_GT(r.throughput_tps, 100.0);
  EXPECT_GT(r.avg_latency_s, 0.0);
  EXPECT_LT(r.avg_latency_s, 5.0);
}

TEST(ClusterTest, BalancesConserved) {
  // Pr=0.5 mix of GetBalance and SendPayment conserves total balance
  // (SmallBank's CheckInvariant).
  Cluster cluster(SmallConfig(), "smallbank", SmallWorkload());
  cluster.Run(Seconds(5));
  EXPECT_TRUE(cluster.CheckInvariant().ok())
      << cluster.CheckInvariant().ToString();
}

TEST(ClusterTest, CrossShardTransactionsCommit) {
  auto wc = SmallWorkload();
  wc.cross_shard_ratio = 0.2;
  Cluster cluster(SmallConfig(), "smallbank", wc);
  ClusterResult r = cluster.Run(Seconds(5));
  EXPECT_GT(r.committed_cross, 50u);
  EXPECT_GT(r.committed_single, 50u);
  EXPECT_TRUE(cluster.CheckInvariant().ok())
      << cluster.CheckInvariant().ToString();
}

TEST(ClusterTest, AllCrossShard) {
  auto wc = SmallWorkload();
  wc.cross_shard_ratio = 1.0;
  Cluster cluster(SmallConfig(), "smallbank", wc);
  ClusterResult r = cluster.Run(Seconds(5));
  EXPECT_EQ(r.committed_single, 0u);
  EXPECT_GT(r.committed_cross, 200u);
}

TEST(ClusterTest, TuskModeCommitsSerially) {
  auto cfg = SmallConfig();
  cfg.mode = ExecutionMode::kTusk;
  Cluster cluster(cfg, "smallbank", SmallWorkload());
  ClusterResult r = cluster.Run(Seconds(5));
  EXPECT_EQ(r.committed_single, 0u);  // Everything is raw/ordered.
  EXPECT_GT(r.committed_cross, 200u);
  EXPECT_TRUE(cluster.CheckInvariant().ok())
      << cluster.CheckInvariant().ToString();
}

TEST(ClusterTest, ThunderboltOccMode) {
  auto cfg = SmallConfig();
  cfg.mode = ExecutionMode::kThunderboltOcc;
  Cluster cluster(cfg, "smallbank", SmallWorkload());
  ClusterResult r = cluster.Run(Seconds(5));
  EXPECT_GT(r.committed_single, 500u);
  EXPECT_EQ(r.invalid_blocks, 0u);
}

TEST(ClusterTest, SurvivesFCrashedReplicas) {
  auto cfg = SmallConfig(7);  // f = 2.
  Cluster cluster(cfg, "smallbank", SmallWorkload());
  cluster.CrashReplicaAt(5, Millis(500));
  cluster.CrashReplicaAt(6, Millis(500));
  ClusterResult r = cluster.Run(Seconds(6));
  EXPECT_GT(r.committed_single, 300u);
}

TEST(ClusterTest, PeriodicReconfigurationRotatesShards) {
  auto cfg = SmallConfig();
  cfg.reconfig_period_k_prime = 6;
  Cluster cluster(cfg, "smallbank", SmallWorkload());
  ClusterResult r = cluster.Run(Seconds(8));
  EXPECT_GE(r.reconfigurations, 1u);
  EXPECT_GT(r.shift_blocks, 0u);
  // Shard ownership rotated: replica 0 no longer owns shard 0.
  EXPECT_EQ(cluster.node(0).owned_shard(),
            ThunderboltNode::ShardOwnedBy(0, cluster.node(0).epoch(), 4));
  EXPECT_GT(cluster.node(0).epoch(), 0u);
  // The system keeps committing across reconfigurations (non-blocking).
  EXPECT_GT(r.committed_single, 300u);
}

TEST(ClusterTest, SilenceTriggersReconfiguration) {
  auto cfg = SmallConfig();
  cfg.silence_rounds_k = 6;
  Cluster cluster(cfg, "smallbank", SmallWorkload());
  cluster.CrashReplicaAt(3, Millis(300));
  ClusterResult r = cluster.Run(Seconds(8));
  // The silent proposer triggers Shift blocks and a DAG switch.
  EXPECT_GE(r.reconfigurations, 1u);
  EXPECT_GT(r.committed_single, 100u);
}

TEST(ClusterTest, DeterministicGivenSeed) {
  uint64_t fp[2];
  uint64_t committed[2];
  for (int i = 0; i < 2; ++i) {
    Cluster cluster(SmallConfig(), "smallbank", SmallWorkload());
    ClusterResult r = cluster.Run(Seconds(3));
    fp[i] = cluster.canonical_state().ContentFingerprint();
    committed[i] = r.committed_single + r.committed_cross;
  }
  EXPECT_EQ(fp[0], fp[1]);
  EXPECT_EQ(committed[0], committed[1]);
}

TEST(ClusterTest, RepeatedRunWindowsAccumulate) {
  Cluster cluster(SmallConfig(), "smallbank", SmallWorkload());
  ClusterResult r1 = cluster.Run(Seconds(2));
  ClusterResult r2 = cluster.Run(Seconds(2));
  EXPECT_GT(r1.committed_single, 0u);
  EXPECT_GT(r2.committed_single, 0u);
  EXPECT_EQ(cluster.simulator().Now(), Seconds(4));
}

TEST(ClusterTest, LargerClusterScalesThroughput) {
  auto wc = SmallWorkload();
  wc.num_records = 1600;
  Cluster small(SmallConfig(4), "smallbank", wc);
  Cluster large(SmallConfig(8), "smallbank", wc);
  ClusterResult rs = small.Run(Seconds(5));
  ClusterResult rl = large.Run(Seconds(5));
  // More shards -> more parallel preplay -> higher total throughput.
  EXPECT_GT(rl.committed_single, rs.committed_single);
}

}  // namespace
}  // namespace thunderbolt::core
