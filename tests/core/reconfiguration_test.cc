// Non-blocking reconfiguration (paper section 6): Shift-block conditions,
// round-robin shard rotation, liveness across DAG switches, and safety
// (deterministic state) across epochs. Mirrors the Figure 6 scenario.
#include <gtest/gtest.h>

#include "core/cluster.h"
#include "testutil/testutil.h"

namespace thunderbolt::core {
namespace {

TEST(ReconfigurationTest, ShardRotationIsRoundRobin) {
  // Shard owned by replica i in epoch e is (i + e) mod n — the paper's
  // "subsequent proposer of shard X is R_(i mod n)+1" seen from the
  // replica's perspective.
  EXPECT_EQ(ThunderboltNode::ShardOwnedBy(0, 0, 4), 0u);
  EXPECT_EQ(ThunderboltNode::ShardOwnedBy(0, 1, 4), 1u);
  EXPECT_EQ(ThunderboltNode::ShardOwnedBy(3, 1, 4), 0u);
  EXPECT_EQ(ThunderboltNode::ShardOwnedBy(2, 6, 4), 0u);
  // Every epoch the mapping is a permutation.
  for (EpochId e = 0; e < 5; ++e) {
    std::set<ShardId> owned;
    for (ReplicaId i = 0; i < 7; ++i) {
      owned.insert(ThunderboltNode::ShardOwnedBy(i, e, 7));
    }
    EXPECT_EQ(owned.size(), 7u);
  }
}

ThunderboltConfig Config(Round k_prime) {
  ThunderboltConfig cfg;
  cfg.n = 4;
  cfg.batch_size = 60;
  cfg.proposal_prep_cost = Millis(5);
  cfg.reconfig_period_k_prime = k_prime;
  cfg.seed = 401;
  return cfg;
}

workload::WorkloadOptions Workload() {
  return testutil::WorkloadTestOptions(/*num_records=*/500, /*seed=*/402);
}

TEST(ReconfigurationTest, DisabledByDefault) {
  Cluster cluster(Config(0), "smallbank", Workload());
  ClusterResult r = cluster.Run(Seconds(6));
  EXPECT_EQ(r.reconfigurations, 0u);
  EXPECT_EQ(r.shift_blocks, 0u);
  EXPECT_EQ(cluster.node(0).epoch(), 0u);
}

TEST(ReconfigurationTest, PeriodicRotationAdvancesEpochs) {
  Cluster cluster(Config(8), "smallbank", Workload());
  ClusterResult r = cluster.Run(Seconds(8));
  EXPECT_GE(r.reconfigurations, 2u);
  // All replicas agree on the epoch (they all saw the same ending commit).
  EpochId epoch = cluster.node(0).epoch();
  EXPECT_GT(epoch, 0u);
  for (ReplicaId i = 0; i < 4; ++i) {
    EXPECT_EQ(cluster.node(i).epoch(), epoch) << "replica " << i;
    EXPECT_EQ(cluster.node(i).owned_shard(),
              ThunderboltNode::ShardOwnedBy(i, epoch, 4));
  }
  // Every epoch requires 2f+1 = 3 committed Shift blocks.
  EXPECT_GE(r.shift_blocks, 3 * r.reconfigurations);
}

TEST(ReconfigurationTest, NonBlockingCommitsKeepFlowing) {
  Cluster cluster(Config(8), "smallbank", Workload());
  ClusterResult r = cluster.Run(Seconds(8));
  ASSERT_GE(r.reconfigurations, 2u);
  ASSERT_GT(r.commit_times.size(), 20u);
  // No commit gap dramatically larger than the typical cadence: the DAG
  // switch must not stall the pipeline (paper Figure 16).
  std::vector<double> gaps;
  for (size_t i = 1; i < r.commit_times.size(); ++i) {
    gaps.push_back(ToSeconds(r.commit_times[i].second) -
                   ToSeconds(r.commit_times[i - 1].second));
  }
  std::vector<double> sorted = gaps;
  std::sort(sorted.begin(), sorted.end());
  double median = sorted[sorted.size() / 2];
  double worst = sorted.back();
  EXPECT_LT(worst, 20 * median + 1.0)
      << "a reconfiguration stalled the commit pipeline";
}

TEST(ReconfigurationTest, BalancesConservedAcrossEpochs) {
  auto wc = Workload();
  wc.cross_shard_ratio = 0.1;
  Cluster cluster(Config(10), "smallbank", wc);
  cluster.Run(Seconds(8));
  EXPECT_TRUE(cluster.CheckInvariant().ok())
      << cluster.CheckInvariant().ToString();
}

TEST(ReconfigurationTest, DeterministicAcrossRuns) {
  uint64_t fp[2];
  uint64_t reconfigs[2];
  for (int i = 0; i < 2; ++i) {
    Cluster cluster(Config(8), "smallbank", Workload());
    ClusterResult r = cluster.Run(Seconds(6));
    fp[i] = cluster.canonical_state().ContentFingerprint();
    reconfigs[i] = r.reconfigurations;
  }
  EXPECT_EQ(fp[0], fp[1]);
  EXPECT_EQ(reconfigs[0], reconfigs[1]);
}

// Figure 6 scenario: a proposer goes silent (censorship); honest replicas
// emit Shift blocks after K rounds of silence and rotate its shard to a
// live replica; the f+1 observation condition spreads the shift.
TEST(ReconfigurationTest, SilenceRotatesVictimShard) {
  auto cfg = Config(0);
  cfg.silence_rounds_k = 5;
  Cluster cluster(cfg, "smallbank", Workload());
  cluster.CrashReplicaAt(2, Millis(200));
  ClusterResult r = cluster.Run(Seconds(8));
  ASSERT_GE(r.reconfigurations, 1u);
  // After rotation, shard 2 (the crashed replica's original shard) is
  // owned by a live replica — except in epochs that are a multiple of n,
  // where round-robin cycles back to the victim (and silence detection
  // will rotate again).
  EpochId epoch = cluster.node(0).epoch();
  ASSERT_GT(epoch, 0u);
  if (epoch % 4 != 0) {
    ReplicaId new_owner = 0;
    for (ReplicaId i = 0; i < 4; ++i) {
      if (ThunderboltNode::ShardOwnedBy(i, epoch, 4) == 2u) new_owner = i;
    }
    EXPECT_NE(new_owner, 2u);
  }
  // Work continued after the rotation.
  EXPECT_GT(r.committed_single, 100u);
}

TEST(ReconfigurationTest, FrequentRotationCostsThroughput) {
  // Figure 15's shape: very small K' discards more uncommitted tails.
  Cluster fast(Config(6), "smallbank", Workload());
  Cluster slow(Config(200), "smallbank", Workload());
  ClusterResult rf = fast.Run(Seconds(8));
  ClusterResult rs = slow.Run(Seconds(8));
  EXPECT_GT(rf.reconfigurations, rs.reconfigurations);
  EXPECT_LT(rf.committed_single + rf.committed_cross,
            rs.committed_single + rs.committed_cross);
}

}  // namespace
}  // namespace thunderbolt::core
