// Behavioural tests for the proposal rules P1-P6 (paper section 5.1),
// observed through cluster runs.
#include <gtest/gtest.h>

#include "core/cluster.h"
#include "testutil/testutil.h"

namespace thunderbolt::core {
namespace {

ThunderboltConfig BaseConfig() {
  ThunderboltConfig cfg;
  cfg.n = 4;
  cfg.batch_size = 60;
  cfg.num_executors = 4;
  cfg.num_validators = 4;
  cfg.proposal_prep_cost = Millis(5);
  cfg.leader_timeout = Millis(150);
  cfg.seed = 201;
  return cfg;
}

workload::WorkloadOptions BaseWorkload(double cross_ratio) {
  workload::WorkloadOptions wc =
      testutil::WorkloadTestOptions(/*num_records=*/600, /*seed=*/202);
  wc.cross_shard_ratio = cross_ratio;
  return wc;
}

// P1: cross-shard transactions bypass the CE entirely.
TEST(ProposalRulesTest, P1CrossShardBypassesPreplay) {
  Cluster cluster(BaseConfig(), "smallbank", BaseWorkload(1.0));
  ClusterResult r = cluster.Run(Seconds(5));
  EXPECT_EQ(r.committed_single, 0u);
  EXPECT_EQ(r.preplay_aborts, 0u);  // Nothing preplayed, nothing aborted.
  EXPECT_GT(r.committed_cross, 100u);
}

// P6: when a round leader is silent, waiting proposers convert their
// single-shard transactions to cross-shard ones and submit them directly.
TEST(ProposalRulesTest, P6LeaderTimeoutConverts) {
  auto cfg = BaseConfig();
  cfg.silence_rounds_k = 1000000;  // Isolate P6 from reconfiguration.
  Cluster cluster(cfg, "smallbank", BaseWorkload(0.0));
  // Replica 1 leads rounds 3, 11, 19, ... (round-robin); crash it early.
  cluster.CrashReplicaAt(1, Millis(100));
  ClusterResult r = cluster.Run(Seconds(5));
  EXPECT_GT(r.conversions, 0u);
  // Converted transactions execute through the OE path.
  EXPECT_GT(r.committed_cross, 0u);
  // The system keeps processing despite the dead leader.
  EXPECT_GT(r.committed_single, 200u);
}

// P4 / section 5.4: single-shard transactions whose accounts overlap
// pending cross-shard transactions are deferred (possibly via Skip blocks)
// or converted, never preplayed concurrently with the conflict.
TEST(ProposalRulesTest, P4ConflictsDeferOrConvert) {
  Cluster cluster(BaseConfig(), "smallbank", BaseWorkload(0.3));
  ClusterResult r = cluster.Run(Seconds(5));
  // Deferral/conversion machinery must have engaged under 30% cross load
  // with a skewed account distribution.
  EXPECT_GT(r.conversions + r.skip_blocks, 0u);
  // Safety net: nothing invalid committed.
  EXPECT_EQ(r.invalid_blocks, 0u);
  // Balances conserved across both execution paths.
  EXPECT_TRUE(cluster.CheckInvariant().ok())
      << cluster.CheckInvariant().ToString();
}

// P2/G1: within one run, committed work includes both paths and the
// deterministic state equals a conserved-balance state (order violations
// between the paths would break conservation under contention).
TEST(ProposalRulesTest, MixedPathsStayConsistent) {
  for (uint64_t seed : {301u, 302u, 303u}) {
    auto cfg = BaseConfig();
    cfg.seed = seed;
    auto wc = BaseWorkload(0.15);
    wc.seed = seed + 1000;
    Cluster cluster(cfg, "smallbank", wc);
    ClusterResult r = cluster.Run(Seconds(4));
    EXPECT_GT(r.committed_single, 0u) << "seed " << seed;
    EXPECT_GT(r.committed_cross, 0u) << "seed " << seed;
    EXPECT_TRUE(cluster.CheckInvariant().ok())
        << "seed " << seed << ": " << cluster.CheckInvariant().ToString();
  }
}

// Skip blocks appear under sustained cross-shard pressure when the
// section 5.4 preplay-recovery variant is enabled.
TEST(ProposalRulesTest, SkipBlocksUnderCrossPressure) {
  auto cfg = BaseConfig();
  cfg.use_skip_blocks = true;
  auto wc = BaseWorkload(0.6);
  wc.theta = 0.95;  // Very hot accounts -> persistent conflicts.
  Cluster cluster(cfg, "smallbank", wc);
  ClusterResult r = cluster.Run(Seconds(5));
  EXPECT_GT(r.skip_blocks, 0u);
}

// Ablation: the immediate-conversion (P4) and Skip-block (5.4) variants
// both preserve safety; conversions dominate in the default mode, skips
// in the deferred mode.
TEST(ProposalRulesTest, SkipModeVsConvertMode) {
  auto wc = BaseWorkload(0.3);
  auto cfg = BaseConfig();
  cfg.use_skip_blocks = false;
  Cluster convert_mode(cfg, "smallbank", wc);
  ClusterResult rc = convert_mode.Run(Seconds(4));
  cfg.use_skip_blocks = true;
  Cluster skip_mode(cfg, "smallbank", wc);
  ClusterResult rs = skip_mode.Run(Seconds(4));
  EXPECT_EQ(rc.invalid_blocks, 0u);
  EXPECT_EQ(rs.invalid_blocks, 0u);
  EXPECT_GT(rc.conversions, 0u);
  EXPECT_EQ(rc.skip_blocks, 0u);
  EXPECT_GT(rs.skip_blocks, 0u);
}

}  // namespace
}  // namespace thunderbolt::core
