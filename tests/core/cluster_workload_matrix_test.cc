// Cross-workload cluster integration battery: every workload registered in
// WorkloadRegistry must run on a sharded multi-replica cluster — baseline,
// with a crashed replica, and across non-blocking reconfigurations —
// commit a nonzero amount of work, and leave the canonical committed state
// satisfying its own consistency invariant. New workloads get this
// coverage for free: the matrix enumerates the registry.
#include <gtest/gtest.h>

#include <string>
#include <tuple>

#include "core/cluster.h"
#include "testutil/testutil.h"

namespace thunderbolt::core {
namespace {

enum class Scenario { kBaseline, kCrash, kReconfig };

const char* ScenarioName(Scenario s) {
  switch (s) {
    case Scenario::kBaseline: return "Baseline";
    case Scenario::kCrash: return "Crash";
    case Scenario::kReconfig: return "Reconfig";
  }
  return "Unknown";
}

class ClusterWorkloadMatrixTest
    : public ::testing::TestWithParam<std::tuple<std::string, Scenario>> {};

TEST_P(ClusterWorkloadMatrixTest, CommitsAndPreservesInvariant) {
  const auto& [workload_name, scenario] = GetParam();

  ThunderboltConfig cfg;
  cfg.n = 4;
  cfg.batch_size = 50;
  cfg.num_executors = 4;
  cfg.num_validators = 4;
  cfg.proposal_prep_cost = Millis(5);
  cfg.seed = 21;
  if (scenario == Scenario::kReconfig) cfg.reconfig_period_k_prime = 8;

  workload::WorkloadOptions wc =
      testutil::WorkloadTestOptions(/*num_records=*/400, /*seed=*/22);
  wc.cross_shard_ratio = 0.1;
  // Test-sized TPC-C-lite tables (ignored by the other workloads).
  wc.num_warehouses = 2;
  wc.customers_per_district = 20;
  wc.num_items = 50;

  Cluster cluster(cfg, workload_name, wc);
  if (scenario == Scenario::kCrash) {
    // One replica (f = 1 of n = 4) dies mid-run; the observer stays alive.
    cluster.CrashReplicaAt(3, Millis(500));
  }
  ClusterResult r = cluster.Run(Seconds(4));

  EXPECT_GT(r.committed_single + r.committed_cross, 0u);
  Status invariant = cluster.CheckInvariant();
  EXPECT_TRUE(invariant.ok()) << invariant.ToString();
  if (scenario == Scenario::kReconfig) {
    EXPECT_GE(r.reconfigurations, 1u);
  }
}

// The name + param-string constructor is the documented entry point for
// drivers; pin it end to end for a non-default workload.
TEST(ClusterWorkloadMatrixTest, ParamStringConstructorRuns) {
  ThunderboltConfig cfg;
  cfg.n = 4;
  cfg.batch_size = 50;
  cfg.proposal_prep_cost = Millis(5);
  cfg.seed = 23;
  Cluster cluster(cfg, "ycsb",
                  "num_records=400,theta=0.9,cross_shard_ratio=0.2,seed=24");
  ClusterResult r = cluster.Run(Seconds(3));
  EXPECT_GT(r.committed_single, 0u);
  EXPECT_GT(r.committed_cross, 0u);  // kv.transfer traffic across shards.
  Status invariant = cluster.CheckInvariant();
  EXPECT_TRUE(invariant.ok()) << invariant.ToString();
}

INSTANTIATE_TEST_SUITE_P(
    AllWorkloads, ClusterWorkloadMatrixTest,
    ::testing::Combine(
        ::testing::ValuesIn(workload::WorkloadRegistry::Global().Names()),
        ::testing::Values(Scenario::kBaseline, Scenario::kCrash,
                          Scenario::kReconfig)),
    [](const auto& info) {
      return std::get<0>(info.param) + "_" +
             ScenarioName(std::get<1>(info.param));
    });

}  // namespace
}  // namespace thunderbolt::core
