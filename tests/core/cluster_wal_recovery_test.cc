// Adversarial durability scenario: a cluster runs on the "wal" storage
// backend (with a replica crash mid-run for good measure), shuts down, and
// the canonical committed state is rebuilt from the on-disk log alone. The
// recovered store must be byte-for-byte the committed state — same content
// fingerprint — and must still satisfy the workload's consistency
// invariant.
#include <gtest/gtest.h>

#include <filesystem>
#include <memory>
#include <string>

#include "core/cluster.h"
#include "storage/kv_store.h"
#include "testutil/testutil.h"

namespace thunderbolt::core {
namespace {

namespace fs = std::filesystem;

std::string FreshDir(const std::string& tag) {
  fs::path dir = fs::path(::testing::TempDir()) / ("cluster-wal-" + tag);
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir.string();
}

TEST(ClusterWalRecoveryTest, RecoveredStoreMatchesCommittedState) {
  const std::string dir = FreshDir("crash");
  workload::WorkloadOptions options =
      testutil::WorkloadTestOptions(/*num_records=*/300, /*seed=*/41);
  options.cross_shard_ratio = 0.2;

  uint64_t committed_fp = 0;
  uint64_t committed = 0;
  {
    ThunderboltConfig cfg;
    cfg.n = 4;
    cfg.batch_size = 50;
    cfg.num_executors = 4;
    cfg.num_validators = 4;
    cfg.proposal_prep_cost = Millis(5);
    cfg.seed = 41;
    cfg.store = "wal:dir=" + dir + ",group_commit=4,inner=sorted";

    Cluster cluster(cfg, "smallbank", options);
    cluster.CrashReplicaAt(2, Millis(1500));
    ClusterResult r = cluster.Run(Seconds(4));
    committed = r.committed_single + r.committed_cross;
    EXPECT_GT(committed, 0u);
    ASSERT_TRUE(cluster.CheckInvariant().ok());
    committed_fp = cluster.canonical_state().ContentFingerprint();

    const storage::StoreStats stats = cluster.canonical_state().Stats();
    EXPECT_GT(stats.wal_appends, 0u);
    EXPECT_GT(stats.wal_syncs, 0u);
    // Cluster teardown runs the wal destructor: final barrier flush.
  }

  // Rebuild the canonical state from the log alone, as a restarting
  // deployment would, and check it IS the committed state.
  std::unique_ptr<storage::KVStore> recovered =
      storage::StoreRegistry::Global().Create("wal:dir=" + dir +
                                              ",inner=sorted");
  ASSERT_NE(recovered, nullptr);
  EXPECT_EQ(recovered->ContentFingerprint(), committed_fp);
  EXPECT_GT(recovered->Stats().wal_recovered_records, 0u);

  // A fresh workload instance must accept the recovered state: the
  // invariant is a property of the data, not of the process that wrote it.
  std::unique_ptr<workload::Workload> checker =
      workload::WorkloadRegistry::Global().Create("smallbank", options);
  ASSERT_NE(checker, nullptr);
  Status invariant = checker->CheckInvariant(*recovered);
  EXPECT_TRUE(invariant.ok()) << invariant.ToString();

  fs::remove_all(dir);
}

TEST(ClusterWalRecoveryTest, RecoveredStoreSeedsANewClusterRun) {
  // Full restart loop: run on wal, recover into a second cluster over the
  // same directory, and keep committing. The second run starts from the
  // first run's durable state and must preserve the invariant end-to-end.
  const std::string dir = FreshDir("restart");
  workload::WorkloadOptions options =
      testutil::WorkloadTestOptions(/*num_records=*/200, /*seed=*/43);

  ThunderboltConfig cfg;
  cfg.n = 4;
  cfg.batch_size = 50;
  cfg.num_executors = 4;
  cfg.num_validators = 4;
  cfg.proposal_prep_cost = Millis(5);
  cfg.seed = 43;
  cfg.store = "wal:dir=" + dir + ",group_commit=2,inner=sorted";

  uint64_t first_fp = 0;
  {
    Cluster cluster(cfg, "smallbank", options);
    ClusterResult r = cluster.Run(Seconds(3));
    EXPECT_GT(r.committed_single + r.committed_cross, 0u);
    first_fp = cluster.canonical_state().ContentFingerprint();
  }
  {
    Cluster cluster(cfg, "smallbank", options);
    // Recovery ran inside cluster construction: the store factory replays
    // the log before InitStore re-seeds the working set on top of it, so
    // key versions continue from the recovered history (a version reset
    // here would silently break OCC validation in this run).
    const storage::StoreStats stats = cluster.canonical_state().Stats();
    EXPECT_GT(stats.wal_recovered_records, 0u);
    ClusterResult r = cluster.Run(Seconds(2));
    EXPECT_GT(r.committed_single + r.committed_cross, 0u);
    EXPECT_NE(cluster.canonical_state().ContentFingerprint(), first_fp)
        << "second run committed new work on top of the recovered state";
    Status invariant = cluster.CheckInvariant();
    EXPECT_TRUE(invariant.ok()) << invariant.ToString();
  }

  fs::remove_all(dir);
}

}  // namespace
}  // namespace thunderbolt::core
