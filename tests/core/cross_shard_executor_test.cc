#include "core/cross_shard_executor.h"

#include <gtest/gtest.h>

#include "baselines/serial_executor.h"
#include "contract/contract.h"
#include "contract/smallbank.h"
#include "testutil/testutil.h"
#include "workload/smallbank_workload.h"

namespace thunderbolt::core {
namespace {

class CrossShardTest : public ::testing::Test {
 protected:
  CrossShardTest()
      : registry_(contract::Registry::CreateDefault()), mapper_(4) {}

  txn::Transaction Send(TxnId id, std::string from, std::string to,
                        storage::Value amount) {
    txn::Transaction tx;
    tx.id = id;
    tx.contract = contract::kSendPayment;
    tx.accounts = {std::move(from), std::move(to)};
    tx.params = {amount};
    return tx;
  }

  std::shared_ptr<contract::Registry> registry_;
  txn::ShardMapper mapper_;
};

TEST_F(CrossShardTest, EmptyBatch) {
  storage::MemKVStore store;
  CrossShardExecutor ex(registry_.get(), Micros(10));
  CrossShardResult r = ex.Execute({}, &store);
  EXPECT_EQ(r.executed, 0u);
  EXPECT_EQ(r.duration, 0u);
}

TEST_F(CrossShardTest, StateMatchesSerialExecution) {
  workload::SmallBankConfig wc = testutil::SmallBankTestConfig(
      /*num_accounts=*/200, /*seed=*/51, /*read_ratio=*/0.0);
  wc.num_shards = 4;
  wc.cross_shard_ratio = 1.0;
  workload::SmallBankWorkload w(wc);
  storage::MemKVStore store, serial_store;
  w.InitStore(&store);
  w.InitStore(&serial_store);

  std::vector<txn::Transaction> txs;
  for (int i = 0; i < 100; ++i) txs.push_back(w.NextForShard(i % 4));

  CrossShardExecutor ex(registry_.get(), Micros(10));
  CrossShardResult r = ex.Execute(txs, &store);
  EXPECT_EQ(r.executed, txs.size());

  baselines::ExecuteSerial(*registry_, txs, &serial_store, Micros(10));
  EXPECT_EQ(store.ContentFingerprint(), serial_store.ContentFingerprint());
}

TEST_F(CrossShardTest, IndependentQueuesRunInParallel) {
  storage::MemKVStore store;
  // Find accounts in 4 distinct shards.
  std::vector<std::string> per_shard(4);
  for (int i = 0; i < 1000; ++i) {
    std::string a = "acct" + std::to_string(i);
    per_shard[mapper_.ShardOfAccount(a)] = a;
  }
  for (auto& a : per_shard) {
    ASSERT_FALSE(a.empty());
    store.Put(txn::CheckingKey(a), 1000);
  }
  // Two independent pairs: (s0 -> s1) and (s2 -> s3).
  std::vector<txn::Transaction> txs{
      Send(1, per_shard[0], per_shard[1], 10),
      Send(2, per_shard[2], per_shard[3], 10),
  };
  CrossShardExecutor ex(registry_.get(), Micros(10));
  CrossShardResult r = ex.Execute(txs, &store);
  EXPECT_EQ(r.distinct_accounts, 4u);
  // Makespan is one transaction's cost (queues drain in parallel), while
  // chained transactions on the same accounts take twice as long.
  CrossShardResult serial_like =
      ex.Execute({Send(3, per_shard[0], per_shard[1], 1),
                  Send(4, per_shard[1], per_shard[0], 1)},
                 &store);
  EXPECT_EQ(serial_like.distinct_accounts, 2u);
  EXPECT_LT(r.duration, serial_like.duration);
  EXPECT_GT(serial_like.critical_path, r.critical_path);
}

TEST_F(CrossShardTest, SharedAccountsChainInCommitOrder) {
  storage::MemKVStore store;
  std::vector<std::string> per_shard(4);
  for (int i = 0; i < 1000; ++i) {
    std::string a = "acct" + std::to_string(i);
    per_shard[mapper_.ShardOfAccount(a)] = a;
  }
  store.Put(txn::CheckingKey(per_shard[0]), 100);
  store.Put(txn::CheckingKey(per_shard[1]), 0);
  store.Put(txn::CheckingKey(per_shard[2]), 0);
  // Chain: s0 -> s1 (60), then s1 -> s2 (50): the second only succeeds if
  // it observes the first (commit order preserved on shared accounts).
  std::vector<txn::Transaction> txs{
      Send(1, per_shard[0], per_shard[1], 60),
      Send(2, per_shard[1], per_shard[2], 50),
  };
  CrossShardExecutor ex(registry_.get(), Micros(10));
  CrossShardResult r = ex.Execute(txs, &store);
  EXPECT_EQ(r.distinct_accounts, 3u);
  EXPECT_EQ(store.GetOrDefault(txn::CheckingKey(per_shard[1]), -1), 10);
  EXPECT_EQ(store.GetOrDefault(txn::CheckingKey(per_shard[2]), -1), 50);
}

TEST_F(CrossShardTest, WorkerPoolBoundsMakespan) {
  storage::MemKVStore store;
  // 8 fully independent transfers; 2 workers -> makespan ~ total/2.
  std::vector<txn::Transaction> txs;
  for (int i = 0; i < 8; ++i) {
    std::string a = "u" + std::to_string(2 * i);
    std::string b = "u" + std::to_string(2 * i + 1);
    store.Put(txn::CheckingKey(a), 100);
    store.Put(txn::CheckingKey(b), 100);
    txs.push_back(Send(i + 1, a, b, 1));
  }
  CrossShardExecutor two(registry_.get(), Micros(10), 2);
  CrossShardExecutor eight(registry_.get(), Micros(10), 8);
  storage::MemKVStore s1 = store.Clone(), s2 = store.Clone();
  CrossShardResult r2 = two.Execute(txs, &s1);
  CrossShardResult r8 = eight.Execute(txs, &s2);
  EXPECT_EQ(s1.ContentFingerprint(), s2.ContentFingerprint());
  EXPECT_GT(r2.duration, r8.duration);
  EXPECT_EQ(r2.critical_path, r8.critical_path);
}

}  // namespace
}  // namespace thunderbolt::core
