// Determinism regression: the discrete-event simulation must be bit-exact
// reproducible. Two Cluster runs from the same RNG seed have to produce
// byte-identical commit order and histogram/metrics output; any divergence
// means nondeterminism crept into the protocol or scheduler (e.g. iteration
// over an unordered container, wall-clock leakage, uninitialized reads).
// The check runs for every cluster workload — sharded generation and
// cross-shard execution must be deterministic for ycsb and tpcc_lite just
// like for SmallBank — and for both the default "hash" placement (the
// historical configuration, byte-for-byte) and the "directory" placement
// under periodic reconfiguration, where hot-key migration mutates the
// account mapping mid-run and must do so identically in every replay.
// The matrix additionally spans storage backends: the default "mem" runs
// carry the historical byte-identical baselines forward, and "cow"/
// "sorted" runs pin the new backends to the same bar — plus a cross-
// backend leg asserting mem and cow converge to the same committed state.
#include <cctype>
#include <cinttypes>
#include <cstdio>
#include <string>
#include <utility>

#include <gtest/gtest.h>

#include "core/cluster.h"
#include "testutil/testutil.h"

namespace thunderbolt::core {
namespace {

struct RunOutput {
  std::string commit_order;   // (round, time) per commit, serialized.
  std::string histogram;      // Throughput / latency report lines.
  uint64_t state_fingerprint; // Canonical store content digest.
  uint64_t placement_fingerprint;  // Policy mapping digest.
  std::string trace_json;     // Chrome trace export (virtual timestamps).
  std::string metrics_json;   // Metrics registry snapshot.
  std::string timeseries_json;  // Windowed counter deltas (sim clock).
  std::string phase_json;     // Per-phase latency decomposition.
};

/// (workload name, placement policy name, store backend name), plus an
/// optional open-loop shape: when `arrival` is set the cluster runs with
/// the service front end enabled (arrival process x admission policy) —
/// arrivals are seeded simulator events, so the whole open-loop pipeline
/// sits under the same byte-identical bar as the closed loop.
struct DeterminismParam {
  const char* workload;
  const char* placement;
  const char* store;
  const char* arrival = nullptr;
  const char* admission = nullptr;
};

RunOutput RunClusterOnce(const DeterminismParam& param, uint64_t seed) {
  ThunderboltConfig cfg;
  cfg.n = 4;
  cfg.batch_size = 100;
  cfg.placement = param.placement;
  cfg.store = param.store;
  // Trace with virtual timestamps under the sim pool: the export itself is
  // part of the determinism contract (byte-identical JSON per seed). The
  // windowed time-series rides the same sim clock, so its export is held
  // to the same bar.
  cfg.obs.trace = true;
  cfg.obs.timeseries = true;
  cfg.obs.timeseries_window_us = 100000;
  if (cfg.placement == "directory") {
    // Exercise the migration path: periodic reconfigurations give the
    // directory policy boundaries to rebalance at.
    cfg.reconfig_period_k_prime = 8;
  }
  if (param.arrival != nullptr) {
    cfg.service.enabled = true;
    cfg.service.arrival = param.arrival;
    cfg.service.admission = param.admission;
    cfg.service.rate_tps = 4000;
    cfg.service.queue_depth = 256;
  }
  workload::WorkloadOptions wc =
      testutil::WorkloadTestOptions(/*num_records=*/500, seed);
  wc.cross_shard_ratio = 0.1;
  // Keep TPC-C-lite tables test-sized (the defaults are bench-scale).
  wc.num_warehouses = 2;
  wc.customers_per_district = 20;
  wc.num_items = 50;

  Cluster cluster(cfg, param.workload, wc);
  ClusterResult r = cluster.Run(Seconds(2));

  RunOutput out;
  for (const auto& [round, when] : r.commit_times) {
    char line[64];
    std::snprintf(line, sizeof(line), "%" PRIu64 "@%" PRIu64 "\n",
                  static_cast<uint64_t>(round), static_cast<uint64_t>(when));
    out.commit_order += line;
  }
  char report[256];
  std::snprintf(report, sizeof(report),
                "committed=%" PRIu64 "+%" PRIu64 " tput=%.6f avg=%.9f "
                "p50=%.9f p99=%.9f aborts=%" PRIu64 " migrations=%" PRIu64
                "\n",
                r.committed_single, r.committed_cross, r.throughput_tps,
                r.avg_latency_s, r.p50_latency_s, r.p99_latency_s,
                r.preplay_aborts, r.migrations);
  out.histogram = report;
  out.state_fingerprint = cluster.canonical_state().ContentFingerprint();
  out.placement_fingerprint = cluster.placement().Fingerprint();
  out.trace_json = cluster.obs().ring()->ToChromeJson();
  out.metrics_json = cluster.obs().metrics().ToJson();
  cluster.obs().FlushTimeSeries();  // Stamp the trailing partial window.
  out.timeseries_json = cluster.obs().timeseries()->ToJson();
  out.phase_json = r.phase_latency.ToJson();
  return out;
}

class ClusterDeterminismTest
    : public ::testing::TestWithParam<DeterminismParam> {};

TEST_P(ClusterDeterminismTest, IdenticalSeedsProduceByteIdenticalRuns) {
  RunOutput a = RunClusterOnce(GetParam(), /*seed=*/1234);
  RunOutput b = RunClusterOnce(GetParam(), /*seed=*/1234);
  EXPECT_FALSE(a.commit_order.empty());
  EXPECT_EQ(a.commit_order, b.commit_order);
  EXPECT_EQ(a.histogram, b.histogram);
  EXPECT_EQ(a.state_fingerprint, b.state_fingerprint);
  EXPECT_EQ(a.placement_fingerprint, b.placement_fingerprint);
  // The whole observability export is deterministic too: same seed, same
  // bytes — trace ring, metrics snapshot, windowed time-series and the
  // per-phase latency decomposition alike.
  EXPECT_FALSE(a.trace_json.empty());
  EXPECT_EQ(a.trace_json, b.trace_json);
  EXPECT_EQ(a.metrics_json, b.metrics_json);
  EXPECT_FALSE(a.timeseries_json.empty());
  EXPECT_EQ(a.timeseries_json, b.timeseries_json);
  EXPECT_EQ(a.phase_json, b.phase_json);
}

TEST_P(ClusterDeterminismTest, DifferentSeedsDiverge) {
  // Guard against the helper accidentally ignoring the seed, which would
  // make the identical-seed assertion vacuous.
  RunOutput a = RunClusterOnce(GetParam(), /*seed=*/1234);
  RunOutput b = RunClusterOnce(GetParam(), /*seed=*/99);
  EXPECT_NE(a.commit_order, b.commit_order);
}

INSTANTIATE_TEST_SUITE_P(
    AllWorkloads, ClusterDeterminismTest,
    ::testing::Values(DeterminismParam{"smallbank", "hash", "mem"},
                      DeterminismParam{"ycsb", "hash", "mem"},
                      DeterminismParam{"tpcc_lite", "hash", "mem"},
                      DeterminismParam{"smallbank", "directory", "mem"},
                      DeterminismParam{"ycsb", "directory", "mem"},
                      DeterminismParam{"tpcc_lite", "directory", "mem"},
                      DeterminismParam{"smallbank", "hash", "cow"},
                      DeterminismParam{"ycsb", "hash", "sorted"},
                      DeterminismParam{"tpcc_lite", "directory", "cow"},
                      // Wrapper backends sit below the determinism line
                      // too: WAL barriers/checkpoints and cache evictions
                      // are pure functions of the committed op sequence,
                      // so even their counters and spans must replay
                      // byte-identically (ephemeral WAL dir names must
                      // never leak into any export).
                      DeterminismParam{"smallbank", "hash",
                                       "wal:group_commit=4,inner=sorted"},
                      DeterminismParam{"ycsb", "hash",
                                       "cached:capacity=64,inner=sorted"},
                      DeterminismParam{
                          "tpcc_lite", "directory",
                          "wal:group_commit=2,checkpoint_every=64,"
                          "inner=cached:capacity=128,inner=mem"},
                      // Open-loop entries: the service front end's arrival
                      // schedule, admission decisions, queue-depth gauges
                      // and end-to-end latency samples must all replay
                      // byte-identically per seed.
                      DeterminismParam{"smallbank", "hash", "mem", "poisson",
                                       "drop-tail"},
                      DeterminismParam{"ycsb", "hash", "mem", "burst",
                                       "codel"}),
    [](const auto& info) {
      // Store specs carry ':', '=' and ',' — gtest names must stay
      // alphanumeric, so flatten every non-alnum byte to '_'.
      std::string name = std::string(info.param.workload) + "_" +
                         info.param.placement + "_" + info.param.store;
      if (info.param.arrival != nullptr) {
        name += std::string("_") + info.param.arrival + "_" +
                info.param.admission;
      }
      for (char& c : name) {
        if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
      }
      return name;
    });

// Swapping the storage backend must not move the committed state: a mem
// cluster and a cow cluster driven from the same seed land on identical
// commit orders, metrics and content fingerprints (the store is below the
// determinism line — only its snapshot/fork cost profile differs).
TEST(StoreBackendClusterAgreement, MemAndCowConverge) {
  for (const char* workload : {"smallbank", "tpcc_lite"}) {
    RunOutput mem =
        RunClusterOnce(DeterminismParam{workload, "hash", "mem"}, 1234);
    RunOutput cow =
        RunClusterOnce(DeterminismParam{workload, "hash", "cow"}, 1234);
    EXPECT_FALSE(mem.commit_order.empty());
    EXPECT_EQ(mem.commit_order, cow.commit_order) << workload;
    EXPECT_EQ(mem.histogram, cow.histogram) << workload;
    EXPECT_EQ(mem.state_fingerprint, cow.state_fingerprint) << workload;
  }
}

// The durable stack is invisible to the protocol: running the whole
// cluster through WAL + block cache changes nothing above the storage
// line — same commits, same latencies, same final state as bare mem.
TEST(StoreBackendClusterAgreement, MemAndWalStackConverge) {
  RunOutput mem =
      RunClusterOnce(DeterminismParam{"smallbank", "hash", "mem"}, 1234);
  RunOutput wal = RunClusterOnce(
      DeterminismParam{"smallbank", "hash",
                       "wal:group_commit=4,inner=cached:capacity=256,"
                       "inner=sorted"},
      1234);
  EXPECT_FALSE(mem.commit_order.empty());
  EXPECT_EQ(mem.commit_order, wal.commit_order);
  EXPECT_EQ(mem.histogram, wal.histogram);
  EXPECT_EQ(mem.state_fingerprint, wal.state_fingerprint);
}

}  // namespace
}  // namespace thunderbolt::core
