// Tests for preplay validation (paper section 4): honest preplay results
// validate and apply; any tampering with read sets, write sets, values or
// order is rejected deterministically.
#include "core/validator.h"

#include <gtest/gtest.h>

#include "ce/concurrency_controller.h"
#include "ce/sim_executor_pool.h"
#include "contract/contract.h"
#include "contract/smallbank.h"
#include "testutil/testutil.h"
#include "workload/smallbank_workload.h"

namespace thunderbolt::core {
namespace {

class ValidatorTest : public ::testing::Test {
 protected:
  ValidatorTest() : registry_(contract::Registry::CreateDefault()) {}

  /// Produces an honest preplayed section via the CE.
  std::vector<PreplayedTxn> Preplay(const std::vector<txn::Transaction>& txs,
                                    const storage::MemKVStore& base) {
    ce::ConcurrencyController cc(&base,
                                 static_cast<uint32_t>(txs.size()));
    ce::SimExecutorPool pool(8, ce::ExecutionCostModel{});
    auto result = pool.Run(cc, *registry_, txs);
    EXPECT_TRUE(result.ok());
    std::vector<PreplayedTxn> out;
    for (ce::TxnSlot slot : result->order) {
      PreplayedTxn p;
      p.tx = txs[slot];
      p.rw_set = result->records[slot].rw_set;
      p.emitted = result->records[slot].emitted;
      out.push_back(std::move(p));
    }
    return out;
  }

  std::shared_ptr<contract::Registry> registry_;
};

TEST_F(ValidatorTest, HonestPreplayValidates) {
  storage::MemKVStore base;
  workload::SmallBankWorkload w =
      testutil::MakeSmallBank(&base, /*num_accounts=*/100, /*seed=*/41);
  auto txs = w.MakeBatch(200);
  auto preplayed = Preplay(txs, base);

  ValidationResult vr = ValidatePreplay(*registry_, preplayed, base);
  EXPECT_TRUE(vr.valid) << vr.failure;
  EXPECT_GT(vr.ops, 0u);

  // Applying the writes yields the same state the CE computed.
  storage::MemKVStore validated = base.Clone();
  ASSERT_TRUE(validated.Write(vr.writes).ok());
  storage::MemKVStore replayed = base.Clone();
  ce::ConcurrencyController cc(&base, static_cast<uint32_t>(txs.size()));
  ce::SimExecutorPool pool(8, ce::ExecutionCostModel{});
  auto r = pool.Run(cc, *registry_, txs);
  ASSERT_TRUE(r.ok());
  ASSERT_TRUE(replayed.Write(r->final_writes).ok());
  EXPECT_EQ(validated.ContentFingerprint(), replayed.ContentFingerprint());
}

TEST_F(ValidatorTest, TamperedReadValueRejected) {
  storage::MemKVStore base;
  base.Put("a/checking", 100);
  base.Put("a/savings", 0);
  txn::Transaction tx;
  tx.id = 1;
  tx.contract = contract::kGetBalance;
  tx.accounts = {"a"};
  auto preplayed = Preplay({tx}, base);
  ASSERT_EQ(preplayed.size(), 1u);
  // Corrupt the declared read value.
  preplayed[0].rw_set.reads[0].value += 1;
  ValidationResult vr = ValidatePreplay(*registry_, preplayed, base);
  EXPECT_FALSE(vr.valid);
}

TEST_F(ValidatorTest, TamperedWriteValueRejected) {
  storage::MemKVStore base;
  base.Put("a/checking", 100);
  base.Put("b/checking", 0);
  txn::Transaction tx;
  tx.id = 1;
  tx.contract = contract::kSendPayment;
  tx.accounts = {"a", "b"};
  tx.params = {10};
  auto preplayed = Preplay({tx}, base);
  ASSERT_EQ(preplayed[0].rw_set.writes.size(), 2u);
  preplayed[0].rw_set.writes[0].value += 5;  // Steal funds.
  ValidationResult vr = ValidatePreplay(*registry_, preplayed, base);
  EXPECT_FALSE(vr.valid);
}

TEST_F(ValidatorTest, StaleBaseStateRejected) {
  // Preplay against one state, validate against another (simulates a
  // proposer that ignored a conflicting committed cross-shard write).
  storage::MemKVStore base;
  base.Put("a/checking", 100);
  base.Put("b/checking", 0);
  txn::Transaction tx;
  tx.id = 1;
  tx.contract = contract::kSendPayment;
  tx.accounts = {"a", "b"};
  tx.params = {10};
  auto preplayed = Preplay({tx}, base);

  storage::MemKVStore diverged = base.Clone();
  diverged.Put("a/checking", 50);  // A cross-shard write landed meanwhile.
  ValidationResult vr = ValidatePreplay(*registry_, preplayed, diverged);
  EXPECT_FALSE(vr.valid);
}

TEST_F(ValidatorTest, ReorderedScheduleRejectedWhenConflicting) {
  storage::MemKVStore base;
  base.Put("a/checking", 100);
  base.Put("b/checking", 0);
  base.Put("c/checking", 0);
  // T1: a -> b of 60; T2: b -> c of 40 (depends on T1's deposit).
  txn::Transaction t1, t2;
  t1.id = 1;
  t1.contract = contract::kSendPayment;
  t1.accounts = {"a", "b"};
  t1.params = {60};
  t2.id = 2;
  t2.contract = contract::kSendPayment;
  t2.accounts = {"b", "c"};
  t2.params = {40};
  auto preplayed = Preplay({t1, t2}, base);
  ASSERT_EQ(preplayed.size(), 2u);
  // If the schedule has T1 before T2 with a value dependency, swapping
  // them must fail validation.
  if (preplayed[0].tx.id == 1 && preplayed[1].tx.id == 2 &&
      !preplayed[1].rw_set.reads.empty()) {
    std::swap(preplayed[0], preplayed[1]);
    ValidationResult vr = ValidatePreplay(*registry_, preplayed, base);
    EXPECT_FALSE(vr.valid);
  }
}

TEST_F(ValidatorTest, UndeclaredReadRejected) {
  storage::MemKVStore base;
  base.Put("a/checking", 100);
  base.Put("a/savings", 10);
  txn::Transaction tx;
  tx.id = 1;
  tx.contract = contract::kGetBalance;
  tx.accounts = {"a"};
  auto preplayed = Preplay({tx}, base);
  preplayed[0].rw_set.reads.pop_back();  // Hide one read.
  ValidationResult vr = ValidatePreplay(*registry_, preplayed, base);
  EXPECT_FALSE(vr.valid);
}

TEST(ValidationCriticalPathTest, IndependentTxnsPathOne) {
  std::vector<PreplayedTxn> batch(3);
  for (int i = 0; i < 3; ++i) {
    batch[i].rw_set.writes.push_back(
        {txn::OpType::kWrite, "k" + std::to_string(i), 1});
  }
  EXPECT_EQ(ValidationCriticalPath(batch), 1u);
}

TEST(ValidationCriticalPathTest, ChainedWritersFullDepth) {
  std::vector<PreplayedTxn> batch(4);
  for (int i = 0; i < 4; ++i) {
    batch[i].rw_set.writes.push_back({txn::OpType::kWrite, "hot", 1});
  }
  EXPECT_EQ(ValidationCriticalPath(batch), 4u);
}

TEST(ValidationCriticalPathTest, ReadersChainThroughWriters) {
  std::vector<PreplayedTxn> batch(3);
  batch[0].rw_set.writes.push_back({txn::OpType::kWrite, "k", 1});
  batch[1].rw_set.reads.push_back({txn::OpType::kRead, "k", 1});
  batch[2].rw_set.reads.push_back({txn::OpType::kRead, "k", 1});
  // Readers depend on the writer but not on each other: depth 2.
  EXPECT_EQ(ValidationCriticalPath(batch), 2u);
}

TEST(ValidationCriticalPathTest, EmptyBatch) {
  EXPECT_EQ(ValidationCriticalPath({}), 0u);
}

}  // namespace
}  // namespace thunderbolt::core
