// Adversarial battery around hot-key migration: a cluster on the
// "directory" placement policy, pushed through reconfiguration boundaries
// (periodic rotation, plus a crash-driven rotation) with enough
// cross-shard traffic that the per-shard access counters force accounts to
// migrate. Every workload invariant must survive the re-homing — placement
// decides where accounts live, never what their keys hold — and the
// migration itself must be deterministic and reflected by the policy.
#include <map>
#include <string>

#include <gtest/gtest.h>

#include "core/cluster.h"
#include "testutil/testutil.h"

namespace thunderbolt::core {
namespace {

ThunderboltConfig MigrationConfig() {
  ThunderboltConfig cfg;
  cfg.n = 4;
  cfg.batch_size = 80;
  cfg.proposal_prep_cost = Millis(5);
  cfg.reconfig_period_k_prime = 8;
  cfg.placement = "directory";
  cfg.placement_params = "top_k=4";
  cfg.seed = 501;
  return cfg;
}

workload::WorkloadOptions MigrationWorkload(uint64_t seed) {
  workload::WorkloadOptions wc =
      testutil::WorkloadTestOptions(/*num_records=*/400, seed);
  wc.cross_shard_ratio = 0.3;
  // Keep TPC-C-lite tables test-sized (the defaults are bench-scale).
  wc.num_warehouses = 2;
  wc.customers_per_district = 20;
  wc.num_items = 50;
  return wc;
}

class ClusterMigrationInvariantTest
    : public ::testing::TestWithParam<const char*> {};

TEST_P(ClusterMigrationInvariantTest, MigrationMovesHotKeysInvariantHolds) {
  Cluster cluster(MigrationConfig(), GetParam(), MigrationWorkload(502));
  ClusterResult r = cluster.Run(Seconds(8));

  // The run must actually have crossed reconfiguration boundaries and the
  // hot-key path must have re-homed at least one account (the acceptance
  // bar for the directory policy).
  ASSERT_GE(r.reconfigurations, 1u) << "no reconfiguration boundary reached";
  ASSERT_GE(r.migrations, 1u) << "no hot key migrated at the boundary";
  EXPECT_GT(r.committed_cross, 0u);

  // Every migration event is well-formed and the *last* move of each
  // account is what the policy answers now.
  std::map<std::string, ShardId> final_home;
  for (const placement::MigrationEvent& e : cluster.migration_events()) {
    EXPECT_NE(e.from, e.to);
    EXPECT_LT(e.to, MigrationConfig().n);
    EXPECT_GT(e.remote_accesses, 0u);
    EXPECT_GE(e.epoch, 1u);
    final_home[e.account] = e.to;
  }
  for (const auto& [account, shard] : final_home) {
    EXPECT_EQ(cluster.placement().ShardOfAccount(account), shard) << account;
  }

  // The whole point: re-homing accounts must never corrupt application
  // state.
  EXPECT_TRUE(cluster.CheckInvariant().ok())
      << cluster.CheckInvariant().ToString();
}

TEST_P(ClusterMigrationInvariantTest, MigrationIsDeterministicAcrossRuns) {
  uint64_t fp[2];
  uint64_t placement_fp[2];
  uint64_t migrations[2];
  for (int i = 0; i < 2; ++i) {
    Cluster cluster(MigrationConfig(), GetParam(), MigrationWorkload(502));
    ClusterResult r = cluster.Run(Seconds(6));
    fp[i] = cluster.canonical_state().ContentFingerprint();
    placement_fp[i] = cluster.placement().Fingerprint();
    migrations[i] = r.migrations;
  }
  EXPECT_EQ(fp[0], fp[1]);
  EXPECT_EQ(placement_fp[0], placement_fp[1]);
  EXPECT_EQ(migrations[0], migrations[1]);
  EXPECT_GE(migrations[0], 1u);
}

INSTANTIATE_TEST_SUITE_P(AllWorkloads, ClusterMigrationInvariantTest,
                         ::testing::Values("smallbank", "ycsb", "tpcc_lite"),
                         [](const auto& info) {
                           return std::string(info.param);
                         });

TEST(ClusterMigrationCrashTest, CrashDrivenRotationStillMigratesSafely) {
  // Adversarial variant: the reconfiguration is forced by a silent
  // (crashed) proposer rather than periodic rotation, while cross-shard
  // traffic keeps feeding the access counters.
  ThunderboltConfig cfg = MigrationConfig();
  cfg.reconfig_period_k_prime = 0;
  cfg.silence_rounds_k = 5;
  Cluster cluster(cfg, "smallbank", MigrationWorkload(503));
  cluster.CrashReplicaAt(2, Millis(300));
  ClusterResult r = cluster.Run(Seconds(8));
  ASSERT_GE(r.reconfigurations, 1u);
  EXPECT_GE(r.migrations, 1u);
  EXPECT_TRUE(cluster.CheckInvariant().ok())
      << cluster.CheckInvariant().ToString();
}

TEST(ClusterMigrationCrashTest, NonMigratingPoliciesNeverReportMigrations) {
  // Control: the same churny configuration under hash placement must cross
  // epochs without a single migration event.
  ThunderboltConfig cfg = MigrationConfig();
  cfg.placement = "hash";
  cfg.placement_params = "";
  Cluster cluster(cfg, "smallbank", MigrationWorkload(504));
  ClusterResult r = cluster.Run(Seconds(6));
  ASSERT_GE(r.reconfigurations, 1u);
  EXPECT_EQ(r.migrations, 0u);
  EXPECT_TRUE(cluster.migration_events().empty());
  EXPECT_TRUE(cluster.CheckInvariant().ok());
}

}  // namespace
}  // namespace thunderbolt::core
