#!/usr/bin/env python3
"""Schema sanity check for a --timeseries-out artifact.

Validates the invariants the TimeSeriesRecorder promises:
  * top level is {window_us, windows, totals} with window_us > 0;
  * windows are non-overlapping and ordered (a zero-length window is legal
    only as the final flush stamp: counters that moved after the last
    boundary close at end-of-run with start_us == end_us);
  * every counter delta is attributed to exactly one window, so the
    per-window deltas of each counter sum to its entry in totals;
  * when the run used the open-loop service front end (svc.* counters
    present), its conservation law holds over the totals:
      offered == admitted + rejected       (door-level split)
      shed + dequeued <= admitted          (the rest is still queued)
      commits <= dequeued                  (the pipeline can only commit
                                            work it was handed)

Usage: check_timeseries.py <timeseries.json>
Exits 0 when the artifact is well-formed, 1 with a diagnostic otherwise.
"""

import json
import sys


def fail(msg):
    print(f"check_timeseries: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def main():
    if len(sys.argv) != 2:
        fail("usage: check_timeseries.py <timeseries.json>")
    with open(sys.argv[1]) as f:
        doc = json.load(f)

    for key in ("window_us", "windows", "totals"):
        if key not in doc:
            fail(f"missing top-level key {key!r}")
    if not isinstance(doc["window_us"], int) or doc["window_us"] <= 0:
        fail(f"window_us must be a positive integer, got {doc['window_us']!r}")
    if not isinstance(doc["windows"], list):
        fail("windows must be a list")

    prev_end = 0
    for i, w in enumerate(doc["windows"]):
        for key in ("start_us", "end_us", "counters", "gauges", "histograms"):
            if key not in w:
                fail(f"window {i} missing key {key!r}")
        if w["start_us"] > w["end_us"]:
            fail(f"window {i} has negative span [{w['start_us']}, {w['end_us']}]")
        if w["start_us"] == w["end_us"] and i + 1 != len(doc["windows"]):
            fail(f"window {i} is zero-length but not the final flush window")
        if w["start_us"] < prev_end:
            fail(f"window {i} overlaps the previous one")
        prev_end = w["end_us"]
        for name, delta in w["counters"].items():
            if not isinstance(delta, int) or delta < 0:
                fail(f"window {i} counter {name!r} delta {delta!r} "
                     "is not a non-negative integer")

    sums = {}
    for w in doc["windows"]:
        for name, delta in w["counters"].items():
            sums[name] = sums.get(name, 0) + delta
    for name, total in doc["totals"].items():
        if sums.get(name, 0) != total:
            fail(f"counter {name!r}: window deltas sum to "
                 f"{sums.get(name, 0)} but totals says {total}")
    for name in sums:
        if name not in doc["totals"]:
            fail(f"counter {name!r} appears in windows but not in totals")

    totals = doc["totals"]
    if "svc.offered" in totals:
        offered = totals.get("svc.offered", 0)
        admitted = totals.get("svc.admitted", 0)
        rejected = totals.get("svc.rejected", 0)
        shed = totals.get("svc.shed", 0)
        dequeued = totals.get("svc.dequeued", 0)
        if offered != admitted + rejected:
            fail(f"svc conservation: offered {offered} != admitted "
                 f"{admitted} + rejected {rejected}")
        if shed + dequeued > admitted:
            fail(f"svc conservation: shed {shed} + dequeued {dequeued} "
                 f"> admitted {admitted}")
        commits = (totals.get("cluster.commits_single", 0) +
                   totals.get("cluster.commits_cross", 0))
        if commits > dequeued:
            fail(f"svc conservation: commits {commits} > dequeued "
                 f"{dequeued}")
        print(f"check_timeseries: svc conservation OK (offered {offered}, "
              f"admitted {admitted}, rejected {rejected}, shed {shed}, "
              f"dequeued {dequeued}, commits {commits})")

    print(f"check_timeseries: OK ({len(doc['windows'])} windows, "
          f"{len(doc['totals'])} counters)")


if __name__ == "__main__":
    main()
