// Component microbenchmarks (google-benchmark): hashing, signatures, the
// concurrency controller, the executor pool, validation, and the workload
// generator. These are wall-clock benchmarks of the implementation itself
// (not the simulated system) — useful for tracking regressions.
#include <benchmark/benchmark.h>

#include "baselines/serial_executor.h"
#include "ce/concurrency_controller.h"
#include "ce/sim_executor_pool.h"
#include "contract/contract.h"
#include "core/validator.h"
#include "crypto/signature.h"
#include "obs/metrics.h"
#include "obs/timeseries.h"
#include "obs/trace.h"
#include "workload/smallbank_workload.h"

namespace thunderbolt {
namespace {

void BM_Sha256(benchmark::State& state) {
  std::string data(static_cast<size_t>(state.range(0)), 'x');
  for (auto _ : state) {
    benchmark::DoNotOptimize(Sha256::Digest(data));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_Sha256)->Arg(64)->Arg(1024)->Arg(65536);

void BM_SignVerify(benchmark::State& state) {
  auto dir = crypto::KeyDirectory::Create(4, 1);
  Hash256 digest = Sha256::Digest("message");
  crypto::Signature sig = dir.key(0).Sign(digest);
  for (auto _ : state) {
    benchmark::DoNotOptimize(dir.Verify(digest, sig));
  }
}
BENCHMARK(BM_SignVerify);

void BM_QuorumValidate(benchmark::State& state) {
  uint32_t n = static_cast<uint32_t>(state.range(0));
  auto dir = crypto::KeyDirectory::Create(n, 1);
  Hash256 digest = Sha256::Digest("block");
  crypto::QuorumCert qc;
  qc.digest = digest;
  for (uint32_t i = 0; i < QuorumSize(n); ++i) {
    qc.signatures.push_back(dir.key(i).Sign(digest));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(qc.Validate(dir, n).ok());
  }
}
BENCHMARK(BM_QuorumValidate)->Arg(4)->Arg(16)->Arg(64);

void BM_StoreClone(benchmark::State& state) {
  // MemKVStore::Clone forks validator state on every preplay validation;
  // the explicit reserve keeps it to a single allocation burst.
  storage::MemKVStore store;
  uint64_t n = static_cast<uint64_t>(state.range(0));
  store.Reserve(n);
  for (uint64_t i = 0; i < n; ++i) {
    store.Put("key" + std::to_string(i), static_cast<storage::Value>(i));
  }
  for (auto _ : state) {
    storage::MemKVStore copy = store.Clone();
    benchmark::DoNotOptimize(copy.size());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(n));
}
BENCHMARK(BM_StoreClone)->Arg(1000)->Arg(20000);

void RegistryStoreBench(benchmark::State& state, const char* backend,
                        bool fork) {
  // Snapshot()/Fork() cost per backend at |state.range(0)| live keys: the
  // copying backends ("mem", "sorted") pay O(n); the persistent "cow"
  // tree retains its root in O(1) — the ISSUE-5 acceptance bar is cow
  // >= 10x cheaper than mem at >= 10k keys.
  std::unique_ptr<storage::KVStore> store =
      storage::StoreRegistry::Global().Create(backend);
  uint64_t n = static_cast<uint64_t>(state.range(0));
  store->Reserve(n);
  for (uint64_t i = 0; i < n; ++i) {
    store->Put("key" + std::to_string(i), static_cast<storage::Value>(i));
  }
  for (auto _ : state) {
    if (fork) {
      std::unique_ptr<storage::KVStore> copy = store->Fork();
      benchmark::DoNotOptimize(copy->size());
    } else {
      std::shared_ptr<const storage::StoreSnapshot> snap = store->Snapshot();
      benchmark::DoNotOptimize(snap->size());
    }
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(n));
}

void BM_StoreSnapshot_Mem(benchmark::State& state) {
  RegistryStoreBench(state, "mem", /*fork=*/false);
}
BENCHMARK(BM_StoreSnapshot_Mem)->Arg(10000)->Arg(100000);

void BM_StoreSnapshot_Cow(benchmark::State& state) {
  RegistryStoreBench(state, "cow", /*fork=*/false);
}
BENCHMARK(BM_StoreSnapshot_Cow)->Arg(10000)->Arg(100000);

void BM_StoreFork_Mem(benchmark::State& state) {
  RegistryStoreBench(state, "mem", /*fork=*/true);
}
BENCHMARK(BM_StoreFork_Mem)->Arg(10000)->Arg(100000);

void BM_StoreFork_Cow(benchmark::State& state) {
  RegistryStoreBench(state, "cow", /*fork=*/true);
}
BENCHMARK(BM_StoreFork_Cow)->Arg(10000)->Arg(100000);

void BM_StoreWriteBatch(benchmark::State& state) {
  // Batch apply over a half-fresh/half-live key mix (the post-commit write
  // path): try_emplace keeps it to one lookup per entry. The store is
  // re-cloned from the base every iteration so the fresh-key insertion
  // path is measured in steady state, not just on the first pass.
  storage::MemKVStore base;
  const int64_t kLive = 10000;
  for (int64_t i = 0; i < kLive; ++i) {
    base.Put("key" + std::to_string(i), i);
  }
  storage::WriteBatch batch;
  for (int64_t i = kLive / 2; i < kLive / 2 + kLive; ++i) {
    batch.Put("key" + std::to_string(i), i + 1);
  }
  for (auto _ : state) {
    state.PauseTiming();
    storage::MemKVStore store = base.Clone();
    state.ResumeTiming();
    benchmark::DoNotOptimize(store.Write(batch).ok());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(batch.size()));
}
BENCHMARK(BM_StoreWriteBatch);

txn::Transaction ShardProbeTxn(int num_accounts) {
  txn::Transaction tx;
  tx.id = 1;
  tx.contract = "smallbank.send_payment";
  for (int i = 0; i < num_accounts; ++i) {
    tx.accounts.push_back("acct" + std::to_string(i * 37));
  }
  tx.params = {5};
  return tx;
}

void BM_ShardsOf(benchmark::State& state) {
  // The sorted-distinct-shards vector built for every transaction that
  // needs the actual shard ids (cross-shard planning).
  txn::ShardMapper mapper(16);
  txn::Transaction tx = ShardProbeTxn(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(mapper.ShardsOf(tx));
  }
}
BENCHMARK(BM_ShardsOf)->Arg(1)->Arg(2)->Arg(4);

void BM_ShardOfCached(benchmark::State& state) {
  // Steady-state account -> shard resolution through the per-mapper memo:
  // after the first pass every lookup is one hash-map probe instead of a
  // Sha256 digest (classification resolves each account twice per txn —
  // policy + workload buckets — so the memo halves the crypto work even
  // before reuse across batches).
  txn::ShardMapper mapper(16);
  std::vector<std::string> accounts;
  for (int i = 0; i < 512; ++i) {
    accounts.push_back("acct" + std::to_string(i));
  }
  for (const std::string& a : accounts) mapper.ShardOfAccount(a);  // Warm.
  size_t next = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(mapper.ShardOfAccount(accounts[next]));
    next = (next + 1) & 511;
  }
}
BENCHMARK(BM_ShardOfCached);

void BM_IsSingleShard(benchmark::State& state) {
  // The hot classification path (every pulled transaction): early-exits on
  // the first account mapping to a different shard, with no allocation.
  txn::ShardMapper mapper(16);
  txn::Transaction tx = ShardProbeTxn(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(mapper.IsSingleShard(tx));
  }
}
BENCHMARK(BM_IsSingleShard)->Arg(1)->Arg(2)->Arg(4);

void BM_ZipfianNext(benchmark::State& state) {
  Rng rng(1);
  ZipfianGenerator zipf(1000000, 0.85);
  for (auto _ : state) {
    benchmark::DoNotOptimize(zipf.Next(rng));
  }
}
BENCHMARK(BM_ZipfianNext);

void BM_WorkloadGen(benchmark::State& state) {
  workload::SmallBankConfig wc;
  wc.num_accounts = 10000;
  workload::SmallBankWorkload w(wc);
  for (auto _ : state) {
    benchmark::DoNotOptimize(w.Next());
  }
}
BENCHMARK(BM_WorkloadGen);

void BM_TraceDisabled(benchmark::State& state) {
  // The cost every instrumentation site pays when tracing is off: one
  // virtual `enabled()` call and a branch — the TraceEvent is never even
  // constructed (the obs ISSUE's "disabled overhead is one branch" bar).
  obs::Tracer* tracer = obs::NullTracerInstance();
  uint64_t ts = 0;
  for (auto _ : state) {
    if (tracer->enabled()) {
      obs::TraceEvent e;
      e.kind = obs::EventKind::kTxnCommit;
      e.ts_us = ++ts;
      tracer->Record(e);
    }
    benchmark::DoNotOptimize(tracer);
  }
}
BENCHMARK(BM_TraceDisabled);

void BM_TraceRecord(benchmark::State& state) {
  // The enabled path: construct the event and append it to the mutex-
  // guarded ring (steady-state, i.e. mostly overwriting old slots).
  obs::RingTracer tracer(1 << 12);
  uint64_t ts = 0;
  for (auto _ : state) {
    if (tracer.enabled()) {
      obs::TraceEvent e;
      e.kind = obs::EventKind::kTxnCommit;
      e.ts_us = ++ts;
      tracer.Record(e);
    }
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_TraceRecord);

void BM_TraceEnabled(benchmark::State& state) {
  // The fully-instrumented path a span-recording site pays under a live
  // ring: construct a TraceEvent with causality ids and flow phase set
  // (the cross-shard hold-span shape) and append it. Compare against
  // BM_TraceRecord for the cost the causality fields add.
  obs::RingTracer tracer(1 << 12);
  uint64_t ts = 0;
  for (auto _ : state) {
    if (tracer.enabled()) {
      obs::TraceEvent e;
      e.kind = obs::EventKind::kCrossHoldSpan;
      e.ts_us = ++ts;
      e.dur_us = 5;
      e.txn = ts;
      e.trace_id = ts;
      e.span_id = 1;
      e.flow = obs::FlowPhase::kStart;
      tracer.Record(e);
    }
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_TraceEnabled);

void BM_TimeSeriesWindow(benchmark::State& state) {
  // Cost of closing one time-series window over a registry of
  // |state.range(0)| counters: one delta snapshot against the previous
  // window's values. This is what the cluster pays at every window
  // boundary on the sim clock.
  obs::MetricsRegistry metrics;
  const int64_t counters = state.range(0);
  std::vector<obs::Counter*> c;
  c.reserve(static_cast<size_t>(counters));
  for (int64_t i = 0; i < counters; ++i) {
    c.push_back(&metrics.GetCounter("bench.counter" + std::to_string(i)));
  }
  auto recorder =
      std::make_unique<obs::TimeSeriesRecorder>(&metrics, /*window_us=*/100);
  uint64_t now = 0;
  size_t next = 0;
  for (auto _ : state) {
    c[next]->Inc();
    next = (next + 1) % c.size();
    now += 100;
    recorder->Advance(now);
    // Windows accumulate by design; restart the recorder periodically so
    // a long benchmark run measures window closing, not vector growth.
    if (recorder->window_count() >= 4096) {
      recorder = std::make_unique<obs::TimeSeriesRecorder>(&metrics, 100);
      now = 0;
    }
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_TimeSeriesWindow)->Arg(8)->Arg(64);

void BM_CcBatch(benchmark::State& state) {
  // Real-time cost of executing one SmallBank batch through the CC with
  // the simulated pool (the dominant cost of cluster simulations).
  uint32_t batch_size = static_cast<uint32_t>(state.range(0));
  workload::SmallBankConfig wc;
  wc.num_accounts = 1000;
  wc.theta = 0.85;
  wc.seed = 3;
  workload::SmallBankWorkload w(wc);
  storage::MemKVStore store;
  w.InitStore(&store);
  auto registry = contract::Registry::CreateDefault();
  ce::SimExecutorPool pool(16, ce::ExecutionCostModel{});
  for (auto _ : state) {
    auto batch = w.MakeBatch(batch_size);
    ce::ConcurrencyController cc(&store, batch_size);
    auto r = pool.Run(cc, *registry, batch);
    benchmark::DoNotOptimize(r.ok());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          batch_size);
}
BENCHMARK(BM_CcBatch)->Arg(100)->Arg(500);

void BM_SerialBatch(benchmark::State& state) {
  uint32_t batch_size = static_cast<uint32_t>(state.range(0));
  workload::SmallBankConfig wc;
  wc.num_accounts = 1000;
  wc.seed = 4;
  workload::SmallBankWorkload w(wc);
  storage::MemKVStore store;
  w.InitStore(&store);
  auto registry = contract::Registry::CreateDefault();
  for (auto _ : state) {
    auto batch = w.MakeBatch(batch_size);
    benchmark::DoNotOptimize(
        baselines::ExecuteSerial(*registry, batch, &store, Micros(1)));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          batch_size);
}
BENCHMARK(BM_SerialBatch)->Arg(500);

void BM_Validation(benchmark::State& state) {
  uint32_t batch_size = 500;
  workload::SmallBankConfig wc;
  wc.num_accounts = 1000;
  wc.theta = 0.85;
  wc.seed = 5;
  workload::SmallBankWorkload w(wc);
  storage::MemKVStore store;
  w.InitStore(&store);
  auto registry = contract::Registry::CreateDefault();
  auto batch = w.MakeBatch(batch_size);
  ce::ConcurrencyController cc(&store, batch_size);
  ce::SimExecutorPool pool(16, ce::ExecutionCostModel{});
  auto r = pool.Run(cc, *registry, batch);
  std::vector<core::PreplayedTxn> preplayed;
  for (ce::TxnSlot slot : r->order) {
    core::PreplayedTxn p;
    p.tx = batch[slot];
    p.rw_set = r->records[slot].rw_set;
    p.emitted = r->records[slot].emitted;
    preplayed.push_back(std::move(p));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        core::ValidatePreplay(*registry, preplayed, store).valid);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          batch_size);
}
BENCHMARK(BM_Validation);

}  // namespace
}  // namespace thunderbolt

BENCHMARK_MAIN();
