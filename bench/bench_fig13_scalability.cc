// Figure 13: system scalability — Thunderbolt vs Thunderbolt-OCC vs Tusk
// on 8..64 replicas, LAN and WAN, batch 500, 16 executors + 16 validators
// per replica. Defaults to the paper's SmallBank setup (Pr = 0.5, 1000
// accounts, theta = 0.85); `--workload ycsb|tpcc_lite` (plus optional
// `--params k=v,...`) re-runs the sweep on any registered workload, so
// scalability is measured as workload x engine x cluster-size.
//
// Also prints the paper's headline: Thunderbolt's speedup over serial
// Tusk execution at the largest scale (paper: ~50x at 64 replicas).
#include "bench/bench_util.h"
#include "core/cluster.h"

namespace thunderbolt {
namespace {

struct RunOut {
  double tps = 0;
  double latency_s = 0;
};

RunOut RunOne(core::ExecutionMode mode, uint32_t n, bool wan,
              const std::string& workload_name,
              const workload::WorkloadOptions& options,
              const bench::PlacementSelection& placement,
              const bench::StoreSelection& store, bench::ObsSelection* obs,
              SimTime warmup, SimTime duration) {
  core::ThunderboltConfig cfg;
  cfg.n = n;
  cfg.mode = mode;
  cfg.batch_size = 500;
  cfg.num_executors = 16;
  cfg.num_validators = 16;
  cfg.latency = wan ? net::LatencyModel::Wan() : net::LatencyModel::Lan();
  cfg.seed = 77;
  placement.ApplyTo(&cfg);
  store.ApplyTo(&cfg);
  obs->ApplyTo(&cfg);

  core::Cluster cluster(cfg, workload_name, options);
  cluster.Run(warmup);  // Excluded: pipeline fill / first commits.
  core::ClusterResult r = cluster.Run(duration);
  obs->Capture(cluster.obs());
  return RunOut{r.throughput_tps, r.avg_latency_s};
}

}  // namespace
}  // namespace thunderbolt

int main(int argc, char** argv) {
  using namespace thunderbolt;
  const bool quick = bench::QuickMode(argc, argv);
  workload::WorkloadOptions options;
  const std::string workload_name =
      bench::ClusterWorkloadFromFlags(argc, argv, &options, /*seed=*/78);
  const bench::PlacementSelection placement =
      bench::PlacementFromFlags(argc, argv);
  const bench::StoreSelection store = bench::StoreFromFlags(argc, argv);
  bench::ObsSelection obs = bench::ObsFromFlags(argc, argv);
  bench::Banner(
      "Figure 13", "throughput & latency vs replica count (LAN and WAN)",
      "Thunderbolt scales with replicas and beats Tusk by ~50x at 64 "
      "replicas; Thunderbolt-OCC tracks Thunderbolt but lags at scale; "
      "Tusk throughput stays flat (~11K tps) with latency growing to "
      "~100 s; WAN shows the same ordering with higher latencies");
  std::printf("workload: %s  placement: %s  store: %s\n",
              workload_name.c_str(), placement.policy.c_str(),
              store.name.c_str());

  const core::ExecutionMode modes[] = {core::ExecutionMode::kThunderbolt,
                                       core::ExecutionMode::kThunderboltOcc,
                                       core::ExecutionMode::kTusk};
  const char* mode_names[] = {"Thunderbolt", "Thunderbolt-OCC", "Tusk"};

  double tb64 = 0, tusk64 = 0;
  for (bool wan : {false, true}) {
    std::printf("\n--- %s ---\n", wan ? "WAN" : "LAN");
    bench::Table table(
        {"system", "replicas", "tput(tps)", "latency(s)"});
    for (int mi = 0; mi < 3; ++mi) {
      for (uint32_t n : {8u, 16u, 32u, 64u}) {
        // Large simulations are costly in real time; shrink the virtual
        // measurement window with scale (steady state is reached after
        // the warm-up window, which is excluded from the measurement).
        SimTime warmup = wan ? Seconds(2) : Seconds(1);
        SimTime duration = quick ? Seconds(n >= 64 ? 2 : 3)
                                 : Seconds(n >= 32 ? 3 : 5);
        RunOut out = RunOne(modes[mi], n, wan, workload_name, options,
                            placement, store, &obs, warmup, duration);
        table.Row({mode_names[mi], bench::FmtInt(n), bench::Fmt(out.tps, 0),
                   bench::Fmt(out.latency_s, 2)});
        if (!wan && n == 64) {
          if (mi == 0) tb64 = out.tps;
          if (mi == 2) tusk64 = out.tps;
        }
      }
    }
  }
  if (tusk64 > 0) {
    std::printf(
        "\nHeadline: Thunderbolt over serial Tusk at 64 replicas (LAN): "
        "%.1fx (paper: ~50x)\n",
        tb64 / tusk64);
  }
  return bench::WriteTablesJsonIfRequested(argc, argv, "fig13") |
         obs.WriteIfRequested();
}
