// Figure 15: throughput & latency vs reconfiguration period K' on 8
// replicas. Small K' forces frequent non-blocking DAG switches; large K'
// amortizes the switch cost.
#include "bench/bench_util.h"
#include "core/cluster.h"

int main(int argc, char** argv) {
  using namespace thunderbolt;
  const SimTime duration =
      bench::QuickMode(argc, argv) ? Seconds(3) : Seconds(10);
  bench::Banner(
      "Figure 15", "reconfiguration period K' sweep on 8 replicas",
      "throughput lower at K'=10 (frequent DAG transitions discard the "
      "two-round uncommitted tail) and stabilizes as K' grows past ~1000; "
      "average latency decreases slightly with larger K'");
  bench::Table table({"K'", "tput(tps)", "latency(s)", "reconfigs",
                      "shift-blocks"});
  for (Round k_prime : {10ull, 100ull, 500ull, 1000ull, 5000ull}) {
    core::ThunderboltConfig cfg;
    cfg.n = 8;
    cfg.batch_size = 500;
    cfg.reconfig_period_k_prime = k_prime;
    cfg.seed = 55;
    workload::SmallBankConfig wc;
    wc.num_accounts = 1000;
    wc.theta = 0.85;
    wc.read_ratio = 0.5;
    wc.seed = 56;
    core::Cluster cluster(cfg, wc);
    core::ClusterResult r = cluster.Run(duration);
    table.Row({bench::FmtInt(k_prime), bench::Fmt(r.throughput_tps, 0),
               bench::Fmt(r.avg_latency_s, 2),
               bench::FmtInt(r.reconfigurations),
               bench::FmtInt(r.shift_blocks)});
  }
  return bench::WriteTablesJsonIfRequested(argc, argv, "fig15");
}
