// Figure 15: throughput & latency vs reconfiguration period K' on 8
// replicas. Small K' forces frequent non-blocking DAG switches; large K'
// amortizes the switch cost. `--workload <name>` sweeps any registered
// workload; `--placement directory` additionally exercises hot-key
// migration at every boundary (the migrations column counts re-homed
// accounts, and each move is emitted into the JSON "migrations" table).
#include "bench/bench_util.h"
#include "core/cluster.h"

int main(int argc, char** argv) {
  using namespace thunderbolt;
  const SimTime duration =
      bench::QuickMode(argc, argv) ? Seconds(3) : Seconds(10);
  workload::WorkloadOptions options;
  const std::string workload_name =
      bench::ClusterWorkloadFromFlags(argc, argv, &options, /*seed=*/56);
  const bench::PlacementSelection placement =
      bench::PlacementFromFlags(argc, argv);
  const bench::StoreSelection store = bench::StoreFromFlags(argc, argv);
  bench::ObsSelection obs = bench::ObsFromFlags(argc, argv);
  bench::Banner(
      "Figure 15", "reconfiguration period K' sweep on 8 replicas",
      "throughput lower at K'=10 (frequent DAG transitions discard the "
      "two-round uncommitted tail) and stabilizes as K' grows past ~1000; "
      "average latency decreases slightly with larger K'");
  std::printf("workload: %s  placement: %s  store: %s\n",
              workload_name.c_str(), placement.policy.c_str(),
              store.name.c_str());
  bench::Table table({"K'", "tput(tps)", "latency(s)", "reconfigs",
                      "shift-blocks", "migrations"});
  std::vector<std::vector<std::string>> migration_rows;
  for (Round k_prime : {10ull, 100ull, 500ull, 1000ull, 5000ull}) {
    core::ThunderboltConfig cfg;
    cfg.n = 8;
    cfg.batch_size = 500;
    cfg.reconfig_period_k_prime = k_prime;
    cfg.seed = 55;
    placement.ApplyTo(&cfg);
    store.ApplyTo(&cfg);
    obs.ApplyTo(&cfg);
    core::Cluster cluster(cfg, workload_name, options);
    core::ClusterResult r = cluster.Run(duration);
    obs.Capture(cluster.obs());
    table.Row({bench::FmtInt(k_prime), bench::Fmt(r.throughput_tps, 0),
               bench::Fmt(r.avg_latency_s, 2),
               bench::FmtInt(r.reconfigurations),
               bench::FmtInt(r.shift_blocks), bench::FmtInt(r.migrations)});
    for (const placement::MigrationEvent& e : cluster.migration_events()) {
      migration_rows.push_back({bench::FmtInt(k_prime), bench::FmtInt(e.epoch),
                                e.account, bench::FmtInt(e.from),
                                bench::FmtInt(e.to),
                                bench::FmtInt(e.remote_accesses)});
    }
  }
  if (!migration_rows.empty()) {
    std::printf("\nHot-key migrations (directory placement):\n");
    bench::Table migrations({"K'", "epoch", "account", "from", "to",
                             "remote-accesses"},
                            "migrations");
    for (const auto& row : migration_rows) migrations.Row(row);
  }
  return bench::WriteTablesJsonIfRequested(argc, argv, "fig15") |
         obs.WriteIfRequested();
}
