// Shared helpers for the figure-reproduction benchmark binaries.
//
// Each bench binary regenerates one table/figure of the paper's evaluation
// (see DESIGN.md section 3): it sweeps the same parameters, prints the
// series as an aligned CSV-style table, and states the qualitative
// expectation from the paper so the output is self-checking.
#ifndef THUNDERBOLT_BENCH_BENCH_UTIL_H_
#define THUNDERBOLT_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <string>
#include <vector>

namespace thunderbolt::bench {

/// Prints the figure banner.
inline void Banner(const char* figure, const char* description,
                   const char* expectation) {
  std::printf("\n");
  std::printf(
      "==============================================================="
      "=======\n");
  std::printf("%s — %s\n", figure, description);
  std::printf("Paper expectation: %s\n", expectation);
  std::printf(
      "==============================================================="
      "=======\n");
}

/// Simple aligned table printer.
class Table {
 public:
  explicit Table(std::vector<std::string> columns)
      : columns_(std::move(columns)) {
    for (const auto& c : columns_) std::printf("%14s", c.c_str());
    std::printf("\n");
    for (size_t i = 0; i < columns_.size(); ++i) std::printf("%14s", "----");
    std::printf("\n");
  }

  void Row(const std::vector<std::string>& cells) {
    for (const auto& c : cells) std::printf("%14s", c.c_str());
    std::printf("\n");
    std::fflush(stdout);
  }

 private:
  std::vector<std::string> columns_;
};

inline std::string Fmt(double v, int precision = 1) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

inline std::string FmtInt(uint64_t v) { return std::to_string(v); }

/// Parses "--quick" from argv: benches shorten their virtual durations so
/// the whole suite runs in CI-friendly time.
inline bool QuickMode(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--quick") return true;
  }
  return false;
}

}  // namespace thunderbolt::bench

#endif  // THUNDERBOLT_BENCH_BENCH_UTIL_H_
