// Shared helpers for the figure-reproduction benchmark binaries.
//
// Each bench binary regenerates one table/figure of the paper's evaluation
// (see DESIGN.md section 3): it sweeps the same parameters, prints the
// series as an aligned CSV-style table, and states the qualitative
// expectation from the paper so the output is self-checking.
#ifndef THUNDERBOLT_BENCH_BENCH_UTIL_H_
#define THUNDERBOLT_BENCH_BENCH_UTIL_H_

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <initializer_list>
#include <memory>
#include <string>
#include <vector>

#include "core/config.h"
#include "obs/latency.h"
#include "obs/obs.h"
#include "placement/placement.h"
#include "storage/kv_store.h"
#include "svc/service.h"
#include "workload/workload.h"

namespace thunderbolt::bench {

/// Escapes `s` for use inside a JSON string literal.
inline std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

/// Formats a table cell as a JSON value: finite numbers stay bare,
/// everything else (including "inf"/"nan", which JSON cannot represent)
/// becomes a quoted string.
inline std::string JsonCell(const std::string& cell) {
  if (!cell.empty()) {
    char* end = nullptr;
    double v = std::strtod(cell.c_str(), &end);
    if (end != nullptr && *end == '\0' && std::isfinite(v)) return cell;
  }
  return "\"" + JsonEscape(cell) + "\"";
}

/// Every Table the binary prints is also recorded here, so any figure
/// binary can dump its full series as JSON with one call at the end of
/// main (WriteTablesJsonIfRequested).
class TableLog {
 public:
  struct Entry {
    std::string name;
    std::vector<std::string> columns;
    std::vector<std::vector<std::string>> rows;
  };

  static TableLog& Instance() {
    static TableLog log;
    return log;
  }

  /// Returns the new table's index; rows are added against it so two live
  /// Table objects can't cross-wire each other's series.
  size_t StartTable(std::string name, std::vector<std::string> columns) {
    if (name.empty()) name = "table" + std::to_string(tables_.size());
    tables_.push_back(Entry{std::move(name), std::move(columns), {}});
    return tables_.size() - 1;
  }

  void AddRow(size_t table_index, const std::vector<std::string>& cells) {
    if (table_index < tables_.size()) {
      tables_[table_index].rows.push_back(cells);
    }
  }

  const std::vector<Entry>& tables() const { return tables_; }

  /// Writes `{figure, tables: [{name, columns, rows}]}` to `path`.
  bool WriteJson(const std::string& path, const std::string& figure) const {
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) return false;
    std::fprintf(f, "{\n  \"figure\": \"%s\",\n  \"tables\": [",
                 JsonEscape(figure).c_str());
    for (size_t t = 0; t < tables_.size(); ++t) {
      const Entry& e = tables_[t];
      std::fprintf(f, "%s\n    {\n      \"name\": \"%s\",\n      "
                   "\"columns\": [",
                   t == 0 ? "" : ",", JsonEscape(e.name).c_str());
      for (size_t i = 0; i < e.columns.size(); ++i) {
        std::fprintf(f, "%s\"%s\"", i == 0 ? "" : ", ",
                     JsonEscape(e.columns[i]).c_str());
      }
      std::fprintf(f, "],\n      \"rows\": [");
      for (size_t r = 0; r < e.rows.size(); ++r) {
        std::fprintf(f, "%s\n        [", r == 0 ? "" : ",");
        for (size_t i = 0; i < e.rows[r].size(); ++i) {
          std::fprintf(f, "%s%s", i == 0 ? "" : ", ",
                       JsonCell(e.rows[r][i]).c_str());
        }
        std::fprintf(f, "]");
      }
      std::fprintf(f, "%s\n      ]\n    }", e.rows.empty() ? "" : "\n");
    }
    std::fprintf(f, "%s\n  ]\n}\n", tables_.empty() ? "" : "\n");
    std::fclose(f);
    return true;
  }

 private:
  std::vector<Entry> tables_;
};

/// Prints the figure banner.
inline void Banner(const char* figure, const char* description,
                   const char* expectation) {
  std::printf("\n");
  std::printf(
      "==============================================================="
      "=======\n");
  std::printf("%s — %s\n", figure, description);
  std::printf("Paper expectation: %s\n", expectation);
  std::printf(
      "==============================================================="
      "=======\n");
}

/// Simple aligned table printer. Rows are mirrored into TableLog so the
/// binary can additionally dump its series as JSON (--json <path>).
class Table {
 public:
  explicit Table(std::vector<std::string> columns, std::string name = "")
      : columns_(std::move(columns)),
        log_index_(TableLog::Instance().StartTable(std::move(name),
                                                   columns_)) {
    for (const auto& c : columns_) std::printf("%14s", c.c_str());
    std::printf("\n");
    for (size_t i = 0; i < columns_.size(); ++i) std::printf("%14s", "----");
    std::printf("\n");
  }

  void Row(const std::vector<std::string>& cells) {
    TableLog::Instance().AddRow(log_index_, cells);
    for (const auto& c : cells) std::printf("%14s", c.c_str());
    std::printf("\n");
    std::fflush(stdout);
  }

 private:
  std::vector<std::string> columns_;
  size_t log_index_;
};

inline std::string Fmt(double v, int precision = 1) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

inline std::string FmtInt(uint64_t v) { return std::to_string(v); }

/// Prints (and mirrors into the --json TableLog) a "phase_latency" table
/// summarizing a per-phase commit-latency decomposition — the standard
/// tail section of every figure binary that sweeps through the pools or
/// the cluster. Empty phases print "-" so an idle phase is not mistaken
/// for a zero-latency one.
inline void PhaseLatencyTable(const obs::LatencyBreakdown& phases) {
  std::printf("\n--- per-phase latency decomposition ---\n");
  Table table({"phase", "count", "mean(us)", "p50(us)", "p99(us)", "max(us)"},
              "phase_latency");
  for (size_t p = 0; p < obs::kNumPhases; ++p) {
    const Histogram& h = phases.phase[p];
    const bool empty = h.Count() == 0;
    table.Row({obs::PhaseName(static_cast<obs::Phase>(p)),
               FmtInt(h.Count()), empty ? "-" : Fmt(h.Mean(), 1),
               empty ? "-" : Fmt(h.Percentile(50), 1),
               empty ? "-" : Fmt(h.Percentile(99), 1),
               empty ? "-" : Fmt(h.Max(), 1)});
  }
}

/// Parses "--quick" from argv: benches shorten their virtual durations so
/// the whole suite runs in CI-friendly time.
inline bool QuickMode(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--quick") return true;
  }
  return false;
}

/// True when the bare flag `--<name>` appears in argv.
inline bool HasFlag(int argc, char** argv, const std::string& name) {
  const std::string flag = "--" + name;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == flag) return true;
  }
  return false;
}

/// Returns the value of `--<name> <value>` or `--<name>=<value>`, or ""
/// when the flag is absent.
inline std::string FlagValue(int argc, char** argv, const std::string& name) {
  const std::string flag = "--" + name;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == flag && i + 1 < argc) return argv[i + 1];
    if (arg.rfind(flag + "=", 0) == 0) return arg.substr(flag.size() + 1);
  }
  return "";
}

/// Exits with code 2 when `spec` (a `k=v,...` param string) assigns any
/// of the `reserved` keys. Drivers reserve the axes their own flags or
/// sweep loops control: accepting such an override and then clobbering
/// it in the sweep would mislabel the emitted series.
inline void RejectReservedParams(const std::string& spec,
                                 std::initializer_list<const char*> reserved) {
  for (const char* key : reserved) {
    const std::string needle = std::string(key) + "=";
    for (size_t pos = spec.find(needle); pos != std::string::npos;
         pos = spec.find(needle, pos + 1)) {
      if (pos == 0 || spec[pos - 1] == ',') {
        std::fprintf(stderr,
                     "--params may not set \"%s\": this driver owns that "
                     "axis (use its dedicated flag or sweep)\n",
                     key);
        std::exit(2);
      }
    }
  }
}

/// Shared `--workload <name>` / `--params <k=v,...>` handling for the
/// cluster figure binaries: seeds `options` with the paper's shared
/// defaults (1000 records, theta 0.85, Pr 0.5, the figure's `seed`),
/// then returns the registry workload name (default "smallbank") after
/// applying any `--params` overrides — so every sharded bench sweeps
/// workload x engine x cluster-size from one flag set. Keys listed in
/// `reserved` (axes the figure itself sweeps) are rejected. Exits with
/// code 2 on an unknown name or malformed params — a typo must not
/// silently bench the wrong configuration.
inline std::string ClusterWorkloadFromFlags(
    int argc, char** argv, workload::WorkloadOptions* options, uint64_t seed,
    std::initializer_list<const char*> reserved = {}) {
  options->num_records = 1000;
  options->theta = 0.85;
  options->read_ratio = 0.5;
  options->seed = seed;
  std::string name = FlagValue(argc, argv, "workload");
  if (name.empty()) name = "smallbank";
  if (!workload::WorkloadRegistry::Global().Contains(name)) {
    std::fprintf(stderr, "unknown workload \"%s\"; registered:", name.c_str());
    for (const std::string& n : workload::WorkloadRegistry::Global().Names()) {
      std::fprintf(stderr, " %s", n.c_str());
    }
    std::fprintf(stderr, "\n");
    std::exit(2);
  }
  const std::string spec = FlagValue(argc, argv, "params");
  RejectReservedParams(spec, reserved);
  Status s = workload::ApplyWorkloadParams(spec, options);
  if (!s.ok()) {
    std::fprintf(stderr, "bad --params: %s\n", s.ToString().c_str());
    std::exit(2);
  }
  return name;
}

/// The placement policy a bench binary was asked to run with.
struct PlacementSelection {
  std::string policy = "hash";
  std::string params;

  void ApplyTo(core::ThunderboltConfig* config) const {
    config->placement = policy;
    config->placement_params = params;
  }
};

/// Shared `--placement <name>` / `--placement-params <k=v,...>` handling
/// for every bench binary: validates the policy name against
/// placement::PlacementRegistry::Global() and exits with code 2 on a typo
/// (mirroring the workload flag — a typo must not silently bench the
/// default placement).
inline PlacementSelection PlacementFromFlags(int argc, char** argv) {
  PlacementSelection selection;
  std::string name = FlagValue(argc, argv, "placement");
  if (!name.empty()) {
    if (!placement::PlacementRegistry::Global().Contains(name)) {
      std::fprintf(stderr, "unknown placement policy \"%s\"; registered:",
                   name.c_str());
      for (const std::string& n :
           placement::PlacementRegistry::Global().Names()) {
        std::fprintf(stderr, " %s", n.c_str());
      }
      std::fprintf(stderr, "\n");
      std::exit(2);
    }
    selection.policy = name;
  }
  selection.params = FlagValue(argc, argv, "placement-params");
  return selection;
}

/// The storage backend a bench binary was asked to run with.
struct StoreSelection {
  std::string name = "mem";

  void ApplyTo(core::ThunderboltConfig* config) const {
    config->store = name;
  }

  /// Instantiates the backend from storage::StoreRegistry (never null:
  /// the name was validated by StoreFromFlags).
  std::unique_ptr<storage::KVStore> Create() const {
    return storage::StoreRegistry::Global().Create(name);
  }
};

/// Shared `--store <name>` handling for every bench binary: validates the
/// backend against storage::StoreRegistry::Global() and exits with code 2
/// on a typo (mirroring --workload/--placement — a typo must not silently
/// bench the default backend).
inline StoreSelection StoreFromFlags(int argc, char** argv) {
  StoreSelection selection;
  std::string name = FlagValue(argc, argv, "store");
  if (!name.empty()) {
    if (!storage::StoreRegistry::Global().Contains(name)) {
      std::fprintf(stderr, "unknown store backend \"%s\"; registered:",
                   name.c_str());
      for (const std::string& n : storage::StoreRegistry::Global().Names()) {
        std::fprintf(stderr, " %s", n.c_str());
      }
      std::fprintf(stderr, "\n");
      std::exit(2);
    }
    selection.name = name;
  }
  return selection;
}

/// The executor pool a bench binary was asked to run with.
struct PoolSelection {
  std::string name = "sim";

  void ApplyTo(core::ThunderboltConfig* config) const { config->pool = name; }

  /// Instantiates the pool (never null: the name was validated by
  /// PoolFromFlags).
  std::unique_ptr<ce::ExecutorPool> Create(
      uint32_t num_executors, ce::ExecutionCostModel costs = {}) const {
    return ce::CreateExecutorPool(name, num_executors, costs);
  }
};

/// Shared `--pool <name>` handling: validates against
/// ce::ExecutorPoolNames() and exits with code 2 on a typo. "sim" keeps
/// virtual-time determinism; "thread" measures real wall-clock scaling.
inline PoolSelection PoolFromFlags(int argc, char** argv) {
  PoolSelection selection;
  std::string name = FlagValue(argc, argv, "pool");
  if (!name.empty()) {
    std::vector<std::string> names = ce::ExecutorPoolNames();
    if (std::find(names.begin(), names.end(), name) == names.end()) {
      std::fprintf(stderr, "unknown executor pool \"%s\"; registered:",
                   name.c_str());
      for (const std::string& n : names) std::fprintf(stderr, " %s", n.c_str());
      std::fprintf(stderr, "\n");
      std::exit(2);
    }
    selection.name = name;
  }
  return selection;
}

/// The open-loop service front end a bench binary was asked to run with
/// (disabled unless --arrival or --rate is given).
struct ServiceSelection {
  svc::ServiceConfig config;

  void ApplyTo(core::ThunderboltConfig* cluster_config) const {
    cluster_config->service = config;
  }
};

/// Shared `--arrival <name>` / `--arrival-params <k=v,...>` /
/// `--rate <tps>` / `--admission <policy>` / `--queue-depth <n>` handling
/// so every bench binary can run open-loop. Passing either `--arrival` or
/// `--rate` enables the front end (the other takes its default); the
/// remaining knobs refine it. Optional extras: `--limiter-rate <tps>` /
/// `--limiter-burst <tokens>` (token bucket ahead of the queues) and
/// `--codel-target-us <us>`. Validates the arrival name against
/// svc::ArrivalRegistry and the policy against ParseAdmissionPolicy,
/// exiting with code 2 on a typo (mirroring --workload/--placement — a
/// typo must not silently bench the closed loop).
inline ServiceSelection ServiceFromFlags(int argc, char** argv) {
  ServiceSelection selection;
  const std::string arrival = FlagValue(argc, argv, "arrival");
  const std::string rate = FlagValue(argc, argv, "rate");
  selection.config.enabled = !arrival.empty() || !rate.empty();
  if (!arrival.empty()) {
    if (!svc::ArrivalRegistry::Global().Contains(arrival)) {
      std::fprintf(stderr, "unknown arrival process \"%s\"; registered:",
                   arrival.c_str());
      for (const std::string& n : svc::ArrivalRegistry::Global().Names()) {
        std::fprintf(stderr, " %s", n.c_str());
      }
      std::fprintf(stderr, "\n");
      std::exit(2);
    }
    selection.config.arrival = arrival;
  }
  selection.config.arrival_params = FlagValue(argc, argv, "arrival-params");
  if (!rate.empty()) {
    selection.config.rate_tps = std::strtod(rate.c_str(), nullptr);
    if (!(selection.config.rate_tps > 0)) {
      std::fprintf(stderr, "invalid --rate \"%s\"\n", rate.c_str());
      std::exit(2);
    }
  }
  const std::string admission = FlagValue(argc, argv, "admission");
  if (!admission.empty()) {
    svc::AdmissionPolicy policy;
    if (!svc::ParseAdmissionPolicy(admission, &policy)) {
      std::fprintf(stderr, "unknown admission policy \"%s\"; registered:",
                   admission.c_str());
      for (const std::string& n : svc::AdmissionPolicyNames()) {
        std::fprintf(stderr, " %s", n.c_str());
      }
      std::fprintf(stderr, "\n");
      std::exit(2);
    }
    selection.config.admission = admission;
  }
  const std::string depth = FlagValue(argc, argv, "queue-depth");
  if (!depth.empty()) {
    selection.config.queue_depth =
        static_cast<uint32_t>(std::strtoul(depth.c_str(), nullptr, 10));
    if (selection.config.queue_depth == 0) {
      std::fprintf(stderr, "invalid --queue-depth \"%s\"\n", depth.c_str());
      std::exit(2);
    }
  }
  const std::string limiter_rate = FlagValue(argc, argv, "limiter-rate");
  if (!limiter_rate.empty()) {
    selection.config.limiter_rate_tps =
        std::strtod(limiter_rate.c_str(), nullptr);
  }
  const std::string limiter_burst = FlagValue(argc, argv, "limiter-burst");
  if (!limiter_burst.empty()) {
    selection.config.limiter_burst =
        std::strtod(limiter_burst.c_str(), nullptr);
  }
  const std::string codel = FlagValue(argc, argv, "codel-target-us");
  if (!codel.empty()) {
    selection.config.codel_target = std::strtoull(codel.c_str(), nullptr, 10);
    if (selection.config.codel_target == 0) {
      std::fprintf(stderr, "invalid --codel-target-us \"%s\"\n",
                   codel.c_str());
      std::exit(2);
    }
  }
  return selection;
}

/// The observability artifacts a bench binary was asked to produce.
/// `--trace-out <path>` enables lifecycle tracing (Chrome trace-event JSON,
/// loadable at ui.perfetto.dev); `--metrics-out <path>` snapshots the
/// metrics registry as JSON; `--timeseries-out <path>` records windowed
/// counter deltas (`--timeseries-window <us>` sets the window width).
/// `--trace-capacity <n>` bounds the ring.
///
/// Sweeping drivers call Capture() once per cluster/bundle; the artifacts
/// describe the LAST captured run (each capture replaces the previous one
/// — a sweep produces one representative trace, not a concatenation).
struct ObsSelection {
  std::string trace_path;
  std::string metrics_path;
  std::string timeseries_path;
  uint32_t trace_capacity = 1u << 16;
  uint64_t timeseries_window_us = 100000;

  bool requested() const {
    return !trace_path.empty() || !metrics_path.empty() ||
           !timeseries_path.empty();
  }
  bool trace() const { return !trace_path.empty(); }
  bool timeseries() const { return !timeseries_path.empty(); }

  void ApplyTo(core::ThunderboltConfig* config) const {
    config->obs.trace = trace();
    config->obs.trace_capacity = trace_capacity;
    config->obs.timeseries = timeseries();
    config->obs.timeseries_window_us = timeseries_window_us;
  }

  /// Builds a standalone bundle for non-cluster drivers (batch benches
  /// install it on their pool via SetObs and drive SampleWindow between
  /// cells themselves).
  std::unique_ptr<obs::Observability> MakeBundle() const {
    obs::ObsOptions options;
    options.trace = trace();
    options.trace_capacity = trace_capacity;
    options.timeseries = timeseries();
    options.timeseries_window_us = timeseries_window_us;
    return std::make_unique<obs::Observability>(options);
  }

  /// Snapshots `obs`'s sinks; safe to call after the owning cluster dies.
  /// Closes the trailing time-series window and syncs the ring's drop
  /// accounting into the registry first, so the artifacts are consistent.
  void Capture(obs::Observability& obs) {
    obs.SyncTraceStats();
    obs.FlushTimeSeries();
    metrics_json_ = obs.metrics().ToJson();
    trace_json_ = obs.ring() != nullptr ? obs.ring()->ToChromeJson() : "";
    timeseries_json_ =
        obs.timeseries() != nullptr ? obs.timeseries()->ToJson() : "";
  }

  /// Writes the captured artifacts to the requested paths. Returns 0, or
  /// 1 when a requested file could not be written (or nothing was
  /// captured).
  int WriteIfRequested() const {
    int rc = 0;
    rc |= WriteOne(trace_path, trace_json_, "trace");
    rc |= WriteOne(metrics_path, metrics_json_, "metrics");
    rc |= WriteOne(timeseries_path, timeseries_json_, "timeseries");
    return rc;
  }

 private:
  static int WriteOne(const std::string& path, const std::string& body,
                      const char* what) {
    if (path.empty()) return 0;
    if (body.empty()) {
      std::fprintf(stderr, "no %s captured for %s\n", what, path.c_str());
      return 1;
    }
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "failed to open %s\n", path.c_str());
      return 1;
    }
    const size_t written = std::fwrite(body.data(), 1, body.size(), f);
    const bool ok = (std::fclose(f) == 0) && written == body.size();
    if (!ok) {
      std::fprintf(stderr, "failed to write %s\n", path.c_str());
      return 1;
    }
    std::printf("%s written to %s\n", what, path.c_str());
    return 0;
  }

  std::string trace_json_;
  std::string metrics_json_;
  std::string timeseries_json_;
};

/// Shared `--trace-out` / `--metrics-out` / `--timeseries-out` /
/// `--timeseries-window` / `--trace-capacity` handling.
inline ObsSelection ObsFromFlags(int argc, char** argv) {
  ObsSelection selection;
  selection.trace_path = FlagValue(argc, argv, "trace-out");
  selection.metrics_path = FlagValue(argc, argv, "metrics-out");
  selection.timeseries_path = FlagValue(argc, argv, "timeseries-out");
  const std::string cap = FlagValue(argc, argv, "trace-capacity");
  if (!cap.empty()) {
    selection.trace_capacity =
        static_cast<uint32_t>(std::strtoul(cap.c_str(), nullptr, 10));
    if (selection.trace_capacity == 0) {
      std::fprintf(stderr, "invalid --trace-capacity \"%s\"\n", cap.c_str());
      std::exit(2);
    }
  }
  const std::string window = FlagValue(argc, argv, "timeseries-window");
  if (!window.empty()) {
    selection.timeseries_window_us =
        std::strtoull(window.c_str(), nullptr, 10);
    if (selection.timeseries_window_us == 0) {
      std::fprintf(stderr, "invalid --timeseries-window \"%s\"\n",
                   window.c_str());
      std::exit(2);
    }
  }
  return selection;
}

/// Shared `--json <path>` handling for the figure binaries: when the flag
/// is present, dumps every table printed so far to that path. Call as the
/// last statement of main.
inline int WriteTablesJsonIfRequested(int argc, char** argv,
                                      const char* figure) {
  std::string path = FlagValue(argc, argv, "json");
  if (path.empty()) return 0;
  if (!TableLog::Instance().WriteJson(path, figure)) {
    std::fprintf(stderr, "failed to write JSON to %s\n", path.c_str());
    return 1;
  }
  std::printf("\nJSON series written to %s\n", path.c_str());
  return 0;
}

}  // namespace thunderbolt::bench

#endif  // THUNDERBOLT_BENCH_BENCH_UTIL_H_
