// bench_overload: the open-loop overload sweep (service front end).
//
// Closed-loop benches cannot show overload behavior: the generator only
// offers work as fast as the system drains it, so throughput-vs-load
// curves have no "beyond saturation" region. This driver first measures
// each engine's closed-loop saturation throughput S, then replays an
// open-loop arrival process at 0.2x..2x S per admission policy and plots
// throughput-vs-offered-load and latency-vs-offered-load.
//
// Expectation: throughput tracks offered load up to a saturation knee at
// ~S and plateaus beyond it for every policy. Past the knee the policies
// separate on latency: drop-tail lets the full standing queue build, so
// end-to-end p999 plateaus at queue_depth / per-shard service rate
// (bufferbloat — deep queues make it worse); shed-oldest keeps only the
// freshest work, bounding the wait at roughly queue_depth / offered rate;
// codel sheds anything older than its sojourn target at dequeue, capping
// the queue's latency contribution near the target regardless of depth.
//
//   bench_overload --smoke --json overload.json     # small CI sweep
//   bench_overload --engine thunderbolt --admission codel,drop-tail
//
// Flags:
//   --engine <names>         thunderbolt,tusk            [thunderbolt,tusk]
//   --admission <names>      comma list of policies      [all three]
//   --arrival <name>         arrival process             [poisson]
//   --arrival-params <k=v,...>  process params           []
//   --queue-depth <n>        per-shard admission bound   [4096]
//   --codel-target-us <us>   codel sojourn target        [50000]
//   --workload <name> / --params <k=v,...>  cluster workload [smallbank]
//   --placement <name> / --store <name>     as in the other benches
//   --json <path>            dump the sweep tables as JSON
//   --trace-out / --metrics-out / --timeseries-out   last-cell artifacts
//   --smoke                  1 engine, shorter runs, fewer points (CI)
//   --quick                  shorter runs only
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "core/cluster.h"

namespace thunderbolt {
namespace {

struct EngineChoice {
  std::string name;
  core::ExecutionMode mode;
};

std::vector<std::string> SplitList(const std::string& csv) {
  std::vector<std::string> items;
  size_t start = 0;
  while (start <= csv.size()) {
    size_t comma = csv.find(',', start);
    if (comma == std::string::npos) comma = csv.size();
    if (comma > start) items.push_back(csv.substr(start, comma - start));
    start = comma + 1;
  }
  return items;
}

core::ThunderboltConfig BaseConfig(core::ExecutionMode mode,
                                   const bench::PlacementSelection& placement,
                                   const bench::StoreSelection& store) {
  core::ThunderboltConfig cfg;
  cfg.n = 4;
  cfg.mode = mode;
  cfg.batch_size = 500;
  cfg.seed = 77;
  placement.ApplyTo(&cfg);
  store.ApplyTo(&cfg);
  return cfg;
}

/// Closed-loop saturation throughput: what the engine commits when the
/// proposers pull as fast as the pipeline drains. This anchors the sweep's
/// rate axis so "2x" means the same degree of overload on every engine.
double CalibrateSaturation(core::ExecutionMode mode,
                           const std::string& workload_name,
                           const workload::WorkloadOptions& options,
                           const bench::PlacementSelection& placement,
                           const bench::StoreSelection& store,
                           SimTime duration) {
  core::Cluster cluster(BaseConfig(mode, placement, store), workload_name,
                        options);
  const core::ClusterResult r = cluster.Run(duration);
  // An engine that commits (almost) nothing would collapse the rate axis;
  // floor the anchor so the sweep still exercises the admission machinery.
  return r.throughput_tps > 1000.0 ? r.throughput_tps : 1000.0;
}

}  // namespace
}  // namespace thunderbolt

int main(int argc, char** argv) {
  using namespace thunderbolt;
  const bool smoke = bench::HasFlag(argc, argv, "smoke");
  const bool quick = smoke || bench::QuickMode(argc, argv);
  const SimTime duration = quick ? Seconds(1) : Seconds(3);

  workload::WorkloadOptions options;
  const std::string workload_name =
      bench::ClusterWorkloadFromFlags(argc, argv, &options, /*seed=*/77);
  const bench::PlacementSelection placement =
      bench::PlacementFromFlags(argc, argv);
  const bench::StoreSelection store = bench::StoreFromFlags(argc, argv);
  bench::ObsSelection obs = bench::ObsFromFlags(argc, argv);

  // The sweep owns the rate and policy axes; take the front end's shape
  // (arrival process, queue depth, codel target) from the shared flags.
  // --admission is a comma LIST here (the policy sweep), which the shared
  // single-name parser would reject — hide it from ServiceFromFlags.
  std::vector<char*> fe_args;
  for (int i = 0; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--admission") {
      ++i;  // Skip the value too.
      continue;
    }
    if (arg.rfind("--admission=", 0) == 0) continue;
    fe_args.push_back(argv[i]);
  }
  bench::ServiceSelection service =
      bench::ServiceFromFlags(static_cast<int>(fe_args.size()),
                              fe_args.data());
  service.config.enabled = true;
  if (bench::FlagValue(argc, argv, "queue-depth").empty()) {
    // Deep enough that drop-tail's standing-queue latency clearly exceeds
    // the codel target — the contrast the figure is about.
    service.config.queue_depth = 4096;
  }

  std::vector<EngineChoice> engines;
  {
    std::string spec = bench::FlagValue(argc, argv, "engine");
    std::vector<std::string> names =
        spec.empty() ? std::vector<std::string>{"thunderbolt", "tusk"}
                     : SplitList(spec);
    if (smoke && spec.empty()) names = {"thunderbolt"};
    for (const std::string& name : names) {
      if (name == "thunderbolt") {
        engines.push_back({name, core::ExecutionMode::kThunderbolt});
      } else if (name == "occ") {
        engines.push_back({name, core::ExecutionMode::kThunderboltOcc});
      } else if (name == "tusk") {
        engines.push_back({name, core::ExecutionMode::kTusk});
      } else {
        std::fprintf(stderr,
                     "unknown --engine \"%s\" (thunderbolt, occ, tusk)\n",
                     name.c_str());
        return 2;
      }
    }
  }
  std::vector<std::string> policies;
  {
    // --admission here selects the POLICY SWEEP (comma list), unlike the
    // single-policy flag of the other benches.
    std::string spec = bench::FlagValue(argc, argv, "admission");
    policies = spec.empty() ? svc::AdmissionPolicyNames() : SplitList(spec);
    for (const std::string& name : policies) {
      svc::AdmissionPolicy parsed;
      if (!svc::ParseAdmissionPolicy(name, &parsed)) {
        std::fprintf(stderr, "unknown admission policy \"%s\"\n",
                     name.c_str());
        return 2;
      }
    }
  }
  const std::vector<double> mults =
      smoke ? std::vector<double>{0.25, 0.5, 1.0, 2.0}
            : std::vector<double>{0.2, 0.4, 0.6, 0.8, 1.0, 1.2, 1.6, 2.0};

  bench::Banner(
      "overload", "open-loop arrival sweep: throughput & tail latency vs "
      "offered load per admission policy",
      "throughput tracks offered load to a saturation knee then plateaus; "
      "beyond the knee drop-tail's p999 plateaus at the full standing "
      "queue (bufferbloat) while shed-oldest and codel keep it bounded");
  std::printf("workload: %s  arrival: %s  queue-depth: %u  duration: %.1fs\n",
              workload_name.c_str(), service.config.arrival.c_str(),
              service.config.queue_depth, ToSeconds(duration));

  bench::Table table(
      {"engine", "policy", "mult", "offered(tps)", "tput(tps)", "p99(s)",
       "p999(s)", "admit_p99(s)", "offered", "admitted", "shed", "rejected"},
      "overload");
  bool all_ok = true;
  for (const EngineChoice& engine : engines) {
    const double saturation = CalibrateSaturation(
        engine.mode, workload_name, options, placement, store, duration);
    std::printf("\n%s closed-loop saturation: %.0f tps\n",
                engine.name.c_str(), saturation);
    for (const std::string& policy : policies) {
      for (double mult : mults) {
        core::ThunderboltConfig cfg =
            BaseConfig(engine.mode, placement, store);
        service.config.admission = policy;
        service.config.rate_tps = saturation * mult;
        service.ApplyTo(&cfg);
        obs.ApplyTo(&cfg);
        core::Cluster cluster(cfg, workload_name, options);
        const core::ClusterResult r = cluster.Run(duration);
        if (!cluster.CheckInvariant().ok()) all_ok = false;
        obs.Capture(cluster.obs());
        const bool idle = r.latency_samples == 0;
        table.Row({engine.name, policy, bench::Fmt(mult, 2),
                   bench::Fmt(service.config.rate_tps, 0),
                   bench::Fmt(r.throughput_tps, 0),
                   idle ? "-" : bench::Fmt(r.p99_latency_s, 4),
                   idle ? "-" : bench::Fmt(r.p999_latency_s, 4),
                   idle ? "-" : bench::Fmt(r.admit_p99_latency_s, 4),
                   bench::FmtInt(r.offered), bench::FmtInt(r.admitted),
                   bench::FmtInt(r.shed), bench::FmtInt(r.rejected)});
      }
    }
  }
  if (!all_ok) std::fprintf(stderr, "workload invariant VIOLATED\n");
  return bench::WriteTablesJsonIfRequested(argc, argv, "overload") |
         obs.WriteIfRequested() | (all_ok ? 0 : 1);
}
