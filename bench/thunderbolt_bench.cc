// thunderbolt_bench: the unified workload x engine benchmark driver.
//
// Runs any workload registered in workload::WorkloadRegistry against any
// execution engine (serial, OCC, 2PL-No-Wait, Thunderbolt CE) over a
// batch-size x skew sweep, prints the usual table, and always writes the
// full series as machine-readable JSON — the BENCH_*.json perf trajectory.
//
//   thunderbolt_bench                          # full sweep, all x all
//   thunderbolt_bench --workload ycsb --engine ce --theta 0.5,0.9
//   thunderbolt_bench --smoke --json out.json  # tiny CI sweep
//
// Flags:
//   --workload <names|all>   comma list of registry names    [all]
//   --engine <names|all>     serial,occ,2pl,ce               [all]
//   --batch <sizes>          comma list of batch sizes       [100,300]
//   --theta <values>         comma list of Zipfian skews     [0.85]
//   --executors <n>          simulated executors             [8]
//   --pool <names>           executor pools: sim,thread      [sim]
//   --threads <counts>       comma list of pool widths; overrides
//                            --executors as a sweep axis     [--executors]
//   --runs <n>               batches per configuration       [5]
//   --records <n>            population scale                [10000]
//   --shards <n>             shard-homed generation over n shards  [1]
//   --store <name>           storage backend (see --store-list)    [mem]
//   --placement <name>       placement policy (see --placement-list) [hash]
//   --placement-params <k=v,...>  policy parameters          []
//   --arrival <name>         open-loop arrival process (poisson,burst,
//                            trace); enables the service front end
//   --rate <tps>             open-loop offered load          [20000]
//   --admission <policy>     drop-tail, shed-oldest, codel   [drop-tail]
//   --queue-depth <n>        per-shard admission queue bound [1024]
//   --params <k=v,...>       extra WorkloadOptions overrides []
//   --json <path>            output path          [thunderbolt_bench.json]
//   --trace-out <path>       write a Chrome trace of the sweep's last cell
//                            (load at ui.perfetto.dev)          [disabled]
//   --metrics-out <path>     write the metrics-registry JSON snapshot
//                            (pool.*, engine abort reasons)     [disabled]
//   --timeseries-out <path>  write windowed counter deltas over the
//                            sweep's accumulated virtual time   [disabled]
//   --timeseries-window <us> time-series window width           [100000]
//   --trace-capacity <n>     trace ring size in events          [65536]
//   --smoke                  shrink everything for CI
//   --list                   print registered workloads and exit
//   --engine-list            print registered engines and exit
//   --placement-list         print registered placement policies and exit
//   --store-list             print registered storage backends and exit
//
// With --shards > 1 each batch is drawn shard-homed (round-robin over the
// shards) and every cell reports cross_frac: the fraction of generated
// transactions the placement policy classifies as cross-shard. Comparing
// `--placement hash` against `--placement locality` at the same
// cross_shard_ratio makes the policy's traffic reduction visible per run.
//
// With --pool thread the batch engines run on real std::thread workers and
// tps/latency are wall-clock numbers; with the default sim pool they are
// virtual time. The two are not comparable — see EXPERIMENTS.md. The
// "serial" engine always executes inline regardless of --pool.
//
// With --arrival/--rate each cell runs OPEN LOOP: a svc::ServiceFrontEnd
// generates arrivals on the cell's virtual clock, the admission policy
// decides what the queues keep, and the pool executes dequeued batches
// with arrival-stamped submit times — so p50/p99/p999 become end-to-end
// (arrival -> commit). Requires the sim pool (arrivals live on virtual
// time) and a real batch engine (serial has no pipeline to backpressure).
#include <array>
#include <cinttypes>
#include <memory>
#include <string>
#include <vector>

#include "baselines/engine_registration.h"
#include "baselines/serial_executor.h"
#include "bench/bench_util.h"
#include "ce/engine_registry.h"
#include "ce/executor_pool.h"
#include "common/histogram.h"
#include "contract/contract.h"
#include "workload/workload.h"

namespace thunderbolt {
namespace {

struct DriverConfig {
  std::vector<std::string> workloads;
  std::vector<std::string> engines;
  std::vector<uint32_t> batch_sizes;
  std::vector<double> thetas;
  /// Executor pools to sweep ("sim", "thread").
  std::vector<std::string> pools;
  /// Pool widths to sweep; defaults to {executors}.
  std::vector<uint32_t> threads;
  uint32_t executors = 8;
  uint32_t runs = 5;
  uint64_t records = 10000;
  /// Shard count for shard-homed generation (1 = the global mix).
  uint32_t shards = 1;
  bench::PlacementSelection placement;
  bench::StoreSelection store;
  bench::ObsSelection obs;
  bench::ServiceSelection service;
  /// Raw `--params` overrides, applied after the flag-derived fields.
  std::string params;
  std::string json_path = "thunderbolt_bench.json";
};

struct SweepResult {
  std::string workload;
  std::string engine;
  std::string pool;
  uint32_t threads = 0;
  uint32_t batch_size = 0;
  double theta = 0;
  uint64_t txns = 0;
  uint64_t aborts = 0;
  /// `aborts` by cause, indexed by obs::AbortReason.
  std::array<uint64_t, obs::kNumAbortReasons> abort_reasons{};
  double tps = 0;
  double p50_latency_us = 0;
  double p99_latency_us = 0;
  double p999_latency_us = 0;
  /// Samples behind the percentiles. 0 means an idle cell: the percentile
  /// fields carry no information (JSON emits null, the table prints "-").
  uint64_t latency_samples = 0;
  double re_execs_per_txn = 0;
  /// Fraction of generated transactions classified cross-shard by the
  /// placement policy (0 with --shards 1).
  double cross_frac = 0;
  bool invariant_ok = false;
  /// Per-phase decomposition of the cell's commit latency (queue_wait /
  /// execute / restart_backoff from the pool; empty for the inline
  /// "serial" engine, which has no admission pipeline).
  obs::LatencyBreakdown phases;
  /// Virtual (sim pool) or wall (thread pool) time the cell consumed;
  /// drives the sweep-level time-series clock.
  SimTime total_time = 0;
  /// Open-loop accounting (all 0 in closed-loop cells); see
  /// svc/admission.h for the terminology.
  uint64_t offered = 0;
  uint64_t admitted = 0;
  uint64_t shed = 0;
  uint64_t rejected = 0;
};

std::vector<std::string> SplitList(const std::string& csv) {
  std::vector<std::string> items;
  size_t start = 0;
  while (start <= csv.size()) {
    size_t comma = csv.find(',', start);
    if (comma == std::string::npos) comma = csv.size();
    if (comma > start) items.push_back(csv.substr(start, comma - start));
    start = comma + 1;
  }
  return items;
}

/// One workload x engine x batch x theta cell: `runs` batches executed
/// back-to-back against one store, then the workload invariant check.
Result<SweepResult> RunCell(const DriverConfig& config,
                            const std::string& workload_name,
                            const std::string& engine_name,
                            const std::string& pool_name, uint32_t threads,
                            uint32_t batch_size, double theta,
                            obs::Observability* obs) {
  workload::WorkloadOptions options;
  options.num_records = config.records;
  options.theta = theta;
  options.num_shards = config.shards;
  // Scale TPC-C-lite tables with --records so --smoke stays small.
  options.num_warehouses =
      static_cast<uint32_t>(config.records >= 2000 ? 2 : 1);
  options.customers_per_district =
      static_cast<uint32_t>(config.records / 100 + 10);
  options.num_items = static_cast<uint32_t>(config.records / 50 + 20);
  THUNDERBOLT_RETURN_NOT_OK(
      workload::ApplyWorkloadParams(config.params, &options));

  auto w = workload::WorkloadRegistry::Global().Create(workload_name, options);
  if (w == nullptr) {
    return Status::NotFound("unknown workload: " + workload_name);
  }
  std::shared_ptr<placement::PlacementPolicy> policy =
      workload::InstallPlacement(w.get(), config.placement.policy,
                                 config.placement.params, config.shards);
  if (policy == nullptr) {
    return Status::NotFound("unknown placement: " + config.placement.policy);
  }
  std::unique_ptr<storage::KVStore> store = config.store.Create();
  w->InitStore(store.get());
  auto registry = contract::Registry::CreateDefault();
  std::unique_ptr<ce::ExecutorPool> pool =
      ce::CreateExecutorPool(pool_name, threads, ce::ExecutionCostModel{});
  if (pool == nullptr) {
    return Status::NotFound("unknown executor pool: " + pool_name);
  }
  pool->SetObs(ce::PoolObsContext{obs->tracer(), &obs->metrics(), 0});
  const SimTime serial_op_cost = ce::ExecutionCostModel{}.op_cost;

  SweepResult out;
  out.workload = workload_name;
  out.engine = engine_name;
  out.pool = pool_name;
  out.threads = threads;
  out.batch_size = batch_size;
  out.theta = theta;
  SimTime total_time = 0;
  Histogram latency_us;
  uint64_t cross_generated = 0;

  if (config.service.config.enabled) {
    // Open loop: the front end generates arrivals on the cell's virtual
    // clock; the pool executes dequeued batches with arrival-stamped
    // submit times (pool latency = committed - submit_time, i.e. end to
    // end). ParseFlags already rejected "serial" and the thread pool.
    svc::ServiceFrontEnd front_end(
        config.service.config, config.shards, options.seed,
        [&w](ShardId shard) { return w->NextForShard(shard); },
        &obs->metrics());
    const uint64_t target =
        static_cast<uint64_t>(config.runs) * batch_size;
    SimTime clock = 0;
    ShardId next_shard = 0;
    while (out.txns < target) {
      front_end.AdvanceTo(clock);
      std::vector<txn::Transaction> batch;
      batch.reserve(batch_size);
      // Round-robin dequeue across shards, rotating the starting shard so
      // no shard's queue is structurally favored.
      for (uint32_t k = 0; k < config.shards && batch.size() < batch_size;
           ++k) {
        const ShardId shard =
            static_cast<ShardId>((next_shard + k) % config.shards);
        std::vector<txn::Transaction> part =
            front_end.Dequeue(shard, clock, batch_size - batch.size());
        for (txn::Transaction& tx : part) batch.push_back(std::move(tx));
      }
      next_shard = static_cast<ShardId>((next_shard + 1) % config.shards);
      if (batch.empty()) {
        // Idle: fast-forward to the next arrival instead of spinning.
        const SimTime next = front_end.NextArrivalTime();
        if (next == kSimTimeNever) break;  // Trace replay exhausted.
        clock = next;
        continue;
      }
      for (const txn::Transaction& tx : batch) {
        if (!w->mapper().IsSingleShard(tx)) ++cross_generated;
      }
      // Size the engine to the batch actually dequeued: under open loop
      // batches can be partial, and AllCommitted() compares against the
      // constructed capacity.
      auto engine = ce::EngineRegistry::Global().Create(
          engine_name, store.get(), static_cast<uint32_t>(batch.size()));
      if (engine == nullptr) {
        return Status::NotFound("unknown engine: " + engine_name);
      }
      THUNDERBOLT_ASSIGN_OR_RETURN(
          ce::BatchExecutionResult r,
          pool->Run(*engine, *registry, batch, clock));
      THUNDERBOLT_RETURN_NOT_OK(store->Write(r.final_writes));
      clock += r.duration;
      out.phases.Merge(r.phases);
      out.aborts += r.total_aborts;
      for (size_t reason = 0; reason < obs::kNumAbortReasons; ++reason) {
        out.abort_reasons[reason] += r.abort_reasons[reason];
      }
      for (double sample : r.commit_latency_us.samples()) {
        latency_us.Add(sample);
      }
      out.txns += batch.size();
    }
    total_time = clock;
    const svc::ServiceFrontEnd::Counters& c = front_end.counters();
    out.offered = c.offered;
    out.admitted = c.admitted;
    out.shed = c.shed;
    out.rejected = c.rejected;
    out.tps = total_time == 0
                  ? 0
                  : static_cast<double>(out.txns) / ToSeconds(total_time);
    out.p50_latency_us = latency_us.Percentile(50.0);
    out.p99_latency_us = latency_us.Percentile(99.0);
    out.p999_latency_us = latency_us.Percentile(99.9);
    out.latency_samples = latency_us.Count();
    out.re_execs_per_txn =
        out.txns == 0 ? 0
                      : static_cast<double>(out.aborts) /
                            static_cast<double>(out.txns);
    out.cross_frac = out.txns == 0
                         ? 0
                         : static_cast<double>(cross_generated) /
                               static_cast<double>(out.txns);
    out.invariant_ok = w->CheckInvariant(*store).ok();
    out.total_time = total_time;
    return out;
  }

  for (uint32_t run = 0; run < config.runs; ++run) {
    std::vector<txn::Transaction> batch;
    if (config.shards > 1) {
      // Shard-homed generation, round-robin over the shards, so the
      // placement policy's single- vs cross-shard split is measurable.
      batch.reserve(batch_size);
      for (uint32_t i = 0; i < batch_size; ++i) {
        batch.push_back(
            w->NextForShard(static_cast<ShardId>(i % config.shards)));
      }
      for (const txn::Transaction& tx : batch) {
        if (!w->mapper().IsSingleShard(tx)) ++cross_generated;
      }
    } else {
      batch = w->MakeBatch(batch_size);
    }
    if (engine_name == "serial") {
      baselines::SerialExecutionResult r = baselines::ExecuteSerial(
          *registry, batch, store.get(), serial_op_cost);
      // Commit latency of txn i = virtual time until its sequential turn
      // completes.
      SimTime clock = 0;
      for (const ce::TxnRecord& record : r.records) {
        clock += serial_op_cost *
                 (record.rw_set.reads.size() + record.rw_set.writes.size());
        latency_us.Add(static_cast<double>(clock));
      }
      total_time += r.duration;
    } else {
      // "serial" above is not a BatchEngine; everything else resolves
      // through the engine registry (baselines registered in main).
      auto engine = ce::EngineRegistry::Global().Create(
          engine_name, store.get(), batch_size);
      if (engine == nullptr) {
        return Status::NotFound("unknown engine: " + engine_name);
      }
      THUNDERBOLT_ASSIGN_OR_RETURN(ce::BatchExecutionResult r,
                                   pool->Run(*engine, *registry, batch));
      THUNDERBOLT_RETURN_NOT_OK(store->Write(r.final_writes));
      total_time += r.duration;
      out.phases.Merge(r.phases);
      out.aborts += r.total_aborts;
      for (size_t reason = 0; reason < obs::kNumAbortReasons; ++reason) {
        out.abort_reasons[reason] += r.abort_reasons[reason];
      }
      for (double sample : r.commit_latency_us.samples()) {
        latency_us.Add(sample);
      }
    }
    out.txns += batch_size;
  }
  out.tps = total_time == 0
                ? 0
                : static_cast<double>(out.txns) / ToSeconds(total_time);
  out.p50_latency_us = latency_us.Percentile(50.0);
  out.p99_latency_us = latency_us.Percentile(99.0);
  out.p999_latency_us = latency_us.Percentile(99.9);
  out.latency_samples = latency_us.Count();
  out.re_execs_per_txn =
      out.txns == 0 ? 0
                    : static_cast<double>(out.aborts) /
                          static_cast<double>(out.txns);
  out.cross_frac = out.txns == 0
                       ? 0
                       : static_cast<double>(cross_generated) /
                             static_cast<double>(out.txns);
  out.invariant_ok = w->CheckInvariant(*store).ok();
  out.total_time = total_time;
  return out;
}

bool WriteResultsJson(const std::string& path,
                      const std::vector<SweepResult>& results,
                      const DriverConfig& config) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  std::fprintf(f,
               "{\n  \"bench\": \"thunderbolt_bench\",\n"
               "  \"executors\": %u,\n  \"runs\": %u,\n  \"records\": "
               "%" PRIu64 ",\n  \"shards\": %u,\n  \"placement\": \"%s\",\n"
               "  \"store\": \"%s\",\n  \"results\": [",
               config.executors, config.runs, config.records, config.shards,
               bench::JsonEscape(config.placement.policy).c_str(),
               bench::JsonEscape(config.store.name).c_str());
  // Percentiles over zero samples are meaningless, not zero: an idle cell
  // emits null so downstream tooling cannot mistake it for a fast run.
  auto latency_or_null = [](const SweepResult& r, double value) {
    if (r.latency_samples == 0) return std::string("null");
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.1f", value);
    return std::string(buf);
  };
  for (size_t i = 0; i < results.size(); ++i) {
    const SweepResult& r = results[i];
    std::fprintf(
        f,
        "%s\n    {\"workload\": \"%s\", \"engine\": \"%s\", "
        "\"pool\": \"%s\", \"threads\": %u, "
        "\"batch_size\": %u, \"theta\": %.3f, \"txns\": %" PRIu64
        ", \"tps\": %.1f, \"latency_samples\": %" PRIu64
        ", \"p50_latency_us\": %s, \"p99_latency_us\": "
        "%s, \"p999_latency_us\": %s, \"aborts\": %" PRIu64
        ", \"abort_reasons\": {",
        i == 0 ? "" : ",", bench::JsonEscape(r.workload).c_str(),
        bench::JsonEscape(r.engine).c_str(), bench::JsonEscape(r.pool).c_str(),
        r.threads, r.batch_size, r.theta, r.txns, r.tps, r.latency_samples,
        latency_or_null(r, r.p50_latency_us).c_str(),
        latency_or_null(r, r.p99_latency_us).c_str(),
        latency_or_null(r, r.p999_latency_us).c_str(), r.aborts);
    // kNone (index 0) never reaches the callback; emit the real causes.
    for (size_t reason = 1; reason < obs::kNumAbortReasons; ++reason) {
      std::fprintf(
          f, "%s\"%s\": %" PRIu64, reason == 1 ? "" : ", ",
          obs::AbortReasonName(static_cast<obs::AbortReason>(reason)),
          r.abort_reasons[reason]);
    }
    std::fprintf(
        f,
        "}, \"phase_latency\": %s, \"re_execs_per_txn\": %.4f, "
        "\"cross_frac\": %.4f, \"invariant_ok\": %s",
        r.phases.ToJson().c_str(), r.re_execs_per_txn, r.cross_frac,
        r.invariant_ok ? "true" : "false");
    if (config.service.config.enabled) {
      // Open-loop cells carry the front end's accounting; closed-loop
      // JSON keeps its historical schema.
      std::fprintf(f,
                   ", \"offered\": %" PRIu64 ", \"admitted\": %" PRIu64
                   ", \"shed\": %" PRIu64 ", \"rejected\": %" PRIu64,
                   r.offered, r.admitted, r.shed, r.rejected);
    }
    std::fprintf(f, "}");
  }
  std::fprintf(f, "%s\n  ]\n}\n", results.empty() ? "" : "\n");
  std::fclose(f);
  return true;
}

DriverConfig ParseFlags(int argc, char** argv) {
  DriverConfig config;
  const bool smoke = bench::HasFlag(argc, argv, "smoke");
  std::string workloads = bench::FlagValue(argc, argv, "workload");
  if (workloads.empty() || workloads == "all") {
    config.workloads = workload::WorkloadRegistry::Global().Names();
  } else {
    config.workloads = SplitList(workloads);
  }
  std::string engines = bench::FlagValue(argc, argv, "engine");
  if (engines.empty() || engines == "all") {
    config.engines = {"serial", "occ", "2pl", "ce"};
  } else {
    config.engines = SplitList(engines);
  }
  std::string batches = bench::FlagValue(argc, argv, "batch");
  for (const std::string& b : SplitList(batches)) {
    uint32_t size = static_cast<uint32_t>(std::strtoul(b.c_str(), nullptr, 10));
    if (size == 0) {
      std::fprintf(stderr, "invalid --batch entry \"%s\"\n", b.c_str());
      std::exit(2);
    }
    config.batch_sizes.push_back(size);
  }
  if (config.batch_sizes.empty()) {
    config.batch_sizes = smoke ? std::vector<uint32_t>{64}
                               : std::vector<uint32_t>{100, 300};
  }
  std::string thetas = bench::FlagValue(argc, argv, "theta");
  for (const std::string& t : SplitList(thetas)) {
    char* end = nullptr;
    double theta = std::strtod(t.c_str(), &end);
    if (end == t.c_str() || *end != '\0' || theta < 0 || theta >= 1) {
      std::fprintf(stderr, "invalid --theta entry \"%s\" (need [0, 1))\n",
                   t.c_str());
      std::exit(2);
    }
    config.thetas.push_back(theta);
  }
  if (config.thetas.empty()) config.thetas = {0.85};
  std::string executors = bench::FlagValue(argc, argv, "executors");
  if (!executors.empty()) {
    config.executors =
        static_cast<uint32_t>(std::strtoul(executors.c_str(), nullptr, 10));
    if (config.executors == 0) {
      std::fprintf(stderr, "invalid --executors \"%s\"\n", executors.c_str());
      std::exit(2);
    }
  }
  std::string pools = bench::FlagValue(argc, argv, "pool");
  if (pools.empty()) {
    config.pools = {"sim"};
  } else {
    config.pools = SplitList(pools);
  }
  std::string threads = bench::FlagValue(argc, argv, "threads");
  for (const std::string& t : SplitList(threads)) {
    uint32_t count =
        static_cast<uint32_t>(std::strtoul(t.c_str(), nullptr, 10));
    if (count == 0) {
      std::fprintf(stderr, "invalid --threads entry \"%s\"\n", t.c_str());
      std::exit(2);
    }
    config.threads.push_back(count);
  }
  std::string runs = bench::FlagValue(argc, argv, "runs");
  if (!runs.empty()) {
    config.runs =
        static_cast<uint32_t>(std::strtoul(runs.c_str(), nullptr, 10));
    if (config.runs == 0) {
      std::fprintf(stderr, "invalid --runs \"%s\"\n", runs.c_str());
      std::exit(2);
    }
  }
  std::string records = bench::FlagValue(argc, argv, "records");
  if (!records.empty()) {
    config.records = std::strtoull(records.c_str(), nullptr, 10);
    if (config.records == 0) {
      std::fprintf(stderr, "invalid --records \"%s\"\n", records.c_str());
      std::exit(2);
    }
  }
  std::string shards = bench::FlagValue(argc, argv, "shards");
  if (!shards.empty()) {
    config.shards =
        static_cast<uint32_t>(std::strtoul(shards.c_str(), nullptr, 10));
    if (config.shards == 0) {
      std::fprintf(stderr, "invalid --shards \"%s\"\n", shards.c_str());
      std::exit(2);
    }
  }
  config.placement = bench::PlacementFromFlags(argc, argv);
  config.store = bench::StoreFromFlags(argc, argv);
  config.obs = bench::ObsFromFlags(argc, argv);
  config.service = bench::ServiceFromFlags(argc, argv);
  if (config.service.config.enabled) {
    // Open loop needs the virtual clock (arrivals are sim events) and a
    // pipeline to backpressure: "serial" executes inline with no admission
    // point, and the thread pool runs on wall time. A defaulted "all"
    // engine list just drops serial; an explicit request is an error.
    for (const std::string& pool_name : config.pools) {
      if (pool_name != "sim") {
        std::fprintf(stderr,
                     "--arrival/--rate (open loop) requires --pool sim: "
                     "arrivals are virtual-time events\n");
        std::exit(2);
      }
    }
    const bool serial_explicit = !engines.empty() && engines != "all";
    std::vector<std::string> kept;
    for (const std::string& engine_name : config.engines) {
      if (engine_name != "serial") {
        kept.push_back(engine_name);
        continue;
      }
      if (serial_explicit) {
        std::fprintf(stderr,
                     "--arrival/--rate (open loop) does not support the "
                     "\"serial\" engine: it executes inline with no "
                     "admission pipeline\n");
        std::exit(2);
      }
    }
    config.engines = std::move(kept);
  }
  config.params = bench::FlagValue(argc, argv, "params");
  // The driver's own flags/sweep own these axes; a --params override would
  // be clobbered per cell and mislabel the JSON series.
  bench::RejectReservedParams(
      config.params, {"theta", "num_records", "num_accounts", "num_shards"});
  std::string json = bench::FlagValue(argc, argv, "json");
  if (!json.empty()) config.json_path = json;
  // Smoke shrinks only what the user didn't set explicitly.
  if (smoke) {
    if (runs.empty()) config.runs = 2;
    if (records.empty()) config.records = 200;
  }
  // --threads defaults to the single --executors width, keeping the
  // historical sweep shape when the axis isn't exercised.
  if (config.threads.empty()) config.threads = {config.executors};
  return config;
}

}  // namespace
}  // namespace thunderbolt

int main(int argc, char** argv) {
  using namespace thunderbolt;
  baselines::RegisterBaselineEngines();
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--list") {
      for (const std::string& name :
           workload::WorkloadRegistry::Global().Names()) {
        std::printf("%s\n", name.c_str());
      }
      return 0;
    }
    if (std::string(argv[i]) == "--engine-list") {
      std::printf("serial\n");  // ExecuteSerial path, not a BatchEngine.
      for (const std::string& name : ce::EngineRegistry::Global().Names()) {
        std::printf("%s\n", name.c_str());
      }
      return 0;
    }
    if (std::string(argv[i]) == "--placement-list") {
      for (const std::string& name :
           placement::PlacementRegistry::Global().Names()) {
        std::printf("%s\n", name.c_str());
      }
      return 0;
    }
    if (std::string(argv[i]) == "--store-list") {
      for (const std::string& name :
           storage::StoreRegistry::Global().Names()) {
        std::printf("%s\n", name.c_str());
      }
      return 0;
    }
  }
  DriverConfig config = ParseFlags(argc, argv);
  bench::Banner("thunderbolt_bench", "workload x engine x batch/skew sweep",
                "CE sustains the highest throughput with the fewest "
                "re-executions as batch size and skew grow");
  if (config.shards > 1 || config.store.name != "mem") {
    std::printf("shards: %u  placement: %s  store: %s\n", config.shards,
                config.placement.policy.c_str(), config.store.name.c_str());
  }
  if (config.service.config.enabled) {
    std::printf(
        "open loop: arrival=%s rate=%.0f tps admission=%s queue-depth=%u\n",
        config.service.config.arrival.c_str(),
        config.service.config.rate_tps,
        config.service.config.admission.c_str(),
        config.service.config.queue_depth);
  }
  bench::Table table({"workload", "engine", "pool", "thr", "batch", "theta",
                      "tput(tps)", "p50(us)", "p99(us)", "p999(us)",
                      "re-exec/txn", "crossfrac", "invariant"},
                     "sweep");
  std::vector<SweepResult> results;
  bool all_ok = true;
  // One bundle for the whole sweep; each cell's pool re-records into it,
  // so --trace-out captures the final cell (ring keeps the newest events)
  // and --metrics-out aggregates pool.* across the entire sweep.
  std::unique_ptr<obs::Observability> obs = config.obs.MakeBundle();
  // Sweep-level time-series clock: cells run back to back on one virtual
  // timeline, sampled at each cell boundary (Capture flushes the tail).
  uint64_t sweep_clock_us = 0;
  for (const std::string& workload_name : config.workloads) {
    for (const std::string& engine_name : config.engines) {
      for (const std::string& pool_name : config.pools) {
        for (uint32_t threads : config.threads) {
          for (uint32_t batch_size : config.batch_sizes) {
            for (double theta : config.thetas) {
              auto cell =
                  RunCell(config, workload_name, engine_name, pool_name,
                          threads, batch_size, theta, obs.get());
              if (!cell.ok()) {
                std::fprintf(stderr, "%s/%s/%s t%u b%u theta %.2f failed: %s\n",
                             workload_name.c_str(), engine_name.c_str(),
                             pool_name.c_str(), threads, batch_size, theta,
                             cell.status().ToString().c_str());
                all_ok = false;
                continue;
              }
              if (!cell->invariant_ok) all_ok = false;
              sweep_clock_us += cell->total_time;
              obs->SampleWindow(sweep_clock_us);
              results.push_back(*cell);
              table.Row({cell->workload, cell->engine, cell->pool,
                         bench::FmtInt(cell->threads),
                         bench::FmtInt(cell->batch_size),
                         bench::Fmt(cell->theta, 2), bench::Fmt(cell->tps, 0),
                         cell->latency_samples == 0
                             ? "-"
                             : bench::Fmt(cell->p50_latency_us, 1),
                         cell->latency_samples == 0
                             ? "-"
                             : bench::Fmt(cell->p99_latency_us, 1),
                         cell->latency_samples == 0
                             ? "-"
                             : bench::Fmt(cell->p999_latency_us, 1),
                         bench::Fmt(cell->re_execs_per_txn, 3),
                         bench::Fmt(cell->cross_frac, 3),
                         cell->invariant_ok ? "ok" : "VIOLATED"});
            }
          }
        }
      }
    }
  }
  if (!WriteResultsJson(config.json_path, results, config)) {
    std::fprintf(stderr, "failed to write %s\n", config.json_path.c_str());
    return 1;
  }
  std::printf("\n%zu results written to %s\n", results.size(),
              config.json_path.c_str());
  config.obs.Capture(*obs);
  if (config.obs.WriteIfRequested() != 0) return 1;
  return all_ok ? 0 : 1;
}
