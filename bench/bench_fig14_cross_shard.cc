// Figure 14: throughput & latency vs fraction of cross-shard transactions
// (P%) on 16 replicas, for Thunderbolt, Thunderbolt-OCC and Tusk.
// `--workload ycsb|tpcc_lite` re-runs the sweep on any registered workload
// (each honors cross_shard_ratio through its own cross-shard generator).
// `--placement locality|directory|range` swaps the account -> shard
// policy: the crossfrac column (committed cross-shard fraction) is the
// direct read-out of how much cross-shard traffic a policy avoids at the
// same requested cross_shard_ratio.
#include "bench/bench_util.h"
#include "core/cluster.h"

namespace thunderbolt {
namespace {

void RunSweep(core::ExecutionMode mode, const char* name,
              const std::string& workload_name,
              workload::WorkloadOptions options,
              const bench::PlacementSelection& placement,
              const bench::StoreSelection& store, bench::ObsSelection* obs,
              SimTime duration, bench::Table& table) {
  for (double pct : {0.0, 0.04, 0.08, 0.20, 0.60, 1.0}) {
    core::ThunderboltConfig cfg;
    cfg.n = 16;
    cfg.mode = mode;
    cfg.batch_size = 500;
    cfg.seed = 90;
    placement.ApplyTo(&cfg);
    store.ApplyTo(&cfg);
    obs->ApplyTo(&cfg);
    options.cross_shard_ratio = pct;
    core::Cluster cluster(cfg, workload_name, options);
    core::ClusterResult r = cluster.Run(duration);
    obs->Capture(cluster.obs());
    const uint64_t committed = r.committed_single + r.committed_cross;
    const double cross_frac =
        committed == 0
            ? 0
            : static_cast<double>(r.committed_cross) /
                  static_cast<double>(committed);
    table.Row({name, bench::Fmt(pct * 100, 0), bench::Fmt(r.throughput_tps, 0),
               bench::Fmt(r.avg_latency_s, 2),
               bench::FmtInt(r.committed_single),
               bench::FmtInt(r.committed_cross), bench::Fmt(cross_frac, 3),
               bench::FmtInt(r.conversions), bench::FmtInt(r.skip_blocks)});
  }
}

}  // namespace
}  // namespace thunderbolt

int main(int argc, char** argv) {
  using namespace thunderbolt;
  const SimTime duration =
      bench::QuickMode(argc, argv) ? Seconds(2) : Seconds(5);
  workload::WorkloadOptions options;
  const std::string workload_name = bench::ClusterWorkloadFromFlags(
      argc, argv, &options, /*seed=*/91, {"cross_shard_ratio"});
  const bench::PlacementSelection placement =
      bench::PlacementFromFlags(argc, argv);
  const bench::StoreSelection store = bench::StoreFromFlags(argc, argv);
  bench::ObsSelection obs = bench::ObsFromFlags(argc, argv);
  bench::Banner(
      "Figure 14", "cross-shard transaction ratio sweep on 16 replicas",
      "both Thunderbolt variants decline as P grows; at P=8% Thunderbolt "
      "sustains ~4x Thunderbolt-OCC; at P=100% Thunderbolt still beats "
      "Tusk (~19K vs ~10K tps in the paper) thanks to SID-parallel OE "
      "execution; Thunderbolt latency roughly half of Thunderbolt-OCC "
      "under high contention");
  std::printf("workload: %s  placement: %s  store: %s\n",
              workload_name.c_str(), placement.policy.c_str(),
              store.name.c_str());
  bench::Table table({"system", "cross%", "tput(tps)", "latency(s)",
                      "single", "cross", "crossfrac", "converted", "skips"});
  RunSweep(core::ExecutionMode::kThunderbolt, "Thunderbolt", workload_name,
           options, placement, store, &obs, duration, table);
  RunSweep(core::ExecutionMode::kThunderboltOcc, "Thunderbolt-OCC",
           workload_name, options, placement, store, &obs, duration, table);
  RunSweep(core::ExecutionMode::kTusk, "Tusk", workload_name, options,
           placement, store, &obs, duration, table);
  return bench::WriteTablesJsonIfRequested(argc, argv, "fig14") |
         obs.WriteIfRequested();
}
