// Ablation: rule-P4 immediate conversion vs section-5.4 Skip-block
// deferral for conflicting single-shard transactions (DESIGN.md section
// 2.3). 8 replicas, varying cross-shard pressure; SmallBank by default,
// `--workload <name>` for any registered workload.
//
// Expectation: conversion keeps the pipeline busy (conflicting work moves
// to the OE path immediately); deferral preserves more preplay (higher
// single-shard share) at the cost of Skip rounds and added latency for the
// deferred transactions. Both are safe (no invalid blocks).
#include "bench/bench_util.h"
#include "core/cluster.h"

int main(int argc, char** argv) {
  using namespace thunderbolt;
  const SimTime duration =
      bench::QuickMode(argc, argv) ? Seconds(2) : Seconds(4);
  workload::WorkloadOptions options;
  const std::string workload_name = bench::ClusterWorkloadFromFlags(
      argc, argv, &options, /*seed=*/312, {"cross_shard_ratio"});
  const bench::PlacementSelection placement =
      bench::PlacementFromFlags(argc, argv);
  const bench::StoreSelection store = bench::StoreFromFlags(argc, argv);
  bench::ObsSelection obs = bench::ObsFromFlags(argc, argv);
  bench::Banner(
      "Ablation", "P4 immediate conversion vs 5.4 Skip-block deferral",
      "conversion mode sustains throughput via the OE path; skip mode "
      "preserves a higher preplayed share but emits Skip blocks and "
      "defers conflicting work");
  std::printf("workload: %s  placement: %s  store: %s\n",
              workload_name.c_str(), placement.policy.c_str(),
              store.name.c_str());
  bench::Table table({"mode", "cross%", "tput(tps)", "latency(s)",
                      "single", "cross", "converted", "skips"});
  for (bool use_skip : {false, true}) {
    for (double pct : {0.04, 0.2, 0.6}) {
      core::ThunderboltConfig cfg;
      cfg.n = 8;
      cfg.batch_size = 500;
      cfg.use_skip_blocks = use_skip;
      cfg.seed = 311;
      placement.ApplyTo(&cfg);
      store.ApplyTo(&cfg);
      obs.ApplyTo(&cfg);
      options.cross_shard_ratio = pct;
      core::Cluster cluster(cfg, workload_name, options);
      core::ClusterResult r = cluster.Run(duration);
      obs.Capture(cluster.obs());
      table.Row({use_skip ? "skip-5.4" : "convert-P4",
                 bench::Fmt(pct * 100, 0), bench::Fmt(r.throughput_tps, 0),
                 bench::Fmt(r.avg_latency_s, 2),
                 bench::FmtInt(r.committed_single),
                 bench::FmtInt(r.committed_cross),
                 bench::FmtInt(r.conversions), bench::FmtInt(r.skip_blocks)});
    }
  }
  return bench::WriteTablesJsonIfRequested(argc, argv, "ablation_skip") |
         obs.WriteIfRequested();
}
