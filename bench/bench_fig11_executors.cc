// Figure 11: Concurrent Executor evaluation vs OCC and 2PL-No-Wait across
// executor counts.
//
//   (a) read-write balanced workload (Pr = 0.5)
//   (b) update-only workload (Pr = 0)
//
// For each engine x batch size (300/500) x executor count {1,4,8,12,16}:
// throughput (tps), mean latency (s), and mean re-executions per txn over
// the SmallBank workload with 10,000 accounts at theta = 0.85 — the
// paper's CE experiment setup (section 11).
#include <memory>

#include "baselines/occ_engine.h"
#include "baselines/tpl_nowait_engine.h"
#include "bench/bench_util.h"
#include "ce/concurrency_controller.h"
#include "ce/executor_pool.h"
#include "contract/contract.h"
#include "workload/smallbank_workload.h"

namespace thunderbolt {
namespace {

struct EngineSpec {
  const char* name;
  int kind;  // 0 = Thunderbolt CE, 1 = OCC, 2 = 2PL-No-Wait.
};

struct Measurement {
  double tps = 0;
  double latency_s = 0;
  double re_executions = 0;
};

Measurement RunConfig(int kind, uint32_t executors, uint32_t batch_size,
                      double read_ratio, uint32_t runs,
                      const bench::StoreSelection& store_sel,
                      const bench::PoolSelection& pool_sel,
                      obs::Observability* obs) {
  workload::SmallBankConfig wc;
  wc.num_accounts = 10000;
  wc.theta = 0.85;
  wc.read_ratio = read_ratio;
  wc.seed = 1234;
  workload::SmallBankWorkload w(wc);
  std::unique_ptr<storage::KVStore> store = store_sel.Create();
  w.InitStore(store.get());
  auto registry = contract::Registry::CreateDefault();

  std::unique_ptr<ce::ExecutorPool> pool = pool_sel.Create(executors);
  pool->SetObs(ce::PoolObsContext{obs->tracer(), &obs->metrics(), 0});
  SimTime total_time = 0;
  uint64_t total_txns = 0, total_aborts = 0;
  double latency_sum = 0;
  for (uint32_t run = 0; run < runs; ++run) {
    auto batch = w.MakeBatch(batch_size);
    std::unique_ptr<ce::BatchEngine> engine;
    switch (kind) {
      case 0:
        engine = std::make_unique<ce::ConcurrencyController>(store.get(),
                                                             batch_size);
        break;
      case 1:
        engine =
            std::make_unique<baselines::OccEngine>(store.get(), batch_size);
        break;
      default:
        engine = std::make_unique<baselines::TplNoWaitEngine>(store.get(),
                                                              batch_size);
        break;
    }
    auto r = pool->Run(*engine, *registry, batch);
    if (!r.ok()) {
      std::fprintf(stderr, "run failed: %s\n", r.status().ToString().c_str());
      continue;
    }
    store->Write(r->final_writes);
    total_time += r->duration;
    total_txns += batch_size;
    total_aborts += r->total_aborts;
    latency_sum += r->commit_latency_us.Mean();
  }
  Measurement m;
  m.tps = static_cast<double>(total_txns) / ToSeconds(total_time);
  m.latency_s = (latency_sum / runs) / 1e6;
  m.re_executions =
      static_cast<double>(total_aborts) / static_cast<double>(total_txns);
  return m;
}

void RunWorkload(const char* title, double read_ratio, uint32_t runs,
                 const bench::StoreSelection& store_sel,
                 const bench::PoolSelection& pool_sel,
                 obs::Observability* obs) {
  std::printf("\n--- %s ---\n", title);
  bench::Table table({"engine", "batch", "executors", "tput(tps)",
                      "latency(s)", "re-exec/txn"},
                     title);
  const EngineSpec engines[] = {
      {"Thunderbolt", 0}, {"OCC", 1}, {"2PL-No-Wait", 2}};
  for (const EngineSpec& engine : engines) {
    for (uint32_t batch : {300u, 500u}) {
      for (uint32_t executors : {1u, 4u, 8u, 12u, 16u}) {
        Measurement m = RunConfig(engine.kind, executors, batch,
                                  read_ratio, runs, store_sel, pool_sel, obs);
        table.Row({engine.name, bench::FmtInt(batch),
                   bench::FmtInt(executors), bench::Fmt(m.tps, 0),
                   bench::Fmt(m.latency_s, 4), bench::Fmt(m.re_executions, 3)});
      }
    }
  }
}

}  // namespace
}  // namespace thunderbolt

int main(int argc, char** argv) {
  using namespace thunderbolt;
  const uint32_t runs = bench::QuickMode(argc, argv) ? 4 : 20;
  const bench::StoreSelection store = bench::StoreFromFlags(argc, argv);
  const bench::PoolSelection pool = bench::PoolFromFlags(argc, argv);
  bench::ObsSelection obs_sel = bench::ObsFromFlags(argc, argv);
  // One bundle for the whole sweep: batch benches have no Cluster, so the
  // pools record into this standalone bundle directly.
  std::unique_ptr<obs::Observability> obs = obs_sel.MakeBundle();
  bench::Banner(
      "Figure 11", "CE vs OCC vs 2PL-No-Wait across executor counts",
      "throughput rises then plateaus (~12 executors for Thunderbolt/OCC); "
      "2PL-No-Wait degrades beyond 8 executors; Thunderbolt has the fewest "
      "re-executions (~50% of OCC, ~10% of 2PL at b500)");
  if (pool.name != "sim") {
    std::printf("pool: %s (wall-clock timings)\n", pool.name.c_str());
  }
  RunWorkload("(a) read-write balanced, Pr = 0.5", 0.5, runs, store, pool,
              obs.get());
  RunWorkload("(b) update-only, Pr = 0", 0.0, runs, store, pool, obs.get());
  obs_sel.Capture(*obs);
  return bench::WriteTablesJsonIfRequested(argc, argv, "fig11") |
         obs_sel.WriteIfRequested();
}
