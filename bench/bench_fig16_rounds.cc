// Figure 16: average commit runtime per 100 committed leader rounds with
// K' = 300, on 8 replicas. Demonstrates that the system does not stall
// across non-blocking reconfigurations: per-round runtime stays flat.
// `--workload <name>` sweeps any registered workload.
#include "bench/bench_util.h"
#include "core/cluster.h"

int main(int argc, char** argv) {
  using namespace thunderbolt;
  const SimTime duration =
      bench::QuickMode(argc, argv) ? Seconds(8) : Seconds(30);
  workload::WorkloadOptions options;
  const std::string workload_name =
      bench::ClusterWorkloadFromFlags(argc, argv, &options, /*seed=*/66);
  const bench::PlacementSelection placement =
      bench::PlacementFromFlags(argc, argv);
  const bench::StoreSelection store = bench::StoreFromFlags(argc, argv);
  bench::ObsSelection obs = bench::ObsFromFlags(argc, argv);
  bench::Banner(
      "Figure 16", "per-100-round commit runtime across reconfigurations",
      "runtime per round stays in a tight band (paper: 0.07-0.1 s) with no "
      "stall at reconfiguration boundaries (K'=300)");
  std::printf("workload: %s  placement: %s  store: %s\n",
              workload_name.c_str(), placement.policy.c_str(),
              store.name.c_str());

  core::ThunderboltConfig cfg;
  cfg.n = 8;
  cfg.batch_size = 500;
  cfg.reconfig_period_k_prime = 300;
  cfg.seed = 65;
  placement.ApplyTo(&cfg);
  store.ApplyTo(&cfg);
  obs.ApplyTo(&cfg);
  core::Cluster cluster(cfg, workload_name, options);
  core::ClusterResult r = cluster.Run(duration);
  obs.Capture(cluster.obs());

  bench::Table table({"commits", "avg-round-time(s)"});
  const auto& times = r.commit_times;
  const size_t window = 100;
  for (size_t start = 0; start + window <= times.size(); start += window) {
    double span = ToSeconds(times[start + window - 1].second) -
                  ToSeconds(times[start].second);
    table.Row({bench::FmtInt(start + window),
               bench::Fmt(span / static_cast<double>(window - 1), 4)});
  }
  if (times.size() < window) {
    std::printf("(fewer than %zu commits: %zu; run longer without --quick)\n",
                window, times.size());
  }
  std::printf("\nReconfigurations during the run: %llu\n",
              static_cast<unsigned long long>(r.reconfigurations));
  return bench::WriteTablesJsonIfRequested(argc, argv, "fig16") |
         obs.WriteIfRequested();
}
