// Figure 17: throughput & latency vs cross-shard ratio on 16 replicas when
// f replicas (f = 1 or 2) crash during the run, compared with the failure-
// free Thunderbolt and Tusk. `--workload <name>` sweeps any registered
// workload.
#include "bench/bench_util.h"
#include "core/cluster.h"

namespace thunderbolt {
namespace {

void RunSweep(core::ExecutionMode mode, const char* name, uint32_t failures,
              const std::string& workload_name,
              workload::WorkloadOptions options,
              const bench::PlacementSelection& placement,
              const bench::StoreSelection& store,
              const bench::ServiceSelection& service, bench::ObsSelection* obs,
              SimTime duration, bench::Table& table,
              obs::LatencyBreakdown* phases) {
  for (double pct : {0.0, 0.04, 0.08, 0.20, 0.60, 1.0}) {
    core::ThunderboltConfig cfg;
    cfg.n = 16;
    cfg.mode = mode;
    cfg.batch_size = 500;
    cfg.seed = 101;
    placement.ApplyTo(&cfg);
    store.ApplyTo(&cfg);
    service.ApplyTo(&cfg);
    obs->ApplyTo(&cfg);
    options.cross_shard_ratio = pct;
    core::Cluster cluster(cfg, workload_name, options);
    // Crash the highest-numbered replicas shortly after startup (the
    // observer, replica 0, must stay alive).
    for (uint32_t i = 0; i < failures; ++i) {
      cluster.CrashReplicaAt(15 - i, Millis(400));
    }
    core::ClusterResult r = cluster.Run(duration);
    phases->Merge(r.phase_latency);
    obs->Capture(cluster.obs());
    table.Row({name, bench::FmtInt(failures), bench::Fmt(pct * 100, 0),
               bench::Fmt(r.throughput_tps, 0),
               bench::Fmt(r.avg_latency_s, 2),
               bench::FmtInt(r.reconfigurations)});
  }
}

}  // namespace
}  // namespace thunderbolt

int main(int argc, char** argv) {
  using namespace thunderbolt;
  const SimTime duration =
      bench::QuickMode(argc, argv) ? Seconds(2) : Seconds(5);
  workload::WorkloadOptions options;
  const std::string workload_name = bench::ClusterWorkloadFromFlags(
      argc, argv, &options, /*seed=*/102, {"cross_shard_ratio"});
  const bench::PlacementSelection placement =
      bench::PlacementFromFlags(argc, argv);
  const bench::StoreSelection store = bench::StoreFromFlags(argc, argv);
  // --arrival/--rate run the failure sweep open-loop: throughput under
  // crashes is then capped by offered load, and latency is arrival->commit.
  const bench::ServiceSelection service = bench::ServiceFromFlags(argc, argv);
  bench::ObsSelection obs = bench::ObsFromFlags(argc, argv);
  bench::Banner(
      "Figure 17", "replica failures (f = 1, 2) on 16 replicas",
      "Thunderbolt keeps committing with crashed replicas: throughput "
      "drops roughly in proportion to lost shards (paper: 78K/66K tps at "
      "P=0 for f=1/f=2 vs 100K failure-free; 17K/15K at P=100%) while "
      "latency stays stable thanks to DAG leader rotation");
  std::printf("workload: %s  placement: %s  store: %s\n",
              workload_name.c_str(), placement.policy.c_str(),
              store.name.c_str());
  if (service.config.enabled) {
    std::printf("open loop: arrival=%s rate=%.0f tps admission=%s\n",
                service.config.arrival.c_str(), service.config.rate_tps,
                service.config.admission.c_str());
  }
  bench::Table table({"system", "failed", "cross%", "tput(tps)",
                      "latency(s)", "reconfigs"});
  obs::LatencyBreakdown phases;
  RunSweep(core::ExecutionMode::kThunderbolt, "Thunderbolt", 0,
           workload_name, options, placement, store, service, &obs, duration,
           table, &phases);
  RunSweep(core::ExecutionMode::kThunderbolt, "Thunderbolt/1", 1,
           workload_name, options, placement, store, service, &obs, duration,
           table, &phases);
  RunSweep(core::ExecutionMode::kThunderbolt, "Thunderbolt/2", 2,
           workload_name, options, placement, store, service, &obs, duration,
           table, &phases);
  RunSweep(core::ExecutionMode::kTusk, "Tusk", 0, workload_name, options,
           placement, store, service, &obs, duration, table, &phases);
  bench::PhaseLatencyTable(phases);
  return bench::WriteTablesJsonIfRequested(argc, argv, "fig17") |
         obs.WriteIfRequested();
}
