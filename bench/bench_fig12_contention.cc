// Figure 12: Concurrent Executor under varying contention.
//
//   (a,b) theta sweep {0.75, 0.8, 0.85, 0.9} at Pr = 0.5
//   (c,d) Pr sweep {1, 0.8, 0.5, 0.1, 0} at theta = 0.85
//
// Engines: Thunderbolt CE, OCC, 2PL-No-Wait; batch sizes 300 and 500;
// 12 executors (the plateau point of Figure 11).
#include <memory>

#include "baselines/occ_engine.h"
#include "baselines/tpl_nowait_engine.h"
#include "bench/bench_util.h"
#include "ce/concurrency_controller.h"
#include "ce/executor_pool.h"
#include "contract/contract.h"
#include "workload/smallbank_workload.h"

namespace thunderbolt {
namespace {

struct Measurement {
  double tps = 0;
  double latency_s = 0;
};

/// Sweep-wide accumulators: the per-phase latency decomposition and the
/// virtual clock the time-series windows ride (cells run back to back on
/// one timeline, sampled at each cell boundary).
struct SweepObs {
  obs::LatencyBreakdown phases;
  uint64_t clock_us = 0;
};

Measurement RunConfig(int kind, uint32_t batch_size, double theta,
                      double read_ratio, uint32_t runs,
                      const bench::StoreSelection& store_sel,
                      const bench::PoolSelection& pool_sel,
                      obs::Observability* obs, SweepObs* sweep) {
  workload::SmallBankConfig wc;
  wc.num_accounts = 10000;
  wc.theta = theta;
  wc.read_ratio = read_ratio;
  wc.seed = 4321;
  workload::SmallBankWorkload w(wc);
  std::unique_ptr<storage::KVStore> store = store_sel.Create();
  w.InitStore(store.get());
  auto registry = contract::Registry::CreateDefault();
  // 12 executors: the Figure 11 plateau point.
  std::unique_ptr<ce::ExecutorPool> pool = pool_sel.Create(12);
  pool->SetObs(ce::PoolObsContext{obs->tracer(), &obs->metrics(), 0});

  SimTime total_time = 0;
  uint64_t total_txns = 0;
  double latency_sum = 0;
  for (uint32_t run = 0; run < runs; ++run) {
    auto batch = w.MakeBatch(batch_size);
    std::unique_ptr<ce::BatchEngine> engine;
    switch (kind) {
      case 0:
        engine = std::make_unique<ce::ConcurrencyController>(store.get(),
                                                             batch_size);
        break;
      case 1:
        engine =
            std::make_unique<baselines::OccEngine>(store.get(), batch_size);
        break;
      default:
        engine = std::make_unique<baselines::TplNoWaitEngine>(store.get(),
                                                              batch_size);
        break;
    }
    auto r = pool->Run(*engine, *registry, batch);
    if (!r.ok()) continue;
    store->Write(r->final_writes);
    total_time += r->duration;
    total_txns += batch_size;
    latency_sum += r->commit_latency_us.Mean();
    sweep->phases.Merge(r->phases);
  }
  sweep->clock_us += total_time;
  obs->SampleWindow(sweep->clock_us);
  Measurement m;
  m.tps = static_cast<double>(total_txns) / ToSeconds(total_time);
  m.latency_s = (latency_sum / runs) / 1e6;
  return m;
}

const char* kEngineNames[] = {"Thunderbolt", "OCC", "2PL-No-Wait"};

void ThetaSweep(uint32_t runs, const bench::StoreSelection& store,
                const bench::PoolSelection& pool, obs::Observability* obs,
                SweepObs* sweep) {
  std::printf("\n--- (a,b) theta sweep, Pr = 0.5 ---\n");
  bench::Table table(
      {"engine", "batch", "theta", "tput(tps)", "latency(s)"},
      "theta_sweep");
  for (int kind = 0; kind < 3; ++kind) {
    for (uint32_t batch : {300u, 500u}) {
      for (double theta : {0.75, 0.8, 0.85, 0.9}) {
        Measurement m =
            RunConfig(kind, batch, theta, 0.5, runs, store, pool, obs,
                      sweep);
        table.Row({kEngineNames[kind], bench::FmtInt(batch),
                   bench::Fmt(theta, 2), bench::Fmt(m.tps, 0),
                   bench::Fmt(m.latency_s, 4)});
      }
    }
  }
}

void ReadRatioSweep(uint32_t runs, const bench::StoreSelection& store,
                    const bench::PoolSelection& pool, obs::Observability* obs,
                    SweepObs* sweep) {
  std::printf("\n--- (c,d) Pr sweep, theta = 0.85 ---\n");
  bench::Table table({"engine", "batch", "Pr", "tput(tps)", "latency(s)"},
                     "read_ratio_sweep");
  for (int kind = 0; kind < 3; ++kind) {
    for (uint32_t batch : {300u, 500u}) {
      for (double pr : {1.0, 0.8, 0.5, 0.1, 0.0}) {
        Measurement m =
            RunConfig(kind, batch, 0.85, pr, runs, store, pool, obs,
                      sweep);
        table.Row({kEngineNames[kind], bench::FmtInt(batch),
                   bench::Fmt(pr, 1), bench::Fmt(m.tps, 0),
                   bench::Fmt(m.latency_s, 4)});
      }
    }
  }
}

}  // namespace
}  // namespace thunderbolt

int main(int argc, char** argv) {
  using namespace thunderbolt;
  const uint32_t runs = bench::QuickMode(argc, argv) ? 4 : 20;
  const bench::StoreSelection store = bench::StoreFromFlags(argc, argv);
  const bench::PoolSelection pool = bench::PoolFromFlags(argc, argv);
  bench::ObsSelection obs_sel = bench::ObsFromFlags(argc, argv);
  // One bundle for the whole sweep: batch benches have no Cluster, so the
  // pools record into this standalone bundle directly.
  std::unique_ptr<obs::Observability> obs = obs_sel.MakeBundle();
  bench::Banner(
      "Figure 12", "CE under varying contention (theta) and read ratio (Pr)",
      "comparable Thunderbolt/OCC at theta=0.75; OCC declines sharply by "
      "theta=0.9 while Thunderbolt stays ahead; at Pr=1 all engines "
      "converge (OCC slightly best); lower Pr hurts 2PL most and "
      "Thunderbolt beats OCC on write-heavy mixes");
  if (pool.name != "sim") {
    std::printf("pool: %s (wall-clock timings)\n", pool.name.c_str());
  }
  SweepObs sweep;
  ThetaSweep(runs, store, pool, obs.get(), &sweep);
  ReadRatioSweep(runs, store, pool, obs.get(), &sweep);
  bench::PhaseLatencyTable(sweep.phases);
  obs_sel.Capture(*obs);
  return bench::WriteTablesJsonIfRequested(argc, argv, "fig12") |
         obs_sel.WriteIfRequested();
}
