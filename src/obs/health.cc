#include "obs/health.h"

namespace thunderbolt::obs {

namespace {

/// Commits this window: the cluster counters when the cluster commit path
/// is live, the pool throughput counters otherwise.
uint64_t CommitsIn(const TimeSeriesWindow& w) {
  const uint64_t cluster =
      w.Delta("cluster.commits_single") + w.Delta("cluster.commits_cross");
  if (cluster > 0 || w.counter_deltas.count("cluster.commits_single") > 0 ||
      w.counter_deltas.count("cluster.commits_cross") > 0) {
    return cluster;
  }
  return w.Delta("pool.sim.txns") + w.Delta("pool.thread.txns");
}

uint64_t AbortsIn(const TimeSeriesWindow& w) {
  return w.Delta("pool.sim.restarts") + w.Delta("pool.thread.restarts");
}

double QueueDepthIn(const TimeSeriesWindow& w) {
  double depth = 0;
  for (const char* name : {"pool.sim.queue_depth", "pool.thread.queue_depth"}) {
    auto it = w.gauges.find(name);
    if (it != w.gauges.end() && it->second > depth) depth = it->second;
  }
  // Admission-queue depths from the service front end, one labeled gauge
  // per shard (svc.queue_depth{shard=k}); gauges is an ordered map, so the
  // labeled family is a contiguous prefix range. Deepest queue wins: one
  // saturated shard is queue growth even if the others drain fine.
  static constexpr char kSvcDepth[] = "svc.queue_depth";
  static constexpr size_t kSvcDepthLen = sizeof(kSvcDepth) - 1;
  for (auto it = w.gauges.lower_bound(kSvcDepth);
       it != w.gauges.end() &&
       it->first.compare(0, kSvcDepthLen, kSvcDepth) == 0;
       ++it) {
    if (it->second > depth) depth = it->second;
  }
  return depth;
}

}  // namespace

HealthMonitor::HealthMonitor(MetricsRegistry* metrics, Tracer* tracer,
                             HealthThresholds thresholds)
    : metrics_(metrics),
      tracer_(tracer ? tracer : NullTracerInstance()),
      thresholds_(thresholds) {}

void HealthMonitor::Emit(HealthAlert alert, uint64_t end_us) {
  ++alerts_;
  metrics_->GetCounter("health.alerts").Inc();
  if (tracer_->enabled()) {
    TraceEvent e;
    e.kind = EventKind::kHealth;
    e.ts_us = end_us;
    e.a = static_cast<uint64_t>(alert);
    e.b = window_index_;
    tracer_->Record(e);
  }
}

void HealthMonitor::OnWindow(const TimeSeriesWindow& window) {
  const uint64_t commits = CommitsIn(window);
  const uint64_t aborts = AbortsIn(window);
  const double depth = QueueDepthIn(window);

  // Commit-progress stall: fires once per run of consecutive sub-watermark
  // windows, when the run reaches the configured length.
  if (commits < thresholds_.min_commits_per_window) {
    ++stalled_windows_;
    if (stalled_windows_ == thresholds_.stall_windows) {
      Emit(HealthAlert::kCommitStall, window.end_us);
    }
  } else {
    stalled_windows_ = 0;
  }
  metrics_->GetGauge("health.commit_stalled")
      .Set(stalled_windows_ >= thresholds_.stall_windows ? 1.0 : 0.0);

  // Abort-rate spike.
  const double rate =
      commits + aborts > 0
          ? static_cast<double>(aborts) / static_cast<double>(commits + aborts)
          : 0.0;
  metrics_->GetGauge("health.abort_rate").Set(rate);
  if (aborts > 0 && rate > thresholds_.abort_rate_spike) {
    Emit(HealthAlert::kAbortRateSpike, window.end_us);
  }

  // Queue-depth growth vs the trailing average of previous windows.
  if (queue_depth_samples_ > 0) {
    const double avg =
        queue_depth_sum_ / static_cast<double>(queue_depth_samples_);
    metrics_->GetGauge("health.queue_depth_trend")
        .Set(avg > 0 ? depth / avg : 0.0);
    if (avg > 0 && depth > thresholds_.queue_depth_growth * avg) {
      Emit(HealthAlert::kQueueGrowth, window.end_us);
    }
  }
  queue_depth_sum_ += depth;
  ++queue_depth_samples_;
  ++window_index_;
}

}  // namespace thunderbolt::obs
