// Transaction-lifecycle event tracing.
//
// A Tracer is a sink for TraceEvent records emitted by the executor pools,
// the engines (via the abort callback's AbortReason), and the sharded
// cluster (validation, epoch fences, reconfiguration, migration, crashes).
// The default sink is the no-op NullTracer, so a disabled trace costs one
// virtual call guarded by one `enabled()` branch (see bench_micro
// BM_TraceDisabled). The real sink is RingTracer: a bounded, mutex-guarded
// ring buffer that keeps the most recent `capacity` events and exports them
// as Chrome trace-event-format JSON — load the file at https://ui.perfetto.dev
// or chrome://tracing.
//
// Timestamps are supplied by the recorder, not the tracer: virtual SimTime
// microseconds under the sim executor pool (same seed -> byte-identical
// trace JSON, asserted by determinism_test) and steady_clock microseconds
// under the thread pool (wall-clock, nondeterministic by nature).
#ifndef THUNDERBOLT_OBS_TRACE_H_
#define THUNDERBOLT_OBS_TRACE_H_

#include <cstddef>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace thunderbolt::obs {

/// Why a transaction was torn down and re-queued. Threaded through the
/// BatchEngine abort callback (ce/batch_engine.h), so the executor pools
/// can break total_aborts down by cause.
enum class AbortReason : uint8_t {
  kNone = 0,
  /// CC: no consistent read source exists for the acting transaction
  /// (paper section 8.4 case 1).
  kReadWriteConflict,
  /// CC: a victim of someone else's abort or re-write — its consumed value
  /// was invalidated (section 8.4 case 2, Figure 10b).
  kCascadeInvalidation,
  /// OCC: version check failed in the Finish validate+commit section.
  kValidationFailure,
  /// 2PL-No-Wait: a read/write/upgrade lock could not be granted.
  kLockAcquireFailure,
  /// Pool: the per-transaction consecutive-restart bound tripped; the
  /// batch fails with Internal (livelock guard, ce/executor_pool.h).
  kRestartBound,
};

inline constexpr size_t kNumAbortReasons = 6;

/// Stable snake_case name, used as the JSON field / trace-arg spelling.
const char* AbortReasonName(AbortReason reason);

/// What a TraceEvent describes. Span kinds carry a duration; instant kinds
/// are points in time.
enum class EventKind : uint8_t {
  kTxnSpan = 0,     // Span: one transaction, admit/start -> last attempt end.
  kTxnCommit,       // Instant: transaction entered the serialization order.
  kTxnRestart,      // Instant: transaction aborted + re-queued (has reason).
  kBatchSpan,       // Span: one batch through an executor pool.
  kWave,            // Instant: thread pool double-buffer swap.
  kValidateSpan,    // Span: replica validation replay of a committed block.
  kCrossShardSpan,  // Span: committed cross-shard batch execution.
  kEpochFence,      // Instant: epoch boundary fence at a replica.
  kReconfiguration, // Instant: reconfiguration (DAG switch) completed.
  kMigration,       // Instant: hot-key migration batch applied.
  kCrash,           // Instant: replica crashed.
  kWalAppend,       // Span: one WAL group-commit barrier (buffered frames flushed).
  kWalCheckpoint,   // Span: checkpoint written + log truncated.
  kWalRecover,      // Span: recovery replay (checkpoint load + log suffix).
  kCrossHoldSpan,   // Span: one cross-shard txn's hold on one participant shard.
  kHealth,          // Instant: HealthMonitor watermark alert.
};

/// Trace-viewer name for the kind ("txn", "commit", "restart", ...).
const char* EventKindName(EventKind kind);

/// Position of a span in a cross-shard causal chain. Spans with
/// flow != kNone additionally export Chrome *flow* records ("ph":"s"/"t"/
/// "f" sharing the span's trace_id), which Perfetto renders as arrows
/// linking the spans on different shards into one causal tree.
enum class FlowPhase : uint8_t {
  kNone = 0,  // Not part of a flow; no extra record exported.
  kStart,     // First span of the chain (the txn's home shard).
  kStep,      // Intermediate participant shard.
  kEnd,       // Last participant shard; terminates the arrow chain.
};

/// One trace record. Fixed-size POD so the ring buffer never allocates per
/// event. `pid` scopes the event to a replica (0 outside the cluster) and
/// `tid` to an executor/worker lane; `a`/`b` are kind-specific arguments:
///   kTxnSpan:     a = restarts so far, b = serialization-order index
///   kTxnRestart:  a = consecutive restarts after this one
///   kBatchSpan:   a = batch size, b = total aborts
///   kWave:        a = wave size (slots re-admitted)
///   kValidateSpan: a = block sequence, b = txn count
///   kCrossShardSpan: a = txn count, b = remote accesses
///   kEpochFence / kReconfiguration: a = epoch, b = ending round
///   kMigration:   a = epoch, b = moved key count
///   kWalAppend:   a = frames flushed, b = bytes flushed
///   kWalCheckpoint: a = entries written, b = last sequence covered
///   kWalRecover:  a = checkpoint entries restored, b = log frames replayed
///   kCrossHoldSpan: a = participant index, b = participant count
///   kHealth:      a = alert kind (HealthMonitor), b = window index
///
/// `trace_id`/`span_id`/`parent_id` form the causal tree: all spans of one
/// logical transaction share a trace_id (the txn id), each span gets a
/// per-trace span_id, and parent_id names the span it hangs under (0 for
/// the root). They default to 0 = "not part of a tree", in which case the
/// exporter emits exactly the pre-causality record bytes.
struct TraceEvent {
  EventKind kind = EventKind::kTxnSpan;
  AbortReason reason = AbortReason::kNone;
  FlowPhase flow = FlowPhase::kNone;
  uint32_t pid = 0;
  uint32_t tid = 0;
  uint64_t ts_us = 0;
  uint64_t dur_us = 0;
  uint64_t txn = 0;
  uint64_t a = 0;
  uint64_t b = 0;
  uint64_t trace_id = 0;
  uint64_t span_id = 0;
  uint64_t parent_id = 0;
};

/// True for kinds exported as Chrome "X" (complete) events; instants
/// export as "i".
bool IsSpanKind(EventKind kind);

/// Event sink. The base class IS the null tracer: `enabled()` is false and
/// `Record` drops the event, so instrumentation sites guard the argument
/// construction with one branch:
///
///   if (tracer->enabled()) tracer->Record({...});
class Tracer {
 public:
  virtual ~Tracer() = default;
  virtual bool enabled() const { return false; }
  virtual void Record(const TraceEvent& event) { (void)event; }
};

/// The explicit no-op sink. A process-wide instance is available from
/// NullTracerInstance() so "no tracer" never means a null pointer.
class NullTracer final : public Tracer {};

/// Shared no-op sink (safe from any thread; it has no state).
Tracer* NullTracerInstance();

/// Bounded ring-buffer sink. Keeps the most recent `capacity` events;
/// older events are overwritten and counted in dropped(). Record is
/// mutex-guarded so concurrent workers can share one tracer (the
/// `thread`-labeled stress test runs this under TSan).
class RingTracer final : public Tracer {
 public:
  explicit RingTracer(size_t capacity = 1 << 16);

  bool enabled() const override { return true; }
  void Record(const TraceEvent& event) override;

  size_t capacity() const { return capacity_; }
  /// Events currently held (<= capacity).
  size_t size() const;
  /// Events ever recorded.
  uint64_t total_recorded() const;
  /// Events overwritten by wraparound.
  uint64_t dropped() const;
  void Clear();

  /// Events oldest-to-newest.
  std::vector<TraceEvent> Snapshot() const;

  /// Chrome trace-event-format JSON. The header's "otherData" carries the
  /// ring's drop accounting ({"recorded_events":N,"dropped_events":M}) so
  /// a wrapped capture is visibly partial; events with a FlowPhase emit an
  /// extra flow record each (see FlowToChromeJson). Load in Perfetto
  /// (ui.perfetto.dev) or chrome://tracing. Deterministic given the same
  /// event sequence.
  std::string ToChromeJson() const;

  /// Writes ToChromeJson() to `path`. Returns false on IO failure.
  bool WriteChromeJson(const std::string& path) const;

 private:
  mutable std::mutex mu_;
  const size_t capacity_;
  std::vector<TraceEvent> ring_;  // Ring storage, wraps at capacity_.
  uint64_t recorded_ = 0;         // Total ever; head = recorded_ % capacity_.
};

/// Serializes one event as a Chrome trace-event object (no trailing
/// newline). Exposed for tests.
std::string EventToChromeJson(const TraceEvent& event);

/// The companion Chrome *flow* record for an event with flow != kNone
/// ("ph":"s"/"t"/"f" at the span's start, sharing its pid/tid and
/// "id" = trace_id), or "" when the event carries no flow. Perfetto binds
/// the record to the span open at that timestamp on that track, drawing
/// the causal arrow. Exposed for tests.
std::string FlowToChromeJson(const TraceEvent& event);

}  // namespace thunderbolt::obs

#endif  // THUNDERBOLT_OBS_TRACE_H_
