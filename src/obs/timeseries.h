// Fixed-interval windowed sampling of a MetricsRegistry: the
// tps-over-time / abort-rate-over-time machinery.
//
// A TimeSeriesRecorder owns no clock. Callers push time at it:
//   - The sharded cluster schedules Advance() on the deterministic sim
//     clock at every window boundary, so per-window counter deltas are
//     exact and the export is byte-identical per seed (determinism_test).
//   - Batch bench drivers call Advance() with accumulated virtual
//     execution time (sim pool) or wall-clock microseconds (thread pool)
//     after each cell; a multi-window gap attributes the whole delta to
//     the latest closed window, so sample at least once per window when
//     per-window accuracy matters.
// Flush() closes the trailing partial window at end of run, which is what
// makes "sum of per-window deltas == final counter totals" hold exactly.
#ifndef THUNDERBOLT_OBS_TIMESERIES_H_
#define THUNDERBOLT_OBS_TIMESERIES_H_

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "obs/metrics.h"

namespace thunderbolt::obs {

/// One closed sampling window.
struct TimeSeriesWindow {
  uint64_t start_us = 0;
  uint64_t end_us = 0;
  /// Counter increments observed during the window (zero deltas omitted).
  std::map<std::string, uint64_t> counter_deltas;
  /// Gauge values at window close.
  std::map<std::string, double> gauges;

  /// Cumulative histogram stats at window close.
  struct HistStats {
    uint64_t count = 0;
    double mean = 0;
    double p50 = 0;
    double p99 = 0;
    double max = 0;
  };
  std::map<std::string, HistStats> histograms;

  /// This window's delta for `name`, 0 if the counter didn't move.
  uint64_t Delta(const std::string& name) const {
    auto it = counter_deltas.find(name);
    return it == counter_deltas.end() ? 0 : it->second;
  }
};

/// Samples a registry into fixed-width windows. Thread-safe: Advance /
/// Flush / readers all lock, and the registry snapshots it takes are the
/// registry's own thread-safe views.
class TimeSeriesRecorder {
 public:
  /// `registry` must outlive the recorder. `window_us` of 0 is clamped
  /// to 1.
  TimeSeriesRecorder(const MetricsRegistry* registry, uint64_t window_us);

  uint64_t window_us() const { return window_us_; }

  /// Closes every window whose boundary is <= now_us. The counter delta
  /// since the previous sample lands in the LAST window this call closes;
  /// earlier gap windows close empty. Monotonic: a now_us in the past is
  /// a no-op beyond remembering max(now).
  void Advance(uint64_t now_us);

  /// Closes the in-progress partial window (end = the max now_us ever
  /// seen) if it is non-empty in time or counters. Call once at end of
  /// run, before exporting.
  void Flush();

  size_t window_count() const;
  std::vector<TimeSeriesWindow> Snapshot() const;

  /// Sum of `name`'s deltas across all closed windows (== the counter's
  /// value at the last close).
  uint64_t CounterTotal(const std::string& name) const;

  /// Deterministic JSON: {"window_us":W,"windows":[{"start_us":..,
  /// "end_us":..,"counters":{..},"gauges":{..},"histograms":{..}},...],
  /// "totals":{counter:value,...}} with all keys sorted. "totals" are the
  /// counter values as of the last closed window, so for every counter
  /// the per-window deltas sum to its "totals" entry (the schema sanity
  /// script in CI checks exactly this).
  std::string ToJson() const;

  /// Writes ToJson() to `path`. Returns false on IO failure.
  bool WriteJson(const std::string& path) const;

 private:
  /// Closes one window [window_start_, end_us] with the given deltas;
  /// mu_ held.
  void CloseWindowLocked(uint64_t end_us,
                         std::map<std::string, uint64_t>&& deltas);
  /// Counter deltas vs last_counters_, updating it; mu_ held.
  std::map<std::string, uint64_t> TakeDeltasLocked();

  const MetricsRegistry* registry_;
  const uint64_t window_us_;

  mutable std::mutex mu_;
  uint64_t window_start_ = 0;  // Open window's start.
  uint64_t last_now_ = 0;      // Max now_us ever passed to Advance.
  std::map<std::string, uint64_t> last_counters_;  // At last close.
  std::vector<TimeSeriesWindow> windows_;
};

}  // namespace thunderbolt::obs

#endif  // THUNDERBOLT_OBS_TIMESERIES_H_
