#include "obs/timeseries.h"

#include <cstdio>
#include <utility>

namespace thunderbolt::obs {

TimeSeriesRecorder::TimeSeriesRecorder(const MetricsRegistry* registry,
                                       uint64_t window_us)
    : registry_(registry), window_us_(window_us == 0 ? 1 : window_us) {}

std::map<std::string, uint64_t> TimeSeriesRecorder::TakeDeltasLocked() {
  std::map<std::string, uint64_t> current = registry_->CounterValues();
  std::map<std::string, uint64_t> deltas;
  for (const auto& [name, value] : current) {
    auto it = last_counters_.find(name);
    const uint64_t prev = it == last_counters_.end() ? 0 : it->second;
    if (value > prev) deltas[name] = value - prev;
  }
  last_counters_ = std::move(current);
  return deltas;
}

void TimeSeriesRecorder::CloseWindowLocked(
    uint64_t end_us, std::map<std::string, uint64_t>&& deltas) {
  TimeSeriesWindow w;
  w.start_us = window_start_;
  w.end_us = end_us;
  w.counter_deltas = std::move(deltas);
  w.gauges = registry_->GaugeValues();
  for (const auto& [name, hist] : registry_->HistogramSnapshots()) {
    TimeSeriesWindow::HistStats s;
    s.count = hist.Count();
    if (s.count > 0) {
      s.mean = hist.Mean();
      s.p50 = hist.Percentile(50.0);
      s.p99 = hist.Percentile(99.0);
      s.max = hist.Max();
    }
    w.histograms.emplace(name, s);
  }
  windows_.push_back(std::move(w));
  window_start_ = end_us;
}

void TimeSeriesRecorder::Advance(uint64_t now_us) {
  std::lock_guard<std::mutex> lk(mu_);
  if (now_us > last_now_) last_now_ = now_us;
  if (window_start_ + window_us_ > now_us) return;
  // The delta since the previous sample belongs to the last window this
  // call closes; any earlier gap windows close empty.
  std::map<std::string, uint64_t> deltas = TakeDeltasLocked();
  while (window_start_ + 2 * window_us_ <= now_us) {
    CloseWindowLocked(window_start_ + window_us_, {});
  }
  CloseWindowLocked(window_start_ + window_us_, std::move(deltas));
}

void TimeSeriesRecorder::Flush() {
  std::lock_guard<std::mutex> lk(mu_);
  std::map<std::string, uint64_t> deltas = TakeDeltasLocked();
  const uint64_t end = last_now_ > window_start_ ? last_now_ : window_start_;
  if (end == window_start_ && deltas.empty()) return;
  CloseWindowLocked(end, std::move(deltas));
}

size_t TimeSeriesRecorder::window_count() const {
  std::lock_guard<std::mutex> lk(mu_);
  return windows_.size();
}

std::vector<TimeSeriesWindow> TimeSeriesRecorder::Snapshot() const {
  std::lock_guard<std::mutex> lk(mu_);
  return windows_;
}

uint64_t TimeSeriesRecorder::CounterTotal(const std::string& name) const {
  std::lock_guard<std::mutex> lk(mu_);
  uint64_t total = 0;
  for (const TimeSeriesWindow& w : windows_) total += w.Delta(name);
  return total;
}

std::string TimeSeriesRecorder::ToJson() const {
  std::lock_guard<std::mutex> lk(mu_);
  std::string out = "{\n  \"window_us\": " + std::to_string(window_us_);
  out += ",\n  \"windows\": [";
  for (size_t i = 0; i < windows_.size(); ++i) {
    const TimeSeriesWindow& w = windows_[i];
    out += i == 0 ? "\n" : ",\n";
    out += "    {\"start_us\": " + std::to_string(w.start_us);
    out += ", \"end_us\": " + std::to_string(w.end_us);
    out += ", \"counters\": {";
    bool first = true;
    for (const auto& [name, delta] : w.counter_deltas) {
      out += first ? "" : ", ";
      first = false;
      detail::AppendQuoted(out, name);
      out += ": " + std::to_string(delta);
    }
    out += "}, \"gauges\": {";
    first = true;
    for (const auto& [name, value] : w.gauges) {
      out += first ? "" : ", ";
      first = false;
      detail::AppendQuoted(out, name);
      out += ": " + detail::FormatDouble(value);
    }
    out += "}, \"histograms\": {";
    first = true;
    for (const auto& [name, s] : w.histograms) {
      out += first ? "" : ", ";
      first = false;
      detail::AppendQuoted(out, name);
      out += ": {\"count\": " + std::to_string(s.count);
      if (s.count > 0) {
        out += ", \"mean\": " + detail::FormatDouble(s.mean);
        out += ", \"p50\": " + detail::FormatDouble(s.p50);
        out += ", \"p99\": " + detail::FormatDouble(s.p99);
        out += ", \"max\": " + detail::FormatDouble(s.max);
      }
      out += "}";
    }
    out += "}}";
  }
  out += windows_.empty() ? "],\n" : "\n  ],\n";
  out += "  \"totals\": {";
  bool first = true;
  for (const auto& [name, value] : last_counters_) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    ";
    detail::AppendQuoted(out, name);
    out += ": " + std::to_string(value);
  }
  out += first ? "}\n" : "\n  }\n";
  out += "}\n";
  return out;
}

bool TimeSeriesRecorder::WriteJson(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  const std::string json = ToJson();
  const size_t written = std::fwrite(json.data(), 1, json.size(), f);
  const bool closed = std::fclose(f) == 0;
  return written == json.size() && closed;
}

}  // namespace thunderbolt::obs
