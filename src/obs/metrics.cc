#include "obs/metrics.h"

#include <algorithm>
#include <cstdio>

namespace thunderbolt::obs {

namespace detail {

// %.6g never emits a bare trailing dot and covers both latencies
// (fractional) and large sums (exponent form).
std::string FormatDouble(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

void AppendQuoted(std::string& out, const std::string& s) {
  out += '"';
  for (char c : s) {
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char esc[8];
      std::snprintf(esc, sizeof(esc), "\\u%04x", c);
      out += esc;
    } else {
      out += c;
    }
  }
  out += '"';
}

}  // namespace detail

namespace {
using detail::AppendQuoted;
using detail::FormatDouble;
}  // namespace

std::string LabeledName(const std::string& name, Labels labels) {
  if (labels.empty()) return name;
  std::sort(labels.begin(), labels.end(),
            [](const Label& a, const Label& b) { return a.key < b.key; });
  std::string out = name;
  out += '{';
  for (size_t i = 0; i < labels.size(); ++i) {
    if (i > 0) out += ',';
    out += labels[i].key;
    out += '=';
    out += labels[i].value;
  }
  out += '}';
  return out;
}

Counter& MetricsRegistry::GetCounter(const std::string& name) {
  std::lock_guard<std::mutex> lk(mu_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& MetricsRegistry::GetGauge(const std::string& name) {
  std::lock_guard<std::mutex> lk(mu_);
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

HistogramMetric& MetricsRegistry::GetHistogram(const std::string& name) {
  std::lock_guard<std::mutex> lk(mu_);
  auto& slot = histograms_[name];
  if (!slot) slot = std::make_unique<HistogramMetric>();
  return *slot;
}

const Counter* MetricsRegistry::FindCounter(const std::string& name) const {
  std::lock_guard<std::mutex> lk(mu_);
  auto it = counters_.find(name);
  return it == counters_.end() ? nullptr : it->second.get();
}

const Gauge* MetricsRegistry::FindGauge(const std::string& name) const {
  std::lock_guard<std::mutex> lk(mu_);
  auto it = gauges_.find(name);
  return it == gauges_.end() ? nullptr : it->second.get();
}

const HistogramMetric* MetricsRegistry::FindHistogram(
    const std::string& name) const {
  std::lock_guard<std::mutex> lk(mu_);
  auto it = histograms_.find(name);
  return it == histograms_.end() ? nullptr : it->second.get();
}

std::map<std::string, uint64_t> MetricsRegistry::CounterValues() const {
  std::lock_guard<std::mutex> lk(mu_);
  std::map<std::string, uint64_t> out;
  for (const auto& [name, counter] : counters_) out[name] = counter->value();
  return out;
}

std::map<std::string, double> MetricsRegistry::GaugeValues() const {
  std::lock_guard<std::mutex> lk(mu_);
  std::map<std::string, double> out;
  for (const auto& [name, gauge] : gauges_) out[name] = gauge->value();
  return out;
}

std::map<std::string, Histogram> MetricsRegistry::HistogramSnapshots() const {
  std::lock_guard<std::mutex> lk(mu_);
  std::map<std::string, Histogram> out;
  for (const auto& [name, metric] : histograms_) {
    out.emplace(name, metric->Snapshot());
  }
  return out;
}

std::string MetricsRegistry::ToJson() const {
  std::lock_guard<std::mutex> lk(mu_);
  std::string out = "{\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, counter] : counters_) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    ";
    AppendQuoted(out, name);
    out += ": " + std::to_string(counter->value());
  }
  out += first ? "},\n" : "\n  },\n";

  out += "  \"gauges\": {";
  first = true;
  for (const auto& [name, gauge] : gauges_) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    ";
    AppendQuoted(out, name);
    out += ": " + FormatDouble(gauge->value());
  }
  out += first ? "},\n" : "\n  },\n";

  out += "  \"histograms\": {";
  first = true;
  for (const auto& [name, metric] : histograms_) {
    out += first ? "\n" : ",\n";
    first = false;
    const Histogram h = metric->Snapshot();
    out += "    ";
    AppendQuoted(out, name);
    out += ": {\"count\": " + std::to_string(h.Count());
    if (h.Count() == 0) {
      // An empty histogram has no percentiles: emitting the usual 0.0
      // stats would be indistinguishable from a genuinely instant run.
      out += "}";
      continue;
    }
    out += ", \"mean\": " + FormatDouble(h.Mean());
    out += ", \"min\": " + FormatDouble(h.Min());
    out += ", \"p50\": " + FormatDouble(h.Percentile(50.0));
    out += ", \"p99\": " + FormatDouble(h.Percentile(99.0));
    out += ", \"p999\": " + FormatDouble(h.Percentile(99.9));
    out += ", \"max\": " + FormatDouble(h.Max());
    out += "}";
  }
  out += first ? "}\n" : "\n  }\n";
  out += "}\n";
  return out;
}

bool MetricsRegistry::WriteJson(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  const std::string json = ToJson();
  const size_t written = std::fwrite(json.data(), 1, json.size(), f);
  const bool closed = std::fclose(f) == 0;
  return written == json.size() && closed;
}

}  // namespace thunderbolt::obs
