// Per-phase latency decomposition: where each microsecond of a
// transaction's life went.
//
// The pools account for the preplay-side phases (queue wait, execution,
// restart backoff) while filling BatchExecutionResult; the cluster commit
// path accounts for the consensus-side phases (validation replay, commit
// pipeline residence, cross-shard hold). A LatencyBreakdown is one
// Histogram per phase, merged up the same way pools merge per-worker
// histograms: single-writer while filling, Merge() at quiescence.
#ifndef THUNDERBOLT_OBS_LATENCY_H_
#define THUNDERBOLT_OBS_LATENCY_H_

#include <array>
#include <cstddef>
#include <cstdint>
#include <string>

#include "common/histogram.h"

namespace thunderbolt::obs {

class MetricsRegistry;

/// The phases a transaction's end-to-end latency decomposes into. Pools
/// fill the first two and the last; the cluster commit path fills the
/// middle three.
enum class Phase : uint8_t {
  /// Submit (or batch admission) until the first executor attempt starts.
  kQueueWait = 0,
  /// Time actually spent running contract steps across all attempts.
  kExecute,
  /// Validation replay of the committed block the transaction rode in.
  kValidate,
  /// Residence in the observer's commit pipeline (apply + counting).
  kCommitApply,
  /// Cross-shard only: submit until the OE execution retired it — the
  /// total-order hold the paper's OE path pays.
  kCrossShardHold,
  /// Accumulated restart penalty + exponential backoff across attempts.
  kRestartBackoff,
};

inline constexpr size_t kNumPhases = 6;

/// Stable snake_case name ("queue_wait", ...), used for metric keys
/// ("phase.<name>_us") and bench JSON fields.
const char* PhaseName(Phase phase);

/// One histogram of per-transaction durations (microseconds) per phase.
struct LatencyBreakdown {
  std::array<Histogram, kNumPhases> phase;

  Histogram& operator[](Phase p) { return phase[static_cast<size_t>(p)]; }
  const Histogram& operator[](Phase p) const {
    return phase[static_cast<size_t>(p)];
  }

  void Merge(const LatencyBreakdown& other) {
    for (size_t i = 0; i < kNumPhases; ++i) phase[i].Merge(other.phase[i]);
  }
  void Clear() {
    for (Histogram& h : phase) h.Clear();
  }
  uint64_t TotalCount() const {
    uint64_t n = 0;
    for (const Histogram& h : phase) n += h.Count();
    return n;
  }

  /// Deterministic JSON object: {"queue_wait":{"count":..,"mean":..,
  /// "p50":..,"p99":..,"max":..},...} with empty phases serializing as
  /// {"count": 0} (matching MetricsRegistry's empty-histogram rule).
  std::string ToJson() const;
};

/// Merges every non-empty phase into the registry's "phase.<name>_us"
/// histograms, so --metrics-out and the time-series windows see the
/// decomposition without a second plumbing path.
void MergeIntoRegistry(MetricsRegistry& metrics, const LatencyBreakdown& b);

}  // namespace thunderbolt::obs

#endif  // THUNDERBOLT_OBS_LATENCY_H_
