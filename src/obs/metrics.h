// String-keyed metrics registry: counters, gauges and histograms,
// snapshotting to JSON.
//
// Thread-safety follows the idioms PR 6 established for the executor pools
// (see common/histogram.h and ce/batch_engine.h):
//   - Counter / Gauge are single atomics; Inc/Add/Set/value are safe from
//     any thread, lock-free.
//   - HistogramMetric guards its Histogram with a mutex; hot paths should
//     keep one Histogram per worker and Merge() it in at quiescence rather
//     than calling Observe per sample from many threads.
//   - The registry maps are mutex-guarded; Get* returns a reference that
//     stays valid for the registry's lifetime (entries are never removed),
//     so callers resolve a metric once and then touch only the atomic.
// ToJson() emits keys in sorted order with fixed formatting, so the same
// metric values always serialize to the same bytes (determinism_test
// asserts this for sim-pool cluster runs).
#ifndef THUNDERBOLT_OBS_METRICS_H_
#define THUNDERBOLT_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

#include "common/histogram.h"

namespace thunderbolt::obs {

namespace detail {
/// Fixed, locale-independent double formatting ("%.6g") shared by every
/// obs JSON emitter so equal values always serialize to equal bytes.
std::string FormatDouble(double v);
/// Appends `s` as a quoted JSON string with the control/quote escapes.
void AppendQuoted(std::string& out, const std::string& s);
}  // namespace detail

/// One metric dimension. The value constructor accepts integers so call
/// sites can write GetCounter("cluster.shard.commits", {{"shard", i}}).
struct Label {
  std::string key;
  std::string value;

  Label(std::string k, std::string v) : key(std::move(k)), value(std::move(v)) {}
  Label(std::string k, const char* v) : key(std::move(k)), value(v) {}
  template <typename T, std::enable_if_t<std::is_integral_v<T>, int> = 0>
  Label(std::string k, T v) : key(std::move(k)), value(std::to_string(v)) {}
};

using Labels = std::vector<Label>;

/// Canonical label-set encoding: `name{k1=v1,k2=v2}` with keys sorted, so
/// the same label set always resolves to the same registry entry and
/// labeled metrics stay in ToJson()'s sorted deterministic order. Keys and
/// values must not contain '{', '}', ',' or '=' (metric names are
/// code-controlled, not user input).
std::string LabeledName(const std::string& name, Labels labels);

/// Monotonically increasing integer metric.
class Counter {
 public:
  void Inc(uint64_t delta = 1) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

/// Last-write-wins floating-point metric (also supports Add for
/// accumulate-style use).
class Gauge {
 public:
  void Set(double v) { value_.store(v, std::memory_order_relaxed); }
  void Add(double delta) {
    double cur = value_.load(std::memory_order_relaxed);
    while (!value_.compare_exchange_weak(cur, cur + delta,
                                         std::memory_order_relaxed)) {
    }
  }
  double value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Mutex-guarded Histogram. Observe per sample is fine from one thread;
/// multi-threaded producers should batch into a local Histogram and
/// Merge() it in once quiescent (the thread pool's per-worker idiom).
class HistogramMetric {
 public:
  void Observe(double v) {
    std::lock_guard<std::mutex> lk(mu_);
    hist_.Add(v);
  }
  void Merge(const Histogram& other) {
    std::lock_guard<std::mutex> lk(mu_);
    hist_.Merge(other);
  }
  /// Copy of the underlying histogram (consistent point-in-time view).
  Histogram Snapshot() const {
    std::lock_guard<std::mutex> lk(mu_);
    return hist_;
  }

 private:
  mutable std::mutex mu_;
  Histogram hist_;
};

/// The registry. Metric objects live as long as the registry; lookups are
/// by exact name. Names follow "subsystem.metric" convention, e.g.
/// "pool.restarts", "store.gets", "cluster.committed_single".
class MetricsRegistry {
 public:
  Counter& GetCounter(const std::string& name);
  Gauge& GetGauge(const std::string& name);
  HistogramMetric& GetHistogram(const std::string& name);

  /// Labeled (dimensional) variants: resolve `name` + sorted `labels` to
  /// one entry via LabeledName(), e.g. GetCounter("cluster.shard.commits",
  /// {{"shard", 2}}) -> "cluster.shard.commits{shard=2}".
  Counter& GetCounter(const std::string& name, const Labels& labels) {
    return GetCounter(LabeledName(name, labels));
  }
  Gauge& GetGauge(const std::string& name, const Labels& labels) {
    return GetGauge(LabeledName(name, labels));
  }
  HistogramMetric& GetHistogram(const std::string& name,
                                const Labels& labels) {
    return GetHistogram(LabeledName(name, labels));
  }

  /// Non-creating lookups: nullptr when the metric was never registered.
  /// Readers (window-delta accounting, tests) use these so probing for a
  /// metric that never fired does not materialize a zero entry in ToJson().
  const Counter* FindCounter(const std::string& name) const;
  const Gauge* FindGauge(const std::string& name) const;
  const HistogramMetric* FindHistogram(const std::string& name) const;
  const Counter* FindCounter(const std::string& name,
                             const Labels& labels) const {
    return FindCounter(LabeledName(name, labels));
  }
  const Gauge* FindGauge(const std::string& name, const Labels& labels) const {
    return FindGauge(LabeledName(name, labels));
  }
  const HistogramMetric* FindHistogram(const std::string& name,
                                       const Labels& labels) const {
    return FindHistogram(LabeledName(name, labels));
  }

  /// Point-in-time snapshots of every registered metric, sorted by name.
  /// The TimeSeriesRecorder samples these at window boundaries; values are
  /// relaxed atomic reads, so a snapshot taken while writers run is
  /// per-metric (not cross-metric) consistent — exact under the sim pool,
  /// approximate-by-design under real threads.
  std::map<std::string, uint64_t> CounterValues() const;
  std::map<std::string, double> GaugeValues() const;
  std::map<std::string, Histogram> HistogramSnapshots() const;

  /// {"counters":{...},"gauges":{...},"histograms":{name:{count,mean,min,
  /// p50,p99,p999,max}, ...}} with keys sorted. Deterministic for equal
  /// metric values. An empty histogram serializes as {"count": 0} with the
  /// stats fields omitted — 0.0 percentiles would be indistinguishable
  /// from a genuinely instant run.
  std::string ToJson() const;

  /// Writes ToJson() to `path`. Returns false on IO failure.
  bool WriteJson(const std::string& path) const;

 private:
  mutable std::mutex mu_;  // Guards the maps, not the metric values.
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<HistogramMetric>> histograms_;
};

}  // namespace thunderbolt::obs

#endif  // THUNDERBOLT_OBS_METRICS_H_
