// Windowed watermark checks over the time-series windows: is the system
// making commit progress, is the abort rate spiking, is the admission
// queue growing without bound? Each check that trips emits one kHealth
// tracer instant and bumps health.* registry metrics — the hook the
// later admission-control / overload work consumes to tell graceful
// degradation from collapse.
#ifndef THUNDERBOLT_OBS_HEALTH_H_
#define THUNDERBOLT_OBS_HEALTH_H_

#include <cstdint>

#include "obs/metrics.h"
#include "obs/timeseries.h"
#include "obs/trace.h"

namespace thunderbolt::obs {

/// Which watermark tripped; the kHealth event's `a` argument.
enum class HealthAlert : uint8_t {
  kCommitStall = 1,     // Too few commits for too many consecutive windows.
  kAbortRateSpike = 2,  // aborts / (commits + aborts) above the watermark.
  kQueueGrowth = 3,     // Queue depth far above its trailing average.
};

struct HealthThresholds {
  /// A window with fewer commits than this counts toward a stall.
  uint64_t min_commits_per_window = 1;
  /// Consecutive sub-watermark windows before kCommitStall fires.
  uint32_t stall_windows = 2;
  /// kAbortRateSpike fires above this abort fraction (needs >= 1 abort).
  double abort_rate_spike = 0.5;
  /// kQueueGrowth fires when depth exceeds growth * trailing average
  /// (needs at least one prior window and a nonzero average).
  double queue_depth_growth = 2.0;
};

/// Stateful monitor fed one closed TimeSeriesWindow at a time (same
/// cadence as the recorder: the Observability bundle calls OnWindow from
/// SampleWindow). Commits/aborts/queue depth are read from the window by
/// conventional metric names: cluster.commits_* when the cluster path is
/// live, pool.<pool>.txns/restarts otherwise, pool.<pool>.queue_depth
/// gauges for depth. Single-caller; not thread-safe by itself.
class HealthMonitor {
 public:
  HealthMonitor(MetricsRegistry* metrics, Tracer* tracer,
                HealthThresholds thresholds = {});

  void OnWindow(const TimeSeriesWindow& window);

  uint64_t alerts() const { return alerts_; }
  const HealthThresholds& thresholds() const { return thresholds_; }

 private:
  void Emit(HealthAlert alert, uint64_t end_us);

  MetricsRegistry* metrics_;
  Tracer* tracer_;
  HealthThresholds thresholds_;

  uint64_t window_index_ = 0;
  uint32_t stalled_windows_ = 0;
  double queue_depth_sum_ = 0;  // Trailing average numerator.
  uint64_t queue_depth_samples_ = 0;
  uint64_t alerts_ = 0;
};

}  // namespace thunderbolt::obs

#endif  // THUNDERBOLT_OBS_HEALTH_H_
