// Observability bundle: one MetricsRegistry plus an optional RingTracer,
// configured by ObsOptions (threaded through ThunderboltConfig::obs and
// the benches' --trace-out/--metrics-out flags, see bench/bench_util.h).
#ifndef THUNDERBOLT_OBS_OBS_H_
#define THUNDERBOLT_OBS_OBS_H_

#include <cstdint>
#include <memory>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace thunderbolt::obs {

/// Knobs a config owner (ThunderboltConfig, a bench driver) sets before
/// constructing the Observability bundle.
struct ObsOptions {
  /// Record lifecycle trace events into a RingTracer. Off by default: the
  /// tracer is then the shared NullTracer and every instrumentation site
  /// costs one predictable branch.
  bool trace = false;
  /// Ring capacity in events when tracing; oldest events drop first.
  uint32_t trace_capacity = 1u << 16;
};

/// Owns the metrics registry and (when enabled) the trace ring. Cheap to
/// construct when tracing is off.
class Observability {
 public:
  explicit Observability(const ObsOptions& options = {}) : options_(options) {
    if (options_.trace) {
      ring_ = std::make_unique<RingTracer>(options_.trace_capacity);
    }
  }

  const ObsOptions& options() const { return options_; }
  MetricsRegistry& metrics() { return metrics_; }
  const MetricsRegistry& metrics() const { return metrics_; }

  /// Never null: the ring when tracing, the shared NullTracer otherwise.
  Tracer* tracer() { return ring_ ? ring_.get() : NullTracerInstance(); }

  /// The ring sink, or nullptr when tracing is disabled.
  RingTracer* ring() { return ring_.get(); }
  const RingTracer* ring() const { return ring_.get(); }

 private:
  ObsOptions options_;
  MetricsRegistry metrics_;
  std::unique_ptr<RingTracer> ring_;
};

}  // namespace thunderbolt::obs

#endif  // THUNDERBOLT_OBS_OBS_H_
