// Observability bundle: one MetricsRegistry plus the optional sinks —
// RingTracer (lifecycle spans), TimeSeriesRecorder (windowed counter
// deltas) and HealthMonitor (watermark checks riding the same windows) —
// configured by ObsOptions (threaded through ThunderboltConfig::obs and
// the benches' --trace-out/--metrics-out/--timeseries-out flags, see
// bench/bench_util.h).
#ifndef THUNDERBOLT_OBS_OBS_H_
#define THUNDERBOLT_OBS_OBS_H_

#include <cstdint>
#include <memory>

#include "obs/health.h"
#include "obs/metrics.h"
#include "obs/timeseries.h"
#include "obs/trace.h"

namespace thunderbolt::obs {

/// Knobs a config owner (ThunderboltConfig, a bench driver) sets before
/// constructing the Observability bundle.
struct ObsOptions {
  /// Record lifecycle trace events into a RingTracer. Off by default: the
  /// tracer is then the shared NullTracer and every instrumentation site
  /// costs one predictable branch.
  bool trace = false;
  /// Ring capacity in events when tracing; oldest events drop first.
  uint32_t trace_capacity = 1u << 16;
  /// Record fixed-interval windowed counter deltas (TimeSeriesRecorder).
  /// The clock is whoever drives SampleWindow: the sim clock inside the
  /// cluster, accumulated-virtual or wall time in the bench drivers.
  bool timeseries = false;
  /// Sampling window width in (virtual or wall) microseconds.
  uint64_t timeseries_window_us = 100000;
  /// Run HealthMonitor watermark checks at each closed window. Only
  /// meaningful with `timeseries` (the monitor rides its windows).
  bool health = true;
};

/// Owns the metrics registry and (when enabled) the trace ring, the
/// time-series recorder and the health monitor. Cheap to construct when
/// everything is off.
class Observability {
 public:
  explicit Observability(const ObsOptions& options = {}) : options_(options) {
    if (options_.trace) {
      ring_ = std::make_unique<RingTracer>(options_.trace_capacity);
    }
    if (options_.timeseries) {
      timeseries_ = std::make_unique<TimeSeriesRecorder>(
          &metrics_, options_.timeseries_window_us);
      if (options_.health) {
        health_ = std::make_unique<HealthMonitor>(&metrics_, tracer());
      }
    }
  }

  const ObsOptions& options() const { return options_; }
  MetricsRegistry& metrics() { return metrics_; }
  const MetricsRegistry& metrics() const { return metrics_; }

  /// Never null: the ring when tracing, the shared NullTracer otherwise.
  Tracer* tracer() { return ring_ ? ring_.get() : NullTracerInstance(); }

  /// The ring sink, or nullptr when tracing is disabled.
  RingTracer* ring() { return ring_.get(); }
  const RingTracer* ring() const { return ring_.get(); }

  /// The time-series recorder, or nullptr when disabled.
  TimeSeriesRecorder* timeseries() { return timeseries_.get(); }
  const TimeSeriesRecorder* timeseries() const { return timeseries_.get(); }

  /// The health monitor, or nullptr when disabled.
  HealthMonitor* health() { return health_.get(); }
  const HealthMonitor* health() const { return health_.get(); }

  /// Advances the recorder to now_us and runs the health checks over each
  /// window that closed. The cluster calls this from a sim-clock event at
  /// every window boundary; bench drivers call it between cells. No-op
  /// when time series are disabled.
  void SampleWindow(uint64_t now_us) {
    if (!timeseries_) return;
    const size_t before = timeseries_->window_count();
    timeseries_->Advance(now_us);
    RunHealthFrom(before);
  }

  /// Closes the trailing partial window (end of run) and health-checks it.
  /// No-op when time series are disabled.
  void FlushTimeSeries() {
    if (!timeseries_) return;
    const size_t before = timeseries_->window_count();
    timeseries_->Flush();
    RunHealthFrom(before);
  }

  /// Mirrors the ring's drop accounting into the metrics registry
  /// (trace.recorded_events / trace.dropped_events counters). Call at
  /// capture points; no-op without a ring.
  void SyncTraceStats() {
    if (!ring_) return;
    auto sync = [this](const char* name, uint64_t value) {
      Counter& c = metrics_.GetCounter(name);
      if (value > c.value()) c.Inc(value - c.value());
    };
    sync("trace.recorded_events", ring_->total_recorded());
    sync("trace.dropped_events", ring_->dropped());
  }

 private:
  void RunHealthFrom(size_t first_new_window) {
    if (!health_) return;
    const auto windows = timeseries_->Snapshot();
    for (size_t i = first_new_window; i < windows.size(); ++i) {
      health_->OnWindow(windows[i]);
    }
  }

  ObsOptions options_;
  MetricsRegistry metrics_;
  std::unique_ptr<RingTracer> ring_;
  std::unique_ptr<TimeSeriesRecorder> timeseries_;
  std::unique_ptr<HealthMonitor> health_;
};

}  // namespace thunderbolt::obs

#endif  // THUNDERBOLT_OBS_OBS_H_
