#include "obs/trace.h"

#include <cstdio>

namespace thunderbolt::obs {

const char* AbortReasonName(AbortReason reason) {
  switch (reason) {
    case AbortReason::kNone:
      return "none";
    case AbortReason::kReadWriteConflict:
      return "read_write_conflict";
    case AbortReason::kCascadeInvalidation:
      return "cascade_invalidation";
    case AbortReason::kValidationFailure:
      return "validation_failure";
    case AbortReason::kLockAcquireFailure:
      return "lock_acquire_failure";
    case AbortReason::kRestartBound:
      return "restart_bound";
  }
  return "unknown";
}

const char* EventKindName(EventKind kind) {
  switch (kind) {
    case EventKind::kTxnSpan:
      return "txn";
    case EventKind::kTxnCommit:
      return "commit";
    case EventKind::kTxnRestart:
      return "restart";
    case EventKind::kBatchSpan:
      return "batch";
    case EventKind::kWave:
      return "wave";
    case EventKind::kValidateSpan:
      return "validate";
    case EventKind::kCrossShardSpan:
      return "cross_shard";
    case EventKind::kEpochFence:
      return "epoch_fence";
    case EventKind::kReconfiguration:
      return "reconfiguration";
    case EventKind::kMigration:
      return "migration";
    case EventKind::kCrash:
      return "crash";
    case EventKind::kWalAppend:
      return "wal_append";
    case EventKind::kWalCheckpoint:
      return "wal_checkpoint";
    case EventKind::kWalRecover:
      return "wal_recover";
    case EventKind::kCrossHoldSpan:
      return "cross_hold";
    case EventKind::kHealth:
      return "health";
  }
  return "unknown";
}

bool IsSpanKind(EventKind kind) {
  switch (kind) {
    case EventKind::kTxnSpan:
    case EventKind::kBatchSpan:
    case EventKind::kValidateSpan:
    case EventKind::kCrossShardSpan:
    case EventKind::kWalAppend:
    case EventKind::kWalCheckpoint:
    case EventKind::kWalRecover:
    case EventKind::kCrossHoldSpan:
      return true;
    default:
      return false;
  }
}

Tracer* NullTracerInstance() {
  static NullTracer instance;
  return &instance;
}

RingTracer::RingTracer(size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity) {
  ring_.reserve(capacity_);
}

void RingTracer::Record(const TraceEvent& event) {
  std::lock_guard<std::mutex> lk(mu_);
  if (ring_.size() < capacity_) {
    ring_.push_back(event);
  } else {
    ring_[recorded_ % capacity_] = event;
  }
  ++recorded_;
}

size_t RingTracer::size() const {
  std::lock_guard<std::mutex> lk(mu_);
  return ring_.size();
}

uint64_t RingTracer::total_recorded() const {
  std::lock_guard<std::mutex> lk(mu_);
  return recorded_;
}

uint64_t RingTracer::dropped() const {
  std::lock_guard<std::mutex> lk(mu_);
  return recorded_ > capacity_ ? recorded_ - capacity_ : 0;
}

void RingTracer::Clear() {
  std::lock_guard<std::mutex> lk(mu_);
  ring_.clear();
  recorded_ = 0;
}

std::vector<TraceEvent> RingTracer::Snapshot() const {
  std::lock_guard<std::mutex> lk(mu_);
  if (recorded_ <= capacity_) return ring_;
  std::vector<TraceEvent> out;
  out.reserve(capacity_);
  const size_t head = recorded_ % capacity_;  // Oldest surviving event.
  for (size_t i = 0; i < capacity_; ++i) {
    out.push_back(ring_[(head + i) % capacity_]);
  }
  return out;
}

std::string EventToChromeJson(const TraceEvent& event) {
  char buf[256];
  const char* name = EventKindName(event.kind);
  std::string out;
  if (IsSpanKind(event.kind)) {
    std::snprintf(buf, sizeof(buf),
                  "{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"X\",\"ts\":%llu,"
                  "\"dur\":%llu,\"pid\":%u,\"tid\":%u,\"args\":{",
                  name, name, static_cast<unsigned long long>(event.ts_us),
                  static_cast<unsigned long long>(event.dur_us), event.pid,
                  event.tid);
  } else {
    // Instant event, thread scope.
    std::snprintf(buf, sizeof(buf),
                  "{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"i\",\"ts\":%llu,"
                  "\"s\":\"t\",\"pid\":%u,\"tid\":%u,\"args\":{",
                  name, name, static_cast<unsigned long long>(event.ts_us),
                  event.pid, event.tid);
  }
  out += buf;
  std::snprintf(buf, sizeof(buf), "\"txn\":%llu,\"a\":%llu,\"b\":%llu",
                static_cast<unsigned long long>(event.txn),
                static_cast<unsigned long long>(event.a),
                static_cast<unsigned long long>(event.b));
  out += buf;
  if (event.reason != AbortReason::kNone) {
    out += ",\"reason\":\"";
    out += AbortReasonName(event.reason);
    out += "\"";
  }
  if (event.trace_id != 0) {
    std::snprintf(buf, sizeof(buf),
                  ",\"trace_id\":%llu,\"span_id\":%llu,\"parent_id\":%llu",
                  static_cast<unsigned long long>(event.trace_id),
                  static_cast<unsigned long long>(event.span_id),
                  static_cast<unsigned long long>(event.parent_id));
    out += buf;
  }
  out += "}}";
  return out;
}

std::string FlowToChromeJson(const TraceEvent& event) {
  if (event.flow == FlowPhase::kNone) return "";
  // Binding point: the flow record sits at the span's start timestamp on
  // the span's own track, so the viewer attaches the arrow endpoint to
  // that span. "f" needs bp:"e" (bind to enclosing slice) for the same.
  const char* ph = event.flow == FlowPhase::kStart
                       ? "s"
                       : event.flow == FlowPhase::kStep ? "t" : "f";
  const char* bind = event.flow == FlowPhase::kEnd ? ",\"bp\":\"e\"" : "";
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "{\"name\":\"xshard\",\"cat\":\"flow\",\"ph\":\"%s\","
                "\"id\":%llu,\"ts\":%llu,\"pid\":%u,\"tid\":%u%s}",
                ph, static_cast<unsigned long long>(event.trace_id),
                static_cast<unsigned long long>(event.ts_us), event.pid,
                event.tid, bind);
  return buf;
}

std::string RingTracer::ToChromeJson() const {
  std::vector<TraceEvent> events = Snapshot();
  uint64_t recorded = 0;
  uint64_t dropped = 0;
  {
    std::lock_guard<std::mutex> lk(mu_);
    recorded = recorded_;
    dropped = recorded_ > capacity_ ? recorded_ - capacity_ : 0;
  }
  std::string out = "{\"displayTimeUnit\":\"ms\",\"otherData\":{"
                    "\"recorded_events\":" + std::to_string(recorded) +
                    ",\"dropped_events\":" + std::to_string(dropped) +
                    "},\"traceEvents\":[\n";
  for (size_t i = 0; i < events.size(); ++i) {
    out += EventToChromeJson(events[i]);
    const std::string flow = FlowToChromeJson(events[i]);
    if (!flow.empty()) {
      out += ",\n";
      out += flow;
    }
    if (i + 1 < events.size()) out += ",";
    out += "\n";
  }
  out += "]}\n";
  return out;
}

bool RingTracer::WriteChromeJson(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  const std::string json = ToChromeJson();
  const size_t written = std::fwrite(json.data(), 1, json.size(), f);
  const bool closed = std::fclose(f) == 0;
  return written == json.size() && closed;
}

}  // namespace thunderbolt::obs
