#include "obs/latency.h"

#include "obs/metrics.h"

namespace thunderbolt::obs {

const char* PhaseName(Phase phase) {
  switch (phase) {
    case Phase::kQueueWait:
      return "queue_wait";
    case Phase::kExecute:
      return "execute";
    case Phase::kValidate:
      return "validate";
    case Phase::kCommitApply:
      return "commit_apply";
    case Phase::kCrossShardHold:
      return "cross_shard_hold";
    case Phase::kRestartBackoff:
      return "restart_backoff";
  }
  return "unknown";
}

std::string LatencyBreakdown::ToJson() const {
  std::string out = "{";
  for (size_t i = 0; i < kNumPhases; ++i) {
    if (i > 0) out += ", ";
    detail::AppendQuoted(out, PhaseName(static_cast<Phase>(i)));
    const Histogram& h = phase[i];
    out += ": {\"count\": " + std::to_string(h.Count());
    if (h.Count() > 0) {
      out += ", \"mean\": " + detail::FormatDouble(h.Mean());
      out += ", \"p50\": " + detail::FormatDouble(h.Percentile(50.0));
      out += ", \"p99\": " + detail::FormatDouble(h.Percentile(99.0));
      out += ", \"max\": " + detail::FormatDouble(h.Max());
    }
    out += "}";
  }
  out += "}";
  return out;
}

void MergeIntoRegistry(MetricsRegistry& metrics, const LatencyBreakdown& b) {
  for (size_t i = 0; i < kNumPhases; ++i) {
    if (b.phase[i].Count() == 0) continue;
    const std::string name =
        std::string("phase.") + PhaseName(static_cast<Phase>(i)) + "_us";
    metrics.GetHistogram(name).Merge(b.phase[i]);
  }
}

}  // namespace thunderbolt::obs
