#include "baselines/serial_executor.h"

namespace thunderbolt::baselines {

namespace {

using storage::Key;
using storage::Value;

/// Context executing directly against the store, buffering writes until the
/// transaction completes (so failed contracts leave no partial state).
class SerialContext final : public contract::ContractContext {
 public:
  explicit SerialContext(const storage::KVStore* store) : store_(store) {}

  Result<Value> Read(const Key& key) override {
    ++ops;
    auto wit = writes.find(key);
    if (wit != writes.end()) {
      record.rw_set.reads.push_back(
          txn::Operation{txn::OpType::kRead, key, wit->second});
      return wit->second;
    }
    Value v = store_->GetOrDefault(key, 0);
    record.rw_set.reads.push_back(
        txn::Operation{txn::OpType::kRead, key, v});
    return v;
  }

  Status Write(const Key& key, Value value) override {
    ++ops;
    writes[key] = value;
    return Status::OK();
  }

  void EmitResult(Value value) override { record.emitted.push_back(value); }

  ce::TxnRecord record;
  std::map<Key, Value> writes;
  uint64_t ops = 0;

 private:
  const storage::KVStore* store_;
};

}  // namespace

SerialExecutionResult ExecuteSerial(const contract::Registry& registry,
                                    const std::vector<txn::Transaction>& batch,
                                    storage::KVStore* store,
                                    SimTime op_cost) {
  SerialExecutionResult result;
  result.records.reserve(batch.size());
  int order = 0;
  for (const txn::Transaction& tx : batch) {
    SerialContext ctx(store);
    Status s = registry.Execute(tx, ctx);
    if (s.ok()) {
      for (const auto& [key, value] : ctx.writes) {
        store->Put(key, value);
        ctx.record.rw_set.writes.push_back(
            txn::Operation{txn::OpType::kWrite, key, value});
      }
    } else {
      // Deterministic no-op: drop buffered writes, keep the record empty.
      ctx.record.rw_set.Clear();
      ctx.record.emitted.clear();
    }
    ctx.record.order = order++;
    result.total_ops += ctx.ops;
    result.duration += ctx.ops * op_cost;
    result.records.push_back(std::move(ctx.record));
  }
  return result;
}

}  // namespace thunderbolt::baselines
