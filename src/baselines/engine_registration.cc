#include "baselines/engine_registration.h"

#include "baselines/occ_engine.h"
#include "baselines/tpl_nowait_engine.h"

namespace thunderbolt::baselines {

ce::EngineRegistry& RegisterBaselineEngines() {
  static const bool registered = [] {
    ce::EngineRegistry& r = ce::EngineRegistry::Global();
    r.Register("occ",
               [](const storage::ReadView* base, uint32_t batch_size) {
                 return std::unique_ptr<ce::BatchEngine>(
                     new OccEngine(base, batch_size));
               });
    r.Register("2pl",
               [](const storage::ReadView* base, uint32_t batch_size) {
                 return std::unique_ptr<ce::BatchEngine>(
                     new TplNoWaitEngine(base, batch_size));
               });
    return true;
  }();
  (void)registered;
  return ce::EngineRegistry::Global();
}

}  // namespace thunderbolt::baselines
