// Serial execution, as used by the Tusk baseline: transactions are executed
// one after another against storage in their committed order (the paper's
// Order-Execute model with no execution parallelism).
#ifndef THUNDERBOLT_BASELINES_SERIAL_EXECUTOR_H_
#define THUNDERBOLT_BASELINES_SERIAL_EXECUTOR_H_

#include <vector>

#include "ce/batch_engine.h"
#include "common/types.h"
#include "contract/contract.h"
#include "storage/kv_store.h"
#include "txn/transaction.h"

namespace thunderbolt::baselines {

struct SerialExecutionResult {
  std::vector<ce::TxnRecord> records;  // In input order.
  SimTime duration = 0;                // Virtual time consumed.
  uint64_t total_ops = 0;
};

/// Executes `batch` sequentially against `store` (writes applied as each
/// transaction commits). `op_cost` is charged per storage operation on the
/// virtual clock. Transactions that fail at the contract level (bad args)
/// are applied as no-ops deterministically.
SerialExecutionResult ExecuteSerial(const contract::Registry& registry,
                                    const std::vector<txn::Transaction>& batch,
                                    storage::KVStore* store,
                                    SimTime op_cost);

}  // namespace thunderbolt::baselines

#endif  // THUNDERBOLT_BASELINES_SERIAL_EXECUTOR_H_
