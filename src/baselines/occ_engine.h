// OCC baseline (Kung & Robinson, paper section 11.1).
//
// Each executor runs its transaction against the committed state, buffering
// writes locally. Reads record the version of the value obtained. On
// Finish, a central verifier cross-checks the recorded versions against the
// current committed versions; any mismatch rejects the commit and the
// transaction re-executes. Unlike Thunderbolt's CC there is no rescheduling:
// a conflicting transaction always restarts.
#ifndef THUNDERBOLT_BASELINES_OCC_ENGINE_H_
#define THUNDERBOLT_BASELINES_OCC_ENGINE_H_

#include <atomic>
#include <functional>
#include <map>
#include <shared_mutex>
#include <unordered_map>
#include <vector>

#include "ce/batch_engine.h"

namespace thunderbolt::baselines {

using ce::BatchEngine;
using ce::TxnRecord;
using ce::TxnSlot;
using storage::Key;
using storage::Value;
using storage::Version;

class OccEngine final : public BatchEngine {
 public:
  /// `base` supplies committed values/versions; must outlive the engine.
  OccEngine(const storage::ReadView* base, uint32_t batch_size);

  /// OCC restarts are always validation failures (the only abort site is
  /// the Finish-time version cross-check), so every callback invocation
  /// reports obs::AbortReason::kValidationFailure.
  void SetAbortCallback(ce::AbortCallback cb) override {
    on_abort_ = std::move(cb);
  }

  /// Per-slot state is single-owner (OCC aborts only itself, from its own
  /// Finish), so slot accesses are lock-free; only the committed overlay
  /// is shared — reads take `mu_` shared, the Finish-time validate+commit
  /// critical section takes it exclusive (the "central verifier").
  bool SupportsConcurrentExecutors() const override { return true; }

  uint32_t Begin(TxnSlot slot) override;
  Result<Value> Read(TxnSlot slot, uint32_t incarnation,
                     const Key& key) override;
  Status Write(TxnSlot slot, uint32_t incarnation, const Key& key,
               Value value) override;
  void Emit(TxnSlot slot, uint32_t incarnation, Value value) override;
  Status Finish(TxnSlot slot, uint32_t incarnation) override;

  bool AllCommitted() const override { return committed_ == batch_size_; }
  uint32_t committed_count() const override { return committed_; }
  uint64_t total_aborts() const override { return total_aborts_; }
  const std::vector<TxnSlot>& SerializationOrder() const override {
    return order_;
  }
  TxnRecord ExtractRecord(TxnSlot slot) const override;
  storage::WriteBatch FinalWrites() const override;

 private:
  struct ReadEntry {
    Value value;
    Version version;
  };
  struct Slot {
    bool running = false;
    bool committed = false;
    uint32_t incarnation = 0;
    uint32_t re_executions = 0;
    int order = -1;
    // Insertion-ordered for deterministic rw-set output.
    std::map<Key, ReadEntry> reads;
    std::map<Key, Value> writes;
    std::vector<Value> emitted;
  };

  storage::VersionedValue Current(const Key& key) const;
  void SelfAbort(TxnSlot slot);

  const storage::ReadView* base_;
  uint32_t batch_size_;
  std::vector<Slot> slots_;
  /// Guards overlay_ and order_ (shared for reads, exclusive for the
  /// Finish validate+commit section).
  mutable std::shared_mutex mu_;
  /// Writes committed within this batch, overlaid on `base_`.
  std::unordered_map<Key, storage::VersionedValue> overlay_;
  std::vector<TxnSlot> order_;
  /// Atomic so progress checks never block (batch_engine.h contract).
  std::atomic<uint32_t> committed_{0};
  std::atomic<uint64_t> total_aborts_{0};
  ce::AbortCallback on_abort_;
};

}  // namespace thunderbolt::baselines

#endif  // THUNDERBOLT_BASELINES_OCC_ENGINE_H_
