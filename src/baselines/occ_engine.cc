#include "baselines/occ_engine.h"

#include <algorithm>

namespace thunderbolt::baselines {

OccEngine::OccEngine(const storage::ReadView* base, uint32_t batch_size)
    : base_(base), batch_size_(batch_size), slots_(batch_size) {
  order_.reserve(batch_size);
}

// Callers must hold mu_ (shared suffices; Finish holds it exclusive).
storage::VersionedValue OccEngine::Current(const Key& key) const {
  auto it = overlay_.find(key);
  if (it != overlay_.end()) return it->second;
  auto r = base_->Get(key);
  if (r.ok()) return *r;
  return storage::VersionedValue{0, 0};  // Absent keys: value 0, version 0.
}

uint32_t OccEngine::Begin(TxnSlot slot) {
  Slot& s = slots_[slot];
  s.running = true;
  return s.incarnation;
}

Result<Value> OccEngine::Read(TxnSlot slot, uint32_t incarnation,
                              const Key& key) {
  Slot& s = slots_[slot];
  if (s.incarnation != incarnation || !s.running) {
    return Status::Aborted("occ: stale incarnation");
  }
  // Read-your-writes, then repeat-your-reads.
  auto wit = s.writes.find(key);
  if (wit != s.writes.end()) return wit->second;
  auto rit = s.reads.find(key);
  if (rit != s.reads.end()) return rit->second.value;

  storage::VersionedValue vv;
  {
    std::shared_lock<std::shared_mutex> lk(mu_);
    vv = Current(key);
  }
  s.reads[key] = ReadEntry{vv.value, vv.version};
  return vv.value;
}

Status OccEngine::Write(TxnSlot slot, uint32_t incarnation, const Key& key,
                        Value value) {
  Slot& s = slots_[slot];
  if (s.incarnation != incarnation || !s.running) {
    return Status::Aborted("occ: stale incarnation");
  }
  s.writes[key] = value;
  return Status::OK();
}

void OccEngine::Emit(TxnSlot slot, uint32_t incarnation, Value value) {
  Slot& s = slots_[slot];
  if (s.incarnation != incarnation || !s.running) return;
  s.emitted.push_back(value);
}

void OccEngine::SelfAbort(TxnSlot slot) {
  Slot& s = slots_[slot];
  s.reads.clear();
  s.writes.clear();
  s.emitted.clear();
  s.running = false;
  ++s.incarnation;
  ++s.re_executions;
  ++total_aborts_;
  if (on_abort_) on_abort_(slot, obs::AbortReason::kValidationFailure);
}

Status OccEngine::Finish(TxnSlot slot, uint32_t incarnation) {
  Slot& s = slots_[slot];
  if (s.incarnation != incarnation || !s.running) {
    return Status::Aborted("occ: stale incarnation");
  }
  // Central verifier: validation and write installation form one exclusive
  // critical section, so no two transactions can validate against a state
  // the other is mid-way through changing.
  std::unique_lock<std::shared_mutex> lk(mu_);
  // Every read must still carry the version it observed.
  for (const auto& [key, entry] : s.reads) {
    if (Current(key).version != entry.version) {
      // Build the status before SelfAbort: it clears s.reads, which would
      // leave `key` dangling.
      Status failed = Status::Aborted("occ: validation failed on key " + key);
      SelfAbort(slot);
      return failed;
    }
  }
  // Commit: install writes with bumped versions.
  for (const auto& [key, value] : s.writes) {
    storage::VersionedValue vv = Current(key);
    overlay_[key] = storage::VersionedValue{value, vv.version + 1};
  }
  s.running = false;
  s.committed = true;
  s.order = static_cast<int>(order_.size());
  order_.push_back(slot);
  ++committed_;
  return Status::OK();
}

TxnRecord OccEngine::ExtractRecord(TxnSlot slot) const {
  const Slot& s = slots_[slot];
  TxnRecord out;
  out.re_executions = s.re_executions;
  out.order = s.order;
  out.emitted = s.emitted;
  for (const auto& [key, entry] : s.reads) {
    out.rw_set.reads.push_back(
        txn::Operation{txn::OpType::kRead, key, entry.value});
  }
  for (const auto& [key, value] : s.writes) {
    out.rw_set.writes.push_back(
        txn::Operation{txn::OpType::kWrite, key, value});
  }
  return out;
}

storage::WriteBatch OccEngine::FinalWrites() const {
  std::vector<std::pair<Key, Value>> entries;
  entries.reserve(overlay_.size());
  for (const auto& [key, vv] : overlay_) entries.emplace_back(key, vv.value);
  std::sort(entries.begin(), entries.end());
  storage::WriteBatch batch;
  for (auto& [key, value] : entries) batch.Put(key, value);
  return batch;
}

}  // namespace thunderbolt::baselines
