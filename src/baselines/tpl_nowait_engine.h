// 2PL-No-Wait baseline (paper section 11.1).
//
// Executors access storage through a central lock controller. Every read
// takes a shared lock and every write an exclusive lock on the key; if a
// lock cannot be granted immediately the transaction releases all of its
// locks and re-executes (no waiting, hence deadlock-free). Locks are held
// until Finish, which applies the write buffer and releases everything.
#ifndef THUNDERBOLT_BASELINES_TPL_NOWAIT_ENGINE_H_
#define THUNDERBOLT_BASELINES_TPL_NOWAIT_ENGINE_H_

#include <atomic>
#include <functional>
#include <map>
#include <mutex>
#include <set>
#include <unordered_map>
#include <vector>

#include "ce/batch_engine.h"

namespace thunderbolt::baselines {

using ce::BatchEngine;
using ce::TxnRecord;
using ce::TxnSlot;
using storage::Key;
using storage::Value;

class TplNoWaitEngine final : public BatchEngine {
 public:
  TplNoWaitEngine(const storage::ReadView* base, uint32_t batch_size);

  /// No-wait restarts are always failed lock acquisitions (read, write or
  /// upgrade), so every callback invocation reports
  /// obs::AbortReason::kLockAcquireFailure.
  void SetAbortCallback(ce::AbortCallback cb) override {
    on_abort_ = std::move(cb);
  }

  /// Per-slot state is single-owner (no-wait aborts only the acting
  /// transaction); the central lock controller — lock table, committed
  /// overlay, order — serializes on one mutex, the engine's real critical
  /// section. Repeat reads and write-buffer hits stay lock-free.
  bool SupportsConcurrentExecutors() const override { return true; }

  uint32_t Begin(TxnSlot slot) override;
  Result<Value> Read(TxnSlot slot, uint32_t incarnation,
                     const Key& key) override;
  Status Write(TxnSlot slot, uint32_t incarnation, const Key& key,
               Value value) override;
  void Emit(TxnSlot slot, uint32_t incarnation, Value value) override;
  Status Finish(TxnSlot slot, uint32_t incarnation) override;

  bool AllCommitted() const override { return committed_ == batch_size_; }
  uint32_t committed_count() const override { return committed_; }
  uint64_t total_aborts() const override { return total_aborts_; }
  const std::vector<TxnSlot>& SerializationOrder() const override {
    return order_;
  }
  TxnRecord ExtractRecord(TxnSlot slot) const override;
  storage::WriteBatch FinalWrites() const override;

  /// Introspection for tests: number of keys currently locked.
  size_t LockedKeyCount() const;

 private:
  struct Lock {
    std::set<TxnSlot> shared;
    bool has_exclusive = false;
    TxnSlot exclusive = 0;
  };
  struct Slot {
    bool running = false;
    bool committed = false;
    uint32_t incarnation = 0;
    uint32_t re_executions = 0;
    int order = -1;
    std::set<Key> held_locks;
    std::map<Key, Value> reads;   // Value observed at first read.
    std::map<Key, Value> writes;  // Local write buffer.
    std::vector<Value> emitted;
  };

  Value Current(const Key& key) const;
  void ReleaseLocks(TxnSlot slot);
  void SelfAbort(TxnSlot slot);

  const storage::ReadView* base_;
  uint32_t batch_size_;
  std::vector<Slot> slots_;
  /// Guards locks_, overlay_ and order_ (the lock-controller critical
  /// section). Held while invoking the abort callback — lock order:
  /// engine mutex, then pool mutex.
  mutable std::mutex mu_;
  std::unordered_map<Key, Lock> locks_;
  std::unordered_map<Key, Value> overlay_;  // Committed within the batch.
  std::vector<TxnSlot> order_;
  /// Atomic so progress checks never block (batch_engine.h contract).
  std::atomic<uint32_t> committed_{0};
  std::atomic<uint64_t> total_aborts_{0};
  ce::AbortCallback on_abort_;
};

}  // namespace thunderbolt::baselines

#endif  // THUNDERBOLT_BASELINES_TPL_NOWAIT_ENGINE_H_
