#include "baselines/tpl_nowait_engine.h"

#include <algorithm>

namespace thunderbolt::baselines {

TplNoWaitEngine::TplNoWaitEngine(const storage::ReadView* base,
                                 uint32_t batch_size)
    : base_(base), batch_size_(batch_size), slots_(batch_size) {
  order_.reserve(batch_size);
}

// Callers must hold mu_.
Value TplNoWaitEngine::Current(const Key& key) const {
  auto it = overlay_.find(key);
  if (it != overlay_.end()) return it->second;
  return base_->GetOrDefault(key, 0);
}

uint32_t TplNoWaitEngine::Begin(TxnSlot slot) {
  Slot& s = slots_[slot];
  s.running = true;
  return s.incarnation;
}

Result<Value> TplNoWaitEngine::Read(TxnSlot slot, uint32_t incarnation,
                                    const Key& key) {
  Slot& s = slots_[slot];
  if (s.incarnation != incarnation || !s.running) {
    return Status::Aborted("2pl: stale incarnation");
  }
  auto wit = s.writes.find(key);
  if (wit != s.writes.end()) return wit->second;
  auto rit = s.reads.find(key);
  if (rit != s.reads.end()) return rit->second;

  std::lock_guard<std::mutex> lk(mu_);
  Lock& lock = locks_[key];
  if (lock.has_exclusive && lock.exclusive != slot) {
    SelfAbort(slot);  // No-wait: conflicting writer holds the key.
    return Status::Aborted("2pl: read-lock conflict on " + key);
  }
  lock.shared.insert(slot);
  s.held_locks.insert(key);
  Value value = Current(key);
  s.reads[key] = value;
  return value;
}

Status TplNoWaitEngine::Write(TxnSlot slot, uint32_t incarnation,
                              const Key& key, Value value) {
  Slot& s = slots_[slot];
  if (s.incarnation != incarnation || !s.running) {
    return Status::Aborted("2pl: stale incarnation");
  }
  std::lock_guard<std::mutex> lk(mu_);
  Lock& lock = locks_[key];
  if (lock.has_exclusive && lock.exclusive != slot) {
    SelfAbort(slot);
    return Status::Aborted("2pl: write-lock conflict on " + key);
  }
  // Upgrade: fails when any *other* transaction holds a shared lock.
  for (TxnSlot holder : lock.shared) {
    if (holder != slot) {
      SelfAbort(slot);
      return Status::Aborted("2pl: upgrade conflict on " + key);
    }
  }
  lock.has_exclusive = true;
  lock.exclusive = slot;
  s.held_locks.insert(key);
  s.writes[key] = value;
  return Status::OK();
}

void TplNoWaitEngine::Emit(TxnSlot slot, uint32_t incarnation, Value value) {
  Slot& s = slots_[slot];
  if (s.incarnation != incarnation || !s.running) return;
  s.emitted.push_back(value);
}

// Callers must hold mu_.
void TplNoWaitEngine::ReleaseLocks(TxnSlot slot) {
  Slot& s = slots_[slot];
  for (const Key& key : s.held_locks) {
    auto it = locks_.find(key);
    if (it == locks_.end()) continue;
    Lock& lock = it->second;
    lock.shared.erase(slot);
    if (lock.has_exclusive && lock.exclusive == slot) {
      lock.has_exclusive = false;
    }
    if (lock.shared.empty() && !lock.has_exclusive) locks_.erase(it);
  }
  s.held_locks.clear();
}

// Callers must hold mu_ (the abort callback is invoked with it held;
// lock order: engine mutex, then pool mutex).
void TplNoWaitEngine::SelfAbort(TxnSlot slot) {
  Slot& s = slots_[slot];
  ReleaseLocks(slot);
  s.reads.clear();
  s.writes.clear();
  s.emitted.clear();
  s.running = false;
  ++s.incarnation;
  ++s.re_executions;
  ++total_aborts_;
  if (on_abort_) on_abort_(slot, obs::AbortReason::kLockAcquireFailure);
}

Status TplNoWaitEngine::Finish(TxnSlot slot, uint32_t incarnation) {
  Slot& s = slots_[slot];
  if (s.incarnation != incarnation || !s.running) {
    return Status::Aborted("2pl: stale incarnation");
  }
  std::lock_guard<std::mutex> lk(mu_);
  for (const auto& [key, value] : s.writes) {
    overlay_[key] = value;
  }
  ReleaseLocks(slot);
  s.running = false;
  s.committed = true;
  s.order = static_cast<int>(order_.size());
  order_.push_back(slot);
  ++committed_;
  return Status::OK();
}

TxnRecord TplNoWaitEngine::ExtractRecord(TxnSlot slot) const {
  const Slot& s = slots_[slot];
  TxnRecord out;
  out.re_executions = s.re_executions;
  out.order = s.order;
  out.emitted = s.emitted;
  for (const auto& [key, value] : s.reads) {
    out.rw_set.reads.push_back(txn::Operation{txn::OpType::kRead, key, value});
  }
  for (const auto& [key, value] : s.writes) {
    out.rw_set.writes.push_back(
        txn::Operation{txn::OpType::kWrite, key, value});
  }
  return out;
}

storage::WriteBatch TplNoWaitEngine::FinalWrites() const {
  std::vector<std::pair<Key, Value>> entries;
  entries.reserve(overlay_.size());
  for (const auto& kv : overlay_) entries.push_back(kv);
  std::sort(entries.begin(), entries.end());
  storage::WriteBatch batch;
  for (auto& [key, value] : entries) batch.Put(key, value);
  return batch;
}

size_t TplNoWaitEngine::LockedKeyCount() const {
  std::lock_guard<std::mutex> lk(mu_);
  return locks_.size();
}

}  // namespace thunderbolt::baselines
