// Registers the baseline concurrency-control engines ("occ", "2pl") into
// ce::EngineRegistry::Global(). Lives here rather than in ce/ because the
// module dependency edge runs baselines -> ce; a driver that wants the
// full engine menu calls this once at startup (idempotent).
#ifndef THUNDERBOLT_BASELINES_ENGINE_REGISTRATION_H_
#define THUNDERBOLT_BASELINES_ENGINE_REGISTRATION_H_

#include "ce/engine_registry.h"

namespace thunderbolt::baselines {

/// Adds "occ" (OccEngine) and "2pl" (TplNoWaitEngine) to
/// ce::EngineRegistry::Global() and returns it. Safe to call repeatedly.
ce::EngineRegistry& RegisterBaselineEngines();

}  // namespace thunderbolt::baselines

#endif  // THUNDERBOLT_BASELINES_ENGINE_REGISTRATION_H_
