#include "net/network.h"

#include <algorithm>
#include <cassert>

namespace thunderbolt::net {

SimTime LatencyModel::SamplePropagation(Rng& rng) const {
  double jitter = rng.NextExponential(static_cast<double>(jitter_mean));
  double cap = 10.0 * static_cast<double>(jitter_mean);
  if (jitter > cap) jitter = cap;
  return base + static_cast<SimTime>(jitter);
}

SimNetwork::SimNetwork(sim::Simulator* simulator, uint32_t n,
                       LatencyModel latency, uint64_t seed)
    : simulator_(simulator),
      n_(n),
      latency_(latency),
      rng_(seed ^ 0x6e657477ULL),
      handlers_(n),
      crashed_(n, false),
      link_up_(n, std::vector<bool>(n, true)),
      nic_free_(n, 0) {}

void SimNetwork::RegisterHandler(ReplicaId id, Handler handler) {
  assert(id < n_);
  handlers_[id] = std::move(handler);
}

bool SimNetwork::LinkUp(ReplicaId from, ReplicaId to) const {
  return !crashed_[from] && !crashed_[to] && link_up_[from][to];
}

void SimNetwork::Send(ReplicaId from, ReplicaId to, PayloadPtr payload) {
  assert(from < n_ && to < n_);
  if (!LinkUp(from, to)) {
    ++messages_dropped_;
    return;
  }
  SimTime now = simulator_->Now();
  SimTime delivery;
  if (from == to) {
    delivery = now + Micros(5);  // Loopback skips the NIC.
  } else {
    uint64_t size = payload->SizeBytes();
    SimTime send_start = std::max(now, nic_free_[from]);
    SimTime tx_time = size / std::max<uint64_t>(1, latency_.bandwidth_bytes_per_us);
    nic_free_[from] = send_start + tx_time;
    SimTime receive_cost = size * latency_.receive_ps_per_byte / 1000000;
    delivery = nic_free_[from] + latency_.SamplePropagation(rng_) +
               receive_cost;
  }
  SimTime delay = delivery - now;
  simulator_->ScheduleAfter(delay, [this, from, to,
                                    payload = std::move(payload)]() {
    // Re-check: the destination may have crashed while in flight.
    if (crashed_[to] || !handlers_[to]) {
      ++messages_dropped_;
      return;
    }
    ++messages_delivered_;
    handlers_[to](from, payload);
  });
}

void SimNetwork::Broadcast(ReplicaId from, PayloadPtr payload) {
  for (ReplicaId to = 0; to < n_; ++to) {
    Send(from, to, payload);
  }
}

void SimNetwork::Crash(ReplicaId id) {
  assert(id < n_);
  crashed_[id] = true;
}

void SimNetwork::Restart(ReplicaId id) {
  assert(id < n_);
  crashed_[id] = false;
}

void SimNetwork::SetLink(ReplicaId from, ReplicaId to, bool up) {
  assert(from < n_ && to < n_);
  link_up_[from][to] = up;
}

}  // namespace thunderbolt::net
