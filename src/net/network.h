// Simulated authenticated point-to-point network.
//
// Substitutes for the paper's AWS LAN/WAN deployment (DESIGN.md
// substitution #1). Messages between replicas are delivered through the
// shared discrete-event simulator with latency sampled from a configurable
// model. Deterministic given the seed. Supports crashing replicas and
// cutting individual links, which the failure and reconfiguration
// experiments (Figures 15-17) rely on.
//
// The network transports opaque payloads derived from net::Payload;
// protocol modules (dag/, core/) define concrete message types. In-process
// delivery means "signatures" are validated at the protocol layer via
// crypto::KeyDirectory (see crypto/signature.h).
#ifndef THUNDERBOLT_NET_NETWORK_H_
#define THUNDERBOLT_NET_NETWORK_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "common/rng.h"
#include "common/simulator.h"
#include "common/types.h"

namespace thunderbolt::net {

/// Base class for all protocol messages.
class Payload {
 public:
  virtual ~Payload() = default;

  /// Approximate wire size; drives the bandwidth and processing cost
  /// models. Control messages default to a small constant.
  virtual uint64_t SizeBytes() const { return 256; }
};

using PayloadPtr = std::shared_ptr<const Payload>;

/// Latency and processing model. A message of size S from A to B is
/// delivered at:
///   send_start  = max(now, nic_free[A])         (sender NIC serializes)
///   nic_free[A] = send_start + S / bandwidth
///   delivery    = nic_free[A] + propagation + S * receive_cost_per_byte
/// where propagation = base + Exp(jitter_mean) truncated at 10x jitter.
/// The receive term models deserialization + certificate verification of
/// large blocks, the dominant per-round CPU cost of DAG BFT systems.
struct LatencyModel {
  SimTime base = Micros(100);
  SimTime jitter_mean = Micros(50);
  /// Sender-side serialization: bytes per microsecond (125 B/us = 1 Gbps).
  uint64_t bandwidth_bytes_per_us = 300;
  /// Receiver-side processing, picoseconds per byte (5000 = 5 ns/B).
  uint64_t receive_ps_per_byte = 5000;

  /// Typical intra-datacenter link (~0.25 ms median propagation).
  static LatencyModel Lan() {
    LatencyModel m;
    m.base = Micros(200);
    m.jitter_mean = Micros(60);
    return m;
  }
  /// Typical cross-region link (~85 ms median propagation).
  static LatencyModel Wan() {
    LatencyModel m;
    m.base = Millis(80);
    m.jitter_mean = Millis(8);
    return m;
  }

  SimTime SamplePropagation(Rng& rng) const;
};

class SimNetwork {
 public:
  using Handler = std::function<void(ReplicaId from, const PayloadPtr&)>;

  SimNetwork(sim::Simulator* simulator, uint32_t n, LatencyModel latency,
             uint64_t seed);

  uint32_t size() const { return n_; }

  /// Installs the delivery handler for a replica.
  void RegisterHandler(ReplicaId id, Handler handler);

  /// Sends `payload` from -> to. Delivery is dropped when either endpoint
  /// is crashed or the link is cut. Self-sends are delivered with minimal
  /// (loopback) delay.
  void Send(ReplicaId from, ReplicaId to, PayloadPtr payload);

  /// Sends to every replica, including the sender (loopback), as DAG
  /// protocols deliver their own proposals locally.
  void Broadcast(ReplicaId from, PayloadPtr payload);

  /// Crashed replicas neither send nor receive.
  void Crash(ReplicaId id);
  void Restart(ReplicaId id);
  bool IsCrashed(ReplicaId id) const { return crashed_[id]; }

  /// Cuts/restores an individual directed link (censorship simulation).
  void SetLink(ReplicaId from, ReplicaId to, bool up);

  uint64_t messages_delivered() const { return messages_delivered_; }
  uint64_t messages_dropped() const { return messages_dropped_; }

 private:
  bool LinkUp(ReplicaId from, ReplicaId to) const;

  sim::Simulator* simulator_;
  uint32_t n_;
  LatencyModel latency_;
  Rng rng_;
  std::vector<Handler> handlers_;
  std::vector<bool> crashed_;
  std::vector<std::vector<bool>> link_up_;  // [from][to]
  std::vector<SimTime> nic_free_;           // Sender NIC availability.
  uint64_t messages_delivered_ = 0;
  uint64_t messages_dropped_ = 0;
};

}  // namespace thunderbolt::net

#endif  // THUNDERBOLT_NET_NETWORK_H_
