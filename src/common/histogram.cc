#include "common/histogram.h"

#include <algorithm>
#include <cmath>

namespace thunderbolt {

const std::vector<double>& Histogram::Sorted() const {
  // Caller holds no lock; we build (or reuse) the cache under cache_mu_.
  // Concurrent const readers are safe: the first one to arrive builds,
  // later ones observe cache_valid_ under the same mutex. The sample
  // vector itself is never reordered.
  std::lock_guard<std::mutex> lk(cache_mu_);
  if (!cache_valid_) {
    sorted_cache_ = samples_;
    std::sort(sorted_cache_.begin(), sorted_cache_.end());
    cache_valid_ = true;
  }
  return sorted_cache_;
}

double Histogram::Min() const {
  if (samples_.empty()) return 0.0;
  return Sorted().front();
}

double Histogram::Max() const {
  if (samples_.empty()) return 0.0;
  return Sorted().back();
}

double Histogram::Percentile(double p) const {
  if (samples_.empty()) return 0.0;
  const std::vector<double>& sorted = Sorted();
  if (p <= 0) return sorted.front();
  if (p >= 100) return sorted.back();
  double rank = p / 100.0 * static_cast<double>(sorted.size() - 1);
  size_t lo = static_cast<size_t>(std::floor(rank));
  size_t hi = static_cast<size_t>(std::ceil(rank));
  double frac = rank - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

}  // namespace thunderbolt
