// Streaming statistics for benchmark reporting (mean / percentiles).
#ifndef THUNDERBOLT_COMMON_HISTOGRAM_H_
#define THUNDERBOLT_COMMON_HISTOGRAM_H_

#include <cstddef>
#include <cstdint>
#include <mutex>
#include <utility>
#include <vector>

namespace thunderbolt {

/// Collects double-valued samples and reports summary statistics. Keeps all
/// samples (bench populations are modest); percentile queries sort lazily
/// into a mutable cache.
///
/// Single-writer contract: mutating calls (Add/Merge/Clear, assignment) are
/// not synchronized against anything else. Const queries, however, are
/// *genuinely* const: Percentile/Median/Min/Max sort into an internal
/// mutex-guarded cache, never the sample vector itself, so any number of
/// concurrent readers may query a quiescent histogram safely (e.g. a
/// metrics snapshot vs a reporting thread). Code that records from
/// multiple threads still keeps one Histogram per thread and combines them
/// afterwards with Merge() (see ce/thread_executor_pool.cc).
class Histogram {
 public:
  Histogram() = default;
  // The cache mutex is identity, not state: copies and moves transfer the
  // samples and drop the cache (it rebuilds lazily on the next query).
  Histogram(const Histogram& other)
      : samples_(other.samples_), sum_(other.sum_) {}
  Histogram(Histogram&& other) noexcept
      : samples_(std::move(other.samples_)), sum_(other.sum_) {
    other.samples_.clear();
    other.sum_ = 0;
    other.InvalidateCache();
  }
  Histogram& operator=(const Histogram& other) {
    if (this != &other) {
      samples_ = other.samples_;
      sum_ = other.sum_;
      InvalidateCache();
    }
    return *this;
  }
  Histogram& operator=(Histogram&& other) noexcept {
    if (this != &other) {
      samples_ = std::move(other.samples_);
      sum_ = other.sum_;
      other.samples_.clear();
      other.sum_ = 0;
      other.InvalidateCache();
      InvalidateCache();
    }
    return *this;
  }

  void Add(double v) {
    samples_.push_back(v);
    InvalidateCache();
    sum_ += v;
  }

  /// Appends all of `other`'s samples. Quiescent inputs only (see the
  /// contract above).
  void Merge(const Histogram& other) {
    samples_.insert(samples_.end(), other.samples_.begin(),
                    other.samples_.end());
    if (!other.samples_.empty()) InvalidateCache();
    sum_ += other.sum_;
  }

  void Clear() {
    samples_.clear();
    sum_ = 0;
    InvalidateCache();
  }

  size_t Count() const { return samples_.size(); }
  double Sum() const { return sum_; }
  double Mean() const {
    return samples_.empty() ? 0.0 : sum_ / static_cast<double>(Count());
  }

  double Min() const;
  double Max() const;

  /// Raw samples, always in insertion order (queries sort the cache, not
  /// this vector). Used to merge per-batch histograms into a sweep-level
  /// one.
  const std::vector<double>& samples() const { return samples_; }

  /// p in [0, 100].
  double Percentile(double p) const;
  double Median() const { return Percentile(50.0); }

 private:
  /// Returns the sorted-sample cache, building it under `cache_mu_` if
  /// stale. The returned reference stays valid until the next mutation
  /// (callers are quiescent-read-only per the contract).
  const std::vector<double>& Sorted() const;
  void InvalidateCache() {
    std::lock_guard<std::mutex> lk(cache_mu_);
    cache_valid_ = false;
  }

  std::vector<double> samples_;  // Insertion order, never reordered.
  double sum_ = 0;

  mutable std::mutex cache_mu_;
  mutable std::vector<double> sorted_cache_;
  mutable bool cache_valid_ = false;
};

}  // namespace thunderbolt

#endif  // THUNDERBOLT_COMMON_HISTOGRAM_H_
