// Streaming statistics for benchmark reporting (mean / percentiles).
#ifndef THUNDERBOLT_COMMON_HISTOGRAM_H_
#define THUNDERBOLT_COMMON_HISTOGRAM_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace thunderbolt {

/// Collects double-valued samples and reports summary statistics. Keeps all
/// samples (bench populations are modest); percentile queries sort lazily.
///
/// Single-writer, single-thread contract: not internally synchronized, and
/// even const queries mutate — Percentile/Median/Min/Max sort the sample
/// vector in place on first use — so concurrent readers race just like
/// concurrent writers. Code that records from multiple threads keeps one
/// Histogram per thread and combines them afterwards with Merge() (see
/// ce/thread_executor_pool.cc).
class Histogram {
 public:
  void Add(double v) {
    samples_.push_back(v);
    sorted_ = false;
    sum_ += v;
  }

  /// Appends all of `other`'s samples. Quiescent inputs only (see the
  /// contract above).
  void Merge(const Histogram& other) {
    samples_.insert(samples_.end(), other.samples_.begin(),
                    other.samples_.end());
    if (!other.samples_.empty()) sorted_ = false;
    sum_ += other.sum_;
  }

  void Clear() {
    samples_.clear();
    sum_ = 0;
    sorted_ = true;
  }

  size_t Count() const { return samples_.size(); }
  double Sum() const { return sum_; }
  double Mean() const {
    return samples_.empty() ? 0.0 : sum_ / static_cast<double>(Count());
  }

  double Min() const;
  double Max() const;

  /// Raw samples, in insertion order until a percentile query sorts them.
  /// Used to merge per-batch histograms into a sweep-level one.
  const std::vector<double>& samples() const { return samples_; }

  /// p in [0, 100].
  double Percentile(double p) const;
  double Median() const { return Percentile(50.0); }

 private:
  void EnsureSorted() const;

  mutable std::vector<double> samples_;
  mutable bool sorted_ = true;
  double sum_ = 0;
};

}  // namespace thunderbolt

#endif  // THUNDERBOLT_COMMON_HISTOGRAM_H_
