// Deterministic pseudo-random number generation (xoshiro256** seeded by
// SplitMix64). All randomness in Thunderbolt flows through Rng so that
// simulations and tests are reproducible from a single seed.
#ifndef THUNDERBOLT_COMMON_RNG_H_
#define THUNDERBOLT_COMMON_RNG_H_

#include <cstdint>

namespace thunderbolt {

class Rng {
 public:
  explicit Rng(uint64_t seed = 0x5eedULL) { Seed(seed); }

  void Seed(uint64_t seed) {
    // SplitMix64 expansion of the seed into the xoshiro state.
    uint64_t x = seed;
    for (int i = 0; i < 4; ++i) {
      x += 0x9e3779b97f4a7c15ULL;
      uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      s_[i] = z ^ (z >> 31);
    }
  }

  /// Uniform over the full 64-bit range.
  uint64_t Next() {
    auto rotl = [](uint64_t v, int k) { return (v << k) | (v >> (64 - k)); };
    uint64_t result = rotl(s_[1] * 5, 7) * 9;
    uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform in [0, bound). bound must be > 0.
  uint64_t NextBounded(uint64_t bound) {
    // Lemire's nearly-divisionless method would be overkill; simple modulo
    // bias is negligible for the bounds used here.
    return Next() % bound;
  }

  /// Uniform in [lo, hi] inclusive.
  uint64_t NextRange(uint64_t lo, uint64_t hi) {
    return lo + NextBounded(hi - lo + 1);
  }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0);
  }

  /// Bernoulli trial.
  bool NextBool(double p) { return NextDouble() < p; }

  /// Exponential with the given mean (for latency sampling).
  double NextExponential(double mean);

 private:
  uint64_t s_[4];
};

}  // namespace thunderbolt

#endif  // THUNDERBOLT_COMMON_RNG_H_
