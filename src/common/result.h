// Result<T>: a value-or-Status holder, in the style of arrow::Result.
#ifndef THUNDERBOLT_COMMON_RESULT_H_
#define THUNDERBOLT_COMMON_RESULT_H_

#include <cassert>
#include <utility>
#include <variant>

#include "common/status.h"

namespace thunderbolt {

/// Holds either a value of type T or a non-OK Status explaining why the
/// value is absent. Constructing a Result from an OK status is a programming
/// error (asserted in debug builds, converted to Internal otherwise).
template <typename T>
class Result {
 public:
  /// Implicit construction from a value, so `return value;` works.
  Result(T value) : repr_(std::move(value)) {}  // NOLINT(runtime/explicit)

  /// Implicit construction from an error status.
  Result(Status status) : repr_(std::move(status)) {  // NOLINT
    assert(!std::get<Status>(repr_).ok());
    if (std::get<Status>(repr_).ok()) {
      repr_ = Status::Internal("Result constructed from OK status");
    }
  }

  Result(const Result&) = default;
  Result& operator=(const Result&) = default;
  Result(Result&&) noexcept = default;
  Result& operator=(Result&&) noexcept = default;

  bool ok() const { return std::holds_alternative<T>(repr_); }

  /// Returns OK when a value is present, otherwise the stored error.
  Status status() const {
    if (ok()) return Status::OK();
    return std::get<Status>(repr_);
  }

  /// Accessors. Must only be called when ok().
  const T& value() const& {
    assert(ok());
    return std::get<T>(repr_);
  }
  T& value() & {
    assert(ok());
    return std::get<T>(repr_);
  }
  T&& value() && {
    assert(ok());
    return std::get<T>(std::move(repr_));
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Returns the value or `alternative` when this Result holds an error.
  T value_or(T alternative) const {
    return ok() ? value() : std::move(alternative);
  }

 private:
  std::variant<Status, T> repr_;
};

/// Assigns the value of a Result expression to `lhs` or propagates the
/// error: `THUNDERBOLT_ASSIGN_OR_RETURN(auto v, ComputeV());`
#define THUNDERBOLT_ASSIGN_OR_RETURN_IMPL(tmp, lhs, rexpr) \
  auto tmp = (rexpr);                                      \
  if (!tmp.ok()) return tmp.status();                      \
  lhs = std::move(tmp).value();

#define THUNDERBOLT_ASSIGN_OR_RETURN(lhs, rexpr)                          \
  THUNDERBOLT_ASSIGN_OR_RETURN_IMPL(                                      \
      THUNDERBOLT_CONCAT_(_result_tmp_, __LINE__), lhs, rexpr)

#define THUNDERBOLT_CONCAT_INNER_(a, b) a##b
#define THUNDERBOLT_CONCAT_(a, b) THUNDERBOLT_CONCAT_INNER_(a, b)

}  // namespace thunderbolt

#endif  // THUNDERBOLT_COMMON_RESULT_H_
