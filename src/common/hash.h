// SHA-256 implemented from scratch (FIPS 180-4) plus the fixed-size digest
// value type used for block ids, transaction digests and signatures.
#ifndef THUNDERBOLT_COMMON_HASH_H_
#define THUNDERBOLT_COMMON_HASH_H_

#include <array>
#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>

namespace thunderbolt {

/// A 256-bit digest value. Comparable, hashable, hex-printable.
struct Hash256 {
  std::array<uint8_t, 32> bytes{};

  bool IsZero() const {
    for (uint8_t b : bytes) {
      if (b != 0) return false;
    }
    return true;
  }

  /// First 8 bytes interpreted as a little-endian integer; used for
  /// deterministic pseudo-random choices (e.g., hash-based tie breaks).
  uint64_t Prefix64() const {
    uint64_t v = 0;
    std::memcpy(&v, bytes.data(), sizeof(v));
    return v;
  }

  std::string ToHex() const;
  /// Short hex prefix for logs ("a3f19c02").
  std::string ToShortHex() const;

  static Hash256 FromHex(std::string_view hex);

  friend bool operator==(const Hash256& a, const Hash256& b) {
    return a.bytes == b.bytes;
  }
  friend bool operator!=(const Hash256& a, const Hash256& b) {
    return !(a == b);
  }
  friend bool operator<(const Hash256& a, const Hash256& b) {
    return a.bytes < b.bytes;
  }
};

/// Incremental SHA-256 hasher.
///
///   Sha256 h;
///   h.Update(data, len);
///   Hash256 digest = h.Finalize();
class Sha256 {
 public:
  Sha256() { Reset(); }

  void Reset();
  void Update(const void* data, size_t len);
  void Update(std::string_view s) { Update(s.data(), s.size()); }

  /// Convenience for appending integers in little-endian order.
  template <typename T>
  void UpdateInt(T v) {
    static_assert(std::is_integral_v<T>);
    uint8_t buf[sizeof(T)];
    for (size_t i = 0; i < sizeof(T); ++i) {
      buf[i] = static_cast<uint8_t>(v >> (8 * i));
    }
    Update(buf, sizeof(T));
  }

  /// Finalizes and returns the digest. The hasher must be Reset() before
  /// reuse.
  Hash256 Finalize();

  /// One-shot helpers.
  static Hash256 Digest(std::string_view data);
  static Hash256 Digest(const void* data, size_t len);

 private:
  void ProcessBlock(const uint8_t* block);

  uint32_t state_[8];
  uint64_t bit_count_;
  uint8_t buffer_[64];
  size_t buffer_len_;
};

}  // namespace thunderbolt

namespace std {
template <>
struct hash<thunderbolt::Hash256> {
  size_t operator()(const thunderbolt::Hash256& h) const noexcept {
    return static_cast<size_t>(h.Prefix64());
  }
};
}  // namespace std

#endif  // THUNDERBOLT_COMMON_HASH_H_
