// Status: lightweight error propagation for Thunderbolt, in the style used
// by RocksDB and Apache Arrow. Functions that can fail return a Status (or a
// Result<T>, see result.h) instead of throwing exceptions.
#ifndef THUNDERBOLT_COMMON_STATUS_H_
#define THUNDERBOLT_COMMON_STATUS_H_

#include <ostream>
#include <string>
#include <string_view>
#include <utility>

namespace thunderbolt {

/// Error categories used across the code base. Keep this list small; the
/// message carries the detail.
enum class StatusCode : int {
  kOk = 0,
  kInvalidArgument = 1,
  kNotFound = 2,
  kAlreadyExists = 3,
  kAborted = 4,          // Transaction aborted by concurrency control.
  kConflict = 5,         // Unresolvable conflict (e.g., dependency cycle).
  kCorruption = 6,       // Failed integrity check (bad signature, bad block).
  kTimedOut = 7,
  kUnavailable = 8,      // Resource temporarily unavailable (retry).
  kOutOfRange = 9,
  kInternal = 10,
  kNotSupported = 11,
};

/// Returns a stable human-readable name ("OK", "Aborted", ...).
std::string_view StatusCodeToString(StatusCode code);

/// A Status holds a code and, for errors, a message. The OK status carries
/// no allocation and is cheap to copy.
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string msg)
      : code_(code), msg_(std::move(msg)) {}

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) noexcept = default;
  Status& operator=(Status&&) noexcept = default;

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status Aborted(std::string msg) {
    return Status(StatusCode::kAborted, std::move(msg));
  }
  static Status Conflict(std::string msg) {
    return Status(StatusCode::kConflict, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(StatusCode::kCorruption, std::move(msg));
  }
  static Status TimedOut(std::string msg) {
    return Status(StatusCode::kTimedOut, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status NotSupported(std::string msg) {
    return Status(StatusCode::kNotSupported, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  bool IsNotFound() const { return code_ == StatusCode::kNotFound; }
  bool IsAborted() const { return code_ == StatusCode::kAborted; }
  bool IsConflict() const { return code_ == StatusCode::kConflict; }
  bool IsCorruption() const { return code_ == StatusCode::kCorruption; }
  bool IsTimedOut() const { return code_ == StatusCode::kTimedOut; }
  bool IsUnavailable() const { return code_ == StatusCode::kUnavailable; }
  bool IsInvalidArgument() const {
    return code_ == StatusCode::kInvalidArgument;
  }

  StatusCode code() const { return code_; }
  const std::string& message() const { return msg_; }

  /// "OK" or "<Code>: <message>".
  std::string ToString() const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_;
  }

 private:
  StatusCode code_;
  std::string msg_;
};

std::ostream& operator<<(std::ostream& os, const Status& s);

/// Propagates errors to the caller: `THUNDERBOLT_RETURN_NOT_OK(DoThing());`
#define THUNDERBOLT_RETURN_NOT_OK(expr)           \
  do {                                            \
    ::thunderbolt::Status _st = (expr);           \
    if (!_st.ok()) return _st;                    \
  } while (0)

}  // namespace thunderbolt

#endif  // THUNDERBOLT_COMMON_STATUS_H_
