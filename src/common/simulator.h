// Deterministic discrete-event simulator.
//
// Thunderbolt's distributed evaluation runs as a single-process simulation:
// replicas, network links and executor pools are event-driven objects that
// schedule callbacks on a shared virtual clock. This yields bit-exact
// reproducible runs (same seed -> same schedule) while exercising the real
// protocol logic. See DESIGN.md section 2.1 for the rationale.
#ifndef THUNDERBOLT_COMMON_SIMULATOR_H_
#define THUNDERBOLT_COMMON_SIMULATOR_H_

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "common/types.h"

namespace thunderbolt::sim {

/// Handle used to cancel a scheduled event.
using EventId = uint64_t;

class Simulator {
 public:
  Simulator() = default;

  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Current virtual time in microseconds.
  SimTime Now() const { return now_; }

  /// Schedules `fn` to run at absolute virtual time `when` (clamped to be
  /// no earlier than Now()). Events scheduled for the same instant run in
  /// scheduling order (FIFO), which keeps runs deterministic.
  EventId ScheduleAt(SimTime when, std::function<void()> fn);

  /// Schedules `fn` to run `delay` after Now().
  EventId ScheduleAfter(SimTime delay, std::function<void()> fn) {
    return ScheduleAt(now_ + delay, std::move(fn));
  }

  /// Cancels a pending event. Returns false if the event already ran or was
  /// already cancelled.
  bool Cancel(EventId id);

  /// Runs events until the queue is empty or the clock passes `until`.
  /// Returns the number of events executed.
  uint64_t RunUntil(SimTime until);

  /// Runs all pending events (including ones scheduled while running).
  /// `max_events` guards against livelock in buggy protocols.
  uint64_t RunAll(uint64_t max_events = ~uint64_t{0});

  /// Executes exactly one event if available. Returns false when idle.
  bool Step();

  bool Idle() const { return live_events_ == 0; }
  uint64_t pending_events() const { return live_events_; }
  uint64_t executed_events() const { return executed_events_; }

 private:
  struct Event {
    SimTime when;
    uint64_t seq;  // FIFO tiebreak for identical timestamps.
    EventId id;
    std::function<void()> fn;
  };
  struct EventOrder {
    bool operator()(const Event& a, const Event& b) const {
      if (a.when != b.when) return a.when > b.when;
      return a.seq > b.seq;
    }
  };

  std::priority_queue<Event, std::vector<Event>, EventOrder> queue_;
  SimTime now_ = 0;
  uint64_t next_seq_ = 0;
  EventId next_id_ = 1;
  uint64_t live_events_ = 0;
  uint64_t executed_events_ = 0;
  std::vector<EventId> cancelled_;  // Sorted lazily; typically tiny.

  bool IsCancelled(EventId id) const;
};

}  // namespace thunderbolt::sim

#endif  // THUNDERBOLT_COMMON_SIMULATOR_H_
