#include "common/rng.h"

#include <cmath>

namespace thunderbolt {

double Rng::NextExponential(double mean) {
  double u = NextDouble();
  // Guard against log(0).
  if (u <= 0.0) u = 1e-18;
  return -mean * std::log(u);
}

}  // namespace thunderbolt
