// Zipfian-distributed key selection, used to generate skewed (contended)
// SmallBank workloads exactly as in the paper's evaluation (theta = 0.85).
// Implementation follows Gray et al., "Quickly Generating Billion-Record
// Synthetic Databases" (the same formulation used by YCSB).
#ifndef THUNDERBOLT_COMMON_ZIPFIAN_H_
#define THUNDERBOLT_COMMON_ZIPFIAN_H_

#include <cstdint>

#include "common/rng.h"

namespace thunderbolt {

class ZipfianGenerator {
 public:
  /// Generates values in [0, n). `theta` in [0, 1): 0 is uniform; larger
  /// values are more skewed. theta must be != 1.
  ZipfianGenerator(uint64_t n, double theta);

  /// Draws the next value using the supplied RNG.
  uint64_t Next(Rng& rng);

  uint64_t n() const { return n_; }
  double theta() const { return theta_; }

 private:
  static double Zeta(uint64_t n, double theta);

  uint64_t n_;
  double theta_;
  double alpha_;
  double zetan_;
  double eta_;
};

}  // namespace thunderbolt

#endif  // THUNDERBOLT_COMMON_ZIPFIAN_H_
