// Shared vocabulary types used throughout Thunderbolt.
#ifndef THUNDERBOLT_COMMON_TYPES_H_
#define THUNDERBOLT_COMMON_TYPES_H_

#include <cstdint>
#include <string>

namespace thunderbolt {

/// Identifies a replica. Replicas are numbered 0..n-1.
using ReplicaId = uint32_t;

/// Identifies a shard. Thunderbolt assigns one shard per replica, but the
/// mapping shard -> proposing replica rotates across DAG epochs.
using ShardId = uint32_t;

/// DAG round number, starting at 1 within each DAG epoch.
using Round = uint64_t;

/// DAG instance (epoch) number. Reconfiguration switches to epoch + 1.
using EpochId = uint64_t;

/// Globally unique transaction identifier (client id << 32 | sequence).
using TxnId = uint64_t;

/// Virtual time in microseconds (see sim::Simulator).
using SimTime = uint64_t;

constexpr SimTime kSimTimeNever = ~SimTime{0};

/// Converts common units to SimTime microseconds.
constexpr SimTime Micros(uint64_t us) { return us; }
constexpr SimTime Millis(uint64_t ms) { return ms * 1000; }
constexpr SimTime Seconds(uint64_t s) { return s * 1000 * 1000; }

constexpr double ToSeconds(SimTime t) {
  return static_cast<double>(t) / 1e6;
}
constexpr double ToMillis(SimTime t) {
  return static_cast<double>(t) / 1e3;
}

/// The number of Byzantine faults tolerated by n replicas (n = 3f + 1).
constexpr uint32_t MaxFaults(uint32_t n) { return (n - 1) / 3; }

/// Quorum size 2f + 1 for n = 3f + 1 replicas.
constexpr uint32_t QuorumSize(uint32_t n) { return 2 * MaxFaults(n) + 1; }

/// The "weak" quorum f + 1 guaranteeing at least one honest member.
constexpr uint32_t WeakQuorumSize(uint32_t n) { return MaxFaults(n) + 1; }

}  // namespace thunderbolt

#endif  // THUNDERBOLT_COMMON_TYPES_H_
