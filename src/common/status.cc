#include "common/status.h"

namespace thunderbolt {

std::string_view StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kAborted:
      return "Aborted";
    case StatusCode::kConflict:
      return "Conflict";
    case StatusCode::kCorruption:
      return "Corruption";
    case StatusCode::kTimedOut:
      return "TimedOut";
    case StatusCode::kUnavailable:
      return "Unavailable";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kNotSupported:
      return "NotSupported";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out(StatusCodeToString(code_));
  if (!msg_.empty()) {
    out += ": ";
    out += msg_;
  }
  return out;
}

std::ostream& operator<<(std::ostream& os, const Status& s) {
  return os << s.ToString();
}

}  // namespace thunderbolt
