#include "common/simulator.h"

#include <algorithm>

namespace thunderbolt::sim {

EventId Simulator::ScheduleAt(SimTime when, std::function<void()> fn) {
  if (when < now_) when = now_;
  EventId id = next_id_++;
  queue_.push(Event{when, next_seq_++, id, std::move(fn)});
  ++live_events_;
  return id;
}

bool Simulator::Cancel(EventId id) {
  if (id == 0 || id >= next_id_) return false;
  if (IsCancelled(id)) return false;
  cancelled_.push_back(id);
  std::sort(cancelled_.begin(), cancelled_.end());
  if (live_events_ > 0) --live_events_;
  return true;
}

bool Simulator::IsCancelled(EventId id) const {
  return std::binary_search(cancelled_.begin(), cancelled_.end(), id);
}

bool Simulator::Step() {
  while (!queue_.empty()) {
    Event ev = std::move(const_cast<Event&>(queue_.top()));
    queue_.pop();
    if (IsCancelled(ev.id)) {
      // Drop the tombstone so the cancelled list stays small.
      cancelled_.erase(
          std::lower_bound(cancelled_.begin(), cancelled_.end(), ev.id));
      continue;
    }
    now_ = ev.when;
    --live_events_;
    ++executed_events_;
    ev.fn();
    return true;
  }
  return false;
}

uint64_t Simulator::RunUntil(SimTime until) {
  uint64_t executed = 0;
  while (!queue_.empty()) {
    // Peek past cancelled events without executing.
    const Event& top = queue_.top();
    if (IsCancelled(top.id)) {
      cancelled_.erase(
          std::lower_bound(cancelled_.begin(), cancelled_.end(), top.id));
      queue_.pop();
      continue;
    }
    if (top.when > until) break;
    if (Step()) ++executed;
  }
  if (now_ < until) now_ = until;
  return executed;
}

uint64_t Simulator::RunAll(uint64_t max_events) {
  uint64_t executed = 0;
  while (executed < max_events && Step()) {
    ++executed;
  }
  return executed;
}

}  // namespace thunderbolt::sim
