#include "svc/service.h"

#include <cstdio>
#include <cstdlib>
#include <utility>

namespace thunderbolt::svc {

namespace {

/// Per-stream RNG seed: SplitMix64-style mixing so streams are
/// decorrelated while the whole schedule stays a pure function of the
/// config seed.
uint64_t StreamSeed(uint64_t seed, uint32_t stream) {
  uint64_t z = seed + 0x9e3779b97f4a7c15ULL * (stream + 1);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

}  // namespace

ServiceFrontEnd::ServiceFrontEnd(const ServiceConfig& config,
                                 uint32_t num_shards, uint64_t seed,
                                 TxnSource source,
                                 obs::MetricsRegistry* metrics)
    : config_(config),
      source_(std::move(source)),
      metrics_(metrics),
      limiter_(config.limiter_rate_tps, config.limiter_burst) {
  if (num_shards == 0 || config_.queue_depth == 0 || config_.rate_tps <= 0) {
    std::fprintf(stderr,
                 "svc: need num_shards > 0, queue_depth > 0, rate > 0\n");
    std::abort();
  }
  AdmissionOptions admission;
  admission.max_depth = config_.queue_depth;
  admission.codel_target = config_.codel_target;
  if (!ParseAdmissionPolicy(config_.admission, &admission.policy)) {
    std::fprintf(stderr, "svc: unknown admission policy \"%s\"\n",
                 config_.admission.c_str());
    std::abort();
  }
  if (metrics_ != nullptr) {
    // Resolve (and thereby materialize) the counters up front so every
    // time-series window sees them from t=0, not from the first arrival.
    offered_ = &metrics_->GetCounter("svc.offered");
    admitted_ = &metrics_->GetCounter("svc.admitted");
    rejected_ = &metrics_->GetCounter("svc.rejected");
    shed_ = &metrics_->GetCounter("svc.shed");
    dequeued_ = &metrics_->GetCounter("svc.dequeued");
  }

  streams_.resize(num_shards);
  for (uint32_t s = 0; s < num_shards; ++s) {
    ArrivalOptions arrival;
    arrival.rate_tps = config_.rate_tps / num_shards;
    arrival.params = config_.arrival_params;
    arrival.stream = s;
    arrival.num_streams = num_shards;
    Stream& stream = streams_[s];
    stream.process =
        ArrivalRegistry::Global().Create(config_.arrival, arrival);
    if (stream.process == nullptr) {
      std::fprintf(stderr, "svc: unknown arrival process \"%s\"\n",
                   config_.arrival.c_str());
      std::abort();
    }
    stream.queue = std::make_unique<AdmissionQueue>(admission);
    stream.rng.Seed(StreamSeed(seed, s));
    stream.next_arrival = stream.process->NextArrival(0, stream.rng);
    if (metrics_ != nullptr) {
      stream.depth_gauge =
          &metrics_->GetGauge("svc.queue_depth", {{"shard", s}});
      stream.depth_gauge->Set(0);
    }
  }
}

SimTime ServiceFrontEnd::NextArrivalTime() const {
  SimTime next = kSimTimeNever;
  for (const Stream& stream : streams_) {
    if (stream.next_arrival < next) next = stream.next_arrival;
  }
  return next;
}

void ServiceFrontEnd::Admit(Stream& stream, ShardId shard, SimTime when) {
  txn::Transaction tx = source_(shard);
  tx.submit_time = when;  // Arrival time: the end-to-end latency origin.
  ++counters_.offered;
  if (offered_ != nullptr) offered_->Inc();
  if (!limiter_.TryAcquire(when)) {
    ++counters_.rejected;
    if (rejected_ != nullptr) rejected_->Inc();
    return;
  }
  AdmissionQueue::EnqueueResult r = stream.queue->Enqueue(std::move(tx));
  if (r.admitted) {
    ++counters_.admitted;
    if (admitted_ != nullptr) admitted_->Inc();
  } else {
    ++counters_.rejected;
    if (rejected_ != nullptr) rejected_->Inc();
  }
  if (r.shed > 0) {
    counters_.shed += r.shed;
    if (shed_ != nullptr) shed_->Inc(r.shed);
  }
  if (stream.depth_gauge != nullptr) {
    stream.depth_gauge->Set(static_cast<double>(stream.queue->depth()));
  }
}

void ServiceFrontEnd::AdvanceTo(SimTime now) {
  // Merge the per-stream schedules in (time, shard) order so the
  // transaction source's RNG draws happen in one deterministic sequence
  // no matter how callers slice time.
  for (;;) {
    SimTime best = kSimTimeNever;
    size_t best_stream = 0;
    for (size_t s = 0; s < streams_.size(); ++s) {
      if (streams_[s].next_arrival < best) {
        best = streams_[s].next_arrival;
        best_stream = s;
      }
    }
    if (best == kSimTimeNever || best > now) return;
    Stream& stream = streams_[best_stream];
    Admit(stream, static_cast<ShardId>(best_stream), best);
    stream.next_arrival = stream.process->NextArrival(best, stream.rng);
  }
}

std::vector<txn::Transaction> ServiceFrontEnd::Dequeue(ShardId shard,
                                                       SimTime now,
                                                       size_t max) {
  Stream& stream = streams_[shard];
  AdmissionQueue::DequeueResult r = stream.queue->Dequeue(now, max);
  if (r.shed > 0) {
    counters_.shed += r.shed;
    if (shed_ != nullptr) shed_->Inc(r.shed);
  }
  if (!r.batch.empty()) {
    counters_.dequeued += r.batch.size();
    if (dequeued_ != nullptr) dequeued_->Inc(r.batch.size());
    for (txn::Transaction& tx : r.batch) tx.admit_time = now;
  }
  if (stream.depth_gauge != nullptr) {
    stream.depth_gauge->Set(static_cast<double>(stream.queue->depth()));
  }
  return std::move(r.batch);
}

uint64_t ServiceFrontEnd::total_queue_depth() const {
  uint64_t depth = 0;
  for (const Stream& stream : streams_) depth += stream.queue->depth();
  return depth;
}

}  // namespace thunderbolt::svc
