// Open-loop arrival processes: the client side of the service front end.
//
// An ArrivalProcess answers one question — "given `now`, when does this
// stream's next transaction arrive?" — on the deterministic sim clock,
// drawing all randomness from a caller-owned seeded Rng so the same seed
// always produces the same arrival schedule (determinism_test pins
// open-loop cluster runs to the same byte-identical bar as closed-loop
// ones). Processes register by name in ArrivalRegistry, mirroring
// WorkloadRegistry / PlacementRegistry / StoreRegistry:
//
//   "poisson"  memoryless arrivals at the configured mean rate — the
//              classic open-loop load model.
//   "burst"    on/off modulated Poisson (flash crowd): a high-rate burst
//              phase alternating with a quiet phase, with the long-run
//              average pinned to the configured rate.
//              Params: on_ms, off_ms (phase lengths; defaults 200/800),
//              mult (burst-to-quiet rate ratio; default 8).
//   "trace"    replay of a recorded schedule.
//              Params: times=t1;t2;... (arrival offsets in microseconds,
//              assigned round-robin across streams) or file=<path> (one
//              "<t_us> [stream]" line per arrival; lines without a stream
//              column round-robin); loop_us=<period> repeats the schedule
//              with that period (0 = play once, then the stream is
//              exhausted).
//
// One process instance feeds one stream (one shard's admission queue);
// the per-stream rate is the aggregate rate divided by the stream count,
// so shards load evenly and each stream's RNG draws stay independent of
// every other stream's.
#ifndef THUNDERBOLT_SVC_ARRIVAL_H_
#define THUNDERBOLT_SVC_ARRIVAL_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/types.h"

namespace thunderbolt::svc {

/// Options every arrival factory receives (the shared-struct idiom of
/// WorkloadOptions / PlacementOptions).
struct ArrivalOptions {
  /// Mean arrivals per second for THIS stream (the front end divides the
  /// aggregate offered rate by the stream count before constructing).
  double rate_tps = 1000;
  /// Process-specific "key=value[,key=value...]" knobs (see file header).
  /// Factories abort on unknown keys or malformed values — arrival specs
  /// are configuration, and a typo must not silently bench a default.
  std::string params;
  /// Which stream (shard) this process feeds, and how many exist: trace
  /// replay partitions its schedule across streams with these.
  uint32_t stream = 0;
  uint32_t num_streams = 1;
};

/// One stream's arrival schedule generator. Implementations keep only
/// deterministic state (phase walks, trace cursors); all randomness comes
/// from the Rng the caller passes in, which the caller seeds per stream.
class ArrivalProcess {
 public:
  virtual ~ArrivalProcess() = default;

  /// Registry name ("poisson", "burst", "trace").
  virtual std::string name() const = 0;

  /// Absolute sim time of the stream's next arrival, strictly after
  /// `now`; kSimTimeNever once the process is exhausted (only trace
  /// replay without loop_us ever exhausts).
  virtual SimTime NextArrival(SimTime now, Rng& rng) = 0;
};

/// String-keyed factory registry over ArrivalOptions, preloaded with the
/// built-ins ("poisson", "burst", "trace").
class ArrivalRegistry {
 public:
  using Factory =
      std::function<std::unique_ptr<ArrivalProcess>(const ArrivalOptions&)>;

  /// Registers `factory` under `name`. Overwrites any existing entry.
  void Register(std::string name, Factory factory);

  /// Instantiates the named process, or nullptr for unknown names.
  /// Factories abort on malformed params (see ArrivalOptions::params).
  std::unique_ptr<ArrivalProcess> Create(const std::string& name,
                                         const ArrivalOptions& options) const;

  bool Contains(const std::string& name) const;

  /// Registered names, sorted.
  std::vector<std::string> Names() const;

  /// The process-wide registry, preloaded with the built-ins.
  static ArrivalRegistry& Global();

 private:
  std::map<std::string, Factory> factories_;
};

}  // namespace thunderbolt::svc

#endif  // THUNDERBOLT_SVC_ARRIVAL_H_
