// The open-loop service front end: arrival processes feeding per-shard
// bounded admission queues.
//
// Closed-loop benches pull work ("generate batch -> execute"); the system
// never sees traffic it does not control. ServiceFrontEnd inverts that:
// an ArrivalProcess per shard generates client transactions on the
// deterministic sim clock, a token bucket and the AdmissionQueue's
// overload policy decide which of them the system accepts, and the
// proposer pipeline dequeues admitted work batch by batch. Each
// transaction's `submit_time` is stamped with its ARRIVAL time, so the
// existing queue_wait phase and commit-latency percentiles automatically
// become end-to-end (arrival -> commit) measurements; `admit_time`
// (stamped at dequeue) preserves the old admit -> commit view next to it.
//
// The front end owns no clock and schedules nothing itself: callers push
// time at it (the cluster from a self-rechaining sim event at
// NextArrivalTime(), batch drivers from their accumulated virtual clock),
// which keeps the class usable from both the discrete-event simulation
// and the batch bench drivers, and keeps every run byte-reproducible from
// the seed.
#ifndef THUNDERBOLT_SVC_SERVICE_H_
#define THUNDERBOLT_SVC_SERVICE_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/types.h"
#include "obs/metrics.h"
#include "svc/admission.h"
#include "svc/arrival.h"
#include "txn/transaction.h"

namespace thunderbolt::svc {

/// Service front-end knobs, threaded through ThunderboltConfig::service
/// and the benches' --arrival/--rate/--admission/--queue-depth flags.
struct ServiceConfig {
  /// Off by default: the cluster then runs closed-loop (proposers pull
  /// fresh batches from the workload), byte-identical to before.
  bool enabled = false;
  /// Arrival process, by ArrivalRegistry name ("poisson", "burst",
  /// "trace").
  std::string arrival = "poisson";
  /// Process-specific params (see svc/arrival.h header).
  std::string arrival_params;
  /// Aggregate offered load in transactions/second across all shards
  /// (each shard's stream runs at rate_tps / num_shards).
  double rate_tps = 20000;
  /// Overload policy name ("drop-tail", "shed-oldest", "codel").
  std::string admission = "drop-tail";
  /// Per-shard admission queue bound.
  uint32_t queue_depth = 1024;
  /// CoDel sojourn target (ignored by the other policies).
  SimTime codel_target = Millis(50);
  /// Token-bucket rate limiter ahead of the queues; <= 0 disables it.
  double limiter_rate_tps = 0;
  /// Bucket capacity in tokens; <= 0 derives a small default.
  double limiter_burst = 0;
};

class ServiceFrontEnd {
 public:
  /// Draws the next client transaction homed at a shard (the cluster
  /// passes workload::Workload::NextForShard).
  using TxnSource = std::function<txn::Transaction(ShardId)>;

  /// `metrics` may be null (no svc.* counters/gauges are published then).
  /// Aborts on an unknown arrival or admission name — front-end
  /// construction is configuration, mirroring the Cluster ctor.
  ServiceFrontEnd(const ServiceConfig& config, uint32_t num_shards,
                  uint64_t seed, TxnSource source,
                  obs::MetricsRegistry* metrics);

  ServiceFrontEnd(const ServiceFrontEnd&) = delete;
  ServiceFrontEnd& operator=(const ServiceFrontEnd&) = delete;

  /// Earliest pending arrival across all streams; kSimTimeNever when every
  /// stream is exhausted (trace replay past its schedule).
  SimTime NextArrivalTime() const;

  /// Generates and admits every arrival with time <= now, in global
  /// (time, shard) order — the deterministic merge of the per-stream
  /// schedules. Idempotent for a `now` in the past.
  void AdvanceTo(SimTime now);

  /// Pops up to `max` admitted transactions for `shard` at sim time `now`
  /// (codel sheds over-target entries first). Dequeued transactions keep
  /// their arrival `submit_time`; `admit_time` is stamped with `now`.
  std::vector<txn::Transaction> Dequeue(ShardId shard, SimTime now,
                                        size_t max);

  /// Monotone accounting; see svc/admission.h for the terminology.
  /// Invariants: offered == admitted + rejected, and
  /// admitted == shed + dequeued + (current queue depths).
  struct Counters {
    uint64_t offered = 0;
    uint64_t admitted = 0;
    uint64_t rejected = 0;
    uint64_t shed = 0;
    uint64_t dequeued = 0;
  };
  const Counters& counters() const { return counters_; }

  size_t queue_depth(ShardId shard) const {
    return streams_[shard].queue->depth();
  }
  uint64_t total_queue_depth() const;
  uint32_t num_shards() const { return static_cast<uint32_t>(streams_.size()); }
  const ServiceConfig& config() const { return config_; }

 private:
  struct Stream {
    std::unique_ptr<ArrivalProcess> process;
    std::unique_ptr<AdmissionQueue> queue;
    Rng rng;
    SimTime next_arrival = kSimTimeNever;
    /// svc.queue_depth{shard=k}; null without a registry.
    obs::Gauge* depth_gauge = nullptr;
  };

  void Admit(Stream& stream, ShardId shard, SimTime when);

  ServiceConfig config_;
  TxnSource source_;
  obs::MetricsRegistry* metrics_;  // May be null.
  TokenBucket limiter_;
  std::vector<Stream> streams_;
  Counters counters_;
  // Registry mirrors of `counters_`, resolved once (null without a
  // registry). Ticking them at arrival/dequeue sim time lands each delta
  // in the right time-series window.
  obs::Counter* offered_ = nullptr;
  obs::Counter* admitted_ = nullptr;
  obs::Counter* rejected_ = nullptr;
  obs::Counter* shed_ = nullptr;
  obs::Counter* dequeued_ = nullptr;
};

}  // namespace thunderbolt::svc

#endif  // THUNDERBOLT_SVC_SERVICE_H_
