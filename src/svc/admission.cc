#include "svc/admission.h"

#include <utility>

namespace thunderbolt::svc {

const char* AdmissionPolicyName(AdmissionPolicy policy) {
  switch (policy) {
    case AdmissionPolicy::kDropTail: return "drop-tail";
    case AdmissionPolicy::kShedOldest: return "shed-oldest";
    case AdmissionPolicy::kCoDel: return "codel";
  }
  return "unknown";
}

bool ParseAdmissionPolicy(const std::string& name, AdmissionPolicy* out) {
  if (name == "drop-tail") {
    *out = AdmissionPolicy::kDropTail;
  } else if (name == "shed-oldest") {
    *out = AdmissionPolicy::kShedOldest;
  } else if (name == "codel") {
    *out = AdmissionPolicy::kCoDel;
  } else {
    return false;
  }
  return true;
}

std::vector<std::string> AdmissionPolicyNames() {
  return {"drop-tail", "shed-oldest", "codel"};
}

AdmissionQueue::EnqueueResult AdmissionQueue::Enqueue(txn::Transaction tx) {
  EnqueueResult result;
  if (queue_.size() >= options_.max_depth) {
    if (options_.policy != AdmissionPolicy::kShedOldest) {
      return result;  // drop-tail / codel: reject the newcomer.
    }
    // shed-oldest: evict the head so the queue always holds fresh work.
    queue_.pop_front();
    result.shed = 1;
  }
  queue_.push_back(std::move(tx));
  result.admitted = true;
  return result;
}

AdmissionQueue::DequeueResult AdmissionQueue::Dequeue(SimTime now,
                                                      size_t max) {
  DequeueResult result;
  if (options_.policy == AdmissionPolicy::kCoDel) {
    // Deadline shedding: the FIFO head is always the oldest entry, so
    // dropping from the front until the head is young enough sheds
    // exactly the over-target population.
    while (!queue_.empty() &&
           now - queue_.front().submit_time > options_.codel_target) {
      queue_.pop_front();
      ++result.shed;
    }
  }
  while (!queue_.empty() && result.batch.size() < max) {
    result.batch.push_back(std::move(queue_.front()));
    queue_.pop_front();
  }
  return result;
}

}  // namespace thunderbolt::svc
