#include "svc/arrival.h"

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <utility>
#include <vector>

namespace thunderbolt::svc {

namespace {

/// One "key=value" assignment from an arrival param spec.
struct Param {
  std::string key;
  std::string value;
};

[[noreturn]] void AbortBadParams(const std::string& spec,
                                 const std::string& why) {
  std::fprintf(stderr, "arrival: bad params \"%s\": %s\n", spec.c_str(),
               why.c_str());
  std::abort();
}

/// Splits "key=value[,key=value...]", aborting on malformed entries —
/// arrival specs are configuration (see ArrivalOptions::params).
std::vector<Param> SplitParams(const std::string& spec) {
  std::vector<Param> params;
  size_t start = 0;
  while (start <= spec.size()) {
    size_t comma = spec.find(',', start);
    if (comma == std::string::npos) comma = spec.size();
    if (comma > start) {
      const std::string item = spec.substr(start, comma - start);
      size_t eq = item.find('=');
      if (eq == std::string::npos || eq == 0) {
        AbortBadParams(spec, "\"" + item + "\" is not key=value");
      }
      params.push_back(Param{item.substr(0, eq), item.substr(eq + 1)});
    }
    start = comma + 1;
  }
  return params;
}

uint64_t ParseU64OrAbort(const std::string& spec, const Param& p) {
  if (p.value.empty() || p.value[0] == '-' || p.value[0] == '+') {
    AbortBadParams(spec, p.key + ": bad integer \"" + p.value + "\"");
  }
  errno = 0;
  char* end = nullptr;
  unsigned long long v = std::strtoull(p.value.c_str(), &end, 10);
  if (end == p.value.c_str() || *end != '\0' || errno == ERANGE) {
    AbortBadParams(spec, p.key + ": bad integer \"" + p.value + "\"");
  }
  return v;
}

double ParseDoubleOrAbort(const std::string& spec, const Param& p) {
  errno = 0;
  char* end = nullptr;
  double v = std::strtod(p.value.c_str(), &end);
  if (end == p.value.c_str() || *end != '\0' || errno == ERANGE) {
    AbortBadParams(spec, p.key + ": bad number \"" + p.value + "\"");
  }
  return v;
}

/// Exponential interarrival gap in integer microseconds, at least 1 so
/// NextArrival is strictly increasing (two arrivals may still share a
/// microsecond across streams; within a stream time always advances).
SimTime ExpGapUs(double rate_tps, Rng& rng) {
  const double mean_us = 1e6 / rate_tps;
  const double gap = rng.NextExponential(mean_us);
  return std::max<SimTime>(1, static_cast<SimTime>(gap));
}

/// Memoryless arrivals at a fixed mean rate.
class PoissonArrival : public ArrivalProcess {
 public:
  explicit PoissonArrival(const ArrivalOptions& options)
      : rate_tps_(options.rate_tps) {
    for (const Param& p : SplitParams(options.params)) {
      AbortBadParams(options.params, "poisson: unknown key \"" + p.key + "\"");
    }
    if (rate_tps_ <= 0) {
      std::fprintf(stderr, "arrival: poisson rate must be > 0 (got %f)\n",
                   rate_tps_);
      std::abort();
    }
  }

  std::string name() const override { return "poisson"; }

  SimTime NextArrival(SimTime now, Rng& rng) override {
    return now + ExpGapUs(rate_tps_, rng);
  }

 private:
  double rate_tps_;
};

/// On/off modulated Poisson (flash crowd). The instantaneous rate is
/// piecewise constant over the phase schedule; sampling walks phase
/// boundaries and redraws from each boundary, which is exact for a
/// piecewise-constant-rate Poisson process (memorylessness).
class BurstArrival : public ArrivalProcess {
 public:
  explicit BurstArrival(const ArrivalOptions& options) {
    double on_ms = 200, off_ms = 800, mult = 8;
    for (const Param& p : SplitParams(options.params)) {
      if (p.key == "on_ms") {
        on_ms = ParseDoubleOrAbort(options.params, p);
      } else if (p.key == "off_ms") {
        off_ms = ParseDoubleOrAbort(options.params, p);
      } else if (p.key == "mult") {
        mult = ParseDoubleOrAbort(options.params, p);
      } else {
        AbortBadParams(options.params, "burst: unknown key \"" + p.key + "\"");
      }
    }
    if (on_ms <= 0 || off_ms < 0 || mult < 1 || options.rate_tps <= 0) {
      AbortBadParams(options.params,
                     "burst: need on_ms > 0, off_ms >= 0, mult >= 1 and a "
                     "positive rate");
    }
    on_us_ = static_cast<SimTime>(on_ms * 1000);
    period_us_ = on_us_ + static_cast<SimTime>(off_ms * 1000);
    // Pin the long-run average to the configured rate: with duty cycle d,
    // rate = d*mult*base + (1-d)*base.
    const double duty =
        static_cast<double>(on_us_) / static_cast<double>(period_us_);
    const double base = options.rate_tps / (duty * mult + (1.0 - duty));
    off_rate_tps_ = base;
    on_rate_tps_ = base * mult;
  }

  std::string name() const override { return "burst"; }

  SimTime NextArrival(SimTime now, Rng& rng) override {
    SimTime t = now;
    for (;;) {
      const SimTime phase_pos = t % period_us_;
      const bool on = phase_pos < on_us_;
      const SimTime phase_end = t - phase_pos + (on ? on_us_ : period_us_);
      const double rate = on ? on_rate_tps_ : off_rate_tps_;
      if (rate <= 0) {  // off_ms with mult pinning base to 0 never happens,
        t = phase_end;  // but keep the walk total just in case.
        continue;
      }
      const SimTime candidate = t + ExpGapUs(rate, rng);
      if (candidate <= phase_end) return candidate;
      t = phase_end;  // Crossed a boundary: redraw at the new phase's rate.
    }
  }

 private:
  SimTime on_us_ = 0;
  SimTime period_us_ = 0;
  double on_rate_tps_ = 0;
  double off_rate_tps_ = 0;
};

/// Replay of a recorded schedule (see file header for the two sources).
class TraceArrival : public ArrivalProcess {
 public:
  explicit TraceArrival(const ArrivalOptions& options) {
    std::string times_spec, file;
    for (const Param& p : SplitParams(options.params)) {
      if (p.key == "times") {
        times_spec = p.value;
      } else if (p.key == "file") {
        file = p.value;
      } else if (p.key == "loop_us") {
        loop_us_ = ParseU64OrAbort(options.params, p);
      } else {
        AbortBadParams(options.params, "trace: unknown key \"" + p.key + "\"");
      }
    }
    if (times_spec.empty() == file.empty()) {
      AbortBadParams(options.params,
                     "trace: exactly one of times=t1;t2;... or file=<path> "
                     "is required");
    }
    if (!file.empty()) {
      LoadFile(file, options);
    } else {
      // Inline offsets, ';'-separated, round-robin across streams.
      size_t start = 0, index = 0;
      while (start <= times_spec.size()) {
        size_t semi = times_spec.find(';', start);
        if (semi == std::string::npos) semi = times_spec.size();
        if (semi > start) {
          const Param p{"times", times_spec.substr(start, semi - start)};
          const SimTime t = ParseU64OrAbort(options.params, p);
          if (index % options.num_streams == options.stream) {
            schedule_.push_back(t);
          }
          ++index;
        }
        start = semi + 1;
      }
    }
    std::sort(schedule_.begin(), schedule_.end());
    if (loop_us_ > 0 && !schedule_.empty() && schedule_.back() >= loop_us_) {
      AbortBadParams(options.params,
                     "trace: every arrival offset must lie below loop_us");
    }
  }

  std::string name() const override { return "trace"; }

  SimTime NextArrival(SimTime now, Rng& rng) override {
    (void)rng;  // Replay is fully determined by the schedule.
    if (schedule_.empty()) return kSimTimeNever;
    if (loop_us_ == 0) {
      // Play once: binary-search the first offset strictly after now.
      auto it = std::upper_bound(schedule_.begin(), schedule_.end(), now);
      return it == schedule_.end() ? kSimTimeNever : *it;
    }
    // Periodic replay: the schedule repeats with period loop_us_.
    const SimTime cycle = now / loop_us_;
    const SimTime pos = now % loop_us_;
    auto it = std::upper_bound(schedule_.begin(), schedule_.end(), pos);
    if (it != schedule_.end()) return cycle * loop_us_ + *it;
    return (cycle + 1) * loop_us_ + schedule_.front();
  }

 private:
  void LoadFile(const std::string& path, const ArrivalOptions& options) {
    std::FILE* f = std::fopen(path.c_str(), "r");
    if (f == nullptr) {
      std::fprintf(stderr, "arrival: trace file \"%s\" not readable\n",
                   path.c_str());
      std::abort();
    }
    char line[256];
    size_t index = 0;
    while (std::fgets(line, sizeof(line), f) != nullptr) {
      unsigned long long t = 0, stream = 0;
      const int fields = std::sscanf(line, "%llu %llu", &t, &stream);
      if (fields < 1) continue;  // Blank/comment line.
      const uint64_t target = fields >= 2
                                  ? stream % options.num_streams
                                  : index % options.num_streams;
      if (target == options.stream) schedule_.push_back(t);
      ++index;
    }
    std::fclose(f);
  }

  std::vector<SimTime> schedule_;
  SimTime loop_us_ = 0;  // 0 = play once.
};

}  // namespace

void ArrivalRegistry::Register(std::string name, Factory factory) {
  factories_[std::move(name)] = std::move(factory);
}

std::unique_ptr<ArrivalProcess> ArrivalRegistry::Create(
    const std::string& name, const ArrivalOptions& options) const {
  auto it = factories_.find(name);
  return it == factories_.end() ? nullptr : it->second(options);
}

bool ArrivalRegistry::Contains(const std::string& name) const {
  return factories_.count(name) > 0;
}

std::vector<std::string> ArrivalRegistry::Names() const {
  std::vector<std::string> names;
  names.reserve(factories_.size());
  for (const auto& [name, factory] : factories_) names.push_back(name);
  return names;
}

ArrivalRegistry& ArrivalRegistry::Global() {
  // Leaked singleton (no destruction-order issues), preloaded with the
  // built-ins — the WorkloadRegistry idiom.
  static ArrivalRegistry* registry = [] {
    auto* r = new ArrivalRegistry();
    r->Register("poisson", [](const ArrivalOptions& o) {
      return std::make_unique<PoissonArrival>(o);
    });
    r->Register("burst", [](const ArrivalOptions& o) {
      return std::make_unique<BurstArrival>(o);
    });
    r->Register("trace", [](const ArrivalOptions& o) {
      return std::make_unique<TraceArrival>(o);
    });
    return r;
  }();
  return *registry;
}

}  // namespace thunderbolt::svc
