// Transaction and operation model (paper section 3.1, "Data model").
//
// A transaction invokes a named contract function with arguments. Contract
// code is Turing-complete: the exact set of <Read, K> / <Write, K, V>
// operations it performs is unknowable before execution. What *is* visible
// up front are the account arguments, which determine the shards involved
// (every key carries a predefined shard id, SID) — this is how Thunderbolt
// distinguishes Single-shard TXs from Cross-shard TXs without knowing
// read/write sets.
#ifndef THUNDERBOLT_TXN_TRANSACTION_H_
#define THUNDERBOLT_TXN_TRANSACTION_H_

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/hash.h"
#include "common/types.h"
#include "placement/placement.h"
#include "storage/kv_store.h"

namespace thunderbolt::txn {

using storage::Key;
using storage::Value;

enum class OpType : uint8_t { kRead = 0, kWrite = 1 };

/// One storage access performed during execution. For reads, `value` is the
/// value observed; for writes, the value written.
struct Operation {
  OpType type;
  Key key;
  Value value;

  friend bool operator==(const Operation& a, const Operation& b) {
    return a.type == b.type && a.key == b.key && a.value == b.value;
  }
};

/// The read set (key -> value observed) and write set (key -> final value)
/// produced by executing a transaction. Declared in preplay blocks and
/// re-checked during validation.
struct ReadWriteSet {
  std::vector<Operation> reads;
  std::vector<Operation> writes;

  void Clear() {
    reads.clear();
    writes.clear();
  }

  /// Returns true if the two sets touch a common key with at least one
  /// write (the standard conflict predicate).
  bool ConflictsWith(const ReadWriteSet& other) const;

  /// All distinct keys written.
  std::vector<Key> WrittenKeys() const;
};

/// A client transaction.
struct Transaction {
  TxnId id = 0;

  /// Name of the contract function to invoke (resolved against the
  /// contract::Registry) — e.g. "smallbank.send_payment".
  std::string contract;

  /// Account (entity) arguments. Shard placement is derived from these.
  std::vector<std::string> accounts;

  /// Numeric arguments (amounts etc.).
  std::vector<Value> params;

  /// Virtual time at which the client submitted the transaction; used for
  /// end-to-end latency accounting. Under the open-loop service front end
  /// this is the ARRIVAL time (stamped when the arrival process generated
  /// the transaction); in closed-loop runs it equals admit_time.
  SimTime submit_time = 0;

  /// Virtual time at which a proposer pulled the transaction into a batch
  /// (== dequeue from the admission queue in open-loop runs). The gap
  /// submit_time -> admit_time is the admission-queue wait.
  SimTime admit_time = 0;

  Hash256 Digest() const;
};

/// Maps keys/accounts to shards by delegating to a placement::
/// PlacementPolicy. Shard ids are predefined and known to all replicas
/// (paper section 3.1). A key belongs to the shard of its account prefix
/// (the part before '/'), so all keys of one account co-locate.
class ShardMapper {
 public:
  /// Hash placement over `num_shards` — the historical default, byte-
  /// identical to the mapping this class always used.
  explicit ShardMapper(uint32_t num_shards);

  /// Delegates to `policy`. The policy is shared, not copied: the cluster
  /// may mutate it at reconfiguration boundaries (hot-key migration) and
  /// lookups observe the current mapping.
  explicit ShardMapper(std::shared_ptr<const placement::PlacementPolicy> policy);

  uint32_t num_shards() const { return policy_->num_shards(); }
  const placement::PlacementPolicy& policy() const { return *policy_; }

  /// Classification is the hot path (policy lookup + workload bucket
  /// rebuilds resolve every account, and the hash policy pays a Sha256
  /// per resolve), so resolved shards are memoized per mapper. The memo
  /// keys on the policy's generation counter: a hot-key migration bumps
  /// it and the next lookup drops the stale cache, preserving the
  /// mutation-visibility contract of the shared policy object.
  ShardId ShardOfAccount(const std::string& account) const {
    if (policy_->generation() != cache_generation_) {
      shard_cache_.clear();
      cache_generation_ = policy_->generation();
    }
    auto it = shard_cache_.find(account);
    if (it != shard_cache_.end()) return it->second;
    const ShardId shard = policy_->ShardOfAccount(account);
    if (shard_cache_.size() >= kShardCacheMaxEntries) shard_cache_.clear();
    shard_cache_.emplace(account, shard);
    return shard;
  }
  ShardId ShardOfKey(const Key& key) const;

  /// The distinct shards a transaction's account arguments touch, sorted.
  std::vector<ShardId> ShardsOf(const Transaction& tx) const;

  /// Number of distinct shards the transaction's accounts touch, without
  /// materializing the sorted vector ShardsOf builds.
  uint32_t CountDistinctShards(const Transaction& tx) const;

  /// True when all account arguments live in a single shard. Early-exits
  /// on the first account that maps elsewhere (the hot classification
  /// path: every pulled transaction goes through this check).
  bool IsSingleShard(const Transaction& tx) const {
    if (tx.accounts.size() <= 1) return true;
    const ShardId first = ShardOfAccount(tx.accounts.front());
    for (size_t i = 1; i < tx.accounts.size(); ++i) {
      if (ShardOfAccount(tx.accounts[i]) != first) return false;
    }
    return true;
  }

 private:
  /// Safety valve for unbounded account spaces: a full cache is dropped
  /// rather than grown (workload populations sit far below this).
  static constexpr size_t kShardCacheMaxEntries = 1 << 20;

  std::shared_ptr<const placement::PlacementPolicy> policy_;
  mutable std::unordered_map<std::string, ShardId> shard_cache_;
  mutable uint64_t cache_generation_ = 0;
};

/// Builds the storage keys for an account used across the code base.
/// SmallBank holds a checking and a savings balance per customer.
std::string CheckingKey(const std::string& account);
std::string SavingsKey(const std::string& account);

}  // namespace thunderbolt::txn

#endif  // THUNDERBOLT_TXN_TRANSACTION_H_
