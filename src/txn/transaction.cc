#include "txn/transaction.h"

#include <algorithm>
#include <unordered_set>

namespace thunderbolt::txn {

bool ReadWriteSet::ConflictsWith(const ReadWriteSet& other) const {
  std::unordered_set<std::string_view> my_writes;
  for (const Operation& w : writes) my_writes.insert(w.key);
  for (const Operation& w : other.writes) {
    if (my_writes.count(w.key)) return true;
  }
  for (const Operation& r : other.reads) {
    if (my_writes.count(r.key)) return true;
  }
  std::unordered_set<std::string_view> their_writes;
  for (const Operation& w : other.writes) their_writes.insert(w.key);
  for (const Operation& r : reads) {
    if (their_writes.count(r.key)) return true;
  }
  return false;
}

std::vector<Key> ReadWriteSet::WrittenKeys() const {
  std::vector<Key> keys;
  keys.reserve(writes.size());
  for (const Operation& w : writes) keys.push_back(w.key);
  std::sort(keys.begin(), keys.end());
  keys.erase(std::unique(keys.begin(), keys.end()), keys.end());
  return keys;
}

Hash256 Transaction::Digest() const {
  Sha256 h;
  h.UpdateInt(id);
  h.Update(contract);
  for (const std::string& a : accounts) {
    h.UpdateInt<uint32_t>(static_cast<uint32_t>(a.size()));
    h.Update(a);
  }
  for (Value v : params) h.UpdateInt(v);
  return h.Finalize();
}

ShardMapper::ShardMapper(uint32_t num_shards)
    : policy_(std::make_shared<placement::HashPlacement>(num_shards)) {}

ShardMapper::ShardMapper(
    std::shared_ptr<const placement::PlacementPolicy> policy)
    : policy_(std::move(policy)) {}

ShardId ShardMapper::ShardOfKey(const Key& key) const {
  size_t slash = key.find('/');
  if (slash == std::string::npos) return ShardOfAccount(key);
  return ShardOfAccount(key.substr(0, slash));
}

std::vector<ShardId> ShardMapper::ShardsOf(const Transaction& tx) const {
  std::vector<ShardId> shards;
  shards.reserve(tx.accounts.size());
  for (const std::string& a : tx.accounts) {
    shards.push_back(ShardOfAccount(a));
  }
  std::sort(shards.begin(), shards.end());
  shards.erase(std::unique(shards.begin(), shards.end()), shards.end());
  return shards;
}

uint32_t ShardMapper::CountDistinctShards(const Transaction& tx) const {
  // Account lists are tiny (1-4 entries for every built-in workload): a
  // linear scan over a stack buffer beats ShardsOf's allocate+sort+unique.
  constexpr size_t kInline = 16;
  if (tx.accounts.size() > kInline) {
    return static_cast<uint32_t>(ShardsOf(tx).size());
  }
  ShardId seen[kInline];
  uint32_t distinct = 0;
  for (const std::string& a : tx.accounts) {
    const ShardId s = ShardOfAccount(a);
    bool found = false;
    for (uint32_t i = 0; i < distinct; ++i) {
      if (seen[i] == s) {
        found = true;
        break;
      }
    }
    if (!found) seen[distinct++] = s;
  }
  return distinct;
}

std::string CheckingKey(const std::string& account) {
  return account + "/checking";
}

std::string SavingsKey(const std::string& account) {
  return account + "/savings";
}

}  // namespace thunderbolt::txn
