#include "crypto/signature.h"

#include <algorithm>

namespace thunderbolt::crypto {

KeyPair KeyPair::Derive(uint64_t cluster_seed, ReplicaId id) {
  Sha256 h;
  h.Update("thunderbolt-key", 15);
  h.UpdateInt(cluster_seed);
  h.UpdateInt(id);
  return KeyPair(id, h.Finalize());
}

Signature KeyPair::Sign(const Hash256& digest) const {
  Sha256 h;
  h.Update("thunderbolt-sig", 15);
  h.Update(secret_.bytes.data(), secret_.bytes.size());
  h.Update(digest.bytes.data(), digest.bytes.size());
  return Signature{id_, h.Finalize()};
}

KeyDirectory KeyDirectory::Create(uint32_t n, uint64_t cluster_seed) {
  KeyDirectory dir;
  dir.keys_.reserve(n);
  for (ReplicaId id = 0; id < n; ++id) {
    dir.keys_.push_back(KeyPair::Derive(cluster_seed, id));
  }
  return dir;
}

bool KeyDirectory::Verify(const Hash256& digest, const Signature& sig) const {
  if (sig.signer >= keys_.size()) return false;
  Signature expected = keys_[sig.signer].Sign(digest);
  return expected.mac == sig.mac;
}

Status QuorumCert::Validate(const KeyDirectory& dir, uint32_t n) const {
  if (signatures.size() < QuorumSize(n)) {
    return Status::Corruption("quorum certificate below 2f+1 signatures");
  }
  std::vector<ReplicaId> signers;
  signers.reserve(signatures.size());
  for (const Signature& sig : signatures) {
    if (!dir.Verify(digest, sig)) {
      return Status::Corruption("invalid signature in quorum certificate");
    }
    signers.push_back(sig.signer);
  }
  std::sort(signers.begin(), signers.end());
  if (std::adjacent_find(signers.begin(), signers.end()) != signers.end()) {
    return Status::Corruption("duplicate signer in quorum certificate");
  }
  return Status::OK();
}

bool QuorumCert::Contains(ReplicaId id) const {
  for (const Signature& sig : signatures) {
    if (sig.signer == id) return true;
  }
  return false;
}

}  // namespace thunderbolt::crypto
