// Simulated authenticated signatures and quorum certificates.
//
// The paper deploys ed25519-signed, authenticated point-to-point channels.
// Byte-level forgery resistance is irrelevant to the reproduced claims, so
// this module substitutes a deterministic keyed-MAC scheme over SHA-256
// (DESIGN.md substitution #2): sign(sk, m) = SHA256(sk || m). Verification
// recomputes the MAC with the signer's secret, which the verifier looks up
// from a shared KeyDirectory — acceptable in a simulation where all
// replicas live in one process. What *is* preserved:
//   - signatures bind (signer, message); any mutation fails verification,
//   - quorum certificates require 2f + 1 distinct valid signers,
//   - verification cost can be charged to the virtual clock.
#ifndef THUNDERBOLT_CRYPTO_SIGNATURE_H_
#define THUNDERBOLT_CRYPTO_SIGNATURE_H_

#include <cstdint>
#include <vector>

#include "common/hash.h"
#include "common/status.h"
#include "common/types.h"

namespace thunderbolt::crypto {

/// A signature over a message digest by one replica.
struct Signature {
  ReplicaId signer = 0;
  Hash256 mac;

  friend bool operator==(const Signature& a, const Signature& b) {
    return a.signer == b.signer && a.mac == b.mac;
  }
};

/// Per-replica signing key.
class KeyPair {
 public:
  KeyPair() = default;
  KeyPair(ReplicaId id, Hash256 secret) : id_(id), secret_(secret) {}

  /// Derives the replica's key deterministically from a cluster seed.
  static KeyPair Derive(uint64_t cluster_seed, ReplicaId id);

  ReplicaId id() const { return id_; }
  const Hash256& secret() const { return secret_; }

  /// Signs a message digest.
  Signature Sign(const Hash256& digest) const;

 private:
  ReplicaId id_ = 0;
  Hash256 secret_{};
};

/// Directory of all replicas' keys; acts as the "public key infrastructure"
/// of the simulated cluster.
class KeyDirectory {
 public:
  KeyDirectory() = default;

  /// Creates keys for replicas 0..n-1 from the given seed.
  static KeyDirectory Create(uint32_t n, uint64_t cluster_seed);

  uint32_t size() const { return static_cast<uint32_t>(keys_.size()); }

  const KeyPair& key(ReplicaId id) const { return keys_.at(id); }

  /// Verifies that `sig` is a valid signature by `sig.signer` over `digest`.
  bool Verify(const Hash256& digest, const Signature& sig) const;

 private:
  std::vector<KeyPair> keys_;
};

/// A quorum certificate: >= 2f+1 signatures from distinct replicas over the
/// same digest.
struct QuorumCert {
  Hash256 digest;
  std::vector<Signature> signatures;

  /// Checks distinct signers, quorum size for `n` replicas, and each
  /// signature's validity against `dir`.
  Status Validate(const KeyDirectory& dir, uint32_t n) const;

  bool Contains(ReplicaId id) const;
};

}  // namespace thunderbolt::crypto

#endif  // THUNDERBOLT_CRYPTO_SIGNATURE_H_
