#include "contract/smallbank.h"

#include <memory>

#include "txn/transaction.h"

namespace thunderbolt::contract {

namespace {

using txn::CheckingKey;
using txn::SavingsKey;
using txn::Transaction;

Status RequireArgs(const Transaction& tx, size_t accounts, size_t params) {
  if (tx.accounts.size() < accounts) {
    return Status::InvalidArgument(tx.contract + ": missing account args");
  }
  if (tx.params.size() < params) {
    return Status::InvalidArgument(tx.contract + ": missing params");
  }
  return Status::OK();
}

/// GetBalance: returns checking + savings. Read-only.
class GetBalanceContract final : public Contract {
 public:
  Status Execute(const Transaction& tx, ContractContext& ctx) const override {
    THUNDERBOLT_RETURN_NOT_OK(RequireArgs(tx, 1, 0));
    THUNDERBOLT_ASSIGN_OR_RETURN(Value checking,
                                 ctx.Read(CheckingKey(tx.accounts[0])));
    THUNDERBOLT_ASSIGN_OR_RETURN(Value savings,
                                 ctx.Read(SavingsKey(tx.accounts[0])));
    ctx.EmitResult(checking + savings);
    return Status::OK();
  }
};

/// DepositChecking: checking += amount.
class DepositCheckingContract final : public Contract {
 public:
  Status Execute(const Transaction& tx, ContractContext& ctx) const override {
    THUNDERBOLT_RETURN_NOT_OK(RequireArgs(tx, 1, 1));
    const Key key = CheckingKey(tx.accounts[0]);
    THUNDERBOLT_ASSIGN_OR_RETURN(Value checking, ctx.Read(key));
    THUNDERBOLT_RETURN_NOT_OK(ctx.Write(key, checking + tx.params[0]));
    ctx.EmitResult(checking + tx.params[0]);
    return Status::OK();
  }
};

/// TransactSavings: savings += amount, but only when the result stays
/// non-negative (dynamic write set: no write on the failure path).
class TransactSavingsContract final : public Contract {
 public:
  Status Execute(const Transaction& tx, ContractContext& ctx) const override {
    THUNDERBOLT_RETURN_NOT_OK(RequireArgs(tx, 1, 1));
    const Key key = SavingsKey(tx.accounts[0]);
    THUNDERBOLT_ASSIGN_OR_RETURN(Value savings, ctx.Read(key));
    Value updated = savings + tx.params[0];
    if (updated < 0) {
      ctx.EmitResult(0);  // Declined; balance untouched.
      return Status::OK();
    }
    THUNDERBOLT_RETURN_NOT_OK(ctx.Write(key, updated));
    ctx.EmitResult(1);
    return Status::OK();
  }
};

/// WriteCheck: debit `amount` from checking; overdrafts incur a $1 penalty.
class WriteCheckContract final : public Contract {
 public:
  Status Execute(const Transaction& tx, ContractContext& ctx) const override {
    THUNDERBOLT_RETURN_NOT_OK(RequireArgs(tx, 1, 1));
    const Key checking_key = CheckingKey(tx.accounts[0]);
    THUNDERBOLT_ASSIGN_OR_RETURN(Value checking, ctx.Read(checking_key));
    THUNDERBOLT_ASSIGN_OR_RETURN(Value savings,
                                 ctx.Read(SavingsKey(tx.accounts[0])));
    Value amount = tx.params[0];
    Value debit = (checking + savings < amount) ? amount + 1 : amount;
    THUNDERBOLT_RETURN_NOT_OK(ctx.Write(checking_key, checking - debit));
    ctx.EmitResult(checking - debit);
    return Status::OK();
  }
};

/// SendPayment: move `amount` from a's checking to b's checking when funds
/// suffice; otherwise decline without writing (dynamic write set).
class SendPaymentContract final : public Contract {
 public:
  Status Execute(const Transaction& tx, ContractContext& ctx) const override {
    THUNDERBOLT_RETURN_NOT_OK(RequireArgs(tx, 2, 1));
    const Key src = CheckingKey(tx.accounts[0]);
    const Key dst = CheckingKey(tx.accounts[1]);
    Value amount = tx.params[0];
    THUNDERBOLT_ASSIGN_OR_RETURN(Value src_balance, ctx.Read(src));
    if (src_balance < amount) {
      ctx.EmitResult(0);  // Declined.
      return Status::OK();
    }
    THUNDERBOLT_ASSIGN_OR_RETURN(Value dst_balance, ctx.Read(dst));
    THUNDERBOLT_RETURN_NOT_OK(ctx.Write(src, src_balance - amount));
    THUNDERBOLT_RETURN_NOT_OK(ctx.Write(dst, dst_balance + amount));
    ctx.EmitResult(1);
    return Status::OK();
  }
};

/// Amalgamate: move all of a's funds into b's checking.
class AmalgamateContract final : public Contract {
 public:
  Status Execute(const Transaction& tx, ContractContext& ctx) const override {
    THUNDERBOLT_RETURN_NOT_OK(RequireArgs(tx, 2, 0));
    const Key a_checking = CheckingKey(tx.accounts[0]);
    const Key a_savings = SavingsKey(tx.accounts[0]);
    const Key b_checking = CheckingKey(tx.accounts[1]);
    THUNDERBOLT_ASSIGN_OR_RETURN(Value ac, ctx.Read(a_checking));
    THUNDERBOLT_ASSIGN_OR_RETURN(Value as, ctx.Read(a_savings));
    THUNDERBOLT_ASSIGN_OR_RETURN(Value bc, ctx.Read(b_checking));
    THUNDERBOLT_RETURN_NOT_OK(ctx.Write(a_checking, 0));
    THUNDERBOLT_RETURN_NOT_OK(ctx.Write(a_savings, 0));
    THUNDERBOLT_RETURN_NOT_OK(ctx.Write(b_checking, bc + ac + as));
    ctx.EmitResult(bc + ac + as);
    return Status::OK();
  }
};

}  // namespace

void RegisterSmallBank(Registry& registry) {
  registry.Register(kGetBalance, std::make_unique<GetBalanceContract>());
  registry.Register(kDepositChecking,
                    std::make_unique<DepositCheckingContract>());
  registry.Register(kTransactSavings,
                    std::make_unique<TransactSavingsContract>());
  registry.Register(kWriteCheck, std::make_unique<WriteCheckContract>());
  registry.Register(kSendPayment, std::make_unique<SendPaymentContract>());
  registry.Register(kAmalgamate, std::make_unique<AmalgamateContract>());
}

}  // namespace thunderbolt::contract
