// TBVM: the Thunderbolt bytecode virtual machine.
//
// A small register-based VM standing in for the EVM (DESIGN.md substitution
// #4). Programs are Turing-complete over the <Read, K> / <Write, K, V> data
// model: arithmetic, comparisons, conditional and unconditional jumps, and
// key construction from transaction account arguments. Crucially, which
// keys a program touches can depend on values it reads — read/write sets
// are only discoverable by executing, exactly the property Thunderbolt's
// CE is designed around.
//
// Machine model:
//   - 16 value registers r0..r15 (int64)
//   - 8 key registers k0..k7 (strings built by MakeKey)
//   - a string table of key suffixes baked into the program
//   - step budget to bound runaway programs (gas).
#ifndef THUNDERBOLT_CONTRACT_TBVM_H_
#define THUNDERBOLT_CONTRACT_TBVM_H_

#include <cstdint>
#include <string>
#include <vector>

#include "contract/contract.h"

namespace thunderbolt::contract {

enum class TbOp : uint8_t {
  kLoadImm,    // r[a] = imm
  kLoadParam,  // r[a] = tx.params[imm]
  kMov,        // r[a] = r[b]
  kAdd,        // r[a] = r[b] + r[c]
  kSub,        // r[a] = r[b] - r[c]
  kMul,        // r[a] = r[b] * r[c]
  kDiv,        // r[a] = r[b] / r[c]  (division by zero -> abort)
  kMakeKey,    // k[a] = tx.accounts[b] + "/" + suffixes[c]
  kMakeKeyReg, // k[a] = tx.accounts[r[b] % accounts] + "/" + suffixes[c]
  kRead,       // r[a] = Read(k[b])
  kWrite,      // Write(k[a], r[b])
  kJmp,        // pc = imm
  kJz,         // if (r[a] == 0) pc = imm
  kJlt,        // if (r[a] < r[b]) pc = imm
  kEmit,       // EmitResult(r[a])
  kHalt,       // stop, success
  kFail,       // stop, InvalidArgument (contract-declared failure)
};

struct TbInstr {
  TbOp op;
  uint8_t a = 0;
  uint8_t b = 0;
  uint8_t c = 0;
  int64_t imm = 0;
};

/// A compiled TBVM program.
struct TbProgram {
  std::vector<TbInstr> code;
  std::vector<std::string> suffixes;  // Key suffix string table.
  uint64_t step_budget = 100000;      // Gas limit.
};

/// Executes `program` for `tx` against `ctx`. Returns the propagated
/// context status on aborts, InvalidArgument on kFail or malformed
/// programs, and OutOfRange when the step budget is exhausted.
Status RunTbProgram(const TbProgram& program, const txn::Transaction& tx,
                    ContractContext& ctx);

/// A Contract that runs a fixed TBVM program.
class TbvmContract final : public Contract {
 public:
  explicit TbvmContract(TbProgram program) : program_(std::move(program)) {}

  Status Execute(const txn::Transaction& tx,
                 ContractContext& ctx) const override {
    return RunTbProgram(program_, tx, ctx);
  }

  const TbProgram& program() const { return program_; }

 private:
  TbProgram program_;
};

/// SmallBank compiled to TBVM bytecode. Registered under
/// "tbvm.send_payment" / "tbvm.get_balance" etc. — behaviourally identical
/// to the native contracts in smallbank.h, used by tests to prove engine
/// equivalence and by the quickstart example.
void RegisterTbvmSmallBank(Registry& registry);

/// Human-readable disassembly of one instruction / a whole program
/// (debugging aid; stable format covered by tests).
std::string Disassemble(const TbInstr& instr,
                        const std::vector<std::string>& suffixes);
std::string Disassemble(const TbProgram& program);

}  // namespace thunderbolt::contract

#endif  // THUNDERBOLT_CONTRACT_TBVM_H_
