#include "contract/kv.h"

#include <memory>

namespace thunderbolt::contract {

namespace {

using txn::Transaction;

Status RequireArgs(const Transaction& tx, size_t accounts, size_t params) {
  if (tx.accounts.size() < accounts) {
    return Status::InvalidArgument(tx.contract + ": missing account args");
  }
  if (tx.params.size() < params) {
    return Status::InvalidArgument(tx.contract + ": missing params");
  }
  return Status::OK();
}

class KvReadContract final : public Contract {
 public:
  Status Execute(const Transaction& tx, ContractContext& ctx) const override {
    THUNDERBOLT_RETURN_NOT_OK(RequireArgs(tx, 1, 0));
    THUNDERBOLT_ASSIGN_OR_RETURN(Value value,
                                 ctx.Read(KvValueKey(tx.accounts[0])));
    ctx.EmitResult(value);
    return Status::OK();
  }
};

class KvUpdateContract final : public Contract {
 public:
  Status Execute(const Transaction& tx, ContractContext& ctx) const override {
    THUNDERBOLT_RETURN_NOT_OK(RequireArgs(tx, 1, 1));
    THUNDERBOLT_RETURN_NOT_OK(
        ctx.Write(KvValueKey(tx.accounts[0]), tx.params[0]));
    ctx.EmitResult(tx.params[0]);
    return Status::OK();
  }
};

class KvRmwContract final : public Contract {
 public:
  Status Execute(const Transaction& tx, ContractContext& ctx) const override {
    THUNDERBOLT_RETURN_NOT_OK(RequireArgs(tx, 1, 1));
    const Key key = KvValueKey(tx.accounts[0]);
    THUNDERBOLT_ASSIGN_OR_RETURN(Value value, ctx.Read(key));
    Value updated = value + tx.params[0];
    THUNDERBOLT_RETURN_NOT_OK(ctx.Write(key, updated));
    ctx.EmitResult(updated);
    return Status::OK();
  }
};

class KvTransferContract final : public Contract {
 public:
  Status Execute(const Transaction& tx, ContractContext& ctx) const override {
    THUNDERBOLT_RETURN_NOT_OK(RequireArgs(tx, 2, 1));
    const Key src = KvValueKey(tx.accounts[0]);
    const Key dst = KvValueKey(tx.accounts[1]);
    if (src == dst) {
      // Self-transfer is a no-op; falling through would apply both writes
      // to one key and mint `amount` out of thin air.
      ctx.EmitResult(0);
      return Status::OK();
    }
    THUNDERBOLT_ASSIGN_OR_RETURN(Value src_value, ctx.Read(src));
    THUNDERBOLT_ASSIGN_OR_RETURN(Value dst_value, ctx.Read(dst));
    // Clamp at the source balance so records never go negative.
    Value amount = tx.params[0] < src_value ? tx.params[0] : src_value;
    if (amount < 0) amount = 0;
    THUNDERBOLT_RETURN_NOT_OK(ctx.Write(src, src_value - amount));
    THUNDERBOLT_RETURN_NOT_OK(ctx.Write(dst, dst_value + amount));
    ctx.EmitResult(amount);
    return Status::OK();
  }
};

}  // namespace

std::string KvValueKey(const std::string& record) {
  return record + "/value";
}

void RegisterKv(Registry& registry) {
  registry.Register(kKvRead, std::make_unique<KvReadContract>());
  registry.Register(kKvUpdate, std::make_unique<KvUpdateContract>());
  registry.Register(kKvRmw, std::make_unique<KvRmwContract>());
  registry.Register(kKvTransfer, std::make_unique<KvTransferContract>());
}

}  // namespace thunderbolt::contract
