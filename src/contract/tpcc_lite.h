// TPC-C-lite: NewOrder and Payment as TBVM contract programs.
//
// A reduced TPC-C over warehouse / district / customer / item entities.
// Unlike the native SmallBank contracts, both transactions run as TBVM
// bytecode whose control flow branches on values read at runtime, so their
// read/write sets are genuinely undiscoverable before execution:
//
//   tpcc.payment   accounts: [warehouse, district, customer]
//                  params:   [amount]
//     w/ytd += amount; d/ytd += amount; c/balance -= amount;
//     c/ytd_payment += amount; c/payment_cnt += 1. Customers with bad
//     credit (static c/credit != 0, 10% of customers) additionally bump
//     c/penalty — a write that exists only on one branch of a read.
//
//   tpcc.new_order accounts: [district, item_1 .. item_k]
//                  params:   [qty_1 .. qty_k]
//     oid = d/next_oid++ ; for each item: stock -= qty, restocking +91
//     first when stock < qty + 10 (TPC-C's threshold rule — the write
//     value depends on the read); d/order_ytd += sum(qty);
//     d/order_cnt += 1. Finally the program probes the "stock" key of
//     accounts[oid % k+1] (kMakeKeyReg): a read whose *key* is computed
//     from a value read earlier in the same transaction.
//
// All committed state changes are commutative increments/decrements (when
// restocking doesn't trigger), which the cross-engine agreement tests use:
// every serialization order yields the same final state.
#ifndef THUNDERBOLT_CONTRACT_TPCC_LITE_H_
#define THUNDERBOLT_CONTRACT_TPCC_LITE_H_

#include "contract/contract.h"
#include "contract/tbvm.h"

namespace thunderbolt::contract {

/// Registers tpcc.payment and tpcc.new_order into `registry`.
void RegisterTpccLite(Registry& registry);

/// Canonical contract names.
inline constexpr char kTpccPayment[] = "tpcc.payment";
inline constexpr char kTpccNewOrder[] = "tpcc.new_order";

/// Items per NewOrder (accounts: district + kTpccOrderItems items).
inline constexpr int kTpccOrderItems = 3;

/// Restock threshold margin and refill amount (TPC-C's stock rule).
inline constexpr storage::Value kTpccRestockMargin = 10;
inline constexpr storage::Value kTpccRestockAmount = 91;

/// The assembled programs (exposed for tests / disassembly).
TbProgram AssembleTpccPayment();
TbProgram AssembleTpccNewOrder(int items = kTpccOrderItems);

}  // namespace thunderbolt::contract

#endif  // THUNDERBOLT_CONTRACT_TPCC_LITE_H_
