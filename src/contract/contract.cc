#include "contract/contract.h"

#include "contract/kv.h"
#include "contract/smallbank.h"
#include "contract/tbvm.h"
#include "contract/tpcc_lite.h"

namespace thunderbolt::contract {

void Registry::Register(std::string name, std::unique_ptr<Contract> contract) {
  contracts_[std::move(name)] = std::move(contract);
}

const Contract* Registry::Lookup(const std::string& name) const {
  auto it = contracts_.find(name);
  return it == contracts_.end() ? nullptr : it->second.get();
}

Status Registry::Execute(const txn::Transaction& tx,
                         ContractContext& ctx) const {
  const Contract* c = Lookup(tx.contract);
  if (c == nullptr) {
    return Status::NotFound("unknown contract: " + tx.contract);
  }
  return c->Execute(tx, ctx);
}

std::shared_ptr<Registry> Registry::CreateDefault() {
  auto registry = std::make_shared<Registry>();
  RegisterSmallBank(*registry);
  RegisterTbvmSmallBank(*registry);
  RegisterKv(*registry);
  RegisterTpccLite(*registry);
  return registry;
}

}  // namespace thunderbolt::contract
