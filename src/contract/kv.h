// Generic key-value contracts (the YCSB-KV workload's operations).
//
// Each record is one account holding a single "<record>/value" key, so the
// shard of an operation is derived from its record argument exactly like
// SmallBank accounts. Three operations cover the YCSB core mixes:
//
//   kv.read      accounts: [r]      params: []       read value, emit it
//   kv.update    accounts: [r]      params: [v]      blind write of v
//   kv.rmw       accounts: [r]      params: [delta]  read, add delta, write
//   kv.transfer  accounts: [a, b]   params: [delta]  move min(delta, a)
//                                                    from a to b (no-op
//                                                    when a == b)
//
// kv.rmw is the contended read-modify-write that distinguishes engines
// under skew; its increments commute, which the cross-engine agreement
// tests rely on. kv.transfer is the two-record operation the sharded
// cluster uses for YCSB cross-shard traffic: it clamps at the source
// balance, so values never go negative and the total sum is conserved.
#ifndef THUNDERBOLT_CONTRACT_KV_H_
#define THUNDERBOLT_CONTRACT_KV_H_

#include <string>

#include "contract/contract.h"

namespace thunderbolt::contract {

/// Registers the kv.* contracts into `registry`.
void RegisterKv(Registry& registry);

/// Canonical contract names.
inline constexpr char kKvRead[] = "kv.read";
inline constexpr char kKvUpdate[] = "kv.update";
inline constexpr char kKvRmw[] = "kv.rmw";
inline constexpr char kKvTransfer[] = "kv.transfer";

/// The storage key holding `record`'s value.
std::string KvValueKey(const std::string& record);

}  // namespace thunderbolt::contract

#endif  // THUNDERBOLT_CONTRACT_KV_H_
