#include "contract/tpcc_lite.h"

#include <memory>

namespace thunderbolt::contract {

namespace {

// Register conventions shared by both assemblers:
//   r0 amount / order id      r1 read scratch     r2 write scratch
//   r3 constant 1             r4 running total    r5 result / qty
//   r6 stock                  r7 threshold        r8 restock refill
//   r9 restock margin
// Key registers are allocated in program order.

/// Appends "k<key_reg> = accounts[acct]/<suffix>; r2 = [k] + r<delta_reg>;
/// [k] = r2" — the commutative increment every YTD/counter update uses.
void EmitIncrement(TbProgram& p, uint8_t key_reg, uint8_t acct,
                   uint8_t suffix, uint8_t delta_reg) {
  p.code.push_back({TbOp::kMakeKey, key_reg, acct, suffix, 0});
  p.code.push_back({TbOp::kRead, 1, key_reg, 0, 0});
  p.code.push_back({TbOp::kAdd, 2, 1, delta_reg, 0});
  p.code.push_back({TbOp::kWrite, key_reg, 2, 0, 0});
}

}  // namespace

TbProgram AssembleTpccPayment() {
  TbProgram p;
  p.suffixes = {"ytd", "balance", "ytd_payment", "payment_cnt", "credit",
                "penalty"};
  auto& c = p.code;
  c.push_back({TbOp::kLoadParam, 0, 0, 0, 0});  // r0 = amount
  c.push_back({TbOp::kLoadImm, 3, 0, 0, 1});    // r3 = 1
  size_t decline_jump = c.size();
  c.push_back({TbOp::kJlt, 0, 3, 0, 0});        // amount < 1 -> DECLINE
  EmitIncrement(p, 0, /*acct=*/0, /*suffix=*/0, /*delta=*/0);  // w/ytd
  EmitIncrement(p, 1, /*acct=*/1, /*suffix=*/0, /*delta=*/0);  // d/ytd
  // c/balance -= amount; keep the new balance in r5 for the emit.
  c.push_back({TbOp::kMakeKey, 2, 2, 1, 0});
  c.push_back({TbOp::kRead, 1, 2, 0, 0});
  c.push_back({TbOp::kSub, 2, 1, 0, 0});
  c.push_back({TbOp::kWrite, 2, 2, 0, 0});
  c.push_back({TbOp::kMov, 5, 2, 0, 0});
  EmitIncrement(p, 3, /*acct=*/2, /*suffix=*/2, /*delta=*/0);  // c/ytd_payment
  EmitIncrement(p, 4, /*acct=*/2, /*suffix=*/3, /*delta=*/3);  // c/payment_cnt
  // Bad-credit branch: the penalty write only exists when c/credit != 0.
  c.push_back({TbOp::kMakeKey, 5, 2, 4, 0});
  c.push_back({TbOp::kRead, 1, 5, 0, 0});
  size_t emit_jump = c.size();
  c.push_back({TbOp::kJz, 1, 0, 0, 0});         // good credit -> EMIT
  EmitIncrement(p, 6, /*acct=*/2, /*suffix=*/5, /*delta=*/3);  // c/penalty
  c[emit_jump].imm = static_cast<int64_t>(c.size());  // EMIT:
  c.push_back({TbOp::kEmit, 5, 0, 0, 0});
  c.push_back({TbOp::kHalt, 0, 0, 0, 0});
  c[decline_jump].imm = static_cast<int64_t>(c.size());  // DECLINE:
  c.push_back({TbOp::kLoadImm, 5, 0, 0, 0});
  c.push_back({TbOp::kEmit, 5, 0, 0, 0});
  c.push_back({TbOp::kHalt, 0, 0, 0, 0});
  return p;
}

TbProgram AssembleTpccNewOrder(int items) {
  TbProgram p;
  p.suffixes = {"next_oid", "stock", "order_ytd", "order_cnt"};
  auto& c = p.code;
  c.push_back({TbOp::kLoadImm, 3, 0, 0, 1});
  c.push_back({TbOp::kLoadImm, 8, 0, 0, kTpccRestockAmount});
  c.push_back({TbOp::kLoadImm, 9, 0, 0, kTpccRestockMargin});
  c.push_back({TbOp::kLoadImm, 4, 0, 0, 0});    // r4 = total
  // oid = d/next_oid++ (r0 carries oid to the dynamic probe below).
  c.push_back({TbOp::kMakeKey, 0, 0, 0, 0});
  c.push_back({TbOp::kRead, 0, 0, 0, 0});
  c.push_back({TbOp::kAdd, 2, 0, 3, 0});
  c.push_back({TbOp::kWrite, 0, 2, 0, 0});
  for (int j = 1; j <= items; ++j) {
    // stock_j -= qty_j with TPC-C's refill-before-depletion rule.
    c.push_back({TbOp::kLoadParam, 5, 0, 0, j - 1});
    c.push_back({TbOp::kMakeKey, 1, static_cast<uint8_t>(j), 1, 0});
    c.push_back({TbOp::kRead, 6, 1, 0, 0});
    c.push_back({TbOp::kAdd, 7, 5, 9, 0});      // r7 = qty + margin
    size_t restock_jump = c.size();
    c.push_back({TbOp::kJlt, 6, 7, 0, 0});      // stock low -> RESTOCK
    size_t deduct_jump = c.size();
    c.push_back({TbOp::kJmp, 0, 0, 0, 0});      // -> DEDUCT
    c[restock_jump].imm = static_cast<int64_t>(c.size());  // RESTOCK:
    c.push_back({TbOp::kAdd, 6, 6, 8});
    c[deduct_jump].imm = static_cast<int64_t>(c.size());   // DEDUCT:
    c.push_back({TbOp::kSub, 6, 6, 5});
    c.push_back({TbOp::kWrite, 1, 6, 0, 0});
    c.push_back({TbOp::kAdd, 4, 4, 5, 0});      // total += qty
  }
  EmitIncrement(p, 2, /*acct=*/0, /*suffix=*/2, /*delta=*/4);  // d/order_ytd
  EmitIncrement(p, 3, /*acct=*/0, /*suffix=*/3, /*delta=*/3);  // d/order_cnt
  // Dynamic probe: read the stock key of accounts[oid % (items+1)] — the
  // key only exists once the order id has been read, so no engine can
  // predeclare this access.
  c.push_back({TbOp::kMakeKeyReg, 4, 0, 1, 0});
  c.push_back({TbOp::kRead, 1, 4, 0, 0});
  c.push_back({TbOp::kEmit, 4, 0, 0, 0});       // order total
  c.push_back({TbOp::kHalt, 0, 0, 0, 0});
  return p;
}

void RegisterTpccLite(Registry& registry) {
  registry.Register(kTpccPayment,
                    std::make_unique<TbvmContract>(AssembleTpccPayment()));
  registry.Register(kTpccNewOrder,
                    std::make_unique<TbvmContract>(AssembleTpccNewOrder()));
}

}  // namespace thunderbolt::contract
