// SmallBank benchmark contracts (H-Store SmallBank suite).
//
// All six transaction types are implemented; the paper's evaluation mixes
// SendPayment (read-modify-write on two accounts) and GetBalance
// (read-only) under a Zipfian account distribution. Each customer holds a
// checking and a savings balance (keys "<acct>/checking", "<acct>/savings").
//
// Contract names (resolved through contract::Registry):
//   smallbank.get_balance       accounts: [a]         params: []
//   smallbank.deposit_checking  accounts: [a]         params: [amount]
//   smallbank.transact_savings  accounts: [a]         params: [amount]
//   smallbank.write_check       accounts: [a]         params: [amount]
//   smallbank.send_payment      accounts: [a, b]      params: [amount]
//   smallbank.amalgamate        accounts: [a, b]      params: []
//
// Access patterns are *dynamic*: WriteCheck's writes depend on the balances
// it reads, and SendPayment only debits when funds suffice — so read/write
// sets genuinely cannot be predeclared.
#ifndef THUNDERBOLT_CONTRACT_SMALLBANK_H_
#define THUNDERBOLT_CONTRACT_SMALLBANK_H_

#include <string>

#include "contract/contract.h"

namespace thunderbolt::contract {

/// Registers all six SmallBank contracts into `registry`.
void RegisterSmallBank(Registry& registry);

/// Canonical contract names.
inline constexpr char kGetBalance[] = "smallbank.get_balance";
inline constexpr char kDepositChecking[] = "smallbank.deposit_checking";
inline constexpr char kTransactSavings[] = "smallbank.transact_savings";
inline constexpr char kWriteCheck[] = "smallbank.write_check";
inline constexpr char kSendPayment[] = "smallbank.send_payment";
inline constexpr char kAmalgamate[] = "smallbank.amalgamate";

}  // namespace thunderbolt::contract

#endif  // THUNDERBOLT_CONTRACT_SMALLBANK_H_
