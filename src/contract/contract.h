// Smart-contract runtime interfaces.
//
// Contracts interact with state exclusively through a ContractContext that
// serves <Read, K> and <Write, K, V> operations (paper section 3.1). The
// same contract code runs unchanged under every execution engine in this
// repository — the CE's concurrency controller, the OCC and 2PL baselines,
// serial post-consensus execution, and validation re-execution — each of
// which supplies its own ContractContext implementation. This is precisely
// why read/write sets cannot be known before execution: contract control
// flow may branch on values read at runtime.
#ifndef THUNDERBOLT_CONTRACT_CONTRACT_H_
#define THUNDERBOLT_CONTRACT_CONTRACT_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "txn/transaction.h"

namespace thunderbolt::contract {

using storage::Key;
using storage::Value;

/// The interface contract code uses to access state. Read/Write may fail
/// with Status::Aborted when the underlying concurrency control decides the
/// transaction must restart; contract code must propagate that status.
class ContractContext {
 public:
  virtual ~ContractContext() = default;

  /// Reads the current value of `key` (0 for absent keys, matching fresh
  /// SmallBank accounts).
  virtual Result<Value> Read(const Key& key) = 0;

  /// Writes `value` to `key`.
  virtual Status Write(const Key& key, Value value) = 0;

  /// Records a return value for the client (e.g. GetBalance's result).
  virtual void EmitResult(Value value) { (void)value; }
};

/// A deterministic, idempotent contract function.
class Contract {
 public:
  virtual ~Contract() = default;

  /// Executes the function for `tx` against `ctx`. Must be deterministic
  /// given the sequence of values returned by ctx.Read().
  virtual Status Execute(const txn::Transaction& tx,
                         ContractContext& ctx) const = 0;
};

/// Name -> contract lookup shared by all replicas. Registration happens at
/// startup; lookup is read-only afterwards.
class Registry {
 public:
  /// Registers `contract` under `name`. Overwrites any existing entry.
  void Register(std::string name, std::unique_ptr<Contract> contract);

  /// Returns the contract or nullptr.
  const Contract* Lookup(const std::string& name) const;

  /// Executes the transaction's contract against `ctx`. Returns NotFound
  /// for unknown contract names.
  Status Execute(const txn::Transaction& tx, ContractContext& ctx) const;

  /// A registry preloaded with the SmallBank suite and TBVM runner.
  static std::shared_ptr<Registry> CreateDefault();

 private:
  std::map<std::string, std::unique_ptr<Contract>> contracts_;
};

}  // namespace thunderbolt::contract

#endif  // THUNDERBOLT_CONTRACT_CONTRACT_H_
