#include "contract/tbvm.h"

#include <memory>

namespace thunderbolt::contract {

namespace {
constexpr int kNumValueRegs = 16;
constexpr int kNumKeyRegs = 8;
}  // namespace

Status RunTbProgram(const TbProgram& program, const txn::Transaction& tx,
                    ContractContext& ctx) {
  int64_t r[kNumValueRegs] = {0};
  std::string k[kNumKeyRegs];

  const auto& code = program.code;
  uint64_t steps = 0;
  size_t pc = 0;

  auto bad = [](const char* what) {
    return Status::InvalidArgument(std::string("tbvm: ") + what);
  };

  while (pc < code.size()) {
    if (++steps > program.step_budget) {
      return Status::OutOfRange("tbvm: step budget exhausted");
    }
    const TbInstr& in = code[pc];
    if (in.a >= kNumValueRegs && in.op != TbOp::kMakeKey &&
        in.op != TbOp::kMakeKeyReg && in.op != TbOp::kWrite) {
      return bad("register index out of range");
    }
    switch (in.op) {
      case TbOp::kLoadImm:
        r[in.a] = in.imm;
        ++pc;
        break;
      case TbOp::kLoadParam: {
        size_t idx = static_cast<size_t>(in.imm);
        if (idx >= tx.params.size()) return bad("param index out of range");
        r[in.a] = tx.params[idx];
        ++pc;
        break;
      }
      case TbOp::kMov:
        r[in.a] = r[in.b];
        ++pc;
        break;
      case TbOp::kAdd:
        r[in.a] = r[in.b] + r[in.c];
        ++pc;
        break;
      case TbOp::kSub:
        r[in.a] = r[in.b] - r[in.c];
        ++pc;
        break;
      case TbOp::kMul:
        r[in.a] = r[in.b] * r[in.c];
        ++pc;
        break;
      case TbOp::kDiv:
        if (r[in.c] == 0) return bad("division by zero");
        r[in.a] = r[in.b] / r[in.c];
        ++pc;
        break;
      case TbOp::kMakeKey: {
        if (in.a >= kNumKeyRegs) return bad("key register out of range");
        if (in.b >= tx.accounts.size()) return bad("account index");
        if (in.c >= program.suffixes.size()) return bad("suffix index");
        k[in.a] = tx.accounts[in.b] + "/" + program.suffixes[in.c];
        ++pc;
        break;
      }
      case TbOp::kMakeKeyReg: {
        if (in.a >= kNumKeyRegs) return bad("key register out of range");
        if (in.b >= kNumValueRegs) return bad("register index");
        if (tx.accounts.empty()) return bad("no accounts");
        if (in.c >= program.suffixes.size()) return bad("suffix index");
        size_t acct = static_cast<size_t>(
            static_cast<uint64_t>(r[in.b]) % tx.accounts.size());
        k[in.a] = tx.accounts[acct] + "/" + program.suffixes[in.c];
        ++pc;
        break;
      }
      case TbOp::kRead: {
        if (in.b >= kNumKeyRegs || k[in.b].empty()) {
          return bad("read from unset key register");
        }
        THUNDERBOLT_ASSIGN_OR_RETURN(Value v, ctx.Read(k[in.b]));
        r[in.a] = v;
        ++pc;
        break;
      }
      case TbOp::kWrite: {
        if (in.a >= kNumKeyRegs || k[in.a].empty()) {
          return bad("write to unset key register");
        }
        if (in.b >= kNumValueRegs) return bad("register index");
        THUNDERBOLT_RETURN_NOT_OK(ctx.Write(k[in.a], r[in.b]));
        ++pc;
        break;
      }
      case TbOp::kJmp: {
        size_t target = static_cast<size_t>(in.imm);
        if (target > code.size()) return bad("jump target out of range");
        pc = target;
        break;
      }
      case TbOp::kJz: {
        size_t target = static_cast<size_t>(in.imm);
        if (target > code.size()) return bad("jump target out of range");
        pc = (r[in.a] == 0) ? target : pc + 1;
        break;
      }
      case TbOp::kJlt: {
        size_t target = static_cast<size_t>(in.imm);
        if (target > code.size()) return bad("jump target out of range");
        pc = (r[in.a] < r[in.b]) ? target : pc + 1;
        break;
      }
      case TbOp::kEmit:
        ctx.EmitResult(r[in.a]);
        ++pc;
        break;
      case TbOp::kHalt:
        return Status::OK();
      case TbOp::kFail:
        return Status::InvalidArgument("tbvm: contract declared failure");
    }
  }
  return Status::OK();  // Fell off the end: treated as halt.
}

namespace {

// --- SmallBank compiled to TBVM -------------------------------------------
// Register conventions used by the assembler below:
//   r0..r5 scratch, k0..k2 keys. Suffix table: 0="checking", 1="savings".

TbProgram AssembleGetBalance() {
  TbProgram p;
  p.suffixes = {"checking", "savings"};
  p.code = {
      {TbOp::kMakeKey, 0, 0, 0},   // k0 = a/checking
      {TbOp::kMakeKey, 1, 0, 1},   // k1 = a/savings
      {TbOp::kRead, 0, 0, 0},      // r0 = [k0]
      {TbOp::kRead, 1, 1, 0},      // r1 = [k1]
      {TbOp::kAdd, 2, 0, 1},       // r2 = r0 + r1
      {TbOp::kEmit, 2, 0, 0},
      {TbOp::kHalt, 0, 0, 0},
  };
  return p;
}

TbProgram AssembleDepositChecking() {
  TbProgram p;
  p.suffixes = {"checking"};
  p.code = {
      {TbOp::kMakeKey, 0, 0, 0},         // k0 = a/checking
      {TbOp::kLoadParam, 0, 0, 0, 0},    // r0 = amount
      {TbOp::kRead, 1, 0, 0},            // r1 = [k0]
      {TbOp::kAdd, 2, 1, 0},             // r2 = r1 + r0
      {TbOp::kWrite, 0, 2, 0},           // [k0] = r2
      {TbOp::kEmit, 2, 0, 0},
      {TbOp::kHalt, 0, 0, 0},
  };
  return p;
}

TbProgram AssembleTransactSavings() {
  TbProgram p;
  p.suffixes = {"savings"};
  // if (savings + amount < 0) { emit 0; halt } else write; emit 1
  p.code = {
      {TbOp::kMakeKey, 0, 0, 0},        // k0 = a/savings
      {TbOp::kLoadParam, 0, 0, 0, 0},   // r0 = amount
      {TbOp::kRead, 1, 0, 0},           // r1 = [k0]
      {TbOp::kAdd, 2, 1, 0},            // r2 = r1 + r0
      {TbOp::kLoadImm, 3, 0, 0, 0},     // r3 = 0
      {TbOp::kJlt, 2, 3, 0, 9},         // if r2 < 0 goto 9
      {TbOp::kWrite, 0, 2, 0},          // [k0] = r2
      {TbOp::kLoadImm, 4, 0, 0, 1},     // r4 = 1
      {TbOp::kJmp, 0, 0, 0, 10},
      {TbOp::kLoadImm, 4, 0, 0, 0},     // r4 = 0 (declined)
      {TbOp::kEmit, 4, 0, 0},
      {TbOp::kHalt, 0, 0, 0},
  };
  return p;
}

TbProgram AssembleWriteCheck() {
  TbProgram p;
  p.suffixes = {"checking", "savings"};
  // total = checking + savings; debit = total < amount ? amount+1 : amount;
  // checking -= debit
  p.code = {
      {TbOp::kMakeKey, 0, 0, 0},        // k0 = a/checking
      {TbOp::kMakeKey, 1, 0, 1},        // k1 = a/savings
      {TbOp::kLoadParam, 0, 0, 0, 0},   // r0 = amount
      {TbOp::kRead, 1, 0, 0},           // r1 = checking
      {TbOp::kRead, 2, 1, 0},           // r2 = savings
      {TbOp::kAdd, 3, 1, 2},            // r3 = total
      {TbOp::kMov, 4, 0, 0},            // r4 = debit = amount
      {TbOp::kJlt, 3, 0, 0, 9},         // if total < amount goto 9
      {TbOp::kJmp, 0, 0, 0, 11},
      {TbOp::kLoadImm, 5, 0, 0, 1},     // r5 = 1
      {TbOp::kAdd, 4, 0, 5},            // r4 = amount + 1
      {TbOp::kSub, 6, 1, 4},            // r6 = checking - debit
      {TbOp::kWrite, 0, 6, 0},          // [k0] = r6
      {TbOp::kEmit, 6, 0, 0},
      {TbOp::kHalt, 0, 0, 0},
  };
  return p;
}

TbProgram AssembleSendPayment() {
  TbProgram p;
  p.suffixes = {"checking"};
  // if (src < amount) { emit 0; halt } else transfer; emit 1
  p.code = {
      {TbOp::kMakeKey, 0, 0, 0},        // k0 = a/checking
      {TbOp::kMakeKey, 1, 1, 0},        // k1 = b/checking
      {TbOp::kLoadParam, 0, 0, 0, 0},   // r0 = amount
      {TbOp::kRead, 1, 0, 0},           // r1 = src balance
      {TbOp::kJlt, 1, 0, 0, 12},        // if src < amount goto 12
      {TbOp::kRead, 2, 1, 0},           // r2 = dst balance
      {TbOp::kSub, 3, 1, 0},            // r3 = src - amount
      {TbOp::kAdd, 4, 2, 0},            // r4 = dst + amount
      {TbOp::kWrite, 0, 3, 0},          // [k0] = r3
      {TbOp::kWrite, 1, 4, 0},          // [k1] = r4
      {TbOp::kLoadImm, 5, 0, 0, 1},     // r5 = 1
      {TbOp::kJmp, 0, 0, 0, 13},
      {TbOp::kLoadImm, 5, 0, 0, 0},     // r5 = 0 (declined)
      {TbOp::kEmit, 5, 0, 0},
      {TbOp::kHalt, 0, 0, 0},
  };
  return p;
}

TbProgram AssembleAmalgamate() {
  TbProgram p;
  p.suffixes = {"checking", "savings"};
  p.code = {
      {TbOp::kMakeKey, 0, 0, 0},   // k0 = a/checking
      {TbOp::kMakeKey, 1, 0, 1},   // k1 = a/savings
      {TbOp::kMakeKey, 2, 1, 0},   // k2 = b/checking
      {TbOp::kRead, 0, 0, 0},      // r0 = a checking
      {TbOp::kRead, 1, 1, 0},      // r1 = a savings
      {TbOp::kRead, 2, 2, 0},      // r2 = b checking
      {TbOp::kLoadImm, 3, 0, 0, 0},
      {TbOp::kWrite, 0, 3, 0},     // a/checking = 0
      {TbOp::kWrite, 1, 3, 0},     // a/savings = 0
      {TbOp::kAdd, 4, 0, 1},       // r4 = a total
      {TbOp::kAdd, 5, 2, 4},       // r5 = b + a total
      {TbOp::kWrite, 2, 5, 0},     // b/checking = r5
      {TbOp::kEmit, 5, 0, 0},
      {TbOp::kHalt, 0, 0, 0},
  };
  return p;
}

}  // namespace

std::string Disassemble(const TbInstr& in,
                        const std::vector<std::string>& suffixes) {
  auto reg = [](uint8_t r) { return "r" + std::to_string(r); };
  auto key = [](uint8_t k) { return "k" + std::to_string(k); };
  auto suffix = [&](uint8_t s) {
    return s < suffixes.size() ? "\"" + suffixes[s] + "\""
                               : "<suffix " + std::to_string(s) + ">";
  };
  switch (in.op) {
    case TbOp::kLoadImm:
      return "loadimm " + reg(in.a) + ", " + std::to_string(in.imm);
    case TbOp::kLoadParam:
      return "loadparam " + reg(in.a) + ", param[" + std::to_string(in.imm) +
             "]";
    case TbOp::kMov:
      return "mov " + reg(in.a) + ", " + reg(in.b);
    case TbOp::kAdd:
      return "add " + reg(in.a) + ", " + reg(in.b) + ", " + reg(in.c);
    case TbOp::kSub:
      return "sub " + reg(in.a) + ", " + reg(in.b) + ", " + reg(in.c);
    case TbOp::kMul:
      return "mul " + reg(in.a) + ", " + reg(in.b) + ", " + reg(in.c);
    case TbOp::kDiv:
      return "div " + reg(in.a) + ", " + reg(in.b) + ", " + reg(in.c);
    case TbOp::kMakeKey:
      return "makekey " + key(in.a) + ", account[" + std::to_string(in.b) +
             "], " + suffix(in.c);
    case TbOp::kMakeKeyReg:
      return "makekeyr " + key(in.a) + ", account[" + reg(in.b) + "], " +
             suffix(in.c);
    case TbOp::kRead:
      return "read " + reg(in.a) + ", [" + key(in.b) + "]";
    case TbOp::kWrite:
      return "write [" + key(in.a) + "], " + reg(in.b);
    case TbOp::kJmp:
      return "jmp " + std::to_string(in.imm);
    case TbOp::kJz:
      return "jz " + reg(in.a) + ", " + std::to_string(in.imm);
    case TbOp::kJlt:
      return "jlt " + reg(in.a) + ", " + reg(in.b) + ", " +
             std::to_string(in.imm);
    case TbOp::kEmit:
      return "emit " + reg(in.a);
    case TbOp::kHalt:
      return "halt";
    case TbOp::kFail:
      return "fail";
  }
  return "<bad op>";
}

std::string Disassemble(const TbProgram& program) {
  std::string out;
  for (size_t pc = 0; pc < program.code.size(); ++pc) {
    out += std::to_string(pc) + ": " +
           Disassemble(program.code[pc], program.suffixes) + "\n";
  }
  return out;
}

void RegisterTbvmSmallBank(Registry& registry) {
  registry.Register("tbvm.get_balance",
                    std::make_unique<TbvmContract>(AssembleGetBalance()));
  registry.Register("tbvm.deposit_checking",
                    std::make_unique<TbvmContract>(AssembleDepositChecking()));
  registry.Register("tbvm.transact_savings",
                    std::make_unique<TbvmContract>(AssembleTransactSavings()));
  registry.Register("tbvm.write_check",
                    std::make_unique<TbvmContract>(AssembleWriteCheck()));
  registry.Register("tbvm.send_payment",
                    std::make_unique<TbvmContract>(AssembleSendPayment()));
  registry.Register("tbvm.amalgamate",
                    std::make_unique<TbvmContract>(AssembleAmalgamate()));
}

}  // namespace thunderbolt::contract
