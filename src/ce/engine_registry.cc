#include "ce/engine_registry.h"

#include "ce/concurrency_controller.h"

namespace thunderbolt::ce {

void EngineRegistry::Register(std::string name, Factory factory) {
  factories_[std::move(name)] = std::move(factory);
}

std::unique_ptr<BatchEngine> EngineRegistry::Create(
    const std::string& name, const storage::ReadView* base,
    uint32_t batch_size) const {
  auto it = factories_.find(name);
  return it == factories_.end() ? nullptr : it->second(base, batch_size);
}

bool EngineRegistry::Contains(const std::string& name) const {
  return factories_.find(name) != factories_.end();
}

std::vector<std::string> EngineRegistry::Names() const {
  std::vector<std::string> names;
  names.reserve(factories_.size());
  for (const auto& [name, factory] : factories_) names.push_back(name);
  return names;
}

EngineRegistry& EngineRegistry::Global() {
  // "ce" registers here (not via a static initializer, which static
  // libraries would dead-strip); the baselines register themselves via
  // baselines::RegisterBaselineEngines().
  static EngineRegistry* registry = [] {
    auto* r = new EngineRegistry();
    r->Register("ce", [](const storage::ReadView* base, uint32_t batch_size) {
      return std::unique_ptr<BatchEngine>(
          new ConcurrencyController(base, batch_size));
    });
    return r;
  }();
  return *registry;
}

}  // namespace thunderbolt::ce
