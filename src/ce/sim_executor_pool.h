// Simulated executor pool.
//
// Drives a batch of transactions through any BatchEngine with E virtual
// executors on a virtual clock (DESIGN.md section 2.1): the *decisions* —
// dependency edges, lock conflicts, validation failures, aborts — are made
// by the real engine algorithms; only the passage of time is simulated.
// This reproduces the paper's executor-count sweeps (Figures 11/12) on a
// single physical core, fully deterministically. For real wall-clock
// parallelism see ThreadExecutorPool (thread_executor_pool.h); both
// implement the common ExecutorPool interface (executor_pool.h).
//
// Interleaving model. Contracts are ordinary C++ functions that call
// ContractContext synchronously, so they cannot be suspended mid-body.
// The pool instead advances a transaction one *operation* at a time by
// deterministic re-execution: each step re-runs the contract from the top
// with a context that replays the previously observed operation results
// from a log and performs exactly one new engine operation before pausing.
// Because contracts are deterministic given their read values, the replay
// is exact; engine state is only touched by the single new operation, at
// the correct virtual time. SmallBank transactions have ~4 operations, so
// the quadratic replay cost is negligible.
//
// Timing model per operation:
//   start   = max(executor_free, engine_serial_free)
//   engine_serial_free = start + costs.engine_serial_cost   (shared latch /
//                        lock-manager / central-verifier critical section)
//   executor_free      = start + costs.engine_serial_cost + costs.op_cost
// Restarted transactions pay costs.restart_cost before re-running.
#ifndef THUNDERBOLT_CE_SIM_EXECUTOR_POOL_H_
#define THUNDERBOLT_CE_SIM_EXECUTOR_POOL_H_

#include <cstdint>
#include <string>
#include <vector>

#include "ce/batch_engine.h"
#include "ce/executor_pool.h"
#include "common/histogram.h"
#include "common/result.h"
#include "common/types.h"
#include "contract/contract.h"
#include "txn/transaction.h"

namespace thunderbolt::ce {

class SimExecutorPool final : public ExecutorPool {
 public:
  SimExecutorPool(uint32_t num_executors, ExecutionCostModel costs)
      : num_executors_(num_executors), costs_(costs) {}

  /// Executes `batch` through `engine` using the contracts in `registry`.
  /// `start_time` seeds the virtual clock (used when the pool runs inside
  /// the cluster simulation). Returns Internal on livelock: a transaction
  /// restarted more than kMaxRestartsPerTxn times the batch size (per-slot
  /// bound over *consecutive* restarts), or total restarts above
  /// kMaxRestartFactor times the batch size (global backstop).
  Result<BatchExecutionResult> Run(BatchEngine& engine,
                                   const contract::Registry& registry,
                                   const std::vector<txn::Transaction>& batch,
                                   SimTime start_time = 0) override;

  uint32_t num_executors() const override { return num_executors_; }
  std::string name() const override { return "sim"; }
  const ExecutionCostModel& costs() const { return costs_; }

 private:
  uint32_t num_executors_;
  ExecutionCostModel costs_;
};

}  // namespace thunderbolt::ce

#endif  // THUNDERBOLT_CE_SIM_EXECUTOR_POOL_H_
