// Simulated executor pool.
//
// Drives a batch of transactions through any BatchEngine with E virtual
// executors on a virtual clock (DESIGN.md section 2.1): the *decisions* —
// dependency edges, lock conflicts, validation failures, aborts — are made
// by the real engine algorithms; only the passage of time is simulated.
// This reproduces the paper's executor-count sweeps (Figures 11/12) on a
// single physical core.
//
// Interleaving model. Contracts are ordinary C++ functions that call
// ContractContext synchronously, so they cannot be suspended mid-body.
// The pool instead advances a transaction one *operation* at a time by
// deterministic re-execution: each step re-runs the contract from the top
// with a context that replays the previously observed operation results
// from a log and performs exactly one new engine operation before pausing.
// Because contracts are deterministic given their read values, the replay
// is exact; engine state is only touched by the single new operation, at
// the correct virtual time. SmallBank transactions have ~4 operations, so
// the quadratic replay cost is negligible.
//
// Timing model per operation:
//   start   = max(executor_free, engine_serial_free)
//   engine_serial_free = start + costs.engine_serial_cost   (shared latch /
//                        lock-manager / central-verifier critical section)
//   executor_free      = start + costs.engine_serial_cost + costs.op_cost
// Restarted transactions pay costs.restart_cost before re-running.
#ifndef THUNDERBOLT_CE_SIM_EXECUTOR_POOL_H_
#define THUNDERBOLT_CE_SIM_EXECUTOR_POOL_H_

#include <cstdint>
#include <vector>

#include "ce/batch_engine.h"
#include "common/histogram.h"
#include "common/result.h"
#include "common/types.h"
#include "contract/contract.h"
#include "txn/transaction.h"

namespace thunderbolt::ce {

/// Virtual-time costs of the execution pipeline. Defaults are calibrated so
/// a single executor sustains roughly the per-core SmallBank rate of the
/// paper's testbed; see bench/README notes in EXPERIMENTS.md.
struct ExecutionCostModel {
  /// Contract logic + storage access per operation (executor-local).
  SimTime op_cost = Micros(18);
  /// Serialized engine critical section per operation (CC latch, lock
  /// manager, or OCC verifier — the shared resource that caps scaling).
  SimTime engine_serial_cost = Micros(2);
  /// Charged to an executor when it begins (or restarts) a transaction.
  SimTime start_cost = Micros(4);
  /// Base penalty before re-running an aborted transaction. Consecutive
  /// restarts of the same transaction back off exponentially with a
  /// per-slot deterministic jitter, breaking the symmetric abort ping-pong
  /// two crossing read-modify-writes would otherwise fall into.
  SimTime restart_cost = Micros(10);
  /// Cap exponent for the restart backoff (max factor 2^cap).
  uint32_t restart_backoff_cap = 6;
};

/// Outcome of executing one batch.
struct BatchExecutionResult {
  std::vector<TxnRecord> records;      // Indexed by slot.
  std::vector<TxnSlot> order;          // Serialization order.
  storage::WriteBatch final_writes;    // To apply to storage.
  uint64_t total_aborts = 0;           // Re-executions across the batch.
  SimTime start_time = 0;
  SimTime duration = 0;                // Virtual makespan of the batch.
  Histogram commit_latency_us;         // Per-txn commit latency (virtual).
};

class SimExecutorPool {
 public:
  SimExecutorPool(uint32_t num_executors, ExecutionCostModel costs)
      : num_executors_(num_executors), costs_(costs) {}

  /// Executes `batch` through `engine` using the contracts in `registry`.
  /// `start_time` seeds the virtual clock (used when the pool runs inside
  /// the cluster simulation). Returns Internal on livelock (a transaction
  /// restarted more than kMaxRestartsPerTxn times the batch size).
  Result<BatchExecutionResult> Run(BatchEngine& engine,
                                   const contract::Registry& registry,
                                   const std::vector<txn::Transaction>& batch,
                                   SimTime start_time = 0);

  uint32_t num_executors() const { return num_executors_; }
  const ExecutionCostModel& costs() const { return costs_; }

 private:
  uint32_t num_executors_;
  ExecutionCostModel costs_;
};

}  // namespace thunderbolt::ce

#endif  // THUNDERBOLT_CE_SIM_EXECUTOR_POOL_H_
