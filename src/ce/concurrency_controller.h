// The Concurrency Controller (CC) at the heart of Thunderbolt's Concurrent
// Executor (paper sections 7, 8 and 10).
//
// CC executes a batch of transactions concurrently *without any prior
// knowledge of read/write sets*. It maintains a runtime dependency graph
// G(V, E): nodes are transactions, an edge e(u, v, k) orders u before v
// because of key k. The ordering between transactions is nondeterministic —
// it is fixed lazily, only when a value flows between transactions (a read
// observes another transaction's write) or when both commit — which lets CC
// reschedule conflicting transactions instead of aborting them (Figure 1).
//
// Key behaviours reproduced from the paper:
//  - Reads may observe *uncommitted* writes of other transactions; the
//    value source is recorded so invalidation cascades precisely
//    (Table 1: T2 reads D from T1 before T1 commits).
//  - Each node stores at most two operations per key: the first read and
//    the last write (section 8.1).
//  - A new writer orders all existing readers of the key before itself
//    (write-after-read; Figure 9a), so readers need not abort.
//  - A reader prefers the most recent writer; other writers are ordered
//    before the chosen source or after the reader (Figure 9b). When the
//    preferred source would create a dependency cycle, CC falls back to
//    ancestor writers and finally the root/storage (Figure 10a).
//  - Conflicts trigger the abort process of section 8.4: if the acting
//    transaction only performed reads it aborts itself; if it re-writes a
//    key whose previous value was already consumed downstream, the
//    *dependents* are cascade-aborted and the writer survives (Figure 10b).
//  - Commit order fixes any remaining write-write ambiguity
//    (Write-Complete, section 10); the final serialization order is a
//    topological order of G in which every transaction re-reads the same
//    values (Read-Complete).
#ifndef THUNDERBOLT_CE_CONCURRENCY_CONTROLLER_H_
#define THUNDERBOLT_CE_CONCURRENCY_CONTROLLER_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <optional>
#include <set>
#include <string>
#include <unordered_map>
#include <vector>

#include "ce/batch_engine.h"
#include "common/result.h"
#include "common/status.h"
#include "storage/kv_store.h"
#include "txn/transaction.h"

namespace thunderbolt::ce {

/// Lifecycle of a transaction slot inside CC.
enum class SlotState : uint8_t {
  kIdle,       // Not started (or restarted and waiting to run again).
  kRunning,    // Executor currently issuing operations.
  kFinished,   // All operations issued; waiting for dependencies to commit.
  kCommitted,  // Serialized; results final.
};

class ConcurrencyController final : public BatchEngine {
 public:
  /// `base` supplies root values (committed storage). Must outlive CC.
  ConcurrencyController(const storage::ReadView* base, uint32_t batch_size);

  /// The callback is invoked for every slot that must be re-executed (both
  /// self-aborts and cascading aborts); the executor pool re-queues them.
  /// Reason: kReadWriteConflict for the initiating reader of a failed
  /// PlanRead, kCascadeInvalidation for every victim whose consumed value
  /// was invalidated (section 8.4 case 2).
  void SetAbortCallback(AbortCallback cb) override {
    on_abort_ = std::move(cb);
  }

  /// CC's dependency graph is one shared structure — any operation can
  /// reschedule or cascade-abort *other* slots — so concurrent executors
  /// serialize on a single engine mutex (the real-world analogue of the
  /// sim pool's engine_serial_cost, here covering the whole operation).
  bool SupportsConcurrentExecutors() const override { return true; }

  // --- Executor-facing interface (BatchEngine) ----------------------------

  /// Marks the slot as running and returns its current incarnation. Ops
  /// from stale incarnations are rejected (Table 1, time 9).
  uint32_t Begin(TxnSlot slot) override;

  /// <Read, K>: returns the value for `key`, establishing dependencies.
  /// Returns Status::Aborted when the transaction must restart.
  Result<Value> Read(TxnSlot slot, uint32_t incarnation,
                     const Key& key) override;

  /// <Write, K, V>. Returns Status::Aborted when the transaction must
  /// restart (its incarnation is stale).
  Status Write(TxnSlot slot, uint32_t incarnation, const Key& key,
               Value v) override;

  /// Records a client-visible result value.
  void Emit(TxnSlot slot, uint32_t incarnation, Value v) override;

  /// Finalization phase: the executor finished issuing operations. CC
  /// commits the transaction once all dependencies committed. Returns
  /// Aborted when the transaction was invalidated meanwhile.
  Status Finish(TxnSlot slot, uint32_t incarnation) override;

  // --- Batch results ------------------------------------------------------

  bool AllCommitted() const override {
    return committed_count_ == batch_size_;
  }
  uint32_t committed_count() const override { return committed_count_; }
  uint64_t total_aborts() const override { return total_aborts_; }

  /// The serialization order (slot ids) fixed by commits. Only meaningful
  /// once AllCommitted().
  const std::vector<TxnSlot>& SerializationOrder() const override {
    return order_;
  }

  /// Extracts the per-transaction record (read/write sets in first-read /
  /// last-write form, emitted results, re-execution count, order index).
  TxnRecord ExtractRecord(TxnSlot slot) const override;

  /// Final value of every key written by the batch (last committed writer
  /// in serialization order wins). Applied to storage by the caller.
  storage::WriteBatch FinalWrites() const override;

  // --- Introspection for tests -------------------------------------------

  SlotState state(TxnSlot slot) const { return nodes_[slot].state; }
  bool HasEdge(TxnSlot from, TxnSlot to) const;
  /// True when the dependency graph currently has no cycle.
  bool GraphIsAcyclic() const;

 private:
  struct KeyRecord {
    bool has_read = false;
    Value first_read = 0;
    TxnSlot read_from = kRootSlot;  // Source of first_read.
    bool has_write = false;
    Value last_write = 0;
  };

  struct Node {
    SlotState state = SlotState::kIdle;
    uint32_t incarnation = 0;
    std::map<Key, KeyRecord> records;
    std::set<TxnSlot> out;  // this -> other (this serializes first).
    std::set<TxnSlot> in;
    std::vector<Value> emitted;
    uint32_t re_executions = 0;
    int order = -1;
  };

  struct KeyIndex {
    /// Writers ordered by write recency (back = latest).
    std::vector<TxnSlot> writers;
    /// Every node that has read this key.
    std::vector<TxnSlot> readers;
  };

  // Graph helpers.
  bool HasPath(TxnSlot from, TxnSlot to) const;
  void AddEdge(TxnSlot from, TxnSlot to);
  void RemoveNodeEdges(TxnSlot slot);

  // Read algorithm: picks a source for (slot, key), ordering all other
  // writers consistently. Returns the source slot (kRootSlot for storage)
  // or nullopt if every candidate fails.
  std::optional<TxnSlot> PlanRead(TxnSlot slot, const Key& key);

  // Abort machinery (section 8.4). `reason` describes the *initiator*'s
  // abort cause; transitive victims always report kCascadeInvalidation.
  void AbortTxn(TxnSlot slot, obs::AbortReason reason);
  void CollectValueDependents(TxnSlot slot, std::set<TxnSlot>& out) const;
  /// Resets every victim (clearing records/edges and bumping incarnations),
  /// then retries commits for finished transactions that were waiting on a
  /// victim's now-removed edges. `initiator` (if a member of `victims`)
  /// reports `reason`; everyone else reports kCascadeInvalidation.
  void ResetSlots(const std::set<TxnSlot>& victims, TxnSlot initiator,
                  obs::AbortReason reason);
  void ResetSlot(TxnSlot slot, obs::AbortReason reason);

  // Commit machinery.
  void TryCommit(TxnSlot slot);

  Value RootValue(const Key& key) const;

  const storage::ReadView* base_;
  uint32_t batch_size_;
  /// Guards the graph and every per-slot structure; held across each
  /// Begin/Read/Write/Emit/Finish (including abort-callback invocations —
  /// lock order: engine mutex, then pool mutex).
  mutable std::mutex mu_;
  std::vector<Node> nodes_;
  std::unordered_map<Key, KeyIndex> key_index_;
  std::vector<TxnSlot> order_;
  /// Atomic so progress checks never block on mu_ (thread-safety contract
  /// point 2 in batch_engine.h).
  std::atomic<uint32_t> committed_count_{0};
  std::atomic<uint64_t> total_aborts_{0};
  AbortCallback on_abort_;
};

}  // namespace thunderbolt::ce

#endif  // THUNDERBOLT_CE_CONCURRENCY_CONTROLLER_H_
