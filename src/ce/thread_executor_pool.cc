#include "ce/thread_executor_pool.h"

#include <algorithm>
#include <chrono>
#include <string>
#include <utility>

namespace thunderbolt::ce {

namespace {

/// Forwards every contract operation to the engine directly. Unlike the
/// sim pool's SteppingContext there is no replay log: the attempt runs the
/// contract straight through on this worker's thread.
class DirectContext final : public contract::ContractContext {
 public:
  DirectContext(BatchEngine* engine, TxnSlot slot, uint32_t incarnation)
      : engine_(engine), slot_(slot), incarnation_(incarnation) {}

  Result<Value> Read(const Key& key) override {
    return engine_->Read(slot_, incarnation_, key);
  }

  Status Write(const Key& key, Value value) override {
    return engine_->Write(slot_, incarnation_, key, value);
  }

  void EmitResult(Value value) override {
    // Buffered; only a successfully completing attempt forwards emits.
    emits_.push_back(value);
  }

  const std::vector<Value>& emits() const { return emits_; }

 private:
  BatchEngine* engine_;
  TxnSlot slot_;
  uint32_t incarnation_;
  std::vector<Value> emits_;
};

}  // namespace

ThreadExecutorPool::ThreadExecutorPool(uint32_t num_executors,
                                       ExecutionCostModel costs)
    : num_executors_(num_executors), costs_(costs) {
  workers_.reserve(num_executors_);
  for (uint32_t i = 0; i < num_executors_; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadExecutorPool::~ThreadExecutorPool() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    shutdown_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : workers_) t.join();
}

ThreadExecutorPool::Outcome ThreadExecutorPool::Attempt(Job& job,
                                                        TxnSlot slot) {
  BatchEngine& engine = *job.engine;
  const uint32_t incarnation = engine.Begin(slot);
  DirectContext ctx(&engine, slot, incarnation);
  Status s = job.registry->Execute((*job.batch)[slot], ctx);
  if (s.ok()) {
    for (Value v : ctx.emits()) engine.Emit(slot, incarnation, v);
    Status fin = engine.Finish(slot, incarnation);
    return fin.IsAborted() ? Outcome::kAborted : Outcome::kFinished;
  }
  if (s.IsAborted()) return Outcome::kAborted;
  // Contract-level failure (bad arguments, unknown contract). The engine
  // still finalizes the operations performed so far — same policy as the
  // sim pool — so the batch outcome stays well-defined.
  Status fin = engine.Finish(slot, incarnation);
  return fin.IsAborted() ? Outcome::kAborted : Outcome::kFinished;
}

void ThreadExecutorPool::WorkerLoop() {
  // Worker index = position of this thread's histogram; assigned on first
  // job entry in arrival order.
  std::unique_lock<std::mutex> lk(mu_);
  const uint32_t id = next_worker_id_++;
  uint64_t served = 0;
  for (;;) {
    work_cv_.wait(lk,
                  [&] { return shutdown_ || (active_ && job_gen_ != served); });
    if (shutdown_) return;
    served = job_gen_;
    Job& job = job_;
    ++job.workers_inside;

    while (active_ && !job.done && job.error.ok()) {
      if (job.current.empty() && !job.next.empty()) {
        // Double-buffer swap: the next wave (re-admitted aborted txns)
        // becomes the current batch.
        std::swap(job.current, job.next);
        if (obs_.tracer->enabled()) {
          obs::TraceEvent ev;
          ev.kind = obs::EventKind::kWave;
          ev.pid = obs_.pid;
          ev.tid = id;
          ev.ts_us = TraceNowUs();
          ev.a = job.current.size();
          obs_.tracer->Record(ev);
        }
      }
      if (job.current.empty()) {
        if (job.executing == 0) {
          // No queued work and no attempt in flight: the engine state is
          // frozen, so this is terminal. Calling into the engine while
          // holding the pool mutex is safe here — no worker holds an
          // engine lock (executing == 0).
          if (job.engine->AllCommitted()) {
            job.done = true;
          } else {
            job.error = Status::Internal(
                "thread pool stalled: no runnable transactions but batch "
                "incomplete (" +
                std::to_string(job.engine->committed_count()) + "/" +
                std::to_string(job.n) + " committed)");
          }
          work_cv_.notify_all();
          done_cv_.notify_all();
          break;
        }
        work_cv_.wait(lk);
        continue;
      }

      const size_t backlog = job.current.size() + job.next.size() + 1;
      if (backlog > job.max_queue_depth) job.max_queue_depth = backlog;
      const TxnSlot slot = job.current.front();
      job.current.pop_front();
      job.queued[slot] = 0;
      job.pinned[slot] = 1;
      ++job.executing;
      job.occupancy_sum += job.executing;
      ++job.occupancy_samples;
      const uint32_t restarts = job.consecutive_restarts[slot];

      lk.unlock();
      uint64_t backoff_slept_us = 0;
      if (restarts > 0) {
        // Real exponential backoff before re-running a restarted slot,
        // mirroring the sim pool's virtual restart_cost model.
        const uint32_t exp = std::min(restarts, costs_.restart_backoff_cap);
        backoff_slept_us = costs_.restart_cost * (uint64_t{1} << exp);
        std::this_thread::sleep_for(
            std::chrono::microseconds(backoff_slept_us));
      }
      const uint64_t attempt_start_us = TraceNowUs();
      const Outcome outcome = Attempt(job, slot);
      const uint64_t attempt_end_us = TraceNowUs();
      const double latency_us =
          std::chrono::duration_cast<std::chrono::microseconds>(
              std::chrono::steady_clock::now() - job.wall_start)
              .count();
      // Engine progress counters are lock-free by contract, so these are
      // safe without the pool mutex.
      const bool all_committed = job.engine->AllCommitted();
      const bool over_global_cap =
          job.engine->total_aborts() > kMaxRestartFactor * job.n;
      if (outcome == Outcome::kFinished && obs_.tracer->enabled()) {
        // One span per completing attempt; for engines that commit at
        // Finish this is the transaction's lifecycle span.
        obs::TraceEvent ev;
        ev.kind = obs::EventKind::kTxnSpan;
        ev.pid = obs_.pid;
        ev.tid = id;
        ev.ts_us = attempt_start_us;
        ev.dur_us = attempt_end_us - attempt_start_us;
        ev.txn = (*job.batch)[slot].id;
        ev.a = restarts;
        ev.trace_id = (*job.batch)[slot].id;
        ev.span_id = 1;
        obs_.tracer->Record(ev);
      }
      lk.lock();

      // Phase accounting under the pool mutex.
      if (!job.started[slot]) {
        job.started[slot] = 1;
        job.queue_wait_us[slot] =
            attempt_start_us > job.wall_start_trace_us
                ? attempt_start_us - job.wall_start_trace_us
                : 0;
      }
      job.exec_us[slot] += attempt_end_us - attempt_start_us;
      job.backoff_us[slot] += backoff_slept_us;

      --job.executing;
      job.pinned[slot] = 0;
      const bool requeue =
          job.restart_pending[slot] != 0 || outcome == Outcome::kAborted;
      job.restart_pending[slot] = 0;
      if (requeue) {
        if (!job.queued[slot]) {
          job.queued[slot] = 1;
          job.next.push_back(slot);
        }
        work_cv_.notify_one();
      } else {
        job.consecutive_restarts[slot] = 0;
        job.worker_latency_us[id].Add(latency_us);
      }
      if (over_global_cap && job.error.ok()) {
        job.error = Status::Internal(
            "thread pool livelock: " +
            std::to_string(job.engine->total_aborts()) +
            " restarts for batch of " + std::to_string(job.n));
      }
      if (all_committed) job.done = true;
      if (job.done || !job.error.ok()) {
        work_cv_.notify_all();
        done_cv_.notify_all();
      }
    }

    --job_.workers_inside;
    done_cv_.notify_all();
  }
}

Result<BatchExecutionResult> ThreadExecutorPool::Run(
    BatchEngine& engine, const contract::Registry& registry,
    const std::vector<txn::Transaction>& batch, SimTime start_time) {
  const uint32_t n = static_cast<uint32_t>(batch.size());
  if (n == 0) {
    BatchExecutionResult empty;
    empty.start_time = start_time;
    return empty;
  }
  if (num_executors_ == 0) {
    return Status::InvalidArgument("executor pool needs >= 1 executor");
  }
  if (num_executors_ > 1 && !engine.SupportsConcurrentExecutors()) {
    return Status::InvalidArgument(
        "engine does not support concurrent executors (see the "
        "thread-safety contract in ce/batch_engine.h)");
  }

  // The callback runs on worker threads with engine-internal locks held;
  // it touches only pool queue state, under the pool mutex (lock order:
  // engine, then pool).
  engine.SetAbortCallback([this](TxnSlot slot, obs::AbortReason reason) {
    std::lock_guard<std::mutex> lk(mu_);
    if (!active_) return;
    Job& job = job_;
    ++job.consecutive_restarts[slot];
    ++job.reason_counts[static_cast<size_t>(reason)];
    if (obs_.tracer->enabled()) {
      // Engine locks + pool mutex are held; the ring's own mutex is a
      // leaf, so recording here preserves the lock order.
      obs::TraceEvent ev;
      ev.kind = obs::EventKind::kTxnRestart;
      ev.reason = reason;
      ev.pid = obs_.pid;
      ev.ts_us = TraceNowUs();
      ev.txn = (*job.batch)[slot].id;
      ev.a = job.consecutive_restarts[slot];
      obs_.tracer->Record(ev);
    }
    if (job.consecutive_restarts[slot] > kMaxRestartsPerTxn * job.n &&
        job.error.ok()) {
      ++job.reason_counts[static_cast<size_t>(obs::AbortReason::kRestartBound)];
      job.error = Status::Internal(
          "thread pool livelock: txn slot " + std::to_string(slot) +
          " restarted " + std::to_string(job.consecutive_restarts[slot]) +
          " times consecutively (per-txn bound " +
          std::to_string(kMaxRestartsPerTxn * job.n) + ")");
      work_cv_.notify_all();
      done_cv_.notify_all();
    }
    if (job.pinned[slot]) {
      // The owning worker observes the abort (stale incarnation) or, if
      // its attempt already completed, re-admits via this flag.
      job.restart_pending[slot] = 1;
      return;
    }
    if (!job.queued[slot]) {
      job.queued[slot] = 1;
      job.next.push_back(slot);
      work_cv_.notify_one();
    }
  });

  std::unique_lock<std::mutex> lk(mu_);
  job_ = Job{};
  job_.engine = &engine;
  job_.registry = &registry;
  job_.batch = &batch;
  job_.n = n;
  for (TxnSlot s = 0; s < n; ++s) job_.current.push_back(s);
  job_.queued.assign(n, 1);
  job_.pinned.assign(n, 0);
  job_.restart_pending.assign(n, 0);
  job_.consecutive_restarts.assign(n, 0);
  job_.worker_latency_us.resize(num_executors_);
  job_.queue_wait_us.assign(n, 0);
  job_.exec_us.assign(n, 0);
  job_.backoff_us.assign(n, 0);
  job_.started.assign(n, 0);
  job_.wall_start = std::chrono::steady_clock::now();
  job_.wall_start_trace_us = TraceNowUs();
  active_ = true;
  ++job_gen_;
  work_cv_.notify_all();

  done_cv_.wait(lk, [&] {
    return (job_.done || !job_.error.ok()) && job_.workers_inside == 0;
  });
  active_ = false;

  const SimTime wall_us = static_cast<SimTime>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - job_.wall_start)
          .count());
  Status error = job_.error;
  if (!error.ok()) {
    engine.SetAbortCallback({});
    return error;
  }

  // All workers have left and the batch is committed: the engine is
  // quiescent, so result extraction needs no synchronization.
  BatchExecutionResult result;
  result.start_time = start_time;
  result.duration = wall_us;
  result.order = engine.SerializationOrder();
  result.total_aborts = engine.total_aborts();
  result.final_writes = engine.FinalWrites();
  result.abort_reasons = job_.reason_counts;
  result.records.reserve(n);
  for (TxnSlot s = 0; s < n; ++s) {
    result.records.push_back(engine.ExtractRecord(s));
  }
  // Merge the single-writer per-worker histograms (common/histogram.h).
  for (const Histogram& h : job_.worker_latency_us) {
    result.commit_latency_us.Merge(h);
  }
  // Per-phase decomposition: one sample per transaction in each
  // pool-side phase (zeros included so counts line up).
  for (TxnSlot s = 0; s < n; ++s) {
    result.phases[obs::Phase::kQueueWait].Add(
        static_cast<double>(job_.queue_wait_us[s]));
    result.phases[obs::Phase::kExecute].Add(
        static_cast<double>(job_.exec_us[s]));
    result.phases[obs::Phase::kRestartBackoff].Add(
        static_cast<double>(job_.backoff_us[s]));
  }
  if (obs_.tracer->enabled()) {
    obs::TraceEvent ev;
    ev.kind = obs::EventKind::kBatchSpan;
    ev.pid = obs_.pid;
    ev.tid = num_executors_;  // Dedicated lane above the worker lanes.
    ev.ts_us = TraceNowUs() - wall_us;
    ev.dur_us = wall_us;
    ev.a = n;
    ev.b = result.total_aborts;
    obs_.tracer->Record(ev);
  }
  if (obs_.metrics != nullptr) {
    obs::MetricsRegistry& m = *obs_.metrics;
    m.GetCounter("pool.thread.batches").Inc();
    m.GetCounter("pool.thread.txns").Inc(n);
    m.GetCounter("pool.thread.restarts").Inc(result.total_aborts);
    for (size_t r = 0; r < obs::kNumAbortReasons; ++r) {
      if (result.abort_reasons[r] == 0) continue;
      m.GetCounter(std::string("pool.thread.restart_reason.") +
                   obs::AbortReasonName(static_cast<obs::AbortReason>(r)))
          .Inc(result.abort_reasons[r]);
    }
    m.GetHistogram("pool.thread.commit_latency_us")
        .Merge(result.commit_latency_us);
    obs::MergeIntoRegistry(m, result.phases);
    m.GetGauge("pool.thread.queue_depth")
        .Set(static_cast<double>(job_.max_queue_depth));
    m.GetGauge("pool.thread.wave_occupancy")
        .Set(job_.occupancy_samples > 0
                 ? static_cast<double>(job_.occupancy_sum) /
                       (static_cast<double>(job_.occupancy_samples) *
                        num_executors_)
                 : 0.0);
  }
  engine.SetAbortCallback({});
  return result;
}

}  // namespace thunderbolt::ce
