// BatchEngine: the common executor-facing interface implemented by every
// concurrency-control engine in this repository — Thunderbolt's CC
// (ce/concurrency_controller.h), and the OCC and 2PL-No-Wait baselines
// (baselines/). The simulated executor pool (ce/sim_executor_pool.h) drives
// any engine through this interface, which is what makes the Figure 11/12
// comparisons apples-to-apples.
#ifndef THUNDERBOLT_CE_BATCH_ENGINE_H_
#define THUNDERBOLT_CE_BATCH_ENGINE_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "obs/trace.h"
#include "storage/kv_store.h"
#include "txn/transaction.h"

namespace thunderbolt::ce {

using storage::Key;
using storage::Value;

/// Index of a transaction within the batch being executed.
using TxnSlot = uint32_t;

/// Sentinel for "value read from the root (committed storage)".
inline constexpr TxnSlot kRootSlot = ~TxnSlot{0};

/// Re-queue callback: invoked once per restart with the victim slot and
/// *why* it was torn down (obs::AbortReason) — the executor pools break
/// total_aborts down by reason and emit restart trace events from it.
using AbortCallback = std::function<void(TxnSlot, obs::AbortReason)>;

/// Per-transaction outcome extracted after the batch commits.
struct TxnRecord {
  txn::ReadWriteSet rw_set;
  std::vector<Value> emitted;   // Results surfaced to the client.
  uint32_t re_executions = 0;   // Times the transaction was restarted.
  int order = -1;               // Position in the serialization order.
};

/// A concurrency-control engine executing one batch of transactions.
///
/// Lifecycle per slot: Begin -> {Read|Write|Emit}* -> Finish. Any call may
/// return Status::Aborted, after which the executor must re-run the
/// transaction from scratch with the incarnation returned by a new Begin.
/// Engines report *all* restarts (self-aborts and aborts inflicted by other
/// transactions) through the abort callback; that callback is the single
/// re-queue path for the executor pool.
///
/// Thread-safety contract (ThreadExecutorPool). An engine that returns
/// true from SupportsConcurrentExecutors() promises, for the duration of
/// one batch:
///
///  1. Begin/Read/Write/Emit/Finish may be called concurrently from
///     multiple executor threads, provided each *slot* is operated on by
///     at most one thread at a time (the pool pins a slot to one worker
///     per attempt). The engine synchronizes cross-slot shared state
///     internally — this is the real critical section the sim pool models
///     as engine_serial_cost.
///  2. AllCommitted / committed_count / total_aborts are safe to call
///     from any thread at any time and must not block on locks that are
///     held while invoking the abort callback (use atomics).
///  3. The abort callback may be invoked on any executor thread, with
///     engine-internal locks held. Callbacks must therefore not re-enter
///     the engine; the pools only touch their own queue state (lock
///     order: engine lock, then pool lock).
///  4. SerializationOrder / ExtractRecord / FinalWrites are only called
///     after AllCommitted() with all executors quiescent, and need no
///     synchronization.
///
/// Engines that return false (the default) are only ever driven by a
/// single thread — the sim pool, or the thread pool with one worker.
class BatchEngine {
 public:
  virtual ~BatchEngine() = default;

  /// True when the engine's operations may be called from concurrent
  /// executor threads per the contract above. ThreadExecutorPool refuses
  /// to run an engine with more than one worker unless this is true.
  virtual bool SupportsConcurrentExecutors() const { return false; }

  /// Registers the re-queue callback. Must be set before execution starts.
  /// The reason argument classifies the abort: read-write conflict /
  /// cascade invalidation (CC), validation failure (OCC), lock-acquire
  /// failure (2PL-No-Wait).
  virtual void SetAbortCallback(AbortCallback cb) = 0;

  /// Starts (or restarts) a slot; returns its current incarnation.
  virtual uint32_t Begin(TxnSlot slot) = 0;

  virtual Result<Value> Read(TxnSlot slot, uint32_t incarnation,
                             const Key& key) = 0;
  virtual Status Write(TxnSlot slot, uint32_t incarnation, const Key& key,
                       Value value) = 0;
  virtual void Emit(TxnSlot slot, uint32_t incarnation, Value value) = 0;

  /// Finalization phase: the transaction issued all its operations.
  /// Depending on the engine this validates and/or commits; commit may also
  /// happen later when dependencies commit.
  virtual Status Finish(TxnSlot slot, uint32_t incarnation) = 0;

  virtual bool AllCommitted() const = 0;
  virtual uint32_t committed_count() const = 0;

  /// Total number of restarts across the batch (Figure 11's
  /// "# of Re-executions" numerator).
  virtual uint64_t total_aborts() const = 0;

  /// The serialization order (slots). Meaningful once AllCommitted().
  virtual const std::vector<TxnSlot>& SerializationOrder() const = 0;

  virtual TxnRecord ExtractRecord(TxnSlot slot) const = 0;

  /// Final value of every key written by the batch under the
  /// serialization order.
  virtual storage::WriteBatch FinalWrites() const = 0;
};

}  // namespace thunderbolt::ce

#endif  // THUNDERBOLT_CE_BATCH_ENGINE_H_
