// ExecutorPool: the common interface over the two ways this repository
// drives a batch of transactions through a BatchEngine.
//
//   "sim"     SimExecutorPool (sim_executor_pool.h): E *virtual* executors
//             interleaved deterministically on one physical thread over a
//             virtual clock. Reproduces the paper's executor-count sweeps
//             and is the only pool determinism_test accepts.
//   "thread"  ThreadExecutorPool (thread_executor_pool.h): E real
//             std::thread workers with double-buffered batch admission.
//             Produces wall-clock throughput numbers; timings (and, for
//             engines whose serialization order is interleaving-dependent,
//             the order itself) are nondeterministic. Final state still
//             agrees with "sim" on commutative batches — pinned by
//             thread_executor_pool_test / thread_pool_stress_test.
//
// Selection threads through ThunderboltConfig::pool and the benches'
// --pool flag via CreateExecutorPool, mirroring the registry idiom of
// EngineRegistry / WorkloadRegistry / PlacementRegistry / StoreRegistry.
#ifndef THUNDERBOLT_CE_EXECUTOR_POOL_H_
#define THUNDERBOLT_CE_EXECUTOR_POOL_H_

#include <array>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "ce/batch_engine.h"
#include "common/histogram.h"
#include "common/result.h"
#include "common/types.h"
#include "contract/contract.h"
#include "obs/latency.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "txn/transaction.h"

namespace thunderbolt::ce {

/// Virtual-time costs of the execution pipeline. Defaults are calibrated so
/// a single executor sustains roughly the per-core SmallBank rate of the
/// paper's testbed; see EXPERIMENTS.md. The thread pool consumes only the
/// restart-backoff fields (restart_cost / restart_backoff_cap), as real
/// wall-clock pauses between re-admissions of a repeatedly aborted slot.
struct ExecutionCostModel {
  /// Contract logic + storage access per operation (executor-local).
  SimTime op_cost = Micros(18);
  /// Serialized engine critical section per operation (CC latch, lock
  /// manager, or OCC verifier — the shared resource that caps scaling).
  SimTime engine_serial_cost = Micros(2);
  /// Charged to an executor when it begins (or restarts) a transaction.
  SimTime start_cost = Micros(4);
  /// Base penalty before re-running an aborted transaction. Consecutive
  /// restarts of the same transaction back off exponentially with a
  /// per-slot deterministic jitter, breaking the symmetric abort ping-pong
  /// two crossing read-modify-writes would otherwise fall into.
  SimTime restart_cost = Micros(10);
  /// Cap exponent for the restart backoff (max factor 2^cap).
  uint32_t restart_backoff_cap = 6;
};

/// Livelock guards shared by both pools. A batch fails with Internal when
/// one transaction restarts more than kMaxRestartsPerTxn times the batch
/// size (the per-transaction bound promised by the Run contract), or when
/// total restarts exceed kMaxRestartFactor times the batch size (global
/// backstop for ping-pong patterns that keep resetting the per-slot
/// consecutive-restart counter).
inline constexpr uint64_t kMaxRestartsPerTxn = 64;
inline constexpr uint64_t kMaxRestartFactor = 1000;

/// Outcome of executing one batch. `duration` (and the latency histogram)
/// is virtual time for the "sim" pool and wall-clock microseconds for the
/// "thread" pool — see EXPERIMENTS.md before comparing the two.
struct BatchExecutionResult {
  std::vector<TxnRecord> records;      // Indexed by slot.
  std::vector<TxnSlot> order;          // Serialization order.
  storage::WriteBatch final_writes;    // To apply to storage.
  uint64_t total_aborts = 0;           // Re-executions across the batch.
  /// total_aborts broken down by cause, indexed by obs::AbortReason (the
  /// engine reports the reason through the abort callback).
  std::array<uint64_t, obs::kNumAbortReasons> abort_reasons{};
  SimTime start_time = 0;
  SimTime duration = 0;                // Makespan of the batch.
  Histogram commit_latency_us;         // Per-txn commit latency.
  /// Per-transaction phase decomposition of commit_latency_us: the pool
  /// fills kQueueWait / kExecute / kRestartBackoff (one sample per
  /// committed transaction, zeros included so counts line up); the
  /// cluster commit path adds the consensus-side phases on top. Also
  /// merged into the registry's "phase.<name>_us" histograms when a
  /// metrics sink is installed.
  obs::LatencyBreakdown phases;
};

/// Observability context a pool records into. Set once (per node / bench
/// cell) before Run; both sinks may be shared across pools. `tracer` is
/// never null — the default is the shared no-op NullTracer, so an
/// un-instrumented pool costs one branch per would-be event. `pid` scopes
/// trace events to a replica in multi-node runs.
struct PoolObsContext {
  obs::Tracer* tracer = obs::NullTracerInstance();
  obs::MetricsRegistry* metrics = nullptr;
  uint32_t pid = 0;
};

/// A pool of E executors (virtual or physical) that drives one batch at a
/// time through any BatchEngine. Run is not itself thread-safe: one batch
/// per pool at a time, from one caller thread.
class ExecutorPool {
 public:
  virtual ~ExecutorPool() = default;

  /// Executes `batch` through `engine` using the contracts in `registry`.
  /// `start_time` seeds the clock (used when the pool runs inside the
  /// cluster simulation). Returns Internal on livelock (see
  /// kMaxRestartsPerTxn / kMaxRestartFactor above).
  virtual Result<BatchExecutionResult> Run(
      BatchEngine& engine, const contract::Registry& registry,
      const std::vector<txn::Transaction>& batch, SimTime start_time = 0) = 0;

  virtual uint32_t num_executors() const = 0;

  /// Selection name: "sim" or "thread".
  virtual std::string name() const = 0;

  /// Installs the observability sinks this pool records into (trace events
  /// per transaction/batch, `pool.<name>.*` metrics). Call between
  /// batches, not during Run.
  void SetObs(const PoolObsContext& ctx) { obs_ = ctx; }
  const PoolObsContext& obs_context() const { return obs_; }

 protected:
  PoolObsContext obs_;
};

/// Instantiates the named pool ("sim" or "thread") with `num_executors`
/// executors. Returns nullptr for unknown names.
std::unique_ptr<ExecutorPool> CreateExecutorPool(const std::string& name,
                                                 uint32_t num_executors,
                                                 ExecutionCostModel costs);

/// Registered pool names, sorted ("sim", "thread").
std::vector<std::string> ExecutorPoolNames();

}  // namespace thunderbolt::ce

#endif  // THUNDERBOLT_CE_EXECUTOR_POOL_H_
