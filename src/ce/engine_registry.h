// String-keyed factory registry for concurrency-control engines, mirroring
// workload::WorkloadRegistry / placement::PlacementRegistry /
// storage::StoreRegistry: the bench drivers select a BatchEngine from an
// `--engine <name>` flag without compile-time coupling.
//
// `Global()` is preloaded with "ce" (the Thunderbolt Concurrency
// Controller, the one engine this module owns). The OCC and 2PL-No-Wait
// baselines live in the baselines/ module — which depends on ce/, so they
// cannot preload here; callers that want them call
// baselines::RegisterBaselineEngines() once at startup
// (baselines/engine_registration.h). "serial" is not a BatchEngine — the
// drivers keep routing it through baselines::ExecuteSerial.
#ifndef THUNDERBOLT_CE_ENGINE_REGISTRY_H_
#define THUNDERBOLT_CE_ENGINE_REGISTRY_H_

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "ce/batch_engine.h"

namespace thunderbolt::ce {

class EngineRegistry {
 public:
  /// `base` is the committed read view the engine preplays against; it
  /// must outlive the engine. `batch_size` is the number of slots.
  using Factory = std::function<std::unique_ptr<BatchEngine>(
      const storage::ReadView* base, uint32_t batch_size)>;

  /// Registers `factory` under `name`. Overwrites any existing entry.
  void Register(std::string name, Factory factory);

  /// Instantiates the named engine, or nullptr for unknown names.
  std::unique_ptr<BatchEngine> Create(const std::string& name,
                                      const storage::ReadView* base,
                                      uint32_t batch_size) const;

  bool Contains(const std::string& name) const;

  /// Registered names, sorted.
  std::vector<std::string> Names() const;

  /// The process-wide registry, preloaded with "ce".
  static EngineRegistry& Global();

 private:
  std::map<std::string, Factory> factories_;
};

}  // namespace thunderbolt::ce

#endif  // THUNDERBOLT_CE_ENGINE_REGISTRY_H_
