// Real threaded executor pool.
//
// Drives a batch through any BatchEngine with E std::thread workers —
// the production-shaped counterpart of SimExecutorPool's virtual-time
// simulation, and the pool behind the repo's wall-clock tps-vs-threads
// numbers (thunderbolt_bench --pool=thread --threads=...).
//
// Admission is double-buffered, Aria-style (see SNIPPETS.md Snippet 1,
// chenhao-ye/polaris BatchMgr): workers drain the *current* queue while
// every transaction aborted by the engine is re-admitted into the *next*
// queue; when the current queue runs dry the buffers swap. Restart storms
// therefore wait for the in-flight wave to pass instead of hammering the
// engine, and a slot re-admitted many times consecutively additionally
// sleeps an exponentially growing real backoff
// (ExecutionCostModel::restart_cost / restart_backoff_cap) before its next
// attempt.
//
// Engine requirements. Workers call Begin/Read/Write/Emit/Finish
// concurrently, so the engine must declare SupportsConcurrentExecutors()
// and synchronize internally per the thread-safety contract in
// batch_engine.h (this replaces the sim pool's virtual engine_serial_cost
// with the engine's real critical sections). The abort callback runs on
// whichever worker thread triggered the abort, with engine-internal locks
// held; the pool's callback only touches its own queue state under the
// pool mutex (lock order: engine lock, then pool lock — never the
// reverse).
//
// Unlike the sim pool there is no step/replay machinery: each attempt runs
// the contract straight through, with every ContractContext operation
// forwarded to the engine directly. Contract logic, key construction and
// base-store reads run in parallel on the workers; only the engine's
// internal critical sections serialize.
//
// Determinism caveat: wall-clock timings, abort counts and (for engines
// whose serialization order is interleaving-dependent) the commit order
// are NOT deterministic. determinism_test stays on the "sim" pool; the
// agreement suites pin thread-vs-sim final-state fingerprints on
// commutative batches instead.
#ifndef THUNDERBOLT_CE_THREAD_EXECUTOR_POOL_H_
#define THUNDERBOLT_CE_THREAD_EXECUTOR_POOL_H_

#include <array>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "ce/batch_engine.h"
#include "ce/executor_pool.h"
#include "common/histogram.h"
#include "common/result.h"
#include "common/types.h"
#include "contract/contract.h"
#include "txn/transaction.h"

namespace thunderbolt::ce {

class ThreadExecutorPool final : public ExecutorPool {
 public:
  /// Starts `num_executors` worker threads immediately; they idle between
  /// batches so per-Run overhead is one mutex round-trip, not thread
  /// creation. `costs` feeds only the restart backoff (see file header).
  explicit ThreadExecutorPool(uint32_t num_executors,
                              ExecutionCostModel costs = {});
  ~ThreadExecutorPool() override;

  ThreadExecutorPool(const ThreadExecutorPool&) = delete;
  ThreadExecutorPool& operator=(const ThreadExecutorPool&) = delete;

  /// Executes `batch` through `engine`. Blocks until the batch commits or
  /// fails. `start_time` is passed through to the result; `duration` and
  /// the latency histogram are wall-clock microseconds. Returns
  /// InvalidArgument when the engine does not support concurrent
  /// executors (and more than one worker would touch it), Internal on
  /// livelock or engine stall. Not thread-safe: one batch at a time.
  Result<BatchExecutionResult> Run(BatchEngine& engine,
                                   const contract::Registry& registry,
                                   const std::vector<txn::Transaction>& batch,
                                   SimTime start_time = 0) override;

  uint32_t num_executors() const override { return num_executors_; }
  std::string name() const override { return "thread"; }
  const ExecutionCostModel& costs() const { return costs_; }

 private:
  /// Per-batch shared state; valid only while `active_` is true. Owned by
  /// Run, touched by workers strictly under `mu_` (queue state) or via the
  /// engine's own synchronization (engine calls).
  struct Job {
    BatchEngine* engine = nullptr;
    const contract::Registry* registry = nullptr;
    const std::vector<txn::Transaction>* batch = nullptr;
    uint32_t n = 0;

    // Double-buffered admission: workers pop from `current`; aborted
    // transactions are re-admitted into `next`; buffers swap when
    // `current` drains.
    std::deque<TxnSlot> current;
    std::deque<TxnSlot> next;
    std::vector<uint8_t> queued;           // In current or next.
    std::vector<uint8_t> pinned;           // Owned by a worker right now.
    std::vector<uint8_t> restart_pending;  // Aborted while pinned.
    std::vector<uint32_t> consecutive_restarts;

    uint32_t executing = 0;        // Workers inside an attempt.
    uint32_t workers_inside = 0;   // Workers inside the job loop.
    bool done = false;
    Status error = Status::OK();
    // Restarts by cause; mutated in the abort callback under mu_.
    std::array<uint64_t, obs::kNumAbortReasons> reason_counts{};

    std::chrono::steady_clock::time_point wall_start;
    uint64_t wall_start_trace_us = 0;  // wall_start in the trace domain.
    // One histogram per worker (Histogram is single-writer; see
    // common/histogram.h), merged into the result at batch end.
    std::vector<Histogram> worker_latency_us;

    // Per-slot phase accounting (mutated under mu_, read at quiescence):
    // admission -> first attempt, summed attempt durations, summed real
    // backoff sleeps.
    std::vector<uint64_t> queue_wait_us;
    std::vector<uint64_t> exec_us;
    std::vector<uint64_t> backoff_us;
    std::vector<uint8_t> started;  // First attempt seen (queue_wait set).

    // Admission-pressure signals for the pool.thread.* gauges.
    size_t max_queue_depth = 0;     // Peak current+next backlog.
    uint64_t occupancy_sum = 0;     // Sum of `executing` at attempt start.
    uint64_t occupancy_samples = 0;
  };

  void WorkerLoop();
  /// Runs one attempt of `slot` to completion against the engine (no pool
  /// lock held). Returns whether the attempt finished or was aborted.
  enum class Outcome { kFinished, kAborted };
  Outcome Attempt(Job& job, TxnSlot slot);

  /// Wall-clock microseconds since pool construction — the trace
  /// timestamp domain for this pool (monotonic across batches, so
  /// consecutive Runs land side by side on the Perfetto timeline).
  uint64_t TraceNowUs() const {
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now() - trace_epoch_)
            .count());
  }

  const uint32_t num_executors_;
  const ExecutionCostModel costs_;
  const std::chrono::steady_clock::time_point trace_epoch_ =
      std::chrono::steady_clock::now();

  std::mutex mu_;
  std::condition_variable work_cv_;  // Workers: new work / job start / end.
  std::condition_variable done_cv_;  // Run: batch finished or failed.
  Job job_;
  bool active_ = false;     // A batch is in flight.
  bool shutdown_ = false;   // Destructor ran; workers exit.
  uint64_t job_gen_ = 0;    // Bumped per Run; keeps late workers off a
                            // finished job and lets them join the next one.
  uint32_t next_worker_id_ = 0;  // Histogram index assignment.
  std::vector<std::thread> workers_;
};

}  // namespace thunderbolt::ce

#endif  // THUNDERBOLT_CE_THREAD_EXECUTOR_POOL_H_
