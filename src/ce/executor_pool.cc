#include "ce/executor_pool.h"

#include <memory>
#include <string>
#include <vector>

#include "ce/sim_executor_pool.h"
#include "ce/thread_executor_pool.h"

namespace thunderbolt::ce {

std::unique_ptr<ExecutorPool> CreateExecutorPool(const std::string& name,
                                                 uint32_t num_executors,
                                                 ExecutionCostModel costs) {
  if (name == "sim") {
    return std::make_unique<SimExecutorPool>(num_executors, costs);
  }
  if (name == "thread") {
    return std::make_unique<ThreadExecutorPool>(num_executors, costs);
  }
  return nullptr;
}

std::vector<std::string> ExecutorPoolNames() { return {"sim", "thread"}; }

}  // namespace thunderbolt::ce
