#include "ce/concurrency_controller.h"

#include <algorithm>
#include <cassert>
#include <deque>

namespace thunderbolt::ce {

namespace {

void EraseFromVector(std::vector<TxnSlot>& v, TxnSlot slot) {
  v.erase(std::remove(v.begin(), v.end(), slot), v.end());
}

}  // namespace

ConcurrencyController::ConcurrencyController(const storage::ReadView* base,
                                             uint32_t batch_size)
    : base_(base), batch_size_(batch_size), nodes_(batch_size) {
  order_.reserve(batch_size);
}

Value ConcurrencyController::RootValue(const Key& key) const {
  return base_->GetOrDefault(key, 0);
}

// --- Graph helpers ---------------------------------------------------------

bool ConcurrencyController::HasPath(TxnSlot from, TxnSlot to) const {
  if (from == to) return true;
  // Iterative DFS; batches are small (<= a few hundred nodes).
  std::vector<bool> visited(batch_size_, false);
  std::vector<TxnSlot> stack{from};
  visited[from] = true;
  while (!stack.empty()) {
    TxnSlot cur = stack.back();
    stack.pop_back();
    for (TxnSlot next : nodes_[cur].out) {
      if (next == to) return true;
      if (!visited[next]) {
        visited[next] = true;
        stack.push_back(next);
      }
    }
  }
  return false;
}

void ConcurrencyController::AddEdge(TxnSlot from, TxnSlot to) {
  assert(from != to);
  nodes_[from].out.insert(to);
  nodes_[to].in.insert(from);
}

void ConcurrencyController::RemoveNodeEdges(TxnSlot slot) {
  Node& node = nodes_[slot];
  for (TxnSlot to : node.out) nodes_[to].in.erase(slot);
  for (TxnSlot from : node.in) nodes_[from].out.erase(slot);
  node.out.clear();
  node.in.clear();
}

bool ConcurrencyController::HasEdge(TxnSlot from, TxnSlot to) const {
  return nodes_[from].out.count(to) > 0;
}

bool ConcurrencyController::GraphIsAcyclic() const {
  // Kahn's algorithm over live nodes.
  std::vector<uint32_t> indegree(batch_size_, 0);
  uint32_t live = 0;
  for (TxnSlot s = 0; s < batch_size_; ++s) {
    if (nodes_[s].state == SlotState::kIdle && nodes_[s].records.empty()) {
      continue;
    }
    ++live;
    indegree[s] = static_cast<uint32_t>(nodes_[s].in.size());
  }
  std::deque<TxnSlot> ready;
  for (TxnSlot s = 0; s < batch_size_; ++s) {
    if ((nodes_[s].state != SlotState::kIdle || !nodes_[s].records.empty()) &&
        indegree[s] == 0) {
      ready.push_back(s);
    }
  }
  uint32_t seen = 0;
  while (!ready.empty()) {
    TxnSlot s = ready.front();
    ready.pop_front();
    ++seen;
    for (TxnSlot t : nodes_[s].out) {
      if (--indegree[t] == 0) ready.push_back(t);
    }
  }
  return seen == live;
}

// --- Executor-facing interface ----------------------------------------------

uint32_t ConcurrencyController::Begin(TxnSlot slot) {
  std::lock_guard<std::mutex> lk(mu_);
  Node& node = nodes_[slot];
  assert(node.state == SlotState::kIdle);
  node.state = SlotState::kRunning;
  return node.incarnation;
}

Result<Value> ConcurrencyController::Read(TxnSlot slot, uint32_t incarnation,
                                          const Key& key) {
  std::lock_guard<std::mutex> lk(mu_);
  Node& node = nodes_[slot];
  if (node.incarnation != incarnation || node.state != SlotState::kRunning) {
    return Status::Aborted("stale incarnation");
  }

  // Section 8.3: if the node already holds a record for the key, the result
  // is retrieved directly (read-your-writes, then repeat-your-reads).
  auto it = node.records.find(key);
  if (it != node.records.end()) {
    const KeyRecord& rec = it->second;
    if (rec.has_write) return rec.last_write;
    if (rec.has_read) return rec.first_read;
  }

  std::optional<TxnSlot> source = PlanRead(slot, key);
  if (!source.has_value()) {
    // Section 8.4: no consistent source exists. Abort the acting
    // transaction (and anything that consumed its writes).
    AbortTxn(slot, obs::AbortReason::kReadWriteConflict);
    return Status::Aborted("read conflict on key " + key);
  }

  Value value;
  if (*source == kRootSlot) {
    value = RootValue(key);
  } else {
    const KeyRecord& src_rec = nodes_[*source].records.at(key);
    assert(src_rec.has_write);
    value = src_rec.last_write;
  }

  KeyRecord& rec = node.records[key];
  if (!rec.has_read && !rec.has_write) {
    key_index_[key].readers.push_back(slot);
  }
  rec.has_read = true;
  rec.first_read = value;
  rec.read_from = *source;
  return value;
}

std::optional<TxnSlot> ConcurrencyController::PlanRead(TxnSlot slot,
                                                       const Key& key) {
  KeyIndex& index = key_index_[key];

  // Candidate sources: writers from most- to least-recent, then the root.
  std::vector<TxnSlot> candidates;
  for (auto it = index.writers.rbegin(); it != index.writers.rend(); ++it) {
    if (*it != slot) candidates.push_back(*it);
  }
  candidates.push_back(kRootSlot);

  // Ordering constraints must be *stable*: a transitive path through an
  // uncommitted third party disappears if that node aborts, silently
  // dropping the constraint. Therefore every required ordering between two
  // live transactions is materialized as a direct edge; orderings
  // involving committed transactions are immutable facts of the
  // serialization prefix and need no edge.
  for (TxnSlot source : candidates) {
    if (source != kRootSlot && HasPath(slot, source)) {
      // The source would have to precede the reader but is already ordered
      // after it; try an older writer (Figure 10a fallback).
      continue;
    }

    std::vector<std::pair<TxnSlot, TxnSlot>> applied;
    auto rollback = [&]() {
      for (auto& [a, b] : applied) {
        nodes_[a].out.erase(b);
        nodes_[b].in.erase(a);
      }
    };
    // Ensures a-before-b durably. Returns false when impossible.
    auto ensure_order = [&](TxnSlot a, TxnSlot b) {
      if (a == b) return true;
      const bool a_committed = nodes_[a].state == SlotState::kCommitted;
      const bool b_committed = nodes_[b].state == SlotState::kCommitted;
      if (a_committed && b_committed) {
        return nodes_[a].order < nodes_[b].order;
      }
      if (a_committed) return true;   // Commits strictly precede live txns.
      if (b_committed) return false;  // A live txn cannot precede a commit.
      if (nodes_[a].out.count(b)) return true;  // Direct edge exists.
      if (HasPath(b, a)) return false;          // Would create a cycle.
      AddEdge(a, b);
      applied.emplace_back(a, b);
      return true;
    };

    bool feasible = true;
    for (TxnSlot v : index.writers) {
      if (v == slot || v == source) continue;
      // Every other writer must be ordered before the source (paper
      // section 8.2, "make all other write nodes contain a path to u") or
      // after the reader.
      if (source != kRootSlot && ensure_order(v, source)) continue;
      if (ensure_order(slot, v)) continue;
      feasible = false;
      break;
    }
    if (feasible && source != kRootSlot) {
      feasible = ensure_order(source, slot);
    }
    if (!feasible) {
      rollback();
      continue;
    }
    return source;
  }
  return std::nullopt;
}

Status ConcurrencyController::Write(TxnSlot slot, uint32_t incarnation,
                                    const Key& key, Value value) {
  std::lock_guard<std::mutex> lk(mu_);
  Node& node = nodes_[slot];
  if (node.incarnation != incarnation || node.state != SlotState::kRunning) {
    return Status::Aborted("stale incarnation");
  }

  KeyIndex& index = key_index_[key];
  auto it = node.records.find(key);
  const bool had_write = (it != node.records.end()) && it->second.has_write;

  // An abort of another transaction can cascade back to the acting one
  // (the victim may be upstream of a value this transaction consumed on a
  // different key). Every abort below is followed by this liveness check.
  auto self_alive = [&]() {
    return nodes_[slot].incarnation == incarnation &&
           nodes_[slot].state == SlotState::kRunning;
  };

  if (had_write) {
    // Re-write of a key whose previous value may already have been consumed
    // downstream (Figure 10b / Table 1 time 5): cascade-abort every reader
    // of this transaction's value on the key; the writer itself survives
    // unless it transitively consumed a victim's value.
    std::set<TxnSlot> victims;
    for (TxnSlot r : index.readers) {
      if (r == slot) continue;
      const Node& rn = nodes_[r];
      auto rit = rn.records.find(key);
      if (rit != rn.records.end() && rit->second.has_read &&
          rit->second.read_from == slot) {
        victims.insert(r);
        CollectValueDependents(r, victims);
      }
    }
    victims.erase(slot);
    ResetSlots(victims, kRootSlot, obs::AbortReason::kCascadeInvalidation);
    if (!self_alive()) return Status::Aborted("aborted during rewrite");
    auto self = node.records.find(key);
    self->second.last_write = value;
    // Refresh recency: move this writer to the back of the writer list.
    EraseFromVector(index.writers, slot);
    index.writers.push_back(slot);
    return Status::OK();
  }

  // First write to the key by this transaction. (A prior read by the same
  // transaction already ordered it after its source — nothing extra to do.)
  //
  // Section 8.2 (Figure 9a): order existing readers of the key before the
  // new writer so their reads stay valid. A reader already ordered *after*
  // us observed a value that our write now invalidates -> abort it. The
  // scan runs before the write registers so a cascading self-abort leaves
  // no half-registered state.
  std::vector<TxnSlot> snapshot(index.readers);
  for (TxnSlot r : snapshot) {
    if (r == slot) continue;
    Node& rn = nodes_[r];
    if (rn.state == SlotState::kIdle) continue;      // Stale entry.
    if (rn.state == SlotState::kCommitted) continue;  // Already before us.
    auto rit = rn.records.find(key);
    if (rit == rn.records.end() || !rit->second.has_read) continue;
    if (rit->second.read_from == slot) continue;  // Reads our own value.
    if (HasPath(slot, r)) {
      // Reader is ordered after us but read an older value: its read is no
      // longer the latest-preceding write. Abort the reader (cascading from
      // the acting writer, section 8.4 case 2).
      AbortTxn(r, obs::AbortReason::kCascadeInvalidation);
      if (!self_alive()) return Status::Aborted("aborted during write");
      continue;
    }
    // Durable reader-before-writer constraint: always a direct edge (a
    // transitive path could vanish if an intermediate transaction aborts).
    AddEdge(r, slot);
  }

  KeyRecord& rec = node.records[key];
  rec.has_write = true;
  rec.last_write = value;
  index.writers.push_back(slot);
  return Status::OK();
}

void ConcurrencyController::Emit(TxnSlot slot, uint32_t incarnation,
                                 Value value) {
  std::lock_guard<std::mutex> lk(mu_);
  Node& node = nodes_[slot];
  if (node.incarnation != incarnation || node.state != SlotState::kRunning) {
    return;
  }
  node.emitted.push_back(value);
}

Status ConcurrencyController::Finish(TxnSlot slot, uint32_t incarnation) {
  std::lock_guard<std::mutex> lk(mu_);
  Node& node = nodes_[slot];
  if (node.incarnation != incarnation ||
      (node.state != SlotState::kRunning)) {
    return Status::Aborted("stale incarnation");
  }
  node.state = SlotState::kFinished;
  TryCommit(slot);
  return Status::OK();
}

// --- Abort machinery ---------------------------------------------------------

void ConcurrencyController::CollectValueDependents(
    TxnSlot slot, std::set<TxnSlot>& out) const {
  // Every live node that read any value produced by `slot`, transitively.
  std::vector<TxnSlot> frontier{slot};
  while (!frontier.empty()) {
    TxnSlot cur = frontier.back();
    frontier.pop_back();
    for (TxnSlot succ : nodes_[cur].out) {
      if (out.count(succ)) continue;
      const Node& sn = nodes_[succ];
      bool reads_from_cur = false;
      for (const auto& [key, rec] : sn.records) {
        if (rec.has_read && rec.read_from == cur) {
          reads_from_cur = true;
          break;
        }
      }
      if (reads_from_cur) {
        out.insert(succ);
        frontier.push_back(succ);
      }
    }
  }
}

void ConcurrencyController::AbortTxn(TxnSlot slot, obs::AbortReason reason) {
  std::set<TxnSlot> victims{slot};
  CollectValueDependents(slot, victims);
  ResetSlots(victims, slot, reason);
}

void ConcurrencyController::ResetSlots(const std::set<TxnSlot>& victims,
                                       TxnSlot initiator,
                                       obs::AbortReason reason) {
  // Transactions that were blocked on a victim's edges may become
  // committable once those edges disappear; collect them before resetting.
  std::set<TxnSlot> wake;
  for (TxnSlot v : victims) {
    for (TxnSlot succ : nodes_[v].out) wake.insert(succ);
  }
  for (TxnSlot v : victims) {
    if (nodes_[v].state == SlotState::kRunning ||
        nodes_[v].state == SlotState::kFinished) {
      ++total_aborts_;
      ResetSlot(v, v == initiator
                       ? reason
                       : obs::AbortReason::kCascadeInvalidation);
    }
  }
  for (TxnSlot w : wake) {
    if (victims.count(w)) continue;
    if (nodes_[w].state == SlotState::kFinished) TryCommit(w);
  }
}

void ConcurrencyController::ResetSlot(TxnSlot slot, obs::AbortReason reason) {
  Node& node = nodes_[slot];
  assert(node.state != SlotState::kCommitted);
  RemoveNodeEdges(slot);
  for (const auto& [key, rec] : node.records) {
    auto it = key_index_.find(key);
    if (it != key_index_.end()) {
      EraseFromVector(it->second.writers, slot);
      EraseFromVector(it->second.readers, slot);
    }
  }
  node.records.clear();
  node.emitted.clear();
  node.state = SlotState::kIdle;
  ++node.incarnation;
  ++node.re_executions;
  if (on_abort_) on_abort_(slot, reason);
}

// --- Commit machinery --------------------------------------------------------

void ConcurrencyController::TryCommit(TxnSlot slot) {
  std::deque<TxnSlot> worklist{slot};
  while (!worklist.empty()) {
    TxnSlot cur = worklist.front();
    worklist.pop_front();
    Node& node = nodes_[cur];
    if (node.state != SlotState::kFinished) continue;

    bool deps_committed = true;
    for (TxnSlot dep : node.in) {
      if (nodes_[dep].state != SlotState::kCommitted) {
        deps_committed = false;
        break;
      }
    }
    if (!deps_committed) continue;

    // Fix residual write-write order against already-committed writers
    // (section 7.1: "a dependency is established based on the commit times
    // of these transactions").
    for (const auto& [key, rec] : node.records) {
      if (!rec.has_write) continue;
      auto it = key_index_.find(key);
      if (it == key_index_.end()) continue;
      for (TxnSlot other : it->second.writers) {
        if (other == cur) continue;
        if (nodes_[other].state != SlotState::kCommitted) continue;
        if (HasPath(other, cur) || HasPath(cur, other)) continue;
        AddEdge(other, cur);
      }
    }

    node.state = SlotState::kCommitted;
    node.order = static_cast<int>(order_.size());
    order_.push_back(cur);
    ++committed_count_;

    for (TxnSlot succ : node.out) {
      if (nodes_[succ].state == SlotState::kFinished) {
        worklist.push_back(succ);
      }
    }
  }
}

// --- Batch results -------------------------------------------------------------

TxnRecord ConcurrencyController::ExtractRecord(TxnSlot slot) const {
  const Node& node = nodes_[slot];
  TxnRecord out;
  out.re_executions = node.re_executions;
  out.order = node.order;
  out.emitted = node.emitted;
  for (const auto& [key, rec] : node.records) {
    if (rec.has_read) {
      out.rw_set.reads.push_back(
          txn::Operation{txn::OpType::kRead, key, rec.first_read});
    }
    if (rec.has_write) {
      out.rw_set.writes.push_back(
          txn::Operation{txn::OpType::kWrite, key, rec.last_write});
    }
  }
  return out;
}

storage::WriteBatch ConcurrencyController::FinalWrites() const {
  std::unordered_map<Key, Value> finals;
  for (TxnSlot slot : order_) {
    const Node& node = nodes_[slot];
    for (const auto& [key, rec] : node.records) {
      if (rec.has_write) finals[key] = rec.last_write;
    }
  }
  storage::WriteBatch batch;
  // Deterministic application order.
  std::vector<const std::pair<const Key, Value>*> entries;
  entries.reserve(finals.size());
  for (const auto& kv : finals) entries.push_back(&kv);
  std::sort(entries.begin(), entries.end(),
            [](const auto* a, const auto* b) { return a->first < b->first; });
  for (const auto* kv : entries) batch.Put(kv->first, kv->second);
  return batch;
}

}  // namespace thunderbolt::ce
