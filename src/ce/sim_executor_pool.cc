#include "ce/sim_executor_pool.h"

#include <algorithm>
#include <cassert>
#include <deque>
#include <queue>
#include <string>

namespace thunderbolt::ce {

namespace {

/// One logged operation result from a previous partial run.
struct LoggedOp {
  bool is_read;
  Key key;
  Value value;  // Read result, or value written.
};

/// Status code used internally to unwind contract execution after the
/// single new operation of a step has been performed.
constexpr StatusCode kPauseCode = StatusCode::kUnavailable;

bool IsPause(const Status& s) { return s.code() == kPauseCode; }

/// Contract context that replays `log` and then performs exactly one new
/// engine operation before pausing (see file header of
/// sim_executor_pool.h).
class SteppingContext final : public contract::ContractContext {
 public:
  SteppingContext(BatchEngine* engine, TxnSlot slot, uint32_t incarnation,
                  std::vector<LoggedOp>* log)
      : engine_(engine), slot_(slot), incarnation_(incarnation), log_(log) {}

  Result<Value> Read(const Key& key) override {
    if (pos_ < log_->size()) {
      const LoggedOp& op = (*log_)[pos_++];
      // Determinism check: the contract must re-issue the same op sequence.
      if (!op.is_read || op.key != key) {
        return Status::Internal("nondeterministic contract replay (read)");
      }
      return op.value;
    }
    if (did_new_op_) {
      // Should not happen: we pause immediately after the new op.
      return Status(kPauseCode, "step boundary");
    }
    did_new_op_ = true;
    Result<Value> r = engine_->Read(slot_, incarnation_, key);
    if (!r.ok()) return r.status();
    log_->push_back(LoggedOp{true, key, *r});
    return Status(kPauseCode, "step boundary");
  }

  Status Write(const Key& key, Value value) override {
    if (pos_ < log_->size()) {
      const LoggedOp& op = (*log_)[pos_++];
      if (op.is_read || op.key != key || op.value != value) {
        return Status::Internal("nondeterministic contract replay (write)");
      }
      return Status::OK();
    }
    if (did_new_op_) {
      return Status(kPauseCode, "step boundary");
    }
    did_new_op_ = true;
    Status s = engine_->Write(slot_, incarnation_, key, value);
    if (!s.ok()) return s;
    log_->push_back(LoggedOp{false, key, value});
    return Status(kPauseCode, "step boundary");
  }

  void EmitResult(Value value) override {
    // Buffer locally; only the final completing run forwards emits, so
    // replays do not duplicate them.
    emits_.push_back(value);
  }

  bool did_new_op() const { return did_new_op_; }
  const std::vector<Value>& emits() const { return emits_; }

 private:
  BatchEngine* engine_;
  TxnSlot slot_;
  uint32_t incarnation_;
  std::vector<LoggedOp>* log_;
  size_t pos_ = 0;
  bool did_new_op_ = false;
  std::vector<Value> emits_;
};

/// Per-transaction execution state.
struct TxnRun {
  std::vector<LoggedOp> log;
  uint32_t incarnation = 0;
  bool started = false;
  SimTime first_started_at = 0;
};

/// An executor currently advancing a transaction; ordered by next free time.
struct BusyExecutor {
  SimTime free_at = 0;
  uint32_t id = 0;
  TxnSlot slot = 0;
  bool operator>(const BusyExecutor& other) const {
    if (free_at != other.free_at) return free_at > other.free_at;
    return id > other.id;
  }
};

/// An executor with no transaction assigned.
struct IdleExecutor {
  SimTime free_at = 0;
  uint32_t id = 0;
  bool operator>(const IdleExecutor& other) const {
    if (free_at != other.free_at) return free_at > other.free_at;
    return id > other.id;
  }
};

enum class StepOutcome { kPaused, kFinished, kAborted, kFailed };

}  // namespace

Result<BatchExecutionResult> SimExecutorPool::Run(
    BatchEngine& engine, const contract::Registry& registry,
    const std::vector<txn::Transaction>& batch, SimTime start_time) {
  const uint32_t n = static_cast<uint32_t>(batch.size());
  if (n == 0) {
    BatchExecutionResult empty;
    empty.start_time = start_time;
    return empty;
  }
  if (num_executors_ == 0) {
    return Status::InvalidArgument("executor pool needs >= 1 executor");
  }

  std::vector<TxnRun> runs(n);
  // Transactions waiting for an executor, with the virtual time at which
  // they became available.
  std::deque<std::pair<TxnSlot, SimTime>> ready;
  for (TxnSlot s = 0; s < n; ++s) ready.emplace_back(s, start_time);

  // Restarts requested by the engine (self-aborts and cascading aborts).
  // The abort callback is the single re-queue authority. `queued` also
  // covers slots currently pinned to an executor, so a cascade abort of a
  // transaction another executor is running does not double-queue it: the
  // running executor observes the Aborted status and releases the slot,
  // which the callback already re-queued.
  std::vector<bool> queued(n, true);
  std::vector<bool> pinned(n, false);
  std::vector<uint32_t> consecutive_restarts(n, 0);
  std::vector<bool> needs_backoff(n, false);
  SimTime abort_event_time = start_time;

  // Observability: events carry virtual timestamps, so traces are
  // byte-deterministic per seed (determinism_test pins this). `tracer` is
  // the no-op NullTracer unless SetObs installed a real sink.
  obs::Tracer& tracer = *obs_.tracer;
  const bool tracing = tracer.enabled();
  std::array<uint64_t, obs::kNumAbortReasons> reason_counts{};
  // Executor currently stepping (the lane restart events land on) and the
  // last executor to run each slot (the lane its lifecycle span lands on).
  uint32_t acting_executor = 0;
  std::vector<uint32_t> last_executor(n, 0);
  // Per-transaction livelock bound (the Run contract): one slot restarted
  // more than kMaxRestartsPerTxn * n times *consecutively* fails the batch.
  // consecutive_restarts resets when the slot finishes, so an abort
  // ping-pong that keeps finishing-then-invalidating evades it; the global
  // kMaxRestartFactor cap below backstops that pattern.
  const uint64_t max_restarts_per_txn = kMaxRestartsPerTxn * n;
  TxnSlot livelocked_slot = kRootSlot;
  engine.SetAbortCallback([&](TxnSlot slot, obs::AbortReason reason) {
    runs[slot].log.clear();
    runs[slot].started = false;
    ++consecutive_restarts[slot];
    needs_backoff[slot] = true;
    ++reason_counts[static_cast<size_t>(reason)];
    if (tracing) {
      obs::TraceEvent ev;
      ev.kind = obs::EventKind::kTxnRestart;
      ev.reason = reason;
      ev.pid = obs_.pid;
      ev.tid = acting_executor;
      ev.ts_us = abort_event_time;
      ev.txn = batch[slot].id;
      ev.a = consecutive_restarts[slot];
      tracer.Record(ev);
    }
    if (consecutive_restarts[slot] > max_restarts_per_txn &&
        livelocked_slot == kRootSlot) {
      livelocked_slot = slot;
    }
    if (!queued[slot] && !pinned[slot]) {
      queued[slot] = true;
      ready.emplace_back(slot, abort_event_time);
    }
    // Pinned slots restart in place on their executor: the cleared log and
    // bumped incarnation make the next step Begin() afresh.
  });

  std::priority_queue<BusyExecutor, std::vector<BusyExecutor>, std::greater<>>
      busy;
  std::priority_queue<IdleExecutor, std::vector<IdleExecutor>, std::greater<>>
      idle;
  for (uint32_t e = 0; e < num_executors_; ++e) {
    idle.push(IdleExecutor{start_time, e});
  }

  SimTime engine_serial_free = start_time;
  std::vector<SimTime> commit_time(n, 0);
  // Per-phase accounting: virtual time each slot spent actually executing
  // steps vs parked in restart penalties/backoff (queue wait falls out of
  // first_started_at at the end).
  std::vector<SimTime> exec_us(n, 0);
  std::vector<SimTime> backoff_us(n, 0);
  // Admission-pressure signals for the pool.sim.* gauges: peak ready-queue
  // depth and average busy-executor occupancy across scheduler steps.
  size_t max_queue_depth = 0;
  uint64_t busy_samples_sum = 0;
  uint64_t scheduler_steps = 0;
  // Deterministic per-slot jittered exponential backoff (see
  // ExecutionCostModel::restart_cost).
  auto restart_backoff = [&](TxnSlot slot) {
    uint32_t exp = std::min(consecutive_restarts[slot],
                            costs_.restart_backoff_cap);
    uint64_t jitter = 1 + ((slot * 2654435761u) >> 28) % 8;  // 1..8
    return costs_.restart_cost * jitter * (uint64_t{1} << exp);
  };
  uint32_t last_committed = 0;
  BatchExecutionResult result;
  result.start_time = start_time;
  SimTime last_event = start_time;
  const uint64_t max_restarts = kMaxRestartFactor * n;

  // Hands waiting transactions to idle executors.
  auto assign = [&]() {
    if (ready.size() > max_queue_depth) max_queue_depth = ready.size();
    while (!ready.empty() && !idle.empty()) {
      auto [slot, available_at] = ready.front();
      ready.pop_front();
      queued[slot] = false;
      pinned[slot] = true;
      IdleExecutor ex = idle.top();
      idle.pop();
      busy.push(
          BusyExecutor{std::max(ex.free_at, available_at), ex.id, slot});
    }
  };

  // Advance `slot` by one step at virtual time `now`. Returns the outcome
  // and the consumed virtual cost via `cost`.
  auto step = [&](TxnSlot slot, SimTime now, SimTime* cost) -> StepOutcome {
    TxnRun& run = runs[slot];
    *cost = 0;
    if (!run.started) {
      run.incarnation = engine.Begin(slot);
      run.started = true;
      if (run.first_started_at == 0) run.first_started_at = now;
      *cost += costs_.start_cost;
    }
    SteppingContext ctx(&engine, slot, run.incarnation, &run.log);
    Status s = registry.Execute(batch[slot], ctx);
    if (ctx.did_new_op()) *cost += costs_.op_cost;

    if (IsPause(s)) return StepOutcome::kPaused;
    if (s.IsAborted()) return StepOutcome::kAborted;
    if (!s.ok()) return StepOutcome::kFailed;

    // Contract completed: forward emitted results and finalize.
    for (Value v : ctx.emits()) engine.Emit(slot, run.incarnation, v);
    Status fin = engine.Finish(slot, run.incarnation);
    if (fin.IsAborted()) return StepOutcome::kAborted;
    return StepOutcome::kFinished;
  };

  // The per-txn consecutive-restart bound tripped: surface it as its own
  // abort reason (trace + metrics) before failing the batch.
  auto report_restart_bound = [&](TxnSlot slot) {
    ++reason_counts[static_cast<size_t>(obs::AbortReason::kRestartBound)];
    if (tracing) {
      obs::TraceEvent ev;
      ev.kind = obs::EventKind::kTxnRestart;
      ev.reason = obs::AbortReason::kRestartBound;
      ev.pid = obs_.pid;
      ev.tid = acting_executor;
      ev.ts_us = abort_event_time;
      ev.txn = batch[slot].id;
      ev.a = consecutive_restarts[slot];
      tracer.Record(ev);
    }
    if (obs_.metrics != nullptr) {
      obs_.metrics
          ->GetCounter("pool.sim.restart_reason.restart_bound")
          .Inc();
    }
  };

  assign();
  while (!engine.AllCommitted()) {
    if (livelocked_slot != kRootSlot) {
      report_restart_bound(livelocked_slot);
      return Status::Internal(
          "executor pool livelock: txn slot " +
          std::to_string(livelocked_slot) + " restarted " +
          std::to_string(consecutive_restarts[livelocked_slot]) +
          " times consecutively (per-txn bound " +
          std::to_string(max_restarts_per_txn) + ")");
    }
    if (engine.total_aborts() > max_restarts) {
      return Status::Internal("executor pool livelock: " +
                              std::to_string(engine.total_aborts()) +
                              " restarts for batch of " + std::to_string(n));
    }
    if (busy.empty()) {
      // All remaining transactions should be Finished and commit via
      // dependency cascades inside the engine; reaching here with an
      // incomplete batch means the engine's graph logic is broken.
      return Status::Internal(
          "executor pool stalled: no runnable transactions but batch "
          "incomplete (" +
          std::to_string(engine.committed_count()) + "/" + std::to_string(n) +
          " committed)");
    }

    busy_samples_sum += busy.size();
    ++scheduler_steps;
    BusyExecutor ex = busy.top();
    busy.pop();
    const TxnSlot slot = ex.slot;

    // Apply pending restart backoff before re-running an aborted slot.
    if (needs_backoff[slot]) {
      needs_backoff[slot] = false;
      const SimTime pause = restart_backoff(slot);
      backoff_us[slot] += pause;
      busy.push(BusyExecutor{ex.free_at + pause, ex.id, slot});
      continue;
    }

    // Serialize the engine critical section across executors.
    SimTime start = std::max(ex.free_at, engine_serial_free);
    abort_event_time = start;
    acting_executor = ex.id;
    last_executor[slot] = ex.id;
    SimTime cost = 0;
    StepOutcome outcome = step(slot, start, &cost);
    SimTime serial_cost = cost > 0 ? costs_.engine_serial_cost : 0;
    engine_serial_free = start + serial_cost;
    SimTime done = start + serial_cost + cost;
    exec_us[slot] += serial_cost + cost;

    switch (outcome) {
      case StepOutcome::kPaused:
        busy.push(BusyExecutor{done, ex.id, slot});
        break;
      case StepOutcome::kAborted:
        // Restart in place on the same executor (the abort callback
        // already cleared the run state and flagged backoff; defensively
        // clear again for engines that self-abort without the callback).
        runs[slot].log.clear();
        runs[slot].started = false;
        done += costs_.restart_cost;
        backoff_us[slot] += costs_.restart_cost;
        busy.push(BusyExecutor{done, ex.id, slot});
        break;
      case StepOutcome::kFailed: {
        // Contract-level error (bad arguments etc.); the engine still
        // finalizes the operations performed so far to keep the batch
        // deterministic across replicas.
        Status fin = engine.Finish(slot, runs[slot].incarnation);
        if (fin.IsAborted()) {
          runs[slot].log.clear();
          runs[slot].started = false;
          done += costs_.restart_cost;
          backoff_us[slot] += costs_.restart_cost;
          busy.push(BusyExecutor{done, ex.id, slot});
          break;
        }
        pinned[slot] = false;
        idle.push(IdleExecutor{done, ex.id});
        break;
      }
      case StepOutcome::kFinished:
        consecutive_restarts[slot] = 0;
        pinned[slot] = false;
        idle.push(IdleExecutor{done, ex.id});
        break;
    }
    last_event = std::max(last_event, done);

    // Record commit times for transactions committed by this step.
    const std::vector<TxnSlot>& order = engine.SerializationOrder();
    for (; last_committed < order.size(); ++last_committed) {
      const TxnSlot committed_slot = order[last_committed];
      commit_time[committed_slot] = done;
      if (tracing) {
        obs::TraceEvent ev;
        ev.kind = obs::EventKind::kTxnCommit;
        ev.pid = obs_.pid;
        ev.tid = ex.id;
        ev.ts_us = done;
        ev.txn = batch[committed_slot].id;
        ev.a = runs[committed_slot].incarnation;
        ev.b = last_committed;
        tracer.Record(ev);
      }
    }

    assign();
  }

  result.order = engine.SerializationOrder();
  result.total_aborts = engine.total_aborts();
  result.final_writes = engine.FinalWrites();
  result.abort_reasons = reason_counts;
  result.records.reserve(n);
  for (TxnSlot s = 0; s < n; ++s) {
    result.records.push_back(engine.ExtractRecord(s));
    SimTime submitted = batch[s].submit_time > 0 ? batch[s].submit_time
                                                 : start_time;
    SimTime committed = std::max(commit_time[s], submitted);
    result.commit_latency_us.Add(static_cast<double>(committed - submitted));
    // Phase decomposition: one sample per committed transaction in each
    // pool-side phase (zeros included so counts line up across phases).
    const SimTime first_start = std::max(runs[s].first_started_at, submitted);
    result.phases[obs::Phase::kQueueWait].Add(
        static_cast<double>(first_start - submitted));
    result.phases[obs::Phase::kExecute].Add(static_cast<double>(exec_us[s]));
    result.phases[obs::Phase::kRestartBackoff].Add(
        static_cast<double>(backoff_us[s]));
    if (tracing) {
      // One lifecycle span per committed transaction: first admission on
      // an executor through the step whose cascade committed it.
      obs::TraceEvent ev;
      ev.kind = obs::EventKind::kTxnSpan;
      ev.pid = obs_.pid;
      ev.tid = last_executor[s];
      ev.ts_us = runs[s].first_started_at;
      ev.dur_us = commit_time[s] > runs[s].first_started_at
                      ? commit_time[s] - runs[s].first_started_at
                      : 0;
      ev.txn = batch[s].id;
      ev.a = result.records[s].re_executions;
      ev.b = static_cast<uint64_t>(result.records[s].order);
      // Root of the transaction's causal tree; the cluster's cross-shard
      // hold spans hang under the same trace_id.
      ev.trace_id = batch[s].id;
      ev.span_id = 1;
      tracer.Record(ev);
    }
  }
  result.duration = last_event - start_time;
  if (tracing) {
    obs::TraceEvent ev;
    ev.kind = obs::EventKind::kBatchSpan;
    ev.pid = obs_.pid;
    ev.tid = num_executors_;  // Dedicated lane above the executor lanes.
    ev.ts_us = start_time;
    ev.dur_us = result.duration;
    ev.a = n;
    ev.b = result.total_aborts;
    tracer.Record(ev);
  }
  if (obs_.metrics != nullptr) {
    obs::MetricsRegistry& m = *obs_.metrics;
    m.GetCounter("pool.sim.batches").Inc();
    m.GetCounter("pool.sim.txns").Inc(n);
    m.GetCounter("pool.sim.restarts").Inc(result.total_aborts);
    for (size_t r = 0; r < obs::kNumAbortReasons; ++r) {
      if (reason_counts[r] == 0) continue;
      m.GetCounter(std::string("pool.sim.restart_reason.") +
                   obs::AbortReasonName(static_cast<obs::AbortReason>(r)))
          .Inc(reason_counts[r]);
    }
    m.GetHistogram("pool.sim.commit_latency_us")
        .Merge(result.commit_latency_us);
    obs::MergeIntoRegistry(m, result.phases);
    m.GetGauge("pool.sim.queue_depth")
        .Set(static_cast<double>(max_queue_depth));
    m.GetGauge("pool.sim.wave_occupancy")
        .Set(scheduler_steps > 0
                 ? static_cast<double>(busy_samples_sum) /
                       (static_cast<double>(scheduler_steps) * num_executors_)
                 : 0.0);
  }
  return result;
}

}  // namespace thunderbolt::ce
