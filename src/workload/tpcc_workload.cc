#include "workload/tpcc_workload.h"

#include <algorithm>
#include <set>

#include "contract/tpcc_lite.h"

namespace thunderbolt::workload {

namespace {

storage::Value ReadOrZero(const storage::KVStore& store,
                          const std::string& key) {
  return store.GetOrDefault(key, 0);
}

/// NewOrder needs kTpccOrderItems *distinct* items, so the pool must be at
/// least that large (a smaller value would hang the duplicate-slide loop).
WorkloadOptions ClampTpccOptions(WorkloadOptions options) {
  options.num_items = std::max<uint32_t>(
      options.num_items, static_cast<uint32_t>(contract::kTpccOrderItems));
  return options;
}

}  // namespace

TpccLiteWorkload::TpccLiteWorkload(const WorkloadOptions& options)
    : Workload(ClampTpccOptions(options).num_shards),
      options_(ClampTpccOptions(options)),
      rng_(options_.seed),
      num_customers_(static_cast<uint64_t>(options_.num_warehouses) *
                     options_.districts_per_warehouse *
                     options_.customers_per_district),
      customer_zipf_(num_customers_, options_.theta),
      item_zipf_(options_.num_items, options_.theta) {
  RebuildShardBuckets();
}

void TpccLiteWorkload::RebuildShardBuckets() {
  shard_districts_.assign(options_.num_shards, {});
  uint64_t num_districts = static_cast<uint64_t>(options_.num_warehouses) *
                           options_.districts_per_warehouse;
  for (uint64_t i = 0; i < num_districts; ++i) {
    uint32_t w = static_cast<uint32_t>(i / options_.districts_per_warehouse);
    uint32_t d = static_cast<uint32_t>(i % options_.districts_per_warehouse);
    ShardId s = mapper_.ShardOfAccount(DistrictName(w, d));
    shard_districts_[s].push_back(i);
  }
}

std::string TpccLiteWorkload::PlacementHint(const std::string& account) const {
  // Warehouse-rooted entities ("w3", "w3.d5", "w3.d5.c12") fold onto their
  // warehouse prefix; anything else (items) groups with itself.
  if (account.empty() || account[0] != 'w' || account.size() < 2 ||
      account[1] < '0' || account[1] > '9') {
    return account;
  }
  size_t dot = account.find('.');
  if (dot == std::string::npos) return account;
  return account.substr(0, dot);
}

std::string TpccLiteWorkload::WarehouseName(uint32_t w) {
  return "w" + std::to_string(w);
}

std::string TpccLiteWorkload::DistrictName(uint32_t w, uint32_t d) {
  return WarehouseName(w) + ".d" + std::to_string(d);
}

std::string TpccLiteWorkload::CustomerName(uint32_t w, uint32_t d,
                                           uint32_t c) {
  return DistrictName(w, d) + ".c" + std::to_string(c);
}

std::string TpccLiteWorkload::ItemName(uint32_t i) {
  return "item" + std::to_string(i);
}

void TpccLiteWorkload::InitStore(storage::KVStore* store) const {
  store->Reserve(store->size() + options_.num_warehouses +
                 2 * num_customers_ + options_.num_items);
  for (uint32_t w = 0; w < options_.num_warehouses; ++w) {
    store->Put(WarehouseName(w) + "/ytd", 0);
    for (uint32_t d = 0; d < options_.districts_per_warehouse; ++d) {
      std::string district = DistrictName(w, d);
      store->Put(district + "/ytd", 0);
      store->Put(district + "/next_oid", kInitialOrderId);
      for (uint32_t c = 0; c < options_.customers_per_district; ++c) {
        std::string customer = CustomerName(w, d, c);
        store->Put(customer + "/balance", kInitialBalance);
        if (HasBadCredit(w, d, c)) store->Put(customer + "/credit", 1);
      }
    }
  }
  for (uint32_t i = 0; i < options_.num_items; ++i) {
    store->Put(ItemName(i) + "/stock", kInitialStock);
  }
}

void TpccLiteWorkload::CustomerAt(uint64_t rank, uint32_t* w, uint32_t* d,
                                  uint32_t* c) const {
  *c = static_cast<uint32_t>(rank % options_.customers_per_district);
  uint64_t district = rank / options_.customers_per_district;
  *d = static_cast<uint32_t>(district % options_.districts_per_warehouse);
  *w = static_cast<uint32_t>(district / options_.districts_per_warehouse);
}

txn::Transaction TpccLiteWorkload::MakePayment(uint32_t w, uint32_t d,
                                               uint32_t c) {
  return MakeRemotePayment(w, d, w, d, c);
}

txn::Transaction TpccLiteWorkload::MakeRemotePayment(uint32_t w, uint32_t d,
                                                     uint32_t cw, uint32_t cd,
                                                     uint32_t c) {
  txn::Transaction tx;
  tx.id = next_txn_id_++;
  tx.contract = contract::kTpccPayment;
  tx.accounts = {WarehouseName(w), DistrictName(w, d),
                 CustomerName(cw, cd, c)};
  tx.params.push_back(
      static_cast<storage::Value>(rng_.NextRange(1, kMaxPaymentAmount)));
  return tx;
}

txn::Transaction TpccLiteWorkload::MakeNewOrder(uint32_t w, uint32_t d) {
  txn::Transaction tx;
  tx.id = next_txn_id_++;
  tx.contract = contract::kTpccNewOrder;
  tx.accounts.push_back(DistrictName(w, d));
  // Distinct items, Zipfian-hot; duplicates slide to the next item id so a
  // tiny item pool still yields kTpccOrderItems distinct accounts.
  std::set<uint64_t> picked;
  while (picked.size() < static_cast<size_t>(contract::kTpccOrderItems)) {
    uint64_t item = item_zipf_.Next(rng_);
    while (picked.count(item) != 0) item = (item + 1) % options_.num_items;
    picked.insert(item);
    tx.accounts.push_back(ItemName(static_cast<uint32_t>(item)));
    tx.params.push_back(
        static_cast<storage::Value>(rng_.NextRange(1, kMaxOrderQuantity)));
  }
  return tx;
}

txn::Transaction TpccLiteWorkload::Next() {
  uint32_t w, d, c;
  CustomerAt(customer_zipf_.Next(rng_), &w, &d, &c);
  if (rng_.NextBool(options_.payment_ratio)) return MakePayment(w, d, c);
  return MakeNewOrder(w, d);
}

txn::Transaction TpccLiteWorkload::NextForShard(ShardId shard) {
  const std::vector<uint64_t>& bucket = shard_districts_[shard];
  uint32_t w, d, c;
  if (bucket.empty()) {
    CustomerAt(customer_zipf_.Next(rng_), &w, &d, &c);
  } else {
    uint64_t district = bucket[rng_.NextBounded(bucket.size())];
    w = static_cast<uint32_t>(district / options_.districts_per_warehouse);
    d = static_cast<uint32_t>(district % options_.districts_per_warehouse);
    c = static_cast<uint32_t>(
        rng_.NextBounded(options_.customers_per_district));
  }
  // Remote payment: the home district collects the payment but the credited
  // customer lives in a district of another shard. Gated on a positive
  // ratio so existing configurations keep their RNG stream.
  if (options_.num_shards > 1 && options_.cross_shard_ratio > 0 &&
      !bucket.empty() && rng_.NextBool(options_.cross_shard_ratio)) {
    ShardId other =
        static_cast<ShardId>(rng_.NextBounded(options_.num_shards - 1));
    if (other >= shard) ++other;
    const std::vector<uint64_t>& remote = shard_districts_[other];
    if (!remote.empty()) {
      uint64_t rdistrict = remote[rng_.NextBounded(remote.size())];
      uint32_t cw = static_cast<uint32_t>(rdistrict /
                                          options_.districts_per_warehouse);
      uint32_t cd = static_cast<uint32_t>(rdistrict %
                                          options_.districts_per_warehouse);
      uint32_t cc = static_cast<uint32_t>(
          rng_.NextBounded(options_.customers_per_district));
      return MakeRemotePayment(w, d, cw, cd, cc);
    }
  }
  if (rng_.NextBool(options_.payment_ratio)) return MakePayment(w, d, c);
  return MakeNewOrder(w, d);
}

ShardId TpccLiteWorkload::HomeShard(const txn::Transaction& tx) const {
  // Payments list {warehouse, district, customer}; NewOrders lead with the
  // district. The district account is the anchor in both cases.
  if (tx.contract == contract::kTpccPayment && tx.accounts.size() >= 2) {
    return mapper_.ShardOfAccount(tx.accounts[1]);
  }
  if (tx.accounts.empty()) return 0;
  return mapper_.ShardOfAccount(tx.accounts.front());
}

Status TpccLiteWorkload::CheckInvariant(
    const storage::KVStore& store) const {
  // Remote payments decouple the paying warehouse from the credited
  // customer, so the customer breakdown only balances globally.
  const bool remote_payments =
      options_.num_shards > 1 && options_.cross_shard_ratio > 0;
  storage::Value global_warehouse_ytd = 0;
  storage::Value global_district_ytd = 0;
  storage::Value global_customer_ytd = 0;
  for (uint32_t w = 0; w < options_.num_warehouses; ++w) {
    storage::Value district_ytd_sum = 0;
    storage::Value customer_ytd_sum = 0;
    for (uint32_t d = 0; d < options_.districts_per_warehouse; ++d) {
      std::string district = DistrictName(w, d);
      district_ytd_sum += ReadOrZero(store, district + "/ytd");
      storage::Value next_oid = ReadOrZero(store, district + "/next_oid");
      storage::Value order_cnt = ReadOrZero(store, district + "/order_cnt");
      if (next_oid - kInitialOrderId != order_cnt) {
        return Status::Corruption(
            "tpcc_lite: " + district + " issued " +
            std::to_string(next_oid - kInitialOrderId) +
            " order ids but recorded " + std::to_string(order_cnt) +
            " orders");
      }
      for (uint32_t c = 0; c < options_.customers_per_district; ++c) {
        customer_ytd_sum +=
            ReadOrZero(store, CustomerName(w, d, c) + "/ytd_payment");
      }
    }
    storage::Value warehouse_ytd = ReadOrZero(store, WarehouseName(w) + "/ytd");
    // Every payment flows through its paying warehouse and district
    // together, so this pair balances even with remote customers.
    if (warehouse_ytd != district_ytd_sum) {
      return Status::Corruption(
          "tpcc_lite: " + WarehouseName(w) + " ytd " +
          std::to_string(warehouse_ytd) + " != district sum " +
          std::to_string(district_ytd_sum));
    }
    if (!remote_payments && warehouse_ytd != customer_ytd_sum) {
      return Status::Corruption(
          "tpcc_lite: " + WarehouseName(w) + " ytd " +
          std::to_string(warehouse_ytd) + " != customer sum " +
          std::to_string(customer_ytd_sum));
    }
    global_warehouse_ytd += warehouse_ytd;
    global_district_ytd += district_ytd_sum;
    global_customer_ytd += customer_ytd_sum;
  }
  if (global_warehouse_ytd != global_district_ytd ||
      global_warehouse_ytd != global_customer_ytd) {
    return Status::Corruption(
        "tpcc_lite: global ytd mismatch: warehouses " +
        std::to_string(global_warehouse_ytd) + " / districts " +
        std::to_string(global_district_ytd) + " / customers " +
        std::to_string(global_customer_ytd));
  }
  for (uint32_t i = 0; i < options_.num_items; ++i) {
    storage::Value stock = ReadOrZero(store, ItemName(i) + "/stock");
    if (stock < 0) {
      return Status::Corruption("tpcc_lite: " + ItemName(i) +
                                        " stock went negative: " +
                                        std::to_string(stock));
    }
  }
  return Status::OK();
}

}  // namespace thunderbolt::workload
