// Pluggable workload framework.
//
// A Workload owns everything the benchmark driver and the cluster need to
// exercise an application: how to seed storage, how to draw the next
// transaction (globally or homed at a shard), and which consistency
// invariant the final state must satisfy. Every workload runs unchanged
// against every execution engine — the transactions it emits name contracts
// resolved through contract::Registry, so engines never see workload
// specifics.
//
// Workloads register by name in WorkloadRegistry (string -> factory over a
// shared WorkloadOptions), which is how `thunderbolt_bench` sweeps
// workload x engine combinations without compile-time coupling. Built-ins:
// "smallbank" (the paper's evaluation workload), "ycsb" (read/update/RMW
// key-value mix with pluggable key distributions) and "tpcc_lite" (NewOrder
// + Payment as TBVM contract programs with value-dependent access).
#ifndef THUNDERBOLT_WORKLOAD_WORKLOAD_H_
#define THUNDERBOLT_WORKLOAD_WORKLOAD_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/types.h"
#include "placement/placement.h"
#include "storage/kv_store.h"
#include "txn/transaction.h"

namespace thunderbolt::workload {

/// One options struct shared by every workload factory so the driver can
/// configure any of them from the same flag set. Fields a workload does not
/// understand are ignored (e.g. `distribution` by SmallBank).
struct WorkloadOptions {
  /// Population scale: SmallBank accounts, YCSB records. TPC-C-lite derives
  /// its own table sizes from the warehouse knobs below.
  uint64_t num_records = 10000;
  double theta = 0.85;           // Zipfian skew where applicable.
  double read_ratio = 0.5;       // Fraction of read-only transactions.
  double cross_shard_ratio = 0;  // Fraction of cross-shard transactions.
  uint32_t num_shards = 1;
  uint64_t seed = 42;

  // --- YCSB ---------------------------------------------------------------
  /// Key distribution: "uniform", "zipfian" or "hotspot".
  std::string distribution = "zipfian";
  /// Of the non-read operations, the fraction that are blind updates; the
  /// remainder are read-modify-writes.
  double update_ratio = 0.5;
  /// Hotspot distribution: `hotspot_op_fraction` of operations hit the
  /// hottest `hotspot_set_fraction` of records (uniform within each side).
  double hotspot_op_fraction = 0.8;
  double hotspot_set_fraction = 0.05;

  // --- TPC-C-lite ---------------------------------------------------------
  uint32_t num_warehouses = 2;
  uint32_t districts_per_warehouse = 10;
  uint32_t customers_per_district = 30;
  uint32_t num_items = 200;
  /// Fraction of Payment transactions; the remainder are NewOrders.
  double payment_ratio = 0.5;
};

/// Abstract workload: transaction source + store seeding + invariant.
///
/// The account -> shard mapping lives in the base class: every workload
/// generates against `mapper_`, which delegates to a placement::
/// PlacementPolicy (hash by default). The cluster installs its configured
/// policy via SetPlacementPolicy right after construction — and again
/// after hot-key migrations — at which point the workload rebuilds any
/// per-shard account buckets it derived from the old mapping.
class Workload {
 public:
  explicit Workload(uint32_t num_shards = 1) : mapper_(num_shards) {}
  virtual ~Workload() = default;

  /// Registry name ("smallbank", "ycsb", ...).
  virtual std::string name() const = 0;

  /// Seeds the initial application state in `store`.
  virtual void InitStore(storage::KVStore* store) const = 0;

  /// Next transaction in the global mix.
  virtual txn::Transaction Next() = 0;

  /// Next transaction homed at `shard`. Workloads without a sharding notion
  /// may fall back to the global mix.
  virtual txn::Transaction NextForShard(ShardId shard) = 0;

  /// Convenience batch generators built on Next()/NextForShard().
  virtual std::vector<txn::Transaction> MakeBatch(size_t count);
  virtual std::vector<txn::Transaction> MakeShardBatch(ShardId shard,
                                                       size_t count);

  /// The account -> shard mapping this workload generates against.
  const txn::ShardMapper& mapper() const { return mapper_; }

  /// Installs a placement policy: the mapper delegates to it from now on
  /// and the workload's per-shard buckets are rebuilt against the new
  /// mapping. The policy is shared with the cluster, which may mutate it
  /// at reconfiguration boundaries and re-invoke this to refresh buckets.
  /// Does not touch the RNG stream: with a policy mapping identical to the
  /// current one (e.g. the default "hash"), generation is byte-identical.
  void SetPlacementPolicy(
      std::shared_ptr<const placement::PlacementPolicy> policy) {
    mapper_ = txn::ShardMapper(std::move(policy));
    RebuildShardBuckets();
  }

  /// Optional locality hint for the "locality" placement policy: the
  /// group of accounts `account` should co-locate with (accounts sharing
  /// a group land on one shard). Defaults to the account itself — no
  /// co-location structure. Must be pure (same account, same group) so
  /// all replicas agree.
  virtual std::string PlacementHint(const std::string& account) const {
    return account;
  }

  /// Fraction of NextForShard draws that deliberately span multiple shards
  /// (the configured cross_shard_ratio where honored; 0 when the workload
  /// is sharded onto a single shard). Transactions may still be
  /// incidentally cross-shard when their account arguments hash apart —
  /// this reports only the intentional cross-shard traffic.
  virtual double CrossShardFraction() const { return 0.0; }

  /// The shard a transaction from NextForShard(s) is homed at: the shard
  /// of its anchor account (`s` by construction, even for cross-shard
  /// transactions, whose anchor stays in the requested shard). Default:
  /// the first account argument.
  virtual ShardId HomeShard(const txn::Transaction& tx) const;

  /// Checks the workload's consistency invariant over a final state (e.g.
  /// SmallBank total-balance conservation, TPC-C-lite YTD consistency).
  /// Returns OK when the invariant holds, Corruption otherwise.
  virtual Status CheckInvariant(const storage::KVStore& store) const = 0;

 protected:
  /// Rebuilds any account -> shard buckets derived from `mapper_`.
  /// Invoked by SetPlacementPolicy; workloads that precompute per-shard
  /// account lists override this (and call it from their constructor).
  virtual void RebuildShardBuckets() {}

  txn::ShardMapper mapper_;
};

/// Creates the named placement policy configured for `workload` — wiring
/// Workload::PlacementHint in as the policy's locality hint, so the hint
/// must not outlive the workload — and installs it via SetPlacementPolicy.
/// Returns the shared policy (the caller keeps it to drive Rebalance), or
/// nullptr for an unknown policy name, leaving the workload's mapping
/// untouched. One helper so the cluster and the bench drivers cannot
/// drift apart in how they stand placement up.
std::shared_ptr<placement::PlacementPolicy> InstallPlacement(
    Workload* workload, const std::string& policy_name,
    const std::string& policy_params, uint32_t num_shards);

/// Applies "key=value[,key=value...]" overrides from `spec` onto
/// `options`, so drivers can configure any workload from one string
/// (e.g. "theta=0.9,cross_shard_ratio=0.1"). Recognized keys are the
/// WorkloadOptions fields by name, plus "num_accounts" as an alias for
/// num_records. Returns InvalidArgument on unknown keys or malformed
/// values; an empty spec is a no-op.
Status ApplyWorkloadParams(const std::string& spec, WorkloadOptions* options);

/// Name -> factory registry. `Global()` is preloaded with the built-in
/// workloads; additional workloads can register at startup.
class WorkloadRegistry {
 public:
  using Factory =
      std::function<std::unique_ptr<Workload>(const WorkloadOptions&)>;

  /// Registers `factory` under `name`. Overwrites any existing entry.
  void Register(std::string name, Factory factory);

  /// Instantiates the named workload, or nullptr for unknown names.
  std::unique_ptr<Workload> Create(const std::string& name,
                                   const WorkloadOptions& options) const;

  bool Contains(const std::string& name) const;

  /// Registered names, sorted.
  std::vector<std::string> Names() const;

  /// The process-wide registry, preloaded with the built-ins.
  static WorkloadRegistry& Global();

 private:
  std::map<std::string, Factory> factories_;
};

}  // namespace thunderbolt::workload

#endif  // THUNDERBOLT_WORKLOAD_WORKLOAD_H_
