// Pluggable workload framework.
//
// A Workload owns everything the benchmark driver and the cluster need to
// exercise an application: how to seed storage, how to draw the next
// transaction (globally or homed at a shard), and which consistency
// invariant the final state must satisfy. Every workload runs unchanged
// against every execution engine — the transactions it emits name contracts
// resolved through contract::Registry, so engines never see workload
// specifics.
//
// Workloads register by name in WorkloadRegistry (string -> factory over a
// shared WorkloadOptions), which is how `thunderbolt_bench` sweeps
// workload x engine combinations without compile-time coupling. Built-ins:
// "smallbank" (the paper's evaluation workload), "ycsb" (read/update/RMW
// key-value mix with pluggable key distributions) and "tpcc_lite" (NewOrder
// + Payment as TBVM contract programs with value-dependent access).
#ifndef THUNDERBOLT_WORKLOAD_WORKLOAD_H_
#define THUNDERBOLT_WORKLOAD_WORKLOAD_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/types.h"
#include "storage/kv_store.h"
#include "txn/transaction.h"

namespace thunderbolt::workload {

/// One options struct shared by every workload factory so the driver can
/// configure any of them from the same flag set. Fields a workload does not
/// understand are ignored (e.g. `distribution` by SmallBank).
struct WorkloadOptions {
  /// Population scale: SmallBank accounts, YCSB records. TPC-C-lite derives
  /// its own table sizes from the warehouse knobs below.
  uint64_t num_records = 10000;
  double theta = 0.85;           // Zipfian skew where applicable.
  double read_ratio = 0.5;       // Fraction of read-only transactions.
  double cross_shard_ratio = 0;  // Fraction of cross-shard transactions.
  uint32_t num_shards = 1;
  uint64_t seed = 42;

  // --- YCSB ---------------------------------------------------------------
  /// Key distribution: "uniform", "zipfian" or "hotspot".
  std::string distribution = "zipfian";
  /// Of the non-read operations, the fraction that are blind updates; the
  /// remainder are read-modify-writes.
  double update_ratio = 0.5;
  /// Hotspot distribution: `hotspot_op_fraction` of operations hit the
  /// hottest `hotspot_set_fraction` of records (uniform within each side).
  double hotspot_op_fraction = 0.8;
  double hotspot_set_fraction = 0.05;

  // --- TPC-C-lite ---------------------------------------------------------
  uint32_t num_warehouses = 2;
  uint32_t districts_per_warehouse = 10;
  uint32_t customers_per_district = 30;
  uint32_t num_items = 200;
  /// Fraction of Payment transactions; the remainder are NewOrders.
  double payment_ratio = 0.5;
};

/// Abstract workload: transaction source + store seeding + invariant.
class Workload {
 public:
  virtual ~Workload() = default;

  /// Registry name ("smallbank", "ycsb", ...).
  virtual std::string name() const = 0;

  /// Seeds the initial application state in `store`.
  virtual void InitStore(storage::MemKVStore* store) const = 0;

  /// Next transaction in the global mix.
  virtual txn::Transaction Next() = 0;

  /// Next transaction homed at `shard`. Workloads without a sharding notion
  /// may fall back to the global mix.
  virtual txn::Transaction NextForShard(ShardId shard) = 0;

  /// Convenience batch generators built on Next()/NextForShard().
  virtual std::vector<txn::Transaction> MakeBatch(size_t count);
  virtual std::vector<txn::Transaction> MakeShardBatch(ShardId shard,
                                                       size_t count);

  /// The account -> shard mapping this workload generates against.
  virtual const txn::ShardMapper& mapper() const = 0;

  /// Fraction of NextForShard draws that deliberately span multiple shards
  /// (the configured cross_shard_ratio where honored; 0 when the workload
  /// is sharded onto a single shard). Transactions may still be
  /// incidentally cross-shard when their account arguments hash apart —
  /// this reports only the intentional cross-shard traffic.
  virtual double CrossShardFraction() const { return 0.0; }

  /// The shard a transaction from NextForShard(s) is homed at: the shard
  /// of its anchor account (`s` by construction, even for cross-shard
  /// transactions, whose anchor stays in the requested shard). Default:
  /// the first account argument.
  virtual ShardId HomeShard(const txn::Transaction& tx) const;

  /// Checks the workload's consistency invariant over a final state (e.g.
  /// SmallBank total-balance conservation, TPC-C-lite YTD consistency).
  /// Returns OK when the invariant holds, Corruption otherwise.
  virtual Status CheckInvariant(const storage::MemKVStore& store) const = 0;
};

/// Applies "key=value[,key=value...]" overrides from `spec` onto
/// `options`, so drivers can configure any workload from one string
/// (e.g. "theta=0.9,cross_shard_ratio=0.1"). Recognized keys are the
/// WorkloadOptions fields by name, plus "num_accounts" as an alias for
/// num_records. Returns InvalidArgument on unknown keys or malformed
/// values; an empty spec is a no-op.
Status ApplyWorkloadParams(const std::string& spec, WorkloadOptions* options);

/// Name -> factory registry. `Global()` is preloaded with the built-in
/// workloads; additional workloads can register at startup.
class WorkloadRegistry {
 public:
  using Factory =
      std::function<std::unique_ptr<Workload>(const WorkloadOptions&)>;

  /// Registers `factory` under `name`. Overwrites any existing entry.
  void Register(std::string name, Factory factory);

  /// Instantiates the named workload, or nullptr for unknown names.
  std::unique_ptr<Workload> Create(const std::string& name,
                                   const WorkloadOptions& options) const;

  bool Contains(const std::string& name) const;

  /// Registered names, sorted.
  std::vector<std::string> Names() const;

  /// The process-wide registry, preloaded with the built-ins.
  static WorkloadRegistry& Global();

 private:
  std::map<std::string, Factory> factories_;
};

}  // namespace thunderbolt::workload

#endif  // THUNDERBOLT_WORKLOAD_WORKLOAD_H_
