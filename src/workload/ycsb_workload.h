// YCSB-KV workload: a configurable read / blind-update / read-modify-write
// mix over N single-key records, with uniform, Zipfian or hotspot key
// selection. This is the knob-heavy counterpart to SmallBank: batch
// scheduling quality is dominated by mix and skew, and YCSB lets the bench
// driver sweep both independently of transaction structure.
//
// Records are accounts "user<i>" (rank 0 hottest under skewed
// distributions), each holding one "user<i>/value" key initialized to
// kInitialValue. Operations are the kv.* contracts (contract/kv.h).
#ifndef THUNDERBOLT_WORKLOAD_YCSB_WORKLOAD_H_
#define THUNDERBOLT_WORKLOAD_YCSB_WORKLOAD_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/zipfian.h"
#include "storage/kv_store.h"
#include "txn/transaction.h"
#include "workload/workload.h"

namespace thunderbolt::workload {

class YcsbWorkload final : public Workload {
 public:
  enum class Distribution { kUniform, kZipfian, kHotspot };

  /// Every record starts at this value; updates write in [1, kMaxValue] and
  /// RMWs add deltas in [1, kMaxDelta], so values stay non-negative — the
  /// invariant CheckInvariant enforces.
  static constexpr storage::Value kInitialValue = 100;
  static constexpr storage::Value kMaxValue = 1000;
  static constexpr storage::Value kMaxDelta = 5;

  explicit YcsbWorkload(const WorkloadOptions& options);

  const WorkloadOptions& options() const { return options_; }
  Distribution distribution() const { return distribution_; }

  std::string name() const override { return "ycsb"; }

  /// Record (account) name for hotness rank `i`.
  static std::string RecordName(uint64_t i);

  void InitStore(storage::KVStore* store) const override;
  txn::Transaction Next() override;
  /// Single-record op on the shard's bucket; with probability
  /// cross_shard_ratio (and more than one shard) a kv.transfer from a
  /// record of `shard` to a record of another shard instead.
  txn::Transaction NextForShard(ShardId shard) override;

  double CrossShardFraction() const override {
    return options_.num_shards > 1 ? options_.cross_shard_ratio : 0.0;
  }

  /// All records still exist, the store holds exactly the seeded keys (no
  /// strays appeared), and every value is non-negative (update/RMW
  /// arguments are positive; transfers clamp at the source balance).
  /// Assumes the store was seeded by InitStore alone — YCSB owns its whole
  /// keyspace.
  Status CheckInvariant(const storage::KVStore& store) const override;

 protected:
  void RebuildShardBuckets() override;

 private:
  /// Hotness rank in [0, num_records) under the configured distribution.
  uint64_t SampleRank();
  /// Rank within `bucket_size` records (per-shard sampling).
  uint64_t SampleBucketRank(ShardId shard);
  /// A record of `shard`'s bucket under the configured distribution.
  std::string SampleShardRecord(ShardId shard);
  txn::Transaction MakeOp(std::string record);
  txn::Transaction MakeTransfer(std::string from, std::string to);

  WorkloadOptions options_;
  Distribution distribution_;
  Rng rng_;
  ZipfianGenerator global_zipf_;
  uint64_t hot_set_size_;
  /// Records bucketed by shard in global hotness order (skew-preserving
  /// per-shard sampling, mirroring SmallBankWorkload).
  std::vector<std::vector<uint64_t>> shard_records_;
  std::vector<ZipfianGenerator> shard_zipf_;
  TxnId next_txn_id_ = 1;
};

}  // namespace thunderbolt::workload

#endif  // THUNDERBOLT_WORKLOAD_YCSB_WORKLOAD_H_
