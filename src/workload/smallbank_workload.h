// SmallBank workload generation (paper sections 11.2 and 12).
//
// Transactions mix GetBalance (probability Pr, read-only) and SendPayment
// (probability 1-Pr, read-modify-write on two accounts), with accounts
// drawn from a Zipfian distribution (theta controls contention; the paper
// uses theta = 0.85). For the sharded system evaluation a fraction P of
// transactions is made cross-shard (accounts in two different shards,
// Figure 14). Account keys hash-partition across shards via
// txn::ShardMapper.
#ifndef THUNDERBOLT_WORKLOAD_SMALLBANK_WORKLOAD_H_
#define THUNDERBOLT_WORKLOAD_SMALLBANK_WORKLOAD_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/zipfian.h"
#include "storage/kv_store.h"
#include "txn/transaction.h"
#include "workload/workload.h"

namespace thunderbolt::workload {

struct SmallBankConfig {
  uint64_t num_accounts = 10000;
  double theta = 0.85;          // Zipfian skew.
  double read_ratio = 0.5;      // Pr: probability of GetBalance.
  double cross_shard_ratio = 0; // P: fraction of cross-shard transactions.
  uint32_t num_shards = 1;
  storage::Value initial_checking = 10000;
  storage::Value initial_savings = 10000;
  uint64_t seed = 42;

  /// Maps the framework-level options onto SmallBank's native config
  /// (registry factory path; initial balances keep their defaults).
  static SmallBankConfig FromOptions(const WorkloadOptions& options);
};

class SmallBankWorkload final : public Workload {
 public:
  explicit SmallBankWorkload(SmallBankConfig config);

  const SmallBankConfig& config() const { return config_; }

  std::string name() const override { return "smallbank"; }

  /// Seeds every account's checking and savings balance in `store`.
  void InitStore(storage::KVStore* store) const override;

  /// Account name for global Zipfian rank `i` (rank 0 is hottest).
  static std::string AccountName(uint64_t i);

  /// Next transaction in the global mix (used by the CE benchmarks where
  /// sharding is not involved).
  txn::Transaction Next() override;

  /// Next transaction homed at `shard`: single-shard transactions touch
  /// only accounts of that shard; with probability cross_shard_ratio the
  /// transaction instead spans `shard` and one other shard.
  txn::Transaction NextForShard(ShardId shard) override;

  /// Payment-pair locality: "acct<2i>" and "acct<2i+1>" share a group, so
  /// the "locality" placement policy co-locates each pair. Note this is
  /// structural grouping only: SmallBank samples both payment accounts
  /// from the live shard buckets, so unlike TPC-C-lite (whose warehouse/
  /// district/customer accounts place independently) its cross-shard
  /// fraction is generator-determined and no placement changes it.
  std::string PlacementHint(const std::string& account) const override;

  double CrossShardFraction() const override {
    return config_.num_shards > 1 ? config_.cross_shard_ratio : 0.0;
  }

  /// Sum of all balances; conserved by every SmallBank mix that excludes
  /// WriteCheck and failed sends (used by invariant tests).
  storage::Value TotalBalance(const storage::KVStore& store) const;

  /// Total-balance conservation: the GetBalance/SendPayment mix never
  /// creates or destroys money, so the sum must equal the seeded total.
  Status CheckInvariant(const storage::KVStore& store) const override;

 protected:
  void RebuildShardBuckets() override;

 private:
  std::string SampleGlobalAccount();
  std::string SampleShardAccount(ShardId shard);
  txn::Transaction MakeGetBalance(std::string account);
  txn::Transaction MakeSendPayment(std::string from, std::string to);

  SmallBankConfig config_;
  Rng rng_;
  ZipfianGenerator global_zipf_;
  /// Accounts bucketed by shard, in global hotness order, so per-shard
  /// sampling preserves the skew profile.
  std::vector<std::vector<uint64_t>> shard_accounts_;
  std::vector<ZipfianGenerator> shard_zipf_;
  TxnId next_txn_id_ = 1;
};

}  // namespace thunderbolt::workload

#endif  // THUNDERBOLT_WORKLOAD_SMALLBANK_WORKLOAD_H_
