// TPC-C-lite workload generation (NewOrder + Payment over the TBVM
// programs in contract/tpcc_lite.h).
//
// Entities and their storage accounts:
//   warehouse  "w<w>"            keys: ytd
//   district   "w<w>.d<d>"       keys: ytd, next_oid, order_ytd, order_cnt
//   customer   "w<w>.d<d>.c<c>"  keys: balance, ytd_payment, payment_cnt,
//                                      credit (static), penalty
//   item       "item<i>"         keys: stock
//
// Both transaction types derive their warehouse/district from one global
// Zipfian customer draw, so hot customers concentrate contention on their
// district and warehouse rows; NewOrders additionally pick kTpccOrderItems
// distinct items Zipfian (hot items create stock contention). Shard-homed
// generation (NextForShard) instead picks uniformly within the shard's
// district bucket. Every payment flows into both its district's and its
// warehouse's YTD, which yields the invariant CheckInvariant enforces:
// per warehouse, w/ytd == sum of district ytd == sum of customer
// ytd_payment, and per district next_oid - 1 == order_cnt.
#ifndef THUNDERBOLT_WORKLOAD_TPCC_WORKLOAD_H_
#define THUNDERBOLT_WORKLOAD_TPCC_WORKLOAD_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/zipfian.h"
#include "storage/kv_store.h"
#include "txn/transaction.h"
#include "workload/workload.h"

namespace thunderbolt::workload {

class TpccLiteWorkload final : public Workload {
 public:
  /// Seeded stock per item: high enough that test-sized runs never trip
  /// the restock rule (keeping final state order-independent); long bench
  /// sweeps on hot items still can.
  static constexpr storage::Value kInitialStock = 100000;
  static constexpr storage::Value kInitialBalance = 5000;
  static constexpr storage::Value kInitialOrderId = 1;
  static constexpr storage::Value kMaxPaymentAmount = 500;
  static constexpr storage::Value kMaxOrderQuantity = 10;

  explicit TpccLiteWorkload(const WorkloadOptions& options);

  const WorkloadOptions& options() const { return options_; }

  std::string name() const override { return "tpcc_lite"; }

  /// Entity account names.
  static std::string WarehouseName(uint32_t w);
  static std::string DistrictName(uint32_t w, uint32_t d);
  static std::string CustomerName(uint32_t w, uint32_t d, uint32_t c);
  static std::string ItemName(uint32_t i);

  /// Deterministic static credit rating: ~10% of customers are bad credit
  /// (drives the Payment penalty branch).
  static bool HasBadCredit(uint32_t w, uint32_t d, uint32_t c) {
    return (w + 3 * d + 7 * c) % 10 == 0;
  }

  void InitStore(storage::KVStore* store) const override;
  txn::Transaction Next() override;
  /// District (and thus warehouse) drawn from `shard`'s bucket; with
  /// probability cross_shard_ratio a Payment instead credits a *remote*
  /// customer whose district lives in a different shard (the TPC-C
  /// remote-payment pattern), which makes the transaction span shards by
  /// construction. Note TPC-C-lite transactions are often incidentally
  /// cross-shard anyway: warehouse, district, customer and item accounts
  /// hash-partition independently.
  txn::Transaction NextForShard(ShardId shard) override;

  /// Warehouse locality: "w<w>", "w<w>.d<d>" and "w<w>.d<d>.c<c>" all
  /// group onto "w<w>", so the "locality" placement policy lands a home
  /// payment's warehouse, district and customer on one shard. Items are
  /// shared across warehouses and keep their own groups.
  std::string PlacementHint(const std::string& account) const override;

  double CrossShardFraction() const override {
    return options_.num_shards > 1 ? options_.cross_shard_ratio : 0.0;
  }

  /// TPC-C-lite transactions are anchored at their district: shard-homed
  /// generation places the district in the requested shard while the
  /// warehouse, customer and item accounts may hash elsewhere.
  ShardId HomeShard(const txn::Transaction& tx) const override;

  /// YTD consistency (see header comment) plus non-negative stock. Remote
  /// payments (cross_shard_ratio > 0) credit a customer outside the paying
  /// warehouse, so the per-warehouse customer breakdown is replaced by its
  /// global counterpart: sum over all warehouses of ytd == sum of all
  /// district ytd == sum of all customer ytd_payment.
  Status CheckInvariant(const storage::KVStore& store) const override;

  uint64_t num_customers() const { return num_customers_; }

 protected:
  void RebuildShardBuckets() override;

 private:
  /// Customer by global Zipfian rank -> (w, d, c).
  void CustomerAt(uint64_t rank, uint32_t* w, uint32_t* d, uint32_t* c) const;
  txn::Transaction MakePayment(uint32_t w, uint32_t d, uint32_t c);
  /// Payment at warehouse `w` / district `d` crediting the (possibly
  /// remote) customer (cw, cd, c).
  txn::Transaction MakeRemotePayment(uint32_t w, uint32_t d, uint32_t cw,
                                     uint32_t cd, uint32_t c);
  txn::Transaction MakeNewOrder(uint32_t w, uint32_t d);

  WorkloadOptions options_;
  Rng rng_;
  uint64_t num_customers_;
  ZipfianGenerator customer_zipf_;
  ZipfianGenerator item_zipf_;
  /// District indices (w * districts + d) bucketed by the shard of their
  /// account, for shard-homed generation.
  std::vector<std::vector<uint64_t>> shard_districts_;
  TxnId next_txn_id_ = 1;
};

}  // namespace thunderbolt::workload

#endif  // THUNDERBOLT_WORKLOAD_TPCC_WORKLOAD_H_
