#include "workload/ycsb_workload.h"

#include <algorithm>

#include "contract/kv.h"

namespace thunderbolt::workload {

namespace {

YcsbWorkload::Distribution ParseDistribution(const std::string& name) {
  if (name == "uniform") return YcsbWorkload::Distribution::kUniform;
  if (name == "hotspot") return YcsbWorkload::Distribution::kHotspot;
  // Default (and explicit "zipfian").
  return YcsbWorkload::Distribution::kZipfian;
}

}  // namespace

YcsbWorkload::YcsbWorkload(const WorkloadOptions& options)
    : Workload(options.num_shards),
      options_(options),
      distribution_(ParseDistribution(options.distribution)),
      rng_(options.seed),
      global_zipf_(options.num_records, options.theta) {
  hot_set_size_ = std::max<uint64_t>(
      1, static_cast<uint64_t>(static_cast<double>(options_.num_records) *
                               options_.hotspot_set_fraction));
  RebuildShardBuckets();
}

void YcsbWorkload::RebuildShardBuckets() {
  shard_records_.assign(options_.num_shards, {});
  for (uint64_t i = 0; i < options_.num_records; ++i) {
    ShardId s = mapper_.ShardOfAccount(RecordName(i));
    shard_records_[s].push_back(i);
  }
  shard_zipf_.clear();
  shard_zipf_.reserve(options_.num_shards);
  for (uint32_t s = 0; s < options_.num_shards; ++s) {
    uint64_t n = shard_records_[s].empty() ? 1 : shard_records_[s].size();
    shard_zipf_.emplace_back(n, options_.theta);
  }
}

std::string YcsbWorkload::RecordName(uint64_t i) {
  return "user" + std::to_string(i);
}

void YcsbWorkload::InitStore(storage::KVStore* store) const {
  store->Reserve(store->size() + options_.num_records);
  for (uint64_t i = 0; i < options_.num_records; ++i) {
    store->Put(contract::KvValueKey(RecordName(i)), kInitialValue);
  }
}

uint64_t YcsbWorkload::SampleRank() {
  switch (distribution_) {
    case Distribution::kUniform:
      return rng_.NextBounded(options_.num_records);
    case Distribution::kZipfian:
      return global_zipf_.Next(rng_);
    case Distribution::kHotspot:
      if (rng_.NextBool(options_.hotspot_op_fraction)) {
        return rng_.NextBounded(hot_set_size_);
      }
      return rng_.NextBounded(options_.num_records);
  }
  return 0;  // Unreachable.
}

uint64_t YcsbWorkload::SampleBucketRank(ShardId shard) {
  uint64_t bucket_size = shard_records_[shard].size();
  if (bucket_size == 0) return 0;
  switch (distribution_) {
    case Distribution::kUniform:
      return rng_.NextBounded(bucket_size);
    case Distribution::kZipfian:
      return shard_zipf_[shard].Next(rng_);
    case Distribution::kHotspot: {
      // Scale the hot set to the bucket, keeping at least one hot record.
      uint64_t hot =
          std::max<uint64_t>(1, hot_set_size_ * bucket_size /
                                    std::max<uint64_t>(1,
                                                       options_.num_records));
      if (rng_.NextBool(options_.hotspot_op_fraction)) {
        return rng_.NextBounded(std::min(hot, bucket_size));
      }
      return rng_.NextBounded(bucket_size);
    }
  }
  return 0;  // Unreachable.
}

txn::Transaction YcsbWorkload::MakeOp(std::string record) {
  txn::Transaction tx;
  tx.id = next_txn_id_++;
  tx.accounts.push_back(std::move(record));
  if (rng_.NextBool(options_.read_ratio)) {
    tx.contract = contract::kKvRead;
    return tx;
  }
  if (rng_.NextBool(options_.update_ratio)) {
    tx.contract = contract::kKvUpdate;
    tx.params.push_back(
        static_cast<storage::Value>(rng_.NextRange(1, kMaxValue)));
  } else {
    tx.contract = contract::kKvRmw;
    tx.params.push_back(
        static_cast<storage::Value>(rng_.NextRange(1, kMaxDelta)));
  }
  return tx;
}

txn::Transaction YcsbWorkload::MakeTransfer(std::string from, std::string to) {
  txn::Transaction tx;
  tx.id = next_txn_id_++;
  tx.contract = contract::kKvTransfer;
  tx.accounts.push_back(std::move(from));
  tx.accounts.push_back(std::move(to));
  tx.params.push_back(
      static_cast<storage::Value>(rng_.NextRange(1, kMaxDelta)));
  return tx;
}

txn::Transaction YcsbWorkload::Next() {
  return MakeOp(RecordName(SampleRank()));
}

std::string YcsbWorkload::SampleShardRecord(ShardId shard) {
  const std::vector<uint64_t>& bucket = shard_records_[shard];
  if (bucket.empty()) return RecordName(0);
  return RecordName(bucket[SampleBucketRank(shard)]);
}

txn::Transaction YcsbWorkload::NextForShard(ShardId shard) {
  // The extra dice roll is gated on a positive ratio so configurations
  // without cross-shard traffic keep their pre-existing RNG stream.
  if (options_.num_shards > 1 && options_.cross_shard_ratio > 0 &&
      rng_.NextBool(options_.cross_shard_ratio)) {
    // kv.transfer from a record homed here to a record of another shard.
    std::string from = SampleShardRecord(shard);
    ShardId other =
        static_cast<ShardId>(rng_.NextBounded(options_.num_shards - 1));
    if (other >= shard) ++other;
    return MakeTransfer(std::move(from), SampleShardRecord(other));
  }
  return MakeOp(SampleShardRecord(shard));
}

Status YcsbWorkload::CheckInvariant(const storage::KVStore& store) const {
  // kv.* contracts only ever write the seeded record keys, so any size
  // change means an engine manufactured or lost a key.
  if (store.size() != options_.num_records) {
    return Status::Corruption(
        "ycsb: store holds " + std::to_string(store.size()) +
        " keys, expected " + std::to_string(options_.num_records));
  }
  for (uint64_t i = 0; i < options_.num_records; ++i) {
    auto vv = store.Get(contract::KvValueKey(RecordName(i)));
    if (!vv.ok()) {
      return Status::Corruption("ycsb: record " + RecordName(i) +
                                        " disappeared");
    }
    if (vv->value < 0) {
      return Status::Corruption(
          "ycsb: record " + RecordName(i) + " went negative: " +
          std::to_string(vv->value));
    }
  }
  return Status::OK();
}

}  // namespace thunderbolt::workload
