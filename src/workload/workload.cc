#include "workload/workload.h"

#include <cerrno>
#include <cstdint>
#include <cstdlib>

#include "common/result.h"
#include "workload/smallbank_workload.h"
#include "workload/tpcc_workload.h"
#include "workload/ycsb_workload.h"

namespace thunderbolt::workload {

namespace {

/// One "key=value" assignment from a param spec.
struct Param {
  std::string key;
  std::string value;
};

Result<std::vector<Param>> SplitParams(const std::string& spec) {
  std::vector<Param> params;
  size_t start = 0;
  while (start <= spec.size()) {
    size_t comma = spec.find(',', start);
    if (comma == std::string::npos) comma = spec.size();
    if (comma > start) {
      std::string item = spec.substr(start, comma - start);
      size_t eq = item.find('=');
      if (eq == std::string::npos || eq == 0 || eq + 1 == item.size()) {
        return Status::InvalidArgument("workload param \"" + item +
                                       "\" is not key=value");
      }
      params.push_back(Param{item.substr(0, eq), item.substr(eq + 1)});
    }
    start = comma + 1;
  }
  return params;
}

Status ParseDouble(const Param& p, double* out) {
  char* end = nullptr;
  double v = std::strtod(p.value.c_str(), &end);
  if (end == p.value.c_str() || *end != '\0') {
    return Status::InvalidArgument("workload param " + p.key +
                                   ": bad number \"" + p.value + "\"");
  }
  *out = v;
  return Status::OK();
}

Status ParseU64(const Param& p, uint64_t* out) {
  // strtoull silently wraps negative input ("-1" -> 2^64-1), which would
  // turn a typo into an absurd population size; reject any sign up front.
  if (p.value[0] == '-' || p.value[0] == '+') {
    return Status::InvalidArgument("workload param " + p.key +
                                   ": bad integer \"" + p.value + "\"");
  }
  errno = 0;
  char* end = nullptr;
  unsigned long long v = std::strtoull(p.value.c_str(), &end, 10);
  if (end == p.value.c_str() || *end != '\0' || errno == ERANGE) {
    return Status::InvalidArgument("workload param " + p.key +
                                   ": bad integer \"" + p.value + "\"");
  }
  *out = v;
  return Status::OK();
}

Status ParseU32(const Param& p, uint32_t* out) {
  uint64_t v = 0;
  THUNDERBOLT_RETURN_NOT_OK(ParseU64(p, &v));
  if (v > UINT32_MAX) {
    return Status::InvalidArgument("workload param " + p.key + ": \"" +
                                   p.value + "\" exceeds 32 bits");
  }
  *out = static_cast<uint32_t>(v);
  return Status::OK();
}

}  // namespace

ShardId Workload::HomeShard(const txn::Transaction& tx) const {
  if (tx.accounts.empty()) return 0;
  return mapper().ShardOfAccount(tx.accounts.front());
}

std::shared_ptr<placement::PlacementPolicy> InstallPlacement(
    Workload* workload, const std::string& policy_name,
    const std::string& policy_params, uint32_t num_shards) {
  placement::PlacementOptions options;
  options.num_shards = num_shards;
  options.params = policy_params;
  options.hint = [workload](const std::string& account) {
    return workload->PlacementHint(account);
  };
  std::shared_ptr<placement::PlacementPolicy> policy =
      placement::PlacementRegistry::Global().Create(policy_name, options);
  if (policy != nullptr) workload->SetPlacementPolicy(policy);
  return policy;
}

Status ApplyWorkloadParams(const std::string& spec, WorkloadOptions* options) {
  THUNDERBOLT_ASSIGN_OR_RETURN(std::vector<Param> params, SplitParams(spec));
  for (const Param& p : params) {
    if (p.key == "num_records" || p.key == "num_accounts") {
      THUNDERBOLT_RETURN_NOT_OK(ParseU64(p, &options->num_records));
    } else if (p.key == "theta") {
      THUNDERBOLT_RETURN_NOT_OK(ParseDouble(p, &options->theta));
    } else if (p.key == "read_ratio") {
      THUNDERBOLT_RETURN_NOT_OK(ParseDouble(p, &options->read_ratio));
    } else if (p.key == "cross_shard_ratio") {
      THUNDERBOLT_RETURN_NOT_OK(ParseDouble(p, &options->cross_shard_ratio));
    } else if (p.key == "num_shards") {
      THUNDERBOLT_RETURN_NOT_OK(ParseU32(p, &options->num_shards));
    } else if (p.key == "seed") {
      THUNDERBOLT_RETURN_NOT_OK(ParseU64(p, &options->seed));
    } else if (p.key == "distribution") {
      // Validate eagerly: YcsbWorkload would silently fall back to
      // zipfian on a typo.
      if (p.value != "uniform" && p.value != "zipfian" &&
          p.value != "hotspot") {
        return Status::InvalidArgument(
            "workload param distribution: unknown value \"" + p.value +
            "\" (uniform|zipfian|hotspot)");
      }
      options->distribution = p.value;
    } else if (p.key == "update_ratio") {
      THUNDERBOLT_RETURN_NOT_OK(ParseDouble(p, &options->update_ratio));
    } else if (p.key == "hotspot_op_fraction") {
      THUNDERBOLT_RETURN_NOT_OK(ParseDouble(p, &options->hotspot_op_fraction));
    } else if (p.key == "hotspot_set_fraction") {
      THUNDERBOLT_RETURN_NOT_OK(
          ParseDouble(p, &options->hotspot_set_fraction));
    } else if (p.key == "num_warehouses") {
      THUNDERBOLT_RETURN_NOT_OK(ParseU32(p, &options->num_warehouses));
    } else if (p.key == "districts_per_warehouse") {
      THUNDERBOLT_RETURN_NOT_OK(
          ParseU32(p, &options->districts_per_warehouse));
    } else if (p.key == "customers_per_district") {
      THUNDERBOLT_RETURN_NOT_OK(ParseU32(p, &options->customers_per_district));
    } else if (p.key == "num_items") {
      THUNDERBOLT_RETURN_NOT_OK(ParseU32(p, &options->num_items));
    } else if (p.key == "payment_ratio") {
      THUNDERBOLT_RETURN_NOT_OK(ParseDouble(p, &options->payment_ratio));
    } else {
      return Status::InvalidArgument("unknown workload param \"" + p.key +
                                     "\"");
    }
  }
  return Status::OK();
}

std::vector<txn::Transaction> Workload::MakeBatch(size_t count) {
  std::vector<txn::Transaction> batch;
  batch.reserve(count);
  for (size_t i = 0; i < count; ++i) batch.push_back(Next());
  return batch;
}

std::vector<txn::Transaction> Workload::MakeShardBatch(ShardId shard,
                                                       size_t count) {
  std::vector<txn::Transaction> batch;
  batch.reserve(count);
  for (size_t i = 0; i < count; ++i) batch.push_back(NextForShard(shard));
  return batch;
}

void WorkloadRegistry::Register(std::string name, Factory factory) {
  factories_[std::move(name)] = std::move(factory);
}

std::unique_ptr<Workload> WorkloadRegistry::Create(
    const std::string& name, const WorkloadOptions& options) const {
  auto it = factories_.find(name);
  return it == factories_.end() ? nullptr : it->second(options);
}

bool WorkloadRegistry::Contains(const std::string& name) const {
  return factories_.find(name) != factories_.end();
}

std::vector<std::string> WorkloadRegistry::Names() const {
  std::vector<std::string> names;
  names.reserve(factories_.size());
  for (const auto& [name, factory] : factories_) names.push_back(name);
  return names;
}

WorkloadRegistry& WorkloadRegistry::Global() {
  // Built-ins register here (not via static initializers, which static
  // libraries would dead-strip).
  static WorkloadRegistry* registry = [] {
    auto* r = new WorkloadRegistry();
    r->Register("smallbank", [](const WorkloadOptions& options) {
      return std::unique_ptr<Workload>(
          new SmallBankWorkload(SmallBankConfig::FromOptions(options)));
    });
    r->Register("ycsb", [](const WorkloadOptions& options) {
      return std::unique_ptr<Workload>(new YcsbWorkload(options));
    });
    r->Register("tpcc_lite", [](const WorkloadOptions& options) {
      return std::unique_ptr<Workload>(new TpccLiteWorkload(options));
    });
    return r;
  }();
  return *registry;
}

}  // namespace thunderbolt::workload
