#include "workload/workload.h"

#include "workload/smallbank_workload.h"
#include "workload/tpcc_workload.h"
#include "workload/ycsb_workload.h"

namespace thunderbolt::workload {

std::vector<txn::Transaction> Workload::MakeBatch(size_t count) {
  std::vector<txn::Transaction> batch;
  batch.reserve(count);
  for (size_t i = 0; i < count; ++i) batch.push_back(Next());
  return batch;
}

std::vector<txn::Transaction> Workload::MakeShardBatch(ShardId shard,
                                                       size_t count) {
  std::vector<txn::Transaction> batch;
  batch.reserve(count);
  for (size_t i = 0; i < count; ++i) batch.push_back(NextForShard(shard));
  return batch;
}

void WorkloadRegistry::Register(std::string name, Factory factory) {
  factories_[std::move(name)] = std::move(factory);
}

std::unique_ptr<Workload> WorkloadRegistry::Create(
    const std::string& name, const WorkloadOptions& options) const {
  auto it = factories_.find(name);
  return it == factories_.end() ? nullptr : it->second(options);
}

bool WorkloadRegistry::Contains(const std::string& name) const {
  return factories_.find(name) != factories_.end();
}

std::vector<std::string> WorkloadRegistry::Names() const {
  std::vector<std::string> names;
  names.reserve(factories_.size());
  for (const auto& [name, factory] : factories_) names.push_back(name);
  return names;
}

WorkloadRegistry& WorkloadRegistry::Global() {
  // Built-ins register here (not via static initializers, which static
  // libraries would dead-strip).
  static WorkloadRegistry* registry = [] {
    auto* r = new WorkloadRegistry();
    r->Register("smallbank", [](const WorkloadOptions& options) {
      return std::unique_ptr<Workload>(
          new SmallBankWorkload(SmallBankConfig::FromOptions(options)));
    });
    r->Register("ycsb", [](const WorkloadOptions& options) {
      return std::unique_ptr<Workload>(new YcsbWorkload(options));
    });
    r->Register("tpcc_lite", [](const WorkloadOptions& options) {
      return std::unique_ptr<Workload>(new TpccLiteWorkload(options));
    });
    return r;
  }();
  return *registry;
}

}  // namespace thunderbolt::workload
