#include "workload/smallbank_workload.h"

#include <cassert>
#include <cerrno>
#include <cstdlib>

#include "contract/smallbank.h"

namespace thunderbolt::workload {

SmallBankConfig SmallBankConfig::FromOptions(const WorkloadOptions& options) {
  SmallBankConfig config;
  config.num_accounts = options.num_records;
  config.theta = options.theta;
  config.read_ratio = options.read_ratio;
  config.cross_shard_ratio = options.cross_shard_ratio;
  config.num_shards = options.num_shards;
  config.seed = options.seed;
  return config;
}

SmallBankWorkload::SmallBankWorkload(SmallBankConfig config)
    : Workload(config.num_shards),
      config_(config),
      rng_(config.seed),
      global_zipf_(config.num_accounts, config.theta) {
  RebuildShardBuckets();
}

void SmallBankWorkload::RebuildShardBuckets() {
  shard_accounts_.assign(config_.num_shards, {});
  for (uint64_t i = 0; i < config_.num_accounts; ++i) {
    ShardId s = mapper_.ShardOfAccount(AccountName(i));
    shard_accounts_[s].push_back(i);
  }
  shard_zipf_.clear();
  shard_zipf_.reserve(config_.num_shards);
  for (uint32_t s = 0; s < config_.num_shards; ++s) {
    // Guard against empty shards (tiny account pools): fall back to size 1.
    uint64_t n = shard_accounts_[s].empty() ? 1 : shard_accounts_[s].size();
    shard_zipf_.emplace_back(n, config_.theta);
  }
}

std::string SmallBankWorkload::AccountName(uint64_t i) {
  return "acct" + std::to_string(i);
}

std::string SmallBankWorkload::PlacementHint(const std::string& account) const {
  // "acct<N>" pairs with its payment partner "acct<N ^ 1>": both map to
  // the even-numbered group member. Unknown names group with themselves.
  if (account.rfind("acct", 0) != 0) return account;
  errno = 0;
  char* end = nullptr;
  unsigned long long i = std::strtoull(account.c_str() + 4, &end, 10);
  if (end == account.c_str() + 4 || *end != '\0' || errno == ERANGE) {
    return account;
  }
  return AccountName(i & ~1ULL);
}

void SmallBankWorkload::InitStore(storage::KVStore* store) const {
  store->Reserve(store->size() + 2 * config_.num_accounts);
  for (uint64_t i = 0; i < config_.num_accounts; ++i) {
    std::string account = AccountName(i);
    store->Put(txn::CheckingKey(account), config_.initial_checking);
    store->Put(txn::SavingsKey(account), config_.initial_savings);
  }
}

std::string SmallBankWorkload::SampleGlobalAccount() {
  return AccountName(global_zipf_.Next(rng_));
}

std::string SmallBankWorkload::SampleShardAccount(ShardId shard) {
  const std::vector<uint64_t>& bucket = shard_accounts_[shard];
  if (bucket.empty()) return AccountName(0);
  uint64_t rank = shard_zipf_[shard].Next(rng_);
  return AccountName(bucket[rank]);
}

txn::Transaction SmallBankWorkload::MakeGetBalance(std::string account) {
  txn::Transaction tx;
  tx.id = next_txn_id_++;
  tx.contract = contract::kGetBalance;
  tx.accounts.push_back(std::move(account));
  return tx;
}

txn::Transaction SmallBankWorkload::MakeSendPayment(std::string from,
                                                    std::string to) {
  txn::Transaction tx;
  tx.id = next_txn_id_++;
  tx.contract = contract::kSendPayment;
  tx.accounts.push_back(std::move(from));
  tx.accounts.push_back(std::move(to));
  tx.params.push_back(static_cast<storage::Value>(rng_.NextRange(1, 5)));
  return tx;
}

txn::Transaction SmallBankWorkload::Next() {
  if (rng_.NextBool(config_.read_ratio)) {
    return MakeGetBalance(SampleGlobalAccount());
  }
  std::string from = SampleGlobalAccount();
  std::string to = SampleGlobalAccount();
  // Distinct accounts keep the transfer meaningful.
  for (int attempts = 0; to == from && attempts < 16; ++attempts) {
    to = SampleGlobalAccount();
  }
  return MakeSendPayment(std::move(from), std::move(to));
}

txn::Transaction SmallBankWorkload::NextForShard(ShardId shard) {
  assert(shard < config_.num_shards);
  if (config_.num_shards > 1 && rng_.NextBool(config_.cross_shard_ratio)) {
    // Cross-shard SendPayment: one account here, one in another shard.
    std::string from = SampleShardAccount(shard);
    ShardId other =
        static_cast<ShardId>(rng_.NextBounded(config_.num_shards - 1));
    if (other >= shard) ++other;
    std::string to = SampleShardAccount(other);
    return MakeSendPayment(std::move(from), std::move(to));
  }
  if (rng_.NextBool(config_.read_ratio)) {
    return MakeGetBalance(SampleShardAccount(shard));
  }
  std::string from = SampleShardAccount(shard);
  std::string to = SampleShardAccount(shard);
  for (int attempts = 0; to == from && attempts < 16; ++attempts) {
    to = SampleShardAccount(shard);
  }
  return MakeSendPayment(std::move(from), std::move(to));
}

storage::Value SmallBankWorkload::TotalBalance(
    const storage::KVStore& store) const {
  storage::Value total = 0;
  for (uint64_t i = 0; i < config_.num_accounts; ++i) {
    std::string account = AccountName(i);
    total += store.GetOrDefault(txn::CheckingKey(account), 0);
    total += store.GetOrDefault(txn::SavingsKey(account), 0);
  }
  return total;
}

Status SmallBankWorkload::CheckInvariant(
    const storage::KVStore& store) const {
  storage::Value expected =
      static_cast<storage::Value>(config_.num_accounts) *
      (config_.initial_checking + config_.initial_savings);
  storage::Value actual = TotalBalance(store);
  if (actual != expected) {
    return Status::Corruption(
        "smallbank: total balance " + std::to_string(actual) +
        " != seeded total " + std::to_string(expected));
  }
  return Status::OK();
}

}  // namespace thunderbolt::workload
