#include "core/cross_shard_executor.h"

#include <algorithm>
#include <string>
#include <unordered_map>

#include "baselines/serial_executor.h"

namespace thunderbolt::core {

CrossShardResult CrossShardExecutor::Execute(
    const std::vector<txn::Transaction>& txs, storage::KVStore* store,
    const std::vector<ShardId>* home_shards,
    placement::AccessTracker* tracker) const {
  CrossShardResult result;
  if (txs.empty()) return result;
  const bool track = mapper_ != nullptr && home_shards != nullptr &&
                     home_shards->size() == txs.size();

  // Execute in commit order (the state outcome), accumulating per-account
  // queue times (the virtual-time plan). A transaction's cost lands on
  // every account queue it touches; queues drain in parallel on the worker
  // pool, so the makespan is bounded below by the heaviest queue and by
  // total work divided by the workers.
  std::unordered_map<std::string, SimTime> account_queue;
  SimTime total = 0;
  for (size_t t = 0; t < txs.size(); ++t) {
    const txn::Transaction& tx = txs[t];
    if (track) {
      // Remote-access accounting: every account this transaction reaches
      // outside its home shard is a pull the placement policy could have
      // avoided — the signal hot-key migration ranks on.
      const ShardId home = (*home_shards)[t];
      for (const std::string& account : tx.accounts) {
        if (mapper_->ShardOfAccount(account) != home) {
          ++result.remote_accesses;
          if (tracker != nullptr) tracker->RecordRemoteAccess(account, home);
        }
      }
    }
    std::vector<txn::Transaction> one{tx};
    baselines::SerialExecutionResult r =
        baselines::ExecuteSerial(*registry_, one, store, op_cost_);
    result.total_ops += r.total_ops;
    ++result.executed;
    total += r.duration;
    // Chained dependency: the transaction starts after every queue it
    // participates in has drained; its cost extends all of them.
    SimTime ready = 0;
    for (const std::string& account : tx.accounts) {
      ready = std::max(ready, account_queue[account]);
    }
    for (const std::string& account : tx.accounts) {
      account_queue[account] = ready + r.duration;
    }
  }
  result.distinct_accounts = account_queue.size();
  for (const auto& [account, finish] : account_queue) {
    result.critical_path = std::max(result.critical_path, finish);
  }
  result.duration =
      std::max(total / num_workers_, result.critical_path);
  return result;
}

}  // namespace thunderbolt::core
