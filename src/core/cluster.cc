#include "core/cluster.h"

#include <cassert>
#include <cstdio>
#include <cstdlib>

#include "ce/executor_pool.h"

namespace thunderbolt::core {

namespace {

/// Parses `spec` over WorkloadOptions defaults, aborting on malformed
/// params (cluster construction is configuration; see Cluster ctor docs).
workload::WorkloadOptions OptionsFromParams(const std::string& spec) {
  workload::WorkloadOptions options;
  Status s = workload::ApplyWorkloadParams(spec, &options);
  if (!s.ok()) {
    std::fprintf(stderr, "Cluster: bad workload params \"%s\": %s\n",
                 spec.c_str(), s.ToString().c_str());
    std::abort();
  }
  return options;
}

}  // namespace

Cluster::Cluster(ThunderboltConfig config, const std::string& workload_name,
                 workload::WorkloadOptions options)
    : config_(config) {
  options.num_shards = config_.n;
  simulator_ = std::make_unique<sim::Simulator>();
  network_ = std::make_unique<net::SimNetwork>(simulator_.get(), config_.n,
                                               config_.latency, config_.seed);
  keys_ = crypto::KeyDirectory::Create(config_.n, config_.seed);
  registry_ = contract::Registry::CreateDefault();
  workload_ =
      workload::WorkloadRegistry::Global().Create(workload_name, options);
  if (workload_ == nullptr) {
    std::fprintf(stderr, "Cluster: unknown workload \"%s\"\n",
                 workload_name.c_str());
    std::abort();
  }
  placement_ = workload::InstallPlacement(
      workload_.get(), config_.placement, config_.placement_params, config_.n);
  if (placement_ == nullptr) {
    std::fprintf(stderr, "Cluster: unknown placement policy \"%s\"\n",
                 config_.placement.c_str());
    std::abort();
  }
  // The obs bundle precedes the store: a "wal" backend traces its
  // append/checkpoint barriers through it (and into its sim-time clock).
  obs_ = std::make_unique<obs::Observability>(config_.obs);
  shared_ = std::make_unique<SharedClusterState>();
  storage::StoreOptions store_options;
  store_options.tracer = obs_->tracer();
  store_options.now_us = [sim = simulator_.get()] { return sim->Now(); };
  shared_->canonical =
      storage::StoreRegistry::Global().Create(config_.store, store_options);
  if (shared_->canonical == nullptr) {
    std::fprintf(stderr, "Cluster: unknown store backend \"%s\"\n",
                 config_.store.c_str());
    std::abort();
  }
  // Validate the pool selection before any node constructs with it.
  if (ce::CreateExecutorPool(config_.pool, 1, config_.exec_costs) == nullptr) {
    std::fprintf(stderr, "Cluster: unknown executor pool \"%s\"\n",
                 config_.pool.c_str());
    std::abort();
  }
  workload_->InitStore(shared_->canonical.get());
  if (config_.service.enabled) {
    // Open-loop front end: the arrival processes draw client transactions
    // from the workload (one shard-homed stream per shard) and proposers
    // dequeue admitted work instead of generating batches on demand.
    service_ = std::make_unique<svc::ServiceFrontEnd>(
        config_.service, config_.n, config_.seed,
        [w = workload_.get()](ShardId shard) { return w->NextForShard(shard); },
        &obs_->metrics());
    shared_->service = service_.get();
  }
  metrics_ = std::make_unique<ClusterMetrics>();

  nodes_.reserve(config_.n);
  for (ReplicaId id = 0; id < config_.n; ++id) {
    nodes_.push_back(std::make_unique<ThunderboltNode>(
        config_, id, simulator_.get(), network_.get(), &keys_, registry_,
        workload_.get(), placement_, shared_.get(), metrics_.get(),
        obs_.get(), /*is_observer=*/id == 0));
  }
}

Cluster::Cluster(ThunderboltConfig config, const std::string& workload_name,
                 const std::string& workload_params)
    : Cluster(config, workload_name, OptionsFromParams(workload_params)) {}

Cluster::~Cluster() = default;

void Cluster::CrashReplicaAt(ReplicaId id, SimTime when) {
  assert(id != 0 && "the observer replica must stay alive");
  assert(!started_ && "CrashReplicaAt must be scheduled before Run");
  simulator_->ScheduleAt(when, [this, id]() {
    network_->Crash(id);
    nodes_[id]->Stop();
    obs::Tracer& tracer = *obs_->tracer();
    if (tracer.enabled()) {
      obs::TraceEvent e;
      e.kind = obs::EventKind::kCrash;
      e.pid = id;
      e.ts_us = simulator_->Now();
      tracer.Record(e);
    }
  });
}

ClusterResult Cluster::Run(SimTime duration) {
  // Snapshot counters so repeated Run calls report window deltas.
  const uint64_t invalid0 = metrics_->invalid_blocks;
  const uint64_t skip0 = metrics_->skip_blocks;
  const uint64_t shift0 = metrics_->shift_blocks;
  const uint64_t conv0 = metrics_->conversions;
  const uint64_t reconf0 = metrics_->reconfigurations;
  const uint64_t aborts0 = metrics_->preplay_aborts;
  const size_t migrations0 = metrics_->migration_events.size();

  // The pools break restarts down by cause into registry counters named
  // pool.<pool>.restart_reason.<reason>; snapshot them for window deltas.
  auto reason_count = [this](size_t r) -> uint64_t {
    const obs::Counter* c = obs_->metrics().FindCounter(
        "pool." + config_.pool + ".restart_reason." +
        obs::AbortReasonName(static_cast<obs::AbortReason>(r)));
    return c == nullptr ? 0 : c->value();
  };
  std::array<uint64_t, obs::kNumAbortReasons> reasons0{};
  for (size_t r = 0; r < obs::kNumAbortReasons; ++r) {
    reasons0[r] = reason_count(r);
  }

  if (!started_) {
    started_ = true;
    for (auto& node : nodes_) node->Start();
    if (obs_->timeseries() != nullptr && config_.obs.timeseries_window_us > 0) {
      ScheduleWindowSample(config_.obs.timeseries_window_us);
    }
    if (service_ != nullptr) PumpArrivals();
  }
  SimTime start = simulator_->Now();
  SimTime end = start + duration;
  simulator_->RunUntil(end);
  // Record the run edge so a later FlushTimeSeries stamps the trailing
  // partial window at `end`, not at the last boundary that happened to
  // close (idempotent for windows the sampler chain already closed).
  obs_->SampleWindow(end);

  ClusterResult result;
  result.duration = duration;
  result.invalid_blocks = metrics_->invalid_blocks - invalid0;
  result.skip_blocks = metrics_->skip_blocks - skip0;
  result.shift_blocks = metrics_->shift_blocks - shift0;
  result.conversions = metrics_->conversions - conv0;
  result.reconfigurations = metrics_->reconfigurations - reconf0;
  result.preplay_aborts = metrics_->preplay_aborts - aborts0;
  result.migrations = metrics_->migration_events.size() - migrations0;
  for (size_t r = 0; r < obs::kNumAbortReasons; ++r) {
    result.abort_reasons[r] = reason_count(r) - reasons0[r];
  }
  result.commit_times = metrics_->commit_times;

  // A transaction counts toward this window only once its pipeline
  // completion time lies within it: consensus alone does not "commit" work
  // the executor has not caught up with (ClusterMetrics::CommitSample).
  Histogram window;
  Histogram admit_window;  // completion - admit: the admit->commit view.
  for (; sample_cursor_ < metrics_->samples.size(); ++sample_cursor_) {
    const ClusterMetrics::CommitSample& s =
        metrics_->samples[sample_cursor_];
    if (s.completion > end) break;
    if (s.cross) {
      ++result.committed_cross;
    } else {
      ++result.committed_single;
    }
    window.Add(static_cast<double>(s.completion - s.submit));
    admit_window.Add(static_cast<double>(s.completion - s.admit));
  }

  uint64_t committed = result.committed_single + result.committed_cross;
  result.throughput_tps =
      static_cast<double>(committed) / ToSeconds(duration);
  result.avg_latency_s = window.Mean() / 1e6;
  result.p50_latency_s = window.Median() / 1e6;
  result.p99_latency_s = window.Percentile(99) / 1e6;
  result.p999_latency_s = window.Percentile(99.9) / 1e6;
  result.latency_samples = window.Count();
  result.admit_p99_latency_s = admit_window.Percentile(99) / 1e6;
  result.admit_p999_latency_s = admit_window.Percentile(99.9) / 1e6;

  if (service_ != nullptr) {
    const svc::ServiceFrontEnd::Counters& c = service_->counters();
    result.offered = c.offered - svc_snapshot_.offered;
    result.admitted = c.admitted - svc_snapshot_.admitted;
    result.rejected = c.rejected - svc_snapshot_.rejected;
    result.shed = c.shed - svc_snapshot_.shed;
    svc_snapshot_ = c;
  }

  // Surface cluster-level outcomes and the canonical store's traffic
  // counters through the registry, so a --metrics-out snapshot captures
  // the whole system, not just the pools' view.
  obs::MetricsRegistry& m = obs_->metrics();
  auto sync_counter = [&m](const char* name, uint64_t cumulative) {
    obs::Counter& c = m.GetCounter(name);
    c.Inc(cumulative - c.value());  // Both monotone; bring up to date.
  };
  const storage::StoreStats stats = shared_->canonical->Stats();
  sync_counter("store.gets", stats.gets);
  sync_counter("store.puts", stats.puts);
  sync_counter("store.deletes", stats.deletes);
  sync_counter("store.batches", stats.batches);
  sync_counter("store.scans", stats.scans);
  sync_counter("store.snapshots", stats.snapshots);
  sync_counter("store.forks", stats.forks);
  // Wrapper-backend counters appear only when the layer is in the stack,
  // so plain-backend metrics snapshots stay byte-identical to before.
  if (stats.cache_hits + stats.cache_misses > 0) {
    sync_counter("store.cache_hits", stats.cache_hits);
    sync_counter("store.cache_misses", stats.cache_misses);
  }
  if (stats.wal_appends + stats.wal_checkpoints +
          stats.wal_recovered_records > 0) {
    sync_counter("store.wal_appends", stats.wal_appends);
    sync_counter("store.wal_syncs", stats.wal_syncs);
    sync_counter("store.wal_checkpoints", stats.wal_checkpoints);
    sync_counter("store.wal_recovered_records", stats.wal_recovered_records);
  }
  m.GetGauge("store.live_keys").Set(static_cast<double>(stats.live_keys));
  m.GetCounter("cluster.committed_single").Inc(result.committed_single);
  m.GetCounter("cluster.committed_cross").Inc(result.committed_cross);
  m.GetCounter("cluster.invalid_blocks").Inc(result.invalid_blocks);
  m.GetCounter("cluster.skip_blocks").Inc(result.skip_blocks);
  m.GetCounter("cluster.shift_blocks").Inc(result.shift_blocks);
  m.GetCounter("cluster.conversions").Inc(result.conversions);
  m.GetCounter("cluster.reconfigurations").Inc(result.reconfigurations);
  m.GetCounter("cluster.preplay_aborts").Inc(result.preplay_aborts);
  m.GetCounter("cluster.migrations").Inc(result.migrations);
  m.GetHistogram("cluster.commit_latency_us").Merge(window);
  // Only under the front end, so closed-loop metrics snapshots stay
  // byte-identical to before (there admit == submit anyway).
  if (service_ != nullptr) {
    m.GetHistogram("cluster.admit_latency_us").Merge(admit_window);
  }
  obs_->SyncTraceStats();

  // Window deltas of the six phase.<name>_us histograms (pool-side phases
  // recorded during preplay, commit-path phases by the observer). Samples
  // are append-only in insertion order, so a cursor per phase suffices.
  for (size_t p = 0; p < obs::kNumPhases; ++p) {
    const std::string name =
        std::string("phase.") + obs::PhaseName(static_cast<obs::Phase>(p)) +
        "_us";
    const obs::HistogramMetric* h = m.FindHistogram(name);
    if (h == nullptr) continue;
    const Histogram snap = h->Snapshot();
    const std::vector<double>& samples = snap.samples();
    Histogram& out = result.phase_latency[static_cast<obs::Phase>(p)];
    for (size_t i = phase_cursor_[p]; i < samples.size(); ++i) {
      out.Add(samples[i]);
    }
    phase_cursor_[p] = samples.size();
  }
  return result;
}

void Cluster::ScheduleWindowSample(SimTime when) {
  simulator_->ScheduleAt(when, [this, when]() {
    obs_->SampleWindow(when);
    ScheduleWindowSample(when + config_.obs.timeseries_window_us);
  });
}

void Cluster::PumpArrivals() {
  const SimTime next = service_->NextArrivalTime();
  if (next == kSimTimeNever) return;  // Trace replay exhausted.
  simulator_->ScheduleAt(next, [this, next]() {
    service_->AdvanceTo(next);
    PumpArrivals();
  });
}

}  // namespace thunderbolt::core
