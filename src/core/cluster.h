// Cluster harness: builds and runs a simulated Thunderbolt deployment of n
// replicas on one discrete-event simulator. This is the top-level entry
// point used by the system benchmarks (Figures 13-17), the integration
// tests, and the examples.
#ifndef THUNDERBOLT_CORE_CLUSTER_H_
#define THUNDERBOLT_CORE_CLUSTER_H_

#include <memory>
#include <vector>

#include "common/simulator.h"
#include "core/config.h"
#include "core/node.h"
#include "workload/smallbank_workload.h"

namespace thunderbolt::core {

/// Summary of a cluster run.
struct ClusterResult {
  uint64_t committed_single = 0;
  uint64_t committed_cross = 0;
  uint64_t invalid_blocks = 0;
  uint64_t skip_blocks = 0;
  uint64_t shift_blocks = 0;
  uint64_t conversions = 0;
  uint64_t reconfigurations = 0;
  uint64_t preplay_aborts = 0;
  SimTime duration = 0;
  double throughput_tps = 0;     // Committed transactions per virtual second.
  double avg_latency_s = 0;      // Mean commit latency in virtual seconds.
  double p50_latency_s = 0;
  double p99_latency_s = 0;
  /// (commit index, completion time) pairs from the observer (Figure 16).
  std::vector<std::pair<Round, SimTime>> commit_times;
};

class Cluster {
 public:
  /// `workload_config.num_shards` is forced to `config.n` (one shard per
  /// replica, paper section 3.1).
  Cluster(ThunderboltConfig config,
          workload::SmallBankConfig workload_config);
  ~Cluster();

  Cluster(const Cluster&) = delete;
  Cluster& operator=(const Cluster&) = delete;

  /// Crashes a replica at virtual time `when` (relative to run start).
  /// Must be called before Run. The observer (replica 0) must stay alive.
  void CrashReplicaAt(ReplicaId id, SimTime when);

  /// Runs the cluster for `duration` of virtual time and returns metrics.
  /// May be called repeatedly; each call continues the same deployment and
  /// reports the delta window.
  ClusterResult Run(SimTime duration);

  // --- Introspection ---------------------------------------------------------
  const ThunderboltNode& node(ReplicaId id) const { return *nodes_[id]; }
  sim::Simulator& simulator() { return *simulator_; }
  net::SimNetwork& network() { return *network_; }
  const storage::MemKVStore& canonical_state() const {
    return shared_->canonical;
  }
  const ClusterMetrics& metrics() const { return *metrics_; }
  workload::SmallBankWorkload& workload() { return *workload_; }

 private:
  ThunderboltConfig config_;
  std::unique_ptr<sim::Simulator> simulator_;
  std::unique_ptr<net::SimNetwork> network_;
  crypto::KeyDirectory keys_;
  std::shared_ptr<const contract::Registry> registry_;
  std::unique_ptr<workload::SmallBankWorkload> workload_;
  std::unique_ptr<SharedClusterState> shared_;
  std::unique_ptr<ClusterMetrics> metrics_;
  std::vector<std::unique_ptr<ThunderboltNode>> nodes_;
  bool started_ = false;
  /// Cursor into metrics_->samples for window accounting across Run calls.
  size_t sample_cursor_ = 0;
};

}  // namespace thunderbolt::core

#endif  // THUNDERBOLT_CORE_CLUSTER_H_
