// Cluster harness: builds and runs a simulated Thunderbolt deployment of n
// replicas on one discrete-event simulator. This is the top-level entry
// point used by the system benchmarks (Figures 13-17), the integration
// tests, and the examples.
#ifndef THUNDERBOLT_CORE_CLUSTER_H_
#define THUNDERBOLT_CORE_CLUSTER_H_

#include <array>
#include <memory>
#include <string>
#include <vector>

#include "common/simulator.h"
#include "core/config.h"
#include "core/node.h"
#include "obs/latency.h"
#include "obs/obs.h"
#include "placement/placement.h"
#include "svc/service.h"
#include "workload/workload.h"

namespace thunderbolt::core {

/// Summary of a cluster run.
struct ClusterResult {
  uint64_t committed_single = 0;
  uint64_t committed_cross = 0;
  uint64_t invalid_blocks = 0;
  uint64_t skip_blocks = 0;
  uint64_t shift_blocks = 0;
  uint64_t conversions = 0;
  uint64_t reconfigurations = 0;
  uint64_t preplay_aborts = 0;
  /// Hot-key migrations applied at reconfiguration boundaries in this
  /// window (directory placement; 0 for policies without migration).
  uint64_t migrations = 0;
  SimTime duration = 0;
  double throughput_tps = 0;     // Committed transactions per virtual second.
  double avg_latency_s = 0;      // Mean commit latency in virtual seconds.
  double p50_latency_s = 0;
  double p99_latency_s = 0;
  double p999_latency_s = 0;
  /// Commit-latency samples behind the percentiles above. When 0 (an idle
  /// window) the percentile fields are meaningless — consumers must treat
  /// them as absent, not as "0 seconds" (bench JSON emits null).
  uint64_t latency_samples = 0;
  /// Preplay aborts in this window broken down by cause, indexed by
  /// obs::AbortReason (window delta of the pools' restart_reason metrics).
  std::array<uint64_t, obs::kNumAbortReasons> abort_reasons{};
  /// (commit index, completion time) pairs from the observer (Figure 16).
  std::vector<std::pair<Round, SimTime>> commit_times;
  /// Per-phase commit-latency decomposition for this window (microsecond
  /// samples recorded into the registry's phase.<name>_us histograms by the
  /// pools — queue_wait / execute / restart_backoff — and the observer's
  /// commit path — validate / commit_apply / cross_shard_hold). Phases
  /// count different populations (preplayed vs committed vs cross-shard
  /// transactions), so their counts need not match latency_samples.
  obs::LatencyBreakdown phase_latency;

  // --- Service front end (all 0 in closed-loop runs) ------------------------
  /// Window deltas of the front end's accounting (svc/admission.h
  /// terminology): arrivals generated / accepted into a queue / turned away
  /// at the door (limiter or full drop-tail/codel queue) / dropped after
  /// admission (shed-oldest eviction, codel deadline shedding).
  uint64_t offered = 0;
  uint64_t admitted = 0;
  uint64_t rejected = 0;
  uint64_t shed = 0;
  /// Admit->commit percentiles over the same window samples as
  /// p99/p999_latency_s (which are arrival->commit under the front end);
  /// the gap between the two views is the admission-queue wait. Meaningless
  /// when latency_samples == 0.
  double admit_p99_latency_s = 0;
  double admit_p999_latency_s = 0;
};

class Cluster {
 public:
  /// Runs the named registry workload ("smallbank", "ycsb", "tpcc_lite",
  /// ...) configured from `options`. `options.num_shards` is forced to
  /// `config.n` (one shard per replica, paper section 3.1). Aborts on an
  /// unknown workload name — cluster construction is configuration, and a
  /// bad name is a programming error at every call site.
  Cluster(ThunderboltConfig config, const std::string& workload_name,
          workload::WorkloadOptions options);

  /// Same, with the options given as a "key=value[,key=value...]" param
  /// string over WorkloadOptions defaults, so
  /// `Cluster(config, "ycsb", "theta=0.9")` just works.
  Cluster(ThunderboltConfig config, const std::string& workload_name,
          const std::string& workload_params = "");

  ~Cluster();

  Cluster(const Cluster&) = delete;
  Cluster& operator=(const Cluster&) = delete;

  /// Crashes a replica at virtual time `when` (relative to run start).
  /// Must be called before Run. The observer (replica 0) must stay alive.
  void CrashReplicaAt(ReplicaId id, SimTime when);

  /// Runs the cluster for `duration` of virtual time and returns metrics.
  /// May be called repeatedly; each call continues the same deployment and
  /// reports the delta window.
  ClusterResult Run(SimTime duration);

  // --- Introspection ---------------------------------------------------------
  const ThunderboltNode& node(ReplicaId id) const { return *nodes_[id]; }
  sim::Simulator& simulator() { return *simulator_; }
  net::SimNetwork& network() { return *network_; }
  const storage::KVStore& canonical_state() const {
    return *shared_->canonical;
  }
  const ClusterMetrics& metrics() const { return *metrics_; }
  /// The cluster's observability bundle: metrics are always live; the
  /// trace ring exists when config.obs.trace was set. WriteJson /
  /// WriteChromeJson on these produce the bench --metrics-out/--trace-out
  /// artifacts.
  obs::Observability& obs() { return *obs_; }
  const obs::Observability& obs() const { return *obs_; }
  workload::Workload& workload() { return *workload_; }
  const workload::Workload& workload() const { return *workload_; }
  /// The open-loop service front end; null unless config.service.enabled.
  const svc::ServiceFrontEnd* service() const { return service_.get(); }
  /// The placement policy every node maps accounts through (mutated only
  /// at reconfiguration boundaries by hot-key migration).
  const placement::PlacementPolicy& placement() const { return *placement_; }
  /// Hot-key migrations applied since construction, in order.
  const std::vector<placement::MigrationEvent>& migration_events() const {
    return metrics_->migration_events;
  }

  /// The workload's consistency invariant over the canonical committed
  /// state (end-of-run validation for tests and benches).
  Status CheckInvariant() const {
    return workload_->CheckInvariant(*shared_->canonical);
  }

 private:
  ThunderboltConfig config_;
  std::unique_ptr<sim::Simulator> simulator_;
  std::unique_ptr<net::SimNetwork> network_;
  crypto::KeyDirectory keys_;
  std::shared_ptr<const contract::Registry> registry_;
  std::unique_ptr<workload::Workload> workload_;
  /// Shared with every node and (as const) with the workload's mapper;
  /// declared after workload_ so the locality policy's hint — which calls
  /// back into the workload — never outlives it.
  std::shared_ptr<placement::PlacementPolicy> placement_;
  /// Declared before shared_: the canonical store's backend may trace into
  /// the bundle (a "wal" store flushes + records a final wal.append span at
  /// destruction), so the tracer must outlive it.
  std::unique_ptr<obs::Observability> obs_;
  /// Open-loop front end (null in closed loop). After obs_ (publishes svc.*
  /// metrics into the bundle) and before shared_ (nodes reach it through
  /// SharedClusterState::service).
  std::unique_ptr<svc::ServiceFrontEnd> service_;
  std::unique_ptr<SharedClusterState> shared_;
  std::unique_ptr<ClusterMetrics> metrics_;
  std::vector<std::unique_ptr<ThunderboltNode>> nodes_;
  bool started_ = false;
  /// Cursor into metrics_->samples for window accounting across Run calls.
  size_t sample_cursor_ = 0;
  /// Cursors into the registry's phase.<name>_us histogram samples, one
  /// per obs::Phase, for the same window-delta accounting.
  std::array<size_t, obs::kNumPhases> phase_cursor_{};

  /// Front-end counter totals at the last window edge, for ClusterResult's
  /// offered/admitted/rejected/shed window deltas.
  svc::ServiceFrontEnd::Counters svc_snapshot_;

  /// Schedules the self-rechaining time-series sampler event at `when`
  /// (a window boundary on the sim clock). Started once, from the first
  /// Run, when config.obs.timeseries is set.
  void ScheduleWindowSample(SimTime when);

  /// Self-rechaining arrival-pump event: admits every arrival at its exact
  /// sim time, then re-arms at the next one. Started once, from the first
  /// Run, when the service front end is enabled.
  void PumpArrivals();
};

}  // namespace thunderbolt::core

#endif  // THUNDERBOLT_CORE_CLUSTER_H_
