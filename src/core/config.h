// Cluster-wide configuration for Thunderbolt nodes.
#ifndef THUNDERBOLT_CORE_CONFIG_H_
#define THUNDERBOLT_CORE_CONFIG_H_

#include <cstdint>
#include <string>

#include "ce/executor_pool.h"
#include "common/types.h"
#include "net/network.h"
#include "obs/obs.h"
#include "svc/service.h"

namespace thunderbolt::core {

/// Which execution pipeline the cluster runs (paper section 12).
enum class ExecutionMode {
  /// CE preplay (EOV) + parallel verification + OE cross-shard path.
  kThunderbolt,
  /// OCC preplay + parallel verification (the Thunderbolt-OCC baseline).
  kThunderboltOcc,
  /// Plain Tusk: blocks carry raw transactions, executed serially in
  /// commit order after consensus (OE with sequential execution).
  kTusk,
};

struct ThunderboltConfig {
  uint32_t n = 4;                      // Replicas (= shards).
  ExecutionMode mode = ExecutionMode::kThunderbolt;

  // --- Shard proposer / execution ------------------------------------------
  uint32_t batch_size = 500;           // Transactions preplayed per block.
  uint32_t num_executors = 16;         // CE pool width.
  uint32_t num_validators = 16;        // Parallel validation width.
  ce::ExecutionCostModel exec_costs;   // Per-operation virtual costs.
  /// Executor pool driving preplay, by ce::CreateExecutorPool name:
  /// "sim" (default; deterministic virtual-time simulation — required for
  /// determinism baselines) or "thread" (real std::thread workers,
  /// wall-clock timings, nondeterministic interleavings).
  std::string pool = "sim";
  /// Validation replays declared operations without scheduling overhead;
  /// per-op virtual cost (cheaper than first execution).
  SimTime validation_op_cost = Micros(5);

  // --- Consensus cadence ----------------------------------------------------
  /// Fixed per-proposal CPU cost (batch serialization, signing, block
  /// bookkeeping) charged before broadcasting each block. Together with the
  /// network's bandwidth/processing model this sets the round cadence; the
  /// default approximates the ~0.07 s/round the paper reports (Figure 16).
  SimTime proposal_prep_cost = Millis(25);
  /// A shard proposer waiting for the round leader's proposal (rule P3)
  /// converts its single-shard transactions to cross-shard after this
  /// timeout (rule P6).
  SimTime leader_timeout = Millis(400);
  /// Conflict handling for single-shard transactions whose accounts
  /// overlap pending cross-shard transactions:
  ///   false (default): convert immediately to cross-shard (rule P4).
  ///   true: defer them and emit Skip blocks until the conflicting
  ///         cross-shard transactions finalize, converting only after
  ///         leader_timeout (the section 5.4 preplay-recovery variant).
  bool use_skip_blocks = false;

  // --- Storage ---------------------------------------------------------------
  /// Canonical committed-store backend, as a storage::StoreRegistry spec:
  /// a plain name ("mem", "sorted", "cow") or a parametrized wrapper spec
  /// ("cached:capacity=4096,inner=sorted", "wal:group_commit=4,
  /// inner=sorted"). "mem" is the historical default (hash map,
  /// byte-identical determinism baselines); "cow" makes snapshot/fork O(1)
  /// structural sharing; "wal" adds a group-committed durability log with
  /// crash recovery (see storage/wal_kv_store.h).
  std::string store = "mem";

  // --- Placement -------------------------------------------------------------
  /// Account -> shard placement policy, by placement::PlacementRegistry
  /// name ("hash", "range", "directory", "locality"). "directory" is the
  /// one that performs hot-key migration at reconfiguration boundaries.
  std::string placement = "hash";
  /// Policy-specific parameters (see placement::PlacementOptions::params).
  std::string placement_params;

  // --- Reconfiguration (section 6) ------------------------------------------
  /// Broadcast a Shift block when some proposer has been silent for K
  /// rounds...
  Round silence_rounds_k = 8;
  /// ...or unconditionally every K' rounds (K' > K). 0 disables periodic
  /// rotation (the system-evaluation default outside Figure 15/16).
  Round reconfig_period_k_prime = 0;

  // --- Observability ---------------------------------------------------------
  /// Trace/metrics knobs for the cluster's obs::Observability bundle.
  /// Metrics are always collected (atomic counters; negligible cost);
  /// `obs.trace = true` additionally records lifecycle trace events into a
  /// ring buffer exported as Chrome trace JSON. Under the "sim" pool the
  /// trace is byte-deterministic per seed (determinism_test pins this).
  obs::ObsOptions obs;

  // --- Service front end ------------------------------------------------------
  /// Open-loop arrival + admission control (svc::ServiceFrontEnd). When
  /// `service.enabled`, proposers pull admitted transactions from per-shard
  /// bounded queues fed by a seeded arrival process instead of generating
  /// fresh batches on demand; commit latency then measures arrival ->
  /// commit. Disabled by default (closed loop, byte-identical to before).
  svc::ServiceConfig service;

  // --- Network ---------------------------------------------------------------
  net::LatencyModel latency = net::LatencyModel::Lan();
  uint64_t seed = 7;
};

}  // namespace thunderbolt::core

#endif  // THUNDERBOLT_CORE_CONFIG_H_
