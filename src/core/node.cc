#include "core/node.h"

#include <algorithm>
#include <cassert>

#include "baselines/occ_engine.h"
#include "baselines/serial_executor.h"
#include "ce/concurrency_controller.h"

namespace thunderbolt::core {

namespace {

/// Read view for preplay: the proposer's speculative overlay (its own
/// in-flight writes) on top of the canonical committed store.
class OverlayStore final : public storage::ReadView {
 public:
  OverlayStore(const std::unordered_map<storage::Key, storage::Value>* overlay,
               const storage::ReadView* base)
      : overlay_(overlay), base_(base) {}

  Result<storage::VersionedValue> Get(const storage::Key& key) const override {
    auto it = overlay_->find(key);
    if (it != overlay_->end()) {
      // Overlay values are uncommitted; synthesize a version above the
      // committed one so OCC-based preplay treats them as fresh.
      auto base = base_->Get(key);
      storage::Version v = base.ok() ? base->version + 1 : 1;
      return storage::VersionedValue{it->second, v};
    }
    return base_->Get(key);
  }

  storage::Value GetOrDefault(const storage::Key& key,
                              storage::Value default_value) const override {
    auto it = overlay_->find(key);
    if (it != overlay_->end()) return it->second;
    return base_->GetOrDefault(key, default_value);
  }

  size_t size() const override { return base_->size(); }

 private:
  const std::unordered_map<storage::Key, storage::Value>* overlay_;
  const storage::ReadView* base_;
};

const ThunderboltPayload* PayloadOf(const dag::BlockPtr& block) {
  return dynamic_cast<const ThunderboltPayload*>(block->content.get());
}

}  // namespace

ThunderboltNode::ThunderboltNode(
    const ThunderboltConfig& config, ReplicaId id, sim::Simulator* simulator,
    net::SimNetwork* network, const crypto::KeyDirectory* keys,
    std::shared_ptr<const contract::Registry> registry,
    workload::Workload* workload,
    std::shared_ptr<placement::PlacementPolicy> placement,
    SharedClusterState* shared, ClusterMetrics* metrics, obs::Observability* obs,
    bool is_observer)
    : config_(config),
      id_(id),
      simulator_(simulator),
      network_(network),
      keys_(keys),
      registry_(std::move(registry)),
      workload_(workload),
      placement_(std::move(placement)),
      shared_(shared),
      metrics_(metrics),
      obs_(obs),
      is_observer_(is_observer),
      pool_(ce::CreateExecutorPool(config.pool, config.num_executors,
                                   config.exec_costs)),
      cross_executor_(registry_.get(), config.exec_costs.op_cost,
                      /*num_workers=*/4, &workload->mapper()),
      owned_shard_(ShardOwnedBy(id, 0, config.n)) {
  // The preplay pool records its per-transaction/batch events and
  // pool.<name>.* metrics directly; pid scopes them to this replica.
  pool_->SetObs(
      ce::PoolObsContext{obs_->tracer(), &obs_->metrics(), id_});
  dag::DagConfig dag_config;
  dag_config.n = config_.n;
  dag_config.id = id_;
  dag_config.epoch = 0;
  dag_ = std::make_unique<dag::DagCore>(dag_config, keys_, network_);
  dag_->SetRoundReadyCallback([this](Round r) { OnRoundReady(r); });
  dag_->SetBlockReceivedCallback(
      [this](const dag::BlockPtr& b) { OnBlockReceived(b); });
  dag_->SetCommitCallback(
      [this](const dag::CommittedSubDag& s) { OnCommit(s); });
}

void ThunderboltNode::Start() {
  network_->RegisterHandler(
      id_, [this](ReplicaId from, const net::PayloadPtr& payload) {
        if (stopped_) return;
        dag_->OnMessage(from, payload);
      });
  dag_->Start();
}

// --- Proposal pipeline --------------------------------------------------------

void ThunderboltNode::OnRoundReady(Round round) {
  (void)round;
  TryPropose();
}

void ThunderboltNode::TryPropose() {
  if (stopped_ || building_) return;
  Round next = dag_->highest_proposed_round() + 1;
  if (next > dag_->highest_ready_round()) return;
  building_ = true;
  building_round_ = next;
  leader_wait_armed_ = false;
  BuildProposal(next);
}

bool ThunderboltNode::ShouldShift(Round round) const {
  if (shift_sent_) return false;  // Condition (4): shift once per DAG.
  // Condition (2): proposed for at least K' rounds.
  if (config_.reconfig_period_k_prime > 0 &&
      rounds_proposed_in_epoch_ >= config_.reconfig_period_k_prime) {
    return true;
  }
  // Condition (3): f+1 Shift blocks seen from distinct replicas.
  if (shift_seen_.size() >= WeakQuorumSize(config_.n)) return true;
  // Condition (1): some shard proposer silent for K rounds.
  if (round > config_.silence_rounds_k) {
    for (ReplicaId p = 0; p < config_.n; ++p) {
      if (p == id_) continue;
      if (dag_->LatestBlockRoundFrom(p) + config_.silence_rounds_k < round) {
        return true;
      }
    }
  }
  return false;
}

bool ThunderboltNode::ConflictsWithPendingCross(
    const txn::Transaction& tx) const {
  for (const std::string& account : tx.accounts) {
    if (pending_cross_accounts_.count(account)) return true;
  }
  return false;
}

void ThunderboltNode::PullBatch(std::vector<txn::Transaction>* singles,
                                std::vector<txn::Transaction>* crosses) {
  SimTime now = simulator_->Now();
  std::vector<txn::Transaction> batch;
  if (shared_->service != nullptr) {
    // Open loop: dequeue admitted transactions for this shard. They keep
    // their arrival submit_time (the end-to-end latency origin); Dequeue
    // stamps admit_time = now.
    batch = shared_->service->Dequeue(owned_shard_, now, config_.batch_size);
  } else {
    // Closed loop: generate a fresh batch on demand; submission and
    // admission coincide with the pull.
    batch = workload_->MakeShardBatch(owned_shard_, config_.batch_size);
    for (txn::Transaction& tx : batch) {
      tx.submit_time = now;
      tx.admit_time = now;
    }
  }
  for (txn::Transaction& tx : batch) {
    if (config_.mode == ExecutionMode::kTusk ||
        !workload_->mapper().IsSingleShard(tx)) {
      crosses->push_back(std::move(tx));
    } else {
      singles->push_back(std::move(tx));
    }
  }
}

void ThunderboltNode::BuildProposal(Round round) {
  if (stopped_) return;
  assert(building_ && building_round_ == round);

  // Shift decision first (section 6): a Shift block carries no payload.
  if (ShouldShift(round)) {
    auto payload = std::make_shared<ThunderboltPayload>();
    payload->kind = PayloadKind::kShift;
    payload->shard = owned_shard_;
    shift_sent_ = true;
    FinishProposal(round, std::move(payload), Millis(1));
    return;
  }

  if (config_.mode == ExecutionMode::kTusk) {
    // Plain Tusk: the block carries raw transactions; execution happens
    // serially after commit.
    std::vector<txn::Transaction> singles, crosses;
    PullBatch(&singles, &crosses);
    auto payload = std::make_shared<ThunderboltPayload>();
    payload->kind = PayloadKind::kNormal;
    payload->shard = owned_shard_;
    payload->cross_shard = std::move(crosses);
    FinishProposal(round, std::move(payload), config_.proposal_prep_cost);
    return;
  }

  // Rule P3: for odd rounds led by another replica, wait for the leader's
  // round-r proposal before preplaying, so conflicting uncommitted
  // cross-shard transactions in its history are visible.
  ReplicaId leader = dag_->LeaderOf(round);
  if (leader != dag::DagCore::kNoLeader && leader != id_ &&
      !dag_->GetBlock(round, leader) && !leader_wait_expired_.count(round)) {
    if (!leader_wait_armed_) {
      leader_wait_armed_ = true;
      EpochId epoch_at_arm = epoch_;
      simulator_->ScheduleAfter(
          config_.leader_timeout, [this, round, epoch_at_arm]() {
            if (stopped_ || epoch_ != epoch_at_arm) return;
            leader_wait_expired_.insert(round);
            if (building_ && building_round_ == round) BuildProposal(round);
          });
    }
    return;  // Re-entered from OnBlockReceived or the timeout.
  }
  const bool leader_timed_out = leader_wait_expired_.count(round) > 0;

  std::vector<txn::Transaction> singles, crosses;
  PullBatch(&singles, &crosses);

  // Re-admit deferred transactions whose conflicts cleared; convert the
  // ones that waited past the leader timeout (rule P4 -> cross-shard).
  SimTime now = simulator_->Now();
  std::deque<std::pair<txn::Transaction, SimTime>> still_deferred;
  while (!deferred_singles_.empty()) {
    auto [tx, since] = std::move(deferred_singles_.front());
    deferred_singles_.pop_front();
    if (!ConflictsWithPendingCross(tx)) {
      singles.push_back(std::move(tx));
    } else if (now - since > config_.leader_timeout) {
      if (is_observer_) ++metrics_->conversions;
      crosses.push_back(std::move(tx));
    } else {
      still_deferred.emplace_back(std::move(tx), since);
    }
  }
  deferred_singles_ = std::move(still_deferred);

  if (leader_timed_out) {
    // Rule P6: the leader is silent; convert this round's single-shard
    // transactions to cross-shard and submit them directly.
    if (is_observer_) metrics_->conversions += singles.size();
    for (txn::Transaction& tx : singles) crosses.push_back(std::move(tx));
    singles.clear();
  } else {
    // Rule P4: single-shard transactions that conflict with known
    // uncommitted cross-shard transactions cannot be preplayed. Default:
    // convert them to cross-shard immediately. With use_skip_blocks, hold
    // them back instead and emit Skip blocks until the conflicts finalize
    // (the section 5.4 preplay-recovery variant).
    std::vector<txn::Transaction> runnable;
    runnable.reserve(singles.size());
    for (txn::Transaction& tx : singles) {
      if (!ConflictsWithPendingCross(tx)) {
        runnable.push_back(std::move(tx));
      } else if (config_.use_skip_blocks) {
        deferred_singles_.emplace_back(std::move(tx), now);
      } else {
        if (is_observer_) ++metrics_->conversions;
        crosses.push_back(std::move(tx));
      }
    }
    singles = std::move(runnable);
  }

  if (singles.empty() && config_.mode != ExecutionMode::kTusk &&
      !deferred_singles_.empty()) {
    // Nothing preplayable: emit a Skip block (section 5.4) so the DAG keeps
    // advancing while prior cross-shard leaders finalize.
    auto payload = std::make_shared<ThunderboltPayload>();
    payload->kind = PayloadKind::kSkip;
    payload->shard = owned_shard_;
    payload->cross_shard = std::move(crosses);
    FinishProposal(round, std::move(payload), config_.proposal_prep_cost);
    return;
  }

  StartPreplay(round, std::move(singles), std::move(crosses));
}

void ThunderboltNode::StartPreplay(Round round,
                                   std::vector<txn::Transaction> singles,
                                   std::vector<txn::Transaction> crosses) {
  OverlayStore view(&overlay_, shared_->canonical.get());

  std::unique_ptr<ce::BatchEngine> engine;
  const uint32_t batch = static_cast<uint32_t>(singles.size());
  if (config_.mode == ExecutionMode::kThunderboltOcc) {
    engine = std::make_unique<baselines::OccEngine>(&view, batch);
  } else {
    engine = std::make_unique<ce::ConcurrencyController>(&view, batch);
  }

  SimTime now = simulator_->Now();
  SimTime start = std::max(now, ce_free_);
  auto payload = std::make_shared<ThunderboltPayload>();
  payload->kind = PayloadKind::kNormal;
  payload->shard = owned_shard_;
  payload->cross_shard = std::move(crosses);

  SimTime duration = 0;
  if (batch > 0) {
    auto result = pool_->Run(*engine, *registry_, singles, start);
    if (!result.ok()) {
      // Executor livelock would be a bug; surface loudly in sim runs.
      assert(false && "preplay failed");
      building_ = false;
      return;
    }
    duration = result->duration;
    if (is_observer_) metrics_->preplay_aborts += result->total_aborts;
    // Per-shard abort attribution: each shard is preplayed by exactly one
    // proposer per epoch, so every replica reporting its own shard yields
    // a complete breakdown with no double counting.
    if (result->total_aborts > 0) {
      obs_->metrics()
          .GetCounter("cluster.shard.preplay_aborts",
                      {{"shard", owned_shard_}})
          .Inc(result->total_aborts);
    }

    // Assemble the preplayed section in serialization order.
    payload->preplayed.reserve(batch);
    for (ce::TxnSlot slot : result->order) {
      PreplayedTxn p;
      p.tx = singles[slot];
      p.rw_set = result->records[slot].rw_set;
      p.emitted = result->records[slot].emitted;
      payload->preplayed.push_back(std::move(p));
    }
  }
  ce_free_ = start + duration;

  // The proposal goes out once preplay finishes (virtual time).
  SimTime wait = ce_free_ > now ? ce_free_ - now : 0;
  EpochId epoch_at_start = epoch_;
  simulator_->ScheduleAfter(
      wait, [this, round, payload, epoch_at_start]() {
        if (stopped_ || epoch_ != epoch_at_start) return;
        if (!building_ || building_round_ != round) return;
        // Track in-flight writes in the speculative overlay so the next
        // batch preplays against this block's results.
        InFlightBlock inflight;
        inflight.digest = payload->ContentDigest();
        for (const PreplayedTxn& p : payload->preplayed) {
          for (const txn::Operation& w : p.rw_set.writes) {
            inflight.writes.emplace_back(w.key, w.value);
            overlay_[w.key] = w.value;
          }
        }
        if (!inflight.writes.empty()) {
          in_flight_.push_back(std::move(inflight));
        }
        FinishProposal(round, payload, config_.proposal_prep_cost);
      });
}

void ThunderboltNode::FinishProposal(Round round,
                                     std::shared_ptr<ThunderboltPayload> p,
                                     SimTime prep_cost) {
  EpochId epoch_at_start = epoch_;
  simulator_->ScheduleAfter(prep_cost, [this, round, p, epoch_at_start]() {
    if (stopped_ || epoch_ != epoch_at_start) return;
    if (!building_ || building_round_ != round) return;
    // Fill in the in-flight digest now that the block digest is known via
    // proposal (content digest suffices for matching on commit).
    Status s = dag_->Propose(round, p);
    if (s.ok()) {
      ++proposals_made_;
      ++rounds_proposed_in_epoch_;
    }
    building_ = false;
    TryPropose();
  });
}

// --- DAG callbacks ----------------------------------------------------------

void ThunderboltNode::OnBlockReceived(const dag::BlockPtr& block) {
  const ThunderboltPayload* payload = PayloadOf(block);
  if (payload == nullptr) return;
  if (payload->kind == PayloadKind::kShift) {
    shift_seen_.insert(block->proposer);
  }
  // Track uncommitted cross-shard transactions for the P4 conflict check.
  for (const txn::Transaction& tx : payload->cross_shard) {
    if (pending_cross_.emplace(tx.id, tx.accounts).second) {
      for (const std::string& account : tx.accounts) {
        ++pending_cross_accounts_[account];
      }
    }
  }
  // Rule P3 continuation: a waiting proposer re-checks once the leader's
  // proposal arrives.
  if (building_ && leader_wait_armed_ &&
      block->round == building_round_ &&
      block->proposer == dag_->LeaderOf(building_round_)) {
    BuildProposal(building_round_);
  }
}

void ThunderboltNode::OnCommit(const dag::CommittedSubDag& sub_dag) {
  if (stopped_) return;
  SimTime now = simulator_->Now();
  SimTime start = std::max(now, commit_pipeline_free_);
  SimTime cost = 0;

  const Hash256 leader_digest = sub_dag.leader->Digest();
  const bool first_processor =
      shared_->processed_leaders.insert(leader_digest).second;

  std::vector<const txn::Transaction*> crosses;
  std::vector<std::pair<const ThunderboltPayload*, const dag::BlockPtr*>>
      ordered;
  for (const dag::BlockPtr& block : sub_dag.blocks) {
    const ThunderboltPayload* payload = PayloadOf(block);
    if (payload == nullptr) continue;
    ordered.emplace_back(payload, &block);
  }

  // Pass 1 (G1/P2): single-shard preplayed sections, in sub-DAG order.
  for (auto& [payload, block_ptr] : ordered) {
    const dag::BlockPtr& block = *block_ptr;
    if (payload->kind == PayloadKind::kShift) {
      shift_committed_.insert(block->proposer);
      if (is_observer_) ++metrics_->shift_blocks;
      continue;
    }
    if (payload->kind == PayloadKind::kSkip && is_observer_) {
      ++metrics_->skip_blocks;
    }
    if (payload->preplayed.empty()) continue;

    Hash256 content_digest = payload->ContentDigest();
    SharedClusterState::BlockOutcome outcome;
    auto memo = shared_->block_outcomes.find(content_digest);
    if (memo != shared_->block_outcomes.end()) {
      outcome = memo->second;
    } else {
      // First replica to reach this block validates it for real against
      // the canonical committed store and applies the writes.
      ValidationResult vr =
          ValidatePreplay(*registry_, payload->preplayed, *shared_->canonical);
#ifdef THUNDERBOLT_DEBUG_VALIDATION
      if (!vr.valid) {
        static int dumped = 0;
        if (dumped++ < 8) {
          fprintf(stderr,
                  "[validation-fail] proposer=%u shard=%u round=%llu: %s\n",
                  block->proposer, payload->shard,
                  (unsigned long long)block->round, vr.failure.c_str());
        }
      }
#endif
      outcome.valid = vr.valid;
      outcome.ops = vr.ops;
      outcome.critical_path = ValidationCriticalPath(payload->preplayed);
      outcome.txs = payload->preplayed.size();
      if (vr.valid) {
        shared_->canonical->Write(vr.writes);
      }
      shared_->block_outcomes.emplace(content_digest, outcome);
    }

    // Virtual validation time: replay work divided across validators,
    // bounded below by the dependency graph's critical path.
    uint64_t per_txn_ops =
        outcome.txs > 0 ? std::max<uint64_t>(1, outcome.ops / outcome.txs)
                        : 1;
    uint64_t parallel_ops = std::max<uint64_t>(
        outcome.ops / std::max(1u, config_.num_validators),
        static_cast<uint64_t>(outcome.critical_path) * per_txn_ops);
    const SimTime validate_cost = parallel_ops * config_.validation_op_cost;
    if (is_observer_) {
      obs::Tracer& tracer = *obs_->tracer();
      if (tracer.enabled()) {
        obs::TraceEvent ev;
        ev.kind = obs::EventKind::kValidateSpan;
        ev.pid = id_;
        ev.ts_us = start + cost;
        ev.dur_us = validate_cost;
        ev.a = validate_seq_;
        ev.b = outcome.txs;
        tracer.Record(ev);
      }
      ++validate_seq_;
    }
    cost += validate_cost;

    if (!outcome.valid) {
      if (is_observer_) {
        ++metrics_->invalid_blocks;
        obs_->metrics()
            .GetCounter("cluster.shard.invalid_blocks",
                        {{"shard", payload->shard}})
            .Inc();
      }
      continue;
    }
    if (is_observer_ && !payload->preplayed.empty()) {
      // Phase decomposition: every transaction in a valid block waits out
      // the whole block's validation replay before its commit applies.
      obs::HistogramMetric& validate =
          obs_->metrics().GetHistogram("phase.validate_us");
      for (size_t i = 0; i < payload->preplayed.size(); ++i) {
        validate.Observe(static_cast<double>(validate_cost));
      }
    }
    // Retire this block from our speculative overlay if it is ours.
    if (block->proposer == id_) {
      for (auto it = in_flight_.begin(); it != in_flight_.end(); ++it) {
        if (it->digest == content_digest) {
          in_flight_.erase(it);
          RebuildOverlay();
          break;
        }
      }
    }
  }

  // Pass 2: cross-shard transactions (and Tusk raw transactions), in
  // sub-DAG order, after all single-shard sections (rule P2).
  for (auto& [payload, block_ptr] : ordered) {
    (void)block_ptr;
    for (const txn::Transaction& tx : payload->cross_shard) {
      crosses.push_back(&tx);
      auto it = pending_cross_.find(tx.id);
      if (it != pending_cross_.end()) {
        for (const std::string& account : it->second) {
          auto ait = pending_cross_accounts_.find(account);
          if (ait != pending_cross_accounts_.end() && --ait->second == 0) {
            pending_cross_accounts_.erase(ait);
          }
        }
        pending_cross_.erase(it);
      }
    }
  }

  if (!crosses.empty()) {
    SharedClusterState::CrossOutcome cross_outcome;
    auto memo = shared_->cross_outcomes.find(leader_digest);
    if (memo != shared_->cross_outcomes.end()) {
      cross_outcome = memo->second;
    } else {
      std::vector<txn::Transaction> txs;
      txs.reserve(crosses.size());
      for (const txn::Transaction* tx : crosses) txs.push_back(*tx);
      if (config_.mode == ExecutionMode::kTusk) {
        // Serial post-consensus execution.
        baselines::SerialExecutionResult r = baselines::ExecuteSerial(
            *registry_, txs, shared_->canonical.get(), config_.exec_costs.op_cost);
        cross_outcome.executed = txs.size();
        cross_outcome.duration = r.duration;
      } else {
        // Home shards anchor the remote-access counters hot-key migration
        // ranks on: an account pulled in by a transaction homed elsewhere
        // is remote traffic its placement could have avoided.
        std::vector<ShardId> homes;
        homes.reserve(txs.size());
        for (const txn::Transaction& tx : txs) {
          homes.push_back(workload_->HomeShard(tx));
        }
        CrossShardResult r =
            cross_executor_.Execute(txs, shared_->canonical.get(), &homes,
                                    &shared_->access_tracker);
        cross_outcome.executed = r.executed;
        cross_outcome.remote_accesses = r.remote_accesses;
        cross_outcome.duration = r.duration;
      }
      shared_->cross_outcomes.emplace(leader_digest, cross_outcome);
    }
    if (is_observer_) {
      obs::Tracer& tracer = *obs_->tracer();
      if (tracer.enabled()) {
        obs::TraceEvent ev;
        ev.kind = obs::EventKind::kCrossShardSpan;
        ev.pid = id_;
        ev.ts_us = start + cost;
        ev.dur_us = cross_outcome.duration;
        ev.a = cross_outcome.executed;
        ev.b = cross_outcome.remote_accesses;
        tracer.Record(ev);

        // Causality: one hold span per participant shard of each
        // cross-shard transaction, stitched into a single tree by trace_id
        // (= txn id) and a flow-event chain (start -> step... -> end), so
        // Perfetto draws the cross-shard commit as arrows between the
        // participant shards' tracks.
        for (const txn::Transaction* tx : crosses) {
          const std::vector<ShardId> participants =
              workload_->mapper().ShardsOf(*tx);
          for (size_t i = 0; i < participants.size(); ++i) {
            obs::TraceEvent hold;
            hold.kind = obs::EventKind::kCrossHoldSpan;
            hold.pid = participants[i];
            hold.ts_us = start + cost;
            hold.dur_us = cross_outcome.duration;
            hold.txn = tx->id;
            hold.a = i;
            hold.b = participants.size();
            hold.trace_id = tx->id;
            hold.span_id = i + 1;
            hold.parent_id = i == 0 ? 0 : 1;
            if (participants.size() > 1) {
              hold.flow = i == 0 ? obs::FlowPhase::kStart
                          : i + 1 == participants.size()
                              ? obs::FlowPhase::kEnd
                              : obs::FlowPhase::kStep;
            }
            tracer.Record(hold);
          }
        }
      }
    }
    cost += cross_outcome.duration;
  }
  (void)first_processor;

  commit_pipeline_free_ = start + cost;

  if (is_observer_) {
    // One sample per committed transaction, stamped with the pipeline
    // completion time (see ClusterMetrics::CommitSample).
    uint64_t singles_done = 0;
    uint64_t crosses_done = 0;
    std::map<ShardId, std::pair<uint64_t, uint64_t>> shard_done;
    obs::MetricsRegistry& m = obs_->metrics();
    obs::HistogramMetric& commit_apply =
        m.GetHistogram("phase.commit_apply_us");
    obs::HistogramMetric& cross_hold =
        m.GetHistogram("phase.cross_shard_hold_us");
    for (auto& [payload, block_ptr] : ordered) {
      (void)block_ptr;
      Hash256 content_digest = payload->ContentDigest();
      auto memo = shared_->block_outcomes.find(content_digest);
      bool valid = memo == shared_->block_outcomes.end() || memo->second.valid;
      if (valid) {
        for (const PreplayedTxn& p : payload->preplayed) {
          metrics_->samples.push_back(ClusterMetrics::CommitSample{
              commit_pipeline_free_, p.tx.submit_time, p.tx.admit_time,
              false});
          ++singles_done;
          ++shard_done[payload->shard].first;
          commit_apply.Observe(
              static_cast<double>(commit_pipeline_free_ - start));
        }
      }
      for (const txn::Transaction& tx : payload->cross_shard) {
        metrics_->samples.push_back(ClusterMetrics::CommitSample{
            commit_pipeline_free_, tx.submit_time, tx.admit_time, true});
        ++crosses_done;
        ++shard_done[payload->shard].second;
        commit_apply.Observe(
            static_cast<double>(commit_pipeline_free_ - start));
        cross_hold.Observe(
            static_cast<double>(commit_pipeline_free_ - tx.submit_time));
      }
    }
    if (singles_done + crosses_done > 0) {
      // Completion-time accounting: the commit counters tick when the
      // validation/execution pipeline *finishes* the work, matching the
      // CommitSample window rule above — so every time-series window's
      // counter deltas sum exactly to the run's committed totals.
      simulator_->ScheduleAt(
          commit_pipeline_free_,
          [mp = &m, singles_done, crosses_done,
           shard_done = std::move(shard_done)]() {
            if (singles_done > 0) {
              mp->GetCounter("cluster.commits_single").Inc(singles_done);
            }
            if (crosses_done > 0) {
              mp->GetCounter("cluster.commits_cross").Inc(crosses_done);
            }
            for (const auto& [shard, done] : shard_done) {
              if (done.first > 0) {
                mp->GetCounter("cluster.shard.commits", {{"shard", shard}})
                    .Inc(done.first);
              }
              if (done.second > 0) {
                mp->GetCounter("cluster.shard.commits_cross",
                               {{"shard", shard}})
                    .Inc(done.second);
              }
            }
          });
    }
    metrics_->commit_times.emplace_back(
        static_cast<Round>(metrics_->commit_times.size() + 1),
        commit_pipeline_free_);
    metrics_->last_commit_time = commit_pipeline_free_;
  }

  // Reconfiguration trigger: first commit whose epoch-cumulative history
  // contains 2f+1 Shift blocks from distinct proposers ends this DAG.
  if (shift_committed_.size() >= QuorumSize(config_.n)) {
    Round ending_round = sub_dag.leader_round;
    EpochId epoch_now = epoch_;
    // Defer the switch out of the DagCore callback stack (the commit loop
    // must not have the DAG reset under it).
    simulator_->ScheduleAfter(0, [this, ending_round, epoch_now]() {
      if (stopped_ || epoch_ != epoch_now) return;
      Reconfigure(ending_round);
    });
  }
}

void ThunderboltNode::RebuildOverlay() {
  overlay_.clear();
  for (const InFlightBlock& b : in_flight_) {
    for (const auto& [key, value] : b.writes) {
      overlay_[key] = value;
    }
  }
}

void ThunderboltNode::Reconfigure(Round ending_round) {
  ++epoch_;
  owned_shard_ = ShardOwnedBy(id_, epoch_, config_.n);
  if (is_observer_) ++metrics_->reconfigurations;
  obs::Tracer& tracer = *obs_->tracer();
  if (is_observer_ && tracer.enabled()) {
    // The fence marks the instant no in-flight preplay may straddle; the
    // reconfiguration instant below lands after the DAG reset.
    obs::TraceEvent ev;
    ev.kind = obs::EventKind::kEpochFence;
    ev.pid = id_;
    ev.ts_us = simulator_->Now();
    ev.a = epoch_;
    ev.b = ending_round;
    tracer.Record(ev);
  }

  // Hot-key migration (section 6 boundary): the epoch fence is the only
  // point where no in-flight preplay can straddle a placement change. The
  // first replica to cross into the new epoch applies the deterministic
  // rebalance — peers share the policy object in this simulation, exactly
  // as every real replica would compute the identical migration from the
  // identical committed access counters.
  if (shared_->rebalanced_epochs.insert(epoch_).second) {
    std::vector<placement::MigrationEvent> events =
        placement_->Rebalance(shared_->access_tracker);
    shared_->access_tracker.Clear();
    if (!events.empty()) {
      // Re-homed accounts change the workload's per-shard buckets.
      workload_->SetPlacementPolicy(placement_);
      if (tracer.enabled()) {
        // Recorded by whichever replica performed the rebalance (deduped
        // by rebalanced_epochs), so the migration appears exactly once.
        obs::TraceEvent ev;
        ev.kind = obs::EventKind::kMigration;
        ev.pid = id_;
        ev.ts_us = simulator_->Now();
        ev.a = epoch_;
        ev.b = events.size();
        tracer.Record(ev);
      }
      for (placement::MigrationEvent& e : events) {
        e.epoch = epoch_;
        obs_->metrics()
            .GetCounter("cluster.shard.migrations_in", {{"shard", e.to}})
            .Inc();
        obs_->metrics()
            .GetCounter("cluster.shard.migrations_out", {{"shard", e.from}})
            .Inc();
        metrics_->migration_events.push_back(std::move(e));
      }
    }
  }

  // Uncommitted state of the old DAG is discarded; clients retransmit the
  // affected transactions (open-loop workload keeps generating).
  pending_cross_.clear();
  pending_cross_accounts_.clear();
  deferred_singles_.clear();
  in_flight_.clear();
  overlay_.clear();
  shift_sent_ = false;
  shift_seen_.clear();
  shift_committed_.clear();
  rounds_proposed_in_epoch_ = 0;
  leader_wait_expired_.clear();
  leader_wait_armed_ = false;
  building_ = false;
  building_round_ = 0;

  dag_->ResetForNewEpoch(epoch_);
  if (is_observer_ && tracer.enabled()) {
    obs::TraceEvent ev;
    ev.kind = obs::EventKind::kReconfiguration;
    ev.pid = id_;
    ev.ts_us = simulator_->Now();
    ev.a = epoch_;
    ev.b = ending_round;
    tracer.Record(ev);
  }
}

}  // namespace thunderbolt::core
