#include "core/payload.h"

namespace thunderbolt::core {

namespace {

void HashOperation(Sha256& h, const txn::Operation& op) {
  h.UpdateInt<uint8_t>(static_cast<uint8_t>(op.type));
  h.UpdateInt<uint32_t>(static_cast<uint32_t>(op.key.size()));
  h.Update(op.key);
  h.UpdateInt(op.value);
}

void HashTransaction(Sha256& h, const txn::Transaction& tx) {
  Hash256 d = tx.Digest();
  h.Update(d.bytes.data(), d.bytes.size());
}

}  // namespace

Hash256 ThunderboltPayload::ContentDigest() const {
  if (digest_cached_) return digest_cache_;
  Sha256 h;
  h.Update("thunderbolt-payload", 19);
  h.UpdateInt<uint8_t>(static_cast<uint8_t>(kind));
  h.UpdateInt(shard);
  h.UpdateInt<uint32_t>(static_cast<uint32_t>(preplayed.size()));
  for (const PreplayedTxn& p : preplayed) {
    HashTransaction(h, p.tx);
    h.UpdateInt<uint32_t>(static_cast<uint32_t>(p.rw_set.reads.size()));
    for (const txn::Operation& op : p.rw_set.reads) HashOperation(h, op);
    h.UpdateInt<uint32_t>(static_cast<uint32_t>(p.rw_set.writes.size()));
    for (const txn::Operation& op : p.rw_set.writes) HashOperation(h, op);
    h.UpdateInt<uint32_t>(static_cast<uint32_t>(p.emitted.size()));
    for (storage::Value v : p.emitted) h.UpdateInt(v);
  }
  h.UpdateInt<uint32_t>(static_cast<uint32_t>(cross_shard.size()));
  for (const txn::Transaction& tx : cross_shard) HashTransaction(h, tx);
  digest_cache_ = h.Finalize();
  digest_cached_ = true;
  return digest_cache_;
}

uint64_t ThunderboltPayload::SizeBytes() const {
  // Rough wire estimate: a transaction is ~120 bytes; a preplayed entry
  // additionally carries its read/write sets and results.
  uint64_t size = 64;  // Header.
  for (const PreplayedTxn& p : preplayed) {
    size += 120;
    size += 40 * (p.rw_set.reads.size() + p.rw_set.writes.size());
    size += 8 * p.emitted.size();
  }
  size += 120 * cross_shard.size();
  return size;
}

}  // namespace thunderbolt::core
