#include "core/validator.h"

#include <algorithm>
#include <map>
#include <set>
#include <string>
#include <unordered_map>

namespace thunderbolt::core {

namespace {

using storage::Key;
using storage::Value;

/// Context that replays a transaction against base + earlier block writes,
/// verifying every read against the declared read set.
class ValidationContext final : public contract::ContractContext {
 public:
  ValidationContext(const storage::ReadView* base,
                    const std::unordered_map<Key, Value>* block_writes,
                    const txn::ReadWriteSet* declared)
      : base_(base), block_writes_(block_writes), declared_(declared) {}

  Result<Value> Read(const Key& key) override {
    ++ops;
    auto wit = local_writes_.find(key);
    if (wit != local_writes_.end()) {
      // Read-your-own-write: served locally; the CC records no read for
      // keys the transaction wrote first, so no declared entry exists.
      return wit->second;
    }
    auto bit = block_writes_->find(key);
    Value actual = (bit != block_writes_->end())
                       ? bit->second
                       : base_->GetOrDefault(key, 0);
    // The declared read set records the *first* read per key.
    if (!seen_reads_.count(key)) {
      seen_reads_.insert(key);
      const txn::Operation* declared_read = nullptr;
      for (const txn::Operation& op : declared_->reads) {
        if (op.key == key) {
          declared_read = &op;
          break;
        }
      }
      if (declared_read == nullptr) {
        mismatch = "undeclared read of " + key;
        return Status::Corruption(mismatch);
      }
      if (declared_read->value != actual) {
        mismatch = "read mismatch on " + key + ": declared " +
                   std::to_string(declared_read->value) + " actual " +
                   std::to_string(actual);
        return Status::Corruption(mismatch);
      }
    }
    return actual;
  }

  Status Write(const Key& key, Value value) override {
    ++ops;
    local_writes_[key] = value;
    return Status::OK();
  }

  const std::map<Key, Value>& local_writes() const { return local_writes_; }

  uint64_t ops = 0;
  std::string mismatch;

 private:
  const storage::ReadView* base_;
  const std::unordered_map<Key, Value>* block_writes_;
  const txn::ReadWriteSet* declared_;
  std::map<Key, Value> local_writes_;
  std::set<Key> seen_reads_;
};

}  // namespace

ValidationResult ValidatePreplay(const contract::Registry& registry,
                                 const std::vector<PreplayedTxn>& preplayed,
                                 const storage::ReadView& base) {
  ValidationResult result;
  std::unordered_map<Key, Value> block_writes;

  for (const PreplayedTxn& p : preplayed) {
    ValidationContext ctx(&base, &block_writes, &p.rw_set);
    Status s = registry.Execute(p.tx, ctx);
    result.ops += ctx.ops;
    if (!s.ok() && !s.IsCorruption()) {
      // Contract-level failure must also have produced an empty declared
      // write set; treat declared-nonempty as invalid.
      if (!p.rw_set.writes.empty()) {
        result.valid = false;
        result.failure = "failed contract declared writes: " + s.ToString();
        return result;
      }
      continue;
    }
    if (!s.ok()) {
      result.valid = false;
      result.failure = ctx.mismatch.empty() ? s.ToString() : ctx.mismatch;
      return result;
    }
    // Re-executed writes must match the declared write set exactly.
    const auto& local = ctx.local_writes();
    if (local.size() != p.rw_set.writes.size()) {
      result.valid = false;
      result.failure = "write-set size mismatch for txn " +
                       std::to_string(p.tx.id);
      return result;
    }
    for (const txn::Operation& op : p.rw_set.writes) {
      auto it = local.find(op.key);
      if (it == local.end() || it->second != op.value) {
        result.valid = false;
        result.failure = "write mismatch on " + op.key;
        return result;
      }
    }
    for (const auto& [key, value] : local) {
      block_writes[key] = value;
    }
  }

  // Final write batch: last writer per key in scheduled order.
  std::vector<std::pair<Key, Value>> entries(block_writes.begin(),
                                             block_writes.end());
  std::sort(entries.begin(), entries.end());
  for (auto& [key, value] : entries) result.writes.Put(key, value);
  return result;
}

uint32_t ValidationCriticalPath(const std::vector<PreplayedTxn>& preplayed) {
  // Longest conflict chain: depth(t) = 1 + max depth over earlier
  // transactions whose declared sets conflict with t's.
  std::unordered_map<Key, uint32_t> writer_depth;  // Deepest writer of key.
  std::unordered_map<Key, uint32_t> reader_depth;  // Deepest reader of key.
  uint32_t critical = 0;
  for (const PreplayedTxn& p : preplayed) {
    uint32_t depth = 0;
    for (const txn::Operation& op : p.rw_set.reads) {
      auto it = writer_depth.find(op.key);
      if (it != writer_depth.end()) depth = std::max(depth, it->second);
    }
    for (const txn::Operation& op : p.rw_set.writes) {
      auto it = writer_depth.find(op.key);
      if (it != writer_depth.end()) depth = std::max(depth, it->second);
      auto rit = reader_depth.find(op.key);
      if (rit != reader_depth.end()) depth = std::max(depth, rit->second);
    }
    uint32_t mine = depth + 1;
    critical = std::max(critical, mine);
    for (const txn::Operation& op : p.rw_set.reads) {
      uint32_t& d = reader_depth[op.key];
      d = std::max(d, mine);
    }
    for (const txn::Operation& op : p.rw_set.writes) {
      uint32_t& d = writer_depth[op.key];
      d = std::max(d, mine);
    }
  }
  return critical;
}

}  // namespace thunderbolt::core
