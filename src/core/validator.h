// Parallel validation of preplayed blocks (paper section 4, "Validation").
//
// Validators rebuild the execution from the read/write sets declared in a
// block: transactions are re-executed in the block's scheduled order
// against the replica's committed state (plus earlier writes of the same
// block), and every read must return exactly the value recorded in the
// declared read set. A mismatch flags the block invalid and it is
// discarded deterministically by every honest replica. The declared
// read/write sets form a dependency graph that permits validating
// independent transactions in parallel; the virtual-time cost model divides
// the replay work across `num_validators` workers accordingly.
#ifndef THUNDERBOLT_CORE_VALIDATOR_H_
#define THUNDERBOLT_CORE_VALIDATOR_H_

#include <string>
#include <vector>

#include "common/types.h"
#include "contract/contract.h"
#include "core/payload.h"
#include "storage/kv_store.h"

namespace thunderbolt::core {

struct ValidationResult {
  bool valid = true;
  /// Operations replayed (drives the virtual-time cost model).
  uint64_t ops = 0;
  /// Writes to apply when valid (final value per key under the block's
  /// scheduled order).
  storage::WriteBatch writes;
  /// First failure description (for logs/tests).
  std::string failure;
};

/// Validates `preplayed` (in scheduled order) against `base`. Does not
/// modify `base`; the caller applies `writes` on success.
ValidationResult ValidatePreplay(const contract::Registry& registry,
                                 const std::vector<PreplayedTxn>& preplayed,
                                 const storage::ReadView& base);

/// Critical-path length of the block's dependency graph, in transactions:
/// the longest chain of conflicting transactions in scheduled order. The
/// virtual validation time is max(total/validators, critical path) * cost.
uint32_t ValidationCriticalPath(const std::vector<PreplayedTxn>& preplayed);

}  // namespace thunderbolt::core

#endif  // THUNDERBOLT_CORE_VALIDATOR_H_
