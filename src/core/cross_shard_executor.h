// Deterministic parallel execution of committed cross-shard transactions
// (paper section 5.2).
//
// Cross-shard transactions follow the Order-Execute model: consensus fixes
// their total order first, then every replica executes them. Rather than
// strictly serial execution, Thunderbolt plans QueCC-style from the
// sharding metadata alone: a transaction's account arguments (each mapping
// to a SID) bound the keys it can touch, so per-account queues capture all
// possible conflicts without any read/write set knowledge. Transactions
// sharing an account execute in commit order; independent queues run on a
// parallel worker pool.
//
// State outcome: identical to fully serial commit-order execution (the
// implementation executes in commit order; the queue structure only
// determines the virtual-time makespan):
//   makespan = max(total_cost / num_workers, heaviest account queue)
#ifndef THUNDERBOLT_CORE_CROSS_SHARD_EXECUTOR_H_
#define THUNDERBOLT_CORE_CROSS_SHARD_EXECUTOR_H_

#include <vector>

#include "common/types.h"
#include "contract/contract.h"
#include "placement/placement.h"
#include "storage/kv_store.h"
#include "txn/transaction.h"

namespace thunderbolt::core {

struct CrossShardResult {
  uint64_t executed = 0;         // Transactions applied.
  uint64_t total_ops = 0;
  uint64_t distinct_accounts = 0;
  uint64_t remote_accesses = 0;  // Accounts reached outside their home.
  SimTime critical_path = 0;     // Heaviest per-account queue (virtual).
  SimTime duration = 0;          // Virtual makespan.
};

class CrossShardExecutor {
 public:
  /// `num_workers` is the parallel worker pool for independent account
  /// queues (the scheduling overhead of cross-queue coordination keeps
  /// this small in practice; see EXPERIMENTS.md calibration notes).
  /// Conflict planning needs only the transactions' account arguments, so
  /// the executor is workload-agnostic: any Workload's cross-shard
  /// transactions run here unchanged. `mapper` (optional) enables remote-
  /// access accounting against the current placement policy — the signal
  /// hot-key migration consumes.
  CrossShardExecutor(const contract::Registry* registry, SimTime op_cost,
                     uint32_t num_workers = 4,
                     const txn::ShardMapper* mapper = nullptr)
      : registry_(registry),
        op_cost_(op_cost),
        num_workers_(num_workers == 0 ? 1 : num_workers),
        mapper_(mapper) {}

  /// Executes `txs` (already in consensus commit order) against `store`,
  /// mutating it exactly as serial commit-order execution would.
  ///
  /// With a mapper configured and `home_shards` given (one entry per
  /// transaction: the shard the transaction is anchored at), every account
  /// an execution reaches outside its home shard is counted into `tracker`
  /// — the per-shard access counters PlacementPolicy::Rebalance consults
  /// at the next reconfiguration boundary.
  CrossShardResult Execute(const std::vector<txn::Transaction>& txs,
                           storage::KVStore* store,
                           const std::vector<ShardId>* home_shards = nullptr,
                           placement::AccessTracker* tracker = nullptr) const;

 private:
  const contract::Registry* registry_;
  SimTime op_cost_;
  uint32_t num_workers_;
  const txn::ShardMapper* mapper_;
};

}  // namespace thunderbolt::core

#endif  // THUNDERBOLT_CORE_CROSS_SHARD_EXECUTOR_H_
