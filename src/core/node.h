// ThunderboltNode: one replica of the Thunderbolt system (paper sections
// 3-6), combining every role the paper assigns to a node:
//   1. shard proposer — preplays its shard's single-shard transactions
//      through the Concurrent Executor (EOV) and proposes blocks;
//   2. replica — participates in the Tusk DAG consensus;
//   3. leader — commits cross-shard transactions in total order (OE).
//
// Proposal rules P1-P6 (section 5.1):
//   P1  Cross-shard TXs bypass the CE and ride blocks unexecuted.
//   P2  At commit, a leader's single-shard blocks apply before its
//       cross-shard transactions (G1).
//   P3  Before preplaying round r, a proposer waits for round r's leader
//       proposal (odd rounds) to learn of conflicting cross-shard TXs.
//   P4  Single-shard TXs whose accounts overlap a known uncommitted
//       cross-shard TX are not preplayed: they are deferred (Skip-block
//       path, section 5.4) and converted to cross-shard TXs if the
//       conflict persists past the leader timeout.
//   P5  Ordering gaps from missing shard proposals are handled a
//       posteriori: deterministic validation discards any preplayed block
//       whose declared reads no longer match, at every honest replica
//       alike (see DESIGN.md section 2.2).
//   P6  A proposer whose leader wait times out converts its pending
//       single-shard TXs to cross-shard TXs and submits them directly.
//
// Reconfiguration (section 6): Shift blocks are emitted on K-round
// proposer silence, every K' rounds, or after seeing f+1 Shift blocks;
// the first commit whose epoch-cumulative history holds 2f+1 Shift blocks
// ends the DAG, and all replicas restart a fresh DAG with shard ownership
// rotated round-robin, without ever pausing DAG construction.
//
// Simulation-level state dedup: all honest replicas apply the identical
// committed sequence, so the cluster keeps one canonical committed store
// and memoizes per-commit outcomes; the first replica to process a commit
// computes validation/execution for real and the rest reuse the verdict
// while still being charged the virtual-time cost (see DESIGN.md 2.1).
#ifndef THUNDERBOLT_CORE_NODE_H_
#define THUNDERBOLT_CORE_NODE_H_

#include <deque>
#include <map>
#include <memory>
#include <set>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "ce/executor_pool.h"
#include "common/histogram.h"
#include "common/simulator.h"
#include "common/types.h"
#include "contract/contract.h"
#include "core/config.h"
#include "core/cross_shard_executor.h"
#include "core/payload.h"
#include "core/validator.h"
#include "crypto/signature.h"
#include "dag/dag_core.h"
#include "net/network.h"
#include "obs/obs.h"
#include "placement/placement.h"
#include "storage/kv_store.h"
#include "txn/transaction.h"
#include "workload/workload.h"

namespace thunderbolt::core {

/// Metrics aggregated by the observer replica (single counting point).
struct ClusterMetrics {
  /// One entry per committed transaction. `completion` is the virtual time
  /// the validation/execution pipeline finished the transaction — a
  /// transaction only counts toward a measurement window once its
  /// completion falls inside it (consensus commit alone is not enough:
  /// under Tusk the serial executor backlog grows without bound and
  /// counting at commit would credit unexecuted work).
  struct CommitSample {
    SimTime completion;
    SimTime submit;
    /// When the txn was pulled into a proposer batch; == submit in closed
    /// loop, > submit by the admission-queue wait under the service front
    /// end (completion - admit is the old admit->commit latency view).
    SimTime admit;
    bool cross;  // OE path (cross-shard or Tusk raw) vs preplayed.
  };
  std::vector<CommitSample> samples;   // Monotone in `completion`.

  uint64_t invalid_blocks = 0;        // Preplayed blocks discarded.
  uint64_t skip_blocks = 0;           // Committed skip blocks.
  uint64_t shift_blocks = 0;          // Committed shift blocks.
  uint64_t conversions = 0;           // Single->cross conversions (P4/P6).
  uint64_t reconfigurations = 0;      // DAG switches.
  uint64_t preplay_aborts = 0;        // CE re-executions (across batches).
  /// (commit index, pipeline completion time) per committed leader at the
  /// observer; drives Figure 16.
  std::vector<std::pair<Round, SimTime>> commit_times;
  SimTime last_commit_time = 0;
  /// Hot-key migrations applied at reconfiguration boundaries, in order
  /// (directory placement; empty for policies without migration).
  std::vector<placement::MigrationEvent> migration_events;
};

/// State shared across all nodes of a simulated cluster: the canonical
/// committed store and the per-commit computation memo (see file header).
struct SharedClusterState {
  /// Created by the Cluster from storage::StoreRegistry per
  /// ThunderboltConfig::store; always non-null while nodes run.
  std::unique_ptr<storage::KVStore> canonical;
  struct BlockOutcome {
    bool valid = true;
    uint64_t ops = 0;
    uint32_t critical_path = 0;
    uint64_t txs = 0;
  };
  std::unordered_map<Hash256, BlockOutcome> block_outcomes;
  struct CrossOutcome {
    uint64_t executed = 0;
    uint64_t remote_accesses = 0;
    SimTime duration = 0;
  };
  std::unordered_map<Hash256, CrossOutcome> cross_outcomes;  // By leader.
  std::unordered_set<Hash256> processed_leaders;
  /// Remote-access counters for the current epoch, recorded by the first
  /// replica to execute each committed cross-shard batch and consumed by
  /// PlacementPolicy::Rebalance at the next reconfiguration boundary.
  placement::AccessTracker access_tracker;
  /// Epochs whose boundary rebalance already ran (the first replica to
  /// enter an epoch performs the deterministic migration; peers share the
  /// policy object in this simulation).
  std::unordered_set<EpochId> rebalanced_epochs;
  /// Open-loop service front end, owned by the Cluster; null in closed
  /// loop. When set, PullBatch dequeues admitted transactions (arrival-
  /// stamped submit_time) instead of generating fresh ones.
  svc::ServiceFrontEnd* service = nullptr;
};

class ThunderboltNode {
 public:
  ThunderboltNode(const ThunderboltConfig& config, ReplicaId id,
                  sim::Simulator* simulator, net::SimNetwork* network,
                  const crypto::KeyDirectory* keys,
                  std::shared_ptr<const contract::Registry> registry,
                  workload::Workload* workload,
                  std::shared_ptr<placement::PlacementPolicy> placement,
                  SharedClusterState* shared, ClusterMetrics* metrics,
                  obs::Observability* obs, bool is_observer);

  ThunderboltNode(const ThunderboltNode&) = delete;
  ThunderboltNode& operator=(const ThunderboltNode&) = delete;

  /// Registers network handlers and kicks off round 1.
  void Start();

  /// Stops proposing (crash simulation; network drop handled by caller).
  void Stop() { stopped_ = true; }

  ReplicaId id() const { return id_; }
  EpochId epoch() const { return epoch_; }
  ShardId owned_shard() const { return owned_shard_; }
  const dag::DagCore& dag() const { return *dag_; }
  uint64_t proposals_made() const { return proposals_made_; }

  /// Shard owned by replica `id` in `epoch` for an n-replica cluster:
  /// ownership rotates round-robin each epoch (section 6).
  static ShardId ShardOwnedBy(ReplicaId id, EpochId epoch, uint32_t n) {
    return static_cast<ShardId>((id + epoch) % n);
  }

 private:
  // --- Proposal pipeline ----------------------------------------------------
  void OnRoundReady(Round round);
  void TryPropose();
  void BuildProposal(Round round);
  void FinishProposal(Round round, std::shared_ptr<ThunderboltPayload> p,
                      SimTime prep_cost);
  void StartPreplay(Round round, std::vector<txn::Transaction> singles,
                    std::vector<txn::Transaction> crosses);
  /// Pulls a fresh shard batch, routing each txn to the single- or
  /// cross-shard path.
  void PullBatch(std::vector<txn::Transaction>* singles,
                 std::vector<txn::Transaction>* crosses);
  bool ShouldShift(Round round) const;
  /// True when `tx`'s accounts overlap any known uncommitted cross-shard
  /// transaction (the P4 conflict predicate).
  bool ConflictsWithPendingCross(const txn::Transaction& tx) const;

  // --- DAG callbacks -----------------------------------------------------------
  void OnBlockReceived(const dag::BlockPtr& block);
  void OnCommit(const dag::CommittedSubDag& sub_dag);
  void Reconfigure(Round ending_round);

  // --- Speculative state (own shard) ---------------------------------------
  /// Rebuilds the preplay overlay from in-flight (proposed, uncommitted)
  /// blocks' writes.
  void RebuildOverlay();

  const ThunderboltConfig config_;
  const ReplicaId id_;
  sim::Simulator* simulator_;
  net::SimNetwork* network_;
  const crypto::KeyDirectory* keys_;
  std::shared_ptr<const contract::Registry> registry_;
  workload::Workload* workload_;
  std::shared_ptr<placement::PlacementPolicy> placement_;
  SharedClusterState* shared_;
  ClusterMetrics* metrics_;
  /// Cluster-owned observability bundle. The preplay pool records through
  /// it directly (SetObs in the ctor); the node adds cluster-level events
  /// — validation/cross-shard spans and epoch fences — at the observer
  /// only, so the shared timeline carries each commit-path event once.
  obs::Observability* obs_;
  const bool is_observer_;

  std::unique_ptr<dag::DagCore> dag_;
  /// Preplay pool, selected by ThunderboltConfig::pool ("sim" keeps the
  /// discrete-event simulation deterministic; "thread" runs real workers).
  std::unique_ptr<ce::ExecutorPool> pool_;
  CrossShardExecutor cross_executor_;

  EpochId epoch_ = 0;
  ShardId owned_shard_;
  bool stopped_ = false;

  // Proposal pipeline state.
  bool building_ = false;
  Round building_round_ = 0;
  bool leader_wait_armed_ = false;
  std::set<Round> leader_wait_expired_;
  SimTime ce_free_ = 0;
  uint64_t proposals_made_ = 0;
  Round rounds_proposed_in_epoch_ = 0;

  // Deferred single-shard transactions (Skip-block path, section 5.4),
  // with the virtual time each was first deferred (conversion deadline).
  std::deque<std::pair<txn::Transaction, SimTime>> deferred_singles_;

  // Pending (seen, uncommitted) cross-shard transactions: id -> accounts.
  std::unordered_map<TxnId, std::vector<std::string>> pending_cross_;
  /// Reference-counted account index over pending_cross_.
  std::unordered_map<std::string, uint32_t> pending_cross_accounts_;

  // Preplay overlay: own-shard speculative writes from in-flight blocks.
  struct InFlightBlock {
    Hash256 digest;
    std::vector<std::pair<storage::Key, storage::Value>> writes;
  };
  std::vector<InFlightBlock> in_flight_;
  std::unordered_map<storage::Key, storage::Value> overlay_;

  // Reconfiguration state (per epoch).
  bool shift_sent_ = false;
  std::set<ReplicaId> shift_seen_;       // From received blocks (cond. 3).
  std::set<ReplicaId> shift_committed_;  // From committed blocks (quorum).

  // Commit pipeline (validation + execution) virtual-time resource.
  SimTime commit_pipeline_free_ = 0;
  /// Observer-side sequence number for kValidateSpan trace events.
  uint64_t validate_seq_ = 0;
};

}  // namespace thunderbolt::core

#endif  // THUNDERBOLT_CORE_NODE_H_
