// Thunderbolt block payloads (the BlockContent carried by DAG vertices).
//
// A shard proposer's block carries up to three sections:
//   - preplayed single-shard transactions with their CE outcomes
//     (read/write sets, results, scheduled order) — the EOV path;
//   - raw cross-shard transactions, submitted to the DAG without
//     execution (rule P1) — the OE path;
//   - a marker making the block a Skip block (section 5.4) or a Shift
//     block (section 6).
#ifndef THUNDERBOLT_CORE_PAYLOAD_H_
#define THUNDERBOLT_CORE_PAYLOAD_H_

#include <vector>

#include "common/hash.h"
#include "common/types.h"
#include "dag/block.h"
#include "txn/transaction.h"

namespace thunderbolt::core {

/// A single-shard transaction together with its preplay outcome. Blocks
/// list these in the CE's scheduled (serialization) order.
struct PreplayedTxn {
  txn::Transaction tx;
  txn::ReadWriteSet rw_set;
  std::vector<storage::Value> emitted;
};

enum class PayloadKind : uint8_t {
  kNormal = 0,  // Preplayed single-shard txs and/or cross-shard txs.
  kSkip = 1,    // Preplay paused awaiting cross-shard finalization (5.4).
  kShift = 2,   // Reconfiguration vote (section 6).
};

class ThunderboltPayload final : public dag::BlockContent {
 public:
  ThunderboltPayload() = default;
  /// Copies drop the digest cache so a mutated copy re-hashes correctly.
  ThunderboltPayload(const ThunderboltPayload& other)
      : kind(other.kind),
        shard(other.shard),
        preplayed(other.preplayed),
        cross_shard(other.cross_shard) {}
  ThunderboltPayload& operator=(const ThunderboltPayload& other) {
    if (this != &other) {
      kind = other.kind;
      shard = other.shard;
      preplayed = other.preplayed;
      cross_shard = other.cross_shard;
      digest_cached_ = false;
    }
    return *this;
  }

  PayloadKind kind = PayloadKind::kNormal;
  /// The shard this proposer owned when creating the block.
  ShardId shard = 0;
  /// EOV section: preplayed single-shard transactions in scheduled order.
  std::vector<PreplayedTxn> preplayed;
  /// OE section: cross-shard transactions awaiting total ordering.
  std::vector<txn::Transaction> cross_shard;

  /// Cached after the first call; payloads are immutable once proposed.
  Hash256 ContentDigest() const override;

  /// Approximate wire size, used by the simulated network's bandwidth and
  /// processing cost models.
  uint64_t SizeBytes() const override;

 private:
  mutable Hash256 digest_cache_{};
  mutable bool digest_cached_ = false;
};

}  // namespace thunderbolt::core

#endif  // THUNDERBOLT_CORE_PAYLOAD_H_
