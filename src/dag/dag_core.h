// DagCore: per-replica Tusk consensus state machine (paper section 2).
//
// Responsibilities:
//   - Proposing one block per round, linking 2f+1 certificates of the
//     previous round.
//   - Voting on other replicas' proposals (one vote per proposer-round),
//     assembling quorum certificates, and broadcasting them.
//   - Advancing rounds once 2f+1 certificates of the current round arrive.
//   - The Tusk commit rule: the leader of odd round r (round-robin) commits
//     once f+1 round-(r+1) blocks reference its certificate; undecided
//     earlier leaders commit first when they appear in the newly committed
//     leader's causal history. Each committed leader deterministically
//     linearizes its uncommitted causal history.
//   - Block synchronization for missing causal ancestors.
//
// DagCore is payload-agnostic: the owner (core::ThunderboltNode) supplies
// content when a round becomes proposable and consumes committed sub-DAGs.
// Reconfiguration (paper section 6) resets the machine into a fresh epoch.
#ifndef THUNDERBOLT_DAG_DAG_CORE_H_
#define THUNDERBOLT_DAG_DAG_CORE_H_

#include <functional>
#include <map>
#include <memory>
#include <set>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "common/types.h"
#include "crypto/signature.h"
#include "dag/block.h"
#include "net/network.h"

namespace thunderbolt::dag {

/// A committed leader together with its linearized causal history (the
/// leader block is last). Delivered exactly once per leader, in increasing
/// leader-round order.
struct CommittedSubDag {
  EpochId epoch = 0;
  Round leader_round = 0;
  BlockPtr leader;
  std::vector<BlockPtr> blocks;  // Deterministic order; includes leader.
};

struct DagConfig {
  uint32_t n = 4;
  ReplicaId id = 0;
  EpochId epoch = 0;
};

class DagCore {
 public:
  /// Fired when `round` becomes proposable (2f+1 certificates of round-1
  /// collected, or immediately for round 1). The owner responds by calling
  /// Propose(round, content) once its payload is ready.
  using RoundReadyCallback = std::function<void(Round round)>;
  /// Fired on every newly stored block (own and remote), before commit.
  using BlockReceivedCallback = std::function<void(const BlockPtr&)>;
  /// Fired for every committed leader, in order.
  using CommitCallback = std::function<void(const CommittedSubDag&)>;

  DagCore(DagConfig config, const crypto::KeyDirectory* keys,
          net::SimNetwork* network);

  DagCore(const DagCore&) = delete;
  DagCore& operator=(const DagCore&) = delete;

  void SetRoundReadyCallback(RoundReadyCallback cb) {
    on_round_ready_ = std::move(cb);
  }
  void SetBlockReceivedCallback(BlockReceivedCallback cb) {
    on_block_received_ = std::move(cb);
  }
  void SetCommitCallback(CommitCallback cb) { on_commit_ = std::move(cb); }

  /// Starts the machine: announces round 1 as proposable.
  void Start();

  /// Proposes this replica's block for `round` with the given content.
  /// `round` must be proposable and not yet proposed by us.
  Status Propose(Round round, BlockContentPtr content);

  /// Network ingress; wire this to SimNetwork::RegisterHandler.
  void OnMessage(ReplicaId from, const net::PayloadPtr& payload);

  /// Leader of an odd round under round-robin rotation; kNoLeader for even
  /// rounds.
  ReplicaId LeaderOf(Round round) const;
  static constexpr ReplicaId kNoLeader = ~ReplicaId{0};

  /// Resets into a new epoch (non-blocking reconfiguration): clears all
  /// per-epoch state and announces round 1 of the new epoch.
  void ResetForNewEpoch(EpochId epoch);

  // --- Introspection --------------------------------------------------------

  EpochId epoch() const { return config_.epoch; }
  /// Highest round this replica has proposed in the current epoch.
  Round highest_proposed_round() const { return highest_proposed_; }
  /// Highest proposable round announced so far.
  Round highest_ready_round() const { return highest_ready_; }
  Round last_committed_leader_round() const {
    return last_committed_leader_round_;
  }
  /// Blocks stored for (round, proposer); nullptr when absent.
  BlockPtr GetBlock(Round round, ReplicaId proposer) const;
  BlockPtr GetBlockByDigest(const Hash256& digest) const;
  bool HasCertificate(Round round, ReplicaId proposer) const;
  uint32_t CertificateCount(Round round) const;
  /// Round of the latest block received from `proposer` (0 when none);
  /// drives the reconfiguration silence detector (paper section 6 cond. 1).
  Round LatestBlockRoundFrom(ReplicaId proposer) const;
  uint64_t committed_block_count() const { return committed_block_count_; }

 private:
  struct RoundState {
    std::map<ReplicaId, BlockPtr> blocks;            // By proposer.
    std::map<ReplicaId, Certificate> certificates;   // By proposer.
    bool ready_announced = false;
  };

  void HandleProposal(ReplicaId from, const BlockProposalMsg& msg);
  void HandleVote(ReplicaId from, const BlockVoteMsg& msg);
  void HandleCertificate(ReplicaId from, const CertificateMsg& msg);
  void HandleBlockRequest(ReplicaId from, const BlockRequestMsg& msg);
  void HandleBlockResponse(ReplicaId from, const BlockResponseMsg& msg);

  Status ValidateBlock(const Block& block) const;
  void StoreBlock(const BlockPtr& block);
  void StoreCertificate(const Certificate& cert);
  void MaybeAnnounceRounds();
  void TryCommitLeaders();
  /// True when every causal ancestor of `digest` is stored locally;
  /// requests any missing ancestors otherwise.
  bool HaveCausalHistory(const Hash256& digest);
  void CommitLeader(const BlockPtr& leader);
  void RequestBlock(const Hash256& digest);

  DagConfig config_;
  const crypto::KeyDirectory* keys_;
  net::SimNetwork* network_;

  std::map<Round, RoundState> rounds_;
  std::unordered_map<Hash256, BlockPtr> blocks_by_digest_;
  /// Votes collected for our own proposals: round -> signatures.
  std::map<Round, std::vector<crypto::Signature>> vote_collect_;
  std::map<Round, bool> cert_formed_;
  /// (round, proposer) pairs we already voted for (equivocation guard).
  std::set<std::pair<Round, ReplicaId>> voted_;
  std::set<Hash256> committed_blocks_;
  std::set<Hash256> requested_blocks_;
  std::vector<Round> latest_block_round_;  // Indexed by proposer.
  /// Messages from epoch+1 buffered across the reconfiguration boundary.
  std::vector<std::pair<ReplicaId, net::PayloadPtr>> next_epoch_buffer_;
  static constexpr size_t kMaxEpochBuffer = 100000;

  Round highest_proposed_ = 0;
  Round highest_ready_ = 0;
  Round last_committed_leader_round_ = 0;
  uint64_t committed_block_count_ = 0;

  RoundReadyCallback on_round_ready_;
  BlockReceivedCallback on_block_received_;
  CommitCallback on_commit_;
};

}  // namespace thunderbolt::dag

#endif  // THUNDERBOLT_DAG_DAG_CORE_H_
