#include "dag/block.h"

namespace thunderbolt::dag {

Status Certificate::Validate(const crypto::KeyDirectory& dir,
                             uint32_t n) const {
  if (qc.digest != block_digest) {
    return Status::Corruption("certificate digest mismatch");
  }
  return qc.Validate(dir, n);
}

Hash256 Block::Digest() const {
  if (digest_cached_) return digest_cache_;
  Sha256 h;
  h.Update("thunderbolt-block", 17);
  h.UpdateInt(epoch);
  h.UpdateInt(round);
  h.UpdateInt(proposer);
  h.UpdateInt<uint32_t>(static_cast<uint32_t>(parents.size()));
  for (const Hash256& p : parents) {
    h.Update(p.bytes.data(), p.bytes.size());
  }
  Hash256 content_digest = content ? content->ContentDigest() : Hash256{};
  h.Update(content_digest.bytes.data(), content_digest.bytes.size());
  digest_cache_ = h.Finalize();
  digest_cached_ = true;
  return digest_cache_;
}

}  // namespace thunderbolt::dag
