#include "dag/dag_core.h"

#include <algorithm>
#include <cassert>
#include <deque>

namespace thunderbolt::dag {

DagCore::DagCore(DagConfig config, const crypto::KeyDirectory* keys,
                 net::SimNetwork* network)
    : config_(config),
      keys_(keys),
      network_(network),
      latest_block_round_(config.n, 0) {}

void DagCore::Start() {
  highest_ready_ = 1;
  if (on_round_ready_) on_round_ready_(1);
}

ReplicaId DagCore::LeaderOf(Round round) const {
  if (round % 2 == 0) return kNoLeader;
  return static_cast<ReplicaId>(((round - 1) / 2) % config_.n);
}

Status DagCore::Propose(Round round, BlockContentPtr content) {
  if (round <= highest_proposed_) {
    return Status::InvalidArgument("round already proposed");
  }
  if (round > highest_ready_) {
    return Status::InvalidArgument("round not proposable yet");
  }
  auto block = std::make_shared<Block>();
  block->epoch = config_.epoch;
  block->round = round;
  block->proposer = config_.id;
  block->content = std::move(content);
  if (round > 1) {
    const RoundState& prev = rounds_[round - 1];
    if (prev.certificates.size() < QuorumSize(config_.n)) {
      return Status::Internal("missing 2f+1 parent certificates");
    }
    for (const auto& [proposer, cert] : prev.certificates) {
      block->parents.push_back(cert.block_digest);
      block->parent_certs.push_back(cert);
    }
  }
  highest_proposed_ = round;

  auto msg = std::make_shared<BlockProposalMsg>();
  msg->block = block;
  network_->Broadcast(config_.id, msg);
  return Status::OK();
}

namespace {

/// Extracts the epoch tag of any DAG message; ~0 for unknown payloads.
EpochId PayloadEpoch(const net::Payload& payload) {
  if (auto* p = dynamic_cast<const BlockProposalMsg*>(&payload)) {
    return p->block ? p->block->epoch : ~EpochId{0};
  }
  if (auto* v = dynamic_cast<const BlockVoteMsg*>(&payload)) return v->epoch;
  if (auto* c = dynamic_cast<const CertificateMsg*>(&payload)) {
    return c->certificate.epoch;
  }
  if (auto* rq = dynamic_cast<const BlockRequestMsg*>(&payload)) {
    return rq->epoch;
  }
  if (auto* rs = dynamic_cast<const BlockResponseMsg*>(&payload)) {
    return rs->block ? rs->block->epoch : ~EpochId{0};
  }
  return ~EpochId{0};
}

}  // namespace

void DagCore::OnMessage(ReplicaId from, const net::PayloadPtr& payload) {
  // Replicas transition to a new DAG (epoch) at slightly different virtual
  // times; buffer messages from the immediately-next epoch and replay them
  // after ResetForNewEpoch so early proposals are not lost.
  EpochId msg_epoch = PayloadEpoch(*payload);
  if (msg_epoch == config_.epoch + 1 &&
      next_epoch_buffer_.size() < kMaxEpochBuffer) {
    next_epoch_buffer_.emplace_back(from, payload);
    return;
  }
  if (auto* p = dynamic_cast<const BlockProposalMsg*>(payload.get())) {
    HandleProposal(from, *p);
  } else if (auto* v = dynamic_cast<const BlockVoteMsg*>(payload.get())) {
    HandleVote(from, *v);
  } else if (auto* c = dynamic_cast<const CertificateMsg*>(payload.get())) {
    HandleCertificate(from, *c);
  } else if (auto* rq = dynamic_cast<const BlockRequestMsg*>(payload.get())) {
    HandleBlockRequest(from, *rq);
  } else if (auto* rs = dynamic_cast<const BlockResponseMsg*>(payload.get())) {
    HandleBlockResponse(from, *rs);
  }
}

Status DagCore::ValidateBlock(const Block& block) const {
  if (block.epoch != config_.epoch) {
    return Status::InvalidArgument("wrong epoch");
  }
  if (block.proposer >= config_.n) {
    return Status::Corruption("unknown proposer");
  }
  if (block.round == 0) return Status::Corruption("round 0");
  if (block.round > 1) {
    if (block.parents.size() < QuorumSize(config_.n)) {
      return Status::Corruption("fewer than 2f+1 parents");
    }
    if (block.parent_certs.size() != block.parents.size()) {
      return Status::Corruption("parent/certificate count mismatch");
    }
    std::set<ReplicaId> parent_proposers;
    for (size_t i = 0; i < block.parents.size(); ++i) {
      const Certificate& cert = block.parent_certs[i];
      if (cert.block_digest != block.parents[i]) {
        return Status::Corruption("parent digest mismatch");
      }
      if (cert.round != block.round - 1 || cert.epoch != block.epoch) {
        return Status::Corruption("parent from wrong round/epoch");
      }
      if (!parent_proposers.insert(cert.proposer).second) {
        return Status::Corruption("duplicate parent proposer");
      }
      // Quorum certificates are validated once and cached in
      // StoreCertificate; structural checks suffice here for certs we have
      // already seen.
      if (!HasCertificate(cert.round, cert.proposer)) {
        THUNDERBOLT_RETURN_NOT_OK(cert.Validate(*keys_, config_.n));
      }
    }
  } else if (!block.parents.empty()) {
    return Status::Corruption("round-1 block with parents");
  }
  return Status::OK();
}

void DagCore::HandleProposal(ReplicaId from, const BlockProposalMsg& msg) {
  if (!msg.block) return;
  const Block& block = *msg.block;
  if (block.epoch != config_.epoch) return;  // Stale/future epoch.
  if (from != block.proposer) return;        // Relayed proposals not allowed.
  if (!ValidateBlock(block).ok()) return;

  // One vote per (round, proposer): equivocation guard.
  auto key = std::make_pair(block.round, block.proposer);
  const bool first_time = voted_.insert(key).second;
  if (!first_time) {
    // Still store the block if it matches what we voted for (duplicate
    // delivery); conflicting blocks are ignored.
    auto existing = GetBlock(block.round, block.proposer);
    if (!existing) StoreBlock(msg.block);
    return;
  }

  // Adopt the parent certificates carried by the proposal.
  for (const Certificate& cert : block.parent_certs) {
    StoreCertificate(cert);
  }
  StoreBlock(msg.block);

  // Vote: sign the digest and reply to the proposer.
  auto vote = std::make_shared<BlockVoteMsg>();
  vote->epoch = block.epoch;
  vote->round = block.round;
  vote->block_digest = block.Digest();
  vote->signature = keys_->key(config_.id).Sign(vote->block_digest);
  network_->Send(config_.id, block.proposer, vote);
}

void DagCore::HandleVote(ReplicaId from, const BlockVoteMsg& msg) {
  if (msg.epoch != config_.epoch) return;
  if (cert_formed_[msg.round]) return;
  BlockPtr own = GetBlock(msg.round, config_.id);
  if (!own || own->Digest() != msg.block_digest) return;
  if (!keys_->Verify(msg.block_digest, msg.signature)) return;
  if (msg.signature.signer != from) return;

  std::vector<crypto::Signature>& votes = vote_collect_[msg.round];
  for (const crypto::Signature& sig : votes) {
    if (sig.signer == from) return;  // Duplicate vote.
  }
  votes.push_back(msg.signature);
  if (votes.size() >= QuorumSize(config_.n)) {
    cert_formed_[msg.round] = true;
    Certificate cert;
    cert.epoch = config_.epoch;
    cert.round = msg.round;
    cert.proposer = config_.id;
    cert.block_digest = msg.block_digest;
    cert.qc.digest = msg.block_digest;
    cert.qc.signatures = votes;
    auto out = std::make_shared<CertificateMsg>();
    out->certificate = cert;
    network_->Broadcast(config_.id, out);
  }
}

void DagCore::HandleCertificate(ReplicaId from, const CertificateMsg& msg) {
  (void)from;
  const Certificate& cert = msg.certificate;
  if (cert.epoch != config_.epoch) return;
  if (HasCertificate(cert.round, cert.proposer)) return;
  if (!cert.Validate(*keys_, config_.n).ok()) return;
  StoreCertificate(cert);
}

void DagCore::HandleBlockRequest(ReplicaId from, const BlockRequestMsg& msg) {
  if (msg.epoch != config_.epoch) return;
  BlockPtr block = GetBlockByDigest(msg.block_digest);
  if (!block) return;
  auto out = std::make_shared<BlockResponseMsg>();
  out->block = block;
  network_->Send(config_.id, from, out);
}

void DagCore::HandleBlockResponse(ReplicaId from, const BlockResponseMsg& msg) {
  (void)from;
  if (!msg.block) return;
  const Block& block = *msg.block;
  if (block.epoch != config_.epoch) return;
  if (blocks_by_digest_.count(block.Digest())) return;
  if (!ValidateBlock(block).ok()) return;
  for (const Certificate& cert : block.parent_certs) {
    StoreCertificate(cert);
  }
  StoreBlock(msg.block);
}

void DagCore::StoreBlock(const BlockPtr& block) {
  Hash256 digest = block->Digest();
  if (!blocks_by_digest_.emplace(digest, block).second) return;
  RoundState& rs = rounds_[block->round];
  rs.blocks.emplace(block->proposer, block);
  latest_block_round_[block->proposer] =
      std::max(latest_block_round_[block->proposer], block->round);
  if (on_block_received_) on_block_received_(block);
  TryCommitLeaders();
}

void DagCore::StoreCertificate(const Certificate& cert) {
  RoundState& rs = rounds_[cert.round];
  if (!rs.certificates.emplace(cert.proposer, cert).second) return;
  // Fetch the certified block if we never received the proposal (e.g. a
  // censoring proposer excluded us from dissemination).
  if (!blocks_by_digest_.count(cert.block_digest)) {
    RequestBlock(cert.block_digest);
  }
  MaybeAnnounceRounds();
  TryCommitLeaders();
}

void DagCore::RequestBlock(const Hash256& digest) {
  auto msg = std::make_shared<BlockRequestMsg>();
  msg->epoch = config_.epoch;
  msg->block_digest = digest;
  network_->Broadcast(config_.id, msg);
}

void DagCore::MaybeAnnounceRounds() {
  // Round r+1 becomes proposable when round r has 2f+1 certificates,
  // including this replica's own (as in Narwhal): a proposer's round-r
  // block must be a causal ancestor of its round-(r+1) block, otherwise
  // commit linearization could order a proposer's blocks out of round
  // order and break preplay-chain validation.
  while (true) {
    Round current = highest_ready_;
    auto it = rounds_.find(current);
    if (it == rounds_.end()) return;
    if (it->second.certificates.size() < QuorumSize(config_.n)) return;
    if (!it->second.certificates.count(config_.id)) return;
    highest_ready_ = current + 1;
    if (on_round_ready_) on_round_ready_(highest_ready_);
  }
}

BlockPtr DagCore::GetBlock(Round round, ReplicaId proposer) const {
  auto it = rounds_.find(round);
  if (it == rounds_.end()) return nullptr;
  auto bit = it->second.blocks.find(proposer);
  return bit == it->second.blocks.end() ? nullptr : bit->second;
}

BlockPtr DagCore::GetBlockByDigest(const Hash256& digest) const {
  auto it = blocks_by_digest_.find(digest);
  return it == blocks_by_digest_.end() ? nullptr : it->second;
}

bool DagCore::HasCertificate(Round round, ReplicaId proposer) const {
  auto it = rounds_.find(round);
  if (it == rounds_.end()) return false;
  return it->second.certificates.count(proposer) > 0;
}

uint32_t DagCore::CertificateCount(Round round) const {
  auto it = rounds_.find(round);
  if (it == rounds_.end()) return 0;
  return static_cast<uint32_t>(it->second.certificates.size());
}

Round DagCore::LatestBlockRoundFrom(ReplicaId proposer) const {
  return latest_block_round_[proposer];
}

bool DagCore::HaveCausalHistory(const Hash256& digest) {
  bool complete = true;
  std::set<Hash256> visited;
  std::deque<Hash256> frontier{digest};
  while (!frontier.empty()) {
    Hash256 cur = frontier.front();
    frontier.pop_front();
    if (!visited.insert(cur).second) continue;
    if (committed_blocks_.count(cur)) continue;  // History already complete.
    auto it = blocks_by_digest_.find(cur);
    if (it == blocks_by_digest_.end()) {
      RequestBlock(cur);
      complete = false;
      continue;
    }
    for (const Hash256& parent : it->second->parents) {
      frontier.push_back(parent);
    }
  }
  return complete;
}

void DagCore::TryCommitLeaders() {
  // Scan undecided odd rounds for direct commits (f+1 support in r+1).
  Round start = last_committed_leader_round_ == 0
                    ? 1
                    : last_committed_leader_round_ + 2;
  Round horizon = rounds_.empty() ? 0 : rounds_.rbegin()->first;
  for (Round r = start; r + 1 <= horizon; r += 2) {
    if (r <= last_committed_leader_round_) continue;
    ReplicaId leader_id = LeaderOf(r);
    BlockPtr leader = GetBlock(r, leader_id);
    if (!leader) continue;
    Hash256 leader_digest = leader->Digest();

    auto next_it = rounds_.find(r + 1);
    if (next_it == rounds_.end()) continue;
    uint32_t support = 0;
    for (const auto& [proposer, block] : next_it->second.blocks) {
      for (const Hash256& parent : block->parents) {
        if (parent == leader_digest) {
          ++support;
          break;
        }
      }
    }
    if (support < WeakQuorumSize(config_.n)) continue;
    if (!HaveCausalHistory(leader_digest)) continue;

    // Direct commit of leader r. First, sweep undecided earlier leaders
    // that appear in this leader's causal history (committed in round
    // order).
    std::vector<BlockPtr> chain{leader};
    BlockPtr cursor = leader;
    for (Round rr = r < 2 ? 0 : r - 2; rr > last_committed_leader_round_ &&
                                       rr >= 1;
         rr -= 2) {
      BlockPtr earlier = GetBlock(rr, LeaderOf(rr));
      if (earlier) {
        // Ancestor test: is `earlier` in `cursor`'s causal history?
        Hash256 target = earlier->Digest();
        bool is_ancestor = false;
        std::set<Hash256> visited;
        std::deque<Hash256> frontier{cursor->Digest()};
        while (!frontier.empty()) {
          Hash256 cur = frontier.front();
          frontier.pop_front();
          if (cur == target) {
            is_ancestor = true;
            break;
          }
          if (!visited.insert(cur).second) continue;
          auto bit = blocks_by_digest_.find(cur);
          if (bit == blocks_by_digest_.end()) continue;
          if (bit->second->round <= earlier->round) continue;
          for (const Hash256& parent : bit->second->parents) {
            frontier.push_back(parent);
          }
        }
        if (is_ancestor) {
          chain.push_back(earlier);
          cursor = earlier;
        }
      }
      if (rr < 2) break;
    }
    std::reverse(chain.begin(), chain.end());
    for (const BlockPtr& l : chain) {
      CommitLeader(l);
    }
    last_committed_leader_round_ = r;
  }
}

void DagCore::CommitLeader(const BlockPtr& leader) {
  // Linearize the leader's uncommitted causal history deterministically:
  // ascending (round, proposer).
  std::vector<BlockPtr> history;
  std::set<Hash256> visited;
  std::deque<Hash256> frontier{leader->Digest()};
  while (!frontier.empty()) {
    Hash256 cur = frontier.front();
    frontier.pop_front();
    if (!visited.insert(cur).second) continue;
    if (committed_blocks_.count(cur)) continue;
    auto it = blocks_by_digest_.find(cur);
    if (it == blocks_by_digest_.end()) continue;  // Guarded by caller.
    history.push_back(it->second);
    for (const Hash256& parent : it->second->parents) {
      frontier.push_back(parent);
    }
  }
  std::sort(history.begin(), history.end(),
            [](const BlockPtr& a, const BlockPtr& b) {
              if (a->round != b->round) return a->round < b->round;
              return a->proposer < b->proposer;
            });
  for (const BlockPtr& b : history) {
    committed_blocks_.insert(b->Digest());
  }
  committed_block_count_ += history.size();

  CommittedSubDag sub_dag;
  sub_dag.epoch = config_.epoch;
  sub_dag.leader_round = leader->round;
  sub_dag.leader = leader;
  sub_dag.blocks = std::move(history);
  if (on_commit_) on_commit_(sub_dag);
}

void DagCore::ResetForNewEpoch(EpochId epoch) {
  config_.epoch = epoch;
  rounds_.clear();
  blocks_by_digest_.clear();
  vote_collect_.clear();
  cert_formed_.clear();
  voted_.clear();
  committed_blocks_.clear();
  requested_blocks_.clear();
  std::fill(latest_block_round_.begin(), latest_block_round_.end(), 0);
  highest_proposed_ = 0;
  highest_ready_ = 0;
  last_committed_leader_round_ = 0;
  Start();

  // Replay messages that arrived for this epoch before we switched.
  std::vector<std::pair<ReplicaId, net::PayloadPtr>> buffered;
  buffered.swap(next_epoch_buffer_);
  for (auto& [from, payload] : buffered) {
    OnMessage(from, payload);
  }
}

}  // namespace thunderbolt::dag
