// DAG vertices ("blocks"), certificates, and protocol messages.
//
// Following Narwhal/Tusk (paper section 2): each round-r block carries a
// payload and the certificates of at least 2f+1 round-(r-1) blocks; a block
// becomes *certified* once 2f+1 replicas sign its digest. Certified blocks
// are the vertices of the DAG. Thunderbolt payloads (preplay results,
// cross-shard transactions, Skip and Shift markers) are attached through
// the abstract BlockContent, keeping the consensus layer reusable.
#ifndef THUNDERBOLT_DAG_BLOCK_H_
#define THUNDERBOLT_DAG_BLOCK_H_

#include <memory>
#include <vector>

#include "common/hash.h"
#include "common/status.h"
#include "common/types.h"
#include "crypto/signature.h"
#include "net/network.h"

namespace thunderbolt::dag {

/// Abstract payload carried by a block. Implementations must provide a
/// deterministic content digest (bound into the block digest, hence into
/// votes and certificates).
class BlockContent {
 public:
  virtual ~BlockContent() = default;
  virtual Hash256 ContentDigest() const = 0;
  /// Approximate wire size of the payload (bandwidth model).
  virtual uint64_t SizeBytes() const { return 512; }
};

using BlockContentPtr = std::shared_ptr<const BlockContent>;

/// A certificate: quorum of 2f+1 signatures over a block digest.
struct Certificate {
  EpochId epoch = 0;
  Round round = 0;
  ReplicaId proposer = 0;
  Hash256 block_digest;
  crypto::QuorumCert qc;

  Status Validate(const crypto::KeyDirectory& dir, uint32_t n) const;
};

/// A DAG vertex. `parents` are the digests of certified round-(r-1) blocks;
/// the matching certificates travel inside the proposal so any receiver can
/// verify the causal references without extra round trips.
struct Block {
  EpochId epoch = 0;
  Round round = 1;
  ReplicaId proposer = 0;
  std::vector<Hash256> parents;
  std::vector<Certificate> parent_certs;
  BlockContentPtr content;

  Block() = default;
  /// Copies drop the digest cache so a mutated copy re-hashes correctly.
  Block(const Block& other)
      : epoch(other.epoch),
        round(other.round),
        proposer(other.proposer),
        parents(other.parents),
        parent_certs(other.parent_certs),
        content(other.content) {}
  Block& operator=(const Block& other) {
    if (this != &other) {
      epoch = other.epoch;
      round = other.round;
      proposer = other.proposer;
      parents = other.parents;
      parent_certs = other.parent_certs;
      content = other.content;
      digest_cached_ = false;
    }
    return *this;
  }

  /// Digest over (epoch, round, proposer, parents, content digest).
  /// Cached after the first call; blocks are immutable once proposed.
  Hash256 Digest() const;

 private:
  mutable Hash256 digest_cache_{};
  mutable bool digest_cached_ = false;
};

using BlockPtr = std::shared_ptr<const Block>;

// --- Protocol messages ------------------------------------------------------

struct BlockProposalMsg final : public net::Payload {
  BlockPtr block;

  uint64_t SizeBytes() const override {
    if (!block) return 256;
    uint64_t size = 128 + 96 * block->parent_certs.size();
    if (block->content) size += block->content->SizeBytes();
    return size;
  }
};

struct BlockVoteMsg final : public net::Payload {
  EpochId epoch = 0;
  Round round = 0;
  Hash256 block_digest;
  crypto::Signature signature;
};

struct CertificateMsg final : public net::Payload {
  Certificate certificate;
};

struct BlockRequestMsg final : public net::Payload {
  EpochId epoch = 0;
  Hash256 block_digest;
};

struct BlockResponseMsg final : public net::Payload {
  BlockPtr block;

  uint64_t SizeBytes() const override {
    if (!block) return 256;
    uint64_t size = 128 + 96 * block->parent_certs.size();
    if (block->content) size += block->content->SizeBytes();
    return size;
  }
};

}  // namespace thunderbolt::dag

#endif  // THUNDERBOLT_DAG_BLOCK_H_
