// The "cow" storage backend: a persistent (copy-on-write) balanced tree.
//
// Nodes are immutable and shared through shared_ptr; every mutation
// path-copies the O(log n) nodes from the root to the touched key and
// leaves everything else shared. That makes Snapshot() and Fork() O(1) —
// they just retain the current root — where the hash/ordered backends pay
// a full O(n) copy. This is the backend for validation-style pipelines
// that fork state per block (ROADMAP hot path BM_StoreClone /
// BM_StoreSnapshot): forking stops scaling with store size.
//
// The tree is a treap keyed by lexicographic key order with priorities
// derived from a fixed 64-bit hash of the key, so its shape is a pure
// function of the live key set — identical across replicas regardless of
// insertion order. Scans are in-order walks with subtree pruning.
#ifndef THUNDERBOLT_STORAGE_COW_KV_STORE_H_
#define THUNDERBOLT_STORAGE_COW_KV_STORE_H_

#include <memory>

#include "storage/kv_store.h"

namespace thunderbolt::storage {

class CowKVStore final : public KVStore {
 public:
  struct Node;
  using NodePtr = std::shared_ptr<const Node>;

  struct Node {
    Key key;
    VersionedValue vv;
    uint64_t prio = 0;
    NodePtr left;
    NodePtr right;
    size_t count = 1;  // Subtree size.
  };

  CowKVStore() = default;

  std::string name() const override { return "cow"; }
  Result<VersionedValue> Get(const Key& key) const override;
  Value GetOrDefault(const Key& key, Value default_value) const override;
  Status Put(const Key& key, Value value) override;
  Status Delete(const Key& key) override;
  Status Write(const WriteBatch& batch) override;
  Status RestoreEntry(const Key& key, const VersionedValue& vv) override;
  size_t size() const override;
  std::vector<ScanEntry> Scan(const Key& begin, const Key& end,
                              size_t limit = 0) const override;
  std::shared_ptr<const StoreSnapshot> Snapshot() const override;
  std::unique_ptr<KVStore> Fork() const override;
  uint64_t ContentFingerprint() const override;
  StoreStats Stats() const override;

 private:
  NodePtr root_;
  mutable StoreCounters counters_;
};

}  // namespace thunderbolt::storage

#endif  // THUNDERBOLT_STORAGE_COW_KV_STORE_H_
