#include "storage/kv_store.h"

#include <algorithm>

#include "common/hash.h"
#include "storage/cached_kv_store.h"
#include "storage/cow_kv_store.h"
#include "storage/sorted_kv_store.h"
#include "storage/wal_kv_store.h"

namespace thunderbolt::storage {

namespace {

/// Shared snapshot type for the copying backends: owns an ordered copy of
/// the entries taken at snapshot time.
class OrderedSnapshot final : public StoreSnapshot {
 public:
  explicit OrderedSnapshot(std::map<Key, VersionedValue> entries)
      : entries_(std::move(entries)) {}

  Result<VersionedValue> Get(const Key& key) const override {
    auto it = entries_.find(key);
    if (it == entries_.end()) {
      return Status::NotFound("key not found: " + key);
    }
    return it->second;
  }

  Value GetOrDefault(const Key& key, Value default_value) const override {
    auto it = entries_.find(key);
    return it == entries_.end() ? default_value : it->second.value;
  }

  size_t size() const override { return entries_.size(); }

  std::vector<ScanEntry> Scan(const Key& begin, const Key& end,
                              size_t limit) const override {
    return ScanOrderedMap(entries_, begin, end, limit);
  }

 private:
  std::map<Key, VersionedValue> entries_;
};

}  // namespace

std::shared_ptr<const StoreSnapshot> MakeOrderedSnapshot(
    std::map<Key, VersionedValue> entries) {
  return std::make_shared<OrderedSnapshot>(std::move(entries));
}

std::vector<ScanEntry> ScanOrderedMap(
    const std::map<Key, VersionedValue>& map, const Key& begin,
    const Key& end, size_t limit) {
  std::vector<ScanEntry> out;
  for (auto it = map.lower_bound(begin); it != map.end(); ++it) {
    if (!end.empty() && it->first >= end) break;
    out.push_back(ScanEntry{it->first, it->second});
    if (limit != 0 && out.size() >= limit) break;
  }
  return out;
}

// --- MemKVStore -------------------------------------------------------------

Result<VersionedValue> MemKVStore::Get(const Key& key) const {
  ++counters_.gets;
  auto it = map_.find(key);
  if (it == map_.end()) {
    return Status::NotFound("key not found: " + key);
  }
  return it->second;
}

Value MemKVStore::GetOrDefault(const Key& key, Value default_value) const {
  ++counters_.gets;
  auto it = map_.find(key);
  return it == map_.end() ? default_value : it->second.value;
}

Status MemKVStore::Put(const Key& key, Value value) {
  ++counters_.puts;
  VersionedValue& vv = map_[key];
  vv.value = value;
  ++vv.version;
  return Status::OK();
}

Status MemKVStore::Delete(const Key& key) {
  ++counters_.deletes;
  map_.erase(key);
  return Status::OK();
}

Status MemKVStore::Write(const WriteBatch& batch) {
  ++counters_.batches;
  // Pre-size only when the batch could grow the table noticeably: bulk
  // loads get at most one rehash, while steady-state overwrite batches
  // (post-commit writes to mostly-live keys) avoid permanently doubling
  // the bucket array for keys that never materialize. try_emplace does a
  // single hash+probe per entry whether the key is fresh or live.
  if (batch.size() > map_.size() / 4) {
    map_.reserve(map_.size() + batch.size());
  }
  for (const WriteBatch::Entry& e : batch.entries()) {
    if (e.op == WriteBatch::Op::kDelete) {
      ++counters_.deletes;
      map_.erase(e.key);
      continue;
    }
    ++counters_.puts;
    VersionedValue& vv = map_.try_emplace(e.key).first->second;
    vv.value = e.value;
    ++vv.version;
  }
  return Status::OK();
}

Status MemKVStore::RestoreEntry(const Key& key, const VersionedValue& vv) {
  map_[key] = vv;
  return Status::OK();
}

std::vector<ScanEntry> MemKVStore::Scan(const Key& begin, const Key& end,
                                        size_t limit) const {
  ++counters_.scans;
  // No native ordering: collect the matching entries, then sort. Backends
  // with real range scans ("sorted", "cow") avoid the full pass.
  std::vector<ScanEntry> out;
  for (const auto& [key, vv] : map_) {
    if (key < begin) continue;
    if (!end.empty() && key >= end) continue;
    out.push_back(ScanEntry{key, vv});
  }
  std::sort(out.begin(), out.end(),
            [](const ScanEntry& a, const ScanEntry& b) {
              return a.key < b.key;
            });
  if (limit != 0 && out.size() > limit) out.resize(limit);
  return out;
}

std::shared_ptr<const StoreSnapshot> MemKVStore::Snapshot() const {
  ++counters_.snapshots;
  return MakeOrderedSnapshot(
      std::map<Key, VersionedValue>(map_.begin(), map_.end()));
}

std::unique_ptr<KVStore> MemKVStore::Fork() const {
  ++counters_.forks;
  auto copy = std::make_unique<MemKVStore>();
  copy->map_.reserve(map_.size());
  copy->map_.insert(map_.begin(), map_.end());
  return copy;
}

MemKVStore MemKVStore::Clone() const {
  MemKVStore copy;
  copy.map_.reserve(map_.size());
  copy.map_.insert(map_.begin(), map_.end());
  return copy;
}

uint64_t MemKVStore::ContentFingerprint() const {
  std::vector<const std::pair<const Key, VersionedValue>*> entries;
  entries.reserve(map_.size());
  for (const auto& kv : map_) entries.push_back(&kv);
  std::sort(entries.begin(), entries.end(),
            [](const auto* a, const auto* b) { return a->first < b->first; });
  ContentDigest digest;
  for (const auto* kv : entries) {
    digest.Add(kv->first, kv->second.value);
  }
  return digest.Finish();
}

StoreStats MemKVStore::Stats() const {
  StoreStats stats = counters_.ToStats();
  stats.backend = name();
  stats.live_keys = map_.size();
  return stats;
}

// --- StoreRegistry ----------------------------------------------------------

std::vector<std::pair<std::string, std::string>> ParseStoreParams(
    const std::string& params) {
  std::vector<std::pair<std::string, std::string>> out;
  size_t pos = 0;
  while (pos < params.size()) {
    const size_t eq = params.find('=', pos);
    const size_t comma = params.find(',', pos);
    if (eq == std::string::npos || (comma != std::string::npos && comma < eq)) {
      // Malformed segment without '=': surface it with an empty value so
      // factories can reject it instead of silently dropping it.
      const size_t end = comma == std::string::npos ? params.size() : comma;
      out.emplace_back(params.substr(pos, end - pos), std::string());
      pos = end == params.size() ? end : end + 1;
      continue;
    }
    const std::string key = params.substr(pos, eq - pos);
    if (key == "inner") {
      // `inner` consumes the rest of the string: its value is a full spec
      // that may itself contain ',' and ':' (nested wrappers).
      out.emplace_back(key, params.substr(eq + 1));
      break;
    }
    const size_t end = comma == std::string::npos ? params.size() : comma;
    out.emplace_back(key, params.substr(eq + 1, end - (eq + 1)));
    pos = end == params.size() ? end : end + 1;
  }
  return out;
}

namespace {

/// Splits "name:params" at the first ':'; plain names pass through with
/// empty params.
void SplitSpec(const std::string& spec, std::string* name,
               std::string* params) {
  const size_t colon = spec.find(':');
  if (colon == std::string::npos) {
    *name = spec;
    params->clear();
  } else {
    *name = spec.substr(0, colon);
    *params = spec.substr(colon + 1);
  }
}

}  // namespace

void StoreRegistry::Register(std::string name, Factory factory) {
  factories_[std::move(name)] = std::move(factory);
}

std::unique_ptr<KVStore> StoreRegistry::Create(
    const std::string& spec, const StoreOptions& options) const {
  std::string name, params;
  SplitSpec(spec, &name, &params);
  auto it = factories_.find(name);
  if (it == factories_.end()) return nullptr;
  StoreOptions opts = options;
  if (!params.empty()) opts.params = params;
  std::unique_ptr<KVStore> store = it->second(opts);
  if (store != nullptr && opts.expected_keys > 0) {
    store->Reserve(opts.expected_keys);
  }
  return store;
}

bool StoreRegistry::Contains(const std::string& spec) const {
  std::string name, params;
  SplitSpec(spec, &name, &params);
  return factories_.find(name) != factories_.end();
}

std::vector<std::string> StoreRegistry::Names() const {
  std::vector<std::string> names;
  names.reserve(factories_.size());
  for (const auto& [name, factory] : factories_) names.push_back(name);
  return names;
}

StoreRegistry& StoreRegistry::Global() {
  // Built-ins register here (not via static initializers, which static
  // libraries would dead-strip).
  static StoreRegistry* registry = [] {
    auto* r = new StoreRegistry();
    r->Register("mem", [](const StoreOptions&) {
      return std::unique_ptr<KVStore>(new MemKVStore());
    });
    r->Register("sorted", [](const StoreOptions&) {
      return std::unique_ptr<KVStore>(new SortedKVStore());
    });
    r->Register("cow", [](const StoreOptions&) {
      return std::unique_ptr<KVStore>(new CowKVStore());
    });
    r->Register("cached", [](const StoreOptions& options) {
      return CachedKVStore::FromOptions(options);
    });
    r->Register("wal", [](const StoreOptions& options) {
      return WalKVStore::FromOptions(options);
    });
    return r;
  }();
  return *registry;
}

}  // namespace thunderbolt::storage
