#include "storage/kv_store.h"

#include <algorithm>

#include "common/hash.h"

namespace thunderbolt::storage {

Result<VersionedValue> MemKVStore::Get(const Key& key) const {
  auto it = map_.find(key);
  if (it == map_.end()) {
    return Status::NotFound("key not found: " + key);
  }
  return it->second;
}

Value MemKVStore::GetOrDefault(const Key& key, Value default_value) const {
  auto it = map_.find(key);
  return it == map_.end() ? default_value : it->second.value;
}

Status MemKVStore::Put(const Key& key, Value value) {
  VersionedValue& vv = map_[key];
  vv.value = value;
  ++vv.version;
  return Status::OK();
}

Status MemKVStore::Write(const WriteBatch& batch) {
  // Pre-size only when the batch could grow the table noticeably: bulk
  // loads get at most one rehash, while steady-state overwrite batches
  // (post-commit writes to mostly-live keys) avoid permanently doubling
  // the bucket array for keys that never materialize. try_emplace does a
  // single hash+probe per entry whether the key is fresh or live.
  if (batch.size() > map_.size() / 4) {
    map_.reserve(map_.size() + batch.size());
  }
  for (const WriteBatch::Entry& e : batch.entries()) {
    VersionedValue& vv = map_.try_emplace(e.key).first->second;
    vv.value = e.value;
    ++vv.version;
  }
  return Status::OK();
}

MemKVStore MemKVStore::Clone() const {
  MemKVStore copy;
  copy.map_.reserve(map_.size());
  copy.map_.insert(map_.begin(), map_.end());
  return copy;
}

uint64_t MemKVStore::ContentFingerprint() const {
  std::vector<const std::pair<const Key, VersionedValue>*> entries;
  entries.reserve(map_.size());
  for (const auto& kv : map_) entries.push_back(&kv);
  std::sort(entries.begin(), entries.end(),
            [](const auto* a, const auto* b) { return a->first < b->first; });
  Sha256 h;
  for (const auto* kv : entries) {
    h.Update(kv->first);
    h.UpdateInt(kv->second.value);
  }
  return h.Finalize().Prefix64();
}

}  // namespace thunderbolt::storage
