// The "wal" storage backend: an append-only, CRC-framed, group-committed
// write-ahead log + periodic checkpoints layered over any registered store.
//
// Spec: wal:dir=<path>,group_commit=<n>,checkpoint_every=<n>,fsync=<0|1>,
//       inner=<spec>
// Defaults: ephemeral temp dir (removed on destruction), group_commit=8,
// checkpoint_every=1024, fsync=0, inner="mem". Give `dir=` a real path to
// make the store durable across process lifetimes.
//
// Write path. Every mutation is encoded as one log frame (Put/Delete as a
// single-entry batch frame, so replay reuses the live Write() path and
// reproduces version semantics exactly), buffered in memory, and applied
// to the inner store immediately. A flush barrier — fwrite + fflush, plus
// fsync when `fsync=1` — runs once per `group_commit` frames, on Flush(),
// at checkpoint, and at destruction. That is the paper-shaped durability
// trade: one barrier absorbs a committed wave of writes, so raising
// group_commit amortizes the stall at the cost of a wider
// may-be-lost-on-kill window (bounded by group_commit frames).
//
// Frame format (little-endian): magic 'TBWA' u32 | payload_len u32 |
// seq u64 | type u8 | crc32 u32 | payload. The CRC (poly 0xEDB88320)
// covers type, seq and payload. Batch payload: count u32, then per entry
// op u8, klen u32, key, value u64. Restore payload: klen u32, key,
// value u64, version u64.
//
// Checkpoints bound replay: the full inner state is written to a side file
// (tmp + rename, so a crash mid-checkpoint leaves the old one intact) with
// exact versions, and the log restarts empty. Recovery at construction
// loads the newest valid checkpoint via RestoreEntry, then replays log
// frames with seq beyond it, **stopping at the first bad frame** — a torn
// or truncated tail (kill -9 mid-append) silently rolls back to the last
// durable prefix, never failing recovery. The torn tail is trimmed from
// the file so post-recovery appends extend the valid prefix.
//
// Durability contract: after recovery the store equals the state produced
// by some prefix of the acknowledged mutation sequence that includes every
// mutation up to the last completed barrier (wal_recovery_property_test
// pins this across random kill offsets).
//
// wal.append / wal.checkpoint / wal.recover spans are emitted through
// StoreOptions::tracer with StoreOptions::now_us timestamps, and the
// wal_appends/wal_syncs/wal_checkpoints/wal_recovered_records counters
// surface through Stats().
#ifndef THUNDERBOLT_STORAGE_WAL_KV_STORE_H_
#define THUNDERBOLT_STORAGE_WAL_KV_STORE_H_

#include <cstdio>
#include <functional>
#include <memory>
#include <string>

#include "storage/kv_store.h"

namespace thunderbolt::obs {
class Tracer;
}  // namespace thunderbolt::obs

namespace thunderbolt::storage {

/// CRC-32 (poly 0xEDB88320, the zlib polynomial) over `data`. Exposed for
/// the recovery property test to forge/verify frames.
uint32_t Crc32(const void* data, size_t size);

class WalKVStore final : public KVStore {
 public:
  static constexpr const char* kLogFileName = "wal.log";
  static constexpr const char* kCheckpointFileName = "checkpoint";

  struct Params {
    std::string inner_spec = "mem";
    std::string dir;               // Empty = ephemeral temp dir.
    size_t group_commit = 8;       // Frames per flush barrier (min 1).
    size_t checkpoint_every = 1024;  // Frames between checkpoints; 0 = off.
    bool fsync = false;            // fsync() at each barrier + checkpoint.
  };

  /// Opens (and recovers, when `params.dir` holds a previous incarnation's
  /// files) a WAL over `inner`. `options` supplies tracer + clock.
  WalKVStore(std::unique_ptr<KVStore> inner, Params params,
             const StoreOptions& options);
  /// Flushes pending frames, closes the log, and removes the directory
  /// when it was ephemeral.
  ~WalKVStore() override;

  /// Registry factory: parses StoreOptions::params (see file comment).
  /// Returns nullptr on unknown params or an unresolvable inner spec.
  static std::unique_ptr<KVStore> FromOptions(const StoreOptions& options);

  std::string name() const override { return "wal"; }
  Result<VersionedValue> Get(const Key& key) const override;
  Value GetOrDefault(const Key& key, Value default_value) const override;
  Status Put(const Key& key, Value value) override;
  Status Delete(const Key& key) override;
  Status Write(const WriteBatch& batch) override;
  Status RestoreEntry(const Key& key, const VersionedValue& vv) override;
  /// Group-commit barrier: makes every acknowledged mutation durable.
  Status Flush() override;
  size_t size() const override { return inner_->size(); }
  std::vector<ScanEntry> Scan(const Key& begin, const Key& end,
                              size_t limit = 0) const override;
  std::shared_ptr<const StoreSnapshot> Snapshot() const override;
  /// Ephemeral fork: returns a fork of the inner store with NO log of its
  /// own (forks serve speculative validation state, which must not pollute
  /// the durable history).
  std::unique_ptr<KVStore> Fork() const override;
  void Reserve(size_t expected_keys) override {
    inner_->Reserve(expected_keys);
  }
  uint64_t ContentFingerprint() const override {
    return inner_->ContentFingerprint();
  }
  StoreStats Stats() const override;

  /// Writes a full checkpoint and truncates the log. Also triggered
  /// automatically every `checkpoint_every` frames.
  Status Checkpoint();

  const std::string& dir() const { return dir_; }
  std::string log_path() const;
  std::string checkpoint_path() const;

 private:
  Status AppendFrame(uint8_t type, const std::string& payload);
  /// Checkpoints when the automatic cadence is due. Must only run AFTER
  /// the triggering frame's mutation has been applied to inner_ — a
  /// checkpoint taken between append and apply would mark the frame
  /// durable, truncate the log, and lose the mutation.
  Status MaybeCheckpoint();
  Status Barrier();
  void Recover();
  uint64_t NowUs() const { return now_us_ ? now_us_() : 0; }

  std::unique_ptr<KVStore> inner_;
  Params params_;
  obs::Tracer* tracer_;            // Never null (falls back to the null tracer).
  std::function<uint64_t()> now_us_;
  std::string dir_;
  bool ephemeral_dir_ = false;
  std::FILE* log_ = nullptr;
  Status io_status_;               // Sticky first IO failure.
  std::string buffer_;             // Encoded frames awaiting a barrier.
  size_t pending_frames_ = 0;
  size_t frames_since_checkpoint_ = 0;
  uint64_t next_seq_ = 1;
  uint64_t checkpoint_seq_ = 0;    // Highest seq covered by the checkpoint.
  mutable StoreCounters counters_;
};

}  // namespace thunderbolt::storage

#endif  // THUNDERBOLT_STORAGE_WAL_KV_STORE_H_
