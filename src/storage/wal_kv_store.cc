#include "storage/wal_kv_store.h"

#include <atomic>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <utility>

#ifndef _WIN32
#include <unistd.h>
#endif

#include "obs/trace.h"

namespace thunderbolt::storage {

namespace {

constexpr uint32_t kFrameMagic = 0x54425741;       // 'TBWA'
constexpr uint32_t kCheckpointMagic = 0x5442434bu;  // 'TBCK'
// Header: magic u32 | payload_len u32 | seq u64 | type u8 | crc u32.
constexpr size_t kFrameHeaderSize = 4 + 4 + 8 + 1 + 4;
// A frame larger than this is treated as corruption, not an allocation
// request — payload_len is attacker/garbage-controlled during recovery.
constexpr uint32_t kMaxPayload = 1u << 26;

constexpr uint8_t kFrameBatch = 1;
constexpr uint8_t kFrameRestore = 2;

void PutU32(std::string* out, uint32_t v) {
  char b[4];
  for (int i = 0; i < 4; ++i) b[i] = static_cast<char>((v >> (8 * i)) & 0xff);
  out->append(b, 4);
}

void PutU64(std::string* out, uint64_t v) {
  char b[8];
  for (int i = 0; i < 8; ++i) b[i] = static_cast<char>((v >> (8 * i)) & 0xff);
  out->append(b, 8);
}

/// Bounds-checked little-endian cursor over a recovered byte buffer.
struct Reader {
  const char* p;
  size_t left;

  bool U8(uint8_t* v) {
    if (left < 1) return false;
    *v = static_cast<uint8_t>(*p);
    ++p;
    --left;
    return true;
  }
  bool U32(uint32_t* v) {
    if (left < 4) return false;
    *v = 0;
    for (int i = 0; i < 4; ++i) {
      *v |= static_cast<uint32_t>(static_cast<unsigned char>(p[i])) << (8 * i);
    }
    p += 4;
    left -= 4;
    return true;
  }
  bool U64(uint64_t* v) {
    if (left < 8) return false;
    *v = 0;
    for (int i = 0; i < 8; ++i) {
      *v |= static_cast<uint64_t>(static_cast<unsigned char>(p[i])) << (8 * i);
    }
    p += 8;
    left -= 8;
    return true;
  }
  bool Bytes(size_t n, std::string* out) {
    if (left < n) return false;
    out->assign(p, n);
    p += n;
    left -= n;
    return true;
  }
};

std::string EncodeBatchPayload(const WriteBatch& batch) {
  std::string payload;
  PutU32(&payload, static_cast<uint32_t>(batch.size()));
  for (const WriteBatch::Entry& e : batch.entries()) {
    payload.push_back(static_cast<char>(
        e.op == WriteBatch::Op::kDelete ? 1 : 0));
    PutU32(&payload, static_cast<uint32_t>(e.key.size()));
    payload += e.key;
    PutU64(&payload, static_cast<uint64_t>(e.value));
  }
  return payload;
}

bool DecodeBatchPayload(const std::string& payload, WriteBatch* batch) {
  Reader r{payload.data(), payload.size()};
  uint32_t count = 0;
  if (!r.U32(&count)) return false;
  for (uint32_t i = 0; i < count; ++i) {
    uint8_t op = 0;
    uint32_t klen = 0;
    std::string key;
    uint64_t value = 0;
    if (!r.U8(&op) || !r.U32(&klen) || !r.Bytes(klen, &key) || !r.U64(&value)) {
      return false;
    }
    if (op == 1) {
      batch->Delete(std::move(key));
    } else {
      batch->Put(std::move(key), static_cast<Value>(value));
    }
  }
  return r.left == 0;
}

std::string EncodeRestorePayload(const Key& key, const VersionedValue& vv) {
  std::string payload;
  PutU32(&payload, static_cast<uint32_t>(key.size()));
  payload += key;
  PutU64(&payload, static_cast<uint64_t>(vv.value));
  PutU64(&payload, vv.version);
  return payload;
}

bool DecodeRestorePayload(const std::string& payload, Key* key,
                          VersionedValue* vv) {
  Reader r{payload.data(), payload.size()};
  uint32_t klen = 0;
  uint64_t value = 0, version = 0;
  if (!r.U32(&klen) || !r.Bytes(klen, key) || !r.U64(&value) ||
      !r.U64(&version)) {
    return false;
  }
  vv->value = static_cast<Value>(value);
  vv->version = version;
  return r.left == 0;
}

bool ReadFile(const std::string& path, std::string* out) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return false;
  out->clear();
  char buf[1 << 16];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) out->append(buf, n);
  std::fclose(f);
  return true;
}

std::string MakeEphemeralDir() {
  static std::atomic<uint64_t> counter{0};
  const uint64_t id = counter.fetch_add(1, std::memory_order_relaxed);
  namespace fs = std::filesystem;
  fs::path dir = fs::temp_directory_path() /
                 ("thunderbolt-wal-" +
#ifndef _WIN32
                  std::to_string(static_cast<uint64_t>(::getpid())) + "-" +
#endif
                  std::to_string(id));
  std::error_code ec;
  fs::create_directories(dir, ec);
  return dir.string();
}

}  // namespace

uint32_t Crc32(const void* data, size_t size) {
  static const uint32_t* table = [] {
    static uint32_t t[256];
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      }
      t[i] = c;
    }
    return t;
  }();
  uint32_t crc = 0xFFFFFFFFu;
  const auto* p = static_cast<const unsigned char*>(data);
  for (size_t i = 0; i < size; ++i) {
    crc = table[(crc ^ p[i]) & 0xff] ^ (crc >> 8);
  }
  return crc ^ 0xFFFFFFFFu;
}

WalKVStore::WalKVStore(std::unique_ptr<KVStore> inner, Params params,
                       const StoreOptions& options)
    : inner_(std::move(inner)),
      params_(std::move(params)),
      tracer_(options.tracer != nullptr ? options.tracer
                                        : obs::NullTracerInstance()),
      now_us_(options.now_us) {
  if (params_.group_commit == 0) params_.group_commit = 1;
  if (params_.dir.empty()) {
    dir_ = MakeEphemeralDir();
    ephemeral_dir_ = true;
  } else {
    dir_ = params_.dir;
    std::error_code ec;
    std::filesystem::create_directories(dir_, ec);
  }
  Recover();
  log_ = std::fopen(log_path().c_str(), "ab");
  if (log_ == nullptr) {
    io_status_ = Status::Internal("wal: cannot open log " + log_path());
  }
}

WalKVStore::~WalKVStore() {
  Barrier();
  if (log_ != nullptr) std::fclose(log_);
  if (ephemeral_dir_) {
    std::error_code ec;
    std::filesystem::remove_all(dir_, ec);
  }
}

std::string WalKVStore::log_path() const {
  return dir_ + "/" + kLogFileName;
}

std::string WalKVStore::checkpoint_path() const {
  return dir_ + "/" + kCheckpointFileName;
}

std::unique_ptr<KVStore> WalKVStore::FromOptions(const StoreOptions& options) {
  Params params;
  for (const auto& [key, value] : ParseStoreParams(options.params)) {
    if (key == "inner") {
      params.inner_spec = value;
    } else if (key == "dir") {
      params.dir = value;
    } else if (key == "group_commit") {
      params.group_commit =
          static_cast<size_t>(std::strtoull(value.c_str(), nullptr, 10));
    } else if (key == "checkpoint_every") {
      params.checkpoint_every =
          static_cast<size_t>(std::strtoull(value.c_str(), nullptr, 10));
    } else if (key == "fsync") {
      params.fsync = value == "1" || value == "true";
    } else {
      return nullptr;  // Unknown param: reject, don't silently ignore.
    }
  }
  StoreOptions inner_options = options;
  inner_options.params.clear();  // The inner spec carries its own params.
  std::unique_ptr<KVStore> inner =
      StoreRegistry::Global().Create(params.inner_spec, inner_options);
  if (inner == nullptr) return nullptr;
  return std::make_unique<WalKVStore>(std::move(inner), std::move(params),
                                      options);
}

void WalKVStore::Recover() {
  const uint64_t start_us = NowUs();
  uint64_t checkpoint_entries = 0;
  uint64_t replayed_frames = 0;
  bool had_files = false;

  // 1. Checkpoint: all-or-nothing. tmp+rename publication means a valid
  // file is the common case; anything failing validation is ignored
  // wholesale (never partially applied).
  std::string data;
  if (ReadFile(checkpoint_path(), &data)) {
    had_files = true;
    Reader r{data.data(), data.size()};
    uint32_t magic = 0;
    uint64_t last_seq = 0, count = 0;
    bool ok = r.U32(&magic) && magic == kCheckpointMagic && r.U64(&last_seq) &&
              r.U64(&count) && data.size() >= 4 + 4 &&
              Crc32(data.data() + 4, data.size() - 8) ==
                  [&] {
                    uint32_t stored = 0;
                    std::memcpy(&stored, data.data() + data.size() - 4, 4);
                    return stored;
                  }();
    // Each entry occupies >= 20 bytes, so `count` beyond that bound is
    // corruption, caught before reserve() turns it into an allocation.
    ok = ok && count <= data.size() / 20;
    if (ok) {
      std::vector<std::pair<Key, VersionedValue>> entries;
      entries.reserve(count);
      for (uint64_t i = 0; ok && i < count; ++i) {
        uint32_t klen = 0;
        Key key;
        uint64_t value = 0, version = 0;
        ok = r.U32(&klen) && r.Bytes(klen, &key) && r.U64(&value) &&
             r.U64(&version);
        if (ok) {
          entries.emplace_back(
              std::move(key),
              VersionedValue{static_cast<Value>(value), version});
        }
      }
      // Entry area must end exactly at the trailing CRC.
      ok = ok && r.left == 4;
      if (ok) {
        for (const auto& [key, vv] : entries) {
          inner_->RestoreEntry(key, vv);
        }
        checkpoint_seq_ = last_seq;
        next_seq_ = last_seq + 1;
        checkpoint_entries = entries.size();
        counters_.wal_recovered_records.fetch_add(entries.size(),
                                                  std::memory_order_relaxed);
      }
    }
  }

  // 2. Log suffix: replay frames past the checkpoint, stopping at the
  // first bad frame (torn tail). The surviving prefix is rewritten so new
  // appends extend valid bytes, not garbage.
  std::string log;
  if (ReadFile(log_path(), &log)) {
    had_files = had_files || !log.empty();
    size_t pos = 0;
    while (log.size() - pos >= kFrameHeaderSize) {
      Reader r{log.data() + pos, log.size() - pos};
      uint32_t magic = 0, payload_len = 0, stored_crc = 0;
      uint64_t seq = 0;
      uint8_t type = 0;
      r.U32(&magic);
      r.U32(&payload_len);
      r.U64(&seq);
      r.U8(&type);
      r.U32(&stored_crc);
      if (magic != kFrameMagic || payload_len > kMaxPayload ||
          r.left < payload_len) {
        break;
      }
      std::string crc_input;
      crc_input.push_back(static_cast<char>(type));
      PutU64(&crc_input, seq);
      crc_input.append(r.p, payload_len);
      if (Crc32(crc_input.data(), crc_input.size()) != stored_crc) break;
      const std::string payload(r.p, payload_len);
      if (seq > checkpoint_seq_) {
        if (type == kFrameBatch) {
          WriteBatch batch;
          if (!DecodeBatchPayload(payload, &batch)) break;
          inner_->Write(batch);
        } else if (type == kFrameRestore) {
          Key key;
          VersionedValue vv;
          if (!DecodeRestorePayload(payload, &key, &vv)) break;
          inner_->RestoreEntry(key, vv);
        } else {
          break;  // Unknown frame type: treat as corruption.
        }
        ++replayed_frames;
        counters_.wal_recovered_records.fetch_add(1,
                                                  std::memory_order_relaxed);
      }
      pos += kFrameHeaderSize + payload_len;
      if (seq >= next_seq_) next_seq_ = seq + 1;
    }
    if (pos < log.size()) {
      // Trim the torn tail to the last valid frame boundary.
      std::FILE* f = std::fopen(log_path().c_str(), "wb");
      if (f != nullptr) {
        std::fwrite(log.data(), 1, pos, f);
        std::fclose(f);
      }
    }
  }

  if (had_files && tracer_->enabled()) {
    obs::TraceEvent event;
    event.kind = obs::EventKind::kWalRecover;
    event.ts_us = start_us;
    event.dur_us = NowUs() - start_us;
    event.a = checkpoint_entries;
    event.b = replayed_frames;
    tracer_->Record(event);
  }
}

Status WalKVStore::Barrier() {
  if (!io_status_.ok()) return io_status_;
  if (buffer_.empty()) return Status::OK();
  const uint64_t start_us = NowUs();
  const size_t frames = pending_frames_;
  const size_t bytes = buffer_.size();
  if (log_ == nullptr ||
      std::fwrite(buffer_.data(), 1, buffer_.size(), log_) != buffer_.size() ||
      std::fflush(log_) != 0) {
    io_status_ = Status::Internal("wal: log write failed");
    return io_status_;
  }
#ifndef _WIN32
  if (params_.fsync) ::fsync(::fileno(log_));
#endif
  buffer_.clear();
  pending_frames_ = 0;
  counters_.wal_syncs.fetch_add(1, std::memory_order_relaxed);
  if (tracer_->enabled()) {
    obs::TraceEvent event;
    event.kind = obs::EventKind::kWalAppend;
    event.ts_us = start_us;
    event.dur_us = NowUs() - start_us;
    event.a = frames;
    event.b = bytes;
    tracer_->Record(event);
  }
  return Status::OK();
}

Status WalKVStore::AppendFrame(uint8_t type, const std::string& payload) {
  if (!io_status_.ok()) return io_status_;
  const uint64_t seq = next_seq_++;
  PutU32(&buffer_, kFrameMagic);
  PutU32(&buffer_, static_cast<uint32_t>(payload.size()));
  PutU64(&buffer_, seq);
  buffer_.push_back(static_cast<char>(type));
  std::string crc_input;
  crc_input.push_back(static_cast<char>(type));
  PutU64(&crc_input, seq);
  crc_input += payload;
  PutU32(&buffer_, Crc32(crc_input.data(), crc_input.size()));
  buffer_ += payload;
  counters_.wal_appends.fetch_add(1, std::memory_order_relaxed);
  ++pending_frames_;
  ++frames_since_checkpoint_;
  if (pending_frames_ >= params_.group_commit) {
    return Barrier();
  }
  // Checkpointing must NOT happen here: the frame's mutation has not been
  // applied to inner_ yet, so a checkpoint taken now would record last_seq
  // as durable while scanning a state that misses it — then truncate the
  // log and lose the mutation forever. MaybeCheckpoint() runs after the
  // inner apply instead.
  return Status::OK();
}

Status WalKVStore::MaybeCheckpoint() {
  if (params_.checkpoint_every > 0 &&
      frames_since_checkpoint_ >= params_.checkpoint_every) {
    return Checkpoint();
  }
  return Status::OK();
}

Status WalKVStore::Checkpoint() {
  Status s = Barrier();
  if (!s.ok()) return s;
  const uint64_t start_us = NowUs();
  const uint64_t last_seq = next_seq_ - 1;
  const std::vector<ScanEntry> entries = inner_->Scan("", "");

  std::string data;
  PutU32(&data, kCheckpointMagic);
  PutU64(&data, last_seq);
  PutU64(&data, static_cast<uint64_t>(entries.size()));
  for (const ScanEntry& e : entries) {
    PutU32(&data, static_cast<uint32_t>(e.key.size()));
    data += e.key;
    PutU64(&data, static_cast<uint64_t>(e.value.value));
    PutU64(&data, e.value.version);
  }
  PutU32(&data, Crc32(data.data() + 4, data.size() - 4));

  const std::string tmp = checkpoint_path() + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr || std::fwrite(data.data(), 1, data.size(), f) !=
                          data.size()) {
    if (f != nullptr) std::fclose(f);
    io_status_ = Status::Internal("wal: checkpoint write failed");
    return io_status_;
  }
  std::fflush(f);
#ifndef _WIN32
  if (params_.fsync) ::fsync(::fileno(f));
#endif
  std::fclose(f);
  std::error_code ec;
  std::filesystem::rename(tmp, checkpoint_path(), ec);
  if (ec) {
    io_status_ = Status::Internal("wal: checkpoint rename failed");
    return io_status_;
  }

  // Restart the log: everything up to last_seq now lives in the checkpoint.
  if (log_ != nullptr) std::fclose(log_);
  log_ = std::fopen(log_path().c_str(), "wb");
  if (log_ == nullptr) {
    io_status_ = Status::Internal("wal: log truncate failed");
    return io_status_;
  }
  checkpoint_seq_ = last_seq;
  frames_since_checkpoint_ = 0;
  counters_.wal_checkpoints.fetch_add(1, std::memory_order_relaxed);
  if (tracer_->enabled()) {
    obs::TraceEvent event;
    event.kind = obs::EventKind::kWalCheckpoint;
    event.ts_us = start_us;
    event.dur_us = NowUs() - start_us;
    event.a = entries.size();
    event.b = last_seq;
    tracer_->Record(event);
  }
  return Status::OK();
}

Result<VersionedValue> WalKVStore::Get(const Key& key) const {
  counters_.gets.fetch_add(1, std::memory_order_relaxed);
  return inner_->Get(key);
}

Value WalKVStore::GetOrDefault(const Key& key, Value default_value) const {
  counters_.gets.fetch_add(1, std::memory_order_relaxed);
  return inner_->GetOrDefault(key, default_value);
}

Status WalKVStore::Put(const Key& key, Value value) {
  counters_.puts.fetch_add(1, std::memory_order_relaxed);
  WriteBatch one;
  one.Put(key, value);
  Status s = AppendFrame(kFrameBatch, EncodeBatchPayload(one));
  if (!s.ok()) return s;
  s = inner_->Put(key, value);
  if (!s.ok()) return s;
  return MaybeCheckpoint();
}

Status WalKVStore::Delete(const Key& key) {
  counters_.deletes.fetch_add(1, std::memory_order_relaxed);
  WriteBatch one;
  one.Delete(key);
  Status s = AppendFrame(kFrameBatch, EncodeBatchPayload(one));
  if (!s.ok()) return s;
  s = inner_->Delete(key);
  if (!s.ok()) return s;
  return MaybeCheckpoint();
}

Status WalKVStore::Write(const WriteBatch& batch) {
  counters_.batches.fetch_add(1, std::memory_order_relaxed);
  for (const WriteBatch::Entry& e : batch.entries()) {
    if (e.op == WriteBatch::Op::kDelete) {
      counters_.deletes.fetch_add(1, std::memory_order_relaxed);
    } else {
      counters_.puts.fetch_add(1, std::memory_order_relaxed);
    }
  }
  Status s = AppendFrame(kFrameBatch, EncodeBatchPayload(batch));
  if (!s.ok()) return s;
  s = inner_->Write(batch);
  if (!s.ok()) return s;
  return MaybeCheckpoint();
}

Status WalKVStore::RestoreEntry(const Key& key, const VersionedValue& vv) {
  Status s = AppendFrame(kFrameRestore, EncodeRestorePayload(key, vv));
  if (!s.ok()) return s;
  s = inner_->RestoreEntry(key, vv);
  if (!s.ok()) return s;
  return MaybeCheckpoint();
}

Status WalKVStore::Flush() { return Barrier(); }

std::vector<ScanEntry> WalKVStore::Scan(const Key& begin, const Key& end,
                                        size_t limit) const {
  counters_.scans.fetch_add(1, std::memory_order_relaxed);
  return inner_->Scan(begin, end, limit);
}

std::shared_ptr<const StoreSnapshot> WalKVStore::Snapshot() const {
  counters_.snapshots.fetch_add(1, std::memory_order_relaxed);
  return inner_->Snapshot();
}

std::unique_ptr<KVStore> WalKVStore::Fork() const {
  counters_.forks.fetch_add(1, std::memory_order_relaxed);
  return inner_->Fork();
}

StoreStats WalKVStore::Stats() const {
  StoreStats stats = counters_.ToStats();
  stats.backend = name();
  const StoreStats inner = inner_->Stats();
  stats.live_keys = inner.live_keys;
  stats.cache_hits += inner.cache_hits;
  stats.cache_misses += inner.cache_misses;
  stats.wal_appends += inner.wal_appends;
  stats.wal_syncs += inner.wal_syncs;
  stats.wal_checkpoints += inner.wal_checkpoints;
  stats.wal_recovered_records += inner.wal_recovered_records;
  return stats;
}

}  // namespace thunderbolt::storage
