// The "sorted" storage backend: a std::map-ordered twin of MemKVStore.
//
// Keeps keys in lexicographic order so Scan() is a real range walk
// (lower_bound + iterate) instead of the collect-and-sort pass the hash
// backend pays. Point operations are O(log n); Snapshot()/Fork() are O(n)
// copies like "mem". Pick it when range-placement audits or future TPC-C
// table scans dominate; pick "cow" when snapshot/fork frequency dominates.
#ifndef THUNDERBOLT_STORAGE_SORTED_KV_STORE_H_
#define THUNDERBOLT_STORAGE_SORTED_KV_STORE_H_

#include <map>

#include "storage/kv_store.h"

namespace thunderbolt::storage {

class SortedKVStore final : public KVStore {
 public:
  SortedKVStore() = default;

  std::string name() const override { return "sorted"; }
  Result<VersionedValue> Get(const Key& key) const override;
  Value GetOrDefault(const Key& key, Value default_value) const override;
  Status Put(const Key& key, Value value) override;
  Status Delete(const Key& key) override;
  Status Write(const WriteBatch& batch) override;
  Status RestoreEntry(const Key& key, const VersionedValue& vv) override;
  size_t size() const override { return map_.size(); }
  std::vector<ScanEntry> Scan(const Key& begin, const Key& end,
                              size_t limit = 0) const override;
  std::shared_ptr<const StoreSnapshot> Snapshot() const override;
  std::unique_ptr<KVStore> Fork() const override;
  uint64_t ContentFingerprint() const override;
  StoreStats Stats() const override;

 private:
  std::map<Key, VersionedValue> map_;
  mutable StoreCounters counters_;
};

}  // namespace thunderbolt::storage

#endif  // THUNDERBOLT_STORAGE_SORTED_KV_STORE_H_
