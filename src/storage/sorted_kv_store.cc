#include "storage/sorted_kv_store.h"

namespace thunderbolt::storage {

Result<VersionedValue> SortedKVStore::Get(const Key& key) const {
  ++counters_.gets;
  auto it = map_.find(key);
  if (it == map_.end()) {
    return Status::NotFound("key not found: " + key);
  }
  return it->second;
}

Value SortedKVStore::GetOrDefault(const Key& key, Value default_value) const {
  ++counters_.gets;
  auto it = map_.find(key);
  return it == map_.end() ? default_value : it->second.value;
}

Status SortedKVStore::Put(const Key& key, Value value) {
  ++counters_.puts;
  VersionedValue& vv = map_[key];
  vv.value = value;
  ++vv.version;
  return Status::OK();
}

Status SortedKVStore::Delete(const Key& key) {
  ++counters_.deletes;
  map_.erase(key);
  return Status::OK();
}

Status SortedKVStore::Write(const WriteBatch& batch) {
  ++counters_.batches;
  for (const WriteBatch::Entry& e : batch.entries()) {
    if (e.op == WriteBatch::Op::kDelete) {
      ++counters_.deletes;
      map_.erase(e.key);
      continue;
    }
    ++counters_.puts;
    VersionedValue& vv = map_[e.key];
    vv.value = e.value;
    ++vv.version;
  }
  return Status::OK();
}

Status SortedKVStore::RestoreEntry(const Key& key, const VersionedValue& vv) {
  map_[key] = vv;
  return Status::OK();
}

std::vector<ScanEntry> SortedKVStore::Scan(const Key& begin, const Key& end,
                                           size_t limit) const {
  ++counters_.scans;
  return ScanOrderedMap(map_, begin, end, limit);
}

std::shared_ptr<const StoreSnapshot> SortedKVStore::Snapshot() const {
  ++counters_.snapshots;
  return MakeOrderedSnapshot(map_);
}

std::unique_ptr<KVStore> SortedKVStore::Fork() const {
  ++counters_.forks;
  auto copy = std::make_unique<SortedKVStore>();
  copy->map_ = map_;
  return copy;
}

uint64_t SortedKVStore::ContentFingerprint() const {
  ContentDigest digest;
  for (const auto& [key, vv] : map_) {
    digest.Add(key, vv.value);
  }
  return digest.Finish();
}

StoreStats SortedKVStore::Stats() const {
  StoreStats stats = counters_.ToStats();
  stats.backend = name();
  stats.live_keys = map_.size();
  return stats;
}

}  // namespace thunderbolt::storage
