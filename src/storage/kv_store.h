// Versioned key-value storage engine.
//
// Substitutes for the LevelDB instance the paper uses to hold SmallBank
// account balances (DESIGN.md substitution #3). Values are 64-bit integers,
// matching the paper's data model where contract operations are
// <Read, K> and <Write, K, V> over numeric account state. Every committed
// write bumps the key's version; versions drive OCC validation and preplay
// re-validation.
#ifndef THUNDERBOLT_STORAGE_KV_STORE_H_
#define THUNDERBOLT_STORAGE_KV_STORE_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "common/status.h"

namespace thunderbolt::storage {

using Key = std::string;
using Value = int64_t;
using Version = uint64_t;

/// A value together with the version at which it was written.
struct VersionedValue {
  Value value = 0;
  Version version = 0;
};

/// An atomically applied set of writes.
class WriteBatch {
 public:
  void Put(Key key, Value value) {
    ops_.push_back(Entry{std::move(key), value});
  }
  void Clear() { ops_.clear(); }
  size_t size() const { return ops_.size(); }
  bool empty() const { return ops_.empty(); }

  struct Entry {
    Key key;
    Value value;
  };
  const std::vector<Entry>& entries() const { return ops_; }

 private:
  std::vector<Entry> ops_;
};

/// Abstract storage engine interface. Implementations must apply
/// WriteBatches atomically with respect to snapshots.
class KVStore {
 public:
  virtual ~KVStore() = default;

  /// Returns the current value+version, or NotFound.
  virtual Result<VersionedValue> Get(const Key& key) const = 0;

  /// Returns the value, or `default_value` when the key is absent (reads of
  /// fresh SmallBank accounts start from zero balances).
  virtual Value GetOrDefault(const Key& key, Value default_value) const = 0;

  /// Single-key write.
  virtual Status Put(const Key& key, Value value) = 0;

  /// Atomically applies all writes in the batch.
  virtual Status Write(const WriteBatch& batch) = 0;

  /// Number of live keys.
  virtual size_t size() const = 0;
};

/// In-memory versioned KV store. Not internally synchronized: in the
/// discrete-event simulation each replica owns its store and all access is
/// single-threaded per replica (validation worker pools copy snapshots).
class MemKVStore final : public KVStore {
 public:
  MemKVStore() = default;

  Result<VersionedValue> Get(const Key& key) const override;
  Value GetOrDefault(const Key& key, Value default_value) const override;
  Status Put(const Key& key, Value value) override;
  Status Write(const WriteBatch& batch) override;
  size_t size() const override { return map_.size(); }

  /// Pre-sizes the hash table for `expected_keys` live keys so bulk loads
  /// (workload InitStore, large WriteBatches) avoid incremental rehashing.
  void Reserve(size_t expected_keys) { map_.reserve(expected_keys); }

  /// Deep copy used to fork validator state.
  MemKVStore Clone() const;

  /// Content digest over sorted (key, value, version) triples; used by
  /// tests to assert replica state convergence.
  uint64_t ContentFingerprint() const;

 private:
  std::unordered_map<Key, VersionedValue> map_;
};

}  // namespace thunderbolt::storage

#endif  // THUNDERBOLT_STORAGE_KV_STORE_H_
