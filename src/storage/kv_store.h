// Versioned key-value storage engine API (v2).
//
// Substitutes for the LevelDB instance the paper uses to hold SmallBank
// account balances (DESIGN.md substitution #3). Values are 64-bit integers,
// matching the paper's data model where contract operations are
// <Read, K> and <Write, K, V> over numeric account state. Every committed
// write bumps the key's version; versions drive OCC validation and preplay
// re-validation.
//
// The API is layered so each consumer sees exactly the capability it needs:
//
//   ReadView       Get/GetOrDefault/size — what execution engines preplay
//                  against (committed base state, or an overlay on it).
//   StoreSnapshot  An immutable point-in-time ReadView with ordered Scan.
//                  Writes to the owning store never show through.
//   KVStore        The full mutable engine: point writes, atomic
//                  WriteBatches (puts + deletes), ordered Scan, O(?)
//                  Snapshot()/Fork(), content fingerprinting and Stats().
//
// Implementations register by name in StoreRegistry::Global(), mirroring
// workload::WorkloadRegistry and placement::PlacementRegistry, which is how
// core::Cluster and the bench drivers select a backend from a `--store
// <name>` flag without compile-time coupling. Built-ins:
//
//   mem     Hash map. Byte-identical behavior to the historical MemKVStore
//           (determinism baselines carry over); Scan sorts on demand and
//           Snapshot/Fork copy the whole table.
//   sorted  Ordered map (sorted_kv_store.h): real range scans, O(n)
//           snapshots.
//   cow     Persistent copy-on-write treap (cow_kv_store.h): Snapshot()
//           and Fork() are O(1) structural sharing — the backend for
//           validation-style workloads that fork state per block.
//   cached  Bounded LRU row cache layered over another backend
//           (cached_kv_store.h): point reads hit the cache, writes
//           invalidate; hit/miss counters in Stats().
//   wal     Append-only CRC-framed group-committed log + checkpoints over
//           another backend (wal_kv_store.h): survives kill -9 via replay,
//           tolerating a torn tail.
//
// Backend *specs* extend plain names with parameters:
// "wal:group_commit=4,inner=cached:capacity=512,inner=sorted" — everything
// after the first ':' goes to the factory as StoreOptions::params (see
// ParseStoreParams). The `inner=` key, when present, must come last: its
// value is itself a full spec, consuming the rest of the string, which is
// what makes wrapper nesting expressible without quoting.
#ifndef THUNDERBOLT_STORAGE_KV_STORE_H_
#define THUNDERBOLT_STORAGE_KV_STORE_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/hash.h"
#include "common/result.h"
#include "common/status.h"

namespace thunderbolt::obs {
class Tracer;  // obs/trace.h; wrapper backends emit wal.* spans through it.
}  // namespace thunderbolt::obs

namespace thunderbolt::storage {

using Key = std::string;
using Value = int64_t;
using Version = uint64_t;

/// A value together with the version at which it was written.
struct VersionedValue {
  Value value = 0;
  Version version = 0;

  friend bool operator==(const VersionedValue& a, const VersionedValue& b) {
    return a.value == b.value && a.version == b.version;
  }
};

/// One key/value pair returned by a range scan, in key order.
struct ScanEntry {
  Key key;
  VersionedValue value;
};

/// An atomically applied sequence of puts and deletes, applied in order
/// (a later entry for the same key wins; every put bumps the version).
class WriteBatch {
 public:
  enum class Op : uint8_t { kPut = 0, kDelete = 1 };

  void Put(Key key, Value value) {
    ops_.push_back(Entry{std::move(key), value, Op::kPut});
  }
  void Delete(Key key) {
    ops_.push_back(Entry{std::move(key), 0, Op::kDelete});
  }
  void Clear() { ops_.clear(); }
  size_t size() const { return ops_.size(); }
  bool empty() const { return ops_.empty(); }

  struct Entry {
    Key key;
    Value value = 0;
    Op op = Op::kPut;
  };
  const std::vector<Entry>& entries() const { return ops_; }

 private:
  std::vector<Entry> ops_;
};

/// Read-only view of versioned state: the minimal interface execution
/// engines run against. Implemented by every store, every snapshot, and by
/// ad-hoc overlays (e.g. the proposer's speculative preplay view).
class ReadView {
 public:
  virtual ~ReadView() = default;

  /// Returns the current value+version, or NotFound.
  virtual Result<VersionedValue> Get(const Key& key) const = 0;

  /// Returns the value, or `default_value` when the key is absent (reads of
  /// fresh SmallBank accounts start from zero balances).
  virtual Value GetOrDefault(const Key& key, Value default_value) const = 0;

  /// Number of live keys.
  virtual size_t size() const = 0;
};

/// Immutable point-in-time view of a store. Obtained from
/// KVStore::Snapshot(); later writes to the store never show through.
class StoreSnapshot : public ReadView {
 public:
  /// All entries with `begin` <= key < `end`, in ascending key order. An
  /// empty `end` means "to the last key"; `limit` 0 means unlimited.
  virtual std::vector<ScanEntry> Scan(const Key& begin, const Key& end,
                                      size_t limit = 0) const = 0;
};

/// Operation counters every backend maintains (monitoring surface; also
/// how tests assert a backend actually took the cheap path).
struct StoreStats {
  std::string backend;       // Registry name.
  uint64_t live_keys = 0;
  uint64_t gets = 0;         // Get + GetOrDefault calls.
  uint64_t puts = 0;         // Put calls + batch put entries.
  uint64_t deletes = 0;      // Delete calls + batch delete entries.
  uint64_t batches = 0;      // Write() calls.
  uint64_t scans = 0;        // Scan() calls (store-level).
  uint64_t snapshots = 0;    // Snapshot() calls.
  uint64_t forks = 0;        // Fork() calls.

  // Wrapper-backend fields: zero unless a "cached" / "wal" layer is in the
  // stack (wrappers merge these up from their inner store, so the outermost
  // Stats() sees the whole stack).
  uint64_t cache_hits = 0;          // cached: point reads served from cache.
  uint64_t cache_misses = 0;        // cached: point reads forwarded to inner.
  uint64_t wal_appends = 0;         // wal: frames appended to the log.
  uint64_t wal_syncs = 0;           // wal: group-commit flush barriers.
  uint64_t wal_checkpoints = 0;     // wal: checkpoints written.
  uint64_t wal_recovered_records = 0;  // wal: entries+frames replayed at open.
};

/// Atomic twin of the StoreStats counter fields, used as the backends'
/// internal counter storage. Get/GetOrDefault are const yet count, which
/// makes the counters the one piece of store state mutated under
/// concurrent readers (thread executor pool workers all read the base
/// view); atomics keep that race-free without serializing reads.
///
/// Read-side tearing contract: ToStats() loads each atomic independently
/// with relaxed ordering — it is NOT a consistent cut across counters.
/// Under concurrent mutation a snapshot can pair a newer value of one
/// counter with an older value of another (e.g. cache_hits incremented by
/// an in-flight Get whose `gets` bump the snapshot missed, momentarily
/// showing hits + misses > gets). What IS guaranteed: each individual
/// counter is monotone non-decreasing across successive snapshots, no load
/// ever observes a torn/partial value, and a quiescent store snapshots
/// exactly. Derived cross-counter identities (hit-rate denominators,
/// hits + misses == gets) therefore only hold at quiescence — assert them
/// after joining workers, never mid-run. store_counters_concurrency_test
/// runs this contract under TSan.
struct StoreCounters {
  std::atomic<uint64_t> gets{0};
  std::atomic<uint64_t> puts{0};
  std::atomic<uint64_t> deletes{0};
  std::atomic<uint64_t> batches{0};
  std::atomic<uint64_t> scans{0};
  std::atomic<uint64_t> snapshots{0};
  std::atomic<uint64_t> forks{0};
  std::atomic<uint64_t> cache_hits{0};
  std::atomic<uint64_t> cache_misses{0};
  std::atomic<uint64_t> wal_appends{0};
  std::atomic<uint64_t> wal_syncs{0};
  std::atomic<uint64_t> wal_checkpoints{0};
  std::atomic<uint64_t> wal_recovered_records{0};

  // Copyable (atomics are not, by default) so stores keep their implicit
  // copy/move — e.g. MemKVStore::Clone returning by value. Copying is only
  // meaningful on quiescent stores.
  StoreCounters() = default;
  StoreCounters(const StoreCounters& other) { *this = other; }
  StoreCounters& operator=(const StoreCounters& other) {
    gets = other.gets.load(std::memory_order_relaxed);
    puts = other.puts.load(std::memory_order_relaxed);
    deletes = other.deletes.load(std::memory_order_relaxed);
    batches = other.batches.load(std::memory_order_relaxed);
    scans = other.scans.load(std::memory_order_relaxed);
    snapshots = other.snapshots.load(std::memory_order_relaxed);
    forks = other.forks.load(std::memory_order_relaxed);
    cache_hits = other.cache_hits.load(std::memory_order_relaxed);
    cache_misses = other.cache_misses.load(std::memory_order_relaxed);
    wal_appends = other.wal_appends.load(std::memory_order_relaxed);
    wal_syncs = other.wal_syncs.load(std::memory_order_relaxed);
    wal_checkpoints = other.wal_checkpoints.load(std::memory_order_relaxed);
    wal_recovered_records =
        other.wal_recovered_records.load(std::memory_order_relaxed);
    return *this;
  }

  /// Snapshot into the plain struct (`backend`/`live_keys` are filled in
  /// by the store's Stats()). Subject to the tearing contract above.
  StoreStats ToStats() const {
    StoreStats stats;
    stats.gets = gets.load(std::memory_order_relaxed);
    stats.puts = puts.load(std::memory_order_relaxed);
    stats.deletes = deletes.load(std::memory_order_relaxed);
    stats.batches = batches.load(std::memory_order_relaxed);
    stats.scans = scans.load(std::memory_order_relaxed);
    stats.snapshots = snapshots.load(std::memory_order_relaxed);
    stats.forks = forks.load(std::memory_order_relaxed);
    stats.cache_hits = cache_hits.load(std::memory_order_relaxed);
    stats.cache_misses = cache_misses.load(std::memory_order_relaxed);
    stats.wal_appends = wal_appends.load(std::memory_order_relaxed);
    stats.wal_syncs = wal_syncs.load(std::memory_order_relaxed);
    stats.wal_checkpoints = wal_checkpoints.load(std::memory_order_relaxed);
    stats.wal_recovered_records =
        wal_recovered_records.load(std::memory_order_relaxed);
    return stats;
  }
};

/// Abstract storage engine interface. Implementations must apply
/// WriteBatches atomically with respect to snapshots: a snapshot taken
/// before Write() observes none of the batch.
class KVStore : public ReadView {
 public:
  /// Registry name ("mem", "sorted", "cow").
  virtual std::string name() const = 0;

  /// Single-key write; bumps the key's version (fresh keys start at 1).
  virtual Status Put(const Key& key, Value value) = 0;

  /// Removes the key and its version state; a later Put restarts the
  /// version at 1. Deleting an absent key is a no-op.
  virtual Status Delete(const Key& key) = 0;

  /// Atomically applies all entries in the batch, in order — a later entry
  /// for the same key wins (last-op-wins), every put bumps the version, a
  /// delete then re-put within one batch restarts the version at 1 exactly
  /// as the split point operations would. Pinned across every backend by
  /// the conformance battery's SameKeyBatchOrdering case.
  virtual Status Write(const WriteBatch& batch) = 0;

  /// Writes `key` with an exact value AND version, bypassing the bump
  /// semantics of Put. This is the checkpoint/recovery restore path: the
  /// "wal" backend must reconstruct versions byte-identically (OCC
  /// validation depends on them), which Put's version-bump cannot express.
  /// Not a general-purpose API — normal writers use Put/Write.
  virtual Status RestoreEntry(const Key& key, const VersionedValue& vv) = 0;

  /// Durability barrier: flushes any buffered writes to stable storage.
  /// Volatile backends are trivially durable-to-their-lifetime and return
  /// OK; the "wal" backend flushes its group-commit buffer.
  virtual Status Flush() { return Status::OK(); }

  /// All entries with `begin` <= key < `end`, ascending by key. An empty
  /// `end` means "to the last key"; `limit` 0 means unlimited. Backends
  /// without native ordering (mem) sort on demand.
  virtual std::vector<ScanEntry> Scan(const Key& begin, const Key& end,
                                      size_t limit = 0) const = 0;

  /// Immutable point-in-time view. O(1) for "cow", O(n) copy otherwise.
  virtual std::shared_ptr<const StoreSnapshot> Snapshot() const = 0;

  /// Independent mutable copy (forks validator state). O(1) structural
  /// sharing for "cow", deep copy otherwise.
  virtual std::unique_ptr<KVStore> Fork() const = 0;

  /// Capacity hint: pre-sizes internal structures for `expected_keys` live
  /// keys so bulk loads (workload InitStore, large WriteBatches) avoid
  /// incremental rehashing. Backends without a useful notion of capacity
  /// ignore it.
  virtual void Reserve(size_t expected_keys) { (void)expected_keys; }

  /// Content digest over sorted (key, value) pairs; used by tests to
  /// assert replica state convergence. Identical across backends holding
  /// the same content (versions are excluded, matching the historical
  /// MemKVStore digest).
  virtual uint64_t ContentFingerprint() const = 0;

  /// Operation counters + live size (see StoreStats).
  virtual StoreStats Stats() const = 0;
};

/// In-memory versioned KV store over a hash table — the "mem" backend,
/// byte-identical in behavior to the historical MemKVStore. Not internally
/// synchronized: in the discrete-event simulation each replica owns its
/// store and all access is single-threaded per replica (validation worker
/// pools copy snapshots).
class MemKVStore final : public KVStore {
 public:
  MemKVStore() = default;

  std::string name() const override { return "mem"; }
  Result<VersionedValue> Get(const Key& key) const override;
  Value GetOrDefault(const Key& key, Value default_value) const override;
  Status Put(const Key& key, Value value) override;
  Status Delete(const Key& key) override;
  Status Write(const WriteBatch& batch) override;
  Status RestoreEntry(const Key& key, const VersionedValue& vv) override;
  size_t size() const override { return map_.size(); }
  std::vector<ScanEntry> Scan(const Key& begin, const Key& end,
                              size_t limit = 0) const override;
  std::shared_ptr<const StoreSnapshot> Snapshot() const override;
  std::unique_ptr<KVStore> Fork() const override;
  void Reserve(size_t expected_keys) override { map_.reserve(expected_keys); }
  uint64_t ContentFingerprint() const override;
  StoreStats Stats() const override;

  /// Deep copy used to fork validator state (value-semantics twin of
  /// Fork(), kept for call sites that hold a concrete MemKVStore).
  MemKVStore Clone() const;

 private:
  std::unordered_map<Key, VersionedValue> map_;
  mutable StoreCounters counters_;
};

/// The one content-digest scheme every backend's ContentFingerprint must
/// produce: feed the live entries in ascending key order, then Finish().
/// Cross-backend fingerprint agreement (store conformance, determinism
/// and cross-engine tests) depends on this being the single definition.
class ContentDigest {
 public:
  void Add(const Key& key, Value value) {
    hash_.Update(key);
    hash_.UpdateInt(value);
  }
  uint64_t Finish() { return hash_.Finalize().Prefix64(); }

 private:
  Sha256 hash_;
};

/// Range-scan over an ordered map: entries with `begin` <= key < `end`
/// (empty `end` = unbounded), up to `limit` (0 = unlimited). Shared by the
/// std::map-backed backends and snapshots.
std::vector<ScanEntry> ScanOrderedMap(const std::map<Key, VersionedValue>& map,
                                      const Key& begin, const Key& end,
                                      size_t limit);

/// Wraps an ordered entry copy as an immutable StoreSnapshot (the O(n)
/// snapshot strategy shared by "mem" and "sorted").
std::shared_ptr<const StoreSnapshot> MakeOrderedSnapshot(
    std::map<Key, VersionedValue> entries);

/// Everything a store factory may consume.
struct StoreOptions {
  /// Capacity hint forwarded to Reserve() on construction (0 = none).
  size_t expected_keys = 0;

  /// Backend-specific parameters, the part of a spec after the first ':'
  /// ("group_commit=4,inner=sorted"). Plain backends ignore it; wrappers
  /// parse it with ParseStoreParams.
  std::string params;

  /// Trace sink for wal.append / wal.checkpoint / wal.recover spans.
  /// nullptr means untraced (wrappers fall back to the null tracer).
  obs::Tracer* tracer = nullptr;

  /// Clock for span timestamps, in microseconds. The cluster wires the
  /// deterministic SimTime clock here so store spans land on the same
  /// timeline as the txn/batch spans; absent, spans carry ts 0.
  std::function<uint64_t()> now_us;
};

/// Splits a params string ("a=1,b=2,inner=wal:inner=mem") into key/value
/// pairs in order. `inner` is the one recursive key: its value is a full
/// backend spec, so it consumes the remainder of the string and must come
/// last. Malformed segments (no '=') are returned with an empty value.
std::vector<std::pair<std::string, std::string>> ParseStoreParams(
    const std::string& params);

/// Name -> factory registry, mirroring workload::WorkloadRegistry and
/// placement::PlacementRegistry. `Global()` is preloaded with the built-in
/// backends ("mem", "sorted", "cow", "cached", "wal").
///
/// Create/Contains accept full *specs*: "wal:inner=sorted" resolves the
/// factory registered as "wal" and passes "inner=sorted" through
/// StoreOptions::params (any params already present in `options` are
/// overwritten by the spec's).
class StoreRegistry {
 public:
  using Factory =
      std::function<std::unique_ptr<KVStore>(const StoreOptions&)>;

  /// Registers `factory` under `name` (a plain name, no ':'). Overwrites
  /// any existing entry.
  void Register(std::string name, Factory factory);

  /// Instantiates the backend named by `spec` (plain name or
  /// "name:params"), or nullptr for unknown names.
  std::unique_ptr<KVStore> Create(const std::string& spec,
                                  const StoreOptions& options = {}) const;

  /// True when the spec's base name is registered (params unvalidated).
  bool Contains(const std::string& spec) const;

  /// Registered names, sorted.
  std::vector<std::string> Names() const;

  /// The process-wide registry, preloaded with the built-ins.
  static StoreRegistry& Global();

 private:
  std::map<std::string, Factory> factories_;
};

}  // namespace thunderbolt::storage

#endif  // THUNDERBOLT_STORAGE_KV_STORE_H_
