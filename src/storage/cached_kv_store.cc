#include "storage/cached_kv_store.h"

#include <cstdlib>

namespace thunderbolt::storage {

CachedKVStore::CachedKVStore(std::unique_ptr<KVStore> inner, size_t capacity)
    : inner_(std::move(inner)), capacity_(capacity == 0 ? 1 : capacity) {}

std::unique_ptr<KVStore> CachedKVStore::FromOptions(
    const StoreOptions& options) {
  size_t capacity = 4096;
  std::string inner_spec = "sorted";
  for (const auto& [key, value] : ParseStoreParams(options.params)) {
    if (key == "capacity") {
      capacity = static_cast<size_t>(std::strtoull(value.c_str(), nullptr, 10));
    } else if (key == "inner") {
      inner_spec = value;
    } else {
      return nullptr;  // Unknown param: reject, don't silently ignore.
    }
  }
  StoreOptions inner_options = options;
  inner_options.params.clear();  // The inner spec carries its own params.
  std::unique_ptr<KVStore> inner =
      StoreRegistry::Global().Create(inner_spec, inner_options);
  if (inner == nullptr) return nullptr;
  return std::make_unique<CachedKVStore>(std::move(inner), capacity);
}

bool CachedKVStore::CacheGet(const Key& key, VersionedValue* out) const {
  std::lock_guard<std::mutex> lk(mu_);
  auto it = map_.find(key);
  if (it == map_.end()) return false;
  lru_.splice(lru_.begin(), lru_, it->second.lru);  // Refresh recency.
  *out = it->second.vv;
  return true;
}

void CachedKVStore::CachePut(const Key& key, const VersionedValue& vv) const {
  std::lock_guard<std::mutex> lk(mu_);
  auto it = map_.find(key);
  if (it != map_.end()) {
    it->second.vv = vv;
    lru_.splice(lru_.begin(), lru_, it->second.lru);
    return;
  }
  lru_.push_front(key);
  map_.emplace(key, CacheEntry{vv, lru_.begin()});
  while (map_.size() > capacity_) {
    map_.erase(lru_.back());
    lru_.pop_back();
  }
}

void CachedKVStore::CacheErase(const Key& key) {
  std::lock_guard<std::mutex> lk(mu_);
  auto it = map_.find(key);
  if (it == map_.end()) return;
  lru_.erase(it->second.lru);
  map_.erase(it);
}

Result<VersionedValue> CachedKVStore::Get(const Key& key) const {
  ++counters_.gets;
  VersionedValue cached;
  if (CacheGet(key, &cached)) {
    ++counters_.cache_hits;
    return cached;
  }
  ++counters_.cache_misses;
  Result<VersionedValue> r = inner_->Get(key);
  if (r.ok()) CachePut(key, r.value());
  return r;
}

Value CachedKVStore::GetOrDefault(const Key& key, Value default_value) const {
  ++counters_.gets;
  VersionedValue cached;
  if (CacheGet(key, &cached)) {
    ++counters_.cache_hits;
    return cached.value;
  }
  ++counters_.cache_misses;
  // Go through inner Get (not GetOrDefault) to learn presence: only
  // present keys are cached, so absent-key reads stay inner-served.
  Result<VersionedValue> r = inner_->Get(key);
  if (!r.ok()) return default_value;
  CachePut(key, r.value());
  return r.value().value;
}

Status CachedKVStore::Put(const Key& key, Value value) {
  ++counters_.puts;
  CacheErase(key);
  return inner_->Put(key, value);
}

Status CachedKVStore::Delete(const Key& key) {
  ++counters_.deletes;
  CacheErase(key);
  return inner_->Delete(key);
}

Status CachedKVStore::Write(const WriteBatch& batch) {
  ++counters_.batches;
  for (const WriteBatch::Entry& e : batch.entries()) {
    if (e.op == WriteBatch::Op::kDelete) {
      ++counters_.deletes;
    } else {
      ++counters_.puts;
    }
    CacheErase(e.key);
  }
  return inner_->Write(batch);
}

Status CachedKVStore::RestoreEntry(const Key& key, const VersionedValue& vv) {
  CacheErase(key);
  return inner_->RestoreEntry(key, vv);
}

std::vector<ScanEntry> CachedKVStore::Scan(const Key& begin, const Key& end,
                                           size_t limit) const {
  ++counters_.scans;
  return inner_->Scan(begin, end, limit);
}

std::shared_ptr<const StoreSnapshot> CachedKVStore::Snapshot() const {
  ++counters_.snapshots;
  return inner_->Snapshot();
}

std::unique_ptr<KVStore> CachedKVStore::Fork() const {
  ++counters_.forks;
  // The fork starts cold: cache contents are a recency artifact, not
  // state, and sharing them would couple the forks' mutexes.
  return std::make_unique<CachedKVStore>(inner_->Fork(), capacity_);
}

size_t CachedKVStore::cached_rows() const {
  std::lock_guard<std::mutex> lk(mu_);
  return map_.size();
}

StoreStats CachedKVStore::Stats() const {
  StoreStats stats = counters_.ToStats();
  stats.backend = name();
  // Standard op counters are the wrapper's own (the conformance battery
  // counts API calls at the layer under test); the wrapper-specific
  // fields merge up so a stacked wal-under-cached still reports its log
  // activity through the outermost Stats().
  const StoreStats inner = inner_->Stats();
  stats.live_keys = inner.live_keys;
  stats.cache_hits += inner.cache_hits;
  stats.cache_misses += inner.cache_misses;
  stats.wal_appends += inner.wal_appends;
  stats.wal_syncs += inner.wal_syncs;
  stats.wal_checkpoints += inner.wal_checkpoints;
  stats.wal_recovered_records += inner.wal_recovered_records;
  return stats;
}

}  // namespace thunderbolt::storage
